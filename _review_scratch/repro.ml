(* Reviewer repro: capacity-bounded WAL, crash after k ops, recover.
   Looking for Redo_divergence caused by a mid-op emergency reclamation
   flushing a modified-but-not-yet-logged page (stale page LSN). *)

module Db = Mvcc.Db
module Engine = Mvcc.Engine
module Value = Mvcc.Value

module Make (E : Engine.S) = struct
  let run_k k =
    let db = Db.create ~buffer_pages:128 ~wal_capacity_bytes:20_000 () in
    let eng = E.create db in
    let table = E.create_table eng ~name:"t" ~pk_col:0 () in
    (try
       for n = 1 to k do
         let key = 1 + (n mod 40) in
         let txn = E.begin_txn eng in
         match E.insert eng txn table [| Value.Int key; Value.Int n |] with
         | Ok () -> E.commit eng txn
         | Error _ -> (
             E.abort eng txn;
             let txn = E.begin_txn eng in
             match
               E.update eng txn table ~pk:key (fun r ->
                   let r = Array.copy r in
                   r.(1) <- Value.Int n;
                   r)
             with
             | Ok () -> E.commit eng txn
             | Error _ -> E.abort eng txn)
       done
     with Db.Read_only _ -> ());
    Db.crash db;
    try
      E.recover eng;
      None
    with e -> Some (Printexc.to_string e)

  let sweep name =
    let bad = ref 0 in
    for k = 1 to 300 do
      match run_k k with
      | None -> ()
      | Some msg ->
          incr bad;
          if !bad <= 5 then Printf.printf "%s k=%d: RECOVERY FAILED: %s\n" name k msg
    done;
    Printf.printf "%s: %d/300 crash points failed recovery\n%!" name !bad
end

let () =
  List.iter
    (fun name ->
      let _, (module E : Engine.S) = Engine.resolve_exn name in
      let module M = Make (E) in
      M.sweep name)
    [ "si"; "sias-v" ]
