(* sias_cli: run TPC-C workloads and capture block traces from the
   command line.

     dune exec bin/sias_cli.exe -- run --engine sias --warehouses 50
     dune exec bin/sias_cli.exe -- trace --engine si --duration 30
*)

open Cmdliner
open Harness.Experiments
module W = Tpcc.Tpcc_workload
module B = Flashsim.Blocktrace
module C = Sias_txn.Contention

let engine_conv =
  let parse s =
    match Mvcc.Engine.resolve s with
    | Some (key, _) -> Ok key
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown engine %S; known engines: %s" s
               (Mvcc.Engine.known_keys_hint ())))
  in
  let print fmt e = Format.pp_print_string fmt (engine_name e) in
  Arg.conv (parse, print)

let isolation_conv =
  let parse s =
    match Mvcc.Isolation.of_string s with
    | Some l -> Ok (Mvcc.Isolation.to_string l)
    | None ->
        Error
          (`Msg
            (Printf.sprintf "unknown isolation level %S; known levels: %s" s
               (Mvcc.Isolation.known_keys_hint ())))
  in
  Arg.conv (parse, Format.pp_print_string)

let device_conv =
  let parse = function
    | "ssd" -> Ok Ssd_single
    | "hdd" -> Ok Hdd_single
    | s when String.length s > 4 && String.sub s 0 4 = "ssd:" -> (
        match int_of_string_opt (String.sub s 4 (String.length s - 4)) with
        | Some blocks when blocks > 8 -> Ok (Ssd_sized blocks)
        | _ -> Error (`Msg "ssd:<blocks> needs a positive block count"))
    | "raid2" -> Ok (Ssd_raid 2)
    | "raid6" -> Ok (Ssd_raid 6)
    | s -> Error (`Msg (Printf.sprintf "unknown device %S (ssd|hdd|raid2|raid6)" s))
  in
  let print fmt = function
    | Ssd_single -> Format.pp_print_string fmt "ssd"
    | Ssd_sized b -> Format.fprintf fmt "ssd:%d" b
    | Hdd_single -> Format.pp_print_string fmt "hdd"
    | Ssd_raid n -> Format.fprintf fmt "raid%d" n
  in
  Arg.conv (parse, print)

let engine_arg =
  Arg.(value & opt engine_conv "sias" & info [ "e"; "engine" ] ~doc:"Engine: si, si-cv, sias, sias-v.")

let device_arg =
  Arg.(value & opt device_conv Ssd_single & info [ "device" ] ~doc:"ssd, ssd:<blocks>, hdd, raid2, raid6.")

let isolation_arg =
  Arg.(
    value
    & opt isolation_conv "si"
    & info [ "isolation" ]
        ~doc:
          "Isolation level: si (default), ssi (serializable) or wsi \
           (write-snapshot).")

let index_conv =
  Arg.conv
    ( (function
      | "array" -> Ok "array"
      | "paged" -> Ok "paged"
      | s -> Error (`Msg (Printf.sprintf "unknown index kind %S (array|paged)" s))),
      Format.pp_print_string )

let index_arg =
  Arg.(
    value
    & opt index_conv "array"
    & info [ "index" ]
        ~doc:
          "Index implementation: array (in-memory node images rebuilt from \
           the heap at recovery; the default and the determinism oracle) or \
           paged (WAL-logged slotted B+Tree pages resident in the buffer \
           pool, replayed byte-exact at recovery).")

let warehouses_arg =
  Arg.(value & opt int 20 & info [ "w"; "warehouses" ] ~doc:"TPC-C warehouses.")

let duration_arg =
  Arg.(value & opt float 30.0 & info [ "d"; "duration" ] ~doc:"Simulated seconds.")

let buffer_arg =
  Arg.(value & opt int 2048 & info [ "buffer" ] ~doc:"Buffer pool pages (8 KB each).")

let flush_conv =
  Arg.conv
    ( (function
      | "t1" -> Ok T1
      | "t2" -> Ok T2
      | s -> Error (`Msg (Printf.sprintf "unknown flush policy %S (t1|t2)" s))),
      fun fmt f -> Format.pp_print_string fmt (match f with T1 -> "t1" | T2 -> "t2") )

let flush_arg =
  Arg.(value & opt flush_conv T2 & info [ "flush" ] ~doc:"t1 (bgwriter) or t2 (checkpoint).")

let gc_arg =
  Arg.(
    value
    & opt (some float) (Some 10.0)
    & info [ "gc" ] ~doc:"GC interval (sim s); 0 disables.")

let scale_arg =
  Arg.(value & opt int 100 & info [ "scale-div" ] ~doc:"Cardinality divisor vs spec TPC-C.")

let seed_arg = Arg.(value & opt int 42 & info [ "seed" ] ~doc:"Random seed.")

let fault_profile_conv =
  let parse s =
    match Flashsim.Faultdev.profile_of_string s with
    | Ok p -> Ok p
    | Error e -> Error (`Msg e)
  in
  let print fmt p = Format.pp_print_string fmt (Flashsim.Faultdev.profile_name p) in
  Arg.conv (parse, print)

let faults_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "faults" ]
        ~doc:"Inject device faults (transient read errors, bit rot, torn writes) seeded by $(docv)."
        ~docv:"SEED")

let fault_profile_arg =
  Arg.(
    value
    & opt fault_profile_conv Flashsim.Faultdev.light
    & info [ "fault-profile" ] ~doc:"Fault rates: none, light or heavy.")

let policy_conv =
  let parse s =
    match C.policy_of_string s with Ok p -> Ok p | Error e -> Error (`Msg e)
  in
  let print fmt p = Format.pp_print_string fmt (C.policy_to_string p) in
  Arg.conv (parse, print)

let policy_arg =
  Arg.(
    value
    & opt policy_conv C.No_wait
    & info [ "conflict-policy" ]
        ~doc:"Lock-conflict policy: no-wait, wait-die, wound-wait or detect.")

let retries_arg =
  Arg.(
    value
    & opt int 0
    & info [ "retries" ]
        ~doc:"Resubmit conflict-aborted transactions up to $(docv) times (0 = off).")

let max_inflight_arg =
  Arg.(
    value
    & opt (some int) None
    & info [ "max-inflight" ]
        ~doc:"Admission cap on concurrently running transactions.")

let check_si_arg =
  Arg.(
    value
    & flag
    & info [ "check-si" ]
        ~doc:"Verify snapshot-isolation invariants online; exit 1 on violation.")

let terminals_arg =
  Arg.(value & opt int 1 & info [ "terminals" ] ~doc:"Terminals per warehouse.")

let metrics_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics-out" ]
        ~doc:"Write run-phase metrics as Prometheus text to $(docv)." ~docv:"PATH")

let trace_out_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace-out" ]
        ~doc:
          "Write a Chrome trace-event JSON of the run phase to $(docv) (open \
           in Perfetto or chrome://tracing)."
        ~docv:"PATH")

let stats_interval_arg =
  Arg.(
    value
    & opt (some float) None
    & info [ "stats-interval" ]
        ~doc:"Print a progress line to stderr every $(docv) simulated seconds."
        ~docv:"SECONDS")

let onoff_conv =
  Arg.conv
    ( (function
      | "on" -> Ok true
      | "off" -> Ok false
      | s -> Error (`Msg (Printf.sprintf "expected on or off, got %S" s))),
      fun fmt b -> Format.pp_print_string fmt (if b then "on" else "off") )

let sync_commit_arg =
  Arg.(
    value
    & opt onoff_conv true
    & info [ "synchronous-commit" ]
        ~doc:
          "off acks commits at WAL append and trickle-flushes in the \
           background (a crash may lose the last instants of acked work, \
           never corrupt the log).")

let commit_delay_arg =
  Arg.(
    value
    & opt float 0.0
    & info [ "commit-delay" ]
        ~doc:
          "Group commits arriving within $(docv) simulated seconds behind \
           one shared fsync (0 = per-commit fsync)."
        ~docv:"SECONDS")

let repl_mode_conv =
  let parse = function
    | "off" -> Ok None
    | s -> (
        match Sias_repl.Repl.mode_of_string s with
        | Ok m -> Ok (Some m)
        | Error e -> Error (`Msg (e ^ " (or off)")))
  in
  let print fmt = function
    | None -> Format.pp_print_string fmt "off"
    | Some m -> Format.pp_print_string fmt (Sias_repl.Repl.mode_name m)
  in
  Arg.conv (parse, print)

let repl_arg =
  Arg.(
    value
    & opt repl_mode_conv None
    & info [ "repl" ]
        ~doc:
          "Ship the WAL to a hot standby: off (default), async (ship \
           after local fsync) or remote-flush (commits wait for the \
           standby flush acknowledgement).")

let repl_link_conv =
  let parse s =
    match Sias_repl.Link.profile_of_string s with
    | Ok p -> Ok p
    | Error e -> Error (`Msg e)
  in
  let print fmt p = Format.pp_print_string fmt (Sias_repl.Link.profile_name p) in
  Arg.conv (parse, print)

let repl_link_arg =
  Arg.(
    value
    & opt repl_link_conv Sias_repl.Link.clean
    & info [ "repl-link" ]
        ~doc:"Replication-link fault profile: clean, wan, lossy or chaos.")

let repl_seed_arg =
  Arg.(
    value
    & opt int 7
    & info [ "repl-seed" ]
        ~doc:"Seed for the replication link's deterministic fault stream.")

let wal_device_arg =
  Arg.(
    value
    & opt (some device_conv) None
    & info [ "wal-device" ]
        ~doc:
          "Put the WAL on its own modeled device (ssd, ssd:<blocks>, hdd, \
           raid2, raid6) so commit fsyncs cost simulated time; default \
           in-memory sink.")

let mk_setup engine isolation index device warehouses duration_s buffer_pages flush gc scale_div seed
    fault_seed fault_profile policy retries max_inflight check_si terminals
    metrics_out trace_out stats_interval_s sync_commit commit_delay wal_device
    repl_mode repl_link repl_seed keep =
  {
    (default_setup ~engine ~warehouses) with
    isolation;
    index;
    device;
    duration_s;
    buffer_pages;
    flush;
    gc_interval_s = (match gc with Some g when g > 0.0 -> Some g | _ -> None);
    scale_div;
    seed;
    fault_seed;
    fault_profile;
    contention = { C.default_settings with C.policy; max_inflight };
    retries;
    (* serializable levels always run under the online checker: the whole
       point of ssi/wsi is a certifiable absence of cycles *)
    check_si = (check_si || isolation <> "si");
    terminals_per_warehouse = terminals;
    metrics_out;
    trace_out;
    stats_interval_s;
    synchronous_commit = sync_commit;
    commit_delay_s = commit_delay;
    wal_device;
    repl_mode;
    repl_link;
    repl_seed;
    keep_trace_records = keep;
  }

let report_obs o =
  Option.iter
    (fun p -> Format.printf "metrics written to %s@." p)
    o.setup.metrics_out;
  Option.iter (fun p -> Format.printf "trace written to %s@." p) o.setup.trace_out

let report_commit o =
  (* only non-default pipelines print, keeping default output unchanged *)
  if (not o.setup.synchronous_commit) || o.setup.commit_delay_s > 0.0 then begin
    Format.printf "%a" Sias_wal.Commitpipe.pp_stats o.commit_stats;
    if o.setup.wal_device <> None then
      Format.printf "wal device: %.2f MB written@." o.wal_write_mb
  end

let report_repl o =
  (* replication off prints nothing, keeping default output unchanged *)
  match o.repl_stats with
  | None -> ()
  | Some s -> Format.printf "%a" Sias_repl.Repl.pp_stats s

let report_contention o =
  Format.printf "%a" C.pp_stats o.contention_stats;
  match o.checker with
  | None -> ()
  | Some c ->
      Format.printf "%s@." (Mvcc.Sichecker.report c);
      (* under a serializable level the checker's cycle detector is an
         additional oracle: any surviving cycle is a bug *)
      if o.setup.isolation <> "si" then begin
        Format.printf "%s@." (Mvcc.Sichecker.serializability_report c);
        if Mvcc.Sichecker.cycle_count c > 0 then exit 1
      end;
      if Mvcc.Sichecker.violation_count c > 0 then exit 1

let domains_arg =
  Arg.(
    value
    & opt int 1
    & info [ "domains" ]
        ~doc:
          "Shard the run across $(docv) OCaml domains (shared-nothing; warehouses \
           are per domain, TPC-C weak scaling). 1 runs the exact single-domain \
           deterministic path.")

(* --domains N (N > 1): shared-nothing multicore run. Each domain owns
   its warehouse range outright; commits stream through per-domain WAL
   insert slots into one group-commit flusher. Only the flags that are
   meaningful per shard are honored; device/fault/replication topology
   flags are single-domain concerns and rejected loudly rather than
   silently ignored. *)
let reject_single_domain_flags ~device ~fault_seed ~repl ~wal_device ~index =
  let bad = ref [] in
  if device <> Ssd_single then bad := "--device" :: !bad;
  if fault_seed <> None then bad := "--faults" :: !bad;
  if repl <> None then bad := "--repl" :: !bad;
  if wal_device <> None then bad := "--wal-device" :: !bad;
  if index <> "array" then bad := "--index paged" :: !bad;
  match !bad with
  | [] -> ()
  | flags ->
      Format.printf "--domains > 1 does not support: %s@."
        (String.concat ", " flags);
      exit 2

let run_multicore ~engine ~isolation ~domains ~warehouses ~duration ~buffer ~gc
    ~scale ~seed ~check_si ~terminals =
  let module MC = Tpcc.Tpcc_multicore in
  let base =
    {
      (W.default_config ~warehouses) with
      W.scale = Tpcc.Tpcc_schema.scaled ~div:scale ();
      duration_s = duration;
      terminals_per_warehouse = terminals;
      seed;
      gc_interval_s = (match gc with Some g when g > 0.0 -> Some g | _ -> None);
    }
  in
  let cfg =
    {
      MC.engine;
      domains;
      base;
      isolation = Mvcc.Isolation.of_string_exn isolation;
      buffer_pages = buffer;
      bufpool_shards = Stdlib.min 4 buffer;
      check = check_si || isolation <> "si";
    }
  in
  let r = MC.run cfg in
  Format.printf "%a@." MC.pp_result r;
  if r.MC.violations > 0 then begin
    Format.printf "FAIL: %d snapshot-isolation violations@." r.MC.violations;
    exit 1
  end

let run_cmd =
  let run engine isolation index device warehouses duration buffer flush gc scale seed
      fault_seed fault_profile policy retries max_inflight check_si terminals
      metrics_out trace_out stats_interval sync_commit commit_delay wal_device
      repl repl_link repl_seed domains =
    if domains < 1 then begin
      Format.printf "--domains must be >= 1@.";
      exit 2
    end;
    if domains > 1 then begin
      reject_single_domain_flags ~device ~fault_seed ~repl ~wal_device ~index;
      run_multicore ~engine ~isolation ~domains ~warehouses ~duration ~buffer ~gc
        ~scale ~seed ~check_si ~terminals
    end
    else
    let o =
      run_tpcc
        (mk_setup engine isolation index device warehouses duration buffer flush gc scale
           seed fault_seed fault_profile policy retries max_inflight check_si
           terminals metrics_out trace_out stats_interval sync_commit commit_delay
           wal_device repl repl_link repl_seed false)
    in
    Format.printf "%a@.@." pp_output_summary o;
    Format.printf "%a@." W.pp_result o.result;
    List.iter
      (fun k ->
        if W.resp_mean o.result k > 0.0 then
          Format.printf "  %-12s resp mean %.4fs p90 %.4fs max %.4fs@."
            (W.tx_kind_to_string k) (W.resp_mean o.result k) (W.resp_p90 o.result k)
            (W.resp_max o.result k))
      W.all_kinds;
    Format.printf "buffer: %d hits, %d misses, %d evictions, %d flushes@."
      o.buf_stats.Sias_storage.Bufpool.hits o.buf_stats.Sias_storage.Bufpool.misses
      o.buf_stats.Sias_storage.Bufpool.evictions o.buf_stats.Sias_storage.Bufpool.flushes;
    if fault_seed <> None then
      Format.printf
        "reliability: %d read retries, %d checksum failures, %d pages repaired, %d torn@."
        o.buf_stats.Sias_storage.Bufpool.read_retries
        o.buf_stats.Sias_storage.Bufpool.checksum_failures
        o.buf_stats.Sias_storage.Bufpool.pages_repaired
        o.buf_stats.Sias_storage.Bufpool.torn_pages;
    List.iter (fun (k, v) -> Format.printf "device: %-28s %.2f@." k v) o.device_info;
    report_obs o;
    report_commit o;
    report_repl o;
    report_contention o
  in
  Cmd.v
    (Cmd.info "run" ~doc:"Run a TPC-C benchmark and report throughput, latency and I/O.")
    Term.(
      const run $ engine_arg $ isolation_arg $ index_arg $ device_arg $ warehouses_arg $ duration_arg $ buffer_arg
      $ flush_arg $ gc_arg $ scale_arg $ seed_arg $ faults_arg $ fault_profile_arg
      $ policy_arg $ retries_arg $ max_inflight_arg $ check_si_arg $ terminals_arg
      $ metrics_out_arg $ trace_out_arg $ stats_interval_arg $ sync_commit_arg
      $ commit_delay_arg $ wal_device_arg $ repl_arg $ repl_link_arg $ repl_seed_arg
      $ domains_arg)

let trace_cmd =
  let csv_arg =
    Arg.(value & opt (some string) None & info [ "csv" ] ~doc:"Write the trace to $(docv).")
  in
  let run engine isolation index device warehouses duration buffer flush gc scale seed
      fault_seed fault_profile policy retries max_inflight check_si terminals
      metrics_out trace_out stats_interval sync_commit commit_delay wal_device
      repl repl_link repl_seed csv =
    let o =
      run_tpcc
        (mk_setup engine isolation index device warehouses duration buffer flush gc scale
           seed fault_seed fault_profile policy retries max_inflight check_si
           terminals metrics_out trace_out stats_interval sync_commit commit_delay
           wal_device repl repl_link repl_seed true)
    in
    print_endline (B.render_scatter o.trace);
    Format.printf "reads %d (%.1f MB) | writes %d (%.1f MB)@." (B.read_count o.trace)
      o.run_read_mb (B.write_count o.trace) o.run_write_mb;
    (match csv with
    | None -> ()
    | Some path ->
        let oc = open_out path in
        output_string oc (B.to_csv o.trace);
        close_out oc;
        Format.printf "trace written to %s@." path);
    report_obs o;
    report_commit o;
    report_repl o;
    report_contention o
  in
  Cmd.v
    (Cmd.info "trace" ~doc:"Run a workload and render its block trace (paper Figures 3/4).")
    Term.(
      const run $ engine_arg $ isolation_arg $ index_arg $ device_arg $ warehouses_arg $ duration_arg $ buffer_arg
      $ flush_arg $ gc_arg $ scale_arg $ seed_arg $ faults_arg $ fault_profile_arg
      $ policy_arg $ retries_arg $ max_inflight_arg $ check_si_arg $ terminals_arg
      $ metrics_out_arg $ trace_out_arg $ stats_interval_arg $ sync_commit_arg
      $ commit_delay_arg $ wal_device_arg $ repl_arg $ repl_link_arg $ repl_seed_arg
      $ csv_arg)

(* ---- chaos: crash-schedule exploration + out-of-space smoke ---- *)

let chaos_cmd =
  let module Explorer = Sias_chaos.Explorer in
  let module Chaosrun = Harness.Chaosrun in
  let module Commitpipe = Sias_wal.Commitpipe in
  let engines_arg =
    Arg.(
      value
      & opt (list string) [ "si"; "si-cv"; "sias"; "sias-v" ]
      & info [ "e"; "engines" ] ~docv:"ENGINES"
          ~doc:"Comma-separated engines to explore.")
  in
  let modes_arg =
    Arg.(
      value
      & opt (list string) [ "sync"; "group"; "async" ]
      & info [ "modes" ] ~docv:"MODES"
          ~doc:"Commit modes to cross with the engines (sync, group, async).")
  in
  let standby_arg =
    Arg.(
      value & flag
      & info [ "standby" ] ~doc:"Also explore primary-crash failover schedules.")
  in
  let budget_arg =
    Arg.(
      value & opt int 60
      & info [ "budget" ] ~docv:"N"
          ~doc:"Schedule budget per engine/mode (sampled; see $(b,--full)).")
  in
  let full_arg =
    Arg.(
      value & flag
      & info [ "full" ]
          ~doc:"Full enumeration: drop the schedule budget (CI nightly mode).")
  in
  let oos_arg =
    Arg.(
      value & opt bool true
      & info [ "oos" ] ~docv:"BOOL"
          ~doc:"Also run the out-of-space reclamation/degradation scenarios.")
  in
  let run engines isolation index modes standby budget full oos =
    let failures = ref 0 in
    let mode_of = function
      | "sync" -> Commitpipe.Sync
      | "group" -> Commitpipe.Group { delay = 0.005 }
      | "async" -> Commitpipe.Async { interval = 0.01; max_bytes = 1 lsl 14 }
      | m -> raise (Invalid_argument ("unknown commit mode " ^ m))
    in
    let cfg ?(depth2 = true) () =
      {
        Explorer.hits_per_point = 2;
        depth2;
        max_schedules = (if full then None else Some budget);
      }
    in
    let report name (r : Explorer.report) =
      Format.printf "== %-18s %3d workload pts, %2d recovery pts, %4d schedules, %d failures@."
        name
        (List.length r.Explorer.points)
        (List.length r.Explorer.recovery_points)
        r.Explorer.schedules_run
        (List.length r.Explorer.failures);
      List.iter
        (fun f ->
          incr failures;
          Format.printf "   FAIL %s: %s@."
            (Explorer.schedule_to_string f.Explorer.schedule)
            f.Explorer.error)
        r.Explorer.failures
    in
    List.iter
      (fun e ->
        List.iter
          (fun m ->
            report
              (Printf.sprintf "%s/%s" e m)
              (Chaosrun.explore ~cfg:(cfg ())
                 (Chaosrun.config ~isolation ~index ~commit_mode:(mode_of m) e)))
          modes;
        if standby then
          report (e ^ "/standby")
            (Chaosrun.explore
               ~cfg:(cfg ~depth2:false ())
               (Chaosrun.config ~isolation ~index ~standby:true e)))
      engines;
    if oos then
      List.iter
        (fun e ->
          let o = Chaosrun.oos_run ~engine:e ~wal_capacity_bytes:20_000 ~ops:400 () in
          let live =
            o.Chaosrun.reclaims > 0 && o.Chaosrun.degraded = None
            && o.Chaosrun.read_only_errors = 0 && o.Chaosrun.consistent
          in
          let h = Chaosrun.oos_run ~hold:true ~engine:e ~wal_capacity_bytes:12_000 ~ops:400 () in
          let loud =
            (h.Chaosrun.read_only_errors > 0 || h.Chaosrun.shed > 0)
            && (h.Chaosrun.degraded <> None || h.Chaosrun.backpressure_on > 0)
            && h.Chaosrun.consistent
          in
          if not live then incr failures;
          if not loud then incr failures;
          Format.printf
            "== oos %-10s reclaim: %d reclaims, %d/%d committed, %s | hold: %d shed, %d refused, %s@."
            e o.Chaosrun.reclaims o.Chaosrun.committed o.Chaosrun.attempted
            (if live then "ok" else "FAIL")
            h.Chaosrun.shed h.Chaosrun.read_only_errors
            (if loud then "ok" else "FAIL"))
        engines;
    if !failures > 0 then begin
      Format.printf "chaos: %d failures@." !failures;
      exit 1
    end;
    Format.printf "chaos: all schedules verified@."
  in
  Cmd.v
    (Cmd.info "chaos"
       ~doc:
         "Explore deterministic crash schedules (every instrumented crash \
          point, including crashes during recovery) and the out-of-space \
          degradation scenarios; non-zero exit if any schedule fails to \
          recover to the model prefix.")
    Term.(
      const run $ engines_arg $ isolation_arg $ index_arg $ modes_arg $ standby_arg
      $ budget_arg $ full_arg $ oos_arg)

let () =
  let info = Cmd.info "sias_cli" ~doc:"SIAS: snapshot-isolation append storage workbench." in
  exit (Cmd.eval (Cmd.group info [ run_cmd; trace_cmd; chaos_cmd ]))
