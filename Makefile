# Convenience targets; `make check` is what CI runs.

.PHONY: all build test check bench demo clean

all: build

build:
	dune build

test:
	dune runtest --force

check: build test

bench:
	dune exec bench/main.exe

demo:
	dune exec examples/recovery_demo.exe

clean:
	dune clean
