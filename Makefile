# Convenience targets; `make check` is what CI runs.

.PHONY: all build test check bench demo contention clean

all: build

build:
	dune build

test:
	dune runtest --force

check: build test

bench:
	dune exec bench/main.exe

demo:
	dune exec examples/recovery_demo.exe

# High-contention TPC-C smoke: every engine under deadlock detection with
# client retries and the online SI checker (non-zero exit on violation).
contention:
	for e in si si-cv sias sias-v; do \
	  echo "== $$e =="; \
	  dune exec bin/sias_cli.exe -- run -e $$e -w 1 -d 10 --scale-div 300 \
	    --terminals 8 --conflict-policy detect --retries 5 --check-si || exit 1; \
	done

clean:
	dune clean
