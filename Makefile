# Convenience targets; `make check` is what CI runs.

.PHONY: all build test check bench micro determinism multicore demo contention obs groupcommit repl isolation chaos index clean

all: build

build:
	dune build

test:
	dune runtest --force

check: build test

bench:
	dune exec bench/main.exe

# Wall-clock microbenchmarks over the engine hot paths (point read,
# scan, update, visibility-heavy scan, TPC-C NOTPM) with a
# machine-readable summary. Pass BASELINE=path/to/old.json to print
# speedups against a previously recorded run.
micro:
	mkdir -p _obs
	dune exec bench/main.exe -- micro --bench-out _obs/BENCH_5.json \
	  $(if $(BASELINE),--bench-baseline $(BASELINE),)

# Simulated results are part of the model: the default-seed run of every
# engine x isolation level must reproduce the committed golden output
# byte for byte (--domains 1 pins the single-domain deterministic path;
# it is the default, spelled out here because multicore must never leak
# into it). Wall-clock optimisations that leak into simulated time fail
# here.
determinism:
	mkdir -p _obs
	for e in si si-cv sias sias-v; do \
	  echo "== $$e =="; \
	  dune exec bin/sias_cli.exe -- run -e $$e --domains 1 > _obs/run_$$e.txt 2>&1 || exit 1; \
	  diff -u test/golden/run_$$e.txt _obs/run_$$e.txt || exit 1; \
	  for l in ssi wsi; do \
	    echo "== $$e/$$l =="; \
	    dune exec bin/sias_cli.exe -- run -e $$e --isolation $$l --domains 1 \
	      > _obs/run_$${e}_$${l}.txt 2>&1 || exit 1; \
	    diff -u test/golden/run_$${e}_$${l}.txt _obs/run_$${e}_$${l}.txt || exit 1; \
	  done; \
	done
	@echo "determinism OK: default-seed outputs match test/golden"

# Multicore smoke: the sharded TPC-C bench across 1/2/4 domains with the
# SI checker attached (non-zero exit on any violation), writing the
# scalability curve to _obs/BENCH_multicore.json, plus a 2-domain CLI
# run. Aggregate NOTPM must scale with domains (weak scaling); wall
# NOTPM additionally shows real-core speedup on multicore hosts.
multicore:
	mkdir -p _obs
	dune exec bench/main.exe -- multicore --bench-out _obs/BENCH_multicore.json
	dune exec bin/sias_cli.exe -- run -e sias-v --domains 2 -w 1 -d 10 \
	  --scale-div 300 --check-si
	@echo "multicore OK: _obs/BENCH_multicore.json"

demo:
	dune exec examples/recovery_demo.exe

# High-contention TPC-C smoke: every engine under deadlock detection with
# client retries and the online SI checker (non-zero exit on violation).
contention:
	for e in si si-cv sias sias-v; do \
	  echo "== $$e =="; \
	  dune exec bin/sias_cli.exe -- run -e $$e -w 1 -d 10 --scale-div 300 \
	    --terminals 8 --conflict-policy detect --retries 5 --check-si || exit 1; \
	done

# Observability smoke: a short run emitting both artifacts, then validate
# them — the trace must parse as JSON, the metrics must contain the
# device write counter the paper's Table 1 is built from.
obs:
	mkdir -p _obs
	dune exec bin/sias_cli.exe -- run -e sias -w 5 -d 20 --scale-div 300 \
	  --flush t1 --gc 10 --metrics-out _obs/metrics.prom \
	  --trace-out _obs/trace.json --stats-interval 5
	python3 -m json.tool _obs/trace.json > /dev/null
	grep -q '^sias_device_bytes_total{device="data-ssd",op="write"}' _obs/metrics.prom
	grep -q '"traceEvents"' _obs/trace.json
	@echo "obs artifacts OK: _obs/metrics.prom _obs/trace.json"

# Commit-pipeline ablation: every engine under per-commit fsync, group
# commit and async commit. Going sync -> group -> async, commit-path
# fsyncs must fall and throughput must not regress.
groupcommit:
	mkdir -p _obs
	dune exec bench/main.exe -- groupcommit | tee _obs/groupcommit.txt

# Replication smoke: forced failover (load, partition, crash the
# primary, promote the standby, verify) on every engine, one remote-flush
# run over a lossy link, then the WAL-shipping lag-vs-commit-delay
# ablation with a machine-readable artifact.
repl:
	mkdir -p _obs
	for e in si si-cv sias sias-v; do \
	  echo "== failover $$e =="; \
	  dune exec examples/failover_demo.exe -- $$e || exit 1; \
	done
	dune exec bin/sias_cli.exe -- run -e sias-v -w 2 -d 10 --scale-div 300 \
	  --repl remote-flush --repl-link lossy
	dune exec bench/main.exe -- repl --bench-out _obs/BENCH_repl.json \
	  | tee _obs/repl.txt

# Isolation smoke: the si/ssi/wsi ablation across all four engines (the
# bench exits non-zero unless si shows write-skew anomalies and the
# serializable levels show none), the write-skew example, and a chaos
# run at --isolation ssi (volatile SIREAD/abort state must not survive a
# crash). BENCH_isolation.json records the per-engine overhead delta.
isolation:
	mkdir -p _obs
	dune exec bench/main.exe -- isolation --bench-out _obs/BENCH_isolation.json \
	  | tee _obs/isolation.txt
	dune exec examples/serializable.exe
	dune exec bin/sias_cli.exe -- chaos --isolation ssi

# Crash-schedule smoke: every engine x commit mode, a budgeted sample of
# deterministic crash schedules (including crashes during recovery and
# primary-crash failover) plus the out-of-space scenarios. Every schedule
# must recover byte-identically to the model prefix. CHAOS_FULL=1 drops
# the budget and enumerates every schedule (CI nightly). The report is
# kept as an artifact either way; non-zero exit on any failing schedule.
chaos:
	mkdir -p _obs
	dune exec bin/sias_cli.exe -- chaos --standby \
	  $(if $(CHAOS_FULL),--full,) | tee _obs/chaos_report.txt
	dune exec bin/sias_cli.exe -- chaos --index paged \
	  $(if $(CHAOS_FULL),--full,) | tee _obs/chaos_report_paged.txt

# Paged-index smoke: a beyond-RAM TPC-C run on the WAL-logged paged
# B+Tree for each engine (array is the default and stays on the golden
# path), the paged-index crash schedules, and the index
# write-amplification bench chapter (BENCH_index.json: per-engine index
# vs heap device writes under buffer pressure).
index:
	mkdir -p _obs
	for e in si si-cv sias sias-v; do \
	  echo "== $$e/paged =="; \
	  dune exec bin/sias_cli.exe -- run -e $$e --index paged -w 4 -d 10 \
	    --scale-div 300 --buffer 256 --check-si || exit 1; \
	done
	dune exec bin/sias_cli.exe -- chaos --index paged --engines sias,sias-v \
	  --modes sync --budget 40 --oos false
	dune exec bench/main.exe -- index --bench-out _obs/BENCH_index.json
	@echo "index OK: _obs/BENCH_index.json"

clean:
	dune clean
	rm -rf _obs
