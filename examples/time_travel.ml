(* Multi-version time travel: long-lived snapshots keep seeing the state
   of the database as of their start, while writers move on — the
   PostgreSQL "TimeTravel" heritage the paper builds on. Also shows how
   the SIAS version chain serves many historical snapshots from one
   entrypoint.

     dune exec examples/time_travel.exe
*)

module E = Mvcc.Sias_engine
module Db = Mvcc.Db
module Value = Mvcc.Value

let () =
  let db = Db.create () in
  let eng = E.create db in
  let counters = E.create_table eng ~name:"counters" ~pk_col:0 () in

  let txn = E.begin_txn eng in
  E.insert eng txn counters [| Value.Int 1; Value.Int 0 |] |> Result.get_ok;
  E.commit eng txn |> Result.get_ok;

  (* take a snapshot after every increment *)
  let snapshots = ref [] in
  for i = 1 to 10 do
    let reader = E.begin_txn eng in
    snapshots := (i - 1, reader) :: !snapshots;
    let txn = E.begin_txn eng in
    E.update eng txn counters ~pk:1 (fun r ->
        let r = Array.copy r in
        r.(1) <- Value.Int i;
        r)
    |> Result.get_ok;
    E.commit eng txn |> Result.get_ok
  done;

  (* every snapshot still sees exactly the value from its epoch *)
  List.iter
    (fun (expected, reader) ->
      match E.read eng reader counters ~pk:1 with
      | Some row ->
          let got = Value.int row.(1) in
          Format.printf "snapshot@%d reads %d %s@." expected got
            (if got = expected then "(correct)" else "(WRONG)")
      | None -> Format.printf "snapshot@%d lost the row!@." expected)
    (List.rev !snapshots);

  let stats = E.table_stats eng counters in
  Format.printf "one data item, %d versions in its chain@."
    stats.Mvcc.Engine.total_versions;

  (* close snapshots oldest-last, GC as the horizon advances *)
  List.iter (fun (_, reader) -> E.commit eng reader |> Result.get_ok) !snapshots;
  E.gc eng;
  let stats = E.table_stats eng counters in
  Format.printf "snapshots closed, after GC: %d version(s) remain@."
    stats.Mvcc.Engine.total_versions
