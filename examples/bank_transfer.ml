(* Concurrent bank transfers under Snapshot Isolation.

   Demonstrates the transactional semantics both engines share: snapshots,
   first-updater-wins conflicts, aborts — and that the total balance is
   conserved no matter how transfers interleave.

     dune exec examples/bank_transfer.exe
*)

module E = Mvcc.Sias_engine
module Db = Mvcc.Db
module Value = Mvcc.Value
module Rng = Sias_util.Rng

let n_accounts = 50
let initial_balance = 1_000
let n_transfers = 2_000

let balance_of row = Value.int row.(1)

let () =
  let db = Db.create () in
  let eng = E.create db in
  let accounts = E.create_table eng ~name:"accounts" ~pk_col:0 () in

  (* open accounts *)
  let txn = E.begin_txn eng in
  for id = 1 to n_accounts do
    E.insert eng txn accounts [| Value.Int id; Value.Int initial_balance |]
    |> Result.get_ok
  done;
  E.commit eng txn |> Result.get_ok;

  let rng = Rng.create 2024 in
  let committed = ref 0 and conflicts = ref 0 in
  let set_balance v row =
    let row = Array.copy row in
    row.(1) <- Value.Int v;
    row
  in

  (* run transfers; a slow concurrent reader holds an old snapshot *)
  let auditor = E.begin_txn eng in
  for _ = 1 to n_transfers do
    let src = Rng.int_incl rng 1 n_accounts in
    let dst = ref src in
    while !dst = src do
      dst := Rng.int_incl rng 1 n_accounts
    done;
    let amount = Rng.int_incl rng 1 100 in
    let txn = E.begin_txn eng in
    let outcome =
      match E.read eng txn accounts ~pk:src with
      | Some row when balance_of row >= amount -> (
          let debit =
            E.update eng txn accounts ~pk:src (fun r ->
                set_balance (balance_of r - amount) r)
          in
          let credit =
            E.update eng txn accounts ~pk:!dst (fun r ->
                set_balance (balance_of r + amount) r)
          in
          match (debit, credit) with Ok (), Ok () -> `Commit | _ -> `Conflict)
      | Some _ -> `Skip (* insufficient funds *)
      | None -> assert false
    in
    match outcome with
    | `Commit ->
        E.commit eng txn |> Result.get_ok;
        incr committed
    | `Conflict ->
        E.abort eng txn;
        incr conflicts
    | `Skip -> E.abort eng txn
  done;

  (* the auditor's snapshot still sees the initial state *)
  let audit_total = ref 0 in
  let _ = E.scan eng auditor accounts (fun r -> audit_total := !audit_total + balance_of r) in
  Format.printf "auditor (old snapshot) total: %d (expected %d)@." !audit_total
    (n_accounts * initial_balance);
  E.commit eng auditor |> Result.get_ok;

  (* a fresh snapshot must conserve money too *)
  let txn = E.begin_txn eng in
  let total = ref 0 in
  let n = E.scan eng txn accounts (fun r -> total := !total + balance_of r) in
  E.commit eng txn |> Result.get_ok;
  Format.printf "after %d transfers (%d conflicts): %d accounts, total %d (conserved: %b)@."
    !committed !conflicts n !total
    (!total = n_accounts * initial_balance);

  (* version chains have grown; GC trims them *)
  let stats = E.table_stats eng accounts in
  Format.printf "before GC: %d tuple versions on %d pages@."
    stats.Mvcc.Engine.total_versions stats.Mvcc.Engine.heap_blocks;
  E.gc eng;
  let stats = E.table_stats eng accounts in
  Format.printf "after GC:  %d tuple versions (one per live account)@."
    stats.Mvcc.Engine.total_versions
