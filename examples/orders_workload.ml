(* The paper's motivating scenario end to end: an update-intensive order
   workload (TPC-C via the DBT2-style driver) on Flash, run against all
   three engines — the SI baseline, SIAS-Chains and SIAS-V — comparing
   throughput, response time and, above all, write I/O.

     dune exec examples/orders_workload.exe
*)

open Harness.Experiments
module W = Tpcc.Tpcc_workload
module T = Sias_util.Tablefmt

let () =
  let base = default_setup ~engine:"si" ~warehouses:20 in
  let base =
    { base with duration_s = 30.0; buffer_pages = 1024; gc_interval_s = Some 10.0 }
  in
  let table =
    T.create
      [ "engine"; "NOTPM"; "resp(new-order)"; "writes MB"; "reads MB"; "space MB" ]
  in
  List.iter
    (fun engine ->
      let o = run_tpcc { base with engine } in
      T.add_row table
        [
          engine_name engine;
          T.fmt_float ~decimals:0 o.result.W.notpm;
          T.fmt_float ~decimals:4 (W.resp_mean o.result W.New_order) ^ " s";
          T.fmt_float o.run_write_mb;
          T.fmt_float o.run_read_mb;
          T.fmt_float o.space_mb;
        ])
    [ "si"; "si-cv"; "sias"; "sias-v" ];
  print_endline "TPC-C, 20 warehouses, 30 simulated seconds, single SSD:";
  T.print table;
  print_endline "";
  print_endline
    "SIAS turns every modification into an append: same workload, a fraction\n\
     of the page writes. SIAS-V trades a little write amplification (vector\n\
     re-appends) for single-fetch version resolution."
