(* Write skew: the classic Snapshot Isolation anomaly (two doctors both
   going off call because each saw the other still on call), and the
   serializable levels that prevent it. Isolation is a first-class axis
   of the context: the same SIAS-Chains engine runs under plain [`Si],
   PostgreSQL-style [`Ssi] (the paper's related work [10]/[28]) and
   write-snapshot [`Wsi] just by picking the level at [Db.create].

     dune exec examples/serializable.exe
*)

module E = Mvcc.Sias_engine
module Value = Mvcc.Value
module Db = Mvcc.Db

let on_call = 1

let set_off r =
  let r = Array.copy r in
  r.(1) <- Value.Int 0;
  r

let doctors_on_call read =
  List.length (List.filter (fun k -> Value.int (read k).(1) = on_call) [ 1; 2 ])

(* Run the write-skew schedule at one isolation level and report what
   committed and how many doctors are left on call. *)
let run isolation =
  let db = Db.create ~isolation () in
  let eng = E.create db in
  let t = E.create_table eng ~name:"doctors" ~pk_col:0 () in
  let txn = E.begin_txn eng in
  E.insert eng txn t [| Value.Int 1; Value.Int on_call |] |> Result.get_ok;
  E.insert eng txn t [| Value.Int 2; Value.Int on_call |] |> Result.get_ok;
  E.commit eng txn |> Result.get_ok;
  let t1 = E.begin_txn eng in
  let t2 = E.begin_txn eng in
  (* each doctor checks that the OTHER is still on call... *)
  ignore (E.read eng t1 t ~pk:2);
  ignore (E.read eng t2 t ~pk:1);
  (* ...and goes off call *)
  E.update eng t1 t ~pk:1 set_off |> Result.get_ok;
  E.update eng t2 t ~pk:2 set_off |> Result.get_ok;
  let r1 = E.commit eng t1 in
  let r2 = E.commit eng t2 in
  let txn = E.begin_txn eng in
  let n = doctors_on_call (fun k -> Option.get (E.read eng txn t ~pk:k)) in
  ignore (E.commit eng txn);
  (r1, r2, n)

let show = function
  | Ok () -> "committed"
  | Error _ -> "ABORTED (serialization)"

let () =
  let r1, r2, n = run `Si in
  Format.printf "SI:   T1 %s, T2 %s -> %d doctor(s) on call (write skew!)@."
    (show r1) (show r2) n;
  let r1, r2, n = run `Ssi in
  Format.printf "SSI:  T1 %s, T2 %s -> %d doctor(s) on call — invariant holds@."
    (show r1) (show r2) n;
  let r1, r2, n = run `Wsi in
  Format.printf "WSI:  T1 %s, T2 %s -> %d doctor(s) on call — invariant holds@."
    (show r1) (show r2) n
