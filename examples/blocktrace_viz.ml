(* Reproduce the paper's Figures 3 and 4 interactively: run the same
   TPC-C workload under SI and under SIAS-Chains and render the block
   traces — SI shows scattered in-place writes across the relations,
   SIAS shows read scatter plus clean append lanes.

     dune exec examples/blocktrace_viz.exe
*)

open Harness.Experiments
module B = Flashsim.Blocktrace

let run engine =
  let setup =
    {
      (default_setup ~engine ~warehouses:20) with
      duration_s = 30.0;
      buffer_pages = 1024;
      keep_trace_records = true;
    }
  in
  run_tpcc setup

let () =
  let sias = run "sias" in
  let si = run "si" in
  Format.printf "=== SIAS-Chains blocktrace (cf. paper Figure 3) ===@.";
  Format.printf "%s@." (B.render_scatter sias.trace);
  Format.printf "reads %d / writes %d (%.0f%% reads)@.@."
    (B.read_count sias.trace) (B.write_count sias.trace)
    (100.0
    *. float_of_int (B.read_count sias.trace)
    /. float_of_int (max 1 (B.read_count sias.trace + B.write_count sias.trace)));
  Format.printf "=== SI blocktrace (cf. paper Figure 4) ===@.";
  Format.printf "%s@." (B.render_scatter si.trace);
  Format.printf "reads %d / writes %d (%.0f%% reads)@."
    (B.read_count si.trace) (B.write_count si.trace)
    (100.0
    *. float_of_int (B.read_count si.trace)
    /. float_of_int (max 1 (B.read_count si.trace + B.write_count si.trace)))
