(* Crash recovery end to end: commit work, crash (losing every page that
   had not reached stable storage), recover from the surviving pages plus
   the WAL, and verify the committed state — including the paper's point
   that SIAS rebuilds its VID_map purely from on-tuple information.

   Act two crashes a machine whose in-flight page writes tear (only a
   sector prefix persists): the page checksums catch the damage on
   read-in and recovery rebuilds each torn page from the WAL's full-page
   images and redo records.

     dune exec examples/recovery_demo.exe
*)

module E = Mvcc.Sias_engine
module Db = Mvcc.Db
module Value = Mvcc.Value
module Bufpool = Sias_storage.Bufpool
module Faultdev = Flashsim.Faultdev

let clean_crash () =
  let db = Db.create ~buffer_pages:256 () in
  let eng = E.create db in
  let accounts = E.create_table eng ~name:"accounts" ~pk_col:0 () in

  let txn = E.begin_txn eng in
  for id = 1 to 100 do
    E.insert eng txn accounts [| Value.Int id; Value.Int 1000 |] |> Result.get_ok
  done;
  E.commit eng txn |> Result.get_ok;

  (* checkpoint part of the state... *)
  Bufpool.flush_all db.Db.pool ~sync:false;
  Format.printf "checkpoint done (100 accounts on stable storage)@.";

  (* ...then more committed work that only lives in buffers + WAL *)
  let txn = E.begin_txn eng in
  for id = 1 to 50 do
    E.update eng txn accounts ~pk:id (fun r ->
        let r = Array.copy r in
        r.(1) <- Value.Int 2000;
        r)
    |> Result.get_ok
  done;
  E.commit eng txn |> Result.get_ok;

  (* and one transaction that never commits *)
  let doomed = E.begin_txn eng in
  E.insert eng doomed accounts [| Value.Int 999; Value.Int 1 |] |> Result.get_ok;

  Format.printf "CRASH: dropping %d buffered pages (uncommitted txn in flight)@."
    (Bufpool.dirty_count db.Db.pool);
  Bufpool.drop_cache db.Db.pool;

  E.recover eng;
  let txn = E.begin_txn eng in
  let total = ref 0 and n = ref 0 in
  let _ = E.scan eng txn accounts (fun r ->
      incr n;
      total := !total + Value.int r.(1)) in
  Format.printf "recovered: %d accounts, total balance %d (expected %d)@." !n !total
    ((50 * 2000) + (50 * 1000));
  (match E.read eng txn accounts ~pk:999 with
  | None -> Format.printf "uncommitted insert correctly rolled back@."
  | Some _ -> Format.printf "ERROR: phantom uncommitted row!@.");
  E.commit eng txn |> Result.get_ok

let torn_page_crash () =
  Format.printf "@.-- torn-page crash: every in-flight write tears --@.";
  let faults =
    Faultdev.create
      ~profile:
        {
          Faultdev.transient_read_p = 0.0;
          transient_max = 0;
          read_corrupt_p = 0.0;
          torn_write_p = 1.0;
        }
      ~seed:7 ()
  in
  let device = Faultdev.wrap faults (Flashsim.Device.ssd_x25e ~name:"data-ssd" ()) in
  let db = Db.create ~device ~faults ~buffer_pages:256 () in
  let eng = E.create db in
  let accounts = E.create_table eng ~name:"accounts" ~pk_col:0 () in

  let txn = E.begin_txn eng in
  for id = 1 to 100 do
    E.insert eng txn accounts [| Value.Int id; Value.Int 1000 |] |> Result.get_ok
  done;
  E.commit eng txn |> Result.get_ok;
  Bufpool.flush_all db.Db.pool ~sync:false;

  (* more committed work, then a flush that is in flight when the machine
     dies: those writes persist only a torn prefix *)
  let txn = E.begin_txn eng in
  for id = 1 to 50 do
    E.update eng txn accounts ~pk:id (fun r ->
        let r = Array.copy r in
        r.(1) <- Value.Int 2000;
        r)
    |> Result.get_ok
  done;
  E.commit eng txn |> Result.get_ok;
  Bufpool.flush_all db.Db.pool ~sync:false;

  Format.printf "CRASH mid-flush@.";
  Db.crash db;

  E.recover eng;
  let txn = E.begin_txn eng in
  let total = ref 0 and n = ref 0 in
  let _ =
    E.scan eng txn accounts (fun r ->
        incr n;
        total := !total + Value.int r.(1))
  in
  E.commit eng txn |> Result.get_ok;
  Format.printf "recovered: %d accounts, total balance %d (expected %d)@." !n !total
    ((50 * 2000) + (50 * 1000));
  let s = Bufpool.stats db.Db.pool in
  Format.printf
    "torn pages applied at crash %d | checksum failures on read-in %d | pages rebuilt from WAL %d@."
    s.Bufpool.torn_pages s.Bufpool.checksum_failures s.Bufpool.pages_repaired;
  if !total <> (50 * 2000) + (50 * 1000) then begin
    Format.printf "ERROR: torn-page recovery produced wrong balances!@.";
    exit 1
  end

let () =
  clean_crash ();
  torn_page_crash ()
