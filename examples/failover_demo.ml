(* Failover end to end: stream the WAL to a hot standby over a lossy
   link, read from the standby while it trails the primary, partition
   the link, crash the primary, promote the standby, and verify the
   promoted database serves exactly the replicated committed prefix —
   then keep writing on the new primary.

     dune exec examples/failover_demo.exe -- [engine]    (default sias-v)
*)

module Db = Mvcc.Db
module Value = Mvcc.Value
module Bufpool = Sias_storage.Bufpool
module Simclock = Sias_util.Simclock
module Repl = Sias_repl.Repl
module Link = Sias_repl.Link

let () =
  let key = if Array.length Sys.argv > 1 then Sys.argv.(1) else "sias-v" in
  let key, (module E : Mvcc.Engine.S) = Mvcc.Engine.resolve_exn key in
  Format.printf "engine: %s@." (Mvcc.Engine.display_name key);

  (* primary and standby are two full database contexts; the standby
     mirrors the table-creation order so relation ids agree *)
  let pdb = Db.create ~buffer_pages:256 () in
  let peng = E.create pdb in
  let accounts = E.create_table peng ~name:"accounts" ~pk_col:0 () in
  let sdb = Db.create ~buffer_pages:256 () in
  let seng = E.create sdb in
  let s_accounts = E.create_table seng ~name:"accounts" ~pk_col:0 () in

  let link = Link.create ~profile:Link.lossy ~seed:42 () in
  let repl = Repl.attach ~primary:pdb ~standby:sdb ~link ~mode:Repl.Ship_async () in
  Repl.set_refresh repl (fun () ->
      Bufpool.drop_cache sdb.Db.pool;
      E.recover seng);

  (* the sender rides the primary's tick; advancing simulated time lets
     in-flight messages arrive and go-back-N repair the lossy link *)
  let settle () =
    for _ = 1 to 50 do
      Simclock.advance pdb.Db.clock 0.02;
      Db.tick pdb
    done
  in

  (* act one: load, and let replication catch up *)
  let txn = E.begin_txn peng in
  for id = 1 to 100 do
    E.insert peng txn accounts [| Value.Int id; Value.Int 1000 |] |> Result.get_ok
  done;
  E.commit peng txn |> Result.get_ok;
  settle ();
  Format.printf "loaded 100 accounts; standby installed-lsn=%d lag=%d records@."
    (Repl.installed_lsn repl)
    (Repl.stats repl).Repl.lag_records;

  (* a hot-standby read: materialize the installed prefix through the
     engine's ordinary crash-recovery path, then scan *)
  Repl.refresh repl;
  let txn = E.begin_txn seng in
  let n = ref 0 in
  let _ = E.scan seng txn s_accounts (fun _ -> incr n) in
  E.commit seng txn |> Result.get_ok;
  Format.printf "hot-standby scan sees %d accounts@." !n;

  (* act two: the link partitions, and the primary keeps committing *)
  Repl.partition repl true;
  Format.printf "link PARTITIONED; primary commits 50 more updates@.";
  let txn = E.begin_txn peng in
  for id = 1 to 50 do
    E.update peng txn accounts ~pk:id (fun r ->
        let r = Array.copy r in
        r.(1) <- Value.Int 2000;
        r)
    |> Result.get_ok
  done;
  E.commit peng txn |> Result.get_ok;
  settle ();
  let s = Repl.stats repl in
  Format.printf "standby now lags %d records (link dropped %d messages)@."
    s.Repl.lag_records s.Repl.link_dropped;

  (* act three: the primary dies before the partition heals *)
  Format.printf "CRASH: primary lost@.";
  Db.crash pdb;

  Repl.promote repl;
  Format.printf "standby promoted at commit horizon xid=%d@."
    (Repl.commit_horizon repl);

  (* verify: the promoted database serves the replicated committed
     prefix — all 100 accounts at their pre-partition balance *)
  let txn = E.begin_txn seng in
  let n = ref 0 and total = ref 0 in
  let _ =
    E.scan seng txn s_accounts (fun r ->
        incr n;
        total := !total + Value.int r.(1))
  in
  E.commit seng txn |> Result.get_ok;
  Format.printf "promoted state: %d accounts, total balance %d (expected %d)@."
    !n !total (100 * 1000);
  if !n <> 100 || !total <> 100 * 1000 then begin
    Format.printf "ERROR: promoted standby diverged from the shipped prefix!@.";
    exit 1
  end;

  (* the new primary accepts writes *)
  let txn = E.begin_txn seng in
  E.insert seng txn s_accounts [| Value.Int 999; Value.Int 42 |] |> Result.get_ok;
  E.commit seng txn |> Result.get_ok;
  let txn = E.begin_txn seng in
  (match E.read seng txn s_accounts ~pk:999 with
  | Some r -> Format.printf "new primary accepts writes (row 999 -> %d)@." (Value.int r.(1))
  | None ->
      Format.printf "ERROR: write on the promoted standby vanished!@.";
      exit 1);
  E.commit seng txn |> Result.get_ok;
  Format.printf "failover complete@."
