(* Quickstart: open a SIAS-Chains database on a simulated Flash SSD,
   create a table, run a few transactions and look at the I/O counters.

     dune exec examples/quickstart.exe
*)

module E = Mvcc.Sias_engine
module Db = Mvcc.Db
module Value = Mvcc.Value

let () =
  (* a database context: simulated SSD + buffer pool + WAL + txn manager *)
  let db = Db.create ~buffer_pages:1024 () in
  let eng = E.create db in

  (* products(id, price, name) with a secondary index on price *)
  let products = E.create_table eng ~name:"products" ~pk_col:0 ~secondary:[ 1 ] () in

  (* insert a few rows in one transaction *)
  let txn = E.begin_txn eng in
  List.iter
    (fun (id, price, name) ->
      E.insert eng txn products [| Value.Int id; Value.Int price; Value.Str name |]
      |> Result.get_ok)
    [ (1, 999, "laptop"); (2, 49, "keyboard"); (3, 49, "mouse"); (4, 299, "monitor") ];
  E.commit eng txn |> Result.get_ok;

  (* update: creates a new tuple version, appended — the old one is never
     touched (no in-place invalidation) *)
  let txn = E.begin_txn eng in
  E.update eng txn products ~pk:1 (fun row ->
      let row = Array.copy row in
      row.(1) <- Value.Int 899;
      row)
  |> Result.get_ok;
  E.commit eng txn |> Result.get_ok;

  (* point read, index lookup, range scan *)
  let txn = E.begin_txn eng in
  (match E.read eng txn products ~pk:1 with
  | Some row -> Format.printf "laptop now costs %d@." (Value.int row.(1))
  | None -> assert false);
  let cheap = E.lookup eng txn products ~col:1 ~key:49 in
  Format.printf "%d products cost 49@." (List.length cheap);
  let all = E.range_pk eng txn products ~lo:1 ~hi:10 in
  Format.printf "range scan sees %d products@." (List.length all);
  E.commit eng txn |> Result.get_ok;

  (* what reached the device? *)
  Sias_storage.Bufpool.flush_all db.Db.pool ~sync:false;
  let trace = Flashsim.Device.trace db.Db.device in
  Format.printf "device: %d page writes (%.1f KB), %d reads@."
    (Flashsim.Blocktrace.write_count trace)
    (1024.0 *. Flashsim.Blocktrace.write_mb trace)
    (Flashsim.Blocktrace.read_count trace);
  let walks, visited = E.chain_walk_stats eng in
  Format.printf "version-chain walks: %d (%.2f versions each)@." walks
    (if walks = 0 then 0.0 else float_of_int visited /. float_of_int walks)
