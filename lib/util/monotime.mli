(** Monotonic wall-clock time for benchmark measurement.

    Backed by [Unix.clock_gettime CLOCK_MONOTONIC]: immune to NTP steps
    and clock slew, so intervals are always non-negative and readings
    are non-decreasing. Use this — never [Unix.gettimeofday] — whenever
    measuring real elapsed time. *)

val now : unit -> float
(** Seconds from an arbitrary fixed origin; non-decreasing. *)

val elapsed_since : float -> float
(** [elapsed_since t0] is [now () -. t0]; non-negative when [t0] came
    from {!now}. *)
