(** Parallel-execution primitives for OCaml 5 domains.

    Shared-nothing model: partition work per domain, communicate through
    explicit channels. See DESIGN.md "Multicore execution model". *)

module Chan : sig
  (** Unbounded multi-producer multi-consumer channel (mutex + condvar). *)

  type 'a t

  val create : unit -> 'a t

  val send : 'a t -> 'a -> unit
  (** Raises [Invalid_argument] if the channel has been closed. *)

  val close : 'a t -> unit
  (** Wake all blocked receivers; subsequent [recv] drains then returns
      [None]. Idempotent. *)

  val recv : 'a t -> 'a option
  (** Block until a value is available or the channel is closed and
      empty ([None]). *)

  val try_recv : 'a t -> 'a option
  (** Non-blocking receive. *)

  val length : 'a t -> int
end

module Barrier : sig
  (** Reusable phase barrier for [parties] participants. *)

  type t

  val create : int -> t
  val wait : t -> unit
end

val run : domains:int -> (int -> 'a) -> 'a array
(** [run ~domains f] evaluates [f i] for each domain index
    [0 <= i < domains] in parallel and returns results in index order.
    [domains = 1] runs inline on the caller (no spawn) so the
    deterministic single-domain path is untouched. If a worker raises,
    the first exception is re-raised after every domain has joined. *)
