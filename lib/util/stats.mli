(** Online statistics: mean/variance accumulators, percentile samples and
    fixed-bucket histograms used by the benchmark harness. *)

(** Welford accumulator for mean and variance. *)
module Acc : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** 0. when empty. *)

  val variance : t -> float
  (** Sample variance; 0. with fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float
  (** [infinity] when empty. *)

  val max : t -> float
  (** [neg_infinity] when empty. *)

  val total : t -> float
end

(** Growable sample buffer with exact percentiles. *)
module Sample : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val percentile : t -> float -> float
  (** [percentile s p] with [p] in [0,100]; nearest-rank on the sorted
      sample. Raises [Invalid_argument] when empty or [p] out of range. *)

  val mean : t -> float
  val max : t -> float
  val to_array : t -> float array
  (** Sorted copy of the observations. *)
end

(** Named monotonic event counter; the reliability layer (fault injection,
    retries, page repairs) reports through these so every layer exposes
    its counts uniformly. *)
module Counter : sig
  type t

  val create : string -> t
  val incr : t -> unit
  val add : t -> int -> unit
  val value : t -> int
  val name : t -> string
  val reset : t -> unit

  val to_info : t list -> (string * float) list
  (** As [(name, value)] pairs, for merging into device [info] lists. *)
end

(** Fixed-width bucket histogram over [0, width * buckets); values beyond
    the last bucket are clamped into it. *)
module Histogram : sig
  type t

  val create : bucket_width:float -> buckets:int -> t
  val add : t -> float -> unit
  val counts : t -> int array
  val total : t -> int
  val bucket_width : t -> float

  val percentile : t -> float -> float
  (** Nearest-rank percentile estimated from the buckets (the upper edge
      of the bucket holding the rank-th observation), so the estimate is
      an upper bound within one bucket width. Raises [Invalid_argument]
      when the histogram is empty or [p] is outside [0,100]. *)
end
