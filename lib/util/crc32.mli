(** CRC-32 (IEEE, reflected) for on-disk integrity checks: page images and
    WAL records. Streaming API for checksumming discontiguous ranges (a
    page minus its own checksum field). *)

val init : int
(** Initial accumulator state. *)

val update : int -> bytes -> pos:int -> len:int -> int
(** Fold a byte range into the accumulator. *)

val finish : int -> int
(** Final xor; the value is in [0, 2^32). *)

val digest : bytes -> pos:int -> len:int -> int
(** [finish (update init buf ~pos ~len)]. *)

val bytes : bytes -> int
(** Digest of a whole buffer. *)
