(* Small parallel-execution primitives for OCaml 5 domains.

   The design follows the shared-nothing / message-passing model (cf.
   DragonflyBSD's lwkt + netisr): work is partitioned per domain up
   front, domains own their data outright, and the only cross-domain
   traffic flows through explicit channels. Nothing here is clever —
   mutex+condvar channels and a phase barrier — because the sharding
   layer above is what removes contention, not the primitives. *)

module Chan = struct
  type 'a t = {
    q : 'a Queue.t;
    m : Mutex.t;
    nonempty : Condition.t;
    mutable closed : bool;
  }

  let create () =
    { q = Queue.create (); m = Mutex.create ();
      nonempty = Condition.create (); closed = false }

  let send t v =
    Mutex.lock t.m;
    if t.closed then begin
      Mutex.unlock t.m;
      invalid_arg "Domainpool.Chan.send: channel is closed"
    end;
    Queue.push v t.q;
    Condition.signal t.nonempty;
    Mutex.unlock t.m

  let close t =
    Mutex.lock t.m;
    t.closed <- true;
    Condition.broadcast t.nonempty;
    Mutex.unlock t.m

  (* Blocking receive; [None] once the channel is closed and drained. *)
  let recv t =
    Mutex.lock t.m;
    let rec wait () =
      match Queue.take_opt t.q with
      | Some v -> Mutex.unlock t.m; Some v
      | None ->
        if t.closed then (Mutex.unlock t.m; None)
        else (Condition.wait t.nonempty t.m; wait ())
    in
    wait ()

  let try_recv t =
    Mutex.lock t.m;
    let v = Queue.take_opt t.q in
    Mutex.unlock t.m;
    v

  let length t =
    Mutex.lock t.m;
    let n = Queue.length t.q in
    Mutex.unlock t.m;
    n
end

module Barrier = struct
  type t = {
    m : Mutex.t;
    c : Condition.t;
    parties : int;
    mutable waiting : int;
    mutable phase : int;
  }

  let create parties =
    if parties < 1 then invalid_arg "Domainpool.Barrier.create";
    { m = Mutex.create (); c = Condition.create ();
      parties; waiting = 0; phase = 0 }

  let wait t =
    Mutex.lock t.m;
    let my_phase = t.phase in
    t.waiting <- t.waiting + 1;
    if t.waiting = t.parties then begin
      t.waiting <- 0;
      t.phase <- t.phase + 1;
      Condition.broadcast t.c
    end else
      while t.phase = my_phase do
        Condition.wait t.c t.m
      done;
    Mutex.unlock t.m
end

(* Run [f 0 .. f (domains-1)] in parallel and return their results in
   index order. [domains = 1] runs inline on the calling domain — no
   spawn, no barrier cost — which is what keeps the single-domain sim
   path byte-exact and scheduler-free. An exception in any worker is
   re-raised after all domains have been joined. *)
let run ~domains f =
  if domains < 1 then invalid_arg "Domainpool.run: domains must be >= 1";
  if domains = 1 then [| f 0 |]
  else begin
    let workers =
      Array.init domains (fun i -> Domain.spawn (fun () -> f i))
    in
    let results = Array.make domains None in
    let first_exn = ref None in
    Array.iteri
      (fun i d ->
        match Domain.join d with
        | v -> results.(i) <- Some v
        | exception e -> if !first_exn = None then first_exn := Some e)
      workers;
    (match !first_exn with Some e -> raise e | None -> ());
    Array.map
      (function Some v -> v | None -> assert false)
      results
  end
