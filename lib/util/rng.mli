(** Deterministic pseudo-random number generation (splitmix64).

    Every stochastic component of the simulator draws from an explicit
    generator so that experiments are reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] builds a generator from a seed. Equal seeds give equal
    streams. *)

val split : t -> t
(** Derive an independent generator; the parent stream advances by one. *)

val stream : seed:int -> stream:int -> t
(** [stream ~seed ~stream:i] is the [i]-th member of a family of
    independent generators derived from [seed]. Stream 0 is exactly
    [create seed]; streams [i >= 1] advance with their own odd additive
    constant (splitmix64 gamma) so no two streams can phase-lock.
    Intended use: one stream per domain, indexed by domain id.
    Raises [Invalid_argument] on a negative index. *)

val fingerprint : t -> int64 * int64
(** Current [(state, gamma)] pair. Two generators with equal fingerprints
    will produce identical output forever. *)

val assert_independent : t array -> unit
(** Fail loudly (with [Failure]) if any two generators in the array are
    the same stream, i.e. have identical fingerprints. Call after handing
    a stream to each domain: silent correlation between domains would
    invalidate every stochastic experiment. *)

val copy : t -> t
(** Snapshot the generator: the copy replays the same stream from the
    current position without advancing the original. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises if [bound <= 0]. *)

val int_incl : t -> int -> int -> int
(** [int_incl t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)

val pick_weighted : t -> (int * 'a) list -> 'a
(** [pick_weighted t [(w1, a1); ...]] picks [ai] with probability
    proportional to [wi]. Weights must be positive and non-empty. *)
