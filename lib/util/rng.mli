(** Deterministic pseudo-random number generation (splitmix64).

    Every stochastic component of the simulator draws from an explicit
    generator so that experiments are reproducible from a seed. *)

type t

val create : int -> t
(** [create seed] builds a generator from a seed. Equal seeds give equal
    streams. *)

val split : t -> t
(** Derive an independent generator; the parent stream advances by one. *)

val copy : t -> t
(** Snapshot the generator: the copy replays the same stream from the
    current position without advancing the original. *)

val int64 : t -> int64
(** Next raw 64-bit value. *)

val int : t -> int -> int
(** [int t bound] is uniform in [0, bound). Raises if [bound <= 0]. *)

val int_incl : t -> int -> int -> int
(** [int_incl t lo hi] is uniform in [lo, hi] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [0, bound). *)

val bool : t -> bool

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val exponential : t -> float -> float
(** [exponential t mean] draws from Exp with the given mean. *)

val pick_weighted : t -> (int * 'a) list -> 'a
(** [pick_weighted t [(w1, a1); ...]] picks [ai] with probability
    proportional to [wi]. Weights must be positive and non-empty. *)
