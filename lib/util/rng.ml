type t = { mutable state : int64 }

(* splitmix64 constants; see Steele, Lea & Flood, OOPSLA'14. *)
let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed) }

let int64 t =
  t.state <- Int64.add t.state golden;
  mix t.state

let split t = { state = int64 t }

let copy t = { state = t.state }

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's native int *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let int_incl t lo hi =
  if hi < lo then invalid_arg "Rng.int_incl: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (int64 t) 1L = 1L

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let pick_weighted t weighted =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if total <= 0 then invalid_arg "Rng.pick_weighted: weights must be positive";
  let roll = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.pick_weighted: empty list"
    | (w, a) :: rest -> if roll < acc + w then a else go (acc + w) rest
  in
  go 0 weighted
