type t = { mutable state : int64; gamma : int64 }

(* splitmix64 constants; see Steele, Lea & Flood, OOPSLA'14. *)
let golden = 0x9E3779B97F4A7C15L

let mix z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix (Int64.of_int seed); gamma = golden }

let int64 t =
  t.state <- Int64.add t.state t.gamma;
  mix t.state

let split t = { state = int64 t; gamma = t.gamma }

let copy t = { state = t.state; gamma = t.gamma }

(* Mix used to derive per-stream gammas; distinct from [mix] so a stream's
   gamma never collides with a state value produced from the same bits. *)
let mix_gamma z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xFF51AFD7ED558CCDL in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 33)) 0xC4CEB9FE1A85EC53L in
  Int64.logxor z (Int64.shift_right_logical z 33)

let stream ~seed ~stream:idx =
  if idx < 0 then invalid_arg "Rng.stream: stream index must be >= 0";
  if idx = 0 then create seed
  else begin
    (* Stream 0 is exactly [create seed]; streams >= 1 get an additive
       constant (gamma) of their own, so the sequences are driven by
       different Weyl increments and cannot phase-lock. Gammas must be odd
       for splitmix64 to cover the full period. *)
    let base = mix (Int64.of_int seed) in
    let g = mix_gamma (Int64.add golden (Int64.of_int idx)) in
    let gamma = Int64.logor g 1L in
    { state = mix (Int64.logxor base (mix_gamma (Int64.of_int idx))); gamma }
  end

let fingerprint t = (t.state, t.gamma)

let assert_independent rngs =
  let n = Array.length rngs in
  for i = 0 to n - 1 do
    for j = i + 1 to n - 1 do
      let a = rngs.(i) and b = rngs.(j) in
      if Int64.equal a.gamma b.gamma && Int64.equal a.state b.state then
        failwith
          (Printf.sprintf
             "Rng.assert_independent: streams %d and %d are identical \
              (state=%Lx gamma=%Lx); every domain must own a distinct stream"
             i j a.state a.gamma)
    done
  done

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* keep 62 bits so the value fits OCaml's native int *)
  let v = Int64.to_int (Int64.shift_right_logical (int64 t) 2) in
  v mod bound

let int_incl t lo hi =
  if hi < lo then invalid_arg "Rng.int_incl: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  let v = Int64.to_float (Int64.shift_right_logical (int64 t) 11) in
  bound *. v /. 9007199254740992.0 (* 2^53 *)

let bool t = Int64.logand (int64 t) 1L = 1L

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let exponential t mean =
  let u = float t 1.0 in
  let u = if u <= 0.0 then 1e-12 else u in
  -.mean *. log u

let pick_weighted t weighted =
  let total = List.fold_left (fun acc (w, _) -> acc + w) 0 weighted in
  if total <= 0 then invalid_arg "Rng.pick_weighted: weights must be positive";
  let roll = int t total in
  let rec go acc = function
    | [] -> invalid_arg "Rng.pick_weighted: empty list"
    | (w, a) :: rest -> if roll < acc + w then a else go (acc + w) rest
  in
  go 0 weighted
