module Acc = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; min = infinity; max = neg_infinity; total = 0.0 }

  let add t x =
    t.n <- t.n + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.n);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.total <- t.total +. x

  let count t = t.n
  let mean t = if t.n = 0 then 0.0 else t.mean
  let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
  let total t = t.total
end

module Sample = struct
  type t = {
    mutable data : float array;
    mutable len : int;
    mutable sorted : bool;
  }

  let create () = { data = Array.make 64 0.0; len = 0; sorted = true }

  let add t x =
    if t.len = Array.length t.data then begin
      let bigger = Array.make (2 * t.len) 0.0 in
      Array.blit t.data 0 bigger 0 t.len;
      t.data <- bigger
    end;
    t.data.(t.len) <- x;
    t.len <- t.len + 1;
    t.sorted <- false

  let count t = t.len

  let ensure_sorted t =
    if not t.sorted then begin
      let live = Array.sub t.data 0 t.len in
      (* Float.compare, not polymorphic compare: monomorphic (no boxing
         through the generic compare runtime path) and total on floats —
         NaNs sort below every number instead of poisoning comparisons,
         so percentiles stay well-defined on samples containing NaN. *)
      Array.sort Float.compare live;
      Array.blit live 0 t.data 0 t.len;
      t.sorted <- true
    end

  let percentile t p =
    if t.len = 0 then invalid_arg "Stats.Sample.percentile: empty sample";
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.Sample.percentile: p out of range";
    ensure_sorted t;
    let rank = int_of_float (ceil (p /. 100.0 *. float_of_int t.len)) in
    let idx = Stdlib.max 0 (Stdlib.min (t.len - 1) (rank - 1)) in
    t.data.(idx)

  let mean t =
    if t.len = 0 then 0.0
    else begin
      let s = ref 0.0 in
      for i = 0 to t.len - 1 do
        s := !s +. t.data.(i)
      done;
      !s /. float_of_int t.len
    end

  let max t =
    let m = ref neg_infinity in
    for i = 0 to t.len - 1 do
      if t.data.(i) > !m then m := t.data.(i)
    done;
    !m

  let to_array t =
    ensure_sorted t;
    Array.sub t.data 0 t.len
end

module Counter = struct
  type t = { name : string; mutable n : int }

  let create name = { name; n = 0 }
  let incr t = t.n <- t.n + 1
  let add t k = t.n <- t.n + k
  let value t = t.n
  let name t = t.name
  let reset t = t.n <- 0
  let to_info ts = List.map (fun t -> (t.name, float_of_int t.n)) ts
end

module Histogram = struct
  type t = { width : float; counts : int array; mutable total : int }

  let create ~bucket_width ~buckets =
    if bucket_width <= 0.0 || buckets <= 0 then invalid_arg "Stats.Histogram.create";
    { width = bucket_width; counts = Array.make buckets 0; total = 0 }

  let add t x =
    let i = int_of_float (x /. t.width) in
    let i = Stdlib.max 0 (Stdlib.min (Array.length t.counts - 1) i) in
    t.counts.(i) <- t.counts.(i) + 1;
    t.total <- t.total + 1

  let counts t = Array.copy t.counts
  let total t = t.total
  let bucket_width t = t.width

  (* Nearest-rank percentile estimated from the buckets: the upper edge
     of the bucket containing the rank-th observation. *)
  let percentile t p =
    if t.total = 0 then invalid_arg "Stats.Histogram.percentile: empty histogram";
    if p < 0.0 || p > 100.0 then invalid_arg "Stats.Histogram.percentile: p out of range";
    let rank = Stdlib.max 1 (int_of_float (ceil (p /. 100.0 *. float_of_int t.total))) in
    let n = Array.length t.counts in
    let rec go i cum =
      if i >= n then float_of_int n *. t.width
      else
        let cum = cum + t.counts.(i) in
        if cum >= rank then float_of_int (i + 1) *. t.width else go (i + 1) cum
    in
    go 0 0
end
