(* Monotonic wall-clock readings for benchmark timing.

   [Unix.gettimeofday] is subject to NTP steps and manual clock changes,
   which can make a benchmark interval negative or wildly wrong;
   CLOCK_MONOTONIC cannot go backwards. All wall-clock measurement in
   bench/ and the multicore harness goes through here. The simulator's
   virtual clock ([Simclock]) is unrelated. *)

external now : unit -> float = "sias_monotime_now"

let elapsed_since t0 = now () -. t0
