(* CRC-32 (IEEE 802.3 polynomial, reflected), table-driven. Used for page
   and WAL-record checksums; the value fits OCaml's native int. *)

let table =
  lazy
    (Array.init 256 (fun n ->
         let c = ref n in
         for _ = 0 to 7 do
           c := if !c land 1 = 1 then 0xEDB88320 lxor (!c lsr 1) else !c lsr 1
         done;
         !c))

let init = 0xFFFFFFFF

let update crc buf ~pos ~len =
  if pos < 0 || len < 0 || pos + len > Bytes.length buf then
    invalid_arg "Crc32.update: range out of bounds";
  let table = Lazy.force table in
  let crc = ref crc in
  for i = pos to pos + len - 1 do
    crc := table.((!crc lxor Char.code (Bytes.get buf i)) land 0xFF) lxor (!crc lsr 8)
  done;
  !crc

let finish crc = crc lxor 0xFFFFFFFF

let digest buf ~pos ~len = finish (update init buf ~pos ~len)

let bytes buf = digest buf ~pos:0 ~len:(Bytes.length buf)
