/* CLOCK_MONOTONIC reading for Monotime. The OCaml Unix library exposes
   only gettimeofday (wall time, steppable by NTP); benchmark intervals
   need a clock that cannot go backwards. */

#include <time.h>
#include <caml/mlvalues.h>
#include <caml/alloc.h>
#include <caml/memory.h>

CAMLprim value sias_monotime_now(value unit)
{
  CAMLparam1(unit);
  struct timespec ts;
  clock_gettime(CLOCK_MONOTONIC, &ts);
  CAMLreturn(caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9));
}
