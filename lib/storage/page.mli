(** Slotted heap page (PostgreSQL-style).

    A page is a real byte buffer: a fixed header, a slot (line pointer)
    array growing downward from the header, and item data growing upward
    from the end. Deleting leaves a hole that is reclaimed by compaction
    when an insert needs the space. In-place updates that do not grow an
    item succeed without moving it — which is exactly the operation SI
    invalidation performs and SIAS avoids. *)

type t

val header_size : int
val slot_size : int

val create : size:int -> t
(** An empty page of [size] bytes (the simulator uses 8192). *)

val size : t -> int

val insert : t -> bytes -> int option
(** [insert p item] places the item and returns its slot, or [None] when
    even compaction cannot make room. Dead slots are reused. *)

val read : t -> int -> bytes option
(** Item bytes of a live slot; [None] for dead, unused or out-of-range
    slots. The returned bytes are a copy. *)

val update : t -> int -> bytes -> bool
(** [update p slot item] overwrites the item in place when the new value
    is not longer than the currently stored one (the slot keeps its
    original allocation); returns [false] otherwise, leaving the page
    unchanged. *)

val delete : t -> int -> unit
(** Mark the slot dead; its space becomes reclaimable. No-op on already
    dead slots; raises [Invalid_argument] on out-of-range slots. *)

val slot_count : t -> int
(** Slots ever allocated, live or dead. *)

val live_count : t -> int

val free_space : t -> int
(** Bytes available for new items, counting reclaimable holes but also
    the slot-array cost of an insert. *)

val fill_ratio : t -> float
(** Fraction of the data area occupied by live items. *)

val iter : t -> (int -> bytes -> unit) -> unit
(** Apply to every live slot in slot order. *)

val or_byte : t -> int -> off:int -> bits:int -> unit
(** [or_byte p slot ~off ~bits] ORs [bits] into the byte at [off] within
    the live item at [slot]; silently a no-op when the slot is dead or
    [off] out of range. Used for tuple hint bits: never changes item
    length or layout. *)

val copy : t -> t

val blit : src:t -> dst:t -> unit
(** Overwrite [dst]'s content with [src]'s (same size required) without
    allocating. *)

val no_slot_reuse : t -> bool

val set_no_slot_reuse : t -> unit
(** Mark the page append-only with respect to slot ids: dead slots are
    never recycled, so a TID is unique for the page's lifetime. Persisted
    in the page header (recovery redo sees the same behaviour). Used by
    {!Heapfile} for [Append_only] placement, where stale version-chain
    pointers must never alias a newer tuple. *)

val lsn : t -> int
val set_lsn : t -> int -> unit
(** Page LSN for WAL ordering. *)

val to_bytes : t -> bytes
(** A copy of the raw page image (WAL full-page writes). *)

val of_bytes : bytes -> t
(** Wrap a raw image, taking ownership of the buffer. *)

val overwrite : t -> bytes -> unit
(** Replace the page content with a raw image of the same size (full-page
    redo). *)

val stamp_checksum : t -> unit
(** Compute and store the page CRC32 (over the whole image with the
    checksum field zeroed). Called when an image goes to stable storage;
    in-memory pages carry stale checksums. *)

val checksum_ok : t -> bool
(** Verify the stored CRC32 against the current content. A torn or
    bit-rotten image fails unless the damage is outside every checked
    byte — impossible, since all bytes are covered. *)
