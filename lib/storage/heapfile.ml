type placement = Free_space_first | Append_only | Txn_colocated

(* An oversized row is a caller-input condition, not a programmer error:
   it deserves a typed exception with the sizes echoed. *)
exception Item_too_large of { bytes : int; rel : int }

let () =
  Printexc.register_printer (function
    | Item_too_large { bytes; rel } ->
        Some
          (Printf.sprintf
             "Heapfile.Item_too_large: a %d-byte item does not fit on any \
              page of relation %d; shrink the row or raise the page size"
             bytes rel)
    | _ -> None)

(* Blocks whose free space is at least this many bytes are kept in the
   free-space queue and are candidates for [Free_space_first] placement. *)
let min_free = 600

type t = {
  pool : Bufpool.t;
  rel : int;
  placement : placement;
  mutable nblocks : int;
  mutable fsm : int array; (* free-byte estimate per block *)
  mutable queued : bool array; (* membership in the free-space queue *)
  fsm_queue : int Queue.t;
  mutable discarded : bool array;
  mutable n_discarded : int;
  mutable seal_interval : float option;
  mutable tail_opened_at : float;
  owner_blocks : (int, int) Hashtbl.t; (* Txn_colocated: writer -> open block *)
}

let create ?seal_interval pool ~rel ~placement =
  {
    pool;
    rel;
    placement;
    nblocks = 0;
    fsm = Array.make 16 0;
    queued = Array.make 16 false;
    fsm_queue = Queue.create ();
    discarded = Array.make 16 false;
    n_discarded = 0;
    seal_interval;
    tail_opened_at = 0.0;
    owner_blocks = Hashtbl.create 32;
  }

let rel t = t.rel
let placement t = t.placement
let nblocks t = t.nblocks

let enqueue t block =
  if not t.queued.(block) then begin
    t.queued.(block) <- true;
    Queue.add block t.fsm_queue
  end

(* Record a block's free space and keep the candidate queue in sync. *)
let update_fsm t block free =
  t.fsm.(block) <- free;
  if (t.placement = Free_space_first || t.placement = Txn_colocated) && free >= min_free
  then enqueue t block

let grow t =
  let b = t.nblocks in
  t.nblocks <- b + 1;
  if b >= Array.length t.fsm then begin
    let cap = 2 * Array.length t.fsm in
    let fsm = Array.make cap 0 in
    Array.blit t.fsm 0 fsm 0 (Array.length t.fsm);
    t.fsm <- fsm;
    let queued = Array.make cap false in
    Array.blit t.queued 0 queued 0 (Array.length t.queued);
    t.queued <- queued;
    let discarded = Array.make cap false in
    Array.blit t.discarded 0 discarded 0 (Array.length t.discarded);
    t.discarded <- discarded
  end;
  update_fsm t b (Bufpool.page_size t.pool);
  b

let try_insert_into t block item =
  Bufpool.with_page t.pool ~rel:t.rel ~block (fun page ->
      if t.placement = Append_only then Page.set_no_slot_reuse page;
      match Page.insert page item with
      | Some slot ->
          Bufpool.mark_dirty t.pool ~rel:t.rel ~block;
          update_fsm t block (Page.free_space page);
          Some (Tid.make ~block ~slot)
      | None ->
          update_fsm t block (Page.free_space page);
          None)

(* Once an append page has been persisted it is sealed: log-based storage
   never appends to a page already on stable storage (paper Section 5.2 —
   this is what makes the t1 threshold waste space: sparsely filled pages
   flushed early stay sparse forever). *)
let sealed t block = Bufpool.on_disk t.pool ~rel:t.rel ~block

(* The paper's t1 threshold: the current append page is physically
   appended to stable storage every bgwriter interval, however full it is
   — sealing it and wasting its remaining space. Under t2 (no interval)
   pages are only sealed by checkpoints or eviction. *)
let maybe_seal_tail t last =
  match t.seal_interval with
  | Some interval when Bufpool.now t.pool -. t.tail_opened_at >= interval ->
      Bufpool.flush_block t.pool ~rel:t.rel ~block:last ~sync:false
  | _ -> ()

let insert_append t item =
  let block =
    if t.nblocks = 0 then grow t
    else begin
      let last = t.nblocks - 1 in
      maybe_seal_tail t last;
      if sealed t last || t.discarded.(last) then begin
        let b = grow t in
        t.tail_opened_at <- Bufpool.now t.pool;
        b
      end
      else last
    end
  in
  match try_insert_into t block item with
  | Some tid -> tid
  | None -> (
      let fresh = grow t in
      match try_insert_into t fresh item with
      | Some tid -> tid
      | None -> raise (Item_too_large { bytes = Bytes.length item; rel = t.rel }))

(* Pop candidates off the free-space queue until one accepts the item.
   Successful or not, a candidate that still has room goes back to the
   tail, so consecutive inserts rotate over all pages with space — the
   scattered placement of PostgreSQL FSM lookups under concurrency. *)
let insert_free_space t item =
  let need = Bytes.length item + Page.slot_size in
  let rec probe attempts =
    if attempts = 0 then None
    else
      match Queue.take_opt t.fsm_queue with
      | None -> None
      | Some block ->
          t.queued.(block) <- false;
          if t.fsm.(block) >= need then begin
            match try_insert_into t block item with
            | Some tid -> Some tid (* try_insert_into requeued it if roomy *)
            | None -> probe (attempts - 1)
          end
          else begin
            (* stale estimate or item too big for this hole: keep the
               block available for smaller items *)
            if t.fsm.(block) >= min_free then enqueue t block;
            probe (attempts - 1)
          end
  in
  match probe (Queue.length t.fsm_queue) with
  | Some tid -> tid
  | None -> (
      let fresh = grow t in
      match try_insert_into t fresh item with
      | Some tid -> tid
      | None -> raise (Item_too_large { bytes = Bytes.length item; rel = t.rel }))

(* SI-CV placement (Gottstein et al., TPC-TC'12, the paper's [18]):
   versions written by the same transaction are co-located — each writer
   keeps an open page and fills it before taking a fresh one. Pages whose
   writer moved on become ordinary free-space candidates. *)
let insert_colocated t ~owner item =
  let try_owner_block () =
    match Hashtbl.find_opt t.owner_blocks owner with
    | Some block -> (
        match try_insert_into t block item with
        | Some tid -> Some tid
        | None ->
            Hashtbl.remove t.owner_blocks owner;
            None)
    | None -> None
  in
  let open_block () =
    (* adopt a partially filled page if one exists (later transactions
       fill the space earlier ones left), else grow *)
    let need = Bytes.length item + Page.slot_size in
    let rec pop attempts =
      if attempts = 0 then None
      else
        match Queue.take_opt t.fsm_queue with
        | None -> None
        | Some block ->
            t.queued.(block) <- false;
            if t.fsm.(block) >= need then Some block
            else begin
              if t.fsm.(block) >= min_free then enqueue t block;
              pop (attempts - 1)
            end
    in
    match pop (Queue.length t.fsm_queue) with Some b -> b | None -> grow t
  in
  match try_owner_block () with
  | Some tid -> tid
  | None -> (
      let block = open_block () in
      Hashtbl.replace t.owner_blocks owner block;
      match try_insert_into t block item with
      | Some tid -> tid
      | None -> (
          let fresh = grow t in
          Hashtbl.replace t.owner_blocks owner fresh;
          match try_insert_into t fresh item with
          | Some tid -> tid
          | None -> raise (Item_too_large { bytes = Bytes.length item; rel = t.rel })))

let insert_owned t ~owner item =
  match t.placement with
  | Append_only -> insert_append t item
  | Free_space_first -> insert_free_space t item
  | Txn_colocated -> insert_colocated t ~owner item

let insert t item =
  match t.placement with
  | Append_only -> insert_append t item
  | Free_space_first -> insert_free_space t item
  | Txn_colocated -> insert_colocated t ~owner:0 item

let read t tid =
  let block = Tid.block tid in
  if block < 0 || block >= t.nblocks || t.discarded.(block) then None
  else Bufpool.with_page t.pool ~rel:t.rel ~block (fun page -> Page.read page (Tid.slot tid))

(* Hint-bit patch: unlogged, non-dirtying, resident-only (see
   {!Bufpool.patch_resident}). Silently skipped for evicted or discarded
   pages — a hint is advice, not state. *)
let patch_hint t tid ~off ~bits =
  let block = Tid.block tid in
  if block >= 0 && block < t.nblocks && not t.discarded.(block) then
    ignore
      (Bufpool.patch_resident t.pool ~rel:t.rel ~block ~slot:(Tid.slot tid) ~off ~bits)

let update_in_place t tid item =
  let block = Tid.block tid in
  if block < 0 || block >= t.nblocks then invalid_arg "Heapfile.update_in_place: bad block";
  Bufpool.with_page t.pool ~rel:t.rel ~block (fun page ->
      let ok = Page.update page (Tid.slot tid) item in
      if ok then Bufpool.mark_dirty t.pool ~rel:t.rel ~block;
      ok)

let delete t tid =
  let block = Tid.block tid in
  if block < 0 || block >= t.nblocks then invalid_arg "Heapfile.delete: bad block";
  Bufpool.with_page t.pool ~rel:t.rel ~block (fun page ->
      Page.delete page (Tid.slot tid);
      Bufpool.mark_dirty t.pool ~rel:t.rel ~block;
      update_fsm t block (Page.free_space page))

let iter t f =
  for block = 0 to t.nblocks - 1 do
    if not t.discarded.(block) then
      Bufpool.with_page t.pool ~rel:t.rel ~block (fun page ->
          Page.iter page (fun slot item -> f (Tid.make ~block ~slot) item))
  done

let read_ro t tid =
  let block = Tid.block tid in
  if block < 0 || block >= t.nblocks || t.discarded.(block) then None
  else
    Bufpool.with_page_ro t.pool ~rel:t.rel ~block (fun page -> Page.read page (Tid.slot tid))

let iter_ro t f =
  for block = 0 to t.nblocks - 1 do
    if not t.discarded.(block) then
      Bufpool.with_page_ro t.pool ~rel:t.rel ~block (fun page ->
          Page.iter page (fun slot item -> f (Tid.make ~block ~slot) item))
  done

let page_fill t ~block =
  if block < 0 || block >= t.nblocks then invalid_arg "Heapfile.page_fill: bad block";
  if t.discarded.(block) then 0.0
  else Bufpool.with_page_ro t.pool ~rel:t.rel ~block Page.fill_ratio

let avg_fill t =
  let live = t.nblocks - t.n_discarded in
  if live <= 0 then 0.0
  else begin
    let total = ref 0.0 in
    for block = 0 to t.nblocks - 1 do
      if not t.discarded.(block) then total := !total +. page_fill t ~block
    done;
    !total /. float_of_int live
  end

let last_block t = if t.nblocks = 0 then None else Some (t.nblocks - 1)

let restore pool ~rel ~placement ~nblocks =
  let t = create pool ~rel ~placement in
  for _ = 1 to nblocks do
    ignore (grow t)
  done;
  for block = 0 to nblocks - 1 do
    if Bufpool.on_disk pool ~rel ~block || Bufpool.resident pool ~rel ~block then
      Bufpool.with_page pool ~rel ~block (fun page ->
          update_fsm t block (Page.free_space page))
    else begin
      (* neither flushed nor replayed: the page was discarded by GC *)
      t.discarded.(block) <- true;
      t.n_discarded <- t.n_discarded + 1;
      t.fsm.(block) <- 0
    end
  done;
  t

let discard_block t block =
  if block < 0 || block >= t.nblocks then invalid_arg "Heapfile.discard_block: bad block";
  if Some block = last_block t then invalid_arg "Heapfile.discard_block: append tail";
  if not t.discarded.(block) then begin
    Bufpool.trim_block t.pool ~rel:t.rel ~block;
    t.discarded.(block) <- true;
    t.n_discarded <- t.n_discarded + 1;
    t.fsm.(block) <- 0 (* discarded blocks never receive inserts *)
  end

let discarded t block = block >= 0 && block < t.nblocks && t.discarded.(block)
let discarded_count t = t.n_discarded
let live_blocks t = t.nblocks - t.n_discarded
