module Simclock = Sias_util.Simclock

type policy =
  | T1_bgwriter of { interval : float; max_pages : int }
  | T2_checkpoint_only
  | Disabled

type t = {
  pool : Bufpool.t;
  clock : Simclock.t;
  policy : policy;
  checkpoint_interval : float;
  on_checkpoint : unit -> unit;
  mutable next_bgwriter : float;
  mutable next_checkpoint : float;
  mutable checkpoints : int;
  mutable bgwriter_rounds : int;
}

let create pool ~clock ~policy ?(checkpoint_interval = 30.0)
    ?(on_checkpoint = fun () -> ()) () =
  let now = Simclock.now clock in
  let next_bgwriter =
    match policy with T1_bgwriter { interval; _ } -> now +. interval | _ -> infinity
  in
  let next_checkpoint =
    match policy with Disabled -> infinity | _ -> now +. checkpoint_interval
  in
  {
    pool;
    clock;
    policy;
    checkpoint_interval;
    on_checkpoint;
    next_bgwriter;
    next_checkpoint;
    checkpoints = 0;
    bgwriter_rounds = 0;
  }

let checkpoint_now t =
  Bufpool.flush_all t.pool ~sync:false;
  t.on_checkpoint ();
  t.checkpoints <- t.checkpoints + 1;
  t.next_checkpoint <- Simclock.now t.clock +. t.checkpoint_interval

let tick t =
  let now = Simclock.now t.clock in
  (match t.policy with
  | T1_bgwriter { interval; max_pages } ->
      while t.next_bgwriter <= now do
        Bufpool.flush_some t.pool ~max_pages;
        t.bgwriter_rounds <- t.bgwriter_rounds + 1;
        t.next_bgwriter <- t.next_bgwriter +. interval
      done
  | T2_checkpoint_only | Disabled -> ());
  while t.next_checkpoint <= now do
    Bufpool.flush_all t.pool ~sync:false;
    t.on_checkpoint ();
    t.checkpoints <- t.checkpoints + 1;
    t.next_checkpoint <- t.next_checkpoint +. t.checkpoint_interval
  done

let checkpoints t = t.checkpoints
let bgwriter_rounds t = t.bgwriter_rounds
