module Simclock = Sias_util.Simclock
module Bus = Sias_obs.Bus
module Crashpoint = Sias_chaos.Crashpoint

type policy =
  | T1_bgwriter of { interval : float; max_pages : int }
  | T2_checkpoint_only
  | Disabled

type t = {
  pool : Bufpool.t;
  clock : Simclock.t;
  policy : policy;
  checkpoint_interval : float;
  before_checkpoint : unit -> unit;
  on_checkpoint : unit -> unit;
  bus : Bus.t option;
  mutable next_bgwriter : float;
  mutable next_checkpoint : float;
  mutable checkpoints : int;
  mutable bgwriter_rounds : int;
}

let create pool ~clock ~policy ?(checkpoint_interval = 30.0)
    ?(before_checkpoint = fun () -> ()) ?(on_checkpoint = fun () -> ()) ?bus () =
  let now = Simclock.now clock in
  let next_bgwriter =
    match policy with T1_bgwriter { interval; _ } -> now +. interval | _ -> infinity
  in
  let next_checkpoint =
    match policy with Disabled -> infinity | _ -> now +. checkpoint_interval
  in
  {
    pool;
    clock;
    policy;
    checkpoint_interval;
    before_checkpoint;
    on_checkpoint;
    bus;
    next_bgwriter;
    next_checkpoint;
    checkpoints = 0;
    bgwriter_rounds = 0;
  }

let obs t =
  match t.bus with Some b when Bus.active b -> Some b | _ -> None

let flushes_delta t f =
  match obs t with
  | None ->
      f ();
      (None, 0)
  | Some b ->
      let before = (Bufpool.stats t.pool).Bufpool.flushes in
      f ();
      (Some b, (Bufpool.stats t.pool).Bufpool.flushes - before)

let run_checkpoint t =
  Crashpoint.reach "bgwriter.checkpoint.pre";
  (* WAL first: buffered log records must reach the device before the
     heap pages they describe (the commit pipeline's flush hook) *)
  t.before_checkpoint ();
  Crashpoint.reach "bgwriter.checkpoint.mid";
  let t0 = Simclock.now t.clock in
  let b, pages = flushes_delta t (fun () -> Bufpool.flush_all t.pool ~sync:false) in
  (match b with
  | Some b ->
      Bus.publish b (Bus.Checkpoint { pages });
      Bus.publish b
        (Bus.Span
           {
             cat = "storage";
             name = "checkpoint";
             tid = 102;
             t0;
             t1 = Simclock.now t.clock;
           })
  | None -> ());
  t.on_checkpoint ();
  t.checkpoints <- t.checkpoints + 1;
  Crashpoint.reach "bgwriter.checkpoint.post"

let checkpoint_now t =
  run_checkpoint t;
  t.next_checkpoint <- Simclock.now t.clock +. t.checkpoint_interval

let tick t =
  let now = Simclock.now t.clock in
  (match t.policy with
  | T1_bgwriter { interval; max_pages } ->
      while t.next_bgwriter <= now do
        let b, pages =
          flushes_delta t (fun () -> Bufpool.flush_some t.pool ~max_pages)
        in
        (match b with
        | Some b -> Bus.publish b (Bus.Bgwriter_pass { pages })
        | None -> ());
        t.bgwriter_rounds <- t.bgwriter_rounds + 1;
        t.next_bgwriter <- t.next_bgwriter +. interval
      done
  | T2_checkpoint_only | Disabled -> ());
  while t.next_checkpoint <= now do
    run_checkpoint t;
    t.next_checkpoint <- t.next_checkpoint +. t.checkpoint_interval
  done

let checkpoints t = t.checkpoints
let bgwriter_rounds t = t.bgwriter_rounds
