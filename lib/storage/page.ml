(* Layout:
     [0..7]   lsn (int64)
     [8..9]   nslots (u16)
     [10..11] lower: first free byte after the slot array (u16)
     [12..13] upper: first used data byte (u16)
     [14..15] live count (u16)
     [16]     flags (bit 0: no-slot-reuse — append-only storage never
              recycles a dead slot, so TIDs stay unique for the lifetime
              of the page and stale chain pointers can never alias a new
              tuple)
     [17..19] reserved
     [20..23] CRC32 of the page with this field zeroed; stamped when the
              image is written to stable storage, verified on read-in
              (PostgreSQL data checksums: torn writes and bit rot must
              fail loudly, never read as a valid page)
   Slot i at [header_size + 4*i]: u16 offset, u16 len.
     offset = 0xFFFF -> unused (never allocated data)
     len    = 0xFFFF -> dead
   Items are stored in [upper, size). *)

let header_size = 24
let slot_size = 4

let dead_len = 0xFFFF
let unused_off = 0xFFFF

type t = { buf : bytes; size : int }

let get16 t off = Bytes.get_uint16_le t.buf off
let set16 t off v = Bytes.set_uint16_le t.buf off v

let nslots t = get16 t 8
let set_nslots t v = set16 t 8 v
let lower t = get16 t 10
let set_lower t v = set16 t 10 v
let upper t = get16 t 12
let set_upper t v = set16 t 12 v
let live t = get16 t 14
let set_live t v = set16 t 14 v

let slot_pos i = header_size + (slot_size * i)
let slot_off t i = get16 t (slot_pos i)
let slot_len t i = get16 t (slot_pos i + 2)

let set_slot t i ~off ~len =
  set16 t (slot_pos i) off;
  set16 t (slot_pos i + 2) len

let create ~size =
  if size < 64 || size > 65535 then invalid_arg "Page.create: size out of range";
  let t = { buf = Bytes.make size '\000'; size } in
  set_nslots t 0;
  set_lower t header_size;
  set_upper t size;
  set_live t 0;
  t

let size t = t.size

let lsn t = Int64.to_int (Bytes.get_int64_le t.buf 0)
let set_lsn t v = Bytes.set_int64_le t.buf 0 (Int64.of_int v)

let slot_count = nslots
let live_count = live

let no_slot_reuse t = Bytes.get_uint8 t.buf 16 land 1 = 1

let set_no_slot_reuse t =
  Bytes.set_uint8 t.buf 16 (Bytes.get_uint8 t.buf 16 lor 1)

let is_live t i =
  i >= 0 && i < nslots t && slot_off t i <> unused_off && slot_len t i <> dead_len

let read t i = if is_live t i then Some (Bytes.sub t.buf (slot_off t i) (slot_len t i)) else None

let live_bytes t =
  let total = ref 0 in
  for i = 0 to nslots t - 1 do
    if is_live t i then total := !total + slot_len t i
  done;
  !total

(* Free space counts the contiguous gap plus reclaimable holes, minus the
   cost of one more slot when no dead/unused slot is reusable. *)
let reusable_slot t =
  if no_slot_reuse t then None
  else begin
    let found = ref None in
    let i = ref 0 in
    let n = nslots t in
    while !found = None && !i < n do
      if not (is_live t !i) then found := Some !i;
      incr i
    done;
    !found
  end

let free_space t =
  let contiguous = upper t - lower t in
  let holes = t.size - upper t - live_bytes t in
  let slot_cost = match reusable_slot t with Some _ -> 0 | None -> slot_size in
  Stdlib.max 0 (contiguous + holes - slot_cost)

let fill_ratio t =
  let data_area = t.size - header_size in
  float_of_int (live_bytes t + (slot_size * nslots t)) /. float_of_int data_area

let iter t f =
  for i = 0 to nslots t - 1 do
    match read t i with Some item -> f i item | None -> ()
  done

(* Rewrite all live items tightly against the end of the page, preserving
   slot numbers (PostgreSQL's PageRepairFragmentation). *)
let compact t =
  let items = ref [] in
  for i = 0 to nslots t - 1 do
    if is_live t i then items := (i, Bytes.sub t.buf (slot_off t i) (slot_len t i)) :: !items
  done;
  let pos = ref t.size in
  List.iter
    (fun (i, item) ->
      let len = Bytes.length item in
      pos := !pos - len;
      Bytes.blit item 0 t.buf !pos len;
      set_slot t i ~off:!pos ~len)
    !items;
  set_upper t !pos

let insert t item =
  let len = Bytes.length item in
  if len = 0 || len >= dead_len then invalid_arg "Page.insert: bad item length";
  let slot, slot_cost =
    match reusable_slot t with Some i -> (i, 0) | None -> (nslots t, slot_size)
  in
  let fits_contiguous () = upper t - (lower t + slot_cost) >= len in
  let fits_after_compaction () =
    t.size - (lower t + slot_cost) - live_bytes t >= len
  in
  if not (fits_contiguous ()) && fits_after_compaction () then compact t;
  if not (fits_contiguous ()) then None
  else begin
    if slot = nslots t then begin
      set_nslots t (slot + 1);
      set_lower t (lower t + slot_size)
    end;
    let off = upper t - len in
    Bytes.blit item 0 t.buf off len;
    set_slot t slot ~off ~len;
    set_upper t off;
    set_live t (live t + 1);
    Some slot
  end

let update t i item =
  if not (is_live t i) then invalid_arg "Page.update: slot not live";
  let len = Bytes.length item in
  if len > slot_len t i then false
  else begin
    let off = slot_off t i in
    Bytes.blit item 0 t.buf off len;
    set16 t (slot_pos i + 2) len;
    true
  end

let delete t i =
  if i < 0 || i >= nslots t then invalid_arg "Page.delete: slot out of range";
  if is_live t i then begin
    set_slot t i ~off:(slot_off t i) ~len:dead_len;
    set_live t (live t - 1)
  end

(* Hint-bit patch: OR bits into one byte of a live item. Deliberately a
   pure cache-side mutation — no length change, no slot movement — so it
   is safe on a page that other readers hold item copies of. *)
let or_byte t i ~off ~bits =
  if is_live t i && off >= 0 && off < slot_len t i then begin
    let p = slot_off t i + off in
    Bytes.set_uint8 t.buf p (Bytes.get_uint8 t.buf p lor bits)
  end

let copy t = { buf = Bytes.copy t.buf; size = t.size }

let blit ~src ~dst =
  if src.size <> dst.size then invalid_arg "Page.blit: size mismatch";
  Bytes.blit src.buf 0 dst.buf 0 src.size

(* ---- raw image access (WAL full-page writes, fault injection) ---- *)

let to_bytes t = Bytes.copy t.buf

let of_bytes buf =
  let size = Bytes.length buf in
  if size < 64 || size > 65535 then invalid_arg "Page.of_bytes: size out of range";
  { buf; size }

let overwrite t image =
  if Bytes.length image <> t.size then invalid_arg "Page.overwrite: size mismatch";
  Bytes.blit image 0 t.buf 0 t.size

(* ---- checksums ---- *)

let checksum_off = 20

let compute_checksum t =
  let open Sias_util.Crc32 in
  let c = update init t.buf ~pos:0 ~len:checksum_off in
  let c = update c t.buf ~pos:(checksum_off + 4) ~len:(t.size - checksum_off - 4) in
  finish c

let stamp_checksum t =
  Bytes.set_int32_le t.buf checksum_off (Int32.of_int (compute_checksum t))

let checksum_ok t =
  let stored = Int32.to_int (Bytes.get_int32_le t.buf checksum_off) land 0xFFFFFFFF in
  stored = compute_checksum t
