module Device = Flashsim.Device
module Blocktrace = Flashsim.Blocktrace
module Faultdev = Flashsim.Faultdev
module Simclock = Sias_util.Simclock
module Bus = Sias_obs.Bus
module Crashpoint = Sias_chaos.Crashpoint

type key = { rel : int; block : int }

exception Corrupt_page of { rel : int; block : int }
exception No_free_frames of { capacity : int }

let () =
  Printexc.register_printer (function
    | Corrupt_page { rel; block } ->
        Some
          (Printf.sprintf
             "Bufpool.Corrupt_page: page (rel %d, block %d) failed checksum \
              verification and could not be repaired from full-page writes"
             rel block)
    | No_free_frames { capacity } ->
        Some
          (Printf.sprintf
             "Bufpool.No_free_frames: all %d frames are pinned — the working \
              set of concurrently pinned pages exceeds the buffer pool"
             capacity)
    | _ -> None)

type frame = {
  idx : int;
  mutable key : key;
  mutable page : Page.t;
  mutable dirty : bool;
  mutable pin : int;
  mutable refbit : bool;
  mutable used : bool;
  mutable last_use : int;
}

(* A shard owns a contiguous slice of the frame array, its own mapping
   table, its own clock hands and its own hit/miss counters, guarded by
   its own lock. Pages hash to shards by key, so two domains touching
   different pages contend only when they collide on a shard — the
   per-CPU hash-partitioning of DragonflyBSD's niscache / PostgreSQL's
   buffer mapping partitions. With [shards = 1] (the default) the lock
   is never taken and the sweep order over the whole frame array is
   exactly the pre-sharding behavior, which the determinism goldens pin
   down. *)
type shard = {
  lo : int; (* first frame index owned by this shard *)
  n : int; (* frames owned *)
  lock : Mutex.t;
  index : (key, int) Hashtbl.t;
  mutable hand : int; (* clock-sweep offset in [0, n) *)
  mutable bg_hand : int; (* background-writer scan offset *)
  mutable tick : int; (* logical use counter for LRU-ish bgwriter order *)
  mutable hits : int;
  mutable misses : int;
  mutable evictions : int;
}

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  flushes : int;
  read_stall_s : float;
  write_stall_s : float;
  read_retries : int;
  checksum_failures : int;
  pages_repaired : int;
  torn_pages : int;
}

type t = {
  device : Device.t;
  clock : Simclock.t;
  page_size : int;
  rel_region_blocks : int;
  os_cache_interval : float option;
  os_cache_pages : int;
  os_pending : (key, unit) Hashtbl.t;
  mutable os_next_flush : float;
  ring : (key, Page.t) Hashtbl.t; (* small cache for ring-buffer reads *)
  ring_fifo : key Queue.t;
  frames : frame array;
  shards : shard array;
  locking : bool; (* shards > 1: take the locks *)
  io_lock : Mutex.t;
      (* guards everything below the mapping layer: the simulated disk,
         device, sim clock, OS-cache model, fault bookkeeping and the
         I/O statistics. Acquired strictly after a shard lock. *)
  disk : (key, Page.t) Hashtbl.t; (* flushed page images *)
  bus : Bus.t option;
  faults : Faultdev.t option;
  max_read_retries : int;
  torn_pending : (key, Page.t) Hashtbl.t;
      (* per page, the image that survives if a crash strikes now: the
         last write was torn, so a prefix of the new image spliced onto
         the previous durable content. Cleared by a later atomic write. *)
  trusted : (key, unit) Hashtbl.t;
      (* pages whose disk image this pool stamped itself and that cannot
         have been damaged since (no fault injection): read-in skips
         CRC32 re-verification for them. *)
  mutable repair : (rel:int -> block:int -> Page.t option) option;
  mutable flushes : int;
  mutable read_stall : float;
  mutable write_stall : float;
  mutable trims : int;
  mutable read_retries : int;
  mutable checksum_failures : int;
  mutable pages_repaired : int;
  mutable torn_pages : int;
}

let create ~device ~clock ~capacity_pages ?(page_size = 8192) ?(rel_region_blocks = 65536)
    ?os_cache_interval ?os_cache_pages ?bus ?faults ?(max_read_retries = 4) ?(shards = 1) () =
  if capacity_pages <= 0 then invalid_arg "Bufpool.create: capacity must be positive";
  if shards < 1 then invalid_arg "Bufpool.create: shards must be >= 1";
  if shards > capacity_pages then
    invalid_arg "Bufpool.create: more shards than frames";
  let dummy_key = { rel = -1; block = -1 } in
  let frames =
    Array.init capacity_pages (fun idx ->
        {
          idx;
          key = dummy_key;
          page = Page.create ~size:page_size;
          dirty = false;
          pin = 0;
          refbit = false;
          used = false;
          last_use = 0;
        })
  in
  let shard_arr =
    Array.init shards (fun i ->
        (* contiguous slices, remainder spread over the first shards *)
        let base = capacity_pages / shards and extra = capacity_pages mod shards in
        let n = base + if i < extra then 1 else 0 in
        let lo = (i * base) + Stdlib.min i extra in
        {
          lo;
          n;
          lock = Mutex.create ();
          index = Hashtbl.create (2 * Stdlib.max 1 n);
          hand = 0;
          bg_hand = 0;
          tick = 0;
          hits = 0;
          misses = 0;
          evictions = 0;
        })
  in
  {
    device;
    clock;
    page_size;
    rel_region_blocks;
    os_cache_interval;
    os_cache_pages = (match os_cache_pages with Some n -> n | None -> capacity_pages);
    os_pending = Hashtbl.create 1024;
    os_next_flush = (match os_cache_interval with Some i -> i | None -> infinity);
    ring = Hashtbl.create 64;
    ring_fifo = Queue.create ();
    frames;
    shards = shard_arr;
    locking = shards > 1;
    io_lock = Mutex.create ();
    disk = Hashtbl.create 1024;
    flushes = 0;
    read_stall = 0.0;
    write_stall = 0.0;
    trims = 0;
    read_retries = 0;
    checksum_failures = 0;
    pages_repaired = 0;
    torn_pages = 0;
    bus;
    faults;
    max_read_retries;
    torn_pending = Hashtbl.create 64;
    trusted = Hashtbl.create 1024;
    repair = None;
  }

let page_size t = t.page_size
let device t = t.device
let now t = Simclock.now t.clock
let shard_count t = Array.length t.shards

let shard_of t key =
  if Array.length t.shards = 1 then t.shards.(0)
  else t.shards.(Hashtbl.hash key mod Array.length t.shards)

(* Lock helpers compile to straight calls of [f] in the single-shard
   configuration: the deterministic path pays nothing. Lock order is
   always shard(s) first, [io_lock] second. *)
let lock_shard t s = if t.locking then Mutex.lock s.lock
let unlock_shard t s = if t.locking then Mutex.unlock s.lock

let with_io t f =
  if not t.locking then f ()
  else begin
    Mutex.lock t.io_lock;
    match f () with
    | v ->
        Mutex.unlock t.io_lock;
        v
    | exception e ->
        Mutex.unlock t.io_lock;
        raise e
  end

let with_all_shards t f =
  if not t.locking then f ()
  else begin
    Array.iter (fun s -> Mutex.lock s.lock) t.shards;
    match f () with
    | v ->
        Array.iter (fun s -> Mutex.unlock s.lock) t.shards;
        v
    | exception e ->
        Array.iter (fun s -> Mutex.unlock s.lock) t.shards;
        raise e
  end

(* The bus with subscribers, if observability is on; publishing sites
   build their events only behind this check. *)
let obs t =
  match t.bus with Some b when Bus.active b -> Some b | _ -> None

let sectors_per_page t = t.page_size / 512

let sector_of t ~rel ~block =
  ((rel * t.rel_region_blocks) + block) * sectors_per_page t

let submit_io t ~sync op key =
  let now = Simclock.now t.clock in
  let sector = sector_of t ~rel:key.rel ~block:key.block in
  let completion = Device.submit t.device ~now op ~sector ~bytes:t.page_size in
  if sync then begin
    let stall = completion -. now in
    (match op with
    | Blocktrace.Read -> t.read_stall <- t.read_stall +. stall
    | Blocktrace.Write -> t.write_stall <- t.write_stall +. stall);
    Simclock.advance_to t.clock completion
  end

let set_repair t fn = t.repair <- Some fn

(* Read a page image from the simulated disk with the full reliability
   path: transient read errors are retried with exponential backoff
   charged to the simulated clock; the image is then checksum-verified,
   and a failing page is handed to the installed repair handler (WAL
   full-page redo) — a page is served correct, repaired, or the read
   fails loudly with [Corrupt_page]. Never silent garbage.
   Caller holds [io_lock] when sharded. *)
let read_backoff_base_s = 0.0005

let read_image t key =
  match Hashtbl.find_opt t.disk key with
  | None -> None
  | Some image when t.faults = None && Hashtbl.mem t.trusted key ->
      (* This pool stamped the image itself and no fault model can have
         damaged it since: skip the full-page CRC32 re-verification. The
         device I/O and its stall are charged exactly as on the slow
         path, so simulated results are unchanged. *)
      let t0 = Simclock.now t.clock in
      let page = Page.of_bytes (Page.to_bytes image) in
      submit_io t ~sync:true Blocktrace.Read key;
      (match obs t with
      | Some b ->
          Bus.publish b
            (Bus.Span
               {
                 cat = "storage";
                 name = "page_read";
                 tid = 100;
                 t0;
                 t1 = Simclock.now t.clock;
               })
      | None -> ());
      Some page
  | Some image ->
      let sector = sector_of t ~rel:key.rel ~block:key.block in
      let t0 = Simclock.now t.clock in
      let backoff i =
        t.read_retries <- t.read_retries + 1;
        (match obs t with
        | Some b -> Bus.publish b (Bus.Fault_hit { kind = "read_retry"; sector })
        | None -> ());
        let stall = read_backoff_base_s *. (2.0 ** float_of_int i) in
        t.read_stall <- t.read_stall +. stall;
        Simclock.advance t.clock stall
      in
      (* One read attempt: charge any transient failures as backoff, then
         maybe corrupt the copied image. Returns (raw, unreadable) —
         [unreadable] when the transient errors exceeded the retry budget. *)
      let attempt () =
        let raw = Page.to_bytes image in
        match t.faults with
        | None -> (raw, false)
        | Some fd ->
            let failures = Faultdev.transient_failures fd ~sector in
            let retries = Stdlib.min failures t.max_read_retries in
            for i = 0 to retries - 1 do
              backoff i
            done;
            ignore (Faultdev.corrupt_read fd ~sector raw);
            (raw, failures > t.max_read_retries)
      in
      (* A failing checksum is re-read a few times before escalating:
         corruption picked up in flight (bus, DRAM) disappears on a fresh
         read of an intact stored image, while a genuinely damaged image
         (torn write) keeps failing and goes to the repair path. *)
      let rec read_verified tries =
        let raw, unreadable = attempt () in
        let page = Page.of_bytes raw in
        if (not unreadable) && Page.checksum_ok page then Some page
        else if tries < t.max_read_retries then begin
          if not unreadable then begin
            t.checksum_failures <- t.checksum_failures + 1;
            match obs t with
            | Some b -> Bus.publish b (Bus.Fault_hit { kind = "checksum"; sector })
            | None -> ()
          end;
          backoff tries;
          read_verified (tries + 1)
        end
        else None
      in
      let verified = read_verified 0 in
      submit_io t ~sync:true Blocktrace.Read key;
      (match obs t with
      | Some b ->
          Bus.publish b
            (Bus.Span
               {
                 cat = "storage";
                 name = "page_read";
                 tid = 100;
                 t0;
                 t1 = Simclock.now t.clock;
               })
      | None -> ());
      match verified with
      | Some page -> Some page
      | None -> begin
        t.checksum_failures <- t.checksum_failures + 1;
        (match obs t with
        | Some b -> Bus.publish b (Bus.Fault_hit { kind = "checksum"; sector })
        | None -> ());
        let repaired =
          match t.repair with
          | None -> None
          | Some fn -> fn ~rel:key.rel ~block:key.block
        in
        match repaired with
        | Some fixed ->
            t.pages_repaired <- t.pages_repaired + 1;
            (match obs t with
            | Some b ->
                Bus.publish b
                  (Bus.Page_repair { rel = key.rel; block = key.block })
            | None -> ());
            let durable = Page.copy fixed in
            Page.stamp_checksum durable;
            Hashtbl.replace t.disk key durable;
            Some fixed
        | None -> raise (Corrupt_page { rel = key.rel; block = key.block })
      end

(* OS page-cache model: when enabled, page write-backs land in the kernel
   cache (no device I/O, no caller stall) and the dirty-expire flusher
   pushes the coalesced set to the device every interval, in sorted order
   (the elevator). Rewrites of the same page within a window cost one
   device write — which is how PostgreSQL's hot pages behave on Linux and
   a large part of why SIAS's small hot write set is so cheap. *)
let flush_os_cache t =
  let keys = Hashtbl.fold (fun k () acc -> k :: acc) t.os_pending [] in
  let keys = List.sort (fun a b -> compare (a.rel, a.block) (b.rel, b.block)) keys in
  List.iter (fun key -> submit_io t ~sync:false Blocktrace.Write key) keys;
  Hashtbl.reset t.os_pending

let os_cache_tick t =
  match t.os_cache_interval with
  | None -> ()
  | Some interval ->
      if Simclock.now t.clock >= t.os_next_flush then begin
        flush_os_cache t;
        t.os_next_flush <- Simclock.now t.clock +. interval
      end

(* Caller holds the frame's shard lock and [io_lock] when sharded. *)
let write_back t frame ~sync =
  Crashpoint.reach "bufpool.writeback.pre";
  let durable =
    (* Fault-free fast path: reuse the existing durable buffer instead of
       allocating a fresh page copy per flush. With fault injection on,
       the torn-write splice below needs the old image intact, so the
       copying path is kept. *)
    match (t.faults, Hashtbl.find_opt t.disk frame.key) with
    | None, Some old ->
        Page.blit ~src:frame.page ~dst:old;
        old
    | _ -> Page.copy frame.page
  in
  Page.stamp_checksum durable;
  (match t.faults with
  | None -> Hashtbl.replace t.trusted frame.key ()
  | Some fd -> (
      let sector = sector_of t ~rel:frame.key.rel ~block:frame.key.block in
      match Faultdev.torn_write fd ~sector ~bytes:t.page_size with
      | None ->
          (* atomic write: any earlier interrupted write is overwritten *)
          Hashtbl.remove t.torn_pending frame.key
      | Some persisted ->
          (* prefix of the new image over the previous durable content;
             manifests only if a crash strikes before the next atomic
             write of this page *)
          (match obs t with
          | Some b -> Bus.publish b (Bus.Fault_hit { kind = "torn_write"; sector })
          | None -> ());
          let torn =
            match Hashtbl.find_opt t.disk frame.key with
            | Some old -> Page.to_bytes old
            | None -> Bytes.make t.page_size '\000'
          in
          Bytes.blit (Page.to_bytes durable) 0 torn 0 persisted;
          Hashtbl.replace t.torn_pending frame.key (Page.of_bytes torn)));
  Hashtbl.replace t.disk frame.key durable;
  (match t.os_cache_interval with
  | None -> (
      match obs t with
      | None -> submit_io t ~sync Blocktrace.Write frame.key
      | Some b ->
          let t0 = Simclock.now t.clock in
          submit_io t ~sync Blocktrace.Write frame.key;
          Bus.publish b
            (Bus.Span
               {
                 cat = "storage";
                 name = "page_write";
                 tid = 100;
                 t0;
                 t1 = Simclock.now t.clock;
               }))
  | Some _ ->
      Hashtbl.replace t.os_pending frame.key ();
      (* bounded cache: a dirty set beyond the kernel's writeback
         threshold is flushed immediately (memory pressure), so only
         write sets that FIT keep coalescing — SIAS's do, SI's do not *)
      if Hashtbl.length t.os_pending > t.os_cache_pages then flush_os_cache t
      else os_cache_tick t);
  frame.dirty <- false;
  t.flushes <- t.flushes + 1;
  Crashpoint.reach "bufpool.writeback.post";
  match obs t with
  | Some b ->
      Bus.publish b
        (Bus.Page_flush { rel = frame.key.rel; block = frame.key.block; sync })
  | None -> ()

(* Clock sweep within one shard's slice: find an unpinned victim, giving
   recently referenced frames a second chance. Dirty victims are written
   back synchronously. Caller holds the shard lock. *)
let find_victim t s =
  let attempts = ref 0 in
  let victim = ref None in
  while !victim = None do
    if !attempts > 2 * s.n then raise (No_free_frames { capacity = s.n });
    let f = t.frames.(s.lo + s.hand) in
    s.hand <- (s.hand + 1) mod s.n;
    incr attempts;
    if f.pin = 0 then begin
      if f.refbit then f.refbit <- false else victim := Some f
    end
  done;
  match !victim with Some f -> f | None -> assert false

let load_frame t s key =
  let f = find_victim t s in
  if f.used then begin
    Crashpoint.reach "bufpool.evict.pre";
    (match obs t with
    | Some b ->
        Bus.publish b
          (Bus.Page_evict
             { rel = f.key.rel; block = f.key.block; dirty = f.dirty })
    | None -> ());
    if f.dirty then with_io t (fun () -> write_back t f ~sync:true);
    Hashtbl.remove s.index f.key;
    s.evictions <- s.evictions + 1
  end;
  (match with_io t (fun () -> read_image t key) with
  | Some page -> f.page <- page
  | None -> f.page <- Page.create ~size:t.page_size);
  f.key <- key;
  f.dirty <- false;
  f.used <- true;
  f.refbit <- true;
  f

(* Caller holds the shard lock. *)
let get_frame t s key =
  match Hashtbl.find_opt s.index key with
  | Some i ->
      let f = t.frames.(i) in
      s.hits <- s.hits + 1;
      (match obs t with
      | Some b -> Bus.publish b (Bus.Page_hit { rel = key.rel; block = key.block })
      | None -> ());
      f.refbit <- true;
      f
  | None ->
      s.misses <- s.misses + 1;
      (match obs t with
      | Some b -> Bus.publish b (Bus.Page_miss { rel = key.rel; block = key.block })
      | None -> ());
      let f = load_frame t s key in
      Hashtbl.replace s.index key f.idx;
      f

let with_page t ~rel ~block fn =
  (match t.os_cache_interval with
  | Some _ -> with_io t (fun () -> os_cache_tick t)
  | None -> ());
  let key = { rel; block } in
  let s = shard_of t key in
  lock_shard t s;
  (match get_frame t s key with
  | f ->
      (* the pin taken under the lock keeps the frame from eviction once
         the lock is dropped; page-content synchronization between
         domains is the caller's concern (shard your data) *)
      f.pin <- f.pin + 1;
      s.tick <- s.tick + 1;
      f.last_use <- s.tick;
      unlock_shard t s;
      Fun.protect
        ~finally:(fun () ->
          lock_shard t s;
          f.pin <- f.pin - 1;
          unlock_shard t s)
        (fun () -> fn f.page)
  | exception e ->
      unlock_shard t s;
      raise e)

(* Ring-buffer access for background scans (vacuum/GC): a resident page
   is used without promoting it (no reference bit, no recency bump); a
   miss is served straight from the disk image without occupying a frame,
   so wholesale scans cannot evict the working set (PostgreSQL's
   BAS_VACUUM ring). Read-only: mutations through this path are lost. *)
let ring_capacity = 32

let ring_put t key page =
  if not (Hashtbl.mem t.ring key) then begin
    if Queue.length t.ring_fifo >= ring_capacity then begin
      let victim = Queue.pop t.ring_fifo in
      Hashtbl.remove t.ring victim
    end;
    Hashtbl.replace t.ring key page;
    Queue.add key t.ring_fifo
  end

let with_page_ro t ~rel ~block fn =
  (match t.os_cache_interval with
  | Some _ -> with_io t (fun () -> os_cache_tick t)
  | None -> ());
  let key = { rel; block } in
  let s = shard_of t key in
  lock_shard t s;
  match Hashtbl.find_opt s.index key with
  | Some i ->
      let f = t.frames.(i) in
      s.hits <- s.hits + 1;
      (match obs t with
      | Some b -> Bus.publish b (Bus.Page_hit { rel; block })
      | None -> ());
      f.pin <- f.pin + 1;
      unlock_shard t s;
      Fun.protect
        ~finally:(fun () ->
          lock_shard t s;
          f.pin <- f.pin - 1;
          unlock_shard t s)
        (fun () -> fn f.page)
  | None -> (
      let resolved =
        match
          with_io t (fun () ->
              match Hashtbl.find_opt t.ring key with
              | Some page -> Some page
              | None -> None)
        with
        | Some page ->
            s.hits <- s.hits + 1;
            (match obs t with
            | Some b -> Bus.publish b (Bus.Page_hit { rel; block })
            | None -> ());
            page
        | None ->
            s.misses <- s.misses + 1;
            (match obs t with
            | Some b -> Bus.publish b (Bus.Page_miss { rel; block })
            | None -> ());
            with_io t (fun () ->
                let page =
                  match read_image t key with
                  | Some page -> page
                  | None -> Page.create ~size:t.page_size
                in
                ring_put t key page;
                page)
      in
      unlock_shard t s;
      fn resolved)
  | exception e ->
      unlock_shard t s;
      raise e

(* Caller holds the shard lock (or the pool is unsharded). *)
let find_resident_in s t ~rel ~block =
  match Hashtbl.find_opt s.index { rel; block } with
  | Some i -> Some t.frames.(i)
  | None -> None

(* Hint-bit patch: OR bits into a byte of a live item on a page, but only
   if the page is resident. Deliberately bypasses every statistic (no
   hit/miss counter, no reference bit, no recency bump) and does NOT mark
   the frame dirty — hints are advisory and piggyback on the page's next
   real write. Returns whether the patch landed. *)
let patch_resident t ~rel ~block ~slot ~off ~bits =
  let s = shard_of t { rel; block } in
  lock_shard t s;
  let r =
    match Hashtbl.find_opt s.index { rel; block } with
    | Some i ->
        Crashpoint.reach "bufpool.hint.patch";
        Page.or_byte t.frames.(i).page slot ~off ~bits;
        true
    | None -> false
  in
  unlock_shard t s;
  r

let mark_dirty t ~rel ~block =
  (* any mutation invalidates the ring copy *)
  with_io t (fun () -> Hashtbl.remove t.ring { rel; block });
  let s = shard_of t { rel; block } in
  lock_shard t s;
  let found =
    match find_resident_in s t ~rel ~block with
    | Some f ->
        f.dirty <- true;
        true
    | None -> false
  in
  unlock_shard t s;
  if not found then invalid_arg "Bufpool.mark_dirty: page not resident"

let flush_block t ~rel ~block ~sync =
  let s = shard_of t { rel; block } in
  lock_shard t s;
  (match find_resident_in s t ~rel ~block with
  | Some f when f.dirty -> with_io t (fun () -> write_back t f ~sync)
  | Some _ | None -> ());
  unlock_shard t s

(* Checkpoints issue their writes in (relation, block) order, like
   PostgreSQL's sorted checkpoints: append regions and index files flush
   as near-sequential streams, which matters greatly on the HDD model. *)
let flush_all t ~sync =
  with_all_shards t (fun () ->
      let dirty =
        Array.to_list t.frames |> List.filter (fun f -> f.used && f.dirty)
      in
      let sorted =
        List.sort
          (fun a b -> compare (a.key.rel, a.key.block) (b.key.rel, b.key.block))
          dirty
      in
      List.iter (fun f -> with_io t (fun () -> write_back t f ~sync)) sorted)

(* The background writer sweeps each shard's slice round-robin
   (PostgreSQL's bgwriter clock scan): every dirty page is eventually
   trickled out regardless of recency, which is what persists partially
   filled append pages under the paper's t1 threshold. The page budget is
   split over shards; with one shard this is the historical scan. *)
let flush_some t ~max_pages =
  let nshards = Array.length t.shards in
  Array.iteri
    (fun i s ->
      let budget =
        if nshards = 1 then max_pages
        else
          (max_pages / nshards)
          + if i < max_pages mod nshards then 1 else 0
      in
      if budget > 0 && s.n > 0 then begin
        lock_shard t s;
        let written = ref 0 in
        let scanned = ref 0 in
        while !written < budget && !scanned < s.n do
          let f = t.frames.(s.lo + s.bg_hand) in
          s.bg_hand <- (s.bg_hand + 1) mod s.n;
          incr scanned;
          if f.used && f.dirty then begin
            with_io t (fun () -> write_back t f ~sync:false);
            incr written
          end
        done;
        unlock_shard t s
      end)
    t.shards

let dirty_count t =
  with_all_shards t (fun () ->
      Array.fold_left
        (fun acc f -> if f.used && f.dirty then acc + 1 else acc)
        0 t.frames)

let resident t ~rel ~block =
  let s = shard_of t { rel; block } in
  lock_shard t s;
  let r = find_resident_in s t ~rel ~block <> None in
  unlock_shard t s;
  r

let is_dirty t ~rel ~block =
  let s = shard_of t { rel; block } in
  lock_shard t s;
  let r =
    match find_resident_in s t ~rel ~block with
    | Some f -> f.dirty
    | None -> false
  in
  unlock_shard t s;
  r

let drop_cache_locked t =
  Array.iter
    (fun f ->
      f.used <- false;
      f.dirty <- false;
      f.pin <- 0;
      f.refbit <- false)
    t.frames;
  Array.iter (fun s -> Hashtbl.reset s.index) t.shards;
  Hashtbl.reset t.ring;
  Queue.clear t.ring_fifo

let drop_cache t = with_all_shards t (fun () -> drop_cache_locked t)

(* Dirty crash: torn in-flight writes land (only their persisted prefix
   survives), then every frame is dropped. What remains is exactly what a
   failure-prone device would hold: flushed images, some of them torn. *)
let crash t =
  with_all_shards t (fun () ->
      with_io t (fun () ->
          Hashtbl.iter (fun key img -> Hashtbl.replace t.disk key img) t.torn_pending;
          t.torn_pages <- t.torn_pages + Hashtbl.length t.torn_pending;
          Hashtbl.reset t.torn_pending;
          Hashtbl.reset t.os_pending;
          (* after a crash, trust nothing: recovery re-verifies checksums *)
          Hashtbl.reset t.trusted);
      drop_cache_locked t)

let stats t =
  let hits = ref 0 and misses = ref 0 and evictions = ref 0 in
  Array.iter
    (fun (s : shard) ->
      hits := !hits + s.hits;
      misses := !misses + s.misses;
      evictions := !evictions + s.evictions)
    t.shards;
  {
    hits = !hits;
    misses = !misses;
    evictions = !evictions;
    flushes = t.flushes;
    read_stall_s = t.read_stall;
    write_stall_s = t.write_stall;
    read_retries = t.read_retries;
    checksum_failures = t.checksum_failures;
    pages_repaired = t.pages_repaired;
    torn_pages = t.torn_pages;
  }

let on_disk t ~rel ~block =
  with_io t (fun () -> Hashtbl.mem t.disk { rel; block })

let dirty_keys t =
  with_all_shards t (fun () ->
      Array.to_list t.frames
      |> List.filter_map (fun f ->
             if f.used && f.dirty then Some (f.key.rel, f.key.block) else None))

let trim_block t ~rel ~block =
  let s = shard_of t { rel; block } in
  lock_shard t s;
  (match find_resident_in s t ~rel ~block with
  | Some f ->
      f.page <- Page.create ~size:t.page_size;
      f.dirty <- false
  | None -> ());
  unlock_shard t s;
  with_io t (fun () ->
      Hashtbl.remove t.disk { rel; block };
      Hashtbl.remove t.os_pending { rel; block };
      Hashtbl.remove t.ring { rel; block };
      Hashtbl.remove t.torn_pending { rel; block };
      Hashtbl.remove t.trusted { rel; block };
      (* tell the device: its GC must never relocate this dead data *)
      Device.trim t.device ~sector:(sector_of t ~rel ~block) ~bytes:t.page_size;
      t.trims <- t.trims + 1;
      match obs t with
      | Some b -> Bus.publish b (Bus.Page_trim { rel; block })
      | None -> ())

let trims t = t.trims
