(** Heap file: the block collection of one relation.

    The placement policy is the heart of the SI-vs-SIAS storage contrast:

    - [Free_space_first] mirrors PostgreSQL's FSM — a new tuple goes to any
      page with enough free space, scattering writes across the whole
      relation (paper, Figure 4).
    - [Append_only] is the SIAS log-based storage manager — new tuple
      versions are only ever placed on the current tail page, so the dirty
      set is the append region and flushed pages form monotonically
      increasing appends (paper, Figure 3). *)

type placement =
  | Free_space_first  (** PostgreSQL FSM: any page with room (SI) *)
  | Append_only  (** log-structured: current tail only (SIAS) *)
  | Txn_colocated
      (** SI-CV (the paper's [18]): versions of the same transaction are
          co-located on per-writer open pages *)

type t

exception Item_too_large of { bytes : int; rel : int }
(** Raised by the insert family when an item cannot fit on any page, even
    a fresh one. A caller-input condition (an oversized row), not a
    programmer error. *)

val create : ?seal_interval:float -> Bufpool.t -> rel:int -> placement:placement -> t
(** [seal_interval] implements the paper's t1 flush threshold for
    [Append_only] files: the current tail page is physically appended to
    stable storage (and thereby sealed) once it has been open for that
    many simulated seconds, regardless of how full it is. Without it (t2)
    tails are persisted by checkpoints. *)

val rel : t -> int
val placement : t -> placement

val nblocks : t -> int
(** Blocks allocated so far. *)

val insert : t -> bytes -> Tid.t
(** Place an item per the policy, dirtying exactly one page. Grows the
    file when needed. *)

val insert_owned : t -> owner:int -> bytes -> Tid.t
(** Like {!insert}; under [Txn_colocated], [owner] (the writing
    transaction) selects the open page to co-locate on. *)

val read : t -> Tid.t -> bytes option
(** [None] when the slot is dead or out of range. *)

val patch_hint : t -> Tid.t -> off:int -> bits:int -> unit
(** OR hint bits into one byte of the item at [tid], but only when its
    page is already resident in the buffer pool — never an I/O, never a
    statistic, never dirties the page (the hint rides along on the next
    real write). Silently skipped otherwise: hints are advice, not
    state. *)

val update_in_place : t -> Tid.t -> bytes -> bool
(** Overwrite without moving (see {!Page.update}); dirties the page on
    success. This is the operation SI invalidation needs and SIAS never
    performs on stable tuples. *)

val delete : t -> Tid.t -> unit
(** Mark the slot dead and dirty the page (used by garbage collection). *)

val iter : t -> (Tid.t -> bytes -> unit) -> unit
(** Full scan in block order — the traditional relation scan. Charges
    buffer misses for every block touched. *)

val read_ro : t -> Tid.t -> bytes option
val iter_ro : t -> (Tid.t -> bytes -> unit) -> unit
(** Ring-buffer variants for background work (vacuum/GC): I/O is charged
    but the buffer pool's working set is not disturbed. *)

val page_fill : t -> block:int -> float
val avg_fill : t -> float
(** Mean live-data fill ratio across blocks; space-consumption metric. *)

val last_block : t -> int option
(** The current append target, when the file is non-empty. *)

val restore : Bufpool.t -> rel:int -> placement:placement -> nblocks:int -> t
(** Recovery: rebuild the heap-file descriptor for an existing relation of
    [nblocks] blocks, recomputing the free-space map from page contents. *)

val sealed : t -> int -> bool
(** [sealed t block]: an [Append_only] page already persisted to stable
    storage; it accepts no further inserts. *)

val discard_block : t -> int -> unit
(** GC page reclamation: drop the whole page via
    {!Bufpool.trim_block} — no page write, the log-structured store's
    deterministic erase. The block stays allocated (append files never
    reuse old blocks) but holds no data and is excluded from fill and
    space accounting. Raises on the current append tail. *)

val discarded : t -> int -> bool
val discarded_count : t -> int

val live_blocks : t -> int
(** [nblocks] minus discarded blocks: the space-consumption metric. *)
