(** Background writer and checkpointer policies.

    The SIAS flush thresholds of the paper map directly onto these
    policies (Section 5.2):

    - threshold {b t1} — the PostgreSQL background-writer default: dirty
      pages are trickled out every [bgwriter_interval] regardless of how
      full they are, so sparsely filled append pages get persisted (and
      re-persisted) too early;
    - threshold {b t2} — piggy-backed on the checkpoint: pages stay in the
      buffer until the checkpoint interval elapses, so append pages are
      flushed once, full.

    The driver calls {!tick} as simulated time advances; this module
    decides when a bgwriter round or a checkpoint is due. *)

type policy =
  | T1_bgwriter of { interval : float; max_pages : int }
      (** flush up to [max_pages] LRU dirty pages every [interval] sim-seconds *)
  | T2_checkpoint_only
  | Disabled

type t

val create :
  Bufpool.t ->
  clock:Sias_util.Simclock.t ->
  policy:policy ->
  ?checkpoint_interval:float ->
  ?before_checkpoint:(unit -> unit) ->
  ?on_checkpoint:(unit -> unit) ->
  ?bus:Sias_obs.Bus.t ->
  unit ->
  t
(** A checkpoint flushing all dirty pages runs every [checkpoint_interval]
    simulated seconds (default 30.) under every policy except [Disabled].
    [before_checkpoint] runs first (e.g. the commit pipeline flushing
    buffered WAL ahead of the heap writes); [on_checkpoint] runs after
    each checkpoint flush (e.g. to reset the full-page-write tracking so
    the next touch of a page logs a fresh image). *)

val tick : t -> unit
(** Run any bgwriter round / checkpoint that has become due. *)

val checkpoint_now : t -> unit

val checkpoints : t -> int
val bgwriter_rounds : t -> int
