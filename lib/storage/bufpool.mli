(** Buffer pool over a simulated block device.

    Frames hold {!Page.t} values keyed by (relation, block). Misses read
    the page image from the simulated disk (charging device latency and
    advancing the caller's clock); evicting a dirty frame writes it back
    synchronously, like a PostgreSQL backend stalling on a dirty victim.
    The background writer and checkpointer flush asynchronously: the
    device queue is charged but the caller's clock does not advance.

    Each relation owns a disjoint sector region on the device, so the
    block trace shows per-relation "swimlanes" (paper, Section 5.1).

    The pool can be partitioned into [shards]: each shard owns a slice
    of the frame array with its own mapping table, clock hands and lock,
    and pages hash to shards by key, so domains touching disjoint pages
    rarely contend (PostgreSQL's buffer-mapping partitions). Below the
    mapping layer a single I/O lock serializes the simulated device and
    clock. With the default [shards = 1] no lock is ever taken and
    behavior is byte-identical to the unsharded pool. The pool
    guarantees frame-table integrity across domains; synchronizing
    {e page content} between domains remains the caller's concern —
    shard your data. *)

type t

type key = { rel : int; block : int }

exception Corrupt_page of { rel : int; block : int }
(** A page image failed checksum verification (or was unreadable after
    bounded retries) and no repair handler could rebuild it. Raised
    instead of ever returning garbage bytes to the caller. *)

exception No_free_frames of { capacity : int }
(** The clock sweep found every frame pinned: the set of concurrently
    pinned pages exceeds the pool. Raised instead of spinning forever;
    the pool is unchanged. *)

val create :
  device:Flashsim.Device.t ->
  clock:Sias_util.Simclock.t ->
  capacity_pages:int ->
  ?page_size:int ->
  ?rel_region_blocks:int ->
  ?os_cache_interval:float ->
  ?os_cache_pages:int ->
  ?bus:Sias_obs.Bus.t ->
  ?faults:Flashsim.Faultdev.t ->
  ?max_read_retries:int ->
  ?shards:int ->
  unit ->
  t
(** [capacity_pages] frames of [page_size] (default 8192) bytes.
    [rel_region_blocks] (default 65536) sizes each relation's device
    region. [faults] injects device faults on this pool's reads and
    writes; transient read errors are retried up to [max_read_retries]
    (default 4) times with exponential backoff charged to the clock.
    [shards] (default 1) partitions the frames for multi-domain access;
    must not exceed [capacity_pages]. *)

val shard_count : t -> int

val page_size : t -> int
val device : t -> Flashsim.Device.t

val now : t -> float
(** Current simulated time of the pool's clock. *)

val with_page : t -> rel:int -> block:int -> (Page.t -> 'a) -> 'a
(** Pin the page, run the function, unpin. The page is fetched from disk
    on a miss and created empty if it never existed. Mutating the page
    requires a {!mark_dirty} before unpinning. *)

val with_page_ro : t -> rel:int -> block:int -> (Page.t -> 'a) -> 'a
(** Ring-buffer access for background scans (vacuum/GC): hits do not
    promote the frame and misses are served without caching, so a
    wholesale scan cannot evict the working set (PostgreSQL's vacuum
    ring). Strictly read-only — mutations made through it are lost. *)

val patch_resident :
  t -> rel:int -> block:int -> slot:int -> off:int -> bits:int -> bool
(** Hint-bit patch: OR [bits] into the byte at [off] of the live item at
    [slot], but only when the page is resident in a frame — returns
    [false] (doing nothing) otherwise. Bypasses hit/miss statistics, the
    reference bit and recency, and does {e not} dirty the frame: hint
    bits are advisory and ride along on the page's next real write. *)

val mark_dirty : t -> rel:int -> block:int -> unit
(** The page must currently be resident (normally called inside
    [with_page]). *)

val flush_block : t -> rel:int -> block:int -> sync:bool -> unit
(** Write the page image to the device if resident and dirty. [sync]
    advances the caller's clock to I/O completion. *)

val flush_all : t -> sync:bool -> unit
(** Checkpoint: write every dirty frame. *)

val flush_some : t -> max_pages:int -> unit
(** Background-writer step: asynchronously write up to [max_pages] dirty
    frames, least-recently-used first. *)

val dirty_count : t -> int
val resident : t -> rel:int -> block:int -> bool
val is_dirty : t -> rel:int -> block:int -> bool

val drop_cache : t -> unit
(** Simulate a clean crash: discard every frame (dirty pages are LOST)
    leaving only what was flushed to the device. For recovery tests. *)

val crash : t -> unit
(** Simulate a dirty crash: writes that were in flight when the machine
    died persist only a torn prefix (per the fault plan), then the cache
    is dropped. Equivalent to {!drop_cache} when no write was torn. *)

val set_repair : t -> (rel:int -> block:int -> Page.t option) -> unit
(** Install the corruption repair handler, called when a read-in image
    fails checksum verification. It must rebuild the page from redundant
    state (WAL full-page images + redo records) {e without} going through
    this pool, and return [None] when reconstruction is impossible — the
    read then raises {!Corrupt_page}. A repaired page is re-stamped and
    written back to the disk image table. *)

val sector_of : t -> rel:int -> block:int -> int

type stats = {
  hits : int;
  misses : int;
  evictions : int;
  flushes : int;
  read_stall_s : float;  (** simulated seconds callers spent waiting on reads *)
  write_stall_s : float;  (** simulated seconds spent on synchronous writes *)
  read_retries : int;  (** transient read errors retried (backoff charged) *)
  checksum_failures : int;  (** images that failed verification on read-in *)
  pages_repaired : int;  (** checksum failures rebuilt from the WAL *)
  torn_pages : int;  (** torn write images applied at crash *)
}

val stats : t -> stats

val on_disk : t -> rel:int -> block:int -> bool
(** Whether a flushed image of the page exists on the device (used by
    recovery to rediscover relation sizes). *)

val dirty_keys : t -> (int * int) list
(** (rel, block) of every dirty resident frame; for tests/debugging. *)

val flush_os_cache : t -> unit
(** Force the OS page-cache model's pending writes out to the device (the
    equivalent of sync(2)). No-op without [os_cache_interval]. With the
    cache enabled, page write-backs cost no caller time and coalesce per
    page until the periodic dirty-expire flush — the Linux behaviour
    underneath PostgreSQL that the paper's write measurements sit on. *)

val trim_block : t -> rel:int -> block:int -> unit
(** Discard a page: the resident frame (if any) is reset to an empty page
    and marked clean, and the on-device image is dropped. Models the
    deterministic erase/TRIM a log-structured store issues for reclaimed
    pages — a metadata operation, not a page write (paper Section 6). *)

val trims : t -> int
(** Number of pages discarded so far. *)
