(** Simulated replication link with seeded, deterministic fault injection.

    A link carries messages between a primary and a standby. Each
    {!transmit} draws from one seeded RNG and either drops the message or
    assigns it a delivery time (base one-way delay plus jitter; with
    probability [reorder_p] the message is additionally penalized so it
    arrives {e after} messages sent later — realized reordering, not just
    variance). A partitioned link drops everything until healed, but the
    RNG is still advanced per send so the fault stream — and therefore
    every later drop and delay — is a pure function of the seed and the
    send count, never of partition timing.

    The link itself holds no queues: callers keep the in-flight set and
    deliver messages in [(delivery_time, send_order)] order, which keeps
    the whole pipeline deterministic for a fixed seed. *)

type profile = {
  drop_p : float;  (** per message: probability it is lost *)
  delay_s : float;  (** base one-way delay, simulated seconds *)
  jitter_s : float;  (** uniform extra delay in [0, jitter_s) *)
  reorder_p : float;
      (** per message: probability of an extra out-of-order penalty *)
}

val clean : profile
(** Loss-free LAN: 50 µs, no jitter. The default. *)

val wan : profile
(** 5 ms base delay, mild jitter, rare loss and reordering. *)

val lossy : profile
(** 5% loss, visible jitter and reordering — retransmission territory. *)

val chaos : profile
(** 25% loss, heavy jitter and reordering — the torture profile. *)

val profile_names : string list
(** Canonical profile names; {!profile_of_string}'s error message lists
    exactly these. *)

val profile_of_string : string -> (profile, string) result
val profile_name : profile -> string

type t

val create : ?profile:profile -> seed:int -> unit -> t
(** Default profile: {!clean}. Equal seeds give equal fault streams. *)

val seed : t -> int
val profile : t -> profile

val set_partitioned : t -> bool -> unit
(** Partition or heal the link. While partitioned every {!transmit}
    drops; in-flight messages already assigned a delivery time still
    arrive (the packets were already on the wire). *)

val partitioned : t -> bool

val transmit : t -> now:float -> [ `Delivered of float | `Dropped ]
(** Decide one message's fate: delivery time, or loss. *)

val sent : t -> int
val dropped : t -> int
val delivered : t -> int
