(** WAL-shipping replication: primary → standby log streaming over a
    lossy simulated {!Link}, a hot standby that redo-applies into its own
    database context, and deterministic promotion.

    The model follows PostgreSQL streaming replication:

    - The {b sender} rides the primary's [Db.tick]: it streams flushed
      WAL records (read back through [Wal.verified_from], so only records
      the primary could itself recover from are ever shipped) past the
      standby in batches, go-back-N on loss — a cumulative standby
      acknowledgement names the highest contiguously installed LSN, and a
      silent link eventually rewinds the send cursor to it. A WAL
      retention hold registered at attach pins the primary's log tail, so
      checkpoint recycling can never outrun a lagging standby.
    - The {b standby} owns a full database context of its own. Received
      records are buffered until contiguous, installed {e verbatim} into
      its WAL ([Wal.install] preserves LSN, xid and CRC — the standby log
      is byte-equal to the shipped prefix), and synchronously flushed.
      Materialization runs the engine's ordinary [recover] ({!refresh}) —
      the standby is a continuous cross-check of crash recovery, not a
      second apply path. Read-only snapshots served after a refresh are
      bounded by the replay commit horizon.
    - {b Commit acknowledgement} gains a replication axis: [Ship_async]
      ships after local fsync and never delays commits; [Remote_flush]
      hooks [Commitpipe.set_remote_wait], so sync commits and group-commit
      fsyncs wait for the standby's flush acknowledgement (one round-trip
      covers a whole commit group). A partitioned or persistently lossy
      link degrades after bounded retries: the commit is acknowledged on
      local durability alone and {!stats}.degraded_acks counts it.
    - {b Failover}: {!promote} abandons the primary, checks the standby
      against an expected durability point (raising {!Lagging} — the loud,
      typed error — when the standby provably misses acknowledged data),
      replays to the tear point via recovery and leaves the standby
      serving reads and writes ([mark_recovered] has bumped the xid
      allocator past every replayed transaction).

    With no [attach] call the whole subsystem is inert: no ticker, no
    retention hold, no [remote_wait] hook — replication off leaves every
    default-seed run byte-identical. *)

type mode =
  | Ship_async  (** ship after local fsync; commits never wait *)
  | Remote_flush
      (** commit acknowledgement waits for the standby flush ack *)

val mode_name : mode -> string
(** ["async"] or ["remote-flush"]. *)

val mode_of_string : string -> (mode, string) result
(** Error message lists the valid modes. ["off"] is not a mode — callers
    map it to not attaching replication at all. *)

exception
  Lagging of {
    installed_lsn : int;  (** highest LSN the standby holds contiguously *)
    expected_lsn : int;  (** durability point the caller demanded *)
  }
(** Raised by {!promote} when the standby provably lacks acknowledged
    data — failing over to it would lose commits the primary confirmed. *)

type t

val attach :
  primary:Mvcc.Db.t ->
  standby:Mvcc.Db.t ->
  link:Link.t ->
  mode:mode ->
  ?ship_batch:int ->
  ?retransmit_timeout:float ->
  ?max_sync_retries:int ->
  ?check:bool ->
  unit ->
  t
(** Wire replication between two database contexts. Registers a WAL
    retention hold on the primary (raises [Invalid_argument] if the
    primary's log was already truncated — attach before the first
    checkpoint), a sender ticker on the primary's [Db.tick], and — in
    [Remote_flush] mode — the commit pipeline's remote-wait hook.

    The standby context must be configured like the primary (same table
    creation order, so relation ids agree) and must never run its own
    workload; create its engine instance and pass its recovery entry
    point via {!set_refresh}.

    [ship_batch] (default 64) caps records per ship message.
    [retransmit_timeout] (default 0.05 s) is both the go-back-N silence
    threshold and the per-retry penalty of a remote-flush round trip;
    [max_sync_retries] (default 5) bounds those retries before a commit
    degrades to local-only acknowledgement.

    [check] attaches an SI invariant checker to the {e standby}'s bus (an
    ordinary subscriber, retrievable via {!checker}) and feeds it each
    replicated transaction's logical history as its commit record
    installs — standby snapshot reads are then verified against exactly
    the replicated committed prefix. *)

val set_refresh : t -> (unit -> unit) -> unit
(** Register the standby's materialization function — typically
    [fun () -> Bufpool.drop_cache pool; E.recover standby_engine].
    {!refresh} invokes it only when records were installed since the last
    call. *)

val refresh : t -> unit
(** Materialize the standby's installed WAL prefix through the engine's
    ordinary crash-recovery path, if anything new was installed. Begin
    standby read transactions only after a refresh — the SI checker's
    history covers the installed prefix, and a stale engine state would
    (correctly) be flagged. *)

val checker : t -> Mvcc.Sichecker.t option
(** The standby-side SI checker, when [attach ~check:true]. *)

val commit_horizon : t -> int
(** Highest transaction id whose commit record the standby has installed
    — the replay commit horizon bounding standby snapshots. 0 before any
    commit arrives. *)

val installed_lsn : t -> int
(** Highest LSN installed contiguously into the standby's WAL. *)

val partition : t -> bool -> unit
(** Partition or heal the underlying link. *)

val promote : ?expect_flushed_lsn:int -> t -> unit
(** Fail over to the standby: stop shipping (the primary is presumed
    dead; its retention hold is released and in-flight messages are
    discarded), verify the standby holds everything up to
    [expect_flushed_lsn] if given (raising {!Lagging} otherwise — pass
    the primary's flushed LSN to demand zero data loss, e.g. after a
    clean remote-flush run), flush and recover. Afterwards the standby's
    engine serves reads and writes. *)

val promoted : t -> bool

type stats = {
  mode_label : string;
  ship_batches : int;
  shipped_records : int;
  shipped_bytes : int;
  installed_records : int;
  installed_lsn : int;
  acked_lsn : int;  (** sender's cumulative acknowledgement cursor *)
  lag_records : int;  (** primary flushed LSN minus standby installed LSN *)
  retransmits : int;  (** go-back-N cursor rewinds *)
  degraded_acks : int;  (** remote-flush commits acked on local durability *)
  link_sent : int;
  link_dropped : int;
}

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
