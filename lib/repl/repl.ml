module Wal = Sias_wal.Wal
module Commitpipe = Sias_wal.Commitpipe
module Simclock = Sias_util.Simclock
module Bus = Sias_obs.Bus
module Db = Mvcc.Db
module Sichecker = Mvcc.Sichecker
module Snapshot = Sias_txn.Snapshot
module Value = Mvcc.Value
module Crashpoint = Sias_chaos.Crashpoint

type mode = Ship_async | Remote_flush

let mode_name = function Ship_async -> "async" | Remote_flush -> "remote-flush"

let mode_names = [ "async"; "remote-flush" ]

let mode_of_string = function
  | "async" -> Ok Ship_async
  | "remote-flush" -> Ok Remote_flush
  | s ->
      Error
        (Printf.sprintf "unknown replication mode %S; valid modes: %s" s
           (String.concat ", " mode_names))

exception Lagging of { installed_lsn : int; expected_lsn : int }

(* A primary transaction's logical history, captured off the primary bus
   so the standby's SI checker can be fed the committed prefix exactly as
   its commit records install. *)
type capture = {
  c_snap : Snapshot.t;
  mutable c_writes : (int * int * Value.t array option) list; (* newest first *)
}

type msg =
  | Ship of Wal.record list (* contiguous slice, oldest first *)
  | Ack of int (* cumulative: highest LSN installed contiguously *)

type t = {
  primary : Db.t;
  standby : Db.t;
  link : Link.t;
  mode : mode;
  ship_batch : int;
  rto : float;
  max_sync_retries : int;
  hold : Wal.hold;
  checker : Sichecker.t option;
  captures : (int, capture) Hashtbl.t;
  (* sender *)
  mutable sent_upto : int; (* highest LSN handed to the link *)
  mutable acked : int; (* cumulative standby acknowledgement *)
  mutable last_progress : float;
  (* in-flight messages, both directions; the sequence number breaks
     delivery-time ties so processing order is deterministic *)
  mutable inflight : (float * int * msg) list;
  mutable seq : int;
  (* standby *)
  pending_install : (int, Wal.record) Hashtbl.t; (* received out of order *)
  mutable refresh_fn : (unit -> unit) option;
  mutable dirty : bool;
  mutable promoted : bool;
  mutable commit_horizon : int;
  (* stats *)
  mutable ship_batches : int;
  mutable shipped_records : int;
  mutable shipped_bytes : int;
  mutable installed_records : int;
  mutable retransmits : int;
  mutable degraded_acks : int;
}

let obs db =
  let b = Db.bus db in
  if Bus.active b then Some b else None

let primary_wal t = t.primary.Db.wal
let standby_wal t = t.standby.Db.wal
let installed_lsn t = Wal.current_lsn (standby_wal t)
let commit_horizon t = t.commit_horizon
let checker t = t.checker
let promoted t = t.promoted
let partition t b = Link.set_partitioned t.link b

(* ---- standby side ---- *)

let feed_checker t (r : Wal.record) =
  match t.checker with
  | None -> ()
  | Some ck -> (
      match r.kind with
      | Wal.Commit -> (
          match Hashtbl.find_opt t.captures r.xid with
          | None -> ()
          | Some c ->
              Sichecker.on_begin ck ~xid:r.xid ~snapshot:c.c_snap;
              List.iter
                (fun (rel, pk, row) ->
                  Sichecker.on_write ck ~xid:r.xid ~rel ~pk ~row)
                (List.rev c.c_writes);
              Sichecker.on_commit ck ~xid:r.xid;
              Hashtbl.remove t.captures r.xid)
      | Wal.Abort -> Hashtbl.remove t.captures r.xid
      | _ -> ())

let send_ack t ~now =
  Crashpoint.reach "repl.ack.pre";
  let lsn = installed_lsn t in
  match Link.transmit t.link ~now with
  | `Delivered at ->
      t.seq <- t.seq + 1;
      t.inflight <- (at, t.seq, Ack lsn) :: t.inflight
  | `Dropped -> ()

(* The standby received a slice: buffer it, install whatever became
   contiguous, flush, and acknowledge cumulatively. Duplicates (go-back-N
   retransmits after a lost ack) fall out naturally: already-installed
   LSNs are skipped and the fresh cumulative ack re-synchronizes the
   sender. *)
let receive_records t ~at records =
  Crashpoint.reach "repl.install.pre";
  let swal = standby_wal t in
  List.iter
    (fun (r : Wal.record) ->
      if r.lsn >= Wal.next_lsn swal then Hashtbl.replace t.pending_install r.lsn r)
    records;
  let installed = ref 0 in
  let continue = ref true in
  while !continue do
    match Hashtbl.find_opt t.pending_install (Wal.next_lsn swal) with
    | None -> continue := false
    | Some r ->
        Hashtbl.remove t.pending_install r.lsn;
        Simclock.advance_to t.standby.Db.clock at;
        Wal.install swal r;
        incr installed;
        t.installed_records <- t.installed_records + 1;
        if r.kind = Wal.Commit && r.xid > t.commit_horizon then
          t.commit_horizon <- r.xid;
        feed_checker t r
  done;
  if !installed > 0 then begin
    Wal.flush swal ~sync:true;
    t.dirty <- true;
    match obs t.standby with
    | Some b -> Bus.publish b (Bus.Repl_install { records = !installed })
    | None -> ()
  end;
  (* always acknowledge: a pure-duplicate slice means an ack was lost *)
  send_ack t ~now:at

(* ---- sender side ---- *)

let note_ack t ~lsn ~now =
  if lsn > t.acked then begin
    t.acked <- lsn;
    t.last_progress <- now;
    (* records at or below the ack are safe on the standby; the hold only
       needs to pin lsn+1 onward *)
    Wal.advance_hold (primary_wal t) t.hold ~lsn:(lsn + 1);
    match obs t.primary with
    | Some b -> Bus.publish b (Bus.Repl_ack { lsn })
    | None -> ()
  end

let deliver_due t ~now =
  let due, rest = List.partition (fun (at, _, _) -> at <= now) t.inflight in
  t.inflight <- rest;
  let due = List.sort (fun (a, s, _) (b, s', _) -> compare (a, s) (b, s')) due in
  List.iter
    (fun (at, _, m) ->
      match m with
      | Ship records -> if not t.promoted then receive_records t ~at records
      | Ack lsn -> note_ack t ~lsn ~now)
    due

let record_slice t ~from ~upto =
  if from > upto then []
  else
    let records, _tail = Wal.verified_from (primary_wal t) ~lsn:from in
    List.filter (fun (r : Wal.record) -> r.lsn <= upto) records

let rec batches n = function
  | [] -> []
  | l ->
      let rec take k acc = function
        | r :: rest when k > 0 -> take (k - 1) (r :: acc) rest
        | rest -> (List.rev acc, rest)
      in
      let batch, rest = take n [] l in
      batch :: batches n rest

let ship_batches t ~now records =
  List.iter
    (fun batch ->
      Crashpoint.reach "repl.send.pre";
      let bytes = List.fold_left (fun a r -> a + Wal.record_bytes r) 0 batch in
      t.ship_batches <- t.ship_batches + 1;
      t.shipped_records <- t.shipped_records + List.length batch;
      t.shipped_bytes <- t.shipped_bytes + bytes;
      (match obs t.primary with
      | Some b ->
          Bus.publish b
            (Bus.Repl_ship { records = List.length batch; bytes })
      | None -> ());
      match Link.transmit t.link ~now with
      | `Delivered at ->
          t.seq <- t.seq + 1;
          t.inflight <- (at, t.seq, Ship batch) :: t.inflight
      | `Dropped -> ())
    (batches t.ship_batch records)

let tick t =
  if not t.promoted then begin
    let now = Db.now t.primary in
    deliver_due t ~now;
    (* go-back-N: unacknowledged records and no ack progress for a full
       timeout — rewind the cursor to the acknowledgement so this very
       tick retransmits the gap. Checked before shipping new records: a
       lost batch stalls installation even while fresh traffic flows, so
       the rewind must not wait for the workload to pause. *)
    if t.acked < t.sent_upto && now -. t.last_progress > t.rto then begin
      t.sent_upto <- t.acked;
      t.retransmits <- t.retransmits + 1;
      t.last_progress <- now
    end;
    let flushed = Wal.flushed_lsn (primary_wal t) in
    if flushed > t.sent_upto then begin
      if t.acked >= t.sent_upto then t.last_progress <- now;
      ship_batches t ~now (record_slice t ~from:(t.sent_upto + 1) ~upto:flushed);
      t.sent_upto <- flushed
    end
  end

(* ---- remote-flush commit path ---- *)

(* One synchronous ship/ack round trip per commit (or commit group),
   retried on loss with the retransmit timeout as the per-try penalty.
   Exhausted retries degrade: the commit is acknowledged on local
   durability alone, loudly counted. Deterministic: the link RNG and the
   retry schedule are functions of the seed and the call sequence. *)
let sync_ship t ~lsn ~at =
  if t.promoted then at
  else begin
    let target = Stdlib.min lsn (Wal.flushed_lsn (primary_wal t)) in
    let rec attempt tries now =
      if tries > t.max_sync_retries then begin
        t.degraded_acks <- t.degraded_acks + 1;
        (match obs t.primary with
        | Some b -> Bus.publish b Bus.Repl_degraded
        | None -> ());
        now
      end
      else begin
        let next = Wal.next_lsn (standby_wal t) in
        let slice = record_slice t ~from:next ~upto:target in
        let bytes =
          List.fold_left (fun a r -> a + Wal.record_bytes r) 0 slice
        in
        if slice <> [] then begin
          t.ship_batches <- t.ship_batches + 1;
          t.shipped_records <- t.shipped_records + List.length slice;
          t.shipped_bytes <- t.shipped_bytes + bytes;
          match obs t.primary with
          | Some b ->
              Bus.publish b
                (Bus.Repl_ship { records = List.length slice; bytes })
          | None -> ()
        end;
        match Link.transmit t.link ~now with
        | `Dropped -> attempt (tries + 1) (now +. t.rto)
        | `Delivered t1 -> (
            let swal = standby_wal t in
            List.iter
              (fun (r : Wal.record) ->
                if r.lsn = Wal.next_lsn swal then begin
                  Simclock.advance_to t.standby.Db.clock t1;
                  Wal.install swal r;
                  t.installed_records <- t.installed_records + 1;
                  if r.kind = Wal.Commit && r.xid > t.commit_horizon then
                    t.commit_horizon <- r.xid;
                  feed_checker t r
                end)
              slice;
            if slice <> [] then begin
              Wal.flush swal ~sync:true;
              t.dirty <- true;
              match obs t.standby with
              | Some b ->
                  Bus.publish b
                    (Bus.Repl_install { records = List.length slice })
              | None -> ()
            end;
            (* the flush acknowledgement rides the link back *)
            match Link.transmit t.link ~now:t1 with
            | `Dropped -> attempt (tries + 1) (t1 +. t.rto)
            | `Delivered t2 ->
                note_ack t ~lsn:(installed_lsn t) ~now:t2;
                if target > t.sent_upto then t.sent_upto <- target;
                t2)
      end
    in
    attempt 0 at
  end

(* ---- lifecycle ---- *)

let attach ~primary ~standby ~link ~mode ?(ship_batch = 64)
    ?(retransmit_timeout = 0.05) ?(max_sync_retries = 5) ?(check = false) () =
  let hold = Wal.register_hold primary.Db.wal ~name:"standby" in
  let checker = if check then Some (Sichecker.attach (Db.bus standby)) else None in
  let t =
    {
      primary;
      standby;
      link;
      mode;
      ship_batch;
      rto = retransmit_timeout;
      max_sync_retries;
      hold;
      checker;
      captures = Hashtbl.create 64;
      sent_upto = 0;
      acked = 0;
      last_progress = 0.0;
      inflight = [];
      seq = 0;
      pending_install = Hashtbl.create 256;
      refresh_fn = None;
      dirty = false;
      promoted = false;
      commit_horizon = 0;
      ship_batches = 0;
      shipped_records = 0;
      shipped_bytes = 0;
      installed_records = 0;
      retransmits = 0;
      degraded_acks = 0;
    }
  in
  if check then
    Bus.subscribe (Db.bus primary) (function
      | Db.Event.Txn_snapshot { xid; snapshot } ->
          Hashtbl.replace t.captures xid { c_snap = snapshot; c_writes = [] }
      | Db.Event.Row_write { xid; rel; pk; row } -> (
          match Hashtbl.find_opt t.captures xid with
          | Some c -> c.c_writes <- (rel, pk, row) :: c.c_writes
          | None -> ())
      | Bus.Txn_abort { xid } -> Hashtbl.remove t.captures xid
      | _ -> ());
  (* hot standby: its read-only transactions must not interleave local
     records into the shipped log *)
  Db.set_wal_logging standby false;
  Db.add_ticker primary (fun () -> tick t);
  (match mode with
  | Remote_flush ->
      Commitpipe.set_remote_wait primary.Db.commitpipe (fun ~lsn ~at ->
          sync_ship t ~lsn ~at)
  | Ship_async -> ());
  t

let set_refresh t f = t.refresh_fn <- Some f

let refresh t =
  if t.dirty then begin
    (match t.refresh_fn with None -> () | Some f -> f ());
    t.dirty <- false
  end

let promote ?expect_flushed_lsn t =
  Crashpoint.reach "repl.promote.pre";
  t.promoted <- true;
  Commitpipe.clear_remote_wait t.primary.Db.commitpipe;
  Wal.release_hold (primary_wal t) t.hold;
  t.inflight <- [];
  Hashtbl.reset t.pending_install;
  let installed = installed_lsn t in
  (match expect_flushed_lsn with
  | Some expected when installed < expected ->
      raise (Lagging { installed_lsn = installed; expected_lsn = expected })
  | _ -> ());
  Wal.flush (standby_wal t) ~sync:true;
  t.dirty <- true;
  (match t.refresh_fn with None -> () | Some f -> f ());
  t.dirty <- false;
  (* the promoted standby is the new primary: it logs again *)
  Db.set_wal_logging t.standby true

type stats = {
  mode_label : string;
  ship_batches : int;
  shipped_records : int;
  shipped_bytes : int;
  installed_records : int;
  installed_lsn : int;
  acked_lsn : int;
  lag_records : int;
  retransmits : int;
  degraded_acks : int;
  link_sent : int;
  link_dropped : int;
}

let stats t =
  {
    mode_label = mode_name t.mode;
    ship_batches = t.ship_batches;
    shipped_records = t.shipped_records;
    shipped_bytes = t.shipped_bytes;
    installed_records = t.installed_records;
    installed_lsn = installed_lsn t;
    acked_lsn = t.acked;
    lag_records =
      Stdlib.max 0 (Wal.flushed_lsn (primary_wal t) - installed_lsn t);
    retransmits = t.retransmits;
    degraded_acks = t.degraded_acks;
    link_sent = Link.sent t.link;
    link_dropped = Link.dropped t.link;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "replication: mode=%s shipped=%d (%d batches, %d bytes) installed=%d \
     installed-lsn=%d acked-lsn=%d lag=%d retransmits=%d degraded=%d \
     link-sent=%d link-dropped=%d@."
    s.mode_label s.shipped_records s.ship_batches s.shipped_bytes
    s.installed_records s.installed_lsn s.acked_lsn s.lag_records s.retransmits
    s.degraded_acks s.link_sent s.link_dropped
