module Rng = Sias_util.Rng

type profile = {
  drop_p : float;
  delay_s : float;
  jitter_s : float;
  reorder_p : float;
}

let clean = { drop_p = 0.0; delay_s = 5e-5; jitter_s = 0.0; reorder_p = 0.0 }
let wan = { drop_p = 0.001; delay_s = 5e-3; jitter_s = 1e-3; reorder_p = 0.01 }
let lossy = { drop_p = 0.05; delay_s = 1e-3; jitter_s = 5e-4; reorder_p = 0.05 }
let chaos = { drop_p = 0.25; delay_s = 2e-3; jitter_s = 2e-3; reorder_p = 0.2 }

(* canonical name table: the parser, its error message and profile_name
   all derive from this one list *)
let profiles =
  [ ("clean", clean); ("wan", wan); ("lossy", lossy); ("chaos", chaos) ]

let profile_names = List.map fst profiles

let profile_of_string s =
  match List.assoc_opt s profiles with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown link profile %S; valid profiles: %s" s
           (String.concat ", " profile_names))

let profile_name p =
  match List.find_opt (fun (_, q) -> p = q) profiles with
  | Some (name, _) -> name
  | None -> "custom"

type t = {
  rng : Rng.t;
  seed : int;
  profile : profile;
  mutable partitioned : bool;
  mutable sent : int;
  mutable dropped : int;
  mutable delivered : int;
}

let create ?(profile = clean) ~seed () =
  {
    rng = Rng.create seed;
    seed;
    profile;
    partitioned = false;
    sent = 0;
    dropped = 0;
    delivered = 0;
  }

let seed t = t.seed
let profile t = t.profile
let set_partitioned t b = t.partitioned <- b
let partitioned t = t.partitioned

let transmit t ~now =
  t.sent <- t.sent + 1;
  (* Draw every fault decision before consulting the partition flag: the
     random stream advances once per send regardless, so healing a
     partition earlier or later never shifts which later messages drop. *)
  let drop = Rng.float t.rng 1.0 < t.profile.drop_p in
  let jitter =
    if t.profile.jitter_s > 0.0 then Rng.float t.rng t.profile.jitter_s else 0.0
  in
  let reorder =
    t.profile.reorder_p > 0.0 && Rng.float t.rng 1.0 < t.profile.reorder_p
  in
  if t.partitioned || drop then begin
    t.dropped <- t.dropped + 1;
    `Dropped
  end
  else begin
    let delay =
      t.profile.delay_s +. jitter
      +. (if reorder then 3.0 *. (t.profile.delay_s +. t.profile.jitter_s)
          else 0.0)
    in
    t.delivered <- t.delivered + 1;
    `Delivered (now +. delay)
  end

let sent t = t.sent
let dropped t = t.dropped
let delivered t = t.delivered
