(** The commit pipeline: how a transaction's commit record reaches
    durable storage, and when the commit is acknowledged.

    Three modes, mirroring PostgreSQL:

    - {b Sync} (default) — every commit pays its own synchronous WAL
      flush, stalling the committing terminal's clock until the device
      completes. Byte-identical to the historical [Wal.flush ~sync:true]
      commit path.
    - {b Group} ([commit_delay > 0]) — a committing transaction
      registers in the open commit group and is acknowledged later: when
      simulated time passes the window deadline, one fsync (submitted at
      the deadline, {e without} stopping the global clock) covers every
      member, and each is charged the shared completion time. A delay of
      zero or less degenerates to [Sync] exactly.
    - {b Async} ([synchronous_commit = off]) — commit is acknowledged at
      WAL-append time; a WAL-writer trickle ({!tick}) flushes un-synced
      on a byte or time threshold. Acked-but-unflushed commits form the
      bounded loss window: after a crash, replay recovers a prefix of
      the acked commit order (never a corrupt state), losing at most
      {!async_backlog} transactions.

    The pipeline owns every flush-scheduling decision: the commit path,
    the WAL-writer trickle, and the pre-checkpoint flush hook all route
    through it. *)

type mode =
  | Sync
  | Group of { delay : float }  (** the [commit_delay] window, sim-seconds *)
  | Async of { interval : float; max_bytes : int }
      (** WAL-writer trickle thresholds: flush when this much time has
          passed or this many bytes are buffered *)

val mode_name : mode -> string
(** ["sync"], ["group"] or ["async"]. *)

type ack =
  | Durable of float
      (** commit acknowledged at this simulated time; accounting can
          proceed immediately *)
  | Queued of int
      (** group commit: the transaction is a member of the open group;
          the ticket resolves via {!drain_resolved} once the group's
          shared fsync completes *)

type t

val create :
  wal:Wal.t -> clock:Sias_util.Simclock.t -> ?bus:Sias_obs.Bus.t -> mode -> t

val mode : t -> mode

val set_remote_wait : t -> (lsn:int -> at:float -> float) -> unit
(** Replication axis of commit acknowledgement (remote-flush mode): the
    registered function ships the log up to [lsn] to the standby and
    returns the simulated time its flush acknowledgement arrives, given
    that local durability completed at [at]. When set, sync commits and
    group-commit fsyncs charge that remote completion on top of the
    local one — the commit is not acknowledged until the standby has the
    record, sharing the group-commit deadline machinery (one remote
    round-trip covers the whole group). Async commit ignores it: acks
    happen at append and shipping rides the background trickle. *)

val clear_remote_wait : t -> unit

val commit : t -> xid:int -> lsn:int -> ack
(** Called by [Db.commit] right after the commit record is appended at
    [lsn]. Sync/degenerate-group: flushes synchronously and returns
    [Durable]. Group: closes an overdue window, then registers and
    returns [Queued]. Async: returns [Durable] immediately. *)

val last_ack : t -> ack
(** The ack of the most recent {!commit} — the driver reads this after a
    transaction commits to decide whether to defer its accounting (the
    engines' commit signature stays unchanged). *)

val tick : t -> unit
(** Periodic duties, called from [Db.tick]: close a group whose deadline
    has passed (Group), run the WAL-writer trickle when a threshold is
    due (Async). No-op in Sync mode. *)

val close_due : t -> upto:float -> bool
(** Close the open commit group if its deadline is at or before [upto],
    flushing at the deadline (which may lie ahead of the global clock —
    the driver calls this before advancing to the next terminal's ready
    time, and with [upto = infinity] when every terminal is blocked
    waiting on the group). Returns whether a group was closed; follow
    with {!drain_resolved}. *)

val drain_resolved : t -> (int * float) list
(** Group-commit tickets resolved since the last drain, with the shared
    completion time each member is charged. *)

val before_checkpoint : t -> unit
(** Checkpoint hook: flush buffered WAL ahead of the checkpoint's heap
    writes — closes the open group early (Group) or runs the trickle
    (Async). No-op in Sync mode, where the commit path left nothing
    buffered that a checkpoint may not see. *)

val finalize : t -> unit
(** Settle at a quiesce point (end of load, end of run): force-close any
    open group, discard unclaimed resolutions, flush async backlog. *)

val async_backlog : t -> int
(** Async mode: commits acknowledged but not yet flushed — the loss
    window if the machine died now. *)

val crash : t -> unit
(** Power-loss semantics for the pipeline's own state: discard the open
    commit group and unclaimed resolutions, forget the async acked
    backlog, and rewind the trickle deadline. Called by [Db.crash] after
    {!Wal.crash}; members of a discarded group were never durable, so
    recovery treats them like any other lost commit. *)

type stats = {
  mode_label : string;
  commit_fsyncs : int;
      (** fsyncs issued on the commit path (per-commit in sync mode, one
          per group in group mode, zero in async mode) *)
  groups : int;
  grouped_commits : int;
  fsyncs_saved : int;  (** sum over groups of (size - 1) *)
  max_group : int;
  walwriter_flushes : int;
  async_acked : int;
  async_backlog : int;
}

val stats : t -> stats
val reset_stats : t -> unit
val pp_stats : Format.formatter -> stats -> unit
