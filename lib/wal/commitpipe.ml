module Simclock = Sias_util.Simclock
module Bus = Sias_obs.Bus
module Commitgroup = Sias_txn.Commitgroup
module Crashpoint = Sias_chaos.Crashpoint

type mode =
  | Sync
  | Group of { delay : float }
  | Async of { interval : float; max_bytes : int }

let mode_name = function
  | Sync -> "sync"
  | Group _ -> "group"
  | Async _ -> "async"

type ack = Durable of float | Queued of int

type t = {
  wal : Wal.t;
  clock : Simclock.t;
  bus : Bus.t option;
  mode : mode;
  group : Commitgroup.t option; (* Some only in Group mode with delay > 0 *)
  mutable last : ack;
  mutable next_wflush : float; (* async: next WAL-writer time-based flush *)
  mutable acked_lsns : int list; (* async: acked commit LSNs not yet flushed *)
  mutable commit_fsyncs : int;
  mutable walwriter_flushes : int;
  mutable async_acked : int;
  (* remote-flush replication: after local durability at [at], ship up to
     [lsn] and return the standby's flush-ack time. None = local-only. *)
  mutable remote_wait : (lsn:int -> at:float -> float) option;
}

let create ~wal ~clock ?bus mode =
  let group =
    match mode with
    | Group { delay } when delay > 0.0 -> Some (Commitgroup.create ~delay)
    | _ -> None
  in
  let next_wflush =
    match mode with
    | Async { interval; _ } -> Simclock.now clock +. interval
    | _ -> infinity
  in
  {
    wal;
    clock;
    bus;
    mode;
    group;
    last = Durable 0.0;
    next_wflush;
    acked_lsns = [];
    commit_fsyncs = 0;
    walwriter_flushes = 0;
    async_acked = 0;
    remote_wait = None;
  }

let mode t = t.mode
let set_remote_wait t f = t.remote_wait <- Some f
let clear_remote_wait t = t.remote_wait <- None

let remote_ack t ~lsn ~at =
  match t.remote_wait with
  | None -> at
  | Some f -> Stdlib.max at (f ~lsn ~at)

let obs t =
  match t.bus with Some b when Bus.active b -> Some b | _ -> None

let close_group t cg g ~at =
  Crashpoint.reach "commitpipe.group.close.pre";
  let completion = Wal.flush_upto t.wal ~sync:true ~at ~lsn:g.Commitgroup.high_lsn in
  (* one remote round-trip covers every member of the group *)
  let completion = remote_ack t ~lsn:g.Commitgroup.high_lsn ~at:completion in
  t.commit_fsyncs <- t.commit_fsyncs + 1;
  (match obs t with
  | Some b ->
      Bus.publish b (Bus.Commit_group { size = List.length g.Commitgroup.members })
  | None -> ());
  Commitgroup.resolve cg g ~completion;
  Crashpoint.reach "commitpipe.group.close.post"

(* Async WAL-writer trickle: an un-synced sequential append, so a crash
   before the next fsync may tear it — that is the bounded-loss window. *)
let wflush t =
  if Wal.pending_bytes t.wal > 0 then begin
    Crashpoint.reach "commitpipe.trickle.pre";
    Wal.flush t.wal ~sync:false;
    t.walwriter_flushes <- t.walwriter_flushes + 1;
    let flushed = Wal.flushed_lsn t.wal in
    t.acked_lsns <- List.filter (fun l -> l > flushed) t.acked_lsns
  end

let commit t ~xid ~lsn =
  Crashpoint.reach "commitpipe.commit.pre";
  let ack =
    match (t.mode, t.group) with
    | Group _, Some cg ->
        let now = Simclock.now t.clock in
        (* a group left open past its deadline (the clock advanced during
           this transaction's own work) is closed before a new window opens *)
        (match Commitgroup.take_due cg ~upto:now with
        | Some g -> close_group t cg g ~at:g.Commitgroup.deadline
        | None -> ());
        Queued (Commitgroup.register cg ~now ~xid ~lsn)
    | Async _, _ ->
        t.async_acked <- t.async_acked + 1;
        t.acked_lsns <- lsn :: t.acked_lsns;
        Durable (Simclock.now t.clock)
    | (Sync | Group _), _ ->
        (* Group with delay <= 0 degenerates to exactly today's per-commit
           fsync — the determinism tests pin this *)
        Wal.flush t.wal ~sync:true;
        t.commit_fsyncs <- t.commit_fsyncs + 1;
        let at = remote_ack t ~lsn ~at:(Simclock.now t.clock) in
        Simclock.advance_to t.clock at;
        Durable at
  in
  t.last <- ack;
  ack

let last_ack t = t.last

let close_due t ~upto =
  match t.group with
  | None -> false
  | Some cg -> (
      match Commitgroup.take_due cg ~upto with
      | Some g ->
          close_group t cg g ~at:g.Commitgroup.deadline;
          true
      | None -> false)

let drain_resolved t =
  match t.group with None -> [] | Some cg -> Commitgroup.drain_resolved cg

let tick t =
  match t.mode with
  | Sync -> ()
  | Group _ -> ignore (close_due t ~upto:(Simclock.now t.clock))
  | Async { interval; max_bytes } ->
      let now = Simclock.now t.clock in
      if Wal.pending_bytes t.wal >= max_bytes then begin
        wflush t;
        t.next_wflush <- now +. interval
      end
      else if now >= t.next_wflush then begin
        wflush t;
        while t.next_wflush <= now do
          t.next_wflush <- t.next_wflush +. interval
        done
      end

let before_checkpoint t =
  match t.mode with
  | Sync -> ()
  | Group _ -> (
      (* flush the open window early rather than let the checkpoint write
         heap pages whose commit records are still buffered *)
      match t.group with
      | None -> ()
      | Some cg -> (
          match Commitgroup.take_due cg ~upto:infinity with
          | Some g ->
              let at = Float.min g.Commitgroup.deadline (Simclock.now t.clock) in
              close_group t cg g ~at
          | None -> ()))
  | Async _ -> wflush t

let finalize t =
  ignore (close_due t ~upto:infinity);
  ignore (drain_resolved t);
  match t.mode with Async _ -> wflush t | _ -> ()

let async_backlog t = List.length t.acked_lsns

let crash t =
  (* Power loss: whatever was parked in an open commit group or queued
     behind the WAL-writer never became durable — forget it, so a
     post-recovery pipeline starts from a clean slate. *)
  (match t.group with
  | Some cg ->
      ignore (Commitgroup.take_due cg ~upto:infinity);
      ignore (Commitgroup.drain_resolved cg)
  | None -> ());
  t.acked_lsns <- [];
  t.last <- Durable 0.0;
  t.next_wflush <-
    (match t.mode with
    | Async { interval; _ } -> Simclock.now t.clock +. interval
    | _ -> infinity)

let reset_stats t =
  t.commit_fsyncs <- 0;
  t.walwriter_flushes <- 0;
  t.async_acked <- 0;
  Option.iter Commitgroup.reset_stats t.group

type stats = {
  mode_label : string;
  commit_fsyncs : int;
  groups : int;
  grouped_commits : int;
  fsyncs_saved : int;
  max_group : int;
  walwriter_flushes : int;
  async_acked : int;
  async_backlog : int;
}

let stats (t : t) =
  {
    mode_label = mode_name t.mode;
    commit_fsyncs = t.commit_fsyncs;
    groups = (match t.group with Some cg -> Commitgroup.groups cg | None -> 0);
    grouped_commits =
      (match t.group with Some cg -> Commitgroup.grouped_commits cg | None -> 0);
    fsyncs_saved =
      (match t.group with Some cg -> Commitgroup.fsyncs_saved cg | None -> 0);
    max_group =
      (match t.group with Some cg -> Commitgroup.max_group cg | None -> 0);
    walwriter_flushes = t.walwriter_flushes;
    async_acked = t.async_acked;
    async_backlog = async_backlog t;
  }

let pp_stats fmt s =
  Format.fprintf fmt
    "commit pipeline: mode=%s commit-fsyncs=%d groups=%d grouped=%d \
     fsyncs-saved=%d max-group=%d walwriter-flushes=%d acked=%d backlog=%d@."
    s.mode_label s.commit_fsyncs s.groups s.grouped_commits s.fsyncs_saved
    s.max_group s.walwriter_flushes s.async_acked s.async_backlog
