(* Per-domain WAL insert slots feeding one flusher domain.

   Shape of the problem: N domains produce log records; the log itself
   is a strictly ordered append stream with one durability horizon, so
   something must serialize. Instead of a contended insert lock, each
   producing domain owns a private slot (its message queue — the lwkt
   model again) and a single flusher domain drains the slots in slot
   order, appends to the one [Wal.t], and pushes every commit in the
   batch through [Commitpipe]'s group machinery: one fsync per drained
   batch covers every commit in it, exactly the group-commit economics
   the single-domain pipeline already measures.

   Producers never touch the Wal/Commitpipe/clock — those are owned by
   the flusher domain outright; the slot mutex is the only shared state
   between a producer and the flusher, and [wait_durable] is the ack
   path back. *)

type ticket = { t_slot : int; t_seq : int }

type pending = {
  seq : int;
  xid : int;
  rel : int;
  kind : Wal.kind;
  payload : bytes;
  commit : bool;
}

type slot = {
  id : int;
  m : Mutex.t;
  resolved : Condition.t;
  mutable buf : pending list; (* newest first *)
  mutable next_seq : int;
  mutable durable_seq : int; (* highest seq known durable *)
}

type stats = {
  appended : int;
  batches : int;
  max_batch : int;
  commits : int;
  commit_fsyncs : int;
  fsyncs_saved : int;
}

type t = {
  wal : Wal.t;
  pipe : Commitpipe.t;
  clock : Sias_util.Simclock.t;
  slots : slot array;
  wake_m : Mutex.t;
  wake_c : Condition.t;
  mutable work : bool;
  mutable stopping : bool;
  flush_m : Mutex.t; (* serializes batch processing (flusher vs inline) *)
  mutable flusher : unit Domain.t option;
  (* flusher-owned counters, read after [stop] *)
  mutable appended : int;
  mutable batches : int;
  mutable max_batch : int;
  mutable commits : int;
}

let create ?device ?bus ~slots () =
  if slots < 1 then invalid_arg "Walslots.create: slots must be >= 1";
  let clock = Sias_util.Simclock.create () in
  let wal = Wal.create ?device ?bus ~clock () in
  (* A tiny positive delay keeps the group open until [close_due
     ~upto:infinity]: the flusher closes one group per drained batch, so
     batch size — not a sim-time window — decides group membership. *)
  let pipe = Commitpipe.create ~wal ~clock ?bus (Commitpipe.Group { delay = 1e-9 }) in
  {
    wal;
    pipe;
    clock;
    slots =
      Array.init slots (fun id ->
          {
            id;
            m = Mutex.create ();
            resolved = Condition.create ();
            buf = [];
            next_seq = 0;
            durable_seq = -1;
          });
    wake_m = Mutex.create ();
    wake_c = Condition.create ();
    work = false;
    stopping = false;
    flush_m = Mutex.create ();
    flusher = None;
    appended = 0;
    batches = 0;
    max_batch = 0;
    commits = 0;
  }

let wal t = t.wal
let slot_count t = Array.length t.slots

let signal t =
  Mutex.lock t.wake_m;
  t.work <- true;
  Condition.signal t.wake_c;
  Mutex.unlock t.wake_m

let append t ~slot ~xid ~rel ~kind ~payload =
  if slot < 0 || slot >= Array.length t.slots then
    invalid_arg "Walslots.append: no such slot";
  let s = t.slots.(slot) in
  Mutex.lock s.m;
  let seq = s.next_seq in
  s.next_seq <- seq + 1;
  s.buf <- { seq; xid; rel; kind; payload; commit = kind = Wal.Commit } :: s.buf;
  Mutex.unlock s.m;
  signal t;
  { t_slot = slot; t_seq = seq }

(* Drain every slot (in slot order, each slot's records in seq order),
   append the batch to the log, group-commit the commits, then advance
   each slot's durable horizon to the flushed lsn and wake waiters.
   Runs on the flusher domain, or inline in single-domain tests. *)
let flush_batch t =
  Mutex.lock t.flush_m;
  let drained =
    Array.map
      (fun s ->
        Mutex.lock s.m;
        let buf = List.rev s.buf in
        s.buf <- [];
        Mutex.unlock s.m;
        buf)
      t.slots
  in
  let batch_n = Array.fold_left (fun acc l -> acc + List.length l) 0 drained in
  if batch_n > 0 then begin
    let commits = ref [] in
    let lsn_of =
      Array.map
        (fun recs ->
          List.map
            (fun p ->
              let lsn =
                Wal.append t.wal ~xid:p.xid ~rel:p.rel ~kind:p.kind
                  ~payload:p.payload
              in
              if p.commit then commits := (p.xid, lsn) :: !commits;
              (p.seq, lsn))
            recs)
        drained
    in
    t.appended <- t.appended + batch_n;
    t.batches <- t.batches + 1;
    if batch_n > t.max_batch then t.max_batch <- batch_n;
    let durable_upto =
      if !commits = [] then
        (* no commit in the batch: records ride along unsynced until the
           next commit's group fsync (or the final stop flush) *)
        Wal.flushed_lsn t.wal
      else begin
        List.iter
          (fun (xid, lsn) ->
            t.commits <- t.commits + 1;
            ignore (Commitpipe.commit t.pipe ~xid ~lsn))
          (List.rev !commits);
        ignore (Commitpipe.close_due t.pipe ~upto:infinity);
        ignore (Commitpipe.drain_resolved t.pipe);
        Wal.flushed_lsn t.wal
      end
    in
    Array.iteri
      (fun i seqs ->
        let s = t.slots.(i) in
        let durable =
          List.fold_left
            (fun acc (seq, lsn) -> if lsn <= durable_upto then seq else acc)
            s.durable_seq seqs
        in
        if durable > s.durable_seq then begin
          Mutex.lock s.m;
          s.durable_seq <- durable;
          Condition.broadcast s.resolved;
          Mutex.unlock s.m
        end)
      lsn_of
  end;
  Mutex.unlock t.flush_m;
  batch_n

let flusher_loop t =
  let running = ref true in
  while !running do
    Mutex.lock t.wake_m;
    while (not t.work) && not t.stopping do
      Condition.wait t.wake_c t.wake_m
    done;
    t.work <- false;
    let stop_after = t.stopping in
    Mutex.unlock t.wake_m;
    ignore (flush_batch t);
    if stop_after then begin
      (* final sweep: catch records appended between the drain and now,
         then force the tail durable so every waiter resolves *)
      ignore (flush_batch t);
      Mutex.lock t.flush_m;
      Wal.flush t.wal ~sync:true;
      Array.iter
        (fun s ->
          Mutex.lock s.m;
          s.durable_seq <- s.next_seq - 1;
          Condition.broadcast s.resolved;
          Mutex.unlock s.m)
        t.slots;
      Mutex.unlock t.flush_m;
      running := false
    end
  done

let start t =
  match t.flusher with
  | Some _ -> invalid_arg "Walslots.start: flusher already running"
  | None -> t.flusher <- Some (Domain.spawn (fun () -> flusher_loop t))

let stop t =
  Mutex.lock t.wake_m;
  t.stopping <- true;
  Condition.broadcast t.wake_c;
  Mutex.unlock t.wake_m;
  (match t.flusher with
  | Some d ->
      Domain.join d;
      t.flusher <- None
  | None ->
      (* inline mode: settle synchronously *)
      ignore (flush_batch t);
      Mutex.lock t.flush_m;
      Wal.flush t.wal ~sync:true;
      Array.iter (fun s -> s.durable_seq <- s.next_seq - 1) t.slots;
      Mutex.unlock t.flush_m);
  t.stopping <- false

let wait_durable t ticket =
  let s = t.slots.(ticket.t_slot) in
  Mutex.lock s.m;
  while s.durable_seq < ticket.t_seq do
    Condition.wait s.resolved s.m
  done;
  Mutex.unlock s.m

let is_durable t ticket =
  let s = t.slots.(ticket.t_slot) in
  Mutex.lock s.m;
  let r = s.durable_seq >= ticket.t_seq in
  Mutex.unlock s.m;
  r

let stats t =
  let ps = Commitpipe.stats t.pipe in
  {
    appended = t.appended;
    batches = t.batches;
    max_batch = t.max_batch;
    commits = t.commits;
    commit_fsyncs = ps.Commitpipe.commit_fsyncs;
    fsyncs_saved = ps.Commitpipe.fsyncs_saved;
  }

let pp_stats ppf (s : stats) =
  Format.fprintf ppf
    "wal-slots: %d records in %d batches (max %d), %d commits, %d fsyncs \
     (%d saved by batching)"
    s.appended s.batches s.max_batch s.commits s.commit_fsyncs s.fsyncs_saved
