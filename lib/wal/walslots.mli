(** Per-domain WAL insert slots with a single flusher domain.

    N producing domains append log records into private slots (their
    message queues); one flusher domain drains the slots in order,
    appends to a single {!Wal.t}, and routes every commit in the drained
    batch through {!Commitpipe}'s group-commit machinery — one fsync per
    batch covers all of them. Producers never touch the Wal, the commit
    pipeline or its clock; the only shared state between a producer and
    the flusher is the slot mutex, and {!wait_durable} is the
    acknowledgement path back.

    Can also run without a flusher domain ({!start} never called):
    {!flush_batch} then drains inline, which is what deterministic
    single-domain tests drive. *)

type t

type ticket
(** Handle for one appended record, resolved when it is durable. *)

type stats = {
  appended : int;  (** records written to the log *)
  batches : int;  (** drain cycles that found work *)
  max_batch : int;  (** largest single batch *)
  commits : int;  (** commit records among them *)
  commit_fsyncs : int;  (** fsyncs issued by the group pipeline *)
  fsyncs_saved : int;  (** commits that shared another commit's fsync *)
}

val create :
  ?device:Flashsim.Device.t -> ?bus:Sias_obs.Bus.t -> slots:int -> unit -> t
(** [slots] is the number of producing domains; slot [i] belongs to
    domain [i] exclusively. The log and its commit pipeline run on a
    private simulated clock owned by the flusher. *)

val wal : t -> Wal.t
(** The underlying log. Owned by the flusher domain while it runs: only
    inspect after {!stop}. *)

val slot_count : t -> int

val append :
  t -> slot:int -> xid:int -> rel:int -> kind:Wal.kind -> payload:bytes -> ticket
(** Enqueue a record into the caller's slot and wake the flusher.
    Non-blocking; per-slot order is preserved in the log. *)

val start : t -> unit
(** Spawn the flusher domain. *)

val stop : t -> unit
(** Drain everything, force the tail durable, and join the flusher (or
    settle inline if {!start} was never called). Every ticket issued
    before [stop] is durable afterwards. Do not [append] after [stop]. *)

val flush_batch : t -> int
(** Drain and append one batch inline (single-domain/test mode; also
    safe while the flusher runs — batch processing is serialized).
    Returns the number of records drained. *)

val wait_durable : t -> ticket -> unit
(** Block until the record is durable (its covering group fsync, or the
    final [stop] flush, completed). *)

val is_durable : t -> ticket -> bool

val stats : t -> stats
val pp_stats : Format.formatter -> stats -> unit
