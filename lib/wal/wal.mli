(** Write-ahead log.

    Both engines log logical records before touching heap pages; commit
    forces the log. The log device is separate from the data device (as in
    the paper's measurement setup, where the relation blocktrace shows only
    heap I/O), and WAL writes are strictly sequential appends.

    Records are retained in memory with their LSNs so that recovery tests
    can replay the tail of the log after a simulated crash; engines supply
    their own payload encoding.

    Every record carries a CRC32 over its header and payload, computed at
    append and verified by the recovery scan ({!verified_from}): a torn
    tail — invalid records only at the end of the log — marks the exact
    point where replay must stop, while an invalid record {e followed} by
    a valid one means corruption inside the log body and raises
    {!Corrupt_wal} rather than replaying past damage. *)

type kind =
  | Insert
  | Update
  | Delete
  | Trim  (** whole-page discard by GC *)
  | Commit
  | Abort
  | Checkpoint
  | Full_page
      (** full post-image of a heap page, logged instead of the item
          record on the first modification after a checkpoint so a torn
          data-page write can be repaired (PostgreSQL full-page writes) *)
  | Ix_batch
      (** one logical index structural change (insert, split, delete,
          merge) encoded as a batch of per-page slot deltas; the record
          CRC makes multi-page changes atomic at replay — either the
          whole split redoes or none of it ({!Mvcc.Walcodec} owns the
          payload codec) *)

val kind_to_string : kind -> string

type record = {
  lsn : int;
  xid : int;
  rel : int;
  kind : kind;
  payload : bytes;
  crc : int;  (** CRC32 over header fields and payload *)
}

exception Corrupt_wal of int
(** LSN of an invalid record found {e before} valid ones — mid-log
    corruption that replay must never skip silently. *)

exception Out_of_space of { needed : int; capacity : int; retained : int }
(** Appending [needed] more bytes would push the retained log past its
    configured [capacity]. Raised before the record is buffered: the log
    is unchanged, so the caller can checkpoint + {!truncate_before} and
    retry, or degrade to read-only. *)

exception Hold_too_late of { name : string; truncated_below : int }
(** {!register_hold} after the log was already truncated: a follower
    attached that late could never replay from scratch. *)

exception Lsn_gap of { expected : int; got : int }
(** {!install} received a record out of order; shipped records must
    arrive densely at exactly [next_lsn]. *)

type t

val create :
  ?device:Flashsim.Device.t ->
  ?faults:Flashsim.Faultdev.t ->
  ?bus:Sias_obs.Bus.t ->
  ?capacity_bytes:int ->
  clock:Sias_util.Simclock.t ->
  unit ->
  t
(** Without a device the log is purely in-memory (no latency charged).
    With [faults], async flushes may be torn if a crash follows before
    the next sync flush; sync flushes (commit) are always durable.
    [capacity_bytes] bounds the retained log: appends that would exceed
    it raise {!Out_of_space} (default: unbounded). *)

val append : t -> xid:int -> rel:int -> kind:kind -> payload:bytes -> int
(** Buffer a record (checksummed at append); returns its LSN. No I/O
    happens until {!flush}. *)

val flush : t -> sync:bool -> unit
(** Write all buffered bytes as one sequential append. [sync] stalls the
    caller's clock until completion (commit) and makes everything written
    so far durable; async flushes model WAL writer activity and may tear
    at a crash. *)

val flush_upto : t -> sync:bool -> at:float -> lsn:int -> float
(** Flush the pending batch up to and including [lsn], submitting to the
    device at simulated time [at] (which may lie ahead of the global
    clock), and return the device completion time ([at] when the log has
    no device). Unlike {!flush} the global clock is {e not} advanced:
    a commit group charges the shared completion to each member while
    the rest of the system keeps running. A [sync] flush clears any
    pending tear, exactly as {!flush}[ ~sync:true] does. *)

val pending_bytes : t -> int
(** Bytes buffered but not yet handed to the device — the WAL-writer
    trickle's byte threshold reads this. *)

val pending_records : t -> record list
(** The unflushed batch in log order (test hook; the batch is tracked
    explicitly rather than re-derived from the retained log). *)

val record_bytes : record -> int
(** On-disk size of a record: fixed header plus payload. *)

val tear_point : slice:record list -> persisted:int -> int option
(** Of a flushed [slice] (oldest first), the LSN of the first record not
    wholly contained in the first [persisted] bytes; [None] when all fit.
    Operates on the flushed slice alone — O(|slice|), not a scan of the
    retained log. Exposed as a test hook so the equivalence against a
    whole-log reference scan stays pinned. *)

val current_lsn : t -> int
val flushed_lsn : t -> int

val next_lsn : t -> int
(** The LSN the next {!append} will be assigned — lets a full-page write
    stamp the page with its own record's LSN before capturing the image. *)

val verify : record -> bool
(** Whether the record's stored CRC matches its content. *)

val records_from : t -> lsn:int -> record list
(** All records with LSN >= [lsn], in log order, without verification.
    Prefer {!verified_from} for recovery. *)

val verified_from : t -> lsn:int -> record list * [ `Clean | `Torn of int ]
(** Recovery scan: records with LSN >= [lsn] whose checksums verify, in
    log order, stopping at the first invalid record. [`Torn lsn] reports
    where a torn tail begins (replay is complete up to but excluding it);
    raises {!Corrupt_wal} when a valid record follows an invalid one. *)

val truncate_before : t -> lsn:int -> unit
(** Discard retained records below [lsn] (checkpoint recycling). The
    request is clamped to the lowest registered retention {!hold}: a
    checkpoint can never recycle log a follower still needs. *)

(** {2 Retention holds}

    A hold pins the log tail from a given LSN onward: {!truncate_before}
    silently clamps to the minimum held LSN. Replication senders register
    one per standby and advance it as the standby acknowledges, so
    checkpoint recycling can never outrun a lagging follower. *)

type hold

val register_hold : t -> name:string -> hold
(** Pin everything the log currently retains (from {!oldest_retained}).
    Raises {!Hold_too_late} if the log was already truncated past its
    first LSN — a follower attached that late would never be able to
    replay from scratch; attach holds before the first checkpoint
    truncation. *)

val advance_hold : t -> hold -> lsn:int -> unit
(** Records below [lsn] are no longer needed by this holder. Holds only
    move forward; a lower [lsn] is ignored. *)

val release_hold : t -> hold -> unit
(** Drop the pin entirely (standby removed). Idempotent. *)

val hold_lsn : hold -> int
val holds : t -> (string * int) list
(** Registered holds as [(name, held_lsn)], registration order. *)

val min_hold : t -> int option
(** Lowest held LSN across registered holds, if any. *)

val install : t -> record -> unit
(** Standby side of log shipping: append a record received from a
    primary {e verbatim} — LSN, xid, payload and CRC are preserved, so
    the standby's log is byte-equal to the shipped prefix and the same
    recovery scan ({!verified_from}) applies. The record must verify and
    must be exactly the next LSN ([next_lsn]); raises [Corrupt_wal] on a
    failed checksum and {!Lsn_gap} on an LSN gap. The installed record
    joins the pending batch; flush it like any locally appended one. *)

val oldest_retained : t -> int
(** Lowest LSN the log still retains (1 if never truncated): replay from
    scratch is possible iff this is <= the first LSN ever issued. *)

val crash : t -> unit
(** Simulate losing the machine: un-flushed records vanish; if any
    un-fsynced async flush would tear, everything from the {e earliest}
    tear on is lost and the boundary record's checksum breaks (a real
    torn tail for {!verified_from} to find) — a hole in the log
    invalidates later flushes even when their own bytes landed whole.
    [next_lsn] is preserved — LSNs are never reused. *)

val corrupt : t -> lsn:int -> unit
(** Test hook: break the stored checksum of the record at [lsn]. *)

val bytes_written : t -> int
val flush_count : t -> int

val capacity_bytes : t -> int option
(** The configured bound, if any. *)

val retained_bytes : t -> int
(** On-disk bytes of all currently retained records — what the capacity
    bound is charged against. Falls on {!truncate_before}. *)
