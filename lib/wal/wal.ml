module Device = Flashsim.Device
module Faultdev = Flashsim.Faultdev
module Blocktrace = Flashsim.Blocktrace
module Simclock = Sias_util.Simclock
module Crc32 = Sias_util.Crc32
module Bus = Sias_obs.Bus
module Crashpoint = Sias_chaos.Crashpoint

type kind =
  | Insert
  | Update
  | Delete
  | Trim
  | Commit
  | Abort
  | Checkpoint
  | Full_page
  | Ix_batch
      (* one logical index structural change (insert, split, delete,
         merge) as an atomic batch of per-page deltas; the record CRC
         makes multi-page changes all-or-nothing at replay *)

let kind_to_string = function
  | Insert -> "insert"
  | Update -> "update"
  | Delete -> "delete"
  | Trim -> "trim"
  | Commit -> "commit"
  | Abort -> "abort"
  | Checkpoint -> "checkpoint"
  | Full_page -> "full_page"
  | Ix_batch -> "ix_batch"

let kind_tag = function
  | Insert -> 0
  | Update -> 1
  | Delete -> 2
  | Trim -> 3
  | Commit -> 4
  | Abort -> 5
  | Checkpoint -> 6
  | Full_page -> 7
  | Ix_batch -> 8

type record = {
  lsn : int;
  xid : int;
  rel : int;
  kind : kind;
  payload : bytes;
  crc : int;
}

exception Corrupt_wal of int

exception Out_of_space of { needed : int; capacity : int; retained : int }
exception Hold_too_late of { name : string; truncated_below : int }
exception Lsn_gap of { expected : int; got : int }

let () =
  Printexc.register_printer (function
    | Corrupt_wal lsn ->
        Some
          (Printf.sprintf
             "Wal.Corrupt_wal: invalid record at lsn %d followed by valid \
              ones — corruption inside the log body, replay must not skip it"
             lsn)
    | Out_of_space { needed; capacity; retained } ->
        Some
          (Printf.sprintf
             "Wal.Out_of_space: appending %d bytes would exceed the WAL \
              capacity of %d bytes (%d retained); checkpoint and truncate, \
              or enter read-only degraded mode"
             needed capacity retained)
    | Hold_too_late { name; truncated_below } ->
        Some
          (Printf.sprintf
             "Wal.Hold_too_late: cannot register hold %S — the log is \
              already truncated below lsn %d; attach followers before the \
              first checkpoint recycling"
             name truncated_below)
    | Lsn_gap { expected; got } ->
        Some
          (Printf.sprintf
             "Wal.Lsn_gap: install received lsn %d but the next expected \
              lsn is %d — shipped records must arrive densely in order"
             got expected)
    | _ -> None)

let record_header_bytes = 24 (* lsn + xid + rel + kind + length + crc, on disk *)

let record_crc ~lsn ~xid ~rel ~kind ~payload =
  let hdr = Bytes.create 20 in
  Bytes.set_int64_le hdr 0 (Int64.of_int lsn);
  Bytes.set_int32_le hdr 8 (Int32.of_int xid);
  Bytes.set_int32_le hdr 12 (Int32.of_int rel);
  Bytes.set_int32_le hdr 16 (Int32.of_int (kind_tag kind));
  let c = Crc32.update Crc32.init hdr ~pos:0 ~len:20 in
  let c = Crc32.update c payload ~pos:0 ~len:(Bytes.length payload) in
  Crc32.finish c

let verify r =
  r.crc = record_crc ~lsn:r.lsn ~xid:r.xid ~rel:r.rel ~kind:r.kind ~payload:r.payload

let record_bytes r = record_header_bytes + Bytes.length r.payload

type t = {
  device : Device.t option;
  faults : Faultdev.t option;
  bus : Bus.t option;
  clock : Simclock.t;
  mutable records : record list; (* newest first, retained for recovery *)
  (* Unflushed records, newest first — the explicit pending batch. Flush
     slices come off this list directly instead of being re-derived by
     filtering [records] against the flushed LSN on every flush. *)
  mutable batch : record list;
  mutable next_lsn : int;
  mutable flushed_lsn : int;
  mutable truncated_below : int;
  mutable pending_bytes : int;
  mutable write_sector : int;
  mutable bytes_written : int;
  mutable flush_count : int;
  (* First LSN of the earliest un-fsynced flush that would tear if the
     machine died now (the record at this LSN persists only partially;
     later ones not at all). Earliest wins: a hole in the log invalidates
     everything after it, even bytes from later flushes that landed
     whole. Cleared by any sync flush: fsync makes all previously written
     bytes durable. *)
  mutable tear : int option;
  (* Retention holds: followers pin the tail of the log so checkpoint
     recycling cannot discard records they have not acknowledged yet.
     Registration order, small (one per standby). *)
  mutable holds : hold list;
  (* Finite log-file capacity: bytes of retained records may not exceed
     it. [None] = unbounded (the default; capacity machinery stays cold
     so default-seed runs are untouched). *)
  capacity_bytes : int option;
  mutable retained_bytes : int;
}

and hold = {
  h_name : string;
  mutable h_lsn : int;  (** lowest LSN this holder still needs *)
  mutable h_released : bool;
}

let create ?device ?faults ?bus ?capacity_bytes ~clock () =
  {
    device;
    faults;
    bus;
    clock;
    records = [];
    batch = [];
    next_lsn = 1;
    flushed_lsn = 0;
    truncated_below = 1;
    pending_bytes = 0;
    write_sector = 0;
    bytes_written = 0;
    flush_count = 0;
    tear = None;
    holds = [];
    capacity_bytes;
    retained_bytes = 0;
  }

let obs t =
  match t.bus with Some b when Bus.active b -> Some b | _ -> None

let append t ~xid ~rel ~kind ~payload =
  Crashpoint.reach "wal.append.pre";
  let bytes = record_header_bytes + Bytes.length payload in
  (* Checkpoint records are exempt: they model the reserved emergency
     region every real log keeps so that the record which frees space can
     always be written, even when the log is nominally full. *)
  (match t.capacity_bytes with
  | Some cap when kind <> Checkpoint && t.retained_bytes + bytes > cap ->
      raise
        (Out_of_space { needed = bytes; capacity = cap; retained = t.retained_bytes })
  | _ -> ());
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  let crc = record_crc ~lsn ~xid ~rel ~kind ~payload in
  let r = { lsn; xid; rel; kind; payload; crc } in
  t.records <- r :: t.records;
  t.batch <- r :: t.batch;
  t.retained_bytes <- t.retained_bytes + bytes;
  t.pending_bytes <- t.pending_bytes + bytes;
  (match obs t with
  | Some b ->
      Bus.publish b
        (Bus.Wal_append
           {
             kind = kind_to_string kind;
             bytes = record_header_bytes + Bytes.length payload;
           })
  | None -> ());
  lsn

(* Of a flushed slice (oldest first), find the LSN of the first record
   that does not fit entirely within [persisted] bytes. The slice comes
   straight off the pending batch, so this costs O(|slice|) — not a scan
   of the whole retained log. *)
let tear_point ~slice ~persisted =
  let rec scan remaining = function
    | [] -> None
    | r :: rest ->
        if record_bytes r <= remaining then
          scan (remaining - record_bytes r) rest
        else Some r.lsn
  in
  scan persisted slice

(* Flush the pending batch up to and including [lsn], submitted to the
   device at time [at]; returns the completion time ([at] with no
   device). [advance] stalls the global clock to the completion — the
   legacy commit path; group commit instead charges the shared
   completion to each member without stopping the world. *)
let flush_slice t ~sync ~advance ~at ~lsn =
  (* [batch] is newest-first with strictly decreasing LSNs, so the
     records to flush are a suffix of the list *)
  let rec split keep = function
    | r :: rest when r.lsn > lsn -> split (r :: keep) rest
    | slice -> (List.rev keep, slice)
  in
  let keep, slice_newest = split [] t.batch in
  match slice_newest with
  | [] -> at
  | top :: _ ->
      Crashpoint.reach "wal.flush.pre";
      let slice = List.rev slice_newest in
      let bytes = List.fold_left (fun a r -> a + record_bytes r) 0 slice in
      let sector0 = t.write_sector in
      let completion =
        match t.device with
        | None -> at
        | Some device ->
            let c =
              Device.submit device ~now:at Blocktrace.Write ~sector:sector0
                ~bytes
            in
            t.write_sector <- sector0 + ((bytes + 511) / 512);
            if advance && sync then Simclock.advance_to t.clock c;
            c
      in
      if sync then Crashpoint.reach "wal.fsync.pre";
      (match obs t with
      | Some b ->
          Bus.publish b (Bus.Wal_flush { sync; bytes });
          if sync then
            Bus.publish b
              (Bus.Span
                 { cat = "wal"; name = "wal_fsync"; tid = 101; t0 = at; t1 = completion })
      | None -> ());
      if sync then t.tear <- None
      else begin
        match t.faults with
        | None -> ()
        | Some f -> (
            (* probe with the sector this batch was written at, not the
               post-advance sector after it *)
            match Faultdev.torn_write f ~sector:sector0 ~bytes with
            | None -> ()
            | Some persisted ->
                (match obs t with
                | Some b ->
                    Bus.publish b
                      (Bus.Fault_hit { kind = "torn_wal"; sector = sector0 })
                | None -> ());
                if t.tear = None then t.tear <- tear_point ~slice ~persisted)
      end;
      t.batch <- keep;
      t.bytes_written <- t.bytes_written + bytes;
      t.pending_bytes <- t.pending_bytes - bytes;
      if top.lsn > t.flushed_lsn then t.flushed_lsn <- top.lsn;
      t.flush_count <- t.flush_count + 1;
      Crashpoint.reach (if sync then "wal.fsync.post" else "wal.flush.post");
      completion

let flush t ~sync =
  if t.pending_bytes > 0 then
    ignore
      (flush_slice t ~sync ~advance:true ~at:(Simclock.now t.clock)
         ~lsn:(t.next_lsn - 1))

let flush_upto t ~sync ~at ~lsn = flush_slice t ~sync ~advance:false ~at ~lsn

let pending_bytes t = t.pending_bytes
let pending_records t = List.rev t.batch

let current_lsn t = t.next_lsn - 1
let flushed_lsn t = t.flushed_lsn
let next_lsn t = t.next_lsn
let oldest_retained t = t.truncated_below

let records_from t ~lsn =
  List.filter (fun r -> r.lsn >= lsn) (List.rev t.records)

let verified_from t ~lsn =
  let rec scan valid bad = function
    | [] -> (
        List.rev valid,
        match bad with None -> `Clean | Some b -> `Torn b)
    | r :: rest -> (
        match (verify r, bad) with
        | true, None -> scan (r :: valid) None rest
        | true, Some b ->
            (* A valid record beyond an invalid one: not a torn tail but
               corruption inside the log body — nothing after the damage
               can be trusted, so fail loudly. *)
            raise (Corrupt_wal b)
        | false, None -> scan valid (Some r.lsn) rest
        | false, Some b -> scan valid (Some b) rest)
  in
  scan [] None (records_from t ~lsn)

let live_holds t =
  t.holds <- List.filter (fun h -> not h.h_released) t.holds;
  t.holds

let register_hold t ~name =
  if t.truncated_below > 1 then
    raise (Hold_too_late { name; truncated_below = t.truncated_below });
  let h = { h_name = name; h_lsn = t.truncated_below; h_released = false } in
  t.holds <- t.holds @ [ h ];
  h

let advance_hold _t h ~lsn = if lsn > h.h_lsn then h.h_lsn <- lsn
let release_hold _t h = h.h_released <- true
let hold_lsn h = h.h_lsn
let holds t = List.map (fun h -> (h.h_name, h.h_lsn)) (live_holds t)

let min_hold t =
  match live_holds t with
  | [] -> None
  | hs -> Some (List.fold_left (fun acc h -> Stdlib.min acc h.h_lsn) max_int hs)

let install t r =
  Crashpoint.reach "wal.install.pre";
  if not (verify r) then raise (Corrupt_wal r.lsn);
  if r.lsn <> t.next_lsn then
    raise (Lsn_gap { expected = t.next_lsn; got = r.lsn });
  (match t.capacity_bytes with
  | Some cap when t.retained_bytes + record_bytes r > cap ->
      raise
        (Out_of_space
           { needed = record_bytes r; capacity = cap; retained = t.retained_bytes })
  | _ -> ());
  t.next_lsn <- r.lsn + 1;
  t.records <- r :: t.records;
  t.batch <- r :: t.batch;
  t.retained_bytes <- t.retained_bytes + record_bytes r;
  t.pending_bytes <- t.pending_bytes + record_bytes r;
  match obs t with
  | Some b ->
      Bus.publish b
        (Bus.Wal_append { kind = kind_to_string r.kind; bytes = record_bytes r })
  | None -> ()

let truncate_before t ~lsn =
  Crashpoint.reach "wal.truncate.pre";
  (* never recycle past a registered retention hold *)
  let lsn =
    match min_hold t with None -> lsn | Some held -> Stdlib.min lsn held
  in
  let dropped =
    List.fold_left
      (fun a r -> if r.lsn < lsn then a + record_bytes r else a)
      0 t.records
  in
  t.retained_bytes <- t.retained_bytes - dropped;
  t.records <- List.filter (fun r -> r.lsn >= lsn) t.records;
  (match List.filter (fun r -> r.lsn < lsn) t.batch with
  | [] -> ()
  | dropped ->
      (* truncating into the unflushed batch forgets those writes *)
      t.batch <- List.filter (fun r -> r.lsn >= lsn) t.batch;
      t.pending_bytes <-
        t.pending_bytes - List.fold_left (fun a r -> a + record_bytes r) 0 dropped);
  if lsn > t.truncated_below then t.truncated_below <- lsn

let crash t =
  (* Records never handed to the device are gone outright; a torn async
     flush additionally loses its tail, and the boundary record survives
     only partially — model that as a failing checksum so the recovery
     scan sees a torn tail, not a clean end. *)
  t.records <- List.filter (fun r -> r.lsn <= t.flushed_lsn) t.records;
  (match t.tear with
  | None -> ()
  | Some cut ->
      t.records <-
        List.filter_map
          (fun r ->
            if r.lsn > cut then None
            else if r.lsn = cut then Some { r with crc = r.crc lxor 0xBAD }
            else Some r)
          t.records);
  t.batch <- [];
  t.pending_bytes <- 0;
  t.tear <- None;
  t.retained_bytes <- List.fold_left (fun a r -> a + record_bytes r) 0 t.records

let corrupt t ~lsn =
  t.records <-
    List.map
      (fun r -> if r.lsn = lsn then { r with crc = r.crc lxor 0xBAD } else r)
      t.records

let bytes_written t = t.bytes_written
let flush_count t = t.flush_count
let capacity_bytes t = t.capacity_bytes
let retained_bytes t = t.retained_bytes
