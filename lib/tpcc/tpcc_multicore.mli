(** Sharded multicore TPC-C on OCaml 5 domains.

    Domain [d] owns warehouses [d*wpd+1 .. (d+1)*wpd] outright: engine,
    buffer pool, WAL, transaction manager, bus and SI checker are
    private to the domain (shared-nothing). TPC-C partitions exactly —
    remote-item/remote-customer selections stay inside the shard — so
    the unmodified single-domain driver runs verbatim per shard, each
    shard is deterministic in isolation, and the per-shard checker is a
    complete oracle. Commits stream as messages into per-domain
    {!Sias_wal.Walslots} insert slots; a single flusher domain batches
    the global commit log through the group-commit pipeline.

    Scaling is TPC-C's weak scaling: warehouses are per domain, N
    domains simulate an N-times larger system. Aggregate NOTPM sums the
    shards; [wall_s] shows the parallel speedup on real cores. *)

type config = {
  engine : string;  (** registry key: si / si-cv / sias / sias-v *)
  domains : int;
  base : Tpcc_workload.config;
      (** per-domain workload; [base.warehouses] is warehouses {e per
          domain}, [base.seed] derives one independent stream per domain
          via {!Sias_util.Rng.stream} *)
  isolation : Mvcc.Isolation.level;
  buffer_pages : int;  (** per domain *)
  bufpool_shards : int;  (** sub-shards of each domain's buffer pool *)
  check : bool;  (** attach a per-shard [Mvcc.Sichecker] *)
}

val default_config :
  engine:string -> domains:int -> warehouses_per_domain:int -> config
(** Standard TPC-C mix, 2048 buffer pages, single pool shard, checker
    on, snapshot isolation. *)

type shard_outcome = {
  domain : int;
  w_lo : int;  (** first global warehouse id owned *)
  w_hi : int;
  result : Tpcc_workload.result;
  violations : string list;
  start_mono : float;  (** monotonic wall time entering the timed run *)
  stop_mono : float;
}

type result = {
  config : config;
  shards : shard_outcome array;
  wall_s : float;  (** timed window: max stop - min start across shards *)
  total_committed : int;
  total_new_orders : int;
  agg_notpm : float;  (** sum of per-shard simulated NOTPM *)
  wall_notpm : float;  (** committed new-orders * 60 / wall_s *)
  violations : int;  (** total checker violations across shards — 0 or bust *)
  slots : Sias_wal.Walslots.stats;  (** shared commit-log flusher stats *)
}

val run : config -> result
(** Load and run every shard ([domains = 1] runs inline on the calling
    domain with no flusher — the deterministic path). The timed window
    opens after every shard has loaded (barrier). Raises on an unknown
    engine key or an invalid domain/warehouse count. *)

val pp_result : Format.formatter -> result -> unit
