module Rng = Sias_util.Rng
module Monotime = Sias_util.Monotime
module Domainpool = Sias_util.Domainpool
module Bus = Sias_obs.Bus
module Walslots = Sias_wal.Walslots
module W = Tpcc_workload

(* Sharded multicore TPC-C: domain [d] owns warehouses
   [d*wpd + 1 .. (d+1)*wpd] outright — engine, buffer pool, WAL,
   transaction manager, bus and checker are all private to the domain
   (shared-nothing, the netisr model: hash work to a CPU and keep it
   there). TPC-C's partitionability makes the shard map exact: every
   transaction's data, including the 1% remote-item new-orders and 15%
   remote-customer payments, lives inside the home warehouse's shard
   because remote warehouses are drawn from the shard's own range
   (locally the shard numbers its warehouses 1..wpd, so the unmodified
   single-domain driver runs verbatim per shard).

   Scaling is TPC-C's own weak scaling: warehouses are per domain, so N
   domains simulate an N-times larger system; aggregate NOTPM sums the
   shards and the wall clock shows the parallel speedup (each shard's
   simulated run is CPU-bound on its own core).

   Two things cross domains, both as messages: each commit streams into
   the domain's {!Walslots} insert slot (one flusher domain batches the
   global commit log through the group-commit pipeline), and results
   return to the coordinator when the domain joins. Per-shard
   determinism is preserved exactly — the shard's sim is a pure function
   of its config — so a multicore run is reproducible shard by shard
   regardless of scheduling, and the per-shard SI checker remains a
   complete oracle (no cross-shard row ever exists). *)

type config = {
  engine : string;
  domains : int;
  base : W.config;
      (** per-domain workload; [base.warehouses] is warehouses {e per
          domain} (weak scaling), [base.seed] derives one independent
          stream per domain *)
  isolation : Mvcc.Isolation.level;
  buffer_pages : int;
  bufpool_shards : int;  (** sub-shards of each domain's buffer pool *)
  check : bool;  (** attach a per-shard checker as oracle *)
}

let default_config ~engine ~domains ~warehouses_per_domain =
  {
    engine;
    domains;
    base = W.default_config ~warehouses:warehouses_per_domain;
    isolation = `Si;
    buffer_pages = 2048;
    bufpool_shards = 1;
    check = true;
  }

type shard_outcome = {
  domain : int;
  w_lo : int;  (** first global warehouse id owned *)
  w_hi : int;
  result : W.result;
  violations : string list;
  start_mono : float;  (** monotonic wall time entering the timed run *)
  stop_mono : float;
}

type result = {
  config : config;
  shards : shard_outcome array;
  wall_s : float;  (** timed window: max stop - min start across shards *)
  total_committed : int;
  total_new_orders : int;
  agg_notpm : float;  (** sum of per-shard simulated NOTPM *)
  wall_notpm : float;  (** committed new-orders * 60 / wall_s *)
  violations : int;
  slots : Walslots.stats;
}

let encode_commit ~domain ~xid =
  let b = Bytes.create 10 in
  Bytes.set_uint16_le b 0 domain;
  Bytes.set_int64_le b 2 (Int64.of_int xid);
  b

let new_orders_of (r : W.result) =
  match List.assoc_opt W.New_order r.W.per_kind with
  | Some ks -> ks.W.committed
  | None -> 0

let run cfg =
  if cfg.domains < 1 then invalid_arg "Tpcc_multicore.run: domains must be >= 1";
  if cfg.base.W.warehouses < 1 then
    invalid_arg "Tpcc_multicore.run: warehouses_per_domain must be >= 1";
  (* Resolve the engine once on the coordinator; the first-class module
     is an immutable value, safe to close over in every worker. *)
  let (module E : Mvcc.Engine.S) =
    match Mvcc.Engine.find cfg.engine with
    | Some m -> m
    | None ->
        invalid_arg
          (Printf.sprintf "unknown engine %S; known engines: %s" cfg.engine
             (Mvcc.Engine.known_keys_hint ()))
  in
  (* One independent seed-derived stream per domain — a shared stream
     would silently correlate the shards' workloads. *)
  let streams =
    Array.init cfg.domains (fun d -> Rng.stream ~seed:cfg.base.W.seed ~stream:d)
  in
  Rng.assert_independent streams;
  let shard_seeds =
    Array.map (fun s -> Int64.to_int (Rng.int64 s) land max_int) streams
  in
  let slots = Walslots.create ~slots:cfg.domains () in
  let flusher_running = cfg.domains > 1 in
  if flusher_running then Walslots.start slots;
  let barrier = Domainpool.Barrier.create cfg.domains in
  let wpd = cfg.base.W.warehouses in
  let worker d =
    let module WE = W.Make (E) in
    let shard_cfg = { cfg.base with W.seed = shard_seeds.(d) } in
    let bus = Bus.create () in
    let db =
      Mvcc.Db.create ~bus ~buffer_pages:cfg.buffer_pages
        ~bufpool_shards:cfg.bufpool_shards ~isolation:cfg.isolation ()
    in
    let checker = if cfg.check then Some (Mvcc.Sichecker.attach bus) else None in
    let eng = E.create db in
    let tables = WE.create_tables eng in
    WE.load eng tables shard_cfg;
    (* Commit stream relay: every commit of this shard becomes a message
       in the domain's private insert slot; the flusher domain serializes
       the global commit log and group-fsyncs per batch. The subscriber
       only touches the slot mutex — no shard state — so it is safe to
       run on this domain while the flusher drains on its own. *)
    let last_ticket = ref None in
    let commits_since_wait = ref 0 in
    if flusher_running then
      Bus.subscribe bus (function
        | Bus.Txn_commit { xid } ->
            last_ticket :=
              Some
                (Walslots.append slots ~slot:d ~xid ~rel:d ~kind:Sias_wal.Wal.Commit
                   ~payload:(encode_commit ~domain:d ~xid));
            incr commits_since_wait;
            (* bounded outstanding window: park on the flusher's ack
               every so often, like a terminal waiting on group commit *)
            if !commits_since_wait >= 256 then begin
              commits_since_wait := 0;
              match !last_ticket with
              | Some tk -> Walslots.wait_durable slots tk
              | None -> ()
            end
        | _ -> ());
    (* Everyone loads before anyone's timed window opens. *)
    Domainpool.Barrier.wait barrier;
    let start_mono = Monotime.now () in
    let result = WE.run eng tables shard_cfg in
    (* end-of-run durability barrier on the shared commit log *)
    (match !last_ticket with
    | Some tk when flusher_running -> Walslots.wait_durable slots tk
    | _ -> ());
    let stop_mono = Monotime.now () in
    {
      domain = d;
      w_lo = (d * wpd) + 1;
      w_hi = (d + 1) * wpd;
      result;
      violations =
        (match checker with Some c -> Mvcc.Sichecker.violations c | None -> []);
      start_mono;
      stop_mono;
    }
  in
  let shards = Domainpool.run ~domains:cfg.domains worker in
  Walslots.stop slots;
  let slot_stats = Walslots.stats slots in
  let min_start =
    Array.fold_left (fun acc s -> Float.min acc s.start_mono) infinity shards
  in
  let max_stop =
    Array.fold_left (fun acc s -> Float.max acc s.stop_mono) neg_infinity shards
  in
  let wall_s = Float.max (max_stop -. min_start) 1e-9 in
  let total_committed =
    Array.fold_left (fun acc s -> acc + s.result.W.total_committed) 0 shards
  in
  let total_new_orders =
    Array.fold_left (fun acc s -> acc + new_orders_of s.result) 0 shards
  in
  let agg_notpm =
    Array.fold_left (fun acc s -> acc +. s.result.W.notpm) 0.0 shards
  in
  let violations =
    Array.fold_left
      (fun acc (s : shard_outcome) -> acc + List.length s.violations)
      0 shards
  in
  {
    config = cfg;
    shards;
    wall_s;
    total_committed;
    total_new_orders;
    agg_notpm;
    wall_notpm = float_of_int total_new_orders *. 60.0 /. wall_s;
    violations;
    slots = slot_stats;
  }

let pp_result ppf r =
  Format.fprintf ppf
    "@[<v>multicore tpcc: engine=%s domains=%d warehouses/domain=%d@,"
    r.config.engine r.config.domains r.config.base.W.warehouses;
  Array.iter
    (fun s ->
      Format.fprintf ppf
        "  domain %d (warehouses %d-%d): %.0f NOTPM, %d committed, %d \
         violations@,"
        s.domain s.w_lo s.w_hi s.result.W.notpm s.result.W.total_committed
        (List.length s.violations))
    r.shards;
  Format.fprintf ppf
    "  aggregate: %.0f NOTPM (sim), %.0f NOTPM (wall over %.2fs), %d \
     committed, %d new-orders, %d violations@,  %a@]"
    r.agg_notpm r.wall_notpm r.wall_s r.total_committed r.total_new_orders
    r.violations Walslots.pp_stats r.slots
