module Rng = Sias_util.Rng
module Stats = Sias_util.Stats
module Simclock = Sias_util.Simclock
module Contention = Sias_txn.Contention
module Commitpipe = Sias_wal.Commitpipe
module Value = Mvcc.Value
module S = Tpcc_schema
module Col = Tpcc_schema.Col

type tx_kind = New_order | Payment | Order_status | Delivery | Stock_level

let tx_kind_to_string = function
  | New_order -> "new-order"
  | Payment -> "payment"
  | Order_status -> "order-status"
  | Delivery -> "delivery"
  | Stock_level -> "stock-level"

let all_kinds = [ New_order; Payment; Order_status; Delivery; Stock_level ]

type outcome = Committed | User_abort | Conflict_abort | Failed

type config = {
  warehouses : int;
  scale : Tpcc_schema.scale;
  duration_s : float;
  terminals_per_warehouse : int;
  think_time_s : float;
  seed : int;
  gc_interval_s : float option;
  mix : (int * tx_kind) list;
  retry : Contention.retry_config option;
}

let default_config ~warehouses =
  {
    warehouses;
    scale = S.scaled ();
    duration_s = 60.0;
    terminals_per_warehouse = 1;
    think_time_s = 1.0;
    seed = 42;
    gc_interval_s = None;
    mix =
      [ (45, New_order); (43, Payment); (4, Order_status); (4, Delivery); (4, Stock_level) ];
    retry = None;
  }

type kind_stats = {
  committed : int;
  user_aborts : int;
  conflicts : int;
  failures : int;
  retries : int;
  gave_ups : int;
  shed : int;
  resp : Stats.Sample.t;
}

type result = {
  config : config;
  elapsed_s : float;
  notpm : float;
  total_committed : int;
  total_aborted : int;
  per_kind : (tx_kind * kind_stats) list;
}

let kind_stats result kind = List.assoc kind result.per_kind

let resp_mean result kind =
  let ks = kind_stats result kind in
  Stats.Sample.mean ks.resp

let resp_p90 result kind =
  let ks = kind_stats result kind in
  if Stats.Sample.count ks.resp = 0 then 0.0 else Stats.Sample.percentile ks.resp 90.0

let resp_max result kind =
  let ks = kind_stats result kind in
  if Stats.Sample.count ks.resp = 0 then 0.0 else Stats.Sample.max ks.resp

let pp_result fmt r =
  Format.fprintf fmt "@[<v>TPC-C: %d WH, %.0fs sim -> %.0f NOTPM (%d committed, %d aborted)@,"
    r.config.warehouses r.elapsed_s r.notpm r.total_committed r.total_aborted;
  List.iter
    (fun (k, ks) ->
      Format.fprintf fmt "  %-12s ok=%-6d conflicts=%-4d resp_mean=%.4fs"
        (tx_kind_to_string k) ks.committed ks.conflicts (Stats.Sample.mean ks.resp);
      (* contention-era fields only appear when the feature produced them,
         so default runs print byte-identically to the historical format *)
      if ks.retries > 0 then Format.fprintf fmt " retries=%d" ks.retries;
      if ks.gave_ups > 0 then Format.fprintf fmt " gave-up=%d" ks.gave_ups;
      if ks.shed > 0 then Format.fprintf fmt " shed=%d" ks.shed;
      Format.fprintf fmt "@,")
    r.per_kind;
  Format.fprintf fmt "@]"

exception Tx_abort of outcome

module Make (E : Mvcc.Engine.S) = struct
  type tables = {
    warehouse : E.table;
    district : E.table;
    customer : E.table;
    history : E.table;
    new_order : E.table;
    orders : E.table;
    order_line : E.table;
    item : E.table;
    stock : E.table;
  }

  let create_tables eng =
    {
      warehouse = E.create_table eng ~name:"warehouse" ~pk_col:0 ();
      district = E.create_table eng ~name:"district" ~pk_col:0 ();
      customer = E.create_table eng ~name:"customer" ~pk_col:0 ~secondary:[ Col.c_last ] ();
      history = E.create_table eng ~name:"history" ~pk_col:0 ();
      new_order = E.create_table eng ~name:"new_order" ~pk_col:0 ();
      orders = E.create_table eng ~name:"orders" ~pk_col:0 ~secondary:[ Col.o_c_key ] ();
      order_line = E.create_table eng ~name:"order_line" ~pk_col:0 ();
      item = E.create_table eng ~name:"item" ~pk_col:0 ();
      stock = E.create_table eng ~name:"stock" ~pk_col:0 ();
    }

  (* ---------------- helpers ---------------- *)

  let geti row col = Value.int row.(col)
  let getf row col = Value.float row.(col)

  let seti row col v =
    let row = Array.copy row in
    row.(col) <- Value.Int v;
    row

  let setf row col v =
    let row = Array.copy row in
    row.(col) <- Value.Float v;
    row

  let must_ok = function
    | Ok () -> ()
    | Error Mvcc.Engine.Write_conflict | Error Mvcc.Engine.Serialization_failure ->
        raise (Tx_abort Conflict_abort)
    | Error Mvcc.Engine.Not_found | Error Mvcc.Engine.Duplicate_key ->
        raise (Tx_abort Failed)

  (* Loader commits run serially; a failure there is a bug, not a
     retryable conflict. *)
  let commit_exn eng txn =
    match E.commit eng txn with
    | Ok () -> ()
    | Error e -> invalid_arg ("tpcc load: commit failed: " ^ Mvcc.Engine.error_to_string e)

  (* Commit a workload transaction. On a serialization failure the engine
     has already aborted the transaction internally, so the outcome is
     returned directly rather than via [Tx_abort] (whose handler would
     abort a second time). *)
  let finish eng txn =
    match E.commit eng txn with Ok () -> Committed | Error _ -> Conflict_abort

  let must_read eng txn table ~pk =
    match E.read eng txn table ~pk with
    | Some row -> row
    | None -> raise (Tx_abort Failed)

  (* ---------------- loader ---------------- *)

  let load eng tables cfg =
    let rng = Rng.create cfg.seed in
    let s = cfg.scale in
    let in_batches n per f =
      let i = ref 0 in
      while !i < n do
        let txn = E.begin_txn eng in
        let stop = Stdlib.min n (!i + per) in
        while !i < stop do
          f txn !i;
          incr i
        done;
        commit_exn eng txn
      done
    in
    (* items are global *)
    in_batches s.items 100 (fun txn i ->
        must_ok (E.insert eng txn tables.item (S.item_row rng s ~i:(i + 1))));
    for w = 1 to cfg.warehouses do
      let txn = E.begin_txn eng in
      must_ok (E.insert eng txn tables.warehouse (S.warehouse_row rng ~w));
      for d = 1 to s.districts_per_warehouse do
        must_ok (E.insert eng txn tables.district (S.district_row rng ~w ~d))
      done;
      commit_exn eng txn;
      in_batches s.stock_per_warehouse 100 (fun txn i ->
          must_ok (E.insert eng txn tables.stock (S.stock_row rng s ~w ~i:(i + 1))));
      for d = 1 to s.districts_per_warehouse do
        in_batches s.customers_per_district 100 (fun txn c ->
            must_ok (E.insert eng txn tables.customer (S.customer_row rng s ~w ~d ~c:(c + 1))));
        (* initial orders: one per customer in random order; the newest
           third is still undelivered (has a new_order row) *)
        let perm = Array.init s.initial_orders_per_district (fun i -> i + 1) in
        Rng.shuffle rng perm;
        in_batches s.initial_orders_per_district 50 (fun txn idx ->
            let o = idx + 1 in
            let c = perm.(idx) in
            let c_key = S.customer_key ~w ~d ~c in
            let ol_cnt = Rng.int_incl rng 5 15 in
            let okey = S.order_key ~w ~d ~o in
            let delivered = o <= s.initial_orders_per_district * 2 / 3 in
            let carrier = if delivered then Rng.int_incl rng 1 10 else 0 in
            must_ok
              (E.insert eng txn tables.orders
                 (S.orders_row ~w ~d ~o ~c_key ~entry_d:0.0 ~ol_cnt ~carrier));
            if not delivered then
              must_ok (E.insert eng txn tables.new_order (S.new_order_row ~w ~d ~o));
            for ol = 1 to ol_cnt do
              let i_id = Rng.int_incl rng 1 s.items in
              must_ok
                (E.insert eng txn tables.order_line
                   (S.order_line_row rng ~okey ~ol ~i_id ~supply_w:w
                      ~qty:(Rng.int_incl rng 1 10)
                      ~amount:(Rng.float rng 100.0)
                      ~delivery_d:(if delivered then 1.0 else 0.0)))
            done);
        (* leave next_o_id pointing past the loaded orders *)
        let dkey = S.district_key ~w ~d in
        let txn = E.begin_txn eng in
        must_ok
          (E.update eng txn tables.district ~pk:dkey (fun row ->
               seti row Col.d_next_o_id (s.initial_orders_per_district + 1)));
        commit_exn eng txn
      done
    done

  (* ---------------- session state ---------------- *)

  type session = {
    eng : E.t;
    tables : tables;
    cfg : config;
    mutable next_h_id : int;
    delivery_cursor : (int, int) Hashtbl.t; (* district_key -> next o to deliver *)
  }

  let make_session eng tables cfg =
    { eng; tables; cfg; next_h_id = 1; delivery_cursor = Hashtbl.create 64 }

  (* select a customer: 60% by last name, 40% by id (TPC-C 2.5.1.2) *)
  let select_customer st txn rng ~w ~d =
    let s = st.cfg.scale in
    if Rng.int rng 100 < 60 then begin
      let name = Tpcc_random.random_last_name rng ~max_unique:s.customers_per_district in
      let key = Value.to_key (Value.Str name) in
      let rows = E.lookup st.eng txn st.tables.customer ~col:Col.c_last ~key in
      let mine =
        List.filter (fun row -> geti row 1 = w && geti row 2 = d) rows
        |> List.sort (fun a b -> String.compare (Value.str a.(Col.c_first)) (Value.str b.(Col.c_first)))
      in
      match mine with
      | [] ->
          (* scaled-down data may miss a name: fall back to by-id *)
          let c = Tpcc_random.customer_id rng ~max:s.customers_per_district in
          must_read st.eng txn st.tables.customer ~pk:(S.customer_key ~w ~d ~c)
      | rows -> List.nth rows (List.length rows / 2)
    end
    else begin
      let c = Tpcc_random.customer_id rng ~max:s.customers_per_district in
      must_read st.eng txn st.tables.customer ~pk:(S.customer_key ~w ~d ~c)
    end

  (* ---------------- the five transactions ---------------- *)

  let new_order st rng ~w ~now =
    let eng = st.eng and tb = st.tables in
    let s = st.cfg.scale in
    let txn = E.begin_txn eng in
    try
      let d = Rng.int_incl rng 1 s.districts_per_warehouse in
      let c = Tpcc_random.customer_id rng ~max:s.customers_per_district in
      let c_key = S.customer_key ~w ~d ~c in
      let _wrow = must_read eng txn tb.warehouse ~pk:w in
      let _crow = must_read eng txn tb.customer ~pk:c_key in
      (* allocate the order id by bumping d_next_o_id *)
      let o_id = ref 0 in
      must_ok
        (E.update eng txn tb.district ~pk:(S.district_key ~w ~d) (fun row ->
             o_id := geti row Col.d_next_o_id;
             seti row Col.d_next_o_id (!o_id + 1)));
      let o = !o_id in
      let okey = S.order_key ~w ~d ~o in
      let ol_cnt = Rng.int_incl rng 5 15 in
      let rollback = Rng.int rng 100 = 0 in
      must_ok
        (E.insert eng txn tb.orders
           (S.orders_row ~w ~d ~o ~c_key ~entry_d:now ~ol_cnt ~carrier:0));
      must_ok (E.insert eng txn tb.new_order (S.new_order_row ~w ~d ~o));
      for ol = 1 to ol_cnt do
        if rollback && ol = ol_cnt then
          (* unused item number: the intentional 1% rollback *)
          raise (Tx_abort User_abort);
        let i_id = Tpcc_random.item_id rng ~max:s.items in
        let supply_w =
          if st.cfg.warehouses > 1 && Rng.int rng 100 = 0 then begin
            let other = ref w in
            while !other = w do
              other := Rng.int_incl rng 1 st.cfg.warehouses
            done;
            !other
          end
          else w
        in
        let irow = must_read eng txn tb.item ~pk:i_id in
        let qty = Rng.int_incl rng 1 10 in
        must_ok
          (E.update eng txn tb.stock ~pk:(S.stock_key ~w:supply_w ~i:i_id) (fun srow ->
               let sq = geti srow Col.s_qty in
               let sq' = if sq - qty >= 10 then sq - qty else sq - qty + 91 in
               let srow = seti srow Col.s_qty sq' in
               let srow = seti srow Col.s_ytd (geti srow Col.s_ytd + qty) in
               let srow = seti srow Col.s_order_cnt (geti srow Col.s_order_cnt + 1) in
               if supply_w <> w then
                 seti srow Col.s_remote_cnt (geti srow Col.s_remote_cnt + 1)
               else srow));
        let amount = float_of_int qty *. getf irow Col.i_price in
        must_ok
          (E.insert eng txn tb.order_line
             (S.order_line_row rng ~okey ~ol ~i_id ~supply_w ~qty ~amount ~delivery_d:0.0))
      done;
      finish eng txn
    with Tx_abort o ->
      E.abort eng txn;
      o

  let payment st rng ~w ~now:_ =
    let eng = st.eng and tb = st.tables in
    let s = st.cfg.scale in
    let txn = E.begin_txn eng in
    try
      let d = Rng.int_incl rng 1 s.districts_per_warehouse in
      (* 85% home district, 15% remote customer *)
      let cw, cd =
        if st.cfg.warehouses > 1 && Rng.int rng 100 >= 85 then begin
          let other = ref w in
          while !other = w do
            other := Rng.int_incl rng 1 st.cfg.warehouses
          done;
          (!other, Rng.int_incl rng 1 s.districts_per_warehouse)
        end
        else (w, d)
      in
      let amount = 1.0 +. Rng.float rng 4999.0 in
      must_ok
        (E.update eng txn tb.warehouse ~pk:w (fun row ->
             setf row Col.w_ytd (getf row Col.w_ytd +. amount)));
      must_ok
        (E.update eng txn tb.district ~pk:(S.district_key ~w ~d) (fun row ->
             setf row Col.d_ytd (getf row Col.d_ytd +. amount)));
      let crow = select_customer st txn rng ~w:cw ~d:cd in
      let c_key = geti crow 0 in
      must_ok
        (E.update eng txn tb.customer ~pk:c_key (fun row ->
             let row = setf row Col.c_balance (getf row Col.c_balance -. amount) in
             let row = setf row Col.c_ytd_payment (getf row Col.c_ytd_payment +. amount) in
             let row = seti row Col.c_payment_cnt (geti row Col.c_payment_cnt + 1) in
             if Value.str row.(Col.c_credit) = "BC" then begin
               let data = Value.str row.(Col.c_data) in
               let note = Printf.sprintf "|%d,%d,%d,%.2f" c_key w d amount in
               let merged = note ^ data in
               let keep = Stdlib.min (String.length merged) (String.length data) in
               let row = Array.copy row in
               row.(Col.c_data) <- Value.Str (String.sub merged 0 keep);
               row
             end
             else row));
      let h_id = st.next_h_id in
      st.next_h_id <- h_id + 1;
      must_ok
        (E.insert eng txn tb.history (S.history_row rng ~h_id ~c_key ~w ~d ~amount));
      finish eng txn
    with Tx_abort o ->
      E.abort eng txn;
      o

  let order_status st rng ~w ~now:_ =
    let eng = st.eng and tb = st.tables in
    let s = st.cfg.scale in
    let txn = E.begin_txn eng in
    try
      let d = Rng.int_incl rng 1 s.districts_per_warehouse in
      let crow = select_customer st txn rng ~w ~d in
      let c_key = geti crow 0 in
      let orders = E.lookup eng txn tb.orders ~col:Col.o_c_key ~key:c_key in
      (match
         List.fold_left
           (fun best row ->
             match best with
             | Some b when geti b Col.o_id >= geti row Col.o_id -> best
             | _ -> Some row)
           None orders
       with
      | None -> () (* a customer may have no order yet *)
      | Some orow ->
          let okey = geti orow 0 in
          let lines =
            E.range_pk eng txn tb.order_line
              ~lo:(S.order_line_key ~okey ~ol:0)
              ~hi:(S.order_line_key ~okey ~ol:15)
          in
          List.iter (fun line -> ignore (geti line Col.ol_qty)) lines);
      finish eng txn
    with Tx_abort o ->
      E.abort eng txn;
      o

  let delivery st rng ~w ~now =
    let eng = st.eng and tb = st.tables in
    let s = st.cfg.scale in
    let txn = E.begin_txn eng in
    try
      let carrier = Rng.int_incl rng 1 10 in
      for d = 1 to s.districts_per_warehouse do
        let dkey = S.district_key ~w ~d in
        let drow = must_read eng txn tb.district ~pk:dkey in
        let next_o = geti drow Col.d_next_o_id in
        let cursor =
          match Hashtbl.find_opt st.delivery_cursor dkey with Some c -> c | None -> 1
        in
        (* oldest undelivered order: first new_order row from the cursor *)
        let rec find o =
          if o >= next_o then None
          else
            match E.read eng txn tb.new_order ~pk:(S.order_key ~w ~d ~o) with
            | Some _ -> Some o
            | None -> find (o + 1)
        in
        match find cursor with
        | None -> Hashtbl.replace st.delivery_cursor dkey next_o
        | Some o ->
            Hashtbl.replace st.delivery_cursor dkey (o + 1);
            let okey = S.order_key ~w ~d ~o in
            must_ok (E.delete eng txn tb.new_order ~pk:okey);
            let orow = must_read eng txn tb.orders ~pk:okey in
            let c_key = geti orow Col.o_c_key in
            must_ok
              (E.update eng txn tb.orders ~pk:okey (fun row ->
                   seti row Col.o_carrier_id carrier));
            let lines =
              E.range_pk eng txn tb.order_line
                ~lo:(S.order_line_key ~okey ~ol:0)
                ~hi:(S.order_line_key ~okey ~ol:15)
            in
            let total = ref 0.0 in
            List.iter
              (fun line ->
                total := !total +. getf line Col.ol_amount;
                must_ok
                  (E.update eng txn tb.order_line ~pk:(geti line 0) (fun r ->
                       setf r Col.ol_delivery_d now)))
              lines;
            must_ok
              (E.update eng txn tb.customer ~pk:c_key (fun row ->
                   let row = setf row Col.c_balance (getf row Col.c_balance +. !total) in
                   seti row Col.c_delivery_cnt (geti row Col.c_delivery_cnt + 1)))
      done;
      finish eng txn
    with Tx_abort o ->
      E.abort eng txn;
      o

  let stock_level st rng ~w ~now:_ =
    let eng = st.eng and tb = st.tables in
    let s = st.cfg.scale in
    let txn = E.begin_txn eng in
    try
      let d = Rng.int_incl rng 1 s.districts_per_warehouse in
      let threshold = Rng.int_incl rng 10 20 in
      let drow = must_read eng txn tb.district ~pk:(S.district_key ~w ~d) in
      let next_o = geti drow Col.d_next_o_id in
      let first_o = Stdlib.max 1 (next_o - 20) in
      let lines =
        E.range_pk eng txn tb.order_line
          ~lo:(S.order_line_key ~okey:(S.order_key ~w ~d ~o:first_o) ~ol:0)
          ~hi:(S.order_line_key ~okey:(S.order_key ~w ~d ~o:(next_o - 1)) ~ol:15)
      in
      let items = Hashtbl.create 64 in
      List.iter (fun line -> Hashtbl.replace items (geti line Col.ol_i_id) ()) lines;
      let low = ref 0 in
      Hashtbl.iter
        (fun i_id () ->
          match E.read eng txn tb.stock ~pk:(S.stock_key ~w ~i:i_id) with
          | Some srow -> if geti srow Col.s_qty < threshold then incr low
          | None -> ())
        items;
      finish eng txn
    with Tx_abort o ->
      E.abort eng txn;
      o

  let run_transaction st ~kind ~w ~rng =
    let now = Simclock.now (E.db st.eng).Mvcc.Db.clock in
    try
      match kind with
      | New_order -> new_order st rng ~w ~now
      | Payment -> payment st rng ~w ~now
      | Order_status -> order_status st rng ~w ~now
      | Delivery -> delivery st rng ~w ~now
      | Stock_level -> stock_level st rng ~w ~now
    with Contention.Wounded _ ->
      (* a wound-wait / deadlock victim reaching commit was already
         aborted by Db.commit; do not abort again *)
      Conflict_abort

  (* ---------------- closed-loop driver ---------------- *)

  type terminal = { home_w : int; t_rng : Rng.t; mutable ready_at : float }

  type acc = {
    mutable a_committed : int;
    mutable a_user : int;
    mutable a_conflict : int;
    mutable a_failed : int;
    mutable a_retries : int;
    mutable a_gave_up : int;
    mutable a_shed : int;
    a_resp : Stats.Sample.t;
  }

  let run eng tables cfg =
    let db = E.db eng in
    let clock = db.Mvcc.Db.clock in
    let contention = db.Mvcc.Db.contention in
    let commitpipe = db.Mvcc.Db.commitpipe in
    let st = make_session eng tables cfg in
    let rng = Rng.create (cfg.seed + 7) in
    let terminals =
      Array.init (cfg.warehouses * cfg.terminals_per_warehouse) (fun i ->
          {
            home_w = (i mod cfg.warehouses) + 1;
            t_rng = Rng.split rng;
            ready_at = Rng.float rng cfg.think_time_s;
          })
    in
    let accs =
      List.map
        (fun k ->
          ( k,
            {
              a_committed = 0;
              a_user = 0;
              a_conflict = 0;
              a_failed = 0;
              a_retries = 0;
              a_gave_up = 0;
              a_shed = 0;
              a_resp = Stats.Sample.create ();
            } ))
        all_kinds
    in
    let start = Simclock.now clock in
    let deadline = start +. cfg.duration_s in
    let next_gc =
      ref (match cfg.gc_interval_s with Some g -> start +. g | None -> infinity)
    in
    (* Group commit: a terminal whose commit is queued behind the shared
       window fsync parks (ready_at = infinity) until the group resolves;
       its response time is charged to the group's fsync completion. *)
    let pending : (int, int * tx_kind * float) Hashtbl.t = Hashtbl.create 64 in
    let resolve () =
      List.iter
        (fun (seq, completion) ->
          match Hashtbl.find_opt pending seq with
          | None -> ()
          | Some (idx, kind, arrival) ->
              Hashtbl.remove pending seq;
              let term = terminals.(idx) in
              let acc = List.assoc kind accs in
              acc.a_committed <- acc.a_committed + 1;
              Stats.Sample.add acc.a_resp (completion -. arrival);
              term.ready_at <-
                completion +. Rng.exponential term.t_rng cfg.think_time_s)
        (Commitpipe.drain_resolved commitpipe)
    in
    let running = ref true in
    while !running do
      (* groups closed since the last iteration unpark their terminals *)
      resolve ();
      (* earliest-ready terminal *)
      let best = ref 0 in
      for i = 1 to Array.length terminals - 1 do
        if terminals.(i).ready_at < terminals.(!best).ready_at then best := i
      done;
      let term = terminals.(!best) in
      if term.ready_at = infinity then begin
        (* every terminal is parked in the open commit window: close it *)
        if not (Commitpipe.close_due commitpipe ~upto:infinity) then
          failwith "tpcc: all terminals parked with no open commit group";
        resolve ()
      end
      else if term.ready_at >= deadline then running := false
      else if Commitpipe.close_due commitpipe ~upto:term.ready_at then
        (* a commit-window deadline precedes the next arrival: service it
           first so its members can re-enter the pick *)
        resolve ()
      else begin
        Simclock.advance_to clock term.ready_at;
        if Simclock.now clock >= !next_gc then begin
          (* background daemon: its device traffic contends, its duration
             does not stall foreground transactions *)
          Simclock.freeze_during clock (fun () -> E.gc eng);
          next_gc := Simclock.now clock +. Option.get cfg.gc_interval_s
        end;
        let kind = Rng.pick_weighted term.t_rng cfg.mix in
        let arrival = term.ready_at in
        let acc = List.assoc kind accs in
        let parked = ref false in
        (match Contention.admit contention with
        | Contention.Shed ->
            (* the admission gate turned the request away; the terminal
               thinks and comes back *)
            acc.a_shed <- acc.a_shed + 1
        | Contention.Admitted ->
            let outcome =
              match cfg.retry with
              | None -> run_transaction st ~kind ~w:term.home_w ~rng:term.t_rng
              | Some rcfg -> (
                  (* replay the SAME transaction parameters on retry: save
                     the generator state before the first attempt *)
                  let saved = Rng.copy term.t_rng in
                  match
                    Contention.run_with_retries contention ~cfg:rcfg
                      ~retryable:(fun o -> o = Conflict_abort)
                      ~f:(fun ~attempt ->
                        let rng =
                          if attempt = 1 then term.t_rng else Rng.copy saved
                        in
                        run_transaction st ~kind ~w:term.home_w ~rng)
                  with
                  | Contention.Completed (o, attempts) ->
                      acc.a_retries <- acc.a_retries + (attempts - 1);
                      o
                  | Contention.Gave_up (_, attempts) ->
                      acc.a_retries <- acc.a_retries + (attempts - 1);
                      acc.a_gave_up <- acc.a_gave_up + 1;
                      Conflict_abort)
            in
            Contention.release contention;
            Mvcc.Db.tick db;
            let finished = Simclock.now clock in
            (* one span per transaction attempt chain, on the terminal's
               trace lane (tid 0 is the trace metadata convention) *)
            if Mvcc.Db.observed db then
              Mvcc.Db.emit db
                (Sias_obs.Bus.Span
                   {
                     cat = "txn";
                     name = tx_kind_to_string kind;
                     tid = 1 + !best;
                     t0 = arrival;
                     t1 = finished;
                   });
            match outcome with
            | Committed -> (
                match Commitpipe.last_ack commitpipe with
                | Commitpipe.Queued seq ->
                    Hashtbl.replace pending seq (!best, kind, arrival);
                    parked := true;
                    term.ready_at <- infinity
                | Commitpipe.Durable _ ->
                    acc.a_committed <- acc.a_committed + 1;
                    Stats.Sample.add acc.a_resp (finished -. arrival))
            | User_abort -> acc.a_user <- acc.a_user + 1
            | Conflict_abort -> acc.a_conflict <- acc.a_conflict + 1
            | Failed -> acc.a_failed <- acc.a_failed + 1);
        if not !parked then
          term.ready_at <-
            Simclock.now clock +. Rng.exponential term.t_rng cfg.think_time_s
      end
    done;
    (* drain: commits registered inside the run still count even when the
       window's fsync lands past the simulated end *)
    ignore (Commitpipe.close_due commitpipe ~upto:infinity);
    resolve ();
    let elapsed = Simclock.now clock -. start in
    let per_kind =
      List.map
        (fun (k, a) ->
          ( k,
            {
              committed = a.a_committed;
              user_aborts = a.a_user;
              conflicts = a.a_conflict;
              failures = a.a_failed;
              retries = a.a_retries;
              gave_ups = a.a_gave_up;
              shed = a.a_shed;
              resp = a.a_resp;
            } ))
        accs
    in
    let no = List.assoc New_order per_kind in
    (* NOTPM must count exactly the committed new-order transactions:
       retries, give-ups and shed requests never inflate it *)
    assert (no.committed = Stats.Sample.count no.resp);
    let total_committed =
      List.fold_left (fun t (_, ks) -> t + ks.committed) 0 per_kind
    in
    let total_aborted =
      List.fold_left
        (fun t (_, ks) -> t + ks.user_aborts + ks.conflicts + ks.failures + ks.shed)
        0 per_kind
    in
    {
      config = cfg;
      elapsed_s = elapsed;
      notpm = (if elapsed > 0.0 then float_of_int no.committed *. 60.0 /. elapsed else 0.0);
      total_committed;
      total_aborted;
      per_kind;
    }
end
