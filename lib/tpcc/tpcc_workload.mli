(** DBT2-style TPC-C workload: loader, the five transaction profiles and a
    closed-loop multi-terminal driver.

    The driver is a discrete-event simulation: each terminal issues a
    transaction, waits for its completion (response time = queueing +
    service, where service accumulates simulated device and CPU time) and
    then thinks for an exponentially distributed pause. Throughput is
    reported as the paper does: new-order transactions per minute
    (NOTPM). *)

type tx_kind = New_order | Payment | Order_status | Delivery | Stock_level

val tx_kind_to_string : tx_kind -> string
val all_kinds : tx_kind list

type outcome =
  | Committed
  | User_abort  (** the 1% intentional new-order rollback *)
  | Conflict_abort  (** first-updater-wins / lock conflicts *)
  | Failed  (** unexpected absence of data *)

type config = {
  warehouses : int;
  scale : Tpcc_schema.scale;
  duration_s : float;
  terminals_per_warehouse : int;
  think_time_s : float;  (** mean of the exponential think time *)
  seed : int;
  gc_interval_s : float option;  (** run engine GC this often (sim time) *)
  mix : (int * tx_kind) list;  (** weighted transaction mix *)
  retry : Sias_txn.Contention.retry_config option;
      (** resubmit conflict-aborted transactions (same parameters, via a
          saved RNG state) with backoff; [None] = historical behaviour:
          a conflict abort is surfaced to the client at once *)
}

val default_config : warehouses:int -> config
(** Standard mix (45/43/4/4/4), 1 terminal per warehouse, 1 s think time,
    60 s duration, scale 1/100, no GC, no retry. *)

type kind_stats = {
  committed : int;
  user_aborts : int;
  conflicts : int;
      (** client-visible conflict aborts (after any retries gave up) *)
  failures : int;
  retries : int;  (** conflict-aborted attempts that were resubmitted *)
  gave_ups : int;  (** retry loops that exhausted attempts or deadline *)
  shed : int;  (** requests dropped by the admission gate *)
  resp : Sias_util.Stats.Sample.t;  (** response times of committed txns *)
}

type result = {
  config : config;
  elapsed_s : float;  (** simulated *)
  notpm : float;
  total_committed : int;
  total_aborted : int;
  per_kind : (tx_kind * kind_stats) list;
}

val resp_mean : result -> tx_kind -> float
val resp_p90 : result -> tx_kind -> float
val resp_max : result -> tx_kind -> float

val pp_result : Format.formatter -> result -> unit

module Make (E : Mvcc.Engine.S) : sig
  type tables = {
    warehouse : E.table;
    district : E.table;
    customer : E.table;
    history : E.table;
    new_order : E.table;
    orders : E.table;
    order_line : E.table;
    item : E.table;
    stock : E.table;
  }

  val create_tables : E.t -> tables
  (** Nine relations with the TPC-C indexes (customer by last name,
      orders by customer). *)

  val load : E.t -> tables -> config -> unit
  (** Populate warehouses, districts, customers, items, stock and initial
      orders, committing in small batches. *)

  type session
  (** Driver state (delivery cursors, history ids, terminal RNGs). *)

  val make_session : E.t -> tables -> config -> session

  val run_transaction :
    session -> kind:tx_kind -> w:int -> rng:Sias_util.Rng.t -> outcome
  (** Execute one transaction against home warehouse [w]; used directly
      by tests and composed by {!run}. *)

  val run : E.t -> tables -> config -> result
  (** Load must have happened; runs the closed loop until the simulated
      deadline. *)
end
