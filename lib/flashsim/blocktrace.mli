(** Block-level I/O tracing, the simulator's equivalent of Linux
    blktrace/blkparse.

    Every device records the I/O requests it services here. The benchmark
    harness derives Table 1 (total MB written) from the aggregate counters
    and renders Figures 3 and 4 from the retained per-request records. *)

type op = Read | Write

type record = {
  time : float;  (** submission time, simulated seconds *)
  op : op;
  sector : int;  (** 512-byte sector address *)
  bytes : int;
}

type t

val create : ?keep_records:bool -> ?max_records:int -> unit -> t
(** [create ()] keeps up to [max_records] (default 500_000) full records;
    aggregate counters are always exact regardless of retention. *)

val add : t -> time:float -> op:op -> sector:int -> bytes:int -> unit

val read_bytes : t -> int
val write_bytes : t -> int
val read_count : t -> int
val write_count : t -> int

val write_mb : t -> float
(** Total MB (2^20 bytes) written, as reported in Table 1. *)

val read_mb : t -> float

val records : t -> record list
(** Retained records in submission order. *)

val dropped_records : t -> int
(** Requests NOT retained as records because the [max_records] cap was
    already reached when they arrived. Aggregate counters still include
    them; any rendering of {!records} with [dropped_records > 0] shows a
    truncated view. *)

val reset : t -> unit

val set_keep_records : t -> bool -> unit
(** Enable/disable retention of per-request records (aggregate counters
    are unaffected). Disabling drops already-retained records and clears
    the dropped counter. *)

val set_max_records : t -> int -> unit
(** Change the retention cap. Shrinking below the currently retained
    count discards the retained records (counting them as dropped) and
    restarts retention under the new cap. *)

val render_scatter :
  ?width:int -> ?height:int -> t -> string
(** ASCII scatter plot in the style of Figures 3/4: x = time, y = sector;
    ['r'] marks reads, ['W'] writes, ['#'] cells with both. *)

val sequentiality : ?slack:int -> t -> op -> float
(** Fraction of same-kind requests that continue where the previous one
    ended (within [slack] sectors): ~1 for an append stream, ~0 for
    scattered access. Quantifies the Figures 3/4 write-lane contrast. *)

val to_csv : t -> string
(** "time,op,sector,bytes" lines for external plotting. *)
