(** Deterministic, seeded fault injection for simulated devices.

    A fault plan is a {!profile} (probabilities per I/O) driven by one
    seeded RNG, so a given workload replays the exact same fault sequence
    for the same seed — the substrate for reproducible reliability
    experiments and the crash/corruption torture tests.

    Faults modelled:
    - {b transient read errors}: a read fails a few times, then succeeds;
      the storage layer retries with bounded backoff charged to the
      simulated clock;
    - {b latent sector errors / bit rot}: a read returns corrupted bytes;
      page checksums detect it and recovery repairs from the WAL;
    - {b torn writes}: if a crash interrupts a multi-sector write, only a
      sector-aligned prefix persists (applied by [Bufpool.crash]).

    The device timing model is untouched: {!wrap} passes requests through
    and only merges the injected-fault counters into [Device.info]. The
    data-plane hooks ({!transient_failures}, {!corrupt_read},
    {!torn_write}) are called by the storage layer, which owns the page
    images. *)

type profile = {
  transient_read_p : float;  (** per read: probability of ≥1 transient failure *)
  transient_max : int;  (** cap on consecutive transient failures *)
  read_corrupt_p : float;  (** per read: probability the image is corrupted *)
  torn_write_p : float;  (** per multi-sector write: torn-on-crash probability *)
}

val none : profile
val light : profile
val heavy : profile
val profile_names : string list
(** Canonical profile names; {!profile_of_string}'s error message lists
    exactly these. *)

val profile_of_string : string -> (profile, string) result
val profile_name : profile -> string

type t

val create : ?profile:profile -> seed:int -> unit -> t
(** Default profile: {!light}. *)

val seed : t -> int
val profile : t -> profile

val wrap : t -> Device.t -> Device.t
(** Pass-through device exposing inner counters plus injected-fault
    counters via [Device.info]. *)

val transient_failures : t -> sector:int -> int
(** Consecutive failed attempts before this read succeeds (0 = none). *)

val corrupt_read : t -> sector:int -> bytes -> bool
(** Maybe flip a few bytes of the freshly read image in place; returns
    whether it did. Detection is the caller's checksum's job. *)

val torn_write : t -> sector:int -> bytes:int -> int option
(** [Some persisted_bytes] (a sector-aligned strict prefix) when a crash
    would tear this write; [None] when it is atomic. *)

val injected : t -> (string * int) list
(** Injected-fault counters as [(name, count)]. *)
