module Bus = Sias_obs.Bus

type t = {
  name : string;
  trace : Blocktrace.t;
  submit_impl : now:float -> Blocktrace.op -> sector:int -> bytes:int -> float;
  info_impl : unit -> (string * float) list;
  trim_impl : sector:int -> bytes:int -> unit;
  gc_probe : (unit -> int * int) option;
      (* cumulative (relocated flash pages, erases), for GC attribution *)
  mutable bus : Bus.t option;
  (* Finite addressable space: a write past it raises No_space instead
     of silently pretending infinite media. None = unbounded. *)
  mutable capacity_sectors : int option;
}

exception
  No_space of { device : string; sector : int; sectors : int; capacity_sectors : int }

let () =
  Printexc.register_printer (function
    | No_space { device; sector; sectors; capacity_sectors } ->
        Some
          (Printf.sprintf
             "Device.No_space: write of %d sectors at sector %d exceeds the \
              %d-sector capacity of device %S — reclaim space or degrade to \
              read-only"
             sectors sector capacity_sectors device)
    | _ -> None)

let no_trim ~sector:_ ~bytes:_ = ()

let make ?(trim_impl = no_trim) ~name ~submit_impl ~info_impl () =
  {
    name;
    trace = Blocktrace.create ();
    submit_impl;
    info_impl;
    trim_impl;
    gc_probe = None;
    bus = None;
    capacity_sectors = None;
  }

let name t = t.name
let trace t = t.trace
let attach_bus t bus = t.bus <- Some bus
let set_capacity t ~sectors = t.capacity_sectors <- Some sectors
let capacity_sectors t = t.capacity_sectors

let observed t =
  match t.bus with Some bus -> Bus.active bus | None -> false

let submit t ~now op ~sector ~bytes =
  (match (op, t.capacity_sectors) with
  | Blocktrace.Write, Some cap ->
      let sectors = (bytes + 511) / 512 in
      if sector + sectors > cap then
        raise
          (No_space { device = t.name; sector; sectors; capacity_sectors = cap })
  | _ -> ());
  Blocktrace.add t.trace ~time:now ~op ~sector ~bytes;
  match t.bus with
  | Some bus when Bus.active bus ->
      let gc0 = match t.gc_probe with Some p -> p () | None -> (0, 0) in
      let completion = t.submit_impl ~now op ~sector ~bytes in
      Bus.publish bus
        (Bus.Device_io
           {
             device = t.name;
             op = (match op with Blocktrace.Read -> Bus.Io_read | Blocktrace.Write -> Bus.Io_write);
             sector;
             bytes;
             latency_s = completion -. now;
           });
      (match t.gc_probe with
      | Some p ->
          let moved1, erases1 = p () in
          let moved0, erases0 = gc0 in
          if erases1 > erases0 || moved1 > moved0 then
            Bus.publish bus
              (Bus.Ftl_gc
                 {
                   device = t.name;
                   moved_pages = moved1 - moved0;
                   erases = erases1 - erases0;
                 })
      | None -> ());
      completion
  | _ -> t.submit_impl ~now op ~sector ~bytes

let info t =
  let base = t.info_impl () in
  match Blocktrace.dropped_records t.trace with
  | 0 -> base
  | n -> base @ [ ("trace_dropped_records", float_of_int n) ]

let trim t ~sector ~bytes =
  (match t.bus with
  | Some bus when Bus.active bus ->
      Bus.publish bus (Bus.Device_trim { device = t.name; sector; bytes })
  | _ -> ());
  t.trim_impl ~sector ~bytes

(* A bank of [parallelism] servers: a request takes the earliest-free
   server and occupies it for its service time. *)
let queued ~parallelism service =
  let busy = Array.make (Stdlib.max 1 parallelism) 0.0 in
  fun ~now op ~sector ~bytes ->
    let best = ref 0 in
    for i = 1 to Array.length busy - 1 do
      if busy.(i) < busy.(!best) then best := i
    done;
    let start = Stdlib.max now busy.(!best) in
    let completion = start +. service op ~sector ~bytes in
    busy.(!best) <- completion;
    completion

let of_ssd ?(name = "ssd") ssd =
  let cfg = Ssd.config ssd in
  {
    name;
    trace = Blocktrace.create ();
    bus = None;
    capacity_sectors = None;
    gc_probe =
      Some
        (fun () ->
          let ftl = Ssd.ftl ssd in
          (Ftl.nand_writes ftl - Ftl.host_writes ftl, Ftl.erases ftl));
    submit_impl = queued ~parallelism:cfg.Ssd.channels (Ssd.service_time ssd);
    trim_impl = (fun ~sector ~bytes -> Ssd.trim ssd ~sector ~bytes);
    info_impl =
      (fun () ->
        let ftl = Ssd.ftl ssd in
        [
          ("host_writes", float_of_int (Ftl.host_writes ftl));
          ("nand_writes", float_of_int (Ftl.nand_writes ftl));
          ("erases", float_of_int (Ftl.erases ftl));
          ("write_amplification", Ftl.write_amplification ftl);
          ("max_block_wear", float_of_int (Nand.max_erase_count (Ftl.nand ftl)));
        ]);
  }

let of_hdd ?(name = "hdd") hdd =
  {
    name;
    trace = Blocktrace.create ();
    bus = None;
    capacity_sectors = None;
    gc_probe = None;
    submit_impl = queued ~parallelism:1 (Hdd.service_time hdd);
    trim_impl = no_trim;
    info_impl = (fun () -> []);
  }

let raid0 ?(name = "raid0") ?(chunk_sectors = 128) members =
  (match members with
  | [] | [ _ ] -> invalid_arg "Device.raid0: need at least two members"
  | _ -> ());
  let members = Array.of_list members in
  let n = Array.length members in
  let submit_impl ~now op ~sector ~bytes =
    (* split [sector, sector + bytes/512) into chunk-aligned pieces *)
    let completion = ref now in
    let remaining = ref bytes in
    let cur = ref sector in
    while !remaining > 0 do
      let chunk_index = !cur / chunk_sectors in
      let member = members.(chunk_index mod n) in
      let member_sector = ((chunk_index / n) * chunk_sectors) + (!cur mod chunk_sectors) in
      let sectors_left_in_chunk = chunk_sectors - (!cur mod chunk_sectors) in
      let piece = Stdlib.min !remaining (sectors_left_in_chunk * 512) in
      let done_at = submit member ~now op ~sector:member_sector ~bytes:piece in
      if done_at > !completion then completion := done_at;
      remaining := !remaining - piece;
      cur := !cur + ((piece + 511) / 512)
    done;
    !completion
  in
  let info_impl () =
    Array.to_list members
    |> List.concat_map (fun m ->
           List.map (fun (k, v) -> (m.name ^ "." ^ k, v)) (m.info_impl ()))
  in
  let trim_impl ~sector ~bytes =
    let remaining = ref bytes in
    let cur = ref sector in
    while !remaining > 0 do
      let chunk_index = !cur / chunk_sectors in
      let member = members.(chunk_index mod n) in
      let member_sector = ((chunk_index / n) * chunk_sectors) + (!cur mod chunk_sectors) in
      let sectors_left_in_chunk = chunk_sectors - (!cur mod chunk_sectors) in
      let piece = Stdlib.min !remaining (sectors_left_in_chunk * 512) in
      member.trim_impl ~sector:member_sector ~bytes:piece;
      remaining := !remaining - piece;
      cur := !cur + ((piece + 511) / 512)
    done
  in
  {
    name;
    trace = Blocktrace.create ();
    bus = None;
    capacity_sectors = None;
    gc_probe = None;
    submit_impl;
    info_impl;
    trim_impl;
  }

let ssd_x25e ?(name = "ssd") ?blocks () =
  of_ssd ~name (Ssd.create (Ssd.x25e_config ?blocks ()))

let hdd_7200 ?(name = "hdd") () = of_hdd ~name (Hdd.create Hdd.default_config)

let ssd_raid ?blocks_per_ssd n =
  if n < 2 then invalid_arg "Device.ssd_raid: need at least two SSDs";
  let members =
    List.init n (fun i ->
        ssd_x25e ~name:(Printf.sprintf "ssd%d" i) ?blocks:blocks_per_ssd ())
  in
  raid0 ~name:(Printf.sprintf "raid0-%dssd" n) members
