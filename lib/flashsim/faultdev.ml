module Rng = Sias_util.Rng
module Counter = Sias_util.Stats.Counter

type profile = {
  transient_read_p : float;
  transient_max : int;
  read_corrupt_p : float;
  torn_write_p : float;
}

let none =
  { transient_read_p = 0.0; transient_max = 0; read_corrupt_p = 0.0; torn_write_p = 0.0 }

let light =
  { transient_read_p = 0.02; transient_max = 2; read_corrupt_p = 0.003; torn_write_p = 0.15 }

let heavy =
  { transient_read_p = 0.10; transient_max = 4; read_corrupt_p = 0.02; torn_write_p = 0.5 }

(* canonical name table: the parser, its error message and profile_name
   all derive from this one list *)
let profiles = [ ("none", none); ("light", light); ("heavy", heavy) ]

let profile_names = List.map fst profiles

let profile_of_string s =
  match List.assoc_opt s profiles with
  | Some p -> Ok p
  | None ->
      Error
        (Printf.sprintf "unknown fault profile %S; valid profiles: %s" s
           (String.concat ", " profile_names))

let profile_name p =
  match List.find_opt (fun (_, q) -> p = q) profiles with
  | Some (name, _) -> name
  | None -> "custom"

type t = {
  rng : Rng.t;
  seed : int;
  profile : profile;
  transient_reads : Counter.t;
  corrupt_reads : Counter.t;
  torn_writes : Counter.t;
}

let create ?(profile = light) ~seed () =
  {
    rng = Rng.create seed;
    seed;
    profile;
    transient_reads = Counter.create "fault_transient_reads";
    corrupt_reads = Counter.create "fault_corrupt_reads";
    torn_writes = Counter.create "fault_torn_writes";
  }

let seed t = t.seed
let profile t = t.profile

let roll t p = p > 0.0 && Rng.float t.rng 1.0 < p

(* How many consecutive attempts at this read fail before the medium
   yields the data. 0 = first attempt succeeds. The caller retries with
   bounded backoff; a draw beyond its bound models an unreadable sector. *)
let transient_failures t ~sector:_ =
  if roll t t.profile.transient_read_p then begin
    Counter.incr t.transient_reads;
    1 + Rng.int t.rng (Stdlib.max 1 t.profile.transient_max)
  end
  else 0

(* Latent sector error / bit rot discovered on read: flip a few bytes of
   the image in place so the caller's checksum verification catches it.
   Returns whether the buffer was corrupted. *)
let corrupt_read t ~sector:_ buf =
  let n = Bytes.length buf in
  if n > 0 && roll t t.profile.read_corrupt_p then begin
    Counter.incr t.corrupt_reads;
    let flips = 1 + Rng.int t.rng 3 in
    for _ = 1 to flips do
      let off = Rng.int t.rng n in
      let mask = 1 + Rng.int t.rng 255 in
      Bytes.set_uint8 buf off (Bytes.get_uint8 buf off lxor mask)
    done;
    true
  end
  else false

(* Torn multi-sector write: if a crash interrupts this write, only a
   sector-aligned prefix persists. Returns the persisted byte count
   (strictly less than [bytes]); [None] = the write is atomic. *)
let torn_write t ~sector:_ ~bytes =
  let nsectors = bytes / 512 in
  if nsectors > 1 && roll t t.profile.torn_write_p then begin
    Counter.incr t.torn_writes;
    Some (Rng.int t.rng nsectors * 512)
  end
  else None

let counters t = [ t.transient_reads; t.corrupt_reads; t.torn_writes ]

let injected t = List.map (fun c -> (Counter.name c, Counter.value c)) (counters t)

let wrap t device =
  Device.make
    ~name:(Device.name device ^ "+faults")
    ~submit_impl:(fun ~now op ~sector ~bytes -> Device.submit device ~now op ~sector ~bytes)
    ~info_impl:(fun () -> Device.info device @ Counter.to_info (counters t))
    ~trim_impl:(fun ~sector ~bytes -> Device.trim device ~sector ~bytes)
    ()
