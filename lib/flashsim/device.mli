(** Uniform block-device front end with a multi-server queue.

    A device couples a service-time model (SSD, HDD or RAID-0 over other
    devices) with [parallelism] request servers and a {!Blocktrace}. The
    storage layer above talks only to this interface.

    [submit] returns the absolute completion time of the request given the
    submission time, which is how simulated I/O latency flows into
    transaction response times. *)

type t

exception
  No_space of { device : string; sector : int; sectors : int; capacity_sectors : int }
(** A write would land past the device's configured capacity. Raised
    before the request is traced or serviced — the device state is
    unchanged, so the storage layer can reclaim space (checkpoint + WAL
    truncation, trim) or degrade to read-only. *)

val name : t -> string
val trace : t -> Blocktrace.t

val set_capacity : t -> sectors:int -> unit
(** Bound the addressable space: subsequent writes at or past [sectors]
    raise {!No_space}. Devices are unbounded by default. *)

val capacity_sectors : t -> int option

val attach_bus : t -> Sias_obs.Bus.t -> unit
(** Publish every subsequent request on [bus] as
    [Sias_obs.Bus.Device_io] (with its simulated latency) and trims as
    [Device_trim]; SSD-backed devices additionally report GC work
    detected inside a request as [Ftl_gc]. Attach only to the device the
    measurement reads (for a RAID, the top-level device) — member/inner
    devices would double-count the logical request. *)

val observed : t -> bool
(** An attached bus exists and has subscribers. *)

val submit : t -> now:float -> Blocktrace.op -> sector:int -> bytes:int -> float
(** Enqueue a request at simulated time [now]; returns its completion
    time. The request is recorded in the device trace. *)

val info : t -> (string * float) list
(** Device-model counters (erase totals, write amplification, ...). *)

val make :
  ?trim_impl:(sector:int -> bytes:int -> unit) ->
  name:string ->
  submit_impl:(now:float -> Blocktrace.op -> sector:int -> bytes:int -> float) ->
  info_impl:(unit -> (string * float) list) ->
  unit ->
  t
(** Wrap a custom service model (used by {!Noftl}); [submit_impl] returns
    the absolute completion time and must do its own queueing. *)

val trim : t -> sector:int -> bytes:int -> unit
(** Discard a logical range: SSDs invalidate the mapped flash pages (so
    device GC never relocates dead data — the endurance benefit the
    paper's Section 6 attributes to DBMS-driven reclamation); other
    devices ignore it. *)

val of_ssd : ?name:string -> Ssd.t -> t
val of_hdd : ?name:string -> Hdd.t -> t

val raid0 : ?name:string -> ?chunk_sectors:int -> t list -> t
(** Stripe over member devices; a request spanning several chunks is split
    and completes when the slowest member finishes. Member traces record
    the physical requests, the RAID trace records the logical one. *)

val ssd_x25e : ?name:string -> ?blocks:int -> unit -> t
(** Convenience: a fresh X25-E-class SSD device. *)

val hdd_7200 : ?name:string -> unit -> t
(** Convenience: a fresh 7200 rpm HDD device. *)

val ssd_raid : ?blocks_per_ssd:int -> int -> t
(** [ssd_raid n] is an n-member RAID-0 of X25-E-class SSDs, as in the
    paper's 2-SSD and 6-SSD configurations. *)
