type op = Read | Write

type record = { time : float; op : op; sector : int; bytes : int }

type t = {
  mutable keep_records : bool;
  mutable max_records : int;
  mutable recs : record list; (* reversed *)
  mutable n_recs : int;
  mutable dropped : int; (* records not retained once max_records was hit *)
  mutable read_bytes : int;
  mutable write_bytes : int;
  mutable read_count : int;
  mutable write_count : int;
}

let create ?(keep_records = true) ?(max_records = 500_000) () =
  {
    keep_records;
    max_records;
    recs = [];
    n_recs = 0;
    dropped = 0;
    read_bytes = 0;
    write_bytes = 0;
    read_count = 0;
    write_count = 0;
  }

let add t ~time ~op ~sector ~bytes =
  (match op with
  | Read ->
      t.read_bytes <- t.read_bytes + bytes;
      t.read_count <- t.read_count + 1
  | Write ->
      t.write_bytes <- t.write_bytes + bytes;
      t.write_count <- t.write_count + 1);
  if t.keep_records then begin
    if t.n_recs < t.max_records then begin
      t.recs <- { time; op; sector; bytes } :: t.recs;
      t.n_recs <- t.n_recs + 1
    end
    else t.dropped <- t.dropped + 1
  end

let read_bytes t = t.read_bytes
let write_bytes t = t.write_bytes
let read_count t = t.read_count
let write_count t = t.write_count
let write_mb t = float_of_int t.write_bytes /. (1024.0 *. 1024.0)
let read_mb t = float_of_int t.read_bytes /. (1024.0 *. 1024.0)
let records t = List.rev t.recs
let dropped_records t = t.dropped

let set_max_records t n =
  t.max_records <- Stdlib.max 0 n;
  (* retention restarts under the new cap; no partial eviction *)
  if t.n_recs > t.max_records then begin
    t.dropped <- t.dropped + t.n_recs;
    t.recs <- [];
    t.n_recs <- 0
  end

let set_keep_records t keep =
  t.keep_records <- keep;
  if not keep then begin
    t.recs <- [];
    t.n_recs <- 0;
    t.dropped <- 0
  end

let reset t =
  t.recs <- [];
  t.n_recs <- 0;
  t.dropped <- 0;
  t.read_bytes <- 0;
  t.write_bytes <- 0;
  t.read_count <- 0;
  t.write_count <- 0

let render_scatter ?(width = 78) ?(height = 22) t =
  let recs = records t in
  match recs with
  | [] -> "(empty trace)"
  | first :: _ ->
      let t0 = first.time in
      let t1 = List.fold_left (fun acc r -> Stdlib.max acc r.time) t0 recs in
      let smax = List.fold_left (fun acc r -> Stdlib.max acc r.sector) 0 recs in
      let tspan = Stdlib.max 1e-9 (t1 -. t0) in
      let sspan = Stdlib.max 1 smax in
      let grid = Array.make_matrix height width ' ' in
      let mark r =
        let x = int_of_float (float_of_int (width - 1) *. (r.time -. t0) /. tspan) in
        let y = height - 1 - (r.sector * (height - 1) / sspan) in
        let x = Stdlib.max 0 (Stdlib.min (width - 1) x) in
        let y = Stdlib.max 0 (Stdlib.min (height - 1) y) in
        let c = match r.op with Read -> 'r' | Write -> 'W' in
        grid.(y).(x) <-
          (match (grid.(y).(x), c) with
          | ' ', c -> c
          | 'r', 'r' -> 'r'
          | 'W', 'W' -> 'W'
          | _, _ -> '#')
      in
      List.iter mark recs;
      let buf = Buffer.create (height * (width + 3)) in
      Buffer.add_string buf
        (Printf.sprintf "sector (max %d) ^   time %.1fs .. %.1fs ->\n" smax t0 t1);
      Array.iter
        (fun row ->
          Buffer.add_char buf '|';
          Array.iter (Buffer.add_char buf) row;
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf ("+" ^ String.make width '-');
      if t.dropped > 0 then
        Buffer.add_string buf
          (Printf.sprintf
             "\n(truncated: %d of %d requests not plotted — retention cap %d)"
             t.dropped
             (t.read_count + t.write_count)
             t.max_records);
      Buffer.contents buf

let to_csv t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "time,op,sector,bytes\n";
  List.iter
    (fun r ->
      Buffer.add_string b
        (Printf.sprintf "%.6f,%s,%d,%d\n" r.time
           (match r.op with Read -> "R" | Write -> "W")
           r.sector r.bytes))
    (records t);
  if t.dropped > 0 then
    Buffer.add_string b
      (Printf.sprintf "# truncated: %d records dropped (retention cap %d)\n"
         t.dropped t.max_records);
  Buffer.contents b

(* Sequentiality: fraction of requests of the given kind whose sector
   immediately follows the previous same-kind request (within [slack]
   sectors) — the "append lane" signature of Figures 3/4. *)
let sequentiality ?(slack = 64) t op =
  let recs = List.filter (fun r -> r.op = op) (records t) in
  match recs with
  | [] | [ _ ] -> 0.0
  | first :: rest ->
      let seq = ref 0 and total = ref 0 in
      let prev_end = ref (first.sector + ((first.bytes + 511) / 512)) in
      List.iter
        (fun r ->
          incr total;
          if r.sector >= !prev_end - slack && r.sector <= !prev_end + slack then incr seq;
          prev_end := r.sector + ((r.bytes + 511) / 512))
        rest;
      float_of_int !seq /. float_of_int !total
