(** Common engine interface.

    Both the SI baseline and the SIAS engines implement {!S}, so workload
    drivers (TPC-C, the examples, the benches) are functors that run
    unchanged over either engine. Tables have an integer primary key
    column and optional secondary indexes on other columns (composite keys
    are encoded into a single int by the caller, as the TPC-C schema
    does). *)

type error =
  | Duplicate_key
  | Not_found
  | Write_conflict
      (** first-updater-wins: the row version was created or invalidated
          by a transaction this one cannot update over *)
  | Serialization_failure
      (** the isolation level's commit rule (SSI pivot abort or WSI
          read-write certification) rejected the transaction; it has
          already been aborted — retry it from the top, do not abort *)

val error_to_string : error -> string

type table_stats = {
  heap_blocks : int;
  live_versions : int;
  total_versions : int;
  avg_fill : float;
}

module type S = sig
  type t
  type table

  val name : string

  val create : Db.t -> t
  val db : t -> Db.t

  val create_table :
    t -> name:string -> pk_col:int -> ?secondary:int list -> unit -> table

  val begin_txn : t -> Sias_txn.Txn.t

  val commit : t -> Sias_txn.Txn.t -> (unit, error) result
  (** [Ok ()] once the commit record is routed through the pipeline and
      the transaction is marked committed. [Error Serialization_failure]
      when the context's isolation level rejected it — the transaction
      was aborted internally; do {e not} call {!abort} on it. Other
      failure modes keep their exceptions ({!Sias_txn.Contention.Wounded},
      {!Db.Read_only}). *)

  val abort : t -> Sias_txn.Txn.t -> unit

  val insert :
    t -> Sias_txn.Txn.t -> table -> Value.t array -> (unit, error) result

  val read : t -> Sias_txn.Txn.t -> table -> pk:int -> Value.t array option

  val update :
    t ->
    Sias_txn.Txn.t ->
    table ->
    pk:int ->
    (Value.t array -> Value.t array) ->
    (unit, error) result

  val delete : t -> Sias_txn.Txn.t -> table -> pk:int -> (unit, error) result

  val lookup :
    t -> Sias_txn.Txn.t -> table -> col:int -> key:int -> Value.t array list
  (** Rows whose secondary-indexed column equals [key]. *)

  val range_pk :
    t -> Sias_txn.Txn.t -> table -> lo:int -> hi:int -> Value.t array list

  val scan : t -> Sias_txn.Txn.t -> table -> (Value.t array -> unit) -> int
  (** Visible-row scan; returns the row count. *)

  val gc : t -> unit
  (** Space reclamation (SI: vacuum; SIAS: chain pruning + page GC). *)

  val recover : t -> unit
  (** Crash recovery: rebuild state from flushed pages plus WAL redo, then
      reconstruct indexes (and for SIAS the VID_map) from the heap. Call
      after {!Sias_storage.Bufpool.drop_cache} on the context's pool. *)

  val table_stats : t -> table -> table_stats

  val index_summary : t -> (string * Index.summary list) list
  (** Per table (by name), one stats snapshot per index — primary key
      first, then secondaries in declaration order. Drives the bench's
      index-write-amplification accounting (index relations, logical
      entry volume, split/merge counts). *)
end

(** {1 Engine registry}

    Engines self-register as first-class modules under a stable string
    key ("si", "si-cv", "sias", "sias-v"), so every selection point —
    CLI parsing, the benchmark driver, the harness — resolves engines
    through one table instead of duplicating match arms. The mvcc
    library links with [-linkall], so registration runs whether or not
    an engine module is otherwise referenced. *)

val register :
  key:string -> ?aliases:string list -> ?display:string -> (module S) -> unit
(** Raises [Invalid_argument] on a duplicate key. [display] is the
    human-readable name used in reports (defaults to [key]). *)

val find : string -> (module S) option
(** Look up by key or alias. *)

val resolve : string -> (string * (module S)) option
(** Like {!find} but also returns the canonical key (argument parsers
    normalize aliases with this). *)

val all : unit -> (string * (module S)) list
(** Every registered engine, in registration order. A function, not a
    value: module initialization order means the registry fills after
    this module loads. *)

val keys : unit -> string list
(** Canonical keys, sorted. *)

val known_keys_hint : unit -> string
(** Human-readable enumeration of canonical keys with their aliases
    (["si, sias-v (aka sias, vector), ..."]) — every unknown-engine
    error message quotes this one string. *)

val resolve_exn : string -> string * (module S)
(** Like {!resolve} but raises [Invalid_argument] with a message listing
    the registered keys (and aliases) on an unknown string — callers
    without a [result] channel get a self-explanatory failure instead of
    a bare [Option.get]. *)

val display_name : string -> string
(** Display name for a key or alias; echoes unknown strings back. *)
