(** Runtime state for the serializable isolation levels.

    One manager lives in each {!Db} context created with
    [~isolation:`Ssi] or [~isolation:`Wsi]; under the default [`Si] no
    manager exists and every hook below is a single branch at the call
    site, keeping the SI fast path byte-identical.

    [`Ssi] implements PostgreSQL-style serializable snapshot isolation
    (Ports & Grittner): reads take SIREAD locks (plus a whole-relation
    predicate lock for scans), writes probe them to record
    rw-antidependency edges, and a transaction that is the pivot of a
    dangerous structure (both an incoming and an outgoing rw edge to
    live transactions) is aborted at commit. If a structure completes
    after its pivot committed, a still-active neighbor is doomed
    instead. The research twist: the SIAS engines discover their
    read-side edges by walking the co-located version lineage (chain
    predecessors / vector entries skipped as invisible name exactly the
    overlapping writers), so they pass [probe_writes:false] and call
    {!note_lineage_writer} from the visibility walk; the SI engines
    probe the write table like PostgreSQL. Edge provenance is counted
    separately ({!lineage_edges} vs {!table_edges}) so the overhead
    delta is measurable.

    [`Wsi] implements write-snapshot isolation ("A Critique of Snapshot
    Isolation"): no edges are tracked; commit instead certifies the
    {e read} set — any key read that a concurrent committed transaction
    overwrote fails certification. Read-only transactions never
    certify, and therefore never abort. *)

type mode = Ssi | Wsi

type t

val create :
  mode:mode ->
  txnmgr:Sias_txn.Txn.mgr ->
  bus:Sias_obs.Bus.t ->
  charge:(int -> unit) ->
  t
(** [charge] bills simulated CPU per tracking operation (the measured
    overhead vs the SI baseline). *)

val mode : t -> mode

val on_begin : t -> Sias_txn.Txn.t -> read_only:bool -> deferrable:bool -> unit
(** Register a transaction. A read-only (or deferrable) transaction
    beginning with no concurrent transactions gets a {e safe snapshot}:
    it is exempt from all tracking and can never abort. A deferrable
    request that cannot be satisfied degenerates to an ordinary tracked
    read-only transaction (the cooperative simulation cannot block). *)

val note_read : t -> xid:int -> rel:int -> pk:int -> probe_writes:bool -> unit
(** A visible row read. Under [Ssi] takes a SIREAD lock and — when
    [probe_writes] — scans the write table for overlapping writers (SI
    engines); the SIAS engines report those via {!note_lineage_writer}
    instead. Under [Wsi] records the key for commit-time certification. *)

val note_lineage_writer : t -> reader:int -> writer:int -> unit
(** The visibility walk of a SIAS chain / SIAS-V vector skipped a
    version whose creator is invisible to [reader]'s snapshot: that
    creator is exactly an overlapping writer of the key being read, so
    record the rw edge [reader -> writer] without any lock-table probe. *)

val note_write : t -> xid:int -> rel:int -> pk:int -> unit
(** A row write (insert / update / delete). Records the key and, under
    [Ssi], probes SIREAD locks (per-key and relation-predicate) for
    overlapping readers. *)

val note_scan : t -> xid:int -> rel:int -> probe_writes:bool -> unit
(** A whole-relation scan: takes the predicate SIREAD lock so later
    writes (phantoms) create edges; when [probe_writes], also probes
    already-recorded writes of the relation. *)

val pre_commit : t -> Sias_txn.Txn.t -> (unit, string) result
(** Run the level's commit rule. [Error reason] means the transaction
    must abort ({!Db.commit} aborts it and raises
    {!Db.Serialization_failure}). *)

val on_commit : t -> Sias_txn.Txn.t -> unit
val on_abort : t -> Sias_txn.Txn.t -> unit

val reset : t -> unit
(** Crash semantics: drop all volatile tracking state (SIREAD locks,
    edges, doomed flags). Cumulative counters survive (they are
    observability, not recovery state). *)

(** {1 Counters} *)

val siread_locks : t -> int
val pivot_aborts : t -> int

val confirmed_pivot_aborts : t -> int
(** Pivot aborts where a cycle was certain or near-certain (immediate
    write-skew 2-cycle, or an out-neighbor that committed first). *)

val certify_aborts : t -> int
val lineage_edges : t -> int
val table_edges : t -> int
val safe_snapshots : t -> int

val false_positive_rate : t -> float
(** Upper bound on the fraction of pivot aborts that may have been
    unnecessary: [1 - confirmed/total] (0 when none occurred). *)
