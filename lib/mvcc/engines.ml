(* Registry population. The mvcc library is linked with -linkall, so
   this initializer always runs before any executable's [main] — every
   engine is resolvable through Engine.find/resolve without the
   executable naming the engine modules. Display names are the report
   labels (Sias_engine.name is "SIAS-Chains" internally; reports have
   always printed "SIAS"). *)

let () =
  Engine.register ~key:"si" ~display:"SI" (module Si_engine);
  Engine.register ~key:"si-cv" ~display:"SI-CV" (module Si_cv_engine);
  Engine.register ~key:"sias" ~aliases:[ "chains" ] ~display:"SIAS"
    (module Sias_engine);
  Engine.register ~key:"sias-v"
    ~aliases:[ "vectors" ]
    ~display:"SIAS-V"
    (module Sias_vector)
