type error =
  | Duplicate_key
  | Not_found
  | Write_conflict
  | Serialization_failure

let error_to_string = function
  | Duplicate_key -> "duplicate key"
  | Not_found -> "not found"
  | Write_conflict -> "write conflict"
  | Serialization_failure -> "serialization failure"

type table_stats = {
  heap_blocks : int;
  live_versions : int;
  total_versions : int;
  avg_fill : float;
}

module type S = sig
  type t
  type table

  val name : string
  val create : Db.t -> t
  val db : t -> Db.t

  val create_table :
    t -> name:string -> pk_col:int -> ?secondary:int list -> unit -> table

  val begin_txn : t -> Sias_txn.Txn.t
  val commit : t -> Sias_txn.Txn.t -> (unit, error) result
  val abort : t -> Sias_txn.Txn.t -> unit

  val insert :
    t -> Sias_txn.Txn.t -> table -> Value.t array -> (unit, error) result

  val read : t -> Sias_txn.Txn.t -> table -> pk:int -> Value.t array option

  val update :
    t ->
    Sias_txn.Txn.t ->
    table ->
    pk:int ->
    (Value.t array -> Value.t array) ->
    (unit, error) result

  val delete : t -> Sias_txn.Txn.t -> table -> pk:int -> (unit, error) result

  val lookup :
    t -> Sias_txn.Txn.t -> table -> col:int -> key:int -> Value.t array list

  val range_pk :
    t -> Sias_txn.Txn.t -> table -> lo:int -> hi:int -> Value.t array list

  val scan : t -> Sias_txn.Txn.t -> table -> (Value.t array -> unit) -> int

  val gc : t -> unit
  val recover : t -> unit
  val table_stats : t -> table -> table_stats
  val index_summary : t -> (string * Index.summary list) list
end

(* ---------------- first-class-module registry ----------------

   Each engine registers itself from its module initializer; the mvcc
   library is built with -linkall so every engine is always present.
   Accessors are functions, not values: this module initializes before
   the engines do. *)

type entry = {
  key : string;
  aliases : string list;
  display : string;
  impl : (module S);
}

let registry : entry list ref = ref []

let register ~key ?(aliases = []) ?display impl =
  let display = match display with Some d -> d | None -> key in
  if List.exists (fun e -> e.key = key) !registry then
    invalid_arg (Printf.sprintf "Engine.register: duplicate key %S" key);
  registry := !registry @ [ { key; aliases; display; impl } ]

let resolve s =
  List.find_opt (fun e -> e.key = s || List.mem s e.aliases) !registry
  |> Option.map (fun e -> (e.key, e.impl))

let find s = Option.map snd (resolve s)

let all () = List.map (fun e -> (e.key, e.impl)) !registry

let keys () = List.map (fun e -> e.key) !registry |> List.sort compare

(* One canonical "what could you have meant" string, so the CLI, the
   harness and the bench all report the same vocabulary. *)
let known_keys_hint () =
  !registry
  |> List.map (fun e ->
         match e.aliases with
         | [] -> e.key
         | a -> Printf.sprintf "%s (aka %s)" e.key (String.concat ", " a))
  |> List.sort compare |> String.concat ", "

let resolve_exn s =
  match resolve s with
  | Some r -> r
  | None ->
      invalid_arg
        (Printf.sprintf "unknown engine %S; known engines: %s" s
           (known_keys_hint ()))

let display_name s =
  match List.find_opt (fun e -> e.key = s || List.mem s e.aliases) !registry with
  | Some e -> e.display
  | None -> s
