(** Shared implementation of the SI-family engines.

    The baseline SI engine and SI-CV differ only in where new versions
    are placed ({!Sias_storage.Heapfile.placement}); everything else —
    in-place invalidation, index maintenance per version, vacuum — is
    identical. {!Make} builds a full {!Engine.S} implementation from a
    placement profile; [si_engine.ml] and [si_cv_engine.ml] are two-line
    instantiations. *)

module type PROFILE = sig
  val name : string
  val placement : Sias_storage.Heapfile.placement
end

module Make (_ : PROFILE) : sig
  include Engine.S

  val vacuum_stats : t -> int * int
  (** (dead versions removed, pages scanned) by all {!gc} runs so far. *)
end
