module Tid = Sias_storage.Tid
module Page = Sias_storage.Page
module Bufpool = Sias_storage.Bufpool
module Wal = Sias_wal.Wal
module Txn = Sias_txn.Txn
module Crashpoint = Sias_chaos.Crashpoint

exception Redo_divergence of { rel : int; block : int; detail : string }
(* Redo replayed a verified record against a page whose content
   contradicts it — a bug in the append discipline or the redo rules, not
   recoverable data damage. Loud and typed so chaos schedules catch it. *)

let () =
  Printexc.register_printer (function
    | Redo_divergence { rel; block; detail } ->
        Some
          (Printf.sprintf
             "Walcodec.Redo_divergence: WAL replay diverged from the page \
              state on rel %d block %d (%s); the log and the page disagree — \
              this is a redo-rule bug, not disk damage"
             rel block detail)
    | _ -> None)

(* Payload: tid (int64), flags (u8, bit 0 = append-only page discipline),
   item bytes. The flag matters at redo: a page recreated from nothing
   must apply the same slot-allocation rule the original insert used, or
   replayed slots diverge. Full_page records reuse the same envelope with
   the raw page image as the item (slot part of the tid is unused). *)
let encode ?(append_only = false) tid item =
  let b = Bytes.create (9 + Bytes.length item) in
  Bytes.set_int64_le b 0 (Int64.of_int (Tid.to_int tid));
  Bytes.set_uint8 b 8 (if append_only then 1 else 0);
  Bytes.blit item 0 b 9 (Bytes.length item);
  b

let decode b =
  let tid = Tid.of_int (Int64.to_int (Bytes.get_int64_le b 0)) in
  let append_only = Bytes.get_uint8 b 8 land 1 = 1 in
  (tid, append_only, Bytes.sub b 9 (Bytes.length b - 9))

module Pbt = Sias_index.Paged_btree

(* Ix_batch payload — one logical paged-index structural change as an
   atomic list of per-page slot deltas: u16 delta count, then per delta
   an i32 LE block, a u8 tag (0 = Ins, 1 = Upd, 2 = Del; bit 7 = the
   block was first allocated by this very batch, so it has no pre-image
   to protect), a u16 slot (meaningful for Upd/Del; Ins replays its slot
   deterministically from the page bytes), a u16 item length and the
   item bytes. The record CRC covers the whole list, which is what makes
   a multi-page split or merge all-or-nothing at replay. *)
let encode_deltas (deltas : Pbt.delta list) =
  let buf = Buffer.create 256 in
  Buffer.add_uint16_le buf (List.length deltas);
  List.iter
    (fun (d : Pbt.delta) ->
      Buffer.add_int32_le buf (Int32.of_int d.d_block);
      let tag, slot, item =
        match d.d_op with
        | Pbt.Ins b -> (0, 0, b)
        | Pbt.Upd (s, b) -> (1, s, b)
        | Pbt.Del s -> (2, s, Bytes.empty)
      in
      Buffer.add_uint8 buf (tag lor if d.d_new then 0x80 else 0);
      Buffer.add_uint16_le buf slot;
      Buffer.add_uint16_le buf (Bytes.length item);
      Buffer.add_bytes buf item)
    deltas;
  Buffer.to_bytes buf

let decode_deltas b =
  let pos = ref 0 in
  let u16 () =
    let v = Bytes.get_uint16_le b !pos in
    pos := !pos + 2;
    v
  in
  let n = u16 () in
  let rec go i acc =
    if i = n then List.rev acc
    else begin
      let block = Int32.to_int (Bytes.get_int32_le b !pos) in
      pos := !pos + 4;
      let tag = Bytes.get_uint8 b !pos in
      incr pos;
      let slot = u16 () in
      let len = u16 () in
      let item = Bytes.sub b !pos len in
      pos := !pos + len;
      let d_op =
        match tag land 0x7f with
        | 0 -> Pbt.Ins item
        | 1 -> Pbt.Upd (slot, item)
        | 2 -> Pbt.Del slot
        | t -> failwith (Printf.sprintf "Walcodec.decode_deltas: bad tag %d" t)
      in
      go (i + 1) ({ Pbt.d_block = block; d_new = tag land 0x80 <> 0; d_op } :: acc)
    end
  in
  go 0 []

let delta_blocks deltas =
  List.fold_left
    (fun acc (d : Pbt.delta) ->
      if List.mem_assoc d.d_block acc then acc else (d.d_block, d.d_new) :: acc)
    [] deltas
  |> List.rev

(* Full-page writes: the first modification of a (rel, block) after a
   checkpoint logs the whole post-change page image instead of the item
   record (PostgreSQL's backup blocks). The image is stamped with its own
   record's LSN before capture, so redo's page-LSN guard treats the
   install exactly like any other record. A torn data-page write found at
   recovery is then repairable from the latest image plus the item
   records that follow it. Trim is exempt: replaying it recreates the
   empty page with no image needed. *)
let log_heap ?append_only db ~xid ~rel ~kind ~tid ~item =
  let block = Tid.block tid in
  let fpw = kind <> Wal.Trim && not (Hashtbl.mem db.Db.fpw_done (rel, block)) in
  if fpw then begin
    Crashpoint.reach "walcodec.fpw.pre";
    Hashtbl.replace db.Db.fpw_done (rel, block) ();
    let lsn = Wal.next_lsn db.Db.wal in
    let image =
      Bufpool.with_page db.Db.pool ~rel ~block (fun page ->
          Page.set_lsn page lsn;
          Page.to_bytes page)
    in
    let lsn' =
      Db.log_op db ~xid ~rel ~kind:Wal.Full_page
        ~payload:(encode ?append_only tid image)
    in
    (* An emergency WAL reclamation inside [log_op] appends its own
       checkpoint record first, so the image's record can land past the
       pre-stamped lsn. The stamp inside the captured image stays at the
       older value — still monotonic, since nothing else touched this
       page in between — but the pooled page must carry the record's
       real lsn for write-back ordering. *)
    assert (lsn' >= lsn);
    if lsn' <> lsn then
      Bufpool.with_page db.Db.pool ~rel ~block (fun page ->
          Page.set_lsn page lsn')
  end
  else begin
    let lsn = Db.log_op db ~xid ~rel ~kind ~payload:(encode ?append_only tid item) in
    Bufpool.with_page db.Db.pool ~rel ~block (fun page -> Page.set_lsn page lsn)
  end

(* WAL-first logger injected into {!Sias_index.Paged_btree}: full-page-
   write protect every touched pre-existing block on its first
   modification since the last checkpoint (the captured image is the
   {e pre}-batch page — the batch's own deltas replay on top of it),
   then append the whole structural change as one atomic Ix_batch
   record and return its LSN. The tree applies the deltas only after
   this returns, so a crash at any point leaves either no trace or a
   fully replayable record. xid 0: index deltas are redo-only and
   belong to no transaction — heap visibility decides what the entries
   mean. *)
let log_index db ~rel (deltas : Pbt.delta list) =
  List.iter
    (fun (block, is_new) ->
      if (not is_new) && not (Hashtbl.mem db.Db.fpw_done (rel, block)) then begin
        Crashpoint.reach "index.fpw.pre";
        Hashtbl.replace db.Db.fpw_done (rel, block) ();
        let lsn = Wal.next_lsn db.Db.wal in
        let image =
          Bufpool.with_page db.Db.pool ~rel ~block (fun page ->
              Page.set_lsn page lsn;
              Page.to_bytes page)
        in
        let lsn' =
          Db.log_op db ~xid:0 ~rel ~kind:Wal.Full_page
            ~payload:(encode (Tid.make ~block ~slot:0) image)
        in
        (* same emergency-reclamation race as in [log_heap] *)
        assert (lsn' >= lsn);
        if lsn' <> lsn then
          Bufpool.with_page db.Db.pool ~rel ~block (fun page ->
              Page.set_lsn page lsn')
      end)
    (delta_blocks deltas);
  Db.log_op db ~xid:0 ~rel ~kind:Wal.Ix_batch ~payload:(encode_deltas deltas)

(* Apply one heap record to a bare page, guarded by the page LSN.
   Returns whether the page changed. Shared by buffer-pool redo and
   out-of-pool page repair. *)
let apply_to_page page (r : Wal.record) =
  match r.kind with
  | Wal.Full_page ->
      let _, _, image = decode r.payload in
      if Page.lsn page < r.lsn then begin
        Page.overwrite page image;
        true
      end
      else false
  | Wal.Insert | Wal.Update | Wal.Delete ->
      let tid, append_only, item = decode r.payload in
      if Page.lsn page < r.lsn then begin
        if append_only then Page.set_no_slot_reuse page;
        (match r.kind with
        | Wal.Insert -> (
            match Page.insert page item with
            | Some slot when slot = Tid.slot tid -> ()
            | Some _ | None ->
                raise
                  (Redo_divergence
                     {
                       rel = r.rel;
                       block = Tid.block tid;
                       detail =
                         Printf.sprintf "insert at lsn %d replayed to a \
                                         different slot than %d"
                           r.lsn (Tid.slot tid);
                     }))
        | Wal.Update ->
            if not (Page.update page (Tid.slot tid) item) then
              raise
                (Redo_divergence
                   {
                     rel = r.rel;
                     block = Tid.block tid;
                     detail =
                       Printf.sprintf
                         "update at lsn %d did not fit in slot %d" r.lsn
                         (Tid.slot tid);
                   })
        | Wal.Delete -> Page.delete page (Tid.slot tid)
        | _ -> assert false);
        Page.set_lsn page r.lsn;
        true
      end
      else false
  | _ -> false

let redo db ~since_lsn =
  Crashpoint.reach "recover.redo.pre";
  let records, _tail = Wal.verified_from db.Db.wal ~lsn:since_lsn in
  List.iter
    (fun (r : Wal.record) ->
      Crashpoint.reach "recover.redo.record";
      match r.kind with
      | Wal.Trim when r.rel >= 0 ->
          let tid, _, _ = decode r.payload in
          Bufpool.trim_block db.Db.pool ~rel:r.rel ~block:(Tid.block tid);
          Bufpool.with_page db.Db.pool ~rel:r.rel ~block:(Tid.block tid) (fun page ->
              Page.set_lsn page r.lsn)
      | (Wal.Insert | Wal.Update | Wal.Delete | Wal.Full_page) when r.rel >= 0 ->
          let tid, _, _ = decode r.payload in
          Bufpool.with_page db.Db.pool ~rel:r.rel ~block:(Tid.block tid) (fun page ->
              if apply_to_page page r then
                Bufpool.mark_dirty db.Db.pool ~rel:r.rel ~block:(Tid.block tid))
      | Wal.Ix_batch when r.rel >= 0 ->
          (* one atomic paged-index structural change: apply each touched
             block's deltas in order behind its page-LSN gate, so blocks
             flushed after the original apply are not double-applied and
             blocks the crash caught unwritten are completed *)
          let deltas = decode_deltas r.payload in
          List.iter
            (fun (block, _) ->
              let changed = ref false in
              Bufpool.with_page db.Db.pool ~rel:r.rel ~block (fun page ->
                  if Page.lsn page < r.lsn then begin
                    List.iter
                      (fun (d : Pbt.delta) ->
                        if d.d_block = block then Pbt.apply_delta page d)
                      deltas;
                    Page.set_lsn page r.lsn;
                    changed := true
                  end);
              if !changed then begin
                Bufpool.mark_dirty db.Db.pool ~rel:r.rel ~block;
                if Db.observed db then
                  Db.emit db
                    (Sias_obs.Bus.Index_page_io
                       {
                         rel = r.rel;
                         block;
                         deltas =
                           List.length
                             (List.filter
                                (fun (d : Pbt.delta) -> d.d_block = block)
                                deltas);
                       })
              end)
            (delta_blocks deltas)
      | _ -> ())
    records

let replay_clog db =
  Crashpoint.reach "recover.clog.pre";
  let records, _tail = Wal.verified_from db.Db.wal ~lsn:0 in
  (* Checkpoint records carry a CLOG snapshot (8-byte LE next_xid + dense
     image) taken when the log below them was reclaimed: restore the
     newest one first, so verdicts of transactions whose commit/abort
     records were truncated away survive. Transactions in progress at the
     snapshot crashed with it — restore flips them to aborted; if one in
     fact committed, its commit record is necessarily retained (a commit
     is a transaction's last record, so it sits at or after any
     checkpoint that still retains the transaction) and the overlay below
     re-marks it. *)
  List.iter
    (fun (r : Wal.record) ->
      if r.kind = Wal.Checkpoint && Bytes.length r.payload >= 8 then
        Txn.clog_restore db.Db.txnmgr
          ~next_xid:(Int64.to_int (Bytes.get_int64_le r.payload 0))
          ~image:
            (Bytes.sub_string r.payload 8 (Bytes.length r.payload - 8)))
    records;
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (r : Wal.record) ->
      if r.xid > 0 && not (Hashtbl.mem seen r.xid) then Hashtbl.replace seen r.xid false)
    records;
  List.iter
    (fun (r : Wal.record) ->
      match r.kind with
      | Wal.Commit -> Hashtbl.replace seen r.xid true
      | _ -> ())
    records;
  Hashtbl.iter
    (fun xid committed -> Txn.mark_recovered db.Db.txnmgr ~xid ~committed)
    seen;
  Crashpoint.reach "recover.clog.post"

(* Rebuild one heap page purely from the WAL — never through the buffer
   pool, so a repair triggered mid-read cannot recurse. Base image: the
   latest Full_page record for the block, or an empty page when the log
   is complete from the beginning; every later heap record for the block
   is applied on top. [None] when the block never appears in the log
   (array-index and VID_map pages are not WAL-logged and cannot be
   repaired — the read then fails loudly with [Corrupt_page]; paged-index
   pages are covered through their Ix_batch deltas and full-page
   images exactly like heap pages). *)
let repair_page db ~rel ~block =
  Crashpoint.reach "walcodec.repair.pre";
  let records, _tail = Wal.verified_from db.Db.wal ~lsn:0 in
  let mine =
    List.filter
      (fun (r : Wal.record) ->
        r.rel = rel
        &&
        match r.kind with
        | Wal.Insert | Wal.Update | Wal.Delete | Wal.Trim | Wal.Full_page ->
            let tid, _, _ = decode r.payload in
            Tid.block tid = block
        | Wal.Ix_batch ->
            List.exists
              (fun (d : Pbt.delta) -> d.d_block = block)
              (decode_deltas r.payload)
        | _ -> false)
      records
  in
  if mine = [] then None
  else begin
    let base_lsn =
      List.fold_left
        (fun acc (r : Wal.record) ->
          if r.kind = Wal.Full_page then Stdlib.max acc r.lsn else acc)
        0 mine
    in
    if base_lsn = 0 && Wal.oldest_retained db.Db.wal > 1 then None
    else begin
      let page = Page.create ~size:(Bufpool.page_size db.Db.pool) in
      List.iter
        (fun (r : Wal.record) ->
          if r.lsn >= base_lsn then
            match r.kind with
            | Wal.Trim ->
                Page.overwrite page
                  (Page.to_bytes (Page.create ~size:(Page.size page)));
                Page.set_lsn page r.lsn
            | Wal.Ix_batch ->
                if Page.lsn page < r.lsn then begin
                  List.iter
                    (fun (d : Pbt.delta) ->
                      if d.d_block = block then Pbt.apply_delta page d)
                    (decode_deltas r.payload);
                  Page.set_lsn page r.lsn
                end
            | _ -> ignore (apply_to_page page r))
        mine;
      Some page
    end
  end

let install_repair db =
  Bufpool.set_repair db.Db.pool (fun ~rel ~block -> repair_page db ~rel ~block)

(* Paged-index factories: bind the tree to this context's pool, logger
   and bus. [make_index] logs the tree's creation; [restore_index]
   re-opens it from its (already redone) pages after a crash. *)
let make_index db ~rel =
  Pbt.create db.Db.pool ~rel ~log:(log_index db ~rel) ~bus:db.Db.bus ()

let restore_index db ~rel =
  Pbt.restore db.Db.pool ~rel ~log:(log_index db ~rel) ~bus:db.Db.bus ()
