module Txn = Sias_txn.Txn
module Snapshot = Sias_txn.Snapshot
module Bus = Sias_obs.Bus

type mode = Ssi | Wsi

(* Whole-relation predicate reads (scans) lock this pseudo-key, exactly
   like the seed functor did: a writer to any key of the relation also
   probes it, so phantoms create edges too. *)
let predicate_key = min_int

type txs = {
  xid : int;
  snap : Snapshot.t;
  safe : bool;
  mutable in_neighbors : int list; (* readers r with rw edge r -> self *)
  mutable out_neighbors : int list; (* writers w with rw edge self -> w *)
  mutable doomed : bool; (* edged onto a committed pivot's structure *)
  mutable reads : (int * int) list; (* (rel, key); key may be predicate *)
  mutable wrote : bool;
}

type t = {
  mode : mode;
  mgr : Txn.mgr;
  bus : Bus.t;
  charge : int -> unit;
  txs : (int, txs) Hashtbl.t;
  sireads : (int * int, int list ref) Hashtbl.t; (* (rel, key) -> readers *)
  writes : (int * int, int list ref) Hashtbl.t; (* (rel, key) -> writers *)
  mutable siread_locks : int;
  mutable pivot_aborts : int;
  mutable confirmed_pivot_aborts : int;
  mutable certify_aborts : int;
  mutable lineage_edges : int;
  mutable table_edges : int;
  mutable safe_snapshots : int;
}

let create ~mode ~txnmgr ~bus ~charge =
  {
    mode;
    mgr = txnmgr;
    bus;
    charge;
    txs = Hashtbl.create 64;
    sireads = Hashtbl.create 256;
    writes = Hashtbl.create 256;
    siread_locks = 0;
    pivot_aborts = 0;
    confirmed_pivot_aborts = 0;
    certify_aborts = 0;
    lineage_edges = 0;
    table_edges = 0;
    safe_snapshots = 0;
  }

let mode t = t.mode
let observed t = Bus.active t.bus
let find_txs t xid = Hashtbl.find_opt t.txs xid

let on_begin t txn ~read_only ~deferrable =
  let snap = txn.Txn.snapshot in
  (* A read-only transaction that starts with no concurrent transactions
     runs on a safe snapshot: nothing it reads can be overwritten by a
     concurrent writer, so it is exempt from SIREAD tracking and can
     never be part of a dangerous structure. [deferrable] asks for one;
     in the cooperative single-threaded simulation we cannot block until
     the system drains, so a deferrable request that cannot be satisfied
     degenerates to an ordinary tracked read-only transaction. *)
  let safe =
    (read_only || deferrable) && Array.length snap.Snapshot.concurrent = 0
  in
  if safe then begin
    t.safe_snapshots <- t.safe_snapshots + 1;
    if observed t then Bus.publish t.bus (Bus.Ssi_safe_snapshot { xid = txn.Txn.xid })
  end;
  Hashtbl.replace t.txs txn.Txn.xid
    {
      xid = txn.Txn.xid;
      snap;
      safe;
      in_neighbors = [];
      out_neighbors = [];
      doomed = false;
      reads = [];
      wrote = false;
    }

(* Two transactions overlap iff neither snapshot sees the other's
   commit — the only window in which an rw antidependency is possible. *)
let concurrent a b =
  (not (Snapshot.sees_xid a.snap b.xid))
  && not (Snapshot.sees_xid b.snap a.xid)

(* A committed transaction can no longer be aborted: if it just became a
   pivot, break the dangerous structure by dooming one still-active
   neighbor instead (checked at that neighbor's own commit). *)
let doom_for_committed_pivot t s =
  if s.in_neighbors <> [] && s.out_neighbors <> []
     && Txn.status t.mgr s.xid = Txn.Committed
  then begin
    let doom x =
      match find_txs t x with
      | Some n when Txn.status t.mgr x = Txn.In_progress ->
          n.doomed <- true;
          true
      | _ -> false
    in
    if not (List.exists doom s.in_neighbors) then
      ignore (List.exists doom s.out_neighbors)
  end

let add_edge t ~reader ~writer ~lineage =
  if reader <> writer then
    match (find_txs t reader, find_txs t writer) with
    | Some r, Some w when (not r.safe) && concurrent r w ->
        if not (List.mem writer r.out_neighbors) then begin
          r.out_neighbors <- writer :: r.out_neighbors;
          w.in_neighbors <- reader :: w.in_neighbors;
          if lineage then t.lineage_edges <- t.lineage_edges + 1
          else t.table_edges <- t.table_edges + 1;
          if observed t then
            Bus.publish t.bus (Bus.Ssi_rw_edge { reader; writer; lineage });
          doom_for_committed_pivot t r;
          doom_for_committed_pivot t w
        end
    | _ -> ()

let readers_of t key =
  match Hashtbl.find_opt t.sireads key with Some l -> !l | None -> []

let writers_of t key =
  match Hashtbl.find_opt t.writes key with Some l -> !l | None -> []

let add_to tbl key xid =
  match Hashtbl.find_opt tbl key with
  | Some l -> if List.mem xid !l then false else (l := xid :: !l; true)
  | None ->
      Hashtbl.replace tbl key (ref [ xid ]);
      true

let take_siread t s ~rel ~key =
  if add_to t.sireads (rel, key) s.xid then begin
    t.siread_locks <- t.siread_locks + 1;
    if observed t then
      Bus.publish t.bus
        (Bus.Ssi_siread { xid = s.xid; rel; predicate = key = predicate_key })
  end

let note_read t ~xid ~rel ~pk ~probe_writes =
  match find_txs t xid with
  | None -> ()
  | Some s when s.safe -> ()
  | Some s ->
      t.charge 1;
      if not (List.mem (rel, pk) s.reads) then s.reads <- (rel, pk) :: s.reads;
      if t.mode = Ssi then begin
        take_siread t s ~rel ~key:pk;
        (* The SI engines have no co-located lineage to walk, so the
           reader probes the write table for overlapping writers; the
           SIAS engines pass [probe_writes:false] and report the same
           writers from the version chain/vector walk instead. *)
        if probe_writes then
          List.iter
            (fun w -> add_edge t ~reader:xid ~writer:w ~lineage:false)
            (writers_of t (rel, pk))
      end

let note_lineage_writer t ~reader ~writer =
  if t.mode = Ssi then add_edge t ~reader ~writer ~lineage:true

let note_scan t ~xid ~rel ~probe_writes =
  match find_txs t xid with
  | None -> ()
  | Some s when s.safe -> ()
  | Some s ->
      t.charge 1;
      if not (List.mem (rel, predicate_key) s.reads) then
        s.reads <- (rel, predicate_key) :: s.reads;
      if t.mode = Ssi then begin
        take_siread t s ~rel ~key:predicate_key;
        if probe_writes then
          Hashtbl.iter
            (fun (r, _) l ->
              if r = rel then
                List.iter
                  (fun w -> add_edge t ~reader:xid ~writer:w ~lineage:false)
                  !l)
            t.writes
      end

let note_write t ~xid ~rel ~pk =
  match find_txs t xid with
  | None -> ()
  | Some s ->
      t.charge 1;
      s.wrote <- true;
      ignore (add_to t.writes (rel, pk) xid);
      if t.mode = Ssi then
        (* Any overlapping reader of this key — or of the relation's
           predicate pseudo-key (phantom) — has an rw edge into us. *)
        List.iter
          (fun r -> add_edge t ~reader:r ~writer:xid ~lineage:false)
          (readers_of t (rel, pk) @ readers_of t (rel, predicate_key))

(* All tracking state is keyed by xid and only consulted while some
   overlapping transaction can still commit; once the system drains, no
   future transaction can form an edge to anything recorded here. *)
let maybe_cleanup t =
  if Txn.active_xids t.mgr = [] then begin
    Hashtbl.reset t.txs;
    Hashtbl.reset t.sireads;
    Hashtbl.reset t.writes
  end

let certify_wsi t s =
  (* Write-snapshot isolation: certify the read set instead of the write
     set — fail if any key this transaction read was (over)written by a
     concurrent transaction that has committed. Pure readers skip
     certification entirely and can never abort. *)
  let conflicts w =
    w <> s.xid
    && Txn.status t.mgr w = Txn.Committed
    && not (Snapshot.sees_xid s.snap w)
  in
  let check acc (rel, key) =
    match acc with
    | Some _ -> acc
    | None ->
        let ws =
          if key = predicate_key then
            Hashtbl.fold
              (fun (r, _) l acc -> if r = rel then !l @ acc else acc)
              t.writes []
          else writers_of t (rel, key)
        in
        List.find_opt conflicts ws
        |> Option.map (fun w -> (rel, key, w))
  in
  if not s.wrote then Ok ()
  else
    match List.fold_left check None s.reads with
    | None -> Ok ()
    | Some (rel, key, w) ->
        t.certify_aborts <- t.certify_aborts + 1;
        if observed t then
          Bus.publish t.bus (Bus.Wsi_certify_abort { xid = s.xid });
        Error
          (Printf.sprintf
             "read-write certification failed: %s rel %d was overwritten \
              by concurrent committed transaction %d"
             (if key = predicate_key then "scanned"
              else Printf.sprintf "key %d of" key)
             rel w)

let pivot_abort t s ~confirmed ~reason =
  t.pivot_aborts <- t.pivot_aborts + 1;
  if confirmed then
    t.confirmed_pivot_aborts <- t.confirmed_pivot_aborts + 1;
  if observed t then
    Bus.publish t.bus (Bus.Ssi_pivot_abort { xid = s.xid; confirmed });
  Error reason

let pre_commit_ssi t s =
  if s.doomed then
    (* Edged onto a dangerous structure whose pivot already committed:
       the pivot can no longer be aborted, so this side must be. *)
    pivot_abort t s ~confirmed:true
      ~reason:"rw-antidependency structure with a committed pivot"
  else begin
    (* Aborted neighbors cannot be part of a cycle; prune before the
       pivot test so exactly one member of a plain write skew aborts. *)
    let live = List.filter (fun x -> Txn.status t.mgr x <> Txn.Aborted) in
    s.in_neighbors <- live s.in_neighbors;
    s.out_neighbors <- live s.out_neighbors;
    if s.in_neighbors <> [] && s.out_neighbors <> [] then
      (* Conservative dangerous-structure rule: T_in -> self -> T_out
         with live neighbors. [confirmed] marks the cases where a real
         cycle is certain or near-certain — an immediate 2-cycle (write
         skew) or an out-neighbor that committed first; the remainder
         bounds the false-positive rate from above. *)
      let confirmed =
        List.exists (fun x -> List.mem x s.out_neighbors) s.in_neighbors
        || List.exists (fun x -> Txn.status t.mgr x = Txn.Committed)
             s.out_neighbors
      in
      pivot_abort t s ~confirmed
        ~reason:
          "pivot of a dangerous rw-antidependency structure (both in- \
           and out-edges present at commit)"
    else Ok ()
  end

let pre_commit t txn =
  match find_txs t txn.Txn.xid with
  | None -> Ok ()
  | Some s when s.safe -> Ok ()
  | Some s -> ( match t.mode with Ssi -> pre_commit_ssi t s | Wsi -> certify_wsi t s)

let on_commit t _txn = maybe_cleanup t
let on_abort t _txn = maybe_cleanup t

(* Crash: SIREAD locks, edges and doomed flags are volatile bookkeeping;
   none of it may survive a restart (recovery rebuilds committed state
   from the WAL and every in-flight transaction is dead anyway). *)
let reset t =
  Hashtbl.reset t.txs;
  Hashtbl.reset t.sireads;
  Hashtbl.reset t.writes

let siread_locks t = t.siread_locks
let pivot_aborts t = t.pivot_aborts
let confirmed_pivot_aborts t = t.confirmed_pivot_aborts
let certify_aborts t = t.certify_aborts
let lineage_edges t = t.lineage_edges
let table_edges t = t.table_edges
let safe_snapshots t = t.safe_snapshots

let false_positive_rate t =
  if t.pivot_aborts = 0 then 0.0
  else
    float_of_int (t.pivot_aborts - t.confirmed_pivot_aborts)
    /. float_of_int t.pivot_aborts
