type level = [ `Si | `Ssi | `Wsi ]

let all : (string * string list * level) list =
  [
    ("si", [ "snapshot" ], `Si);
    ("ssi", [ "serializable" ], `Ssi);
    ("wsi", [ "write-snapshot" ], `Wsi);
  ]

let to_string = function `Si -> "si" | `Ssi -> "ssi" | `Wsi -> "wsi"

let display = function
  | `Si -> "SI"
  | `Ssi -> "SSI (serializable)"
  | `Wsi -> "WSI (write-snapshot)"

let of_string s =
  List.find_opt (fun (k, aliases, _) -> k = s || List.mem s aliases) all
  |> Option.map (fun (_, _, l) -> l)

(* One canonical "what could you have meant" string, mirroring
   Engine.known_keys_hint so every unknown-level error reads the same. *)
let known_keys_hint () =
  all
  |> List.map (fun (k, aliases, _) ->
         match aliases with
         | [] -> k
         | a -> Printf.sprintf "%s (aka %s)" k (String.concat ", " a))
  |> List.sort compare |> String.concat ", "

let of_string_exn s =
  match of_string s with
  | Some l -> l
  | None ->
      invalid_arg
        (Printf.sprintf "unknown isolation level %S; known levels: %s" s
           (known_keys_hint ()))

let keys () = List.map (fun (k, _, _) -> k) all
