module Tid = Sias_storage.Tid

(* Hint bits (PostgreSQL-style): once a creating/invalidating
   transaction's fate is known, the answer is cached in spare bits of the
   on-tuple header so steady-state visibility checks never consult the
   transaction manager. Transaction ids are small positive ints, so the
   top two bits of each 8-byte little-endian timestamp field are free:
   bit 62 (0x40 of the most significant byte) = known committed, bit 63
   (0x80) = known aborted. Using spare bits keeps header sizes — and
   therefore page fill and device traffic — exactly as before. *)
module Hint = struct
  let none = 0
  let committed = 1
  let aborted = 2

  (* Byte-level masks for the MSB of an int64 timestamp field. *)
  let committed_bit = 0x40
  let aborted_bit = 0x80
  let bits_of h = h lsl 6
end

(* Timestamp value with hint bits masked off. Composed from uint16 reads
   so the decode stays allocation-free — [Bytes.get_int64_le] boxes its
   result, which costs two minor-heap allocations per field in the scan
   loop. *)
let field b off =
  Bytes.get_uint16_le b off
  lor (Bytes.get_uint16_le b (off + 2) lsl 16)
  lor (Bytes.get_uint16_le b (off + 4) lsl 32)
  lor ((Bytes.get_uint16_le b (off + 6) land 0x3FFF) lsl 48)

(* Full 62-bit value of a field with no hint bits in it. *)
let raw_field b off =
  Bytes.get_uint16_le b off
  lor (Bytes.get_uint16_le b (off + 2) lsl 16)
  lor (Bytes.get_uint16_le b (off + 4) lsl 32)
  lor ((Bytes.get_uint16_le b (off + 6) land 0x7FFF) lsl 48)

(* 2-bit hint value stored in the top bits of the field at [off]. *)
let hint_at b off = Bytes.get_uint8 b (off + 7) lsr 6

module Si = struct
  type header = { xmin : int; xmax : int; xmin_hint : int; xmax_hint : int }

  let header_size = 16 (* xmin int64, xmax int64 *)
  let xmin_hint_byte = 7
  let xmax_hint_byte = 15

  let encode ~xmin ~row =
    let payload = Value.encode_row row in
    let b = Bytes.create (header_size + Bytes.length payload) in
    Bytes.set_int64_le b 0 (Int64.of_int xmin);
    Bytes.set_int64_le b 8 0L;
    Bytes.blit payload 0 b header_size (Bytes.length payload);
    b

  let header b =
    { xmin = field b 0; xmax = field b 8; xmin_hint = hint_at b 0; xmax_hint = hint_at b 8 }

  let row b = Value.decode_row b ~pos:header_size

  (* Overwriting the whole field also clears any stale xmax hint. *)
  let patch_xmax b xmax = Bytes.set_int64_le b 8 (Int64.of_int xmax)
  let clear_xmax b = Bytes.set_int64_le b 8 0L
end

module Sias = struct
  type header = {
    create : int;
    seq : int;
    vid : int;
    pred : Tid.t;
    tombstone : bool;
    create_hint : int;
  }

  let header_size = 29 (* create int64, vid int64, pred int64, seq u32, flags u8 *)
  let create_hint_byte = 7

  let encode ~create ~seq ~vid ~pred ~tombstone ~row =
    let payload = Value.encode_row row in
    let b = Bytes.create (header_size + Bytes.length payload) in
    Bytes.set_int64_le b 0 (Int64.of_int create);
    Bytes.set_int64_le b 8 (Int64.of_int vid);
    Bytes.set_int64_le b 16 (Int64.of_int (Tid.to_int pred));
    Bytes.set_int32_le b 24 (Int32.of_int seq);
    Bytes.set_uint8 b 28 (if tombstone then 1 else 0);
    Bytes.blit payload 0 b header_size (Bytes.length payload);
    b

  let header b =
    {
      create = field b 0;
      seq = Int32.to_int (Bytes.get_int32_le b 24);
      vid = raw_field b 8;
      pred = Tid.of_int (raw_field b 16);
      tombstone = Bytes.get_uint8 b 28 land 1 = 1;
      create_hint = hint_at b 0;
    }

  let row b = Value.decode_row b ~pos:header_size

  let patch_pred b pred = Bytes.set_int64_le b 16 (Int64.of_int (Tid.to_int pred))
end
