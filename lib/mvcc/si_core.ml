(* The classical update-in-place Snapshot Isolation machinery, shared by
   the SI baseline (FSM placement) and the SI-CV variant (transaction
   co-located placement, the paper's reference [18]). Everything except
   version placement is identical, which is exactly the comparison the
   authors draw. *)

module Tid = Sias_storage.Tid
module Heapfile = Sias_storage.Heapfile
module Bufpool = Sias_storage.Bufpool
module Btree = Sias_index.Btree
module Txn = Sias_txn.Txn
module Contention = Sias_txn.Contention
module Wal = Sias_wal.Wal

module type PROFILE = sig
  val name : string
  val placement : Heapfile.placement
end

module Make (P : PROFILE) = struct
  let name = P.name

  type table = {
    tname : string;
    rel : int;
    mutable heap : Heapfile.t;
    pk_col : int;
    mutable pk_index : Index.t;
    mutable secondary : (int * Index.t) array;
  }

  type t = {
    db : Db.t;
    mutable tables : table list;
    mutable vacuumed_versions : int;
    mutable vacuumed_pages : int;
    track : bool;
        (* serializability tracking on (isolation <> `Si); cached so the
           hot paths pay one local branch and SI stays byte-identical *)
  }

  let create db =
    Walcodec.install_repair db;
    {
      db;
      tables = [];
      vacuumed_versions = 0;
      vacuumed_pages = 0;
      track = Db.ssi_tracking db;
    }
  let db t = t.db

  let create_table t ~name:tname ~pk_col ?(secondary = []) () =
    let rel = Db.alloc_rel t.db in
    let heap = Heapfile.create t.db.Db.pool ~rel ~placement:P.placement in
    let pk_index = Index.create t.db in
    let secondary =
      Array.map (fun col -> (col, Index.create t.db)) (Array.of_list secondary)
    in
    let table = { tname; rel; heap; pk_col; pk_index; secondary } in
    t.tables <- t.tables @ [ table ];
    table

  let begin_txn t = Db.begin_txn t.db

  let commit t txn =
    try
      Db.commit t.db txn;
      Ok ()
    with Db.Serialization_failure _ -> Error Engine.Serialization_failure

  let abort t txn = Db.abort t.db txn

  (* The update-in-place engines have no co-located lineage to walk, so
     their serializable-mode reads probe the shared write table
     (PostgreSQL-style); the SIAS engines harvest the same information
     from version metadata instead. *)
  let note_read t txn table pk =
    if t.track then
      Db.note_read t.db ~xid:txn.Txn.xid ~rel:table.rel ~pk ~probe_writes:true

  let note_write t txn table pk =
    if t.track then Db.note_write t.db ~xid:txn.Txn.xid ~rel:table.rel ~pk

  let pk_of table row = Value.to_key row.(table.pk_col)

  (* Add index entries for a new tuple version: PostgreSQL inserts into the
     primary and every secondary index on each (non-HOT) update. *)
  let index_version table ~tid row =
    let tidi = Tid.to_int tid in
    Index.insert table.pk_index ~key:(pk_of table row) ~payload:tidi;
    Array.iter
      (fun (col, index) -> Index.insert index ~key:(Value.to_key row.(col)) ~payload:tidi)
      table.secondary

  let unindex_version table ~tid row =
    let tidi = Tid.to_int tid in
    ignore (Index.delete table.pk_index ~key:(pk_of table row) ~payload:tidi);
    Array.iter
      (fun (col, index) ->
        ignore (Index.delete index ~key:(Value.to_key row.(col)) ~payload:tidi))
      table.secondary

  (* Secondary indexes live in a small array probed linearly (tables have
     at most a couple); replaces the old List.assoc. *)
  let find_index_on table col =
    let n = Array.length table.secondary in
    let rec go i =
      if i >= n then None
      else
        let c, index = table.secondary.(i) in
        if c = col then Some index else go (i + 1)
    in
    go 0

  let place_version t txn table row =
    let item = Tuple.Si.encode ~xmin:txn.Txn.xid ~row in
    let tid = Heapfile.insert_owned table.heap ~owner:txn.Txn.xid item in
    Walcodec.log_heap t.db ~xid:txn.Txn.xid ~rel:table.rel ~kind:Wal.Insert ~tid ~item;
    index_version table ~tid row;
    (* every version pays index maintenance in every index *)
    Db.charge_cpu t.db (1 + Array.length table.secondary);
    tid

  (* The visible version of a data item among the candidate TIDs of its
     primary key, newest first is not guaranteed, so every candidate is
     checked. Returns (tid, item image, header, row). *)
  let find_visible t txn table pk =
    let candidates = Index.lookup table.pk_index ~key:pk in
    Db.charge_cpu t.db (List.length candidates);
    let check tidi =
      let tid = Tid.of_int tidi in
      match Heapfile.read table.heap tid with
      | None -> None
      | Some item ->
          let h = Tuple.Si.header item in
          if Visibility.si_visible_fast t.db ~heap:table.heap ~tid txn.Txn.snapshot h
          then
            let row = Tuple.Si.row item in
            if pk_of table row = pk then Some (tid, item, h, row) else None
          else None
    in
    List.find_map check candidates

  (* Unique-key admission for an insert, like PostgreSQL's unique-index
     check against the latest version state: a visible live duplicate is a
     duplicate-key error; a duplicate that is live "right now" but not
     visible (in-progress inserter, or committed after our snapshot) is a
     write conflict under first-updater-wins. *)
  let insert_conflict t txn table pk =
    let mgr = t.db.Db.txnmgr in
    let candidates = Index.lookup table.pk_index ~key:pk in
    Db.charge_cpu t.db (List.length candidates);
    let verdict_of tidi =
      let tid = Tid.of_int tidi in
      match Heapfile.read table.heap tid with
      | None -> None
      | Some item ->
          let h = Tuple.Si.header item in
          if pk_of table (Tuple.Si.row item) <> pk then None
          else if Visibility.si_visible_fast t.db ~heap:table.heap ~tid txn.Txn.snapshot h
          then Some Engine.Duplicate_key
          else begin
            match Txn.status mgr h.xmin with
            | Txn.Aborted -> None
            | Txn.In_progress ->
                (* own invisible version means we deleted it ourselves *)
                if h.xmin = txn.Txn.xid then None else Some Engine.Write_conflict
            | Txn.Committed ->
                let deleted_for_good =
                  h.xmax <> 0
                  && (h.xmax = txn.Txn.xid || Txn.status mgr h.xmax = Txn.Committed)
                in
                if deleted_for_good then None else Some Engine.Write_conflict
          end
    in
    (* a visible duplicate wins over a conflict verdict *)
    let verdicts = List.filter_map verdict_of candidates in
    if List.mem Engine.Duplicate_key verdicts then Some Engine.Duplicate_key
    else if verdicts <> [] then Some Engine.Write_conflict
    else None

  let insert t txn table row =
    let pk = pk_of table row in
    match insert_conflict t txn table pk with
    | Some e -> Error e
    | None ->
        let _ = place_version t txn table row in
        Db.charge_cpu t.db 1;
        note_write t txn table pk;
        if Db.observed t.db then
          Db.emit t.db
            (Db.Event.Row_write
               { xid = txn.Txn.xid; rel = table.rel; pk; row = Some row });
        Ok ()

  let read t txn table ~pk =
    let row =
      match find_visible t txn table pk with
      | Some (_, _, _, row) -> Some row
      | None -> None
    in
    note_read t txn table pk;
    if Db.observed t.db then
      Db.emit t.db
        (Db.Event.Row_read { xid = txn.Txn.xid; rel = table.rel; pk; row });
    row

  (* First-updater-wins: refuse when the visible version is already
     invalidated by another transaction that is still active or committed
     after our snapshot (no-wait policy, see DESIGN.md). *)
  let check_update_conflict t txn table ~pk (h : Tuple.Si.header) =
    if h.xmax = 0 || h.xmax = txn.Txn.xid then Ok ()
    else
      match Txn.status t.db.Db.txnmgr h.xmax with
      | Txn.Aborted -> Ok ()
      | Txn.Committed ->
          (* first-committer-wins against a finished writer: waiting is
             pointless, the conflict is final *)
          Error Engine.Write_conflict
      | Txn.In_progress -> (
          (* the in-progress invalidator holds the pk writer lock, so the
             conflict policy (wait / wound / detect) decides here *)
          match
            Contention.acquire t.db.Db.contention ~xid:txn.Txn.xid ~rel:table.rel ~key:pk
          with
          | Contention.Abort_self -> Error Engine.Write_conflict
          | Contention.Granted -> Ok ())

  let write_version t txn table ~pk ~make_row ~tombstone =
    match find_visible t txn table pk with
    | None -> Error Engine.Not_found
    | Some (old_tid, old_item, h, old_row) -> (
        match check_update_conflict t txn table ~pk h with
        | Error e -> Error e
        | Ok () -> (
            match Contention.acquire t.db.Db.contention ~xid:txn.Txn.xid ~rel:table.rel ~key:pk with
            | Contention.Abort_self -> Error Engine.Write_conflict
            | Contention.Granted ->
                (* invalidate the old version IN PLACE: the small write SI
                   pays on the old version's page *)
                Tuple.Si.patch_xmax old_item txn.Txn.xid;
                if not (Heapfile.update_in_place table.heap old_tid old_item) then
                  failwith "Si_engine: in-place invalidation failed";
                Walcodec.log_heap t.db ~xid:txn.Txn.xid ~rel:table.rel ~kind:Wal.Update
                  ~tid:old_tid ~item:old_item;
                let new_row = make_row old_row in
                (match new_row with
                | Some row ->
                    if tombstone then failwith "Si_engine: tombstone with a row";
                    let _ = place_version t txn table row in
                    ()
                | None -> ());
                Db.charge_cpu t.db 2;
                note_write t txn table pk;
                if Db.observed t.db then
                  Db.emit t.db
                    (Db.Event.Row_write
                       { xid = txn.Txn.xid; rel = table.rel; pk; row = new_row });
                Ok ()))

  let update t txn table ~pk f =
    write_version t txn table ~pk ~make_row:(fun row -> Some (f row)) ~tombstone:false

  let delete t txn table ~pk =
    write_version t txn table ~pk ~make_row:(fun _ -> None) ~tombstone:false

  let lookup t txn table ~col ~key =
    match find_index_on table col with
    | None -> invalid_arg "Si_engine.lookup: no index on column"
    | Some index ->
        let tids = Index.lookup index ~key in
        Db.charge_cpu t.db (List.length tids);
        List.filter_map
          (fun tidi ->
            let tid = Tid.of_int tidi in
            match Heapfile.read table.heap tid with
            | None -> None
            | Some item ->
                let h = Tuple.Si.header item in
                if
                  Visibility.si_visible_fast t.db ~heap:table.heap ~tid
                    txn.Txn.snapshot h
                then
                  let row = Tuple.Si.row item in
                  if Value.to_key row.(col) = key then begin
                    note_read t txn table (pk_of table row);
                    Some row
                  end
                  else None
                else None)
          tids

  let range_pk t txn table ~lo ~hi =
    let entries = Index.range table.pk_index ~lo ~hi in
    Db.charge_cpu t.db (List.length entries);
    List.filter_map
      (fun (key, tidi) ->
        let tid = Tid.of_int tidi in
        match Heapfile.read table.heap tid with
        | None -> None
        | Some item ->
            let h = Tuple.Si.header item in
            if Visibility.si_visible_fast t.db ~heap:table.heap ~tid txn.Txn.snapshot h
            then
              let row = Tuple.Si.row item in
              if Value.to_key row.(table.pk_col) = key then begin
                note_read t txn table key;
                Some row
              end
              else None
            else None)
      entries

  (* Traditional relation scan: fetch every tuple version of the relation
     and check each for visibility. *)
  let scan t txn table f =
    if t.track then
      Db.note_scan t.db ~xid:txn.Txn.xid ~rel:table.rel ~probe_writes:true;
    let count = ref 0 in
    Heapfile.iter table.heap (fun tid item ->
        Db.charge_cpu t.db 1;
        let h = Tuple.Si.header item in
        if Visibility.si_visible_fast t.db ~heap:table.heap ~tid txn.Txn.snapshot h
        then begin
          incr count;
          f (Tuple.Si.row item)
        end);
    !count

  (* Vacuum: physically remove versions no snapshot can ever see, and drop
     their index entries. *)
  let vacuum_table t table =
    let horizon = Txn.horizon t.db.Db.txnmgr in
    let victims = ref [] in
    Heapfile.iter_ro table.heap (fun tid item ->
        let h = Tuple.Si.header item in
        if Visibility.si_dead_for_all t.db.Db.txnmgr ~horizon h then
          victims := (tid, Tuple.Si.row item) :: !victims);
    List.iter
      (fun (tid, row) ->
        Heapfile.delete table.heap tid;
        Walcodec.log_heap t.db ~xid:0 ~rel:table.rel ~kind:Wal.Delete ~tid ~item:Bytes.empty;
        unindex_version table ~tid row;
        t.vacuumed_versions <- t.vacuumed_versions + 1)
      !victims;
    t.vacuumed_pages <- t.vacuumed_pages + Heapfile.nblocks table.heap

  let gc t = List.iter (vacuum_table t) t.tables

  let discover_nblocks pool ~rel =
    let b = ref 0 in
    while Bufpool.on_disk pool ~rel ~block:!b || Bufpool.resident pool ~rel ~block:!b do
      incr b
    done;
    !b

  let recover t =
    Walcodec.replay_clog t.db;
    Walcodec.redo t.db ~since_lsn:0;
    List.iter
      (fun table ->
        Sias_chaos.Crashpoint.reach "recover.heap.restore";
        let nblocks = discover_nblocks t.db.Db.pool ~rel:table.rel in
        table.heap <-
          Heapfile.restore t.db.Db.pool ~rel:table.rel ~placement:P.placement ~nblocks;
        table.pk_index <- Index.recover t.db table.pk_index;
        table.secondary <-
          Array.map (fun (col, idx) -> (col, Index.recover t.db idx)) table.secondary;
        (* paged indexes came back from their own replayed pages; only the
           array implementation is rebuilt from the heap (any entries of
           crashed — hence aborted — transactions that redo re-applied to
           a paged index are filtered by visibility, like lazy deletion) *)
        if Index.needs_rebuild table.pk_index then
          Heapfile.iter table.heap (fun tid item ->
              let h = Tuple.Si.header item in
              if Txn.status t.db.Db.txnmgr h.xmin <> Txn.Aborted then
                index_version table ~tid (Tuple.Si.row item)))
      t.tables

  let table_stats t table =
    let total = ref 0 and live = ref 0 in
    Heapfile.iter table.heap (fun _ item ->
        incr total;
        let h = Tuple.Si.header item in
        let invalidated =
          h.xmax <> 0 && Txn.status t.db.Db.txnmgr h.xmax = Txn.Committed
        in
        let aborted = Txn.status t.db.Db.txnmgr h.xmin = Txn.Aborted in
        if (not invalidated) && not aborted then incr live);
    {
      Engine.heap_blocks = Heapfile.nblocks table.heap;
      live_versions = !live;
      total_versions = !total;
      avg_fill = Heapfile.avg_fill table.heap;
    }

  let vacuum_stats t = (t.vacuumed_versions, t.vacuumed_pages)

  let index_summary t =
    List.map
      (fun table ->
        ( table.tname,
          Index.summary table.pk_index
          :: Array.to_list (Array.map (fun (_, i) -> Index.summary i) table.secondary) ))
      t.tables

end
