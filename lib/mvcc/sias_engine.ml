module Tid = Sias_storage.Tid
module Heapfile = Sias_storage.Heapfile
module Bufpool = Sias_storage.Bufpool
module Btree = Sias_index.Btree
module Txn = Sias_txn.Txn
module Contention = Sias_txn.Contention
module Wal = Sias_wal.Wal

let name = "SIAS-Chains"

type table = {
  tname : string;
  rel : int;
  mutable heap : Heapfile.t;
  pk_col : int;
  mutable vidmap : Vidmap.t;
  mutable pk_index : Index.t; (* key = pk, payload = vid *)
  mutable secondary : (int * Index.t) array; (* key = column value, payload = vid *)
}

(* Per-transaction undo: restores the VID_map on abort. [old_entry = None]
   means the VID was freshly allocated by this transaction. *)
type undo = { u_table : table; u_vid : int; u_old : Tid.t option; u_pk : int option }

type gc_stats = {
  pruned_versions : int;
  relocated_versions : int;
  reclaimed_pages : int;
}

type t = {
  db : Db.t;
  mutable tables : table list;
  undo : (int, undo list ref) Hashtbl.t;
  cmd_seq : (int, int ref) Hashtbl.t;
  mutable pruned : int;
  mutable relocated : int;
  mutable reclaimed : int;
  mutable walks : int;
  mutable visited : int;
  track : bool;
      (* serializability tracking on (isolation <> `Si); cached so the
         chain walk pays one local branch and SI stays byte-identical *)
}

let create db =
  Walcodec.install_repair db;
  {
    db;
    tables = [];
    undo = Hashtbl.create 64;
    cmd_seq = Hashtbl.create 64;
    pruned = 0;
    relocated = 0;
    reclaimed = 0;
    walks = 0;
    visited = 0;
    track = Db.ssi_tracking db;
  }

let db t = t.db

let create_table t ~name:tname ~pk_col ?(secondary = []) () =
  let rel = Db.alloc_rel t.db in
  let heap =
    Heapfile.create ?seal_interval:t.db.Db.append_seal_interval t.db.Db.pool ~rel
      ~placement:Heapfile.Append_only
  in
  let pk_index = Index.create t.db in
  let secondary =
    Array.map (fun col -> (col, Index.create t.db)) (Array.of_list secondary)
  in
  let vidmap =
    if t.db.Db.vidmap_paged then Vidmap.create ~backing:(t.db.Db.pool, Db.alloc_rel t.db) ()
    else Vidmap.create ()
  in
  let table = { tname; rel; heap; pk_col; vidmap; pk_index; secondary } in
  t.tables <- t.tables @ [ table ];
  table

let begin_txn t = Db.begin_txn t.db

let next_seq t xid =
  let cell =
    match Hashtbl.find_opt t.cmd_seq xid with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.replace t.cmd_seq xid c;
        c
  in
  incr cell;
  !cell

let push_undo t xid u =
  let cell =
    match Hashtbl.find_opt t.undo xid with
    | Some c -> c
    | None ->
        let c = ref [] in
        Hashtbl.replace t.undo xid c;
        c
  in
  cell := u :: !cell

let forget_txn t xid =
  Hashtbl.remove t.undo xid;
  Hashtbl.remove t.cmd_seq xid

let commit t txn =
  forget_txn t txn.Txn.xid;
  try
    Db.commit t.db txn;
    Ok ()
  with Db.Serialization_failure _ -> Error Engine.Serialization_failure

let abort t txn =
  (match Hashtbl.find_opt t.undo txn.Txn.xid with
  | None -> ()
  | Some cell ->
      List.iter
        (fun u ->
          (match u.u_old with
          | Some tid -> Vidmap.set u.u_table.vidmap ~vid:u.u_vid tid
          | None -> Vidmap.clear u.u_table.vidmap ~vid:u.u_vid);
          match (u.u_old, u.u_pk) with
          | None, Some pk ->
              (* fresh insert: retract the data item's index entry *)
              ignore (Index.delete u.u_table.pk_index ~key:pk ~payload:u.u_vid)
          | _ -> ())
        !cell);
  forget_txn t txn.Txn.xid;
  Db.abort t.db txn

let pk_of table row = Value.to_key row.(table.pk_col)

let fetch table tid = Heapfile.read table.heap tid

(* Algorithm 1's inner loop: walk the chain from the entrypoint and
   return the first version whose creator is visible; a visible tombstone
   means the item is deleted for this snapshot. *)
let find_visible t txn table vid =
  match Vidmap.get table.vidmap ~vid with
  | None -> None
  | Some entry ->
      t.walks <- t.walks + 1;
      let rec walk tid =
        if Tid.is_invalid tid then None
        else
          match fetch table tid with
          | None -> None (* pruned tail: the chain ends here *)
          | Some item ->
              t.visited <- t.visited + 1;
              Db.charge_cpu t.db 1;
              let h = Tuple.Sias.header item in
              if h.vid <> vid then None (* slot reused after pruning *)
              else if
                Visibility.sias_creator_visible_fast t.db ~heap:table.heap ~tid
                  txn.Txn.snapshot ~hint:h.create_hint ~xid:h.create
              then if h.tombstone then None else Some (tid, item, h)
              else begin
                (* The research twist: a skipped chain version names an
                   overlapping writer of this data item right in the
                   co-located lineage — under serializable mode that is
                   an rw antidependency, no lock-table probe needed. *)
                if t.track then
                  Db.note_lineage_writer t.db ~reader:txn.Txn.xid
                    ~writer:h.create;
                walk h.pred
              end
      in
      walk entry

(* The newest non-aborted version under the entrypoint, used by the
   update conflict check. Also reports whether that version's creator is
   still in progress. *)
let effective_entrypoint t table vid =
  match Vidmap.get table.vidmap ~vid with
  | None -> None
  | Some entry ->
      let rec walk tid =
        if Tid.is_invalid tid then None
        else
          match fetch table tid with
          | None -> None
          | Some item ->
              let h = Tuple.Sias.header item in
              if h.vid <> vid then None
              else (
                match Txn.status t.db.Db.txnmgr h.create with
                | Txn.Aborted -> walk h.pred
                | Txn.In_progress | Txn.Committed -> Some (tid, h))
      in
      walk entry

let append_version t table ~xid ~seq ~vid ~pred ~tombstone row =
  let item = Tuple.Sias.encode ~create:xid ~seq ~vid ~pred ~tombstone ~row in
  let tid = Heapfile.insert table.heap item in
  Walcodec.log_heap ~append_only:true t.db ~xid ~rel:table.rel ~kind:Wal.Insert ~tid ~item;
  tid

(* Find the data item carrying [pk]: resolve candidate VIDs through the
   index, then pick the one whose visible version really has the key. *)
let find_item t txn table pk =
  let vids = Index.lookup table.pk_index ~key:pk in
  Db.charge_cpu t.db (List.length vids);
  List.find_map
    (fun vid ->
      match find_visible t txn table vid with
      | Some (tid, item, h) ->
          let row = Tuple.Sias.row item in
          if pk_of table row = pk then Some (vid, tid, h, row) else None
      | None -> None)
    vids

(* Unique-key admission, mirroring the SI engine's check: the newest
   non-aborted version of any data item carrying this key decides —
   visible live duplicate, in-progress writer, or a live version committed
   after our snapshot. *)
let insert_conflict t txn table pk =
  if find_item t txn table pk <> None then Some Engine.Duplicate_key
  else begin
    let mgr = t.db.Db.txnmgr in
    let vids = Index.lookup table.pk_index ~key:pk in
    let conflict vid =
      match effective_entrypoint t table vid with
      | None -> false
      | Some (etid, eh) -> (
          match fetch table etid with
          | None -> false
          | Some item ->
              pk_of table (Tuple.Sias.row item) = pk
              && eh.Tuple.Sias.create <> txn.Txn.xid
              && (match Txn.status mgr eh.Tuple.Sias.create with
                 | Txn.In_progress ->
                     (* another transaction is inserting, updating or
                        deleting this key right now *)
                     true
                 | Txn.Committed ->
                     (* live but invisible means it committed after our
                        snapshot; a committed tombstone frees the key *)
                     not eh.Tuple.Sias.tombstone
                 | Txn.Aborted -> false))
    in
    if List.exists conflict vids then Some Engine.Write_conflict else None
  end

let insert t txn table row =
  let pk = pk_of table row in
  match insert_conflict t txn table pk with
  | Some e -> Error e
  | None ->
      let xid = txn.Txn.xid in
      let vid = Vidmap.alloc_vid table.vidmap in
      let tid =
        append_version t table ~xid ~seq:(next_seq t xid) ~vid ~pred:Tid.invalid
          ~tombstone:false row
      in
      Vidmap.set table.vidmap ~vid tid;
      push_undo t xid { u_table = table; u_vid = vid; u_old = None; u_pk = Some pk };
      Index.insert table.pk_index ~key:pk ~payload:vid;
      Array.iter
        (fun (col, index) -> Index.insert index ~key:(Value.to_key row.(col)) ~payload:vid)
        table.secondary;
      (* index maintenance happens once per data item, not per version *)
      Db.charge_cpu t.db (2 + Array.length table.secondary);
      if t.track then Db.note_write t.db ~xid ~rel:table.rel ~pk;
      if Db.observed t.db then
        Db.emit t.db (Db.Event.Row_write { xid; rel = table.rel; pk; row = Some row });
      Ok ()

(* Algorithm 3. The update must start from the entrypoint: if a newer
   (non-aborted) version than the one visible to us exists, another
   transaction got there first. *)
let write_version t txn table ~pk ~make_row ~tombstone =
  match find_item t txn table pk with
  | None -> Error Engine.Not_found
  | Some (vid, visible_tid, _h, old_row) -> (
      let xid = txn.Txn.xid in
      match effective_entrypoint t table vid with
      | None -> Error Engine.Not_found
      | Some (etid, eh) ->
          let entry_in_progress =
            eh.Tuple.Sias.create <> xid
            && Txn.status t.db.Db.txnmgr eh.Tuple.Sias.create = Txn.In_progress
          in
          (* the in-progress writer of the chain entrypoint holds the vid
             writer lock, so the conflict policy decides this case *)
          let blocked =
            entry_in_progress
            && Contention.acquire t.db.Db.contention ~xid ~rel:table.rel ~key:vid
               = Contention.Abort_self
          in
          if blocked || not (Tid.equal etid visible_tid) then
            Error Engine.Write_conflict
          else (
            match Contention.acquire t.db.Db.contention ~xid ~rel:table.rel ~key:vid with
            | Contention.Abort_self -> Error Engine.Write_conflict
            | Contention.Granted ->
                let pred =
                  match Vidmap.get table.vidmap ~vid with
                  | Some tid -> tid
                  | None -> Tid.invalid
                in
                let row = match make_row old_row with Some r -> r | None -> old_row in
                if (not tombstone) && pk_of table row <> pk then
                  invalid_arg "Sias_engine.update: primary key must not change";
                let tid =
                  append_version t table ~xid ~seq:(next_seq t xid) ~vid ~pred ~tombstone row
                in
                push_undo t xid { u_table = table; u_vid = vid; u_old = Some pred; u_pk = None };
                Vidmap.set table.vidmap ~vid tid;
                (* index maintenance only when an indexed key changed *)
                if not tombstone then
                  Array.iter
                    (fun (col, index) ->
                      let old_key = Value.to_key old_row.(col) in
                      let new_key = Value.to_key row.(col) in
                      if old_key <> new_key then Index.insert index ~key:new_key ~payload:vid)
                    table.secondary;
                Db.charge_cpu t.db 1;
                if t.track then Db.note_write t.db ~xid ~rel:table.rel ~pk;
                if Db.observed t.db then
                  Db.emit t.db
                    (Db.Event.Row_write
                       {
                         xid;
                         rel = table.rel;
                         pk;
                         row = (if tombstone then None else Some row);
                       });
                Ok ()))

let update t txn table ~pk f =
  write_version t txn table ~pk ~make_row:(fun row -> Some (f row)) ~tombstone:false

let delete t txn table ~pk =
  write_version t txn table ~pk ~make_row:(fun _ -> None) ~tombstone:true

let read t txn table ~pk =
  let row =
    match find_item t txn table pk with Some (_, _, _, row) -> Some row | None -> None
  in
  (* overlapping writers were already reported by the lineage walk *)
  if t.track then
    Db.note_read t.db ~xid:txn.Txn.xid ~rel:table.rel ~pk ~probe_writes:false;
  if Db.observed t.db then
    Db.emit t.db (Db.Event.Row_read { xid = txn.Txn.xid; rel = table.rel; pk; row });
  row

(* Linear probe over the (small, fixed) secondary-index array; replaces
   the old [List.assoc_opt] without allocating. *)
let find_index_on table col =
  let n = Array.length table.secondary in
  let rec go i =
    if i >= n then None
    else
      let c, idx = table.secondary.(i) in
      if c = col then Some idx else go (i + 1)
  in
  go 0

let lookup t txn table ~col ~key =
  match find_index_on table col with
  | None -> invalid_arg "Sias_engine.lookup: no index on column"
  | Some index ->
      let vids = Index.lookup index ~key in
      Db.charge_cpu t.db (List.length vids);
      List.filter_map
        (fun vid ->
          match find_visible t txn table vid with
          | Some (_, item, _) ->
              let row = Tuple.Sias.row item in
              (* stale entries from key updates are filtered here *)
              if Value.to_key row.(col) = key then begin
                if t.track then
                  Db.note_read t.db ~xid:txn.Txn.xid ~rel:table.rel
                    ~pk:(pk_of table row) ~probe_writes:false;
                Some row
              end
              else None
          | None -> None)
        vids

let range_pk t txn table ~lo ~hi =
  let entries = Index.range table.pk_index ~lo ~hi in
  Db.charge_cpu t.db (List.length entries);
  List.filter_map
    (fun (key, vid) ->
      match find_visible t txn table vid with
      | Some (_, item, _) ->
          let row = Tuple.Sias.row item in
          if pk_of table row = key then begin
            if t.track then
              Db.note_read t.db ~xid:txn.Txn.xid ~rel:table.rel ~pk:key
                ~probe_writes:false;
            Some row
          end
          else None
      | None -> None)
    entries

(* Algorithm 1: scan over the VID_map, fetching only entrypoints (and
   predecessors when the snapshot needs older versions). *)
let scan t txn table f =
  (* Predicate SIREAD only — the per-vid chain walks below surface every
     overlapping writer (even a phantom insert allocates its vid before
     commit, so its invisible version is walked and harvested). *)
  if t.track then
    Db.note_scan t.db ~xid:txn.Txn.xid ~rel:table.rel ~probe_writes:false;
  let count = ref 0 in
  for vid = 0 to Vidmap.vid_count table.vidmap - 1 do
    match find_visible t txn table vid with
    | Some (_, item, _) ->
        incr count;
        f (Tuple.Sias.row item)
    | None -> ()
  done;
  !count

let scan_vidmap = scan

(* The traditional scan: read the whole relation, then determine for each
   candidate whether it is the version Algorithm 1 would return. *)
let scan_traditional t txn table f =
  if t.track then
    Db.note_scan t.db ~xid:txn.Txn.xid ~rel:table.rel ~probe_writes:false;
  let count = ref 0 in
  Heapfile.iter table.heap (fun tid item ->
      Db.charge_cpu t.db 1;
      let h = Tuple.Sias.header item in
      if
        Visibility.sias_creator_visible_fast t.db ~heap:table.heap ~tid
          txn.Txn.snapshot ~hint:h.create_hint ~xid:h.create
      then
        match find_visible t txn table h.vid with
        | Some (vtid, _, _) when Tid.equal vtid tid ->
            incr count;
            f (Tuple.Sias.row item)
        | _ -> ());
  !count

(* ------------------------------------------------------------------ *)
(* Garbage collection (paper Section 6, Space Reclamation)             *)

(* Mark-and-sweep in the spirit of log-structured space reclamation. The
   mark phase walks every chain from its entrypoint and collects the
   versions some present or future snapshot may still need; chains that
   are dead in their entirety (committed tombstones below the horizon)
   lose their VID_map entry and index entries. The sweep phase then
   (i) deletes dead slots only on pages not yet on stable storage
   (marking there is free — the page will be written once anyway), and
   (ii) for sealed victim pages whose live fraction is below the
   threshold, re-inserts the live versions at the append tail, repairs
   the single incoming reference of each, and discards the whole page
   with a TRIM — never a small in-place write. *)

(* An item with an active writer must not be touched: the writer's undo
   record points at the pre-update entrypoint, which GC would otherwise
   relocate or reap out from under a subsequent abort. *)
let locked t table vid =
  Sias_txn.Lockmgr.holder t.db.Db.lockmgr ~rel:table.rel ~key:vid <> None

(* All GC reads go through the vacuum ring so background scans neither
   stall transactions nor evict the working set. *)
let fetch_ro table tid = Heapfile.read_ro table.heap tid

let mark_live t table =
  let mgr = t.db.Db.txnmgr in
  let horizon = Txn.horizon mgr in
  let live = Hashtbl.create 1024 in
  for vid = 0 to Vidmap.vid_count table.vidmap - 1 do
    match Vidmap.get table.vidmap ~vid with
    | None -> ()
    | Some entry ->
        if locked t table vid then begin
          (* an active writer owns this item: keep everything reachable *)
          let rec keep tid =
            if not (Tid.is_invalid tid) then
              match fetch_ro table tid with
              | Some item when (Tuple.Sias.header item).Tuple.Sias.vid = vid ->
                  Hashtbl.replace live (Tid.to_int tid) vid;
                  keep (Tuple.Sias.header item).Tuple.Sias.pred
              | _ -> ()
          in
          keep entry
        end
        else begin
          let rec walk tid ~succ_committed ~any_live =
            if Tid.is_invalid tid then ()
            else
              match fetch_ro table tid with
              | None -> ()
              | Some item ->
                  let h = Tuple.Sias.header item in
                  if h.vid <> vid then ()
                  else begin
                    let dead =
                      Visibility.sias_dead_for_all mgr ~horizon ~create:h.create
                        ~successor_create:succ_committed
                      || (h.tombstone && h.create < horizon
                         && Txn.status mgr h.create = Txn.Committed)
                    in
                    if dead then begin
                      (* everything below is dead too; a fully dead item
                         loses its map and index entries *)
                      if not any_live then begin
                        Vidmap.clear table.vidmap ~vid;
                        let row = Tuple.Sias.row item in
                        ignore
                          (Index.delete table.pk_index ~key:(pk_of table row) ~payload:vid)
                      end
                    end
                    else begin
                      Hashtbl.replace live (Tid.to_int tid) vid;
                      let succ_committed =
                        if Txn.status mgr h.create = Txn.Committed then Some h.create
                        else succ_committed
                      in
                      walk h.pred ~succ_committed ~any_live:true
                    end
                  end
          in
          walk entry ~succ_committed:None ~any_live:false
        end
  done;
  live

(* Re-append a live version and repair the unique reference to it (its
   item's VID_map entry, or its successor's chain pointer). *)
let relocate_version t table live old_tid =
  (* re-fetch: an earlier relocation's pointer repair may have patched
     this very item in place after the sweep captured the page *)
  match fetch_ro table old_tid with
  | None -> ()
  | Some item ->
  let h = Tuple.Sias.header item in
  let new_tid = Heapfile.insert table.heap item in
  Walcodec.log_heap ~append_only:true t.db ~xid:0 ~rel:table.rel ~kind:Wal.Insert ~tid:new_tid ~item;
  Hashtbl.remove live (Tid.to_int old_tid);
  Hashtbl.replace live (Tid.to_int new_tid) h.vid;
  (match Vidmap.get table.vidmap ~vid:h.vid with
  | Some entry when Tid.equal entry old_tid -> Vidmap.set table.vidmap ~vid:h.vid new_tid
  | Some entry ->
      let rec repair tid =
        if not (Tid.is_invalid tid) then
          match fetch_ro table tid with
          | None -> ()
          | Some succ_item ->
              let sh = Tuple.Sias.header succ_item in
              if Tid.equal sh.pred old_tid then begin
                Tuple.Sias.patch_pred succ_item new_tid;
                if not (Heapfile.update_in_place table.heap tid succ_item) then
                  failwith "Sias_engine.gc: pred patch failed";
                Walcodec.log_heap t.db ~xid:0 ~rel:table.rel ~kind:Wal.Update ~tid
                  ~item:succ_item
              end
              else repair sh.pred
      in
      repair entry
  | None -> ());
  t.relocated <- t.relocated + 1

let sweep t table live ~fill_threshold =
  let nblocks = Heapfile.nblocks table.heap in
  let tail = match Heapfile.last_block table.heap with Some b -> b | None -> -1 in
  let page_size = Bufpool.page_size t.db.Db.pool in
  for block = 0 to nblocks - 1 do
    if not (Heapfile.discarded table.heap block) then begin
      let slots = ref [] in
      Bufpool.with_page_ro t.db.Db.pool ~rel:table.rel ~block (fun page ->
          Sias_storage.Page.iter page (fun slot item ->
              slots := (Tid.make ~block ~slot, item) :: !slots));
      let live_slots, dead_slots =
        List.partition (fun (tid, _) -> Hashtbl.mem live (Tid.to_int tid)) !slots
      in
      if !slots <> [] then
        if not (Heapfile.sealed table.heap block) then
          List.iter
            (fun (tid, _) ->
              Heapfile.delete table.heap tid;
              Walcodec.log_heap t.db ~xid:0 ~rel:table.rel ~kind:Wal.Delete ~tid
                ~item:Bytes.empty;
              t.pruned <- t.pruned + 1)
            dead_slots
        else begin
          let live_bytes =
            List.fold_left (fun acc (_, item) -> acc + Bytes.length item) 0 live_slots
          in
          let movable =
            List.for_all
              (fun (_, item) ->
                not (locked t table (Tuple.Sias.header item).Tuple.Sias.vid))
              live_slots
          in
          if movable && block <> tail
             && float_of_int live_bytes /. float_of_int page_size < fill_threshold
          then begin
            List.iter (fun (tid, _) -> relocate_version t table live tid) live_slots;
            t.pruned <- t.pruned + List.length dead_slots;
            Heapfile.discard_block table.heap block;
            Walcodec.log_heap t.db ~xid:0 ~rel:table.rel ~kind:Wal.Trim
              ~tid:(Tid.make ~block ~slot:0) ~item:Bytes.empty;
            t.reclaimed <- t.reclaimed + 1
          end
        end
    end
  done

let gc_table t table ~fill_threshold =
  let live = mark_live t table in
  sweep t table live ~fill_threshold

let gc t = List.iter (fun table -> gc_table t table ~fill_threshold:0.55) t.tables

(* ------------------------------------------------------------------ *)
(* Recovery (paper Section 6): replay the heap, then reconstruct the
   VID_map and indexes from on-tuple information alone. *)

let discover_nblocks pool ~rel =
  let b = ref 0 in
  while Bufpool.on_disk pool ~rel ~block:!b || Bufpool.resident pool ~rel ~block:!b do
    incr b
  done;
  !b

let newer (c1, s1) (c2, s2) = c1 > c2 || (c1 = c2 && s1 > s2)

let recover t =
  Walcodec.replay_clog t.db;
  Walcodec.redo t.db ~since_lsn:0;
  List.iter
    (fun table ->
      Sias_chaos.Crashpoint.reach "recover.heap.restore";
      let nblocks = discover_nblocks t.db.Db.pool ~rel:table.rel in
      table.heap <-
        Heapfile.restore t.db.Db.pool ~rel:table.rel ~placement:Heapfile.Append_only ~nblocks;
      table.vidmap <-
        (if t.db.Db.vidmap_paged then
           Vidmap.create ~backing:(t.db.Db.pool, Db.alloc_rel t.db) ()
         else Vidmap.create ());
      table.pk_index <- Index.recover t.db table.pk_index;
      table.secondary <-
        Array.map (fun (col, idx) -> (col, Index.recover t.db idx)) table.secondary;
      (* paged indexes were replayed in place; only the array
         implementation is rebuilt below (stale entries of crashed
         transactions in a paged index are filtered by visibility) *)
      let rebuild = Index.needs_rebuild table.pk_index in
      (* newest committed version per VID becomes the entrypoint *)
      let best = Hashtbl.create 1024 in
      let max_vid = ref (-1) in
      Heapfile.iter table.heap (fun tid item ->
          let h = Tuple.Sias.header item in
          if h.vid > !max_vid then max_vid := h.vid;
          if Txn.status t.db.Db.txnmgr h.create = Txn.Committed then
            match Hashtbl.find_opt best h.vid with
            | Some (c, s, _) when not (newer (h.create, h.seq) (c, s)) -> ()
            | _ -> Hashtbl.replace best h.vid (h.create, h.seq, (tid, item)));
      for _ = 0 to !max_vid do
        ignore (Vidmap.alloc_vid table.vidmap)
      done;
      Hashtbl.iter
        (fun vid (_, _, (tid, item)) ->
          Vidmap.set table.vidmap ~vid tid;
          let h = Tuple.Sias.header item in
          if rebuild && not h.Tuple.Sias.tombstone then begin
            let row = Tuple.Sias.row item in
            Index.insert table.pk_index ~key:(pk_of table row) ~payload:vid;
            Array.iter
              (fun (col, index) ->
                Index.insert index ~key:(Value.to_key row.(col)) ~payload:vid)
              table.secondary
          end)
        best)
    t.tables

(* White-box invariant checker used by the property-test suite. Raises
   [Failure] with a description when an invariant is broken:
   - chain order: along every chain, (create, seq) strictly decreases;
   - vid integrity: every version on a chain carries the chain's VID;
   - entrypoint: the VID_map points at the newest non-aborted reachable
     version of its item;
   - index reachability: every live entrypoint's primary key resolves to
     its VID through the pk index. *)
let check_invariants t table =
  let mgr = t.db.Db.txnmgr in
  for vid = 0 to Vidmap.vid_count table.vidmap - 1 do
    match Vidmap.get table.vidmap ~vid with
    | None -> ()
    | Some entry ->
        let rec walk tid prev =
          if not (Tid.is_invalid tid) then
            match fetch table tid with
            | None -> () (* pruned tail *)
            | Some item ->
                let h = Tuple.Sias.header item in
                if h.vid <> vid then () (* foreign slot: chain ends *)
                else begin
                  (match prev with
                  | Some (pc, ps) ->
                      if (h.create, h.seq) >= (pc, ps) then
                        failwith
                          (Printf.sprintf
                             "chain order violated for vid %d: (%d,%d) under (%d,%d)" vid
                             h.create h.seq pc ps)
                  | None -> ());
                  walk h.pred (Some (h.create, h.seq))
                end
        in
        walk entry None;
        (match fetch table entry with
        | None -> failwith (Printf.sprintf "vid %d entrypoint dangles" vid)
        | Some item ->
            let h = Tuple.Sias.header item in
            if h.vid <> vid then
              failwith (Printf.sprintf "vid %d entrypoint aliases vid %d" vid h.vid);
            (* index reachability for live items *)
            if (not h.tombstone) && Txn.status mgr h.create = Txn.Committed then begin
              let pk = pk_of table (Tuple.Sias.row item) in
              if not (List.mem vid (Index.lookup table.pk_index ~key:pk)) then
                failwith (Printf.sprintf "vid %d unreachable through pk index" vid)
            end)
  done

let table_stats (_t : t) table =
  let total = ref 0 in
  Heapfile.iter table.heap (fun _ _ -> incr total);
  let live = ref 0 in
  Vidmap.iter table.vidmap (fun _vid tid ->
      match fetch table tid with
      | Some item when not (Tuple.Sias.header item).Tuple.Sias.tombstone -> incr live
      | _ -> ());
  {
    Engine.heap_blocks = Heapfile.live_blocks table.heap;
    live_versions = !live;
    total_versions = !total;
    avg_fill = Heapfile.avg_fill table.heap;
  }

let gc_stats t =
  { pruned_versions = t.pruned; relocated_versions = t.relocated; reclaimed_pages = t.reclaimed }

let chain_walk_stats t = (t.walks, t.visited)

let index_summary t =
  List.map
    (fun table ->
      ( table.tname,
        Index.summary table.pk_index
        :: Array.to_list (Array.map (fun (_, i) -> Index.summary i) table.secondary) ))
    t.tables

let table_vidmap _t table = table.vidmap
