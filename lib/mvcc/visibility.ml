module Txn = Sias_txn.Txn
module Snapshot = Sias_txn.Snapshot
module Heapfile = Sias_storage.Heapfile
module Bus = Sias_obs.Bus

let creator_visible mgr snap c = Txn.visible mgr snap c

let si_visible mgr snap (h : Tuple.Si.header) =
  creator_visible mgr snap h.xmin
  && not (h.xmax <> 0 && creator_visible mgr snap h.xmax)

let committed_below mgr ~horizon c = c < horizon && Txn.status mgr c = Txn.Committed

let si_dead_for_all mgr ~horizon (h : Tuple.Si.header) =
  Txn.status mgr h.xmin = Txn.Aborted
  || (h.xmax <> 0 && committed_below mgr ~horizon h.xmax)

let sias_dead_for_all mgr ~horizon ~create ~successor_create =
  Txn.status mgr create = Txn.Aborted
  ||
  match successor_create with
  | Some c' -> committed_below mgr ~horizon c'
  | None -> false

(* ---- hint-bit fast path ----

   Same predicates as above, but the creating/invalidating transaction's
   fate is first looked for in the tuple's own hint bits; on a miss the
   CLOG is consulted and the outcome cached back onto the tuple (when
   safe — see {!Sias_txn.Txn.durably_committed}). The slow predicates
   above are retained verbatim as the oracle the QCheck equivalence
   suite checks against. *)

let hint_hit db heap =
  if Db.observed db then Db.emit db (Bus.Hint_hit { rel = Heapfile.rel heap })

let hint_set db heap ~committed =
  if Db.observed db then
    Db.emit db (Bus.Hint_set { rel = Heapfile.rel heap; committed })

(* CLOG consultation with write-back of the answer: [off] is the item
   byte holding the hint bits, [shift] the bit position of the 2-bit
   hint value within it. *)
let resolve_and_hint db ~heap ~tid ~off ~shift ~xid =
  let mgr = db.Db.txnmgr in
  match Txn.status mgr xid with
  | Txn.In_progress -> false
  | Txn.Committed ->
      if Txn.durably_committed mgr xid then begin
        Heapfile.patch_hint heap tid ~off ~bits:(Tuple.Hint.committed lsl shift);
        hint_set db heap ~committed:true
      end;
      true
  | Txn.Aborted ->
      Heapfile.patch_hint heap tid ~off ~bits:(Tuple.Hint.aborted lsl shift);
      hint_set db heap ~committed:false;
      false

let creator_visible_fast db ~heap ~tid ~off ~shift snap ~hint ~xid =
  if xid = snap.Snapshot.xid then true
  else if hint = Tuple.Hint.aborted then begin
    hint_hit db heap;
    false
  end
  else if hint = Tuple.Hint.committed then begin
    hint_hit db heap;
    Snapshot.sees_xid snap xid
  end
  else Snapshot.sees_xid snap xid && resolve_and_hint db ~heap ~tid ~off ~shift ~xid

let si_visible_fast db ~heap ~tid snap (h : Tuple.Si.header) =
  creator_visible_fast db ~heap ~tid ~off:Tuple.Si.xmin_hint_byte ~shift:6 snap
    ~hint:h.xmin_hint ~xid:h.xmin
  && not
       (h.xmax <> 0
       && creator_visible_fast db ~heap ~tid ~off:Tuple.Si.xmax_hint_byte ~shift:6
            snap ~hint:h.xmax_hint ~xid:h.xmax)

let sias_creator_visible_fast db ~heap ~tid snap ~hint ~xid =
  creator_visible_fast db ~heap ~tid ~off:Tuple.Sias.create_hint_byte ~shift:6 snap
    ~hint ~xid
