(** Shared database context: clock, devices, buffer pool, WAL, transaction
    and lock managers, and the flush-policy daemon.

    Both engines operate against this context, so a comparison run differs
    only in engine logic and storage layout — never in substrate plumbing.
    The WAL lives on its own device (as in the paper's measurement setup,
    where the analyzed blocktrace is the data volume's). *)

type t = {
  clock : Sias_util.Simclock.t;
  device : Flashsim.Device.t;  (** data device *)
  pool : Sias_storage.Bufpool.t;
  wal : Sias_wal.Wal.t;
  commitpipe : Sias_wal.Commitpipe.t;
      (** how commits reach durability: per-commit fsync (default),
          group commit, or async commit with a WAL-writer trickle *)
  txnmgr : Sias_txn.Txn.mgr;
  lockmgr : Sias_txn.Lockmgr.t;
  bgwriter : Sias_storage.Bgwriter.t;
  cpu_op_s : float;  (** simulated CPU seconds charged per logical row op *)
  append_seal_interval : float option;
      (** the paper's t1 threshold: append tails are persisted (sealed)
          this often; [None] = t2, checkpoint-only *)
  vidmap_paged : bool;
      (** store VID_map buckets in buffer-pool pages (paper Section 4.1.3:
          large maps spill to disk through the ordinary buffer machinery) *)
  faults : Flashsim.Faultdev.t option;  (** shared fault plan, if any *)
  fpw_done : (int * int, unit) Hashtbl.t;
      (** (rel, block) pairs whose full-page image was already logged since
          the last checkpoint; cleared by the checkpointer so each page's
          first post-checkpoint modification logs a repair base image *)
  contention : Sias_txn.Contention.t;
      (** conflict policy, retry orchestrator and admission gate; engines
          route writer-lock acquisition through it *)
  bus : Sias_obs.Bus.t;
      (** the context's observability event bus: every layer below
          (device, buffer pool, WAL, background writer, contention) and
          above (engines, workload drivers) publishes into it; consumers
          — the SI checker, the metrics recorder, the span tracer —
          subscribe through {!Sias_obs.Bus.subscribe}. With no
          subscribers every publishing site is a single branch. *)
  mutable next_rel : int;
  mutable tickers : (unit -> unit) list;
      (** auxiliary periodic work run by {!tick} after the built-in
          daemons (e.g. a replication sender's ship loop); empty by
          default, so unaugmented contexts pay nothing *)
  mutable wal_logging : bool;
      (** hot-standby switch: when [false], {!commit} and {!abort} skip
          the WAL record and the commit pipeline (the transaction is
          still marked in the CLOG and its locks released). A standby's
          read-only transactions must not interleave local records into
          a log that is a verbatim copy of the primary's; promotion turns
          logging back on. [true] by default. *)
  wrote : (int, unit) Hashtbl.t;
      (** xids that logged at least one record — maintained only when the
          WAL has finite capacity, to tell writers from read-only
          transactions at commit once degraded *)
  mutable degraded : string option;
      (** loud read-only degraded mode: [Some reason] once emergency
          reclamation failed to make room for a record; writers raise
          {!Read_only}, readers proceed. Cleared by {!crash} (restart). *)
  mutable last_reclaim_lsn : int;
      (** WAL head when emergency reclamation last ran; a retry with no
          new records in between is skipped (checkpoint-record storms) *)
  isolation : Isolation.level;
      (** the context's isolation level; every registered engine composes
          with every level (the level lives here, not in the engine) *)
  ssi : Ssimgr.t option;
      (** serializability tracking state, present under [`Ssi]/[`Wsi]
          only; [None] under the default [`Si], so every hook is a
          single branch and SI runs stay byte-identical *)
  index_kind : [ `Array | `Paged ];
      (** which secondary/pk index implementation engines build through
          {!Index.create}: [`Array] — the node-image {!Sias_index.Btree}
          rebuilt from the heap at recovery (the historical, golden
          behavior) — or [`Paged], the WAL-logged
          {!Sias_index.Paged_btree} whose pages are crash-recovered in
          place *)
}

exception Read_only of { reason : string }
(** The database is in read-only degraded mode (out of WAL space even
    after emergency reclamation); the writing transaction was aborted. *)

exception Serialization_failure of { xid : int; reason : string }
(** The isolation level's commit rule (SSI dangerous-structure check or
    WSI read-write certification) rejected the transaction. It has
    already been aborted when this is raised — do {e not} abort it
    again (the {!Sias_txn.Contention.Wounded} contract). Engines
    translate this into [Error Serialization_failure]. *)

(** Events contributed by the MVCC layer. [Txn_snapshot] accompanies
    every [Sias_obs.Bus.Txn_begin]; [Row_read]/[Row_write] report
    primary-key row operations with the row payload ([None] = delete
    tombstone), published by all engines on success paths — the SI
    invariant checker consumes exactly these. *)
module Event : sig
  type Sias_obs.Bus.event +=
    | Txn_snapshot of { xid : int; snapshot : Sias_txn.Snapshot.t }
    | Row_read of { xid : int; rel : int; pk : int; row : Value.t array option }
    | Row_write of { xid : int; rel : int; pk : int; row : Value.t array option }
end

val create :
  ?bus:Sias_obs.Bus.t ->
  ?device:Flashsim.Device.t ->
  ?wal_device:Flashsim.Device.t ->
  ?buffer_pages:int ->
  ?flush_policy:Sias_storage.Bgwriter.policy ->
  ?checkpoint_interval:float ->
  ?cpu_op_s:float ->
  ?append_seal_interval:float ->
  ?os_cache_interval:float ->
  ?os_cache_pages:int ->
  ?vidmap_paged:bool ->
  ?faults:Flashsim.Faultdev.t ->
  ?contention:Sias_txn.Contention.settings ->
  ?commit_mode:Sias_wal.Commitpipe.mode ->
  ?wal_capacity_bytes:int ->
  ?isolation:Isolation.level ->
  ?bufpool_shards:int ->
  ?index:[ `Array | `Paged ] ->
  unit ->
  t
(** Defaults: a fresh X25-E-class SSD data device, an in-memory WAL sink,
    2048 buffer pages, checkpoint-only flushing every 30 simulated
    seconds, and 5 µs CPU per row operation. [faults] injects the same
    fault plan into the buffer pool (reads/writes of data pages) and the
    WAL (torn async flushes). [contention] selects the conflict policy
    and admission limits (default: no-wait, unlimited). [commit_mode]
    selects the commit pipeline (default: synchronous per-commit fsync,
    the historical behavior). [isolation] selects the isolation level
    (default [`Si], the historical snapshot-isolation behavior —
    byte-identical output; [`Ssi]/[`Wsi] add serializability tracking,
    see {!Ssimgr}). [bufpool_shards] (default 1) partitions the buffer
    pool's frame table for multi-domain access; the default single
    shard takes no locks and is byte-identical to the unsharded pool.
    [index] selects the index implementation engines build (default
    [`Array], byte-identical to the historical behavior; [`Paged]
    switches to the WAL-logged paged B+Tree — see the [index_kind]
    field). *)

val alloc_rel : t -> int
(** Relation ids place each relation in its own device region. *)

val now : t -> float

val begin_txn : ?read_only:bool -> ?deferrable:bool -> t -> Sias_txn.Txn.t
(** Under [`Ssi]/[`Wsi], [read_only] (and [deferrable], which implies
    the intent) lets a transaction that begins with no concurrent
    transactions run on a {e safe snapshot}: exempt from all
    serializability tracking, guaranteed never to abort. Both default
    to [false] and are ignored under [`Si]. *)

val commit : t -> Sias_txn.Txn.t -> unit
(** Append the commit record and route it through the commit pipeline —
    per-commit fsync by default, deferred group fsync or async ack under
    the other modes (the driver inspects
    {!Sias_wal.Commitpipe.last_ack} to learn which) — then mark
    committed and release locks. If the transaction was doomed by a
    wound-wait or deadlock-victim decision, it is aborted instead and
    {!Sias_txn.Contention.Wounded} is raised. Under [`Ssi]/[`Wsi] the
    level's commit rule runs first; on failure the transaction is
    aborted and {!Serialization_failure} is raised — callers must not
    abort it again. *)

val abort : t -> Sias_txn.Txn.t -> unit

val bus : t -> Sias_obs.Bus.t
(** The context's event bus, for subscribing consumers. *)

val observed : t -> bool
(** [true] when the bus has subscribers. Publishing sites check this
    before building an event, so observability costs one branch when
    off. *)

val emit : t -> Sias_obs.Bus.event -> unit
(** Publish an event on the context's bus. Call only behind an
    {!observed} check. *)

val charge_cpu : t -> int -> unit
(** [charge_cpu db n] advances the clock by [n] row-operation costs. *)

val tick : t -> unit
(** Run flush-policy work that has become due, then any registered
    auxiliary tickers. *)

val add_ticker : t -> (unit -> unit) -> unit
(** Register auxiliary periodic work to run on every {!tick}, after the
    commit pipeline and background writer (replication senders use this
    to ship newly flushed WAL). Tickers run in registration order. *)

val set_wal_logging : t -> bool -> unit
(** Flip the hot-standby switch (see the [wal_logging] field). *)

val crash : t -> unit
(** Single crash entry point: drop every layer's volatile state at once
    (buffer pool, unflushed WAL tail, commit pipeline, locks, active
    transactions, admission gate, FPW memory, degraded flag) exactly as a
    power cut would. Durable state — device sectors and the flushed WAL
    prefix — survives; call the engine's [recover] afterwards. *)

val reclaim_wal : t -> bool
(** Emergency WAL reclamation: checkpoint the pool, append a checkpoint
    record carrying the CLOG snapshot (exempt from the capacity check),
    flush synchronously, then truncate below it — clamped by retention
    holds. Returns whether any bytes were freed. No-op (returns [false])
    when no record was appended since the last reclamation. *)

val degraded : t -> string option
(** [Some reason] while in read-only degraded mode. *)

val append_wal :
  t -> xid:int -> rel:int -> kind:Sias_wal.Wal.kind -> payload:bytes -> int
(** WAL append with out-of-space handling: on [Wal.Out_of_space], run
    {!reclaim_wal} and retry once; if still full, enter degraded mode and
    raise {!Read_only}. Raises {!Read_only} immediately when already
    degraded. *)

val log_op :
  t ->
  xid:int ->
  rel:int ->
  kind:Sias_wal.Wal.kind ->
  payload:bytes ->
  int

(** {1 Isolation hooks}

    Engines call these from their read / write / scan paths; under the
    default [`Si] level each is a single branch. Engines cache
    {!ssi_tracking} at creation so hot loops pay one local-bool branch
    and SI output stays byte-identical. See {!Ssimgr} for semantics. *)

val isolation : t -> Isolation.level
val ssi_tracking : t -> bool
val ssimgr : t -> Ssimgr.t option
val note_read : t -> xid:int -> rel:int -> pk:int -> probe_writes:bool -> unit
val note_write : t -> xid:int -> rel:int -> pk:int -> unit
val note_scan : t -> xid:int -> rel:int -> probe_writes:bool -> unit
val note_lineage_writer : t -> reader:int -> writer:int -> unit
