(** The common index interface the engines build against.

    Every engine maintains its primary-key and secondary indexes through
    this one seam, so the two implementations are interchangeable per
    database context ({!Db.t}'s [index_kind]):

    - [`Array] — {!Sias_index.Btree}: node-image pages, a decoded-node
      cache, no WAL logging; recovery discards the tree and rebuilds it
      from the heap. The historical behavior, byte-identical to every
      golden output, and the determinism oracle for the paged path.
    - [`Paged] — {!Sias_index.Paged_btree}: slotted pages, decoded on
      every access, every structural change WAL-logged; recovery
      replays the pages in place and never touches the heap.

    The packing is a first-class module plus its value, so engine code
    is written once against {!module-type-S}. *)

module type S = sig
  type i

  val insert : i -> key:int -> payload:int -> unit
  val delete : i -> key:int -> payload:int -> bool
  val lookup : i -> key:int -> int list
  val range : i -> lo:int -> hi:int -> (int * int) list
  val mem : i -> key:int -> payload:int -> bool
  val entry_count : i -> int
  val height : i -> int
  val node_count : i -> int
  val iter : i -> (int -> int -> unit) -> unit
  val inserts : i -> int
  val splits : i -> int
  val merges : i -> int

  val needs_rebuild : bool
  (** [true] when recovery yields an empty tree the engine must refill
      from the heap; [false] when {!recover} restored the entries. *)
end

type t = Packed : (module S with type i = 'a) * 'a * int -> t
(** Implementation, value, and the relation id its pages live in. *)

val create : Db.t -> t
(** A fresh index on a freshly allocated relation, implementation chosen
    by the context's [index_kind]. Rel-allocation order is identical to
    the historical direct [Btree.create] call sites, so [`Array]
    contexts stay byte-identical. *)

val recover : Db.t -> t -> t
(** Post-crash replacement for an index handle, after
    {!Walcodec.redo}. [`Array]: a fresh empty tree on a {e newly
    allocated} relation (exactly the historical behavior — the caller
    must rebuild from the heap, see {!needs_rebuild}). [`Paged]:
    re-opened from its own replayed pages on the {e same} relation. *)

val needs_rebuild : t -> bool

val rel : t -> int
(** The relation id, for classifying device traffic as index traffic. *)

val insert : t -> key:int -> payload:int -> unit
val delete : t -> key:int -> payload:int -> bool
val lookup : t -> key:int -> int list
val range : t -> lo:int -> hi:int -> (int * int) list
val mem : t -> key:int -> payload:int -> bool
val entry_count : t -> int
val height : t -> int
val node_count : t -> int
val iter : t -> (int -> int -> unit) -> unit

type summary = {
  s_rel : int;
  s_entries : int;
  s_height : int;
  s_nodes : int;
  s_inserts : int;  (** cumulative entry insertions (deleted ones included) *)
  s_splits : int;
  s_merges : int;  (** always 0 for [`Array] (lazy deletion, no merging) *)
}

val summary : t -> summary
(** One stats snapshot, the unit of {!Engine.S.index_summary}. *)
