(** WAL payload encoding, redo, and page repair for heap operations.

    Heap changes are logged physiologically: the target TID plus the full
    item image (empty for slot deletes). Redo replays records in LSN order
    onto the surviving page images, guarded by the page LSN so pages that
    were flushed after a record was written are not double-applied.

    The first modification of a page after a checkpoint logs a {e full
    page write} — the whole post-change image — instead of the item
    record, so a data page torn by a crash mid-write can be rebuilt:
    install the latest image, replay the item records after it
    ({!repair_page}). Replay reads the log through
    [Wal.verified_from], so a torn WAL tail stops redo at the last intact
    record and mid-log corruption fails loudly instead of replaying past
    damage. *)

exception Redo_divergence of { rel : int; block : int; detail : string }
(** Redo replayed a verified record against a page whose content
    contradicts it (insert landed in the wrong slot, update no longer
    fits). The log and the page disagree: a redo-rule or append-discipline
    bug, raised loudly rather than replaying past it. *)

val encode : ?append_only:bool -> Sias_storage.Tid.t -> bytes -> bytes
val decode : bytes -> Sias_storage.Tid.t * bool * bytes

val encode_deltas : Sias_index.Paged_btree.delta list -> bytes
(** [Ix_batch] payload: one paged-index structural change as an atomic
    list of per-page slot deltas (the record CRC makes a multi-page
    split or merge all-or-nothing at replay). *)

val decode_deltas : bytes -> Sias_index.Paged_btree.delta list

val log_index : Db.t -> rel:int -> Sias_index.Paged_btree.delta list -> int
(** The WAL-first logger injected into {!Sias_index.Paged_btree}:
    full-page-write protect every touched pre-existing block on its
    first post-checkpoint modification, then append the change as one
    [Ix_batch] record and return its LSN. The tree applies the deltas
    only after this returns. *)

val log_heap :
  ?append_only:bool ->
  Db.t ->
  xid:int ->
  rel:int ->
  kind:Sias_wal.Wal.kind ->
  tid:Sias_storage.Tid.t ->
  item:bytes ->
  unit
(** Append the record and stamp the target page with its LSN; on the
    page's first post-checkpoint modification a [Full_page] image is
    logged instead (it subsumes the item record). *)

val redo : Db.t -> since_lsn:int -> unit
(** Replay verified heap and paged-index records with LSN >=
    [since_lsn]. Array indexes and VID_maps are not logged: engines
    rebuild them from the heap after redo; paged-index pages come back
    byte-exact from their [Ix_batch] deltas and full-page images.
    Raises [Wal.Corrupt_wal] on mid-log corruption. *)

val replay_clog : Db.t -> unit
(** Rebuild transaction statuses from commit/abort records over the whole
    retained log. Checkpoint records carry a CLOG snapshot taken when the
    log below them was reclaimed; the snapshot is restored first so
    verdicts of transactions whose final records were truncated away
    survive. Transactions lacking both a snapshot verdict and a final
    record are treated as aborted. *)

val repair_page : Db.t -> rel:int -> block:int -> Sias_storage.Page.t option
(** Rebuild a heap page from the WAL alone (latest full-page image plus
    subsequent records, or from scratch when the whole log is retained).
    [None] when the log cannot prove the page's content — blocks that
    were never WAL-logged, or whose base image was truncated away. Does
    not touch the buffer pool. *)

val install_repair : Db.t -> unit
(** Register {!repair_page} as the pool's corruption-repair handler, so a
    checksum failure on read-in triggers WAL-based reconstruction before
    giving up. Engines call this at creation. *)

val make_index : Db.t -> rel:int -> Sias_index.Paged_btree.t
(** A fresh paged B+Tree in relation [rel], wired to this context's
    buffer pool, WAL-first logger and event bus. Logs its own creation. *)

val restore_index : Db.t -> rel:int -> Sias_index.Paged_btree.t
(** Re-open a paged B+Tree from its pages after {!redo} replayed the
    log — never rebuilt from the heap. *)
