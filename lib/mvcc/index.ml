module Btree = Sias_index.Btree
module Pbt = Sias_index.Paged_btree

module type S = sig
  type i

  val insert : i -> key:int -> payload:int -> unit
  val delete : i -> key:int -> payload:int -> bool
  val lookup : i -> key:int -> int list
  val range : i -> lo:int -> hi:int -> (int * int) list
  val mem : i -> key:int -> payload:int -> bool
  val entry_count : i -> int
  val height : i -> int
  val node_count : i -> int
  val iter : i -> (int -> int -> unit) -> unit
  val inserts : i -> int
  val splits : i -> int
  val merges : i -> int
  val needs_rebuild : bool
end

module Array_impl : S with type i = Btree.t = struct
  type i = Btree.t

  let insert = Btree.insert
  let delete = Btree.delete
  let lookup = Btree.lookup
  let range = Btree.range
  let mem = Btree.mem
  let entry_count = Btree.entry_count
  let height = Btree.height
  let node_count = Btree.node_count
  let iter = Btree.iter
  let inserts t = (Btree.stats t).Btree.inserts
  let splits t = (Btree.stats t).Btree.splits
  let merges _ = 0
  let needs_rebuild = true
end

module Paged_impl : S with type i = Pbt.t = struct
  type i = Pbt.t

  let insert = Pbt.insert
  let delete = Pbt.delete
  let lookup = Pbt.lookup
  let range = Pbt.range
  let mem = Pbt.mem
  let entry_count = Pbt.entry_count
  let height = Pbt.height
  let node_count = Pbt.node_count
  let iter = Pbt.iter
  let inserts t = (Pbt.stats t).Pbt.inserts
  let splits t = (Pbt.stats t).Pbt.splits
  let merges t = (Pbt.stats t).Pbt.merges
  let needs_rebuild = false
end

type t = Packed : (module S with type i = 'a) * 'a * int -> t

let create db =
  let rel = Db.alloc_rel db in
  match db.Db.index_kind with
  | `Array -> Packed ((module Array_impl), Btree.create db.Db.pool ~rel, rel)
  | `Paged -> Packed ((module Paged_impl), Walcodec.make_index db ~rel, rel)

let recover db (Packed (_, _, old_rel)) =
  match db.Db.index_kind with
  | `Array ->
      (* the historical path verbatim: a fresh tree on a fresh relation,
         refilled from the heap by the caller *)
      let rel = Db.alloc_rel db in
      Packed ((module Array_impl), Btree.create db.Db.pool ~rel, rel)
  | `Paged ->
      Packed ((module Paged_impl), Walcodec.restore_index db ~rel:old_rel, old_rel)

let needs_rebuild (Packed ((module M), _, _)) = M.needs_rebuild
let rel (Packed (_, _, rel)) = rel
let insert (Packed ((module M), i, _)) ~key ~payload = M.insert i ~key ~payload
let delete (Packed ((module M), i, _)) ~key ~payload = M.delete i ~key ~payload
let lookup (Packed ((module M), i, _)) ~key = M.lookup i ~key
let range (Packed ((module M), i, _)) ~lo ~hi = M.range i ~lo ~hi
let mem (Packed ((module M), i, _)) ~key ~payload = M.mem i ~key ~payload
let entry_count (Packed ((module M), i, _)) = M.entry_count i
let height (Packed ((module M), i, _)) = M.height i
let node_count (Packed ((module M), i, _)) = M.node_count i
let iter (Packed ((module M), i, _)) f = M.iter i f

type summary = {
  s_rel : int;
  s_entries : int;
  s_height : int;
  s_nodes : int;
  s_inserts : int;
  s_splits : int;
  s_merges : int;
}

let summary (Packed ((module M), i, rel)) =
  {
    s_rel = rel;
    s_entries = M.entry_count i;
    s_height = M.height i;
    s_nodes = M.node_count i;
    s_inserts = M.inserts i;
    s_splits = M.splits i;
    s_merges = M.merges i;
  }
