(** Online snapshot-isolation invariant checker.

    An always-on (when enabled) runtime oracle in the spirit of black-box
    SI checking: every engine reports begin/read/write/commit/abort
    events for primary-key operations, and the checker verifies two
    invariants against its own logical version history:

    - {b Snapshot reads}: a primary-key read observes exactly the newest
      version committed before the reader's snapshot (or the reader's own
      pending write), never a torn, lost or future version.
    - {b First-committer-wins}: no two transactions with overlapping
      lifetimes both commit a write to the same data item.

    It is also an online {e serializability} checker: from the same
    event stream it maintains a dependency graph over committed
    transactions — wr (read a version), ww (overwrote a version) and rw
    (read a version a later commit overwrote: the antidependency) edges
    — and reports a transaction that closes a cycle at its own commit.
    Cycles are counted separately from SI violations
    ({!cycle_count}/{!cycles}): a write-skew cycle is {e legal} under
    plain SI, so the bench's isolation ablation reads the cycle count as
    the anomaly rate while {!violation_count} stays the SI oracle. The
    graph is reset whenever the active set drains (a transaction that
    committed while nothing overlapped it can never join a later cycle),
    so it stays small on well-behaved workloads.

    The checker is engine-agnostic: it keys items by (relation id,
    primary key) and compares row digests, so it runs identically under
    SI, SI-CV, SIAS-Chains and SIAS-V. Predicate operations (scans,
    secondary lookups, ranges) are not checked. The history is logical
    and survives engine GC, but not [recover] — enable the checker on
    live runs only. *)

type t

val create : unit -> t

val attach : Sias_obs.Bus.t -> t
(** Create a checker and subscribe it to a context's event bus
    ({!Db.bus}): it consumes {!Db.Event.Txn_snapshot},
    {!Db.Event.Row_read}, {!Db.Event.Row_write} and the generic
    commit/abort events. Subscribe before running work that should be
    checked — events published earlier are not replayed. *)

val on_begin : t -> xid:int -> snapshot:Sias_txn.Snapshot.t -> unit
val on_read : t -> xid:int -> rel:int -> pk:int -> row:Value.t array option -> unit

val on_write : t -> xid:int -> rel:int -> pk:int -> row:Value.t array option -> unit
(** [row = None] records a delete (tombstone). Call only on success. *)

val on_commit : t -> xid:int -> unit
val on_abort : t -> xid:int -> unit

val violation_count : t -> int
val violations : t -> string list
(** Most recent first; the list is capped, the count is not. *)

val cycle_count : t -> int
(** Serializability cycles observed among committed transactions. Kept
    separate from {!violation_count}: a cycle (e.g. write skew) is legal
    under plain SI and only counts as an anomaly for the isolation
    ablation; under [`Ssi]/[`Wsi] it must be zero. *)

val cycles : t -> string list
(** Most recent first; capped like {!violations}. *)

val reads_checked : t -> int
val commits_checked : t -> int

val report : t -> string
(** One-line summary, e.g. ["si-checker: OK (1234 reads, 56 commits)"].. *)

val serializability_report : t -> string
(** One-line cycle summary, e.g.
    ["serializability: OK (56 commits checked, no cycles)"]. *)
