(** Version visibility (paper Algorithm 1, [isVisible]).

    A version created by [c] is visible to snapshot [s] iff [c] is [s]'s
    own transaction, or [c] committed before [s] started ([c <= xmax] and
    [c] not concurrent and [c] committed). Under SI a visible creator is
    not enough: the version must also not be invalidated by a transaction
    visible to [s]. Under SIAS there is no invalidation timestamp — the
    first visible version found walking the chain from the entrypoint is
    the answer, because chain order is reverse-chronological. *)

val creator_visible : Sias_txn.Txn.mgr -> Sias_txn.Snapshot.t -> int -> bool
(** The shared creation-side predicate. *)

val si_visible :
  Sias_txn.Txn.mgr -> Sias_txn.Snapshot.t -> Tuple.Si.header -> bool
(** Creator visible and not invalidated by a visible transaction. *)

val si_dead_for_all : Sias_txn.Txn.mgr -> horizon:int -> Tuple.Si.header -> bool
(** No current or future snapshot can see the version — the vacuum
    criterion: aborted creator, or invalidator committed below the
    {!Sias_txn.Txn.horizon}. *)

val sias_dead_for_all :
  Sias_txn.Txn.mgr ->
  horizon:int ->
  create:int ->
  successor_create:int option ->
  bool
(** SIAS chain-pruning criterion for a version created at [create] whose
    nearest {e committed} successor in the chain (if any) was created at
    [successor_create]: the version is dead when its creator aborted, or
    when that successor is visible to every active transaction. *)

(** {2 Hint-bit fast path}

    Same predicates, but the transaction's fate is read from the tuple's
    hint bits when present; on a miss the CLOG is consulted and the
    answer cached back onto the tuple (committed hints only once the
    commit record is durable). The plain predicates above are the
    retained slow-path oracle — the fast path must always agree with
    them, which the QCheck equivalence suite enforces. *)

val creator_visible_fast :
  Db.t ->
  heap:Sias_storage.Heapfile.t ->
  tid:Sias_storage.Tid.t ->
  off:int ->
  shift:int ->
  Sias_txn.Snapshot.t ->
  hint:int ->
  xid:int ->
  bool
(** [off] is the item byte holding the hint bits for the timestamp being
    checked, [shift] the bit position of the 2-bit hint value in it. *)

val si_visible_fast :
  Db.t ->
  heap:Sias_storage.Heapfile.t ->
  tid:Sias_storage.Tid.t ->
  Sias_txn.Snapshot.t ->
  Tuple.Si.header ->
  bool

val sias_creator_visible_fast :
  Db.t ->
  heap:Sias_storage.Heapfile.t ->
  tid:Sias_storage.Tid.t ->
  Sias_txn.Snapshot.t ->
  hint:int ->
  xid:int ->
  bool
