module Snapshot = Sias_txn.Snapshot

(* A digest stands in for the full row image; [None] is a tombstone (or
   item absence). hash_param with wide limits so that rows differing only
   in late columns still digest apart. *)
type digest = int option

let digest_of_row : Value.t array option -> digest = function
  | None -> None
  | Some row -> Some (Hashtbl.hash_param 256 1024 row)

type pending = {
  snap : Snapshot.t;
  writes : (int * int, digest) Hashtbl.t;  (* (rel, pk) -> latest pending digest *)
  mutable rfrom : ((int * int) * int) list;
      (* (key, creator xid of the version read); 0 = initial state. Feeds
         the wr/rw edges of the serializability graph at commit. *)
}

(* Committed versions per item, newest first. Entries are pushed in
   commit order, so the versions invisible to a snapshot (committed after
   it was taken) always form a prefix of the list. *)
type entry = { e_xid : int; e_digest : digest }

type t = {
  active : (int, pending) Hashtbl.t;
  history : ((int * int), entry list) Hashtbl.t;
  (* Serializability graph over committed transactions: wr (read the
     version), ww (overwrote the version) and rw (read a version some
     later commit overwrote — the antidependency) edges, built at each
     commit from [rfrom], [readers] and the history. A transaction on a
     cycle at its own commit makes the committed schedule
     non-serializable. Reset whenever the active set drains: a
     transaction that committed while nothing overlapped it can never
     join a future cycle. *)
  readers : (int * int, (int * int) list) Hashtbl.t;
      (* key -> (committed reader, creator of the version it read) *)
  succ : (int, int list ref) Hashtbl.t;
  mutable reads_checked : int;
  mutable commits_checked : int;
  mutable violation_count : int;
  mutable violations : string list;  (* newest first, capped *)
  mutable cycle_count : int;
  mutable cycles : string list;  (* newest first, capped *)
}

let max_kept_violations = 32

let create () =
  {
    active = Hashtbl.create 64;
    history = Hashtbl.create 4096;
    readers = Hashtbl.create 4096;
    succ = Hashtbl.create 256;
    reads_checked = 0;
    commits_checked = 0;
    violation_count = 0;
    violations = [];
    cycle_count = 0;
    cycles = [];
  }

let violation t msg =
  t.violation_count <- t.violation_count + 1;
  if List.length t.violations < max_kept_violations then
    t.violations <- msg :: t.violations

let on_begin t ~xid ~snapshot =
  Hashtbl.replace t.active xid
    { snap = snapshot; writes = Hashtbl.create 8; rfrom = [] }

let hist t key = Option.value ~default:[] (Hashtbl.find_opt t.history key)

(* First entry visible to [snap]: skip the invisible prefix (versions
   committed after the snapshot was taken). *)
let rec visible_entry snap = function
  | [] -> None
  | e :: rest ->
      if Snapshot.sees_xid snap e.e_xid then Some e else visible_entry snap rest

let on_read t ~xid ~rel ~pk ~row =
  match Hashtbl.find_opt t.active xid with
  | None -> ()
  | Some p ->
      t.reads_checked <- t.reads_checked + 1;
      let key = (rel, pk) in
      let expected, creator =
        match Hashtbl.find_opt p.writes key with
        | Some d -> (d, xid)
        | None -> (
            match visible_entry p.snap (hist t key) with
            | Some e -> (e.e_digest, e.e_xid)
            | None -> (None, 0))
      in
      if not (List.mem_assoc key p.rfrom) then
        p.rfrom <- (key, creator) :: p.rfrom;
      let got = digest_of_row row in
      if got <> expected then
        violation t
          (Printf.sprintf
             "snapshot-read violation: txn %d read (%d,%d) as %s, expected %s" xid rel pk
             (match got with Some _ -> "a row" | None -> "absent")
             (match expected with Some _ -> "another row" | None -> "absent"))

let on_write t ~xid ~rel ~pk ~row =
  match Hashtbl.find_opt t.active xid with
  | None -> ()
  | Some p -> Hashtbl.replace p.writes (rel, pk) (digest_of_row row)

(* A committed version invisible to T's snapshot was committed after T
   began, i.e. by a transaction whose lifetime overlapped T's. Both
   writing the same item breaks first-committer-wins. Invisible entries
   form the history prefix, so the scan stops at the first visible one. *)
let rec overlapping_writer snap ~self = function
  | [] -> None
  | e :: rest ->
      if Snapshot.sees_xid snap e.e_xid then None
      else if e.e_xid <> self then Some e.e_xid
      else overlapping_writer snap ~self rest

(* ---------------- serializability graph ---------------- *)

let add_edge t a b =
  if a <> b && a <> 0 && b <> 0 then
    match Hashtbl.find_opt t.succ a with
    | Some l -> if not (List.mem b !l) then l := b :: !l
    | None -> Hashtbl.replace t.succ a (ref [ b ])

(* Versions committed after [snap] was taken — each one overwrote
   something the snapshot could read, so a reader under [snap] has an rw
   antidependency into its creator. Always the history prefix. *)
let rec invisible_prefix snap = function
  | [] -> []
  | e :: rest ->
      if Snapshot.sees_xid snap e.e_xid then []
      else e.e_xid :: invisible_prefix snap rest

(* Is there a nonempty path [src] -> ... -> [dst]? Depth-first over the
   committed-transaction graph (small by construction: it is reset every
   time the active set drains). *)
let reaches t ~src ~dst =
  let seen = Hashtbl.create 16 in
  let rec go x =
    x = dst
    || (not (Hashtbl.mem seen x))
       &&
       (Hashtbl.add seen x ();
        match Hashtbl.find_opt t.succ x with
        | Some l -> List.exists go !l
        | None -> false)
  in
  match Hashtbl.find_opt t.succ src with
  | Some l -> List.exists go !l
  | None -> false

let record_cycle t ~xid =
  t.cycle_count <- t.cycle_count + 1;
  if List.length t.cycles < max_kept_violations then
    t.cycles <-
      Printf.sprintf
        "serializability cycle: committed txn %d reaches itself through \
         wr/ww/rw dependencies"
        xid
      :: t.cycles

(* Dropping the graph once nothing is active is sound: an edge into a
   transaction requires a transaction whose snapshot predates its commit,
   so after a drain no pre-drain transaction can gain new in-edges — any
   future cycle lives entirely among post-drain transactions. *)
let maybe_reset_graph t =
  if Hashtbl.length t.active = 0 then begin
    Hashtbl.reset t.succ;
    Hashtbl.reset t.readers
  end

let on_commit t ~xid =
  match Hashtbl.find_opt t.active xid with
  | None -> ()
  | Some p ->
      t.commits_checked <- t.commits_checked + 1;
      (* read-side edges: wr from the version's creator, rw into every
         overlapping writer that overwrote what we read *)
      List.iter
        (fun (key, c) ->
          let prev = Option.value ~default:[] (Hashtbl.find_opt t.readers key) in
          Hashtbl.replace t.readers key ((xid, c) :: prev);
          if c <> xid then begin
            add_edge t c xid;
            List.iter
              (fun w -> if w <> c then add_edge t xid w)
              (invisible_prefix p.snap (hist t key))
          end)
        p.rfrom;
      Hashtbl.iter
        (fun ((rel, pk) as key) d ->
          let h = hist t key in
          (match overlapping_writer p.snap ~self:xid h with
          | Some other ->
              violation t
                (Printf.sprintf
                   "first-committer-wins violation: txns %d and %d both committed \
                    writes to (%d,%d)"
                   xid other rel pk)
          | None -> ());
          (* write-side edges: ww from the version we supersede, rw from
             every committed reader of the superseded versions *)
          (match h with e :: _ -> add_edge t e.e_xid xid | [] -> ());
          List.iter
            (fun (r, _) -> add_edge t r xid)
            (Option.value ~default:[] (Hashtbl.find_opt t.readers key));
          Hashtbl.replace t.history key ({ e_xid = xid; e_digest = d } :: h))
        p.writes;
      if reaches t ~src:xid ~dst:xid then record_cycle t ~xid;
      Hashtbl.remove t.active xid;
      maybe_reset_graph t

let on_abort t ~xid =
  Hashtbl.remove t.active xid;
  maybe_reset_graph t

let violation_count t = t.violation_count
let violations t = t.violations
let cycle_count t = t.cycle_count
let cycles t = t.cycles
let reads_checked t = t.reads_checked
let commits_checked t = t.commits_checked

let serializability_report t =
  if t.cycle_count = 0 then
    Printf.sprintf "serializability: OK (%d commits checked, no cycles)"
      t.commits_checked
  else
    Printf.sprintf "serializability: %d CYCLE(S) among %d commits; first: %s"
      t.cycle_count t.commits_checked
      (match List.rev t.cycles with c :: _ -> c | [] -> "?")

let report t =
  if t.violation_count = 0 then
    Printf.sprintf "si-checker: OK (%d reads, %d commits checked)" t.reads_checked
      t.commits_checked
  else
    Printf.sprintf "si-checker: %d VIOLATION(S) (%d reads, %d commits checked); first: %s"
      t.violation_count t.reads_checked t.commits_checked
      (match List.rev t.violations with v :: _ -> v | [] -> "?")

(* Bus subscription: the checker is an ordinary observability consumer.
   The MVCC layer publishes Txn_snapshot alongside every Txn_begin and
   Row_read/Row_write from each engine's success paths, which is exactly
   the event stream the checker's callbacks need. *)
let attach bus =
  let t = create () in
  Sias_obs.Bus.subscribe bus (function
    | Db.Event.Txn_snapshot { xid; snapshot } -> on_begin t ~xid ~snapshot
    | Db.Event.Row_read { xid; rel; pk; row } -> on_read t ~xid ~rel ~pk ~row
    | Db.Event.Row_write { xid; rel; pk; row } -> on_write t ~xid ~rel ~pk ~row
    | Sias_obs.Bus.Txn_commit { xid } -> on_commit t ~xid
    | Sias_obs.Bus.Txn_abort { xid } -> on_abort t ~xid
    | _ -> ());
  t
