module Snapshot = Sias_txn.Snapshot

(* A digest stands in for the full row image; [None] is a tombstone (or
   item absence). hash_param with wide limits so that rows differing only
   in late columns still digest apart. *)
type digest = int option

let digest_of_row : Value.t array option -> digest = function
  | None -> None
  | Some row -> Some (Hashtbl.hash_param 256 1024 row)

type pending = {
  snap : Snapshot.t;
  writes : (int * int, digest) Hashtbl.t;  (* (rel, pk) -> latest pending digest *)
}

(* Committed versions per item, newest first. Entries are pushed in
   commit order, so the versions invisible to a snapshot (committed after
   it was taken) always form a prefix of the list. *)
type entry = { e_xid : int; e_digest : digest }

type t = {
  active : (int, pending) Hashtbl.t;
  history : ((int * int), entry list) Hashtbl.t;
  mutable reads_checked : int;
  mutable commits_checked : int;
  mutable violation_count : int;
  mutable violations : string list;  (* newest first, capped *)
}

let max_kept_violations = 32

let create () =
  {
    active = Hashtbl.create 64;
    history = Hashtbl.create 4096;
    reads_checked = 0;
    commits_checked = 0;
    violation_count = 0;
    violations = [];
  }

let violation t msg =
  t.violation_count <- t.violation_count + 1;
  if List.length t.violations < max_kept_violations then
    t.violations <- msg :: t.violations

let on_begin t ~xid ~snapshot =
  Hashtbl.replace t.active xid { snap = snapshot; writes = Hashtbl.create 8 }

let hist t key = Option.value ~default:[] (Hashtbl.find_opt t.history key)

(* First entry visible to [snap]: skip the invisible prefix (versions
   committed after the snapshot was taken). *)
let rec visible_entry snap = function
  | [] -> None
  | e :: rest ->
      if Snapshot.sees_xid snap e.e_xid then Some e else visible_entry snap rest

let on_read t ~xid ~rel ~pk ~row =
  match Hashtbl.find_opt t.active xid with
  | None -> ()
  | Some p ->
      t.reads_checked <- t.reads_checked + 1;
      let key = (rel, pk) in
      let expected =
        match Hashtbl.find_opt p.writes key with
        | Some d -> d
        | None -> (
            match visible_entry p.snap (hist t key) with
            | Some e -> e.e_digest
            | None -> None)
      in
      let got = digest_of_row row in
      if got <> expected then
        violation t
          (Printf.sprintf
             "snapshot-read violation: txn %d read (%d,%d) as %s, expected %s" xid rel pk
             (match got with Some _ -> "a row" | None -> "absent")
             (match expected with Some _ -> "another row" | None -> "absent"))

let on_write t ~xid ~rel ~pk ~row =
  match Hashtbl.find_opt t.active xid with
  | None -> ()
  | Some p -> Hashtbl.replace p.writes (rel, pk) (digest_of_row row)

(* A committed version invisible to T's snapshot was committed after T
   began, i.e. by a transaction whose lifetime overlapped T's. Both
   writing the same item breaks first-committer-wins. Invisible entries
   form the history prefix, so the scan stops at the first visible one. *)
let rec overlapping_writer snap ~self = function
  | [] -> None
  | e :: rest ->
      if Snapshot.sees_xid snap e.e_xid then None
      else if e.e_xid <> self then Some e.e_xid
      else overlapping_writer snap ~self rest

let on_commit t ~xid =
  match Hashtbl.find_opt t.active xid with
  | None -> ()
  | Some p ->
      t.commits_checked <- t.commits_checked + 1;
      Hashtbl.iter
        (fun ((rel, pk) as key) d ->
          let h = hist t key in
          (match overlapping_writer p.snap ~self:xid h with
          | Some other ->
              violation t
                (Printf.sprintf
                   "first-committer-wins violation: txns %d and %d both committed \
                    writes to (%d,%d)"
                   xid other rel pk)
          | None -> ());
          Hashtbl.replace t.history key ({ e_xid = xid; e_digest = d } :: h))
        p.writes;
      Hashtbl.remove t.active xid

let on_abort t ~xid = Hashtbl.remove t.active xid

let violation_count t = t.violation_count
let violations t = t.violations
let reads_checked t = t.reads_checked
let commits_checked t = t.commits_checked

let report t =
  if t.violation_count = 0 then
    Printf.sprintf "si-checker: OK (%d reads, %d commits checked)" t.reads_checked
      t.commits_checked
  else
    Printf.sprintf "si-checker: %d VIOLATION(S) (%d reads, %d commits checked); first: %s"
      t.violation_count t.reads_checked t.commits_checked
      (match List.rev t.violations with v :: _ -> v | [] -> "?")

(* Bus subscription: the checker is an ordinary observability consumer.
   The MVCC layer publishes Txn_snapshot alongside every Txn_begin and
   Row_read/Row_write from each engine's success paths, which is exactly
   the event stream the checker's callbacks need. *)
let attach bus =
  let t = create () in
  Sias_obs.Bus.subscribe bus (function
    | Db.Event.Txn_snapshot { xid; snapshot } -> on_begin t ~xid ~snapshot
    | Db.Event.Row_read { xid; rel; pk; row } -> on_read t ~xid ~rel ~pk ~row
    | Db.Event.Row_write { xid; rel; pk; row } -> on_write t ~xid ~rel ~pk ~row
    | Sias_obs.Bus.Txn_commit { xid } -> on_commit t ~xid
    | Sias_obs.Bus.Txn_abort { xid } -> on_abort t ~xid
    | _ -> ());
  t
