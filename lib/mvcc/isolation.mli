(** Isolation levels as a first-class, string-keyed axis.

    Every registered engine ({!Engine.register}) composes with every
    level: the level lives in the shared {!Db} context, not in the
    engine, so [si|si-cv|sias|sias-v] x [si|ssi|wsi] is a full matrix.

    - [`Si]  — plain snapshot isolation (the historical default).
    - [`Ssi] — PostgreSQL-style serializable snapshot isolation (Ports &
      Grittner): SIREAD locks, rw-antidependency tracking, pivot aborts.
    - [`Wsi] — write-snapshot isolation ("A Critique of Snapshot
      Isolation"): commit-time read-write certification instead of
      write-write conflicts. *)

type level = [ `Si | `Ssi | `Wsi ]

val of_string : string -> level option
(** Look up by key or alias ([snapshot], [serializable],
    [write-snapshot]). *)

val of_string_exn : string -> level
(** Like {!of_string} but raises [Invalid_argument] with a message
    listing the known keys and aliases — the same friendly-unknown-key
    contract as {!Engine.resolve_exn}. *)

val to_string : level -> string
(** Canonical key ([si], [ssi], [wsi]). *)

val display : level -> string
(** Human-readable name used in reports. *)

val keys : unit -> string list
(** Canonical keys, in registration order. *)

val known_keys_hint : unit -> string
(** Human-readable enumeration of keys with their aliases — every
    unknown-level error message quotes this one string. *)
