(** On-tuple version headers (paper Section 4.1.1).

    Both engines store a fixed-size binary header in front of the row
    payload. Fixed size matters: the header fields that are ever modified
    in place (SI's invalidation timestamp, SIAS's predecessor pointer at
    GC time) patch bytes without changing the item length, so
    {!Sias_storage.Page.update} always succeeds.

    SI header — creation ([xmin]) and invalidation ([xmax]) transaction
    timestamps, as in classical Snapshot Isolation: invalidating a version
    is an in-place write of [xmax].

    SIAS header — creation timestamp, the data item's VID, the physical
    TID of the predecessor version, and a tombstone flag for deletes.
    There is explicitly {e no} invalidation field: creating a successor
    implicitly invalidates, and the successor's existence encodes it.

    Hint bits: the top two bits of each timestamp field cache the
    creating/invalidating transaction's final fate (PostgreSQL-style), so
    steady-state visibility checks skip the CLOG. They live in otherwise
    unused bits, keeping header sizes — and page fill — unchanged.
    Decoders mask them off; [header] exposes them as 2-bit hint values. *)

module Hint : sig
  val none : int
  val committed : int
  val aborted : int

  val committed_bit : int
  (** Byte mask (0x40) for "known committed" in a timestamp MSB. *)

  val aborted_bit : int
  (** Byte mask (0x80) for "known aborted" in a timestamp MSB. *)

  val bits_of : int -> int
  (** Byte mask for a 2-bit hint value ([bits_of committed = 0x40]). *)
end

module Si : sig
  type header = { xmin : int; xmax : int; xmin_hint : int; xmax_hint : int }

  val header_size : int

  val xmin_hint_byte : int
  (** Item offset of the byte holding xmin's hint bits. *)

  val xmax_hint_byte : int
  (** Item offset of the byte holding xmax's hint bits. *)

  val encode : xmin:int -> row:Value.t array -> bytes
  (** A fresh version: [xmax = 0] (not invalidated), no hints. *)

  val header : bytes -> header
  val row : bytes -> Value.t array

  val patch_xmax : bytes -> int -> unit
  (** In-place invalidation: the small write SI performs on the old
      version. Mutates the given item image; clears any xmax hint. *)

  val clear_xmax : bytes -> unit
  (** Undo an invalidation (aborting updater cleanup). *)
end

module Sias : sig
  type header = {
    create : int;  (** creating transaction's id *)
    seq : int;  (** command sequence within the creating transaction *)
    vid : int;
    pred : Sias_storage.Tid.t;  (** [Tid.invalid] when no predecessor *)
    tombstone : bool;
    create_hint : int;  (** 2-bit hint for [create]'s fate *)
  }

  val header_size : int

  val create_hint_byte : int
  (** Item offset of the byte holding [create]'s hint bits. *)

  val encode :
    create:int ->
    seq:int ->
    vid:int ->
    pred:Sias_storage.Tid.t ->
    tombstone:bool ->
    row:Value.t array ->
    bytes

  val header : bytes -> header
  val row : bytes -> Value.t array

  val patch_pred : bytes -> Sias_storage.Tid.t -> unit
  (** Garbage collection relocates a predecessor and must repoint its
      successor's chain pointer; chain truncation points it at
      [Tid.invalid]. *)
end
