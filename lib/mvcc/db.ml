module Simclock = Sias_util.Simclock
module Device = Flashsim.Device
module Bufpool = Sias_storage.Bufpool
module Bgwriter = Sias_storage.Bgwriter
module Wal = Sias_wal.Wal
module Txn = Sias_txn.Txn
module Lockmgr = Sias_txn.Lockmgr
module Contention = Sias_txn.Contention

type t = {
  clock : Simclock.t;
  device : Device.t;
  pool : Bufpool.t;
  wal : Wal.t;
  txnmgr : Txn.mgr;
  lockmgr : Lockmgr.t;
  bgwriter : Bgwriter.t;
  cpu_op_s : float;
  append_seal_interval : float option;
  vidmap_paged : bool;
  faults : Flashsim.Faultdev.t option;
  fpw_done : (int * int, unit) Hashtbl.t;
  contention : Contention.t;
  mutable si_checker : Sichecker.t option;
  mutable next_rel : int;
}

let create ?device ?wal_device ?(buffer_pages = 2048)
    ?(flush_policy = Bgwriter.T2_checkpoint_only) ?(checkpoint_interval = 30.0)
    ?(cpu_op_s = 5e-6) ?append_seal_interval ?os_cache_interval ?os_cache_pages ?(vidmap_paged = false) ?faults
    ?(contention = Contention.default_settings) () =
  let clock = Simclock.create () in
  let device =
    match device with Some d -> d | None -> Device.ssd_x25e ~name:"data-ssd" ()
  in
  let pool = Bufpool.create ~device ~clock ~capacity_pages:buffer_pages ?os_cache_interval ?os_cache_pages ?faults () in
  let wal = Wal.create ?device:wal_device ?faults ~clock () in
  let fpw_done = Hashtbl.create 512 in
  let bgwriter =
    Bgwriter.create pool ~clock ~policy:flush_policy ~checkpoint_interval
      ~on_checkpoint:(fun () -> Hashtbl.reset fpw_done)
      ()
  in
  let lockmgr = Lockmgr.create () in
  {
    clock;
    device;
    pool;
    wal;
    txnmgr = Txn.create_mgr ();
    lockmgr;
    bgwriter;
    cpu_op_s;
    append_seal_interval;
    vidmap_paged;
    faults;
    fpw_done;
    contention = Contention.create ~settings:contention ~clock ~lockmgr ();
    si_checker = None;
    next_rel = 0;
  }

let alloc_rel t =
  let r = t.next_rel in
  t.next_rel <- r + 1;
  r

let now t = Simclock.now t.clock

let enable_si_checker t =
  match t.si_checker with
  | Some c -> c
  | None ->
      let c = Sichecker.create () in
      t.si_checker <- Some c;
      c

let observe t f = match t.si_checker with Some c -> f c | None -> ()

let begin_txn t =
  let txn = Txn.begin_txn ~now:(now t) t.txnmgr in
  observe t (fun c -> Sichecker.on_begin c ~xid:txn.Txn.xid ~snapshot:txn.Txn.snapshot);
  txn

let abort t txn =
  let _ = Wal.append t.wal ~xid:txn.Txn.xid ~rel:(-1) ~kind:Wal.Abort ~payload:Bytes.empty in
  Txn.abort t.txnmgr txn;
  Lockmgr.release_all t.lockmgr ~xid:txn.Txn.xid;
  Contention.finished t.contention ~xid:txn.Txn.xid;
  observe t (fun c -> Sichecker.on_abort c ~xid:txn.Txn.xid)

let commit t txn =
  if Contention.is_doomed t.contention ~xid:txn.Txn.xid then begin
    (* wound-wait / deadlock victim reaching commit: it loses *)
    Contention.note_victim_abort t.contention;
    abort t txn;
    raise (Contention.Wounded txn.Txn.xid)
  end;
  let _ = Wal.append t.wal ~xid:txn.Txn.xid ~rel:(-1) ~kind:Wal.Commit ~payload:Bytes.empty in
  Wal.flush t.wal ~sync:true;
  Txn.commit t.txnmgr txn;
  Lockmgr.release_all t.lockmgr ~xid:txn.Txn.xid;
  Contention.finished t.contention ~xid:txn.Txn.xid;
  observe t (fun c -> Sichecker.on_commit c ~xid:txn.Txn.xid)

let charge_cpu t n = Simclock.advance t.clock (float_of_int n *. t.cpu_op_s)

let tick t = Bgwriter.tick t.bgwriter

let log_op t ~xid ~rel ~kind ~payload = Wal.append t.wal ~xid ~rel ~kind ~payload
