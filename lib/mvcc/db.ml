module Simclock = Sias_util.Simclock
module Device = Flashsim.Device
module Bufpool = Sias_storage.Bufpool
module Bgwriter = Sias_storage.Bgwriter
module Wal = Sias_wal.Wal
module Commitpipe = Sias_wal.Commitpipe
module Txn = Sias_txn.Txn
module Lockmgr = Sias_txn.Lockmgr
module Contention = Sias_txn.Contention
module Bus = Sias_obs.Bus
module Crashpoint = Sias_chaos.Crashpoint

type t = {
  clock : Simclock.t;
  device : Device.t;
  pool : Bufpool.t;
  wal : Wal.t;
  commitpipe : Commitpipe.t;
  txnmgr : Txn.mgr;
  lockmgr : Lockmgr.t;
  bgwriter : Bgwriter.t;
  cpu_op_s : float;
  append_seal_interval : float option;
  vidmap_paged : bool;
  faults : Flashsim.Faultdev.t option;
  fpw_done : (int * int, unit) Hashtbl.t;
  contention : Contention.t;
  bus : Bus.t;
  mutable next_rel : int;
  mutable tickers : (unit -> unit) list;
  mutable wal_logging : bool;
  wrote : (int, unit) Hashtbl.t;
  mutable degraded : string option;
  mutable last_reclaim_lsn : int;
  isolation : Isolation.level;
  ssi : Ssimgr.t option;
  index_kind : [ `Array | `Paged ];
}

exception Read_only of { reason : string }
exception Serialization_failure of { xid : int; reason : string }

let () =
  Printexc.register_printer (function
    | Read_only { reason } ->
        Some
          (Printf.sprintf
             "Db.Read_only: the database is in read-only degraded mode (%s); \
              only read-only transactions are accepted until restart"
             reason)
    | Serialization_failure { xid; reason } ->
        Some
          (Printf.sprintf
             "Db.Serialization_failure: transaction %d was aborted to \
              preserve serializability (%s); retry it"
             xid reason)
    | _ -> None)

module Event = struct
  type Bus.event +=
    | Txn_snapshot of { xid : int; snapshot : Sias_txn.Snapshot.t }
    | Row_read of { xid : int; rel : int; pk : int; row : Value.t array option }
    | Row_write of { xid : int; rel : int; pk : int; row : Value.t array option }
end

let create ?bus ?device ?wal_device ?(buffer_pages = 2048)
    ?(flush_policy = Bgwriter.T2_checkpoint_only) ?(checkpoint_interval = 30.0)
    ?(cpu_op_s = 5e-6) ?append_seal_interval ?os_cache_interval ?os_cache_pages ?(vidmap_paged = false) ?faults
    ?(contention = Contention.default_settings) ?(commit_mode = Commitpipe.Sync)
    ?wal_capacity_bytes ?(isolation = `Si) ?(bufpool_shards = 1)
    ?(index = `Array) () =
  let clock = Simclock.create () in
  let bus = match bus with Some b -> b | None -> Bus.create () in
  let device =
    match device with Some d -> d | None -> Device.ssd_x25e ~name:"data-ssd" ()
  in
  Device.attach_bus device bus;
  Option.iter (fun d -> Device.attach_bus d bus) wal_device;
  let pool = Bufpool.create ~device ~clock ~capacity_pages:buffer_pages ?os_cache_interval ?os_cache_pages ~bus ?faults ~shards:bufpool_shards () in
  let wal =
    Wal.create ?device:wal_device ?faults ~bus ?capacity_bytes:wal_capacity_bytes
      ~clock ()
  in
  let commitpipe = Commitpipe.create ~wal ~clock ~bus commit_mode in
  let fpw_done = Hashtbl.create 512 in
  let bgwriter =
    Bgwriter.create pool ~clock ~policy:flush_policy ~checkpoint_interval
      ~before_checkpoint:(fun () -> Commitpipe.before_checkpoint commitpipe)
      ~on_checkpoint:(fun () -> Hashtbl.reset fpw_done)
      ~bus ()
  in
  let lockmgr = Lockmgr.create () in
  let txnmgr = Txn.create_mgr () in
  (* Hint-bit durability gate: a committed hint may persist only once the
     commit record is flushed (matters under group/async commit). *)
  Txn.set_flushed_probe txnmgr (fun () -> Wal.flushed_lsn wal);
  let ssi =
    match isolation with
    | `Si -> None
    | `Ssi | `Wsi ->
        let mode = if isolation = `Ssi then Ssimgr.Ssi else Ssimgr.Wsi in
        Some
          (Ssimgr.create ~mode ~txnmgr ~bus
             ~charge:(fun n -> Simclock.advance clock (float_of_int n *. cpu_op_s)))
  in
  {
    clock;
    device;
    pool;
    wal;
    commitpipe;
    txnmgr;
    lockmgr;
    bgwriter;
    cpu_op_s;
    append_seal_interval;
    vidmap_paged;
    faults;
    fpw_done;
    contention = Contention.create ~settings:contention ~bus ~clock ~lockmgr ();
    bus;
    next_rel = 0;
    tickers = [];
    wal_logging = true;
    wrote = Hashtbl.create 64;
    degraded = None;
    last_reclaim_lsn = -1;
    isolation;
    ssi;
    index_kind = index;
  }

let alloc_rel t =
  let r = t.next_rel in
  t.next_rel <- r + 1;
  r

let now t = Simclock.now t.clock

let bus t = t.bus
let observed t = Bus.active t.bus
let emit t e = Bus.publish t.bus e

let begin_txn ?(read_only = false) ?(deferrable = false) t =
  let txn = Txn.begin_txn ~now:(now t) t.txnmgr in
  (match t.ssi with
  | Some s -> Ssimgr.on_begin s txn ~read_only ~deferrable
  | None -> ());
  if observed t then begin
    emit t (Bus.Txn_begin { xid = txn.Txn.xid });
    emit t (Event.Txn_snapshot { xid = txn.Txn.xid; snapshot = txn.Txn.snapshot })
  end;
  txn

(* ---------------- isolation hooks ----------------

   All four engines call these from their read/write/scan paths; under
   the default [`Si] level each is a single branch on [t.ssi]. The
   engines additionally cache [ssi_tracking] at creation so their hot
   loops pay one local-bool branch, keeping SI runs byte-identical. *)

let isolation t = t.isolation
let ssi_tracking t = t.ssi <> None

let note_read t ~xid ~rel ~pk ~probe_writes =
  match t.ssi with
  | Some s -> Ssimgr.note_read s ~xid ~rel ~pk ~probe_writes
  | None -> ()

let note_write t ~xid ~rel ~pk =
  match t.ssi with Some s -> Ssimgr.note_write s ~xid ~rel ~pk | None -> ()

let note_scan t ~xid ~rel ~probe_writes =
  match t.ssi with
  | Some s -> Ssimgr.note_scan s ~xid ~rel ~probe_writes
  | None -> ()

let note_lineage_writer t ~reader ~writer =
  match t.ssi with
  | Some s -> Ssimgr.note_lineage_writer s ~reader ~writer
  | None -> ()

let ssimgr t = t.ssi

(* ---------------- out-of-space degradation ---------------- *)

let enter_degraded t ~subsystem ~reason =
  t.degraded <- Some reason;
  (* writers must not even be admitted while read-only *)
  Contention.set_backpressure t.contention true;
  if observed t then emit t (Bus.Degraded { subsystem; reason })

(* CLOG snapshot carried by checkpoint records: 8-byte LE next_xid, then
   the raw dense-CLOG image. Recovery restores it so commit/abort verdicts
   of transactions whose records were reclaimed survive log truncation. *)
let checkpoint_payload t =
  let next_xid, image = Txn.clog_image t.txnmgr in
  let b = Bytes.create (8 + String.length image) in
  Bytes.set_int64_le b 0 (Int64.of_int next_xid);
  Bytes.blit_string image 0 b 8 (String.length image);
  b

(* Emergency WAL reclamation: checkpoint the pool (every retained heap
   record is now redundant with the on-device pages), append a checkpoint
   record carrying the CLOG snapshot (exempt from the capacity check —
   the reserved emergency region), force it durable, then drop everything
   below it. Any crash window leaves either the full old log or the
   checkpoint record onward — never a gap. Retention holds (a standby
   still catching up) clamp the truncation as usual, so reclamation can
   legitimately free nothing. The [last_reclaim_lsn] guard stops a full
   log from provoking a checkpoint-record storm: if no record was
   appended since the last attempt, trying again cannot help. *)
let reclaim_wal t =
  if Wal.current_lsn t.wal = t.last_reclaim_lsn then false
  else begin
    let before = Wal.retained_bytes t.wal in
    Bgwriter.checkpoint_now t.bgwriter;
    let ckpt_lsn =
      Wal.append t.wal ~xid:0 ~rel:(-1) ~kind:Wal.Checkpoint
        ~payload:(checkpoint_payload t)
    in
    Wal.flush t.wal ~sync:true;
    Wal.truncate_before t.wal ~lsn:ckpt_lsn;
    t.last_reclaim_lsn <- Wal.current_lsn t.wal;
    let freed = Stdlib.max 0 (before - Wal.retained_bytes t.wal) in
    if observed t then
      emit t (Bus.Wal_reclaim { upto_lsn = ckpt_lsn; freed_bytes = freed });
    freed > 0
  end

(* Every WAL append from this layer funnels through here. Out of space:
   reclaim once and retry; if the log is still full (holds, or one giant
   record) the database degrades to loud read-only rather than crashing
   or silently dropping updates. *)
let append_wal t ~xid ~rel ~kind ~payload =
  (match t.degraded with
  | Some reason -> raise (Read_only { reason })
  | None -> ());
  try Wal.append t.wal ~xid ~rel ~kind ~payload
  with Wal.Out_of_space _ -> (
    ignore (reclaim_wal t);
    try Wal.append t.wal ~xid ~rel ~kind ~payload
    with Wal.Out_of_space { needed; capacity; retained } ->
      let reason =
        Printf.sprintf
          "WAL full: %d bytes needed against a capacity of %d (%d bytes still \
           retained after emergency reclamation)"
          needed capacity retained
      in
      enter_degraded t ~subsystem:"wal" ~reason;
      raise (Read_only { reason }))

let abort t txn =
  Crashpoint.reach "db.abort.pre";
  (if t.wal_logging && t.degraded = None then
     (* Failure to log an abort is harmless — the absence of a commit
        record already means aborted at recovery — so a full log must not
        turn abort (the error path!) into another error. *)
     try
       ignore
         (Wal.append t.wal ~xid:txn.Txn.xid ~rel:(-1) ~kind:Wal.Abort
            ~payload:Bytes.empty)
     with Wal.Out_of_space _ -> ());
  Hashtbl.remove t.wrote txn.Txn.xid;
  Txn.abort t.txnmgr txn;
  Lockmgr.release_all t.lockmgr ~xid:txn.Txn.xid;
  Contention.finished t.contention ~xid:txn.Txn.xid;
  (match t.ssi with Some s -> Ssimgr.on_abort s txn | None -> ());
  if observed t then emit t (Bus.Txn_abort { xid = txn.Txn.xid })

let commit t txn =
  if Contention.is_doomed t.contention ~xid:txn.Txn.xid then begin
    (* wound-wait / deadlock victim reaching commit: it loses *)
    Contention.note_victim_abort t.contention;
    abort t txn;
    raise (Contention.Wounded txn.Txn.xid)
  end;
  (match t.degraded with
  | Some reason when Hashtbl.mem t.wrote txn.Txn.xid ->
      (* a writer slipped past the gate before degradation hit *)
      abort t txn;
      raise (Read_only { reason })
  | _ -> ());
  (* Isolation-level commit rule (SSI dangerous-structure check / WSI
     read-write certification) runs before anything durable happens: a
     failing transaction is aborted here — callers must NOT abort it
     again (same contract as {!Sias_txn.Contention.Wounded}). *)
  (match t.ssi with
  | Some s -> (
      match Ssimgr.pre_commit s txn with
      | Ok () -> ()
      | Error reason ->
          abort t txn;
          raise (Serialization_failure { xid = txn.Txn.xid; reason }))
  | None -> ());
  (if t.wal_logging && t.degraded = None then begin
     Crashpoint.reach "db.commit.wal.pre";
     let lsn =
       try
         append_wal t ~xid:txn.Txn.xid ~rel:(-1) ~kind:Wal.Commit
           ~payload:Bytes.empty
       with Read_only _ as e ->
         abort t txn;
         raise e
     in
     let ack = Commitpipe.commit t.commitpipe ~xid:txn.Txn.xid ~lsn in
     (* Not yet durable (group commit queues; async acks before flushing):
        note the lsn so hint bits wait for the WAL to catch up. *)
     match (Commitpipe.mode t.commitpipe, ack) with
     | Commitpipe.Async _, _ | _, Commitpipe.Queued _ ->
         Txn.note_commit_lsn t.txnmgr ~xid:txn.Txn.xid ~lsn
     | _, Commitpipe.Durable _ -> ()
   end);
  Crashpoint.reach "db.clog.mark.pre";
  Txn.commit t.txnmgr txn;
  Crashpoint.reach "db.clog.mark.post";
  Hashtbl.remove t.wrote txn.Txn.xid;
  Lockmgr.release_all t.lockmgr ~xid:txn.Txn.xid;
  Contention.finished t.contention ~xid:txn.Txn.xid;
  (match t.ssi with Some s -> Ssimgr.on_commit s txn | None -> ());
  if observed t then emit t (Bus.Txn_commit { xid = txn.Txn.xid })

let charge_cpu t n = Simclock.advance t.clock (float_of_int n *. t.cpu_op_s)

let add_ticker t f = t.tickers <- t.tickers @ [ f ]
let set_wal_logging t b = t.wal_logging <- b

(* Watermark backpressure: above 85% of WAL capacity, reclaim and — if
   still high (holds pinning the tail) — shed new admissions until usage
   falls back under 60%. Unbounded logs (the default) never enter. *)
let high_watermark = 0.85
let low_watermark = 0.60

let wal_pressure t =
  match Wal.capacity_bytes t.wal with
  | Some cap when t.degraded = None ->
      let usage_of b = float_of_int b /. float_of_int cap in
      let usage = usage_of (Wal.retained_bytes t.wal) in
      if usage >= high_watermark then begin
        ignore (reclaim_wal t);
        let usage' = usage_of (Wal.retained_bytes t.wal) in
        if usage' >= high_watermark then begin
          if not (Contention.backpressure t.contention) then begin
            Contention.set_backpressure t.contention true;
            if observed t then
              emit t (Bus.Backpressure { on = true; usage = usage' })
          end
        end
        else if Contention.backpressure t.contention && usage' <= low_watermark
        then begin
          Contention.set_backpressure t.contention false;
          if observed t then
            emit t (Bus.Backpressure { on = false; usage = usage' })
        end
      end
      else if usage <= low_watermark && Contention.backpressure t.contention
      then begin
        Contention.set_backpressure t.contention false;
        if observed t then emit t (Bus.Backpressure { on = false; usage })
      end
  | Some _ | None -> ()

let tick t =
  Commitpipe.tick t.commitpipe;
  Bgwriter.tick t.bgwriter;
  wal_pressure t;
  match t.tickers with [] -> () | fs -> List.iter (fun f -> f ()) fs

let log_op t ~xid ~rel ~kind ~payload =
  if Wal.capacity_bytes t.wal <> None then Hashtbl.replace t.wrote xid ();
  append_wal t ~xid ~rel ~kind ~payload

(* ---------------- crash ---------------- *)

(* Single crash entry point: every layer's volatile state dies together,
   exactly as a power cut would take it. Durable state (device sectors,
   flushed WAL prefix) survives untouched; [recover] on the engine then
   rebuilds from that alone. *)
let crash t =
  Bufpool.crash t.pool;
  Wal.crash t.wal;
  Commitpipe.crash t.commitpipe;
  Lockmgr.reset t.lockmgr;
  Txn.reset_active t.txnmgr;
  Contention.reset_admission t.contention;
  Hashtbl.reset t.fpw_done;
  Hashtbl.reset t.wrote;
  (* SIREAD locks, rw edges and doomed flags are volatile: recovery must
     start serializability tracking from scratch (mirrors the CLOG
     reset above — nothing unflushed may influence post-crash commits). *)
  (match t.ssi with Some s -> Ssimgr.reset s | None -> ());
  t.degraded <- None;
  t.last_reclaim_lsn <- -1

let degraded t = t.degraded
