module Simclock = Sias_util.Simclock
module Device = Flashsim.Device
module Bufpool = Sias_storage.Bufpool
module Bgwriter = Sias_storage.Bgwriter
module Wal = Sias_wal.Wal
module Commitpipe = Sias_wal.Commitpipe
module Txn = Sias_txn.Txn
module Lockmgr = Sias_txn.Lockmgr
module Contention = Sias_txn.Contention
module Bus = Sias_obs.Bus

type t = {
  clock : Simclock.t;
  device : Device.t;
  pool : Bufpool.t;
  wal : Wal.t;
  commitpipe : Commitpipe.t;
  txnmgr : Txn.mgr;
  lockmgr : Lockmgr.t;
  bgwriter : Bgwriter.t;
  cpu_op_s : float;
  append_seal_interval : float option;
  vidmap_paged : bool;
  faults : Flashsim.Faultdev.t option;
  fpw_done : (int * int, unit) Hashtbl.t;
  contention : Contention.t;
  bus : Bus.t;
  mutable next_rel : int;
  mutable tickers : (unit -> unit) list;
  mutable wal_logging : bool;
}

module Event = struct
  type Bus.event +=
    | Txn_snapshot of { xid : int; snapshot : Sias_txn.Snapshot.t }
    | Row_read of { xid : int; rel : int; pk : int; row : Value.t array option }
    | Row_write of { xid : int; rel : int; pk : int; row : Value.t array option }
end

let create ?bus ?device ?wal_device ?(buffer_pages = 2048)
    ?(flush_policy = Bgwriter.T2_checkpoint_only) ?(checkpoint_interval = 30.0)
    ?(cpu_op_s = 5e-6) ?append_seal_interval ?os_cache_interval ?os_cache_pages ?(vidmap_paged = false) ?faults
    ?(contention = Contention.default_settings) ?(commit_mode = Commitpipe.Sync) () =
  let clock = Simclock.create () in
  let bus = match bus with Some b -> b | None -> Bus.create () in
  let device =
    match device with Some d -> d | None -> Device.ssd_x25e ~name:"data-ssd" ()
  in
  Device.attach_bus device bus;
  Option.iter (fun d -> Device.attach_bus d bus) wal_device;
  let pool = Bufpool.create ~device ~clock ~capacity_pages:buffer_pages ?os_cache_interval ?os_cache_pages ~bus ?faults () in
  let wal = Wal.create ?device:wal_device ?faults ~bus ~clock () in
  let commitpipe = Commitpipe.create ~wal ~clock ~bus commit_mode in
  let fpw_done = Hashtbl.create 512 in
  let bgwriter =
    Bgwriter.create pool ~clock ~policy:flush_policy ~checkpoint_interval
      ~before_checkpoint:(fun () -> Commitpipe.before_checkpoint commitpipe)
      ~on_checkpoint:(fun () -> Hashtbl.reset fpw_done)
      ~bus ()
  in
  let lockmgr = Lockmgr.create () in
  let txnmgr = Txn.create_mgr () in
  (* Hint-bit durability gate: a committed hint may persist only once the
     commit record is flushed (matters under group/async commit). *)
  Txn.set_flushed_probe txnmgr (fun () -> Wal.flushed_lsn wal);
  {
    clock;
    device;
    pool;
    wal;
    commitpipe;
    txnmgr;
    lockmgr;
    bgwriter;
    cpu_op_s;
    append_seal_interval;
    vidmap_paged;
    faults;
    fpw_done;
    contention = Contention.create ~settings:contention ~bus ~clock ~lockmgr ();
    bus;
    next_rel = 0;
    tickers = [];
    wal_logging = true;
  }

let alloc_rel t =
  let r = t.next_rel in
  t.next_rel <- r + 1;
  r

let now t = Simclock.now t.clock

let bus t = t.bus
let observed t = Bus.active t.bus
let emit t e = Bus.publish t.bus e

let begin_txn t =
  let txn = Txn.begin_txn ~now:(now t) t.txnmgr in
  if observed t then begin
    emit t (Bus.Txn_begin { xid = txn.Txn.xid });
    emit t (Event.Txn_snapshot { xid = txn.Txn.xid; snapshot = txn.Txn.snapshot })
  end;
  txn

let abort t txn =
  if t.wal_logging then
    ignore
      (Wal.append t.wal ~xid:txn.Txn.xid ~rel:(-1) ~kind:Wal.Abort
         ~payload:Bytes.empty);
  Txn.abort t.txnmgr txn;
  Lockmgr.release_all t.lockmgr ~xid:txn.Txn.xid;
  Contention.finished t.contention ~xid:txn.Txn.xid;
  if observed t then emit t (Bus.Txn_abort { xid = txn.Txn.xid })

let commit t txn =
  if Contention.is_doomed t.contention ~xid:txn.Txn.xid then begin
    (* wound-wait / deadlock victim reaching commit: it loses *)
    Contention.note_victim_abort t.contention;
    abort t txn;
    raise (Contention.Wounded txn.Txn.xid)
  end;
  (if t.wal_logging then begin
     let lsn =
       Wal.append t.wal ~xid:txn.Txn.xid ~rel:(-1) ~kind:Wal.Commit
         ~payload:Bytes.empty
     in
     let ack = Commitpipe.commit t.commitpipe ~xid:txn.Txn.xid ~lsn in
     (* Not yet durable (group commit queues; async acks before flushing):
        note the lsn so hint bits wait for the WAL to catch up. *)
     match (Commitpipe.mode t.commitpipe, ack) with
     | Commitpipe.Async _, _ | _, Commitpipe.Queued _ ->
         Txn.note_commit_lsn t.txnmgr ~xid:txn.Txn.xid ~lsn
     | _, Commitpipe.Durable _ -> ()
   end);
  Txn.commit t.txnmgr txn;
  Lockmgr.release_all t.lockmgr ~xid:txn.Txn.xid;
  Contention.finished t.contention ~xid:txn.Txn.xid;
  if observed t then emit t (Bus.Txn_commit { xid = txn.Txn.xid })

let charge_cpu t n = Simclock.advance t.clock (float_of_int n *. t.cpu_op_s)

let add_ticker t f = t.tickers <- t.tickers @ [ f ]
let set_wal_logging t b = t.wal_logging <- b

let tick t =
  Commitpipe.tick t.commitpipe;
  Bgwriter.tick t.bgwriter;
  match t.tickers with [] -> () | fs -> List.iter (fun f -> f ()) fs

let log_op t ~xid ~rel ~kind ~payload = Wal.append t.wal ~xid ~rel ~kind ~payload
