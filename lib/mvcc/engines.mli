(** Populates the {!Engine} registry with the four engines (si, si-cv,
    sias, sias-v). Runs at library initialization via [-linkall]; has no
    exports. *)
