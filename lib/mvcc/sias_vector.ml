module Tid = Sias_storage.Tid
module Heapfile = Sias_storage.Heapfile
module Bufpool = Sias_storage.Bufpool
module Btree = Sias_index.Btree
module Txn = Sias_txn.Txn
module Lockmgr = Sias_txn.Lockmgr
module Contention = Sias_txn.Contention
module Wal = Sias_wal.Wal

let name = "SIAS-V"

let vector_capacity = 4

(* ---------------- vector codec ----------------

   [0..7]   vid (int64)
   [8..9]   count (u16)
   [10..17] overflow tid + 1 (int64, 0 = none)
   then [count] version records, newest first:
     create int64, seq u32, flags u8, row_len u32, row bytes

   Flags byte: bit 0 = tombstone; bits 1-2 = creator hint
   ({!Tuple.Hint}), patched lazily on first visibility resolution and
   preserved across re-appends so later readers skip the CLOG. *)

let hint_shift = 1

type version = {
  v_create : int;
  v_seq : int;
  v_tombstone : bool;
  v_hint : int; (* {!Tuple.Hint} value for [v_create]; none = unknown *)
  v_flags_off : int; (* flags-byte offset within the decoded item; -1 if fresh *)
  v_row : Value.t array;
}

type vector = {
  vec_vid : int;
  overflow : Tid.t;
  versions : version array; (* newest first; length = occupancy *)
}

(* First version satisfying [p], scanning newest-first. Replaces the old
   [List.find_opt] without the list allocation. *)
let find_version p versions =
  let n = Array.length versions in
  let rec go i =
    if i >= n then None
    else
      let v = Array.unsafe_get versions i in
      if p v then Some v else go (i + 1)
  in
  go 0

let encode_vector vec =
  let buf = Buffer.create 256 in
  Buffer.add_int64_le buf (Int64.of_int vec.vec_vid);
  Buffer.add_uint16_le buf (Array.length vec.versions);
  Buffer.add_int64_le buf
    (Int64.of_int (if Tid.is_invalid vec.overflow then 0 else Tid.to_int vec.overflow + 1));
  Array.iter
    (fun v ->
      Buffer.add_int64_le buf (Int64.of_int v.v_create);
      Buffer.add_int32_le buf (Int32.of_int v.v_seq);
      Buffer.add_uint8 buf
        ((if v.v_tombstone then 1 else 0) lor (v.v_hint lsl hint_shift));
      let row = Value.encode_row v.v_row in
      Buffer.add_int32_le buf (Int32.of_int (Bytes.length row));
      Buffer.add_bytes buf row)
    vec.versions;
  Buffer.to_bytes buf

let decode_vector b =
  let vec_vid = Int64.to_int (Bytes.get_int64_le b 0) in
  let count = Bytes.get_uint16_le b 8 in
  let ov = Int64.to_int (Bytes.get_int64_le b 10) in
  let overflow = if ov = 0 then Tid.invalid else Tid.of_int (ov - 1) in
  let pos = ref 18 in
  (* explicit loop: decoding must advance [pos] strictly in record order *)
  let decode_one () =
    let v_create = Int64.to_int (Bytes.get_int64_le b !pos) in
    let v_seq = Int32.to_int (Bytes.get_int32_le b (!pos + 8)) in
    let v_flags_off = !pos + 12 in
    let flags = Bytes.get_uint8 b v_flags_off in
    let len = Int32.to_int (Bytes.get_int32_le b (!pos + 13)) in
    let v_row = Value.decode_row b ~pos:(!pos + 17) in
    pos := !pos + 17 + len;
    {
      v_create;
      v_seq;
      v_tombstone = flags land 1 = 1;
      v_hint = (flags lsr hint_shift) land 3;
      v_flags_off;
      v_row;
    }
  in
  let versions =
    if count = 0 then [||]
    else begin
      let arr = Array.make count (decode_one ()) in
      for i = 1 to count - 1 do
        arr.(i) <- decode_one ()
      done;
      arr
    end
  in
  { vec_vid; overflow; versions }

(* The overflow pointer sits at a fixed offset, so GC can repoint it in
   place without changing the item length. *)
let patch_overflow item tid =
  Bytes.set_int64_le item 10
    (Int64.of_int (if Tid.is_invalid tid then 0 else Tid.to_int tid + 1))

(* ---------------- engine ---------------- *)

type table = {
  tname : string;
  rel : int;
  mutable heap : Heapfile.t;
  pk_col : int;
  mutable vidmap : Vidmap.t;
  mutable pk_index : Index.t;
  mutable secondary : (int * Index.t) array;
}

type undo = { u_table : table; u_vid : int; u_old : Tid.t option; u_pk : int option }

type gc_stats = {
  collected_vectors : int;
  compacted_vectors : int;
  reclaimed_pages : int;
}

type t = {
  db : Db.t;
  mutable tables : table list;
  undo : (int, undo list ref) Hashtbl.t;
  cmd_seq : (int, int ref) Hashtbl.t;
  mutable collected : int;
  mutable compacted : int;
  mutable reclaimed : int;
  mutable reads : int;
  mutable fetches : int;
  track : bool;
      (* serializability tracking on (isolation <> `Si); cached so the
         vector walk pays one local branch and SI stays byte-identical *)
}

let create db =
  Walcodec.install_repair db;
  {
    db;
    tables = [];
    undo = Hashtbl.create 64;
    cmd_seq = Hashtbl.create 64;
    collected = 0;
    compacted = 0;
    reclaimed = 0;
    reads = 0;
    fetches = 0;
    track = Db.ssi_tracking db;
  }

let db t = t.db

let create_table t ~name:tname ~pk_col ?(secondary = []) () =
  let rel = Db.alloc_rel t.db in
  let heap =
    Heapfile.create ?seal_interval:t.db.Db.append_seal_interval t.db.Db.pool ~rel
      ~placement:Heapfile.Append_only
  in
  let pk_index = Index.create t.db in
  let secondary =
    Array.map (fun col -> (col, Index.create t.db)) (Array.of_list secondary)
  in
  let vidmap =
    if t.db.Db.vidmap_paged then Vidmap.create ~backing:(t.db.Db.pool, Db.alloc_rel t.db) ()
    else Vidmap.create ()
  in
  let table = { tname; rel; heap; pk_col; vidmap; pk_index; secondary } in
  t.tables <- t.tables @ [ table ];
  table

let begin_txn t = Db.begin_txn t.db

let next_seq t xid =
  let cell =
    match Hashtbl.find_opt t.cmd_seq xid with
    | Some c -> c
    | None ->
        let c = ref 0 in
        Hashtbl.replace t.cmd_seq xid c;
        c
  in
  incr cell;
  !cell

let push_undo t xid u =
  let cell =
    match Hashtbl.find_opt t.undo xid with
    | Some c -> c
    | None ->
        let c = ref [] in
        Hashtbl.replace t.undo xid c;
        c
  in
  cell := u :: !cell

let forget_txn t xid =
  Hashtbl.remove t.undo xid;
  Hashtbl.remove t.cmd_seq xid

let commit t txn =
  forget_txn t txn.Txn.xid;
  try
    Db.commit t.db txn;
    Ok ()
  with Db.Serialization_failure _ -> Error Engine.Serialization_failure

let abort t txn =
  (match Hashtbl.find_opt t.undo txn.Txn.xid with
  | None -> ()
  | Some cell ->
      List.iter
        (fun u ->
          (match u.u_old with
          | Some tid -> Vidmap.set u.u_table.vidmap ~vid:u.u_vid tid
          | None -> Vidmap.clear u.u_table.vidmap ~vid:u.u_vid);
          match (u.u_old, u.u_pk) with
          | None, Some pk -> ignore (Index.delete u.u_table.pk_index ~key:pk ~payload:u.u_vid)
          | _ -> ())
        !cell);
  forget_txn t txn.Txn.xid;
  Db.abort t.db txn

let pk_of table row = Value.to_key row.(table.pk_col)

let fetch_vector t table tid =
  t.fetches <- t.fetches + 1;
  Db.charge_cpu t.db 1;
  match Heapfile.read table.heap tid with
  | None -> None
  | Some item -> Some (decode_vector item)

let append_vector t table ~xid vec =
  let item = encode_vector vec in
  let tid = Heapfile.insert table.heap item in
  Walcodec.log_heap ~append_only:true t.db ~xid ~rel:table.rel ~kind:Wal.Insert ~tid ~item;
  tid

(* First version visible to the snapshot, scanning newest-first through
   the vector and its overflow chain. *)
let find_visible t txn table vid =
  match Vidmap.get table.vidmap ~vid with
  | None -> None
  | Some entry ->
      t.reads <- t.reads + 1;
      let rec scan tid =
        if Tid.is_invalid tid then None
        else
          match fetch_vector t table tid with
          | None -> None
          | Some vec ->
              let n = Array.length vec.versions in
              let rec find i =
                if i >= n then scan vec.overflow
                else
                  let v = Array.unsafe_get vec.versions i in
                  if
                    Visibility.creator_visible_fast t.db ~heap:table.heap ~tid
                      ~off:v.v_flags_off ~shift:hint_shift txn.Txn.snapshot
                      ~hint:v.v_hint ~xid:v.v_create
                  then if v.v_tombstone then None else Some v
                  else begin
                    (* a skipped vector entry names an overlapping writer
                       of this data item in the co-located lineage — under
                       serializable mode that is an rw antidependency,
                       no lock-table probe needed *)
                    if t.track then
                      Db.note_lineage_writer t.db ~reader:txn.Txn.xid
                        ~writer:v.v_create;
                    find (i + 1)
                  end
              in
              find 0
      in
      scan entry

(* Newest non-aborted version across the vector chain. *)
let effective_head t table vid =
  match Vidmap.get table.vidmap ~vid with
  | None -> None
  | Some entry ->
      let mgr = t.db.Db.txnmgr in
      let rec scan tid =
        if Tid.is_invalid tid then None
        else
          match fetch_vector t table tid with
          | None -> None
          | Some vec -> (
              match
                find_version
                  (fun v -> Txn.status mgr v.v_create <> Txn.Aborted)
                  vec.versions
              with
              | Some v -> Some v
              | None -> scan vec.overflow)
      in
      scan entry

let find_item t txn table pk =
  let vids = Index.lookup table.pk_index ~key:pk in
  Db.charge_cpu t.db (List.length vids);
  List.find_map
    (fun vid ->
      match find_visible t txn table vid with
      | Some v when pk_of table v.v_row = pk -> Some (vid, v)
      | _ -> None)
    vids

let insert_conflict t txn table pk =
  if find_item t txn table pk <> None then Some Engine.Duplicate_key
  else begin
    let mgr = t.db.Db.txnmgr in
    let vids = Index.lookup table.pk_index ~key:pk in
    let conflict vid =
      match effective_head t table vid with
      | None -> false
      | Some v ->
          pk_of table v.v_row = pk
          && v.v_create <> txn.Txn.xid
          && (match Txn.status mgr v.v_create with
             | Txn.In_progress -> true
             | Txn.Committed -> not v.v_tombstone
             | Txn.Aborted -> false)
    in
    if List.exists conflict vids then Some Engine.Write_conflict else None
  end

let insert t txn table row =
  let pk = pk_of table row in
  match insert_conflict t txn table pk with
  | Some e -> Error e
  | None ->
      let xid = txn.Txn.xid in
      let vid = Vidmap.alloc_vid table.vidmap in
      let v =
        {
          v_create = xid;
          v_seq = next_seq t xid;
          v_tombstone = false;
          v_hint = Tuple.Hint.none;
          v_flags_off = -1;
          v_row = row;
        }
      in
      let tid =
        append_vector t table ~xid
          { vec_vid = vid; overflow = Tid.invalid; versions = [| v |] }
      in
      Vidmap.set table.vidmap ~vid tid;
      push_undo t xid { u_table = table; u_vid = vid; u_old = None; u_pk = Some pk };
      Index.insert table.pk_index ~key:pk ~payload:vid;
      Array.iter
        (fun (col, index) -> Index.insert index ~key:(Value.to_key row.(col)) ~payload:vid)
        table.secondary;
      (* index maintenance happens once per data item, not per version *)
      Db.charge_cpu t.db (2 + Array.length table.secondary);
      if t.track then Db.note_write t.db ~xid ~rel:table.rel ~pk;
      if Db.observed t.db then
        Db.emit t.db (Db.Event.Row_write { xid; rel = table.rel; pk; row = Some row });
      Ok ()

let write_version t txn table ~pk ~make_row ~tombstone =
  match find_item t txn table pk with
  | None -> Error Engine.Not_found
  | Some (vid, visible_v) -> (
      let xid = txn.Txn.xid in
      match effective_head t table vid with
      | None -> Error Engine.Not_found
      | Some head ->
          let head_in_progress =
            head.v_create <> xid && Txn.status t.db.Db.txnmgr head.v_create = Txn.In_progress
          in
          let head_is_visible =
            head.v_create = visible_v.v_create && head.v_seq = visible_v.v_seq
          in
          (* the in-progress writer of the vector head holds the vid
             writer lock, so the conflict policy decides this case *)
          let blocked =
            head_in_progress
            && Contention.acquire t.db.Db.contention ~xid ~rel:table.rel ~key:vid
               = Contention.Abort_self
          in
          if blocked || not head_is_visible then Error Engine.Write_conflict
          else (
            match Contention.acquire t.db.Db.contention ~xid ~rel:table.rel ~key:vid with
            | Contention.Abort_self -> Error Engine.Write_conflict
            | Contention.Granted -> (
                match Vidmap.get table.vidmap ~vid with
                | None -> Error Engine.Not_found
                | Some cur_tid -> (
                    match fetch_vector t table cur_tid with
                    | None -> Error Engine.Not_found
                    | Some cur ->
                        let old_row = visible_v.v_row in
                        let row =
                          match make_row old_row with Some r -> r | None -> old_row
                        in
                        if (not tombstone) && pk_of table row <> pk then
                          invalid_arg "Sias_vector.update: primary key must not change";
                        let v =
                          {
                            v_create = xid;
                            v_seq = next_seq t xid;
                            v_tombstone = tombstone;
                            v_hint = Tuple.Hint.none;
                            v_flags_off = -1;
                            v_row = row;
                          }
                        in
                        let fresh =
                          (* O(1) occupancy probe (was List.length) *)
                          if Array.length cur.versions >= vector_capacity then begin
                            (* spill the full vector, start a new one *)
                            let spilled = append_vector t table ~xid cur in
                            { vec_vid = vid; overflow = spilled; versions = [| v |] }
                          end
                          else
                            { cur with versions = Array.append [| v |] cur.versions }
                        in
                        let tid = append_vector t table ~xid fresh in
                        push_undo t xid
                          { u_table = table; u_vid = vid; u_old = Some cur_tid; u_pk = None };
                        Vidmap.set table.vidmap ~vid tid;
                        if not tombstone then
                          Array.iter
                            (fun (col, index) ->
                              let old_key = Value.to_key old_row.(col) in
                              let new_key = Value.to_key row.(col) in
                              if old_key <> new_key then
                                Index.insert index ~key:new_key ~payload:vid)
                            table.secondary;
                        Db.charge_cpu t.db 1;
                        if t.track then Db.note_write t.db ~xid ~rel:table.rel ~pk;
                        if Db.observed t.db then
                          Db.emit t.db
                            (Db.Event.Row_write
                               {
                                 xid;
                                 rel = table.rel;
                                 pk;
                                 row = (if tombstone then None else Some row);
                               });
                        Ok ()))))

let update t txn table ~pk f =
  write_version t txn table ~pk ~make_row:(fun row -> Some (f row)) ~tombstone:false

let delete t txn table ~pk =
  write_version t txn table ~pk ~make_row:(fun _ -> None) ~tombstone:true

let read t txn table ~pk =
  let row =
    match find_item t txn table pk with Some (_, v) -> Some v.v_row | None -> None
  in
  (* overlapping writers were already reported by the lineage walk *)
  if t.track then
    Db.note_read t.db ~xid:txn.Txn.xid ~rel:table.rel ~pk ~probe_writes:false;
  if Db.observed t.db then
    Db.emit t.db (Db.Event.Row_read { xid = txn.Txn.xid; rel = table.rel; pk; row });
  row

(* Linear probe over the (small, fixed) secondary-index array; replaces
   the old [List.assoc_opt] without allocating. *)
let find_index_on table col =
  let n = Array.length table.secondary in
  let rec go i =
    if i >= n then None
    else
      let c, idx = table.secondary.(i) in
      if c = col then Some idx else go (i + 1)
  in
  go 0

let lookup t txn table ~col ~key =
  match find_index_on table col with
  | None -> invalid_arg "Sias_vector.lookup: no index on column"
  | Some index ->
      let vids = Index.lookup index ~key in
      Db.charge_cpu t.db (List.length vids);
      List.filter_map
        (fun vid ->
          match find_visible t txn table vid with
          | Some v when Value.to_key v.v_row.(col) = key ->
              if t.track then
                Db.note_read t.db ~xid:txn.Txn.xid ~rel:table.rel
                  ~pk:(pk_of table v.v_row) ~probe_writes:false;
              Some v.v_row
          | _ -> None)
        vids

let range_pk t txn table ~lo ~hi =
  let entries = Index.range table.pk_index ~lo ~hi in
  Db.charge_cpu t.db (List.length entries);
  List.filter_map
    (fun (key, vid) ->
      match find_visible t txn table vid with
      | Some v when pk_of table v.v_row = key ->
          if t.track then
            Db.note_read t.db ~xid:txn.Txn.xid ~rel:table.rel ~pk:key
              ~probe_writes:false;
          Some v.v_row
      | _ -> None)
    entries

let scan t txn table f =
  (* Predicate SIREAD only — the per-vid vector walks below surface every
     overlapping writer (even a phantom insert allocates its vid before
     commit, so its invisible version is walked and harvested). *)
  if t.track then
    Db.note_scan t.db ~xid:txn.Txn.xid ~rel:table.rel ~probe_writes:false;
  let count = ref 0 in
  for vid = 0 to Vidmap.vid_count table.vidmap - 1 do
    match find_visible t txn table vid with
    | Some v ->
        incr count;
        f v.v_row
    | None -> ()
  done;
  !count

(* ---------------- garbage collection ---------------- *)

(* Mark-and-sweep, mirroring the chains engine. A heap item (a vector
   copy) is live iff it is reachable from its item's VID_map entry through
   the overflow chain, or referenced by an active writer's undo record.
   Compaction first rewrites chains that contain versions no snapshot can
   need (the superseded copies become unreachable garbage); the sweep then
   cleans unsealed pages by cheap dead-slot marking and reclaims sparse
   sealed pages wholesale: relocate the reachable copies, TRIM the page. *)

let locked t table vid = Lockmgr.holder t.db.Db.lockmgr ~rel:table.rel ~key:vid <> None

(* GC reads go through the vacuum ring: no stats pollution, no working-set
   eviction, I/O still charged. *)
let fetch_vector_ro table tid =
  match Heapfile.read_ro table.heap tid with
  | None -> None
  | Some item -> Some (decode_vector item)

let mark_live t table =
  let live = Hashtbl.create 1024 in
  let mark_chain entry =
    let rec walk tid =
      if not (Tid.is_invalid tid) && not (Hashtbl.mem live (Tid.to_int tid)) then
        match fetch_vector_ro table tid with
        | None -> ()
        | Some vec ->
            Hashtbl.replace live (Tid.to_int tid) vec.vec_vid;
            walk vec.overflow
    in
    walk entry
  in
  for vid = 0 to Vidmap.vid_count table.vidmap - 1 do
    match Vidmap.get table.vidmap ~vid with
    | Some entry -> mark_chain entry
    | None -> ()
  done;
  (* copies an aborting writer may restore the VID_map to *)
  Hashtbl.iter
    (fun _xid cell ->
      List.iter
        (fun u ->
          if u.u_table == table then
            match u.u_old with Some tid -> mark_chain tid | None -> ())
        !cell)
    t.undo;
  live

(* Drop versions no snapshot can need. A version is dead when a younger
   committed version is below the horizon, or its creator aborted; a
   committed tombstone below the horizon kills the whole item. *)
let compact_chains t table =
  let mgr = t.db.Db.txnmgr in
  let horizon = Txn.horizon mgr in
  for vid = 0 to Vidmap.vid_count table.vidmap - 1 do
    match (if locked t table vid then None else Vidmap.get table.vidmap ~vid) with
    | None -> ()
    | Some entry ->
        (* gather all versions across the overflow chain *)
        let rec gather tid acc =
          if Tid.is_invalid tid then List.rev acc
          else
            match fetch_vector_ro table tid with
            | None -> List.rev acc
            | Some vec ->
                gather vec.overflow (List.rev_append (Array.to_list vec.versions) acc)
        in
        let versions = gather entry [] in
        let rec live acc succ_committed = function
          | [] -> List.rev acc
          | v :: rest ->
              let dead =
                Visibility.sias_dead_for_all mgr ~horizon ~create:v.v_create
                  ~successor_create:succ_committed
                || (v.v_tombstone && v.v_create < horizon
                   && Txn.status mgr v.v_create = Txn.Committed)
              in
              if dead then List.rev acc (* everything older is dead too *)
              else begin
                let succ_committed =
                  if Txn.status mgr v.v_create = Txn.Committed then Some v.v_create
                  else succ_committed
                in
                live (v :: acc) succ_committed rest
              end
        in
        let live_versions = live [] None versions in
        if List.length live_versions < List.length versions then begin
          t.compacted <- t.compacted + 1;
          if live_versions = [] then begin
            Vidmap.clear table.vidmap ~vid;
            match versions with
            | v :: _ ->
                ignore (Index.delete table.pk_index ~key:(pk_of table v.v_row) ~payload:vid)
            | [] -> ()
          end
          else begin
            let fresh =
              {
                vec_vid = vid;
                overflow = Tid.invalid;
                versions = Array.of_list live_versions;
              }
            in
            let tid = append_vector t table ~xid:0 fresh in
            Vidmap.set table.vidmap ~vid tid
          end
          (* superseded copies are now unreachable; the sweep removes them *)
        end
  done

let relocate_vector t table live old_tid =
  (* re-fetch: an earlier relocation may have repointed this vector's
     overflow pointer in place after the sweep captured the page *)
  match Heapfile.read_ro table.heap old_tid with
  | None -> ()
  | Some item ->
  let vec = decode_vector item in
  let new_tid = Heapfile.insert table.heap item in
  Walcodec.log_heap ~append_only:true t.db ~xid:0 ~rel:table.rel ~kind:Wal.Insert ~tid:new_tid ~item;
  Hashtbl.remove live (Tid.to_int old_tid);
  Hashtbl.replace live (Tid.to_int new_tid) vec.vec_vid;
  match Vidmap.get table.vidmap ~vid:vec.vec_vid with
  | Some entry when Tid.equal entry old_tid ->
      Vidmap.set table.vidmap ~vid:vec.vec_vid new_tid
  | Some entry ->
      (* repoint the referring vector's overflow pointer *)
      let rec repair tid =
        if not (Tid.is_invalid tid) then
          match Heapfile.read_ro table.heap tid with
          | None -> ()
          | Some ref_item ->
              let ref_vec = decode_vector ref_item in
              if Tid.equal ref_vec.overflow old_tid then begin
                patch_overflow ref_item new_tid;
                if not (Heapfile.update_in_place table.heap tid ref_item) then
                  failwith "Sias_vector.reclaim: overflow patch failed";
                Walcodec.log_heap t.db ~xid:0 ~rel:table.rel ~kind:Wal.Update ~tid
                  ~item:ref_item
              end
              else repair ref_vec.overflow
      in
      repair entry
  | None -> ()

let sweep t table live ~fill_threshold =
  let nblocks = Heapfile.nblocks table.heap in
  let tail = match Heapfile.last_block table.heap with Some b -> b | None -> -1 in
  let page_size = Bufpool.page_size t.db.Db.pool in
  for block = 0 to nblocks - 1 do
    if not (Heapfile.discarded table.heap block) then begin
      let slots = ref [] in
      Bufpool.with_page_ro t.db.Db.pool ~rel:table.rel ~block (fun page ->
          Sias_storage.Page.iter page (fun slot item ->
              slots := (Tid.make ~block ~slot, item) :: !slots));
      let live_slots, dead_slots =
        List.partition (fun (tid, _) -> Hashtbl.mem live (Tid.to_int tid)) !slots
      in
      if !slots <> [] then
        if not (Heapfile.sealed table.heap block) then
          List.iter
            (fun (tid, _) ->
              Heapfile.delete table.heap tid;
              Walcodec.log_heap t.db ~xid:0 ~rel:table.rel ~kind:Wal.Delete ~tid
                ~item:Bytes.empty;
              t.collected <- t.collected + 1)
            dead_slots
        else begin
          let live_bytes =
            List.fold_left (fun acc (_, item) -> acc + Bytes.length item) 0 live_slots
          in
          let movable =
            List.for_all
              (fun (_, item) -> not (locked t table (decode_vector item).vec_vid))
              live_slots
          in
          if movable && block <> tail
             && float_of_int live_bytes /. float_of_int page_size < fill_threshold
          then begin
            List.iter (fun (tid, _) -> relocate_vector t table live tid) live_slots;
            t.collected <- t.collected + List.length dead_slots;
            Heapfile.discard_block table.heap block;
            Walcodec.log_heap t.db ~xid:0 ~rel:table.rel ~kind:Wal.Trim
              ~tid:(Tid.make ~block ~slot:0) ~item:Bytes.empty;
            t.reclaimed <- t.reclaimed + 1
          end
        end
    end
  done

let gc t =
  List.iter
    (fun table ->
      compact_chains t table;
      let live = mark_live t table in
      sweep t table live ~fill_threshold:0.55)
    t.tables

(* ---------------- recovery ---------------- *)

let discover_nblocks pool ~rel =
  let b = ref 0 in
  while Bufpool.on_disk pool ~rel ~block:!b || Bufpool.resident pool ~rel ~block:!b do
    incr b
  done;
  !b

(* The newest committed version a vector copy holds, for choosing the
   authoritative copy of each item at recovery. *)
let copy_rank mgr vec =
  let best = ref None in
  Array.iter
    (fun v ->
      if Txn.status mgr v.v_create = Txn.Committed then
        match !best with
        | Some (c, s) when c > v.v_create || (c = v.v_create && s >= v.v_seq) -> ()
        | _ -> best := Some (v.v_create, v.v_seq))
    vec.versions;
  !best

let recover t =
  Walcodec.replay_clog t.db;
  Walcodec.redo t.db ~since_lsn:0;
  List.iter
    (fun table ->
      Sias_chaos.Crashpoint.reach "recover.heap.restore";
      let nblocks = discover_nblocks t.db.Db.pool ~rel:table.rel in
      table.heap <-
        Heapfile.restore t.db.Db.pool ~rel:table.rel ~placement:Heapfile.Append_only ~nblocks;
      table.vidmap <-
        (if t.db.Db.vidmap_paged then
           Vidmap.create ~backing:(t.db.Db.pool, Db.alloc_rel t.db) ()
         else Vidmap.create ());
      table.pk_index <- Index.recover t.db table.pk_index;
      table.secondary <-
        Array.map (fun (col, idx) -> (col, Index.recover t.db idx)) table.secondary;
      (* paged indexes were replayed in place; only the array
         implementation is rebuilt below (stale entries of crashed
         transactions in a paged index are filtered by visibility) *)
      let rebuild = Index.needs_rebuild table.pk_index in
      let mgr = t.db.Db.txnmgr in
      let best = Hashtbl.create 1024 in
      let max_vid = ref (-1) in
      Heapfile.iter table.heap (fun tid item ->
          let vec = decode_vector item in
          if vec.vec_vid > !max_vid then max_vid := vec.vec_vid;
          match copy_rank mgr vec with
          | None -> ()
          | Some rank -> (
              let count = Array.length vec.versions in
              match Hashtbl.find_opt best vec.vec_vid with
              | Some (r, c, old_tid, _)
                when (r, c, Tid.to_int old_tid) >= (rank, count, Tid.to_int tid) ->
                  ()
              | _ -> Hashtbl.replace best vec.vec_vid (rank, count, tid, vec)));
      for _ = 0 to !max_vid do
        ignore (Vidmap.alloc_vid table.vidmap)
      done;
      Hashtbl.iter
        (fun vid (_, _, tid, vec) ->
          Vidmap.set table.vidmap ~vid tid;
          (* index from the newest committed, non-tombstone version *)
          match
            find_version (fun v -> Txn.status mgr v.v_create = Txn.Committed) vec.versions
          with
          | Some v when rebuild && not v.v_tombstone ->
              Index.insert table.pk_index ~key:(pk_of table v.v_row) ~payload:vid;
              Array.iter
                (fun (col, index) ->
                  Index.insert index ~key:(Value.to_key v.v_row.(col)) ~payload:vid)
                table.secondary
          | _ -> ())
        best)
    t.tables

let table_stats (t : t) table =
  let total = ref 0 in
  for vid = 0 to Vidmap.vid_count table.vidmap - 1 do
    match Vidmap.get table.vidmap ~vid with
    | None -> ()
    | Some entry ->
        let rec count tid =
          if not (Tid.is_invalid tid) then
            match fetch_vector t table tid with
            | None -> ()
            | Some vec ->
                total := !total + Array.length vec.versions;
                count vec.overflow
        in
        count entry
  done;
  let live = ref 0 in
  let mgr = t.db.Db.txnmgr in
  Vidmap.iter table.vidmap (fun _vid tid ->
      match fetch_vector t table tid with
      | Some vec -> (
          match
            find_version (fun v -> Txn.status mgr v.v_create <> Txn.Aborted) vec.versions
          with
          | Some v when not v.v_tombstone -> incr live
          | _ -> ())
      | None -> ());
  {
    Engine.heap_blocks = Heapfile.live_blocks table.heap;
    live_versions = !live;
    total_versions = !total;
    avg_fill = Heapfile.avg_fill table.heap;
  }

let gc_stats t =
  {
    collected_vectors = t.collected;
    compacted_vectors = t.compacted;
    reclaimed_pages = t.reclaimed;
  }

let table_vidmap _t table = table.vidmap

let fetches_per_read t =
  if t.reads = 0 then 0.0 else float_of_int t.fetches /. float_of_int t.reads

let index_summary t =
  List.map
    (fun table ->
      ( table.tname,
        Index.summary table.pk_index
        :: Array.to_list (Array.map (fun (_, i) -> Index.summary i) table.secondary) ))
    t.tables
