(* Group-commit bookkeeping: membership, the commit_delay window and the
   resolved-completion queue. Pure state machine — executing the shared
   fsync against the WAL is the commit pipeline's job (Sias_wal), which
   keeps this module free of storage dependencies. *)

type member = { seq : int; xid : int; lsn : int; registered_at : float }

type group = {
  opened_at : float;
  deadline : float;
  mutable members : member list; (* newest first *)
  mutable high_lsn : int;
}

type t = {
  delay : float;
  mutable current : group option;
  mutable next_seq : int;
  mutable resolved : (int * float) list; (* (seq, completion), newest first *)
  mutable groups : int;
  mutable grouped_commits : int;
  mutable fsyncs_saved : int;
  mutable max_group : int;
}

let create ~delay =
  {
    delay;
    current = None;
    next_seq = 0;
    resolved = [];
    groups = 0;
    grouped_commits = 0;
    fsyncs_saved = 0;
    max_group = 0;
  }

let register t ~now ~xid ~lsn =
  let seq = t.next_seq in
  t.next_seq <- seq + 1;
  let m = { seq; xid; lsn; registered_at = now } in
  (match t.current with
  | Some g ->
      g.members <- m :: g.members;
      if lsn > g.high_lsn then g.high_lsn <- lsn
  | None ->
      t.current <-
        Some
          { opened_at = now; deadline = now +. t.delay; members = [ m ]; high_lsn = lsn });
  seq

let open_deadline t = Option.map (fun g -> g.deadline) t.current
let open_size t = match t.current with None -> 0 | Some g -> List.length g.members

let take_due t ~upto =
  match t.current with
  | Some g when g.deadline <= upto ->
      t.current <- None;
      Some g
  | _ -> None

let resolve t g ~completion =
  let n = List.length g.members in
  t.groups <- t.groups + 1;
  t.grouped_commits <- t.grouped_commits + n;
  t.fsyncs_saved <- t.fsyncs_saved + (n - 1);
  if n > t.max_group then t.max_group <- n;
  (* members is newest first; walk it oldest first so the resolved queue
     drains in registration order *)
  List.iter
    (fun m -> t.resolved <- (m.seq, completion) :: t.resolved)
    (List.rev g.members)

let drain_resolved t =
  let r = List.rev t.resolved in
  t.resolved <- [];
  r

let groups t = t.groups
let grouped_commits t = t.grouped_commits
let fsyncs_saved t = t.fsyncs_saved
let max_group t = t.max_group

let reset_stats t =
  t.groups <- 0;
  t.grouped_commits <- 0;
  t.fsyncs_saved <- 0;
  t.max_group <- 0
