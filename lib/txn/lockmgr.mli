(** Exclusive data-item locks with a wait-for graph.

    SIAS and SI both serialize writers per data item ("first-updater-wins",
    paper Algorithm 3 line 7): an updater takes an exclusive lock keyed by
    (relation, item). A conflicting request either waits — recorded in the
    wait-for graph so deadlocks are detectable — or the caller can adopt a
    no-wait policy and abort. *)

type t

type outcome =
  | Granted
  | Conflict of int  (** lock held by this transaction *)
  | Deadlock  (** waiting would close a wait-for cycle *)

val create : unit -> t

val try_acquire : t -> xid:int -> rel:int -> key:int -> outcome
(** Acquire or re-acquire (re-entrant for the same [xid]). On [Conflict]
    no wait edge is recorded; use {!wait_on} to declare one. *)

val wait_on : t -> xid:int -> owner:int -> outcome
(** Record that [xid] blocks on [owner]. Returns [Deadlock] when the edge
    closes a cycle (the edge is then not recorded), [Granted] otherwise. *)

val stop_waiting : t -> xid:int -> unit

val waits_for : t -> xid:int -> int option
(** The owner [xid] currently waits on, if any. *)

val release_all : t -> xid:int -> unit
(** Drop all locks of a transaction (commit/abort), its own wait edge,
    and every inbound edge of transactions that were waiting on it — a
    finished transaction blocks nobody. *)

val reset : t -> unit
(** Drop every lock and wait edge (crash semantics: no in-flight
    transaction survived the process). *)

val holder : t -> rel:int -> key:int -> int option
val held_count : t -> xid:int -> int
val waiters_of : t -> owner:int -> int list
