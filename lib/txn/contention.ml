module Simclock = Sias_util.Simclock
module Rng = Sias_util.Rng
module Bus = Sias_obs.Bus

type policy = No_wait | Wait_die | Wound_wait | Detect

let policy_to_string = function
  | No_wait -> "no-wait"
  | Wait_die -> "wait-die"
  | Wound_wait -> "wound-wait"
  | Detect -> "detect"

let all_policies = [ No_wait; Wait_die; Wound_wait; Detect ]

let policy_of_string = function
  | "nowait" -> Ok No_wait (* historical alias *)
  | s -> (
      match
        List.find_opt (fun p -> policy_to_string p = s) all_policies
      with
      | Some p -> Ok p
      | None ->
          Error
            (Printf.sprintf "unknown conflict policy %S; valid policies: %s" s
               (String.concat ", " (List.map policy_to_string all_policies))))

type settings = {
  policy : policy;
  seed : int;
  max_wait_s : float;
  max_inflight : int option;
  queue_capacity : int;
  queue_timeout_s : float;
}

let default_settings =
  {
    policy = No_wait;
    seed = 7;
    max_wait_s = 0.05;
    max_inflight = None;
    queue_capacity = 16;
    queue_timeout_s = 0.1;
  }

type stats = {
  mutable conflicts : int;
  mutable waits : int;
  mutable wait_time_s : float;
  mutable wait_timeouts : int;
  mutable dies : int;
  mutable wounds : int;
  mutable deadlocks : int;
  mutable victim_aborts : int;
  mutable retries : int;
  mutable backoff_time_s : float;
  mutable give_ups : int;
  mutable admitted : int;
  mutable queued : int;
  mutable shed : int;
  mutable max_queue_depth : int;
}

let zero_stats () =
  {
    conflicts = 0;
    waits = 0;
    wait_time_s = 0.0;
    wait_timeouts = 0;
    dies = 0;
    wounds = 0;
    deadlocks = 0;
    victim_aborts = 0;
    retries = 0;
    backoff_time_s = 0.0;
    give_ups = 0;
    admitted = 0;
    queued = 0;
    shed = 0;
    max_queue_depth = 0;
  }

type t = {
  settings : settings;
  clock : Simclock.t;
  lockmgr : Lockmgr.t;
  rng : Rng.t;
  doomed : (int, unit) Hashtbl.t;
  bus : Bus.t option;
  mutable inflight : int;
  mutable queue_depth : int;
  (* Resource-exhaustion backpressure (e.g. the WAL near capacity): while
     set, new transactions are shed at admission regardless of the
     in-flight cap, throttling writers so reclamation can catch up. *)
  mutable backpressure : bool;
  stats : stats;
}

exception Wounded of int

let create ?(settings = default_settings) ?bus ~clock ~lockmgr () =
  {
    settings;
    clock;
    lockmgr;
    rng = Rng.create settings.seed;
    doomed = Hashtbl.create 16;
    bus;
    inflight = 0;
    queue_depth = 0;
    backpressure = false;
    stats = zero_stats ();
  }

let obs t =
  match t.bus with Some b when Bus.active b -> Some b | _ -> None

let note_shed t =
  t.stats.shed <- t.stats.shed + 1;
  match obs t with Some b -> Bus.publish b Bus.Txn_shed | None -> ()

let settings t = t.settings
let stats t = t.stats

let is_doomed t ~xid = Hashtbl.mem t.doomed xid
let doom t xid = Hashtbl.replace t.doomed xid ()
let note_victim_abort t = t.stats.victim_aborts <- t.stats.victim_aborts + 1
let finished t ~xid = Hashtbl.remove t.doomed xid

(* ---------------- lock-conflict resolution ---------------- *)

type lock_outcome = Granted | Abort_self

(* A blocked transaction cannot really be overtaken in a serial
   simulation, so a wait is simulated: charge the clock for the whole
   grace period and re-probe the lock once. *)
let simulate_wait t =
  t.stats.waits <- t.stats.waits + 1;
  t.stats.wait_time_s <- t.stats.wait_time_s +. t.settings.max_wait_s;
  Simclock.advance t.clock t.settings.max_wait_s

let wait_then_retry t ~xid ~rel ~key ~keep_edge =
  simulate_wait t;
  match Lockmgr.try_acquire t.lockmgr ~xid ~rel ~key with
  | Lockmgr.Granted ->
      Lockmgr.stop_waiting t.lockmgr ~xid;
      Granted
  | Lockmgr.Conflict _ | Lockmgr.Deadlock ->
      t.stats.wait_timeouts <- t.stats.wait_timeouts + 1;
      (* Under [Detect] the edge stays: the transaction is still logically
         stalled on that lock until it aborts (release clears it) or gets
         the lock later, and interleaved peers must see the edge to close
         cycles against it. *)
      if not keep_edge then Lockmgr.stop_waiting t.lockmgr ~xid;
      Abort_self

(* The cycle closed by the rejected edge [xid -> owner] is
   xid -> owner -> ... -> xid; collect its members from the wait-for
   graph. *)
let cycle_members t ~xid ~owner =
  let rec go acc cur steps =
    if steps > 1024 || cur = xid then acc
    else
      match Lockmgr.waits_for t.lockmgr ~xid:cur with
      | None -> acc
      | Some next -> go (cur :: acc) next (steps + 1)
  in
  xid :: go [ owner ] owner 0

let resolve_detect t ~xid ~rel ~key ~owner =
  match Lockmgr.wait_on t.lockmgr ~xid ~owner with
  | Lockmgr.Granted | Lockmgr.Conflict _ ->
      wait_then_retry t ~xid ~rel ~key ~keep_edge:true
  | Lockmgr.Deadlock ->
      t.stats.deadlocks <- t.stats.deadlocks + 1;
      let victim = List.fold_left max xid (cycle_members t ~xid ~owner) in
      if victim = xid then begin
        Lockmgr.stop_waiting t.lockmgr ~xid;
        Abort_self
      end
      else begin
        doom t victim;
        Lockmgr.stop_waiting t.lockmgr ~xid:victim;
        ignore (Lockmgr.wait_on t.lockmgr ~xid ~owner);
        wait_then_retry t ~xid ~rel ~key ~keep_edge:true
      end

let acquire t ~xid ~rel ~key =
  if is_doomed t ~xid then begin
    note_victim_abort t;
    Abort_self
  end
  else
    match Lockmgr.try_acquire t.lockmgr ~xid ~rel ~key with
    | Lockmgr.Granted ->
        Lockmgr.stop_waiting t.lockmgr ~xid;
        Granted
    | Lockmgr.Deadlock -> Abort_self
    | Lockmgr.Conflict owner -> (
        t.stats.conflicts <- t.stats.conflicts + 1;
        match t.settings.policy with
        | No_wait -> Abort_self
        | Wait_die ->
            (* xids are assigned in start order: smaller xid = older *)
            if xid < owner then wait_then_retry t ~xid ~rel ~key ~keep_edge:false
            else begin
              t.stats.dies <- t.stats.dies + 1;
              Abort_self
            end
        | Wound_wait ->
            if xid < owner then begin
              doom t owner;
              t.stats.wounds <- t.stats.wounds + 1
            end;
            wait_then_retry t ~xid ~rel ~key ~keep_edge:false
        | Detect -> resolve_detect t ~xid ~rel ~key ~owner)

(* ---------------- retry orchestrator ---------------- *)

type retry_config = {
  max_attempts : int;
  base_backoff_s : float;
  max_backoff_s : float;
  deadline_s : float option;
}

let retry_config ?(max_attempts = 6) ?(base_backoff_s = 0.002) ?(max_backoff_s = 0.25)
    ?deadline_s () =
  if max_attempts < 1 then invalid_arg "Contention.retry_config: max_attempts < 1";
  { max_attempts; base_backoff_s; max_backoff_s; deadline_s }

type give_up_reason = Attempts_exhausted | Deadline_exceeded

let give_up_reason_to_string = function
  | Attempts_exhausted -> "attempts exhausted"
  | Deadline_exceeded -> "deadline exceeded"

type 'a run_result = Completed of 'a * int | Gave_up of give_up_reason * int

let run_with_retries t ~cfg ~retryable ~f =
  let deadline =
    match cfg.deadline_s with
    | Some d -> Simclock.now t.clock +. d
    | None -> infinity
  in
  let rec go attempt =
    let r = f ~attempt in
    if not (retryable r) then Completed (r, attempt)
    else if attempt >= cfg.max_attempts then begin
      t.stats.give_ups <- t.stats.give_ups + 1;
      Gave_up (Attempts_exhausted, attempt)
    end
    else begin
      let backoff =
        Float.min cfg.max_backoff_s
          (cfg.base_backoff_s *. (2.0 ** float_of_int (attempt - 1)))
      in
      let backoff = backoff *. (0.5 +. Rng.float t.rng 0.5) in
      if Simclock.now t.clock +. backoff > deadline then begin
        t.stats.give_ups <- t.stats.give_ups + 1;
        Gave_up (Deadline_exceeded, attempt)
      end
      else begin
        Simclock.advance t.clock backoff;
        t.stats.backoff_time_s <- t.stats.backoff_time_s +. backoff;
        t.stats.retries <- t.stats.retries + 1;
        (match obs t with
        | Some b -> Bus.publish b (Bus.Txn_retry { attempt = attempt + 1 })
        | None -> ());
        go (attempt + 1)
      end
    end
  in
  go 1

(* ---------------- admission control ---------------- *)

type admission = Admitted | Shed

let set_backpressure t on = t.backpressure <- on
let backpressure t = t.backpressure

(* Crash semantics: in-flight and queued transactions died with the
   process; doom marks are meaningless for xids that no longer exist. *)
let reset_admission t =
  t.inflight <- 0;
  t.queue_depth <- 0;
  t.backpressure <- false;
  Hashtbl.reset t.doomed

let admit t =
  if t.backpressure then begin
    note_shed t;
    Shed
  end
  else
  match t.settings.max_inflight with
  | None -> Admitted
  | Some cap ->
      if t.inflight < cap then begin
        t.inflight <- t.inflight + 1;
        t.stats.admitted <- t.stats.admitted + 1;
        Admitted
      end
      else if t.queue_depth >= t.settings.queue_capacity then begin
        note_shed t;
        Shed
      end
      else begin
        t.queue_depth <- t.queue_depth + 1;
        t.stats.queued <- t.stats.queued + 1;
        if t.queue_depth > t.stats.max_queue_depth then
          t.stats.max_queue_depth <- t.queue_depth;
        (* The queue residence is charged in full: in the serial
           simulation no release can interleave with the wait itself, so
           a queued request only proceeds if a slot is free by the time
           the timeout has been paid. *)
        Simclock.advance t.clock t.settings.queue_timeout_s;
        t.queue_depth <- t.queue_depth - 1;
        if t.inflight < cap then begin
          t.inflight <- t.inflight + 1;
          t.stats.admitted <- t.stats.admitted + 1;
          Admitted
        end
        else begin
          note_shed t;
          Shed
        end
      end

let release t = if t.inflight > 0 then t.inflight <- t.inflight - 1

let inflight t = t.inflight

let pp_stats fmt s =
  if s.conflicts > 0 || s.waits > 0 then
    Format.fprintf fmt "contention: %d lock conflicts | %d waits (%.3fs, %d timeouts)@."
      s.conflicts s.waits s.wait_time_s s.wait_timeouts;
  if s.dies > 0 || s.wounds > 0 || s.deadlocks > 0 || s.victim_aborts > 0 then
    Format.fprintf fmt "contention: %d dies | %d wounds | %d deadlocks | %d victim aborts@."
      s.dies s.wounds s.deadlocks s.victim_aborts;
  if s.retries > 0 || s.give_ups > 0 then
    Format.fprintf fmt "contention: %d retries (backoff %.3fs) | %d give-ups@." s.retries
      s.backoff_time_s s.give_ups;
  if s.admitted > 0 || s.queued > 0 || s.shed > 0 then
    Format.fprintf fmt "contention: %d admitted | %d queued | %d shed | max queue depth %d@."
      s.admitted s.queued s.shed s.max_queue_depth
