type status = In_progress | Committed | Aborted

type t = { xid : int; snapshot : Snapshot.t; start_time : float }

(* The commit log is a dense 2-bits-per-xid array (PostgreSQL's CLOG):
   code 0 = never assigned, 1 = in progress, 2 = committed, 3 = aborted.
   Status lookup is a shift and a mask instead of a Hashtbl probe.

   Representation: codes are packed 16-per-word into a plain [int array]
   published through an [Atomic.t] holder. Readers are lock-free — two
   loads, a shift and a mask, from any domain. Writers serialize on a
   mutex (begin/commit/abort are control-plane; visibility checks are
   the hot path) and re-publish the array through the atomic holder
   after every store, so the release/acquire pair gives a racing reader
   everything up to the writer's latest publish; a reader that loses
   the race sees the previous state of a monotone log, never a torn
   word. [clog_bytes] mirrors the byte length the retired [Bytes.t]
   representation would have had (start 256, grow to
   [max (2*len) (byte+1)]) because the checkpoint image format — and
   therefore WAL record sizes and device byte counters in the committed
   goldens — depends on that exact growth law.

   The GC horizon is maintained incrementally: a multiset of the active
   snapshots' xmins (keyed min -> count) replaces the per-call fold over
   every active snapshot.

   [commit_lsn] tracks, per xid, the WAL lsn of a commit record that is
   not yet known durable; hint bits for a committed xid may only be set
   once that record has been flushed (0 = nothing pending). *)

module Imap = Map.Make (Int)

type mgr = {
  mutable next_xid : int;
  active : (int, Snapshot.t) Hashtbl.t;
  clog : int array Atomic.t;
  mutable clog_bytes : int;
  clog_lock : Mutex.t;
  mutable xmins : int Imap.t;
  mutable commit_lsn : int array;
  mutable flushed_probe : (unit -> int) option;
}

(* 16 codes per word: index and shift are mask/shift only (no division)
   and 32 of the 63 bits of an OCaml int are used. *)
let words_for_bytes bytes = (bytes + 3) lsr 2

let create_mgr () =
  {
    next_xid = 1;
    active = Hashtbl.create 64;
    clog = Atomic.make (Array.make (words_for_bytes 256) 0);
    clog_bytes = 256;
    clog_lock = Mutex.create ();
    xmins = Imap.empty;
    commit_lsn = [||];
    flushed_probe = None;
  }

let clog_get mgr xid =
  if xid < 1 then 0
  else begin
    let a = Atomic.get mgr.clog in
    let w = xid lsr 4 in
    if w >= Array.length a then 0
    else (Array.unsafe_get a w lsr ((xid land 15) * 2)) land 3
  end

(* Callers hold [clog_lock]. *)
let clog_set_locked mgr xid code =
  let byte = xid lsr 2 in
  if byte >= mgr.clog_bytes then
    mgr.clog_bytes <- Stdlib.max (2 * mgr.clog_bytes) (byte + 1);
  let a = Atomic.get mgr.clog in
  let w = xid lsr 4 in
  let a =
    if w < Array.length a then a
    else begin
      let len = Stdlib.max (words_for_bytes mgr.clog_bytes) (w + 1) in
      let b = Array.make len 0 in
      Array.blit a 0 b 0 (Array.length a);
      b
    end
  in
  let shift = (xid land 15) * 2 in
  a.(w) <- (a.(w) land lnot (3 lsl shift)) lor (code lsl shift);
  (* Publish: release store pairs with the reader's acquire load, making
     the plain store above (and all before it) visible cross-domain. *)
  Atomic.set mgr.clog a

let clog_set mgr xid code =
  if xid < 1 then invalid_arg "Txn: xid must be positive";
  Mutex.lock mgr.clog_lock;
  clog_set_locked mgr xid code;
  Mutex.unlock mgr.clog_lock

let active_xids mgr = Hashtbl.fold (fun xid _ acc -> xid :: acc) mgr.active []

let xmins_add mgr m =
  mgr.xmins <- Imap.update m (function None -> Some 1 | Some n -> Some (n + 1)) mgr.xmins

let xmins_remove mgr m =
  mgr.xmins <-
    Imap.update m (function Some 1 -> None | Some n -> Some (n - 1) | None -> None) mgr.xmins

let begin_txn ?(now = 0.0) mgr =
  let xid = mgr.next_xid in
  mgr.next_xid <- xid + 1;
  let concurrent = active_xids mgr in
  let snapshot = Snapshot.make ~xid ~xmax:(xid - 1) ~concurrent in
  Hashtbl.replace mgr.active xid snapshot;
  xmins_add mgr (Snapshot.xmin snapshot);
  clog_set mgr xid 1;
  { xid; snapshot; start_time = now }

let finish mgr t final =
  if clog_get mgr t.xid <> 1 then invalid_arg "Txn: transaction is not in progress";
  (match Hashtbl.find_opt mgr.active t.xid with
  | Some snap -> xmins_remove mgr (Snapshot.xmin snap)
  | None -> ());
  Hashtbl.remove mgr.active t.xid;
  clog_set mgr t.xid (match final with Committed -> 2 | _ -> 3)

let commit mgr t = finish mgr t Committed
let abort mgr t = finish mgr t Aborted

let status mgr xid =
  match clog_get mgr xid with
  | 1 -> In_progress
  | 2 -> Committed
  | 3 -> Aborted
  | _ ->
      (* Unassigned. Reachable after a crash: a checkpoint may flush a
         heap page carrying a tuple whose xid left no record in the
         durable log (e.g. the writer was refused at the WAL and
         aborted in degraded mode). No durable trace means no commit
         record, so the verdict is aborted. *)
      Aborted

let is_committed mgr xid = clog_get mgr xid = 2

let last_xid mgr = mgr.next_xid - 1

let horizon mgr =
  match Imap.min_binding_opt mgr.xmins with
  | Some (m, _) -> m
  | None -> mgr.next_xid

let visible mgr snap c =
  c = snap.Snapshot.xid || (Snapshot.sees_xid snap c && is_committed mgr c)

let set_next_xid mgr xid = mgr.next_xid <- Stdlib.max mgr.next_xid xid

let mark_recovered mgr ~xid ~committed =
  clog_set mgr xid (if committed then 2 else 3);
  if xid >= mgr.next_xid then mgr.next_xid <- xid + 1

(* CLOG snapshot, carried inside checkpoint WAL records so that log
   truncation cannot lose the outcome of transactions whose commit
   records were recycled: restore the image, then overlay the retained
   tail. In-progress codes in the image are flipped to aborted — a
   transaction still running at the checkpoint either has its commit
   record in the retained tail (the overlay wins) or never committed. *)
let clog_image mgr =
  (* Serialize to the retired byte format — 4 codes per byte, image
     length following the legacy growth law via [clog_bytes] — so
     checkpoint payloads (and hence WAL/device byte counts in the
     goldens) are unchanged by the word-packed representation. *)
  let a = Atomic.get mgr.clog in
  let words = Array.length a in
  let code xid =
    let w = xid lsr 4 in
    if w >= words then 0 else (a.(w) lsr ((xid land 15) * 2)) land 3
  in
  let image =
    String.init mgr.clog_bytes (fun b ->
        let x = 4 * b in
        Char.chr
          (code x
          lor (code (x + 1) lsl 2)
          lor (code (x + 2) lsl 4)
          lor (code (x + 3) lsl 6)))
  in
  (mgr.next_xid, image)

let clog_restore mgr ~next_xid ~image =
  Mutex.lock mgr.clog_lock;
  let bytes = String.length image in
  mgr.clog_bytes <- bytes;
  let a = Array.make (Stdlib.max 1 (words_for_bytes bytes)) 0 in
  for b = 0 to bytes - 1 do
    let packed = Char.code (String.unsafe_get image b) in
    for j = 0 to 3 do
      let code = (packed lsr (j * 2)) land 3 in
      if code <> 0 then begin
        let xid = (4 * b) + j in
        let shift = (xid land 15) * 2 in
        a.(xid lsr 4) <- a.(xid lsr 4) lor (code lsl shift)
      end
    done
  done;
  Atomic.set mgr.clog a;
  Mutex.unlock mgr.clog_lock;
  for xid = 1 to next_xid - 1 do
    if clog_get mgr xid = 1 then clog_set mgr xid 3
  done;
  mgr.next_xid <- Stdlib.max mgr.next_xid next_xid

(* Power loss: in-flight transactions are simply gone. Their clog codes
   stay in-progress until recovery's log scan adjudicates them. *)
let reset_active mgr =
  Hashtbl.reset mgr.active;
  mgr.xmins <- Imap.empty;
  mgr.commit_lsn <- [||];
  (* The clog is volatile: verdicts recorded only in memory (e.g. a
     group-committed transaction whose WAL record never reached the
     device) must not survive the crash. Recovery re-derives every
     durable verdict via [mark_recovered] / [clog_restore], both of
     which also advance [next_xid] past every xid seen in the log, so
     no xid with a durable trace can be re-issued. *)
  Mutex.lock mgr.clog_lock;
  let a = Atomic.get mgr.clog in
  Array.fill a 0 (Array.length a) 0;
  Atomic.set mgr.clog a;
  Mutex.unlock mgr.clog_lock;
  mgr.next_xid <- 1

let set_flushed_probe mgr f = mgr.flushed_probe <- Some f

let note_commit_lsn mgr ~xid ~lsn =
  if xid >= 0 then begin
    if xid >= Array.length mgr.commit_lsn then begin
      let len = Stdlib.max 1024 (Stdlib.max (2 * Array.length mgr.commit_lsn) (xid + 1)) in
      let a = Array.make len 0 in
      Array.blit mgr.commit_lsn 0 a 0 (Array.length mgr.commit_lsn);
      mgr.commit_lsn <- a
    end;
    mgr.commit_lsn.(xid) <- lsn
  end

let durably_committed mgr xid =
  xid < 0
  || xid >= Array.length mgr.commit_lsn
  ||
  let lsn = mgr.commit_lsn.(xid) in
  lsn = 0
  ||
  match mgr.flushed_probe with
  | None ->
      mgr.commit_lsn.(xid) <- 0;
      true
  | Some probe ->
      probe () >= lsn
      && begin
           mgr.commit_lsn.(xid) <- 0;
           true
         end
