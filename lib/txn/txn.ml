type status = In_progress | Committed | Aborted

type t = { xid : int; snapshot : Snapshot.t; start_time : float }

(* The commit log is a dense 2-bits-per-xid array (PostgreSQL's CLOG):
   code 0 = never assigned, 1 = in progress, 2 = committed, 3 = aborted.
   Status lookup is a shift and a mask instead of a Hashtbl probe.

   The GC horizon is maintained incrementally: a multiset of the active
   snapshots' xmins (keyed min -> count) replaces the per-call fold over
   every active snapshot.

   [commit_lsn] tracks, per xid, the WAL lsn of a commit record that is
   not yet known durable; hint bits for a committed xid may only be set
   once that record has been flushed (0 = nothing pending). *)

module Imap = Map.Make (Int)

type mgr = {
  mutable next_xid : int;
  active : (int, Snapshot.t) Hashtbl.t;
  mutable clog : Bytes.t;
  mutable xmins : int Imap.t;
  mutable commit_lsn : int array;
  mutable flushed_probe : (unit -> int) option;
}

let create_mgr () =
  {
    next_xid = 1;
    active = Hashtbl.create 64;
    clog = Bytes.make 256 '\000';
    xmins = Imap.empty;
    commit_lsn = [||];
    flushed_probe = None;
  }

let clog_get mgr xid =
  let byte = xid lsr 2 in
  if xid < 1 || byte >= Bytes.length mgr.clog then 0
  else (Char.code (Bytes.unsafe_get mgr.clog byte) lsr ((xid land 3) * 2)) land 3

let clog_set mgr xid code =
  if xid < 1 then invalid_arg "Txn: xid must be positive";
  let byte = xid lsr 2 in
  if byte >= Bytes.length mgr.clog then begin
    let len = Stdlib.max (2 * Bytes.length mgr.clog) (byte + 1) in
    let b = Bytes.make len '\000' in
    Bytes.blit mgr.clog 0 b 0 (Bytes.length mgr.clog);
    mgr.clog <- b
  end;
  let shift = (xid land 3) * 2 in
  let cur = Char.code (Bytes.get mgr.clog byte) in
  Bytes.set mgr.clog byte (Char.chr ((cur land lnot (3 lsl shift)) lor (code lsl shift)))

let active_xids mgr = Hashtbl.fold (fun xid _ acc -> xid :: acc) mgr.active []

let xmins_add mgr m =
  mgr.xmins <- Imap.update m (function None -> Some 1 | Some n -> Some (n + 1)) mgr.xmins

let xmins_remove mgr m =
  mgr.xmins <-
    Imap.update m (function Some 1 -> None | Some n -> Some (n - 1) | None -> None) mgr.xmins

let begin_txn ?(now = 0.0) mgr =
  let xid = mgr.next_xid in
  mgr.next_xid <- xid + 1;
  let concurrent = active_xids mgr in
  let snapshot = Snapshot.make ~xid ~xmax:(xid - 1) ~concurrent in
  Hashtbl.replace mgr.active xid snapshot;
  xmins_add mgr (Snapshot.xmin snapshot);
  clog_set mgr xid 1;
  { xid; snapshot; start_time = now }

let finish mgr t final =
  if clog_get mgr t.xid <> 1 then invalid_arg "Txn: transaction is not in progress";
  (match Hashtbl.find_opt mgr.active t.xid with
  | Some snap -> xmins_remove mgr (Snapshot.xmin snap)
  | None -> ());
  Hashtbl.remove mgr.active t.xid;
  clog_set mgr t.xid (match final with Committed -> 2 | _ -> 3)

let commit mgr t = finish mgr t Committed
let abort mgr t = finish mgr t Aborted

let status mgr xid =
  match clog_get mgr xid with
  | 1 -> In_progress
  | 2 -> Committed
  | 3 -> Aborted
  | _ ->
      (* Unassigned. Reachable after a crash: a checkpoint may flush a
         heap page carrying a tuple whose xid left no record in the
         durable log (e.g. the writer was refused at the WAL and
         aborted in degraded mode). No durable trace means no commit
         record, so the verdict is aborted. *)
      Aborted

let is_committed mgr xid = clog_get mgr xid = 2

let last_xid mgr = mgr.next_xid - 1

let horizon mgr =
  match Imap.min_binding_opt mgr.xmins with
  | Some (m, _) -> m
  | None -> mgr.next_xid

let visible mgr snap c =
  c = snap.Snapshot.xid || (Snapshot.sees_xid snap c && is_committed mgr c)

let set_next_xid mgr xid = mgr.next_xid <- Stdlib.max mgr.next_xid xid

let mark_recovered mgr ~xid ~committed =
  clog_set mgr xid (if committed then 2 else 3);
  if xid >= mgr.next_xid then mgr.next_xid <- xid + 1

(* CLOG snapshot, carried inside checkpoint WAL records so that log
   truncation cannot lose the outcome of transactions whose commit
   records were recycled: restore the image, then overlay the retained
   tail. In-progress codes in the image are flipped to aborted — a
   transaction still running at the checkpoint either has its commit
   record in the retained tail (the overlay wins) or never committed. *)
let clog_image mgr = (mgr.next_xid, Bytes.to_string mgr.clog)

let clog_restore mgr ~next_xid ~image =
  mgr.clog <- Bytes.of_string image;
  for xid = 1 to next_xid - 1 do
    if clog_get mgr xid = 1 then clog_set mgr xid 3
  done;
  mgr.next_xid <- Stdlib.max mgr.next_xid next_xid

(* Power loss: in-flight transactions are simply gone. Their clog codes
   stay in-progress until recovery's log scan adjudicates them. *)
let reset_active mgr =
  Hashtbl.reset mgr.active;
  mgr.xmins <- Imap.empty;
  mgr.commit_lsn <- [||];
  (* The clog is volatile: verdicts recorded only in memory (e.g. a
     group-committed transaction whose WAL record never reached the
     device) must not survive the crash. Recovery re-derives every
     durable verdict via [mark_recovered] / [clog_restore], both of
     which also advance [next_xid] past every xid seen in the log, so
     no xid with a durable trace can be re-issued. *)
  Bytes.fill mgr.clog 0 (Bytes.length mgr.clog) '\000';
  mgr.next_xid <- 1

let set_flushed_probe mgr f = mgr.flushed_probe <- Some f

let note_commit_lsn mgr ~xid ~lsn =
  if xid >= 0 then begin
    if xid >= Array.length mgr.commit_lsn then begin
      let len = Stdlib.max 1024 (Stdlib.max (2 * Array.length mgr.commit_lsn) (xid + 1)) in
      let a = Array.make len 0 in
      Array.blit mgr.commit_lsn 0 a 0 (Array.length mgr.commit_lsn);
      mgr.commit_lsn <- a
    end;
    mgr.commit_lsn.(xid) <- lsn
  end

let durably_committed mgr xid =
  xid < 0
  || xid >= Array.length mgr.commit_lsn
  ||
  let lsn = mgr.commit_lsn.(xid) in
  lsn = 0
  ||
  match mgr.flushed_probe with
  | None ->
      mgr.commit_lsn.(xid) <- 0;
      true
  | Some probe ->
      probe () >= lsn
      && begin
           mgr.commit_lsn.(xid) <- 0;
           true
         end
