(** Contention management: conflict policies, bounded retry with backoff,
    and admission control.

    The engines serialize writers per data item through {!Lockmgr} under
    first-updater-wins. This module decides what happens on a lock
    conflict — abort at once ([No_wait], the historical behaviour), wait
    with an age-based priority ([Wait_die], [Wound_wait]), or wait under
    explicit deadlock detection on the wait-for graph ([Detect]) — and
    gives clients a retry orchestrator (capped exponential backoff with
    deterministic jitter, attempt- and deadline-bounded) plus a
    max-in-flight admission gate with queue-timeout shedding.

    The execution substrate is a serial discrete-event simulation: a
    blocked transaction cannot actually be overtaken while it "waits", so
    waiting is simulated — the simulated clock is charged and the lock is
    re-probed once. Under [Wound_wait] and [Detect] the loser of a
    priority or cycle decision is {e doomed}: its next lock acquisition
    fails, and a doomed transaction reaching commit is aborted and
    {!Wounded} is raised. Progress under contention comes from the
    client-level retry loop, exactly as in DBT2/TPC-C practice. *)

type policy =
  | No_wait  (** conflicting request aborts immediately (default) *)
  | Wait_die  (** older requesters wait, younger ones die *)
  | Wound_wait  (** older requesters wound (doom) the owner, younger wait *)
  | Detect  (** wait-for-graph deadlock detection, youngest victim *)

val policy_to_string : policy -> string
val policy_of_string : string -> (policy, string) result
val all_policies : policy list

type settings = {
  policy : policy;
  seed : int;  (** seeds the backoff-jitter generator *)
  max_wait_s : float;  (** simulated time charged per futile lock wait *)
  max_inflight : int option;  (** admission cap; [None] = unlimited *)
  queue_capacity : int;  (** waiting slots beyond the in-flight cap *)
  queue_timeout_s : float;  (** queue residence before a request is shed *)
}

val default_settings : settings
(** [No_wait], unlimited admission: byte-for-byte the historical
    behaviour — no waiting, no clock charges, no extra randomness. *)

type stats = {
  mutable conflicts : int;  (** lock conflicts that reached the policy *)
  mutable waits : int;  (** simulated waits performed *)
  mutable wait_time_s : float;
  mutable wait_timeouts : int;  (** waits that expired without the lock *)
  mutable dies : int;  (** wait-die: younger requester died *)
  mutable wounds : int;  (** wound-wait: owner doomed by an older requester *)
  mutable deadlocks : int;  (** detect: cycles found in the wait-for graph *)
  mutable victim_aborts : int;  (** doomed transactions observed aborting *)
  mutable retries : int;  (** orchestrator resubmissions *)
  mutable backoff_time_s : float;
  mutable give_ups : int;  (** orchestrator runs that surfaced [Gave_up] *)
  mutable admitted : int;
  mutable queued : int;  (** admissions that waited in the queue *)
  mutable shed : int;  (** requests dropped by the admission gate *)
  mutable max_queue_depth : int;
}

type t

exception Wounded of int
(** Raised by {!Db.commit} (via {!is_doomed}) when a wounded/victim
    transaction reaches commit; the transaction has been aborted. *)

val create :
  ?settings:settings ->
  ?bus:Sias_obs.Bus.t -> clock:Sias_util.Simclock.t -> lockmgr:Lockmgr.t -> unit -> t

val settings : t -> settings
val stats : t -> stats

(** {1 Lock-conflict resolution} *)

type lock_outcome =
  | Granted
  | Abort_self  (** the requester must abort (map to [Write_conflict]) *)

val acquire : t -> xid:int -> rel:int -> key:int -> lock_outcome
(** Acquire the (rel, key) writer lock for [xid], resolving conflicts per
    the configured policy. Doomed transactions always get [Abort_self]. *)

val is_doomed : t -> xid:int -> bool
val note_victim_abort : t -> unit
val finished : t -> xid:int -> unit
(** Forget per-transaction state (doom marks); call on commit/abort. *)

(** {1 Retry orchestrator} *)

type retry_config = {
  max_attempts : int;  (** total attempts, >= 1; 1 = no retry *)
  base_backoff_s : float;
  max_backoff_s : float;
  deadline_s : float option;
      (** per-transaction deadline, simulated seconds from first attempt *)
}

val retry_config :
  ?max_attempts:int ->
  ?base_backoff_s:float ->
  ?max_backoff_s:float ->
  ?deadline_s:float ->
  unit ->
  retry_config
(** Defaults: 6 attempts, 2 ms base doubling to a 250 ms cap, no
    deadline. *)

type give_up_reason = Attempts_exhausted | Deadline_exceeded

val give_up_reason_to_string : give_up_reason -> string

type 'a run_result =
  | Completed of 'a * int  (** final result, attempts used *)
  | Gave_up of give_up_reason * int

val run_with_retries :
  t -> cfg:retry_config -> retryable:('a -> bool) -> f:(attempt:int -> 'a) -> 'a run_result
(** Run [f] until it returns a non-retryable result, sleeping (simulated)
    [min max_backoff (base * 2^(attempt-1))] scaled by a deterministic
    jitter in [0.5, 1) between attempts. Bounded by [max_attempts] and by
    [deadline_s] of simulated time measured from the first attempt. *)

(** {1 Admission control} *)

type admission = Admitted | Shed

val admit : t -> admission
(** Reserve an in-flight slot. Over the cap, the request queues (bounded
    by [queue_capacity]) and is charged up to [queue_timeout_s] of
    simulated time before being shed. Unlimited gates are free no-ops. *)

val release : t -> unit
val inflight : t -> int

val set_backpressure : t -> bool -> unit
(** Resource-exhaustion gate (e.g. the WAL near its capacity): while on,
    {!admit} sheds every request immediately — even with no in-flight
    cap configured — so writers back off until reclamation catches up.
    Shed counts and [Txn_shed] bus events account for it as usual. *)

val backpressure : t -> bool

val reset_admission : t -> unit
(** Crash semantics: zero the in-flight/queue occupancy, clear doom
    marks and release backpressure — no admitted transaction survived
    the process. *)

val pp_stats : Format.formatter -> stats -> unit
(** One line per non-zero counter group; prints nothing when every
    counter is zero. *)
