(* The concurrent set is a sorted immutable int array: snapshots are
   built once at transaction begin and probed on every visibility check,
   so a cache-friendly binary search beats a balanced tree. *)

type t = { xid : int; xmax : int; concurrent : int array }

let make ~xid ~xmax ~concurrent =
  { xid; xmax; concurrent = Array.of_list (List.sort_uniq Int.compare concurrent) }

(* Allocation-free: bounds pre-check short-circuits the common case of a
   transaction older than every concurrent one, and the tail-recursive
   search needs no ref cells. *)
let rec search a c lo hi =
  if lo >= hi then false
  else
    let mid = (lo + hi) / 2 in
    let v = Array.unsafe_get a mid in
    if v = c then true
    else if v < c then search a c (mid + 1) hi
    else search a c lo mid

let mem a c =
  let n = Array.length a in
  n > 0
  && c >= Array.unsafe_get a 0
  && c <= Array.unsafe_get a (n - 1)
  && search a c 0 n

let is_concurrent t c = mem t.concurrent c

let sees_xid t c = c = t.xid || (c <= t.xmax && not (mem t.concurrent c))

(* Sorted, so the oldest concurrent transaction is element 0. *)
let xmin t =
  if Array.length t.concurrent = 0 then t.xid
  else Stdlib.min t.concurrent.(0) t.xid

let pp fmt t =
  Format.fprintf fmt "{xid=%d; xmax=%d; concurrent=[%s]}" t.xid t.xmax
    (String.concat ";" (List.map string_of_int (Array.to_list t.concurrent)))
