(** Transaction manager: xid allocation, snapshots, commit log.

    Transaction ids are the timestamps of the paper — monotonically
    increasing integers. The manager tracks which transactions are in
    progress (feeding [tx_concurrent] of new snapshots) and keeps a commit
    log (clog) recording the final status of every finished transaction,
    which the visibility check consults.

    The clog is a dense 2-bits-per-xid word-packed array published
    through an atomic holder: status reads ([status], [is_committed],
    [visible]) are lock-free — two loads, a shift and a mask — and safe
    from any domain, while writers (begin/commit/abort/recovery)
    serialize on an internal mutex and re-publish after every store. A
    reader racing a writer sees the monotone log's previous state, never
    a torn word. The GC horizon is an incrementally maintained minimum
    over active snapshot xmins, so both [status] and [horizon] are O(1)
    on the hot path. Everything except clog reads remains single-writer:
    one domain owns the manager, other domains may only query status. *)

type status = In_progress | Committed | Aborted

type t = {
  xid : int;
  snapshot : Snapshot.t;
  start_time : float;
}

type mgr

val create_mgr : unit -> mgr

val begin_txn : ?now:float -> mgr -> t
(** Allocate the next xid and take a snapshot of the active set. *)

val commit : mgr -> t -> unit
(** Raises [Invalid_argument] if the transaction is not in progress. *)

val abort : mgr -> t -> unit

val status : mgr -> int -> status
(** Status of an xid. Unknown xids are [Aborted]: after a crash a heap
    page may carry a tuple whose xid left no durable WAL trace, and no
    durable trace means no commit record. *)

val is_committed : mgr -> int -> bool

val active_xids : mgr -> int list
val last_xid : mgr -> int

val horizon : mgr -> int
(** The GC horizon: every transaction with xid below this value that
    committed is visible to all current and future snapshots (PostgreSQL's
    RecentGlobalXmin). Computed as the minimum, over active transactions,
    of the lowest xid their snapshot considers in progress; when nothing
    is active it is the next xid to be assigned. *)

val visible : mgr -> Snapshot.t -> int -> bool
(** [visible mgr snap c]: the full SI visibility predicate for a version
    created by [c] — own write, or snapshot-visible and committed. *)

val set_next_xid : mgr -> int -> unit
(** Recovery: restore the xid counter from the log. *)

val mark_recovered : mgr -> xid:int -> committed:bool -> unit
(** Recovery: record the final status of a transaction found in the log.
    Transactions with no commit record are implicitly aborted. *)

val clog_image : mgr -> int * string
(** Snapshot the commit log as [(next_xid, dense image)] for embedding
    in a checkpoint WAL record, so truncating the log below that record
    cannot lose the outcome of already-adjudicated transactions. *)

val clog_restore : mgr -> next_xid:int -> image:string -> unit
(** Recovery from a checkpoint record: install the snapshotted commit
    log, flipping in-progress entries to aborted (their commit records,
    if any, are in the retained tail and overlay this afterwards). The
    xid counter only moves forward. *)

val reset_active : mgr -> unit
(** Crash semantics: no volatile transaction state survives. The
    in-flight set, pending commit-lsn notes, the whole commit log and
    the xid counter are wiped — a verdict recorded only in memory (a
    commit whose WAL record was never flushed) must not outlive the
    process. Recovery re-derives every durable verdict with
    [mark_recovered] / [clog_restore], which also restore [next_xid]
    past every xid with a durable trace. *)

(** {2 Hint-bit durability gate}

    Tuple hint bits persist to storage, so a "committed" hint must never
    reach disk before the commit record itself is durable: a crash in
    between would recover the xid as aborted while the hint says
    committed. Commits whose WAL record is not yet flushed are noted via
    [note_commit_lsn]; [durably_committed] consults the registered
    flushed-lsn probe and clears the note once the record is on disk. *)

val set_flushed_probe : mgr -> (unit -> int) -> unit
(** Register a probe returning the highest flushed WAL lsn. *)

val note_commit_lsn : mgr -> xid:int -> lsn:int -> unit
(** Record that [xid]'s commit record sits at [lsn] and is not yet known
    durable (used by group/async commit). *)

val durably_committed : mgr -> int -> bool
(** Whether a committed [xid]'s commit record is known durable, i.e. a
    committed hint bit may be persisted for it. Always true when no lsn
    was noted (synchronous commit, recovery, no WAL). *)
