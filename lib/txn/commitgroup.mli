(** Group-commit bookkeeping (PostgreSQL [commit_delay]).

    A committing transaction {!register}s in the open group (opening one
    if none is); the group stays open for a [delay] window measured from
    the first member's registration. Once simulated time passes the
    deadline, the executor (the commit pipeline in [Sias_wal]) detaches
    the group with {!take_due}, performs one fsync covering every
    member's commit record, and reports the shared completion time
    through {!resolve}; the workload driver then picks up per-member
    completions from {!drain_resolved} and releases the waiting
    terminals.

    This module is pure bookkeeping — no clock, no WAL, no I/O — so the
    window/membership logic is testable in isolation and [Sias_txn]
    gains no storage dependency. *)

type member = { seq : int; xid : int; lsn : int; registered_at : float }

type group = {
  opened_at : float;
  deadline : float;  (** [opened_at + delay] *)
  mutable members : member list;  (** newest first *)
  mutable high_lsn : int;
      (** highest commit-record LSN in the group: one flush covering
          this LSN makes every member durable (WAL flushes are prefix
          flushes) *)
}

type t

val create : delay:float -> t

val register : t -> now:float -> xid:int -> lsn:int -> int
(** Join the open group (or open one with deadline [now + delay]);
    returns a ticket the driver uses to match the completion from
    {!drain_resolved}. The caller must close an overdue group first —
    {!register} never extends a deadline. *)

val open_deadline : t -> float option
(** Deadline of the currently open group, if any. *)

val open_size : t -> int

val take_due : t -> upto:float -> group option
(** Detach the open group if its deadline is at or before [upto]
    ([upto = infinity] force-closes); the caller fsyncs and then calls
    {!resolve}. *)

val resolve : t -> group -> completion:float -> unit
(** Record the group's shared fsync completion: every member's ticket is
    queued for {!drain_resolved} with that completion time, and the
    group/size/fsyncs-saved statistics are updated. *)

val drain_resolved : t -> (int * float) list
(** Completed (ticket, completion) pairs in registration order; clears
    the queue. *)

val groups : t -> int
val grouped_commits : t -> int

val fsyncs_saved : t -> int
(** Sum over resolved groups of (size - 1): commits that did not pay
    their own fsync. *)

val max_group : t -> int
val reset_stats : t -> unit
