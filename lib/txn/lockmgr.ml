type outcome = Granted | Conflict of int | Deadlock

type t = {
  locks : (int * int, int) Hashtbl.t; (* (rel, key) -> owner xid *)
  owned : (int, (int * int) list) Hashtbl.t; (* xid -> keys held *)
  waiting : (int, int) Hashtbl.t; (* xid -> owner it waits on *)
}

let create () =
  { locks = Hashtbl.create 256; owned = Hashtbl.create 64; waiting = Hashtbl.create 16 }

let try_acquire t ~xid ~rel ~key =
  let k = (rel, key) in
  match Hashtbl.find_opt t.locks k with
  | Some owner when owner = xid -> Granted
  | Some owner -> Conflict owner
  | None ->
      Hashtbl.replace t.locks k xid;
      let held = Option.value ~default:[] (Hashtbl.find_opt t.owned xid) in
      Hashtbl.replace t.owned xid (k :: held);
      Granted

(* Follow wait edges from [start]; a path back to [target] is a cycle. *)
let reaches t ~start ~target =
  let rec go xid steps =
    if steps > 1024 then true (* defensive: treat pathological depth as a cycle *)
    else
      match Hashtbl.find_opt t.waiting xid with
      | None -> false
      | Some next -> next = target || go next (steps + 1)
  in
  go start 0

let wait_on t ~xid ~owner =
  if xid = owner then Deadlock
  else if reaches t ~start:owner ~target:xid then Deadlock
  else begin
    Hashtbl.replace t.waiting xid owner;
    Granted
  end

let stop_waiting t ~xid = Hashtbl.remove t.waiting xid

let waits_for t ~xid = Hashtbl.find_opt t.waiting xid

let waiters_of t ~owner =
  Hashtbl.fold (fun xid o acc -> if o = owner then xid :: acc else acc) t.waiting []

let release_all t ~xid =
  (match Hashtbl.find_opt t.owned xid with
  | Some keys -> List.iter (Hashtbl.remove t.locks) keys
  | None -> ());
  Hashtbl.remove t.owned xid;
  Hashtbl.remove t.waiting xid;
  (* The released transaction can no longer block anyone: drop inbound
     wait edges too, or they dangle at a dead owner and later cycle walks
     traverse (and, past the depth cap, misreport) garbage. *)
  let inbound =
    Hashtbl.fold (fun w o acc -> if o = xid then w :: acc else acc) t.waiting []
  in
  List.iter (Hashtbl.remove t.waiting) inbound;
  assert (waiters_of t ~owner:xid = [])

(* Crash semantics: every in-flight transaction evaporated with the
   process, so no lock or wait edge survives. *)
let reset t =
  Hashtbl.reset t.locks;
  Hashtbl.reset t.owned;
  Hashtbl.reset t.waiting

let holder t ~rel ~key = Hashtbl.find_opt t.locks (rel, key)

let held_count t ~xid =
  match Hashtbl.find_opt t.owned xid with Some l -> List.length l | None -> 0
