(** Transaction snapshots.

    A snapshot captures, at transaction start, the highest assigned
    transaction id ([xmax]) and the set of transactions that were running
    concurrently ([tx_concurrent] in the paper's Algorithm 1). Visibility
    of a tuple version created by transaction [c] requires that [c]
    committed before the snapshot: [c <= xmax] and [c] not concurrent —
    exactly the check in the paper's [isVisible].

    The concurrent set is a sorted immutable int array probed by binary
    search: snapshots are write-once, read-many, and a contiguous array
    keeps the hot visibility probe in cache. *)

type t = { xid : int; xmax : int; concurrent : int array }
(** [concurrent] is sorted ascending and duplicate-free; treat it as
    immutable. *)

val make : xid:int -> xmax:int -> concurrent:int list -> t

val sees_xid : t -> int -> bool
(** [sees_xid s c] — purely snapshot-relative part of visibility: [c] is
    the snapshot owner itself, or started before the snapshot and was not
    in progress at snapshot time. The commit-status part lives with the
    transaction manager. *)

val is_concurrent : t -> int -> bool

val xmin : t -> int
(** Lowest xid the snapshot regards as possibly in progress: the oldest
    concurrent transaction, or the owner itself when none. O(1). *)

val pp : Format.formatter -> t -> unit
