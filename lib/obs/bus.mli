(** Typed observability event bus.

    Every layer of the stack (device model, buffer pool, WAL, background
    writer, contention manager, engines, TPC-C driver) publishes into one
    bus per database context; any number of consumers — the SI invariant
    checker, the metrics recorder, the span tracer — subscribe to it.

    The event type is extensible so higher layers can add constructors
    carrying their own payload types (the MVCC layer adds row-level
    events with [Value.t array] payloads) without this library depending
    on them.

    {b Overhead when off}: publishing sites must guard event construction
    with {!active}; with no subscribers the whole observability path costs
    one branch per site and allocates nothing. *)

type event = ..

type io_op = Io_read | Io_write

type event +=
  | Txn_begin of { xid : int }
  | Txn_commit of { xid : int }
  | Txn_abort of { xid : int }
  | Txn_retry of { attempt : int }  (** a conflict-aborted tx is resubmitted *)
  | Txn_shed  (** the admission gate turned a request away *)
  | Page_hit of { rel : int; block : int }
  | Page_miss of { rel : int; block : int }
  | Page_evict of { rel : int; block : int; dirty : bool }
  | Page_flush of { rel : int; block : int; sync : bool }
  | Page_repair of { rel : int; block : int }
      (** a corrupt page was rebuilt from WAL full-page images *)
  | Page_trim of { rel : int; block : int }
  | Wal_append of { kind : string; bytes : int }
  | Wal_flush of { sync : bool; bytes : int }
  | Commit_group of { size : int }
      (** one commit-group fsync covered [size] member commits (group
          commit; [size - 1] per-commit fsyncs were saved) *)
  | Device_io of {
      device : string;
      op : io_op;
      sector : int;
      bytes : int;
      latency_s : float;  (** queueing + service time of this request *)
    }
  | Device_trim of { device : string; sector : int; bytes : int }
  | Fault_hit of { kind : string; sector : int }
      (** an injected fault bit: transient read error, checksum failure,
          torn data-page or WAL write *)
  | Hint_set of { rel : int; committed : bool }
      (** a tuple hint bit was persisted: the creating/invalidating
          transaction's fate is now cached on the tuple itself *)
  | Hint_hit of { rel : int }
      (** a visibility check was answered by a hint bit — one CLOG
          lookup avoided *)
  | Checkpoint of { pages : int }
  | Bgwriter_pass of { pages : int }
  | Ftl_gc of { device : string; moved_pages : int; erases : int }
      (** flash garbage collection performed inside a host request *)
  | Span of { cat : string; name : string; tid : int; t0 : float; t1 : float }
      (** a timed operation, in absolute simulated seconds *)
  | Repl_ship of { records : int; bytes : int }
      (** the replication sender handed a batch of WAL records to the link *)
  | Repl_install of { records : int }
      (** the standby installed contiguous records into its own log *)
  | Repl_ack of { lsn : int }
      (** a cumulative standby acknowledgement reached the sender *)
  | Repl_degraded
      (** a remote-flush commit gave up waiting on the standby (partition
          or persistent loss) and acknowledged on local durability alone *)
  | Wal_reclaim of { upto_lsn : int; freed_bytes : int }
      (** an emergency checkpoint recycled the log below [upto_lsn]
          (capacity pressure), freeing [freed_bytes] *)
  | Backpressure of { on : bool; usage : float }
      (** the admission gate toggled resource-exhaustion shedding at the
          given WAL usage fraction *)
  | Degraded of { subsystem : string; reason : string }
      (** a subsystem fell back to loud read-only degraded mode instead
          of corrupting state or aborting the process *)
  | Ssi_siread of { xid : int; rel : int; predicate : bool }
      (** serializable mode took a SIREAD lock — per-row, or a
          whole-relation predicate lock ([predicate = true]) for scans *)
  | Ssi_rw_edge of { reader : int; writer : int; lineage : bool }
      (** an rw-antidependency edge [reader -> writer] was recorded;
          [lineage] tells whether it was discovered by walking co-located
          SIAS version lineage rather than probing the lock table *)
  | Ssi_pivot_abort of { xid : int; confirmed : bool }
      (** dangerous-structure detection aborted a pivot; [confirmed]
          means a neighbor on the structure had already committed (the
          necessary condition for a real cycle), [false] marks a
          conservative (possibly false-positive) abort *)
  | Wsi_certify_abort of { xid : int }
      (** write-snapshot isolation's read-write certification failed: a
          key in the read set was overwritten by a concurrent committed
          transaction *)
  | Ssi_safe_snapshot of { xid : int }
      (** a read-only transaction began on a safe snapshot (no concurrent
          transactions) and is exempt from SIREAD tracking *)
  | Index_split of { rel : int; level : int }
      (** a paged-index node at [level] (0 = leaf) split, allocating a
          new right sibling in relation [rel] *)
  | Index_merge of { rel : int; level : int }
      (** an emptied paged-index node at [level] was unlinked into its
          left sibling *)
  | Index_page_io of { rel : int; block : int; deltas : int }
      (** one index page received [deltas] logged slot deltas from a
          WAL-first structural change (normal path or redo) *)

val io_op_to_string : io_op -> string
(** ["read"] or ["write"]. *)

type t

val create : unit -> t
(** A bus with no subscribers: {!active} is [false] and {!publish} is a
    no-op. The bus is owned by the creating domain: {!publish} and
    {!subscribe} from any other domain fail loudly, because subscribers
    are unsynchronized closures. See {!set_shared}. *)

val set_shared : t -> unit
(** Lift the owner-domain assertion: every subscriber on this bus is
    declared thread-safe (does its own locking). Use sparingly — the
    sharded design wants one bus per domain. *)

val adopt : t -> unit
(** Transfer ownership to the calling domain (e.g. a bus created on the
    coordinator and handed to a worker before any events flow). *)

val subscribe : t -> (event -> unit) -> unit
(** Add a consumer; it sees every subsequently published event, in
    publication order, after previously registered consumers. *)

val active : t -> bool
(** [true] once anyone subscribed. Publishing sites check this before
    building an event so the disabled path allocates nothing. *)

val publish : t -> event -> unit

val subscriber_count : t -> int
