type state = {
  m : Metrics.t;
  txn : (string, Metrics.counter) Hashtbl.t;
  page : (string, Metrics.counter) Hashtbl.t;
  wal_records : (string, Metrics.counter) Hashtbl.t;
  wal_bytes : Metrics.counter;
  wal_flushes : (bool, Metrics.counter) Hashtbl.t;
  wal_flush_bytes : Metrics.counter;
  (* created on the first Commit_group event so runs without group
     commit export exactly the historical metric set *)
  mutable commit_group_metrics :
    (Metrics.counter * Metrics.counter * Metrics.counter * Metrics.histogram)
    option;
  dev_io : (string * Bus.io_op, Metrics.counter) Hashtbl.t;
  dev_bytes : (string * Bus.io_op, Metrics.counter) Hashtbl.t;
  dev_lat : (string * Bus.io_op, Metrics.histogram) Hashtbl.t;
  faults : (string, Metrics.counter) Hashtbl.t;
  (* created on the first hint event so runs predating hint bits export
     exactly the historical metric set *)
  hints : (string, Metrics.counter) Hashtbl.t;
  mutable clog_avoided : Metrics.counter option;
  checkpoints : Metrics.counter;
  checkpoint_pages : Metrics.counter;
  bgwriter_passes : Metrics.counter;
  bgwriter_pages : Metrics.counter;
  gc_runs : (string, Metrics.counter) Hashtbl.t;
  gc_erases : (string, Metrics.counter) Hashtbl.t;
  gc_moved : (string, Metrics.counter) Hashtbl.t;
  spans : (string * string, Metrics.histogram) Hashtbl.t;
  (* created on the first Repl_* event so runs without replication export
     exactly the historical metric set *)
  mutable repl :
    (Metrics.counter * Metrics.counter * Metrics.counter * Metrics.counter
    * Metrics.counter * Metrics.gauge)
    option;
  (* created on the first resource-pressure event (reclaim, backpressure,
     degraded) so unbounded runs export the historical metric set *)
  pressure : (string, Metrics.counter) Hashtbl.t;
  (* created on the first SSI/WSI event so plain-SI runs export exactly
     the historical metric set *)
  ssi : (string, Metrics.counter) Hashtbl.t;
  (* created on the first paged-index event so array-index runs export
     exactly the historical metric set *)
  ix : (string, Metrics.counter) Hashtbl.t;
  mutable ssi_pivot_total : int;
  mutable ssi_pivot_confirmed : int;
  mutable ssi_fpr : Metrics.gauge option;
}

let memo tbl key fresh =
  match Hashtbl.find_opt tbl key with
  | Some v -> v
  | None ->
      let v = fresh () in
      Hashtbl.add tbl key v;
      v

let txn_counter st event =
  memo st.txn event (fun () ->
      Metrics.counter st.m ~help:"Transaction lifecycle events"
        ~labels:[ ("event", event) ]
        "sias_txn_total")

let page_counter st event =
  memo st.page event (fun () ->
      Metrics.counter st.m ~help:"Buffer-pool page events"
        ~labels:[ ("event", event) ]
        "sias_page_ops_total")

let dev_labels device op =
  [ ("device", device); ("op", Bus.io_op_to_string op) ]

let repl_metrics st =
  match st.repl with
  | Some v -> v
  | None ->
      let v =
        ( Metrics.counter st.m ~help:"Replication ship batches sent"
            "sias_repl_ships_total",
          Metrics.counter st.m ~help:"WAL records handed to the replication link"
            "sias_repl_shipped_records_total",
          Metrics.counter st.m ~help:"WAL bytes handed to the replication link"
            "sias_repl_shipped_bytes_total",
          Metrics.counter st.m ~help:"WAL records installed by the standby"
            "sias_repl_installed_records_total",
          Metrics.counter st.m
            ~help:"Remote-flush commits degraded to local-only ack"
            "sias_repl_degraded_acks_total",
          Metrics.gauge st.m ~help:"Highest standby LSN acknowledged to the sender"
            "sias_repl_acked_lsn" )
      in
      st.repl <- Some v;
      v

let on_event st e =
  match e with
  | Bus.Txn_begin _ -> Metrics.incr (txn_counter st "begin")
  | Bus.Txn_commit _ -> Metrics.incr (txn_counter st "commit")
  | Bus.Txn_abort _ -> Metrics.incr (txn_counter st "abort")
  | Bus.Txn_retry _ -> Metrics.incr (txn_counter st "retry")
  | Bus.Txn_shed -> Metrics.incr (txn_counter st "shed")
  | Bus.Page_hit _ -> Metrics.incr (page_counter st "hit")
  | Bus.Page_miss _ -> Metrics.incr (page_counter st "miss")
  | Bus.Page_evict _ -> Metrics.incr (page_counter st "evict")
  | Bus.Page_flush _ -> Metrics.incr (page_counter st "flush")
  | Bus.Page_repair _ -> Metrics.incr (page_counter st "repair")
  | Bus.Page_trim _ -> Metrics.incr (page_counter st "trim")
  | Bus.Wal_append { kind; bytes } ->
      Metrics.incr
        (memo st.wal_records kind (fun () ->
             Metrics.counter st.m ~help:"WAL records appended"
               ~labels:[ ("kind", kind) ]
               "sias_wal_records_total"));
      Metrics.add st.wal_bytes bytes
  | Bus.Wal_flush { sync; bytes } ->
      Metrics.incr
        (memo st.wal_flushes sync (fun () ->
             Metrics.counter st.m ~help:"WAL flushes"
               ~labels:[ ("sync", if sync then "true" else "false") ]
               "sias_wal_flushes_total"));
      Metrics.add st.wal_flush_bytes bytes
  | Bus.Commit_group { size } ->
      let groups, grouped, saved, hist =
        match st.commit_group_metrics with
        | Some v -> v
        | None ->
            let v =
              ( Metrics.counter st.m ~help:"Commit groups fsynced"
                  "sias_commit_groups_total",
                Metrics.counter st.m ~help:"Commits covered by a group fsync"
                  "sias_commit_grouped_total",
                Metrics.counter st.m
                  ~help:"Per-commit fsyncs saved by group commit"
                  "sias_commit_fsyncs_saved_total",
                Metrics.histogram st.m ~help:"Commit group size"
                  ~bucket_width:1.0 ~buckets:64 "sias_commit_group_size" )
            in
            st.commit_group_metrics <- Some v;
            v
      in
      Metrics.incr groups;
      Metrics.add grouped size;
      Metrics.add saved (size - 1);
      Metrics.observe hist (float_of_int size)
  | Bus.Device_io { device; op; bytes; latency_s; _ } ->
      Metrics.incr
        (memo st.dev_io (device, op) (fun () ->
             Metrics.counter st.m ~help:"Device requests"
               ~labels:(dev_labels device op) "sias_device_io_total"));
      Metrics.add
        (memo st.dev_bytes (device, op) (fun () ->
             Metrics.counter st.m ~help:"Device bytes transferred"
               ~labels:(dev_labels device op) "sias_device_bytes_total"))
        bytes;
      Metrics.observe
        (memo st.dev_lat (device, op) (fun () ->
             Metrics.histogram st.m ~help:"Device request latency (s)"
               ~labels:(dev_labels device op) ~bucket_width:0.0001 ~buckets:1000
               "sias_device_latency_seconds"))
        latency_s
  | Bus.Device_trim _ -> Metrics.incr (page_counter st "device_trim")
  | Bus.Fault_hit { kind; _ } ->
      Metrics.incr
        (memo st.faults kind (fun () ->
             Metrics.counter st.m ~help:"Injected-fault hits"
               ~labels:[ ("kind", kind) ]
               "sias_fault_hits_total"))
  | Bus.Hint_set { committed; _ } ->
      Metrics.incr
        (memo st.hints
           (if committed then "set_committed" else "set_aborted")
           (fun () ->
             Metrics.counter st.m ~help:"Tuple hint-bit events"
               ~labels:
                 [ ("event", if committed then "set_committed" else "set_aborted") ]
               "sias_hint_bits_total"))
  | Bus.Hint_hit _ ->
      Metrics.incr
        (memo st.hints "hit" (fun () ->
             Metrics.counter st.m ~help:"Tuple hint-bit events"
               ~labels:[ ("event", "hit") ]
               "sias_hint_bits_total"));
      let avoided =
        match st.clog_avoided with
        | Some c -> c
        | None ->
            let c =
              Metrics.counter st.m
                ~help:"Visibility checks answered by a hint bit (no CLOG lookup)"
                "sias_clog_lookups_avoided_total"
            in
            st.clog_avoided <- Some c;
            c
      in
      Metrics.incr avoided
  | Bus.Checkpoint { pages } ->
      Metrics.incr st.checkpoints;
      Metrics.add st.checkpoint_pages pages
  | Bus.Bgwriter_pass { pages } ->
      Metrics.incr st.bgwriter_passes;
      Metrics.add st.bgwriter_pages pages
  | Bus.Ftl_gc { device; moved_pages; erases } ->
      let dev_counter tbl name help =
        memo tbl device (fun () ->
            Metrics.counter st.m ~help ~labels:[ ("device", device) ] name)
      in
      Metrics.incr (dev_counter st.gc_runs "sias_ftl_gc_total" "FTL GC rounds");
      Metrics.add
        (dev_counter st.gc_erases "sias_ftl_gc_erases_total" "FTL GC block erases")
        erases;
      Metrics.add
        (dev_counter st.gc_moved "sias_ftl_gc_moved_pages_total"
           "Flash pages relocated by GC")
        moved_pages
  | Bus.Span { cat; name; t0; t1; _ } ->
      Metrics.observe
        (memo st.spans (cat, name) (fun () ->
             Metrics.histogram st.m ~help:"Span durations (s)"
               ~labels:[ ("cat", cat); ("name", name) ]
               "sias_span_seconds"))
        (Float.max 0.0 (t1 -. t0))
  | Bus.Repl_ship { records; bytes } ->
      let ships, ship_recs, ship_bytes, _, _, _ = repl_metrics st in
      Metrics.incr ships;
      Metrics.add ship_recs records;
      Metrics.add ship_bytes bytes
  | Bus.Repl_install { records } ->
      let _, _, _, installed, _, _ = repl_metrics st in
      Metrics.add installed records
  | Bus.Repl_ack { lsn } ->
      let _, _, _, _, _, acked = repl_metrics st in
      Metrics.set_gauge acked (float_of_int lsn)
  | Bus.Repl_degraded ->
      let _, _, _, _, degraded, _ = repl_metrics st in
      Metrics.incr degraded
  | Bus.Wal_reclaim { freed_bytes; _ } ->
      Metrics.incr
        (memo st.pressure "wal_reclaims" (fun () ->
             Metrics.counter st.m ~help:"Emergency WAL reclamations"
               "sias_wal_reclaims_total"));
      Metrics.add
        (memo st.pressure "wal_reclaimed_bytes" (fun () ->
             Metrics.counter st.m
               ~help:"WAL bytes recycled by emergency reclamation"
               "sias_wal_reclaimed_bytes_total"))
        freed_bytes
  | Bus.Backpressure { on; _ } ->
      let state = if on then "on" else "off" in
      Metrics.incr
        (memo st.pressure ("backpressure_" ^ state) (fun () ->
             Metrics.counter st.m ~help:"Admission backpressure toggles"
               ~labels:[ ("state", state) ]
               "sias_backpressure_toggles_total"))
  | Bus.Degraded { subsystem; _ } ->
      Metrics.incr
        (memo st.pressure ("degraded_" ^ subsystem) (fun () ->
             Metrics.counter st.m ~help:"Read-only degraded-mode entries"
               ~labels:[ ("subsystem", subsystem) ]
               "sias_degraded_total"))
  | Bus.Ssi_siread { predicate; _ } ->
      let kind = if predicate then "predicate" else "key" in
      Metrics.incr
        (memo st.ssi ("siread_" ^ kind) (fun () ->
             Metrics.counter st.m ~help:"SIREAD locks taken"
               ~labels:[ ("kind", kind) ]
               "sias_ssi_siread_locks_total"))
  | Bus.Ssi_rw_edge { lineage; _ } ->
      let source = if lineage then "lineage" else "table" in
      Metrics.incr
        (memo st.ssi ("rw_edge_" ^ source) (fun () ->
             Metrics.counter st.m
               ~help:
                 "rw-antidependency edges observed (lineage = harvested from \
                  co-located version metadata, table = SIREAD/write-table probe)"
               ~labels:[ ("source", source) ]
               "sias_ssi_rw_edges_total"))
  | Bus.Ssi_pivot_abort { confirmed; _ } ->
      let c = if confirmed then "true" else "false" in
      Metrics.incr
        (memo st.ssi ("pivot_" ^ c) (fun () ->
             Metrics.counter st.m ~help:"Dangerous-structure pivot aborts"
               ~labels:[ ("confirmed", c) ]
               "sias_ssi_pivot_aborts_total"));
      st.ssi_pivot_total <- st.ssi_pivot_total + 1;
      if confirmed then st.ssi_pivot_confirmed <- st.ssi_pivot_confirmed + 1;
      let fpr =
        match st.ssi_fpr with
        | Some g -> g
        | None ->
            let g =
              Metrics.gauge st.m
                ~help:
                  "Fraction of pivot aborts not confirmed as a committed \
                   2-cycle (upper bound on false positives)"
                "sias_ssi_false_positive_rate"
            in
            st.ssi_fpr <- Some g;
            g
      in
      Metrics.set_gauge fpr
        (1.0 -. (float_of_int st.ssi_pivot_confirmed /. float_of_int st.ssi_pivot_total))
  | Bus.Wsi_certify_abort _ ->
      Metrics.incr
        (memo st.ssi "wsi_certify" (fun () ->
             Metrics.counter st.m ~help:"WSI read-certification aborts"
               "sias_wsi_certify_aborts_total"))
  | Bus.Ssi_safe_snapshot _ ->
      Metrics.incr
        (memo st.ssi "safe_snapshot" (fun () ->
             Metrics.counter st.m
               ~help:"Read-only transactions granted a safe snapshot (no tracking)"
               "sias_ssi_safe_snapshots_total"))
  | Bus.Index_split _ ->
      Metrics.incr
        (memo st.ix "splits" (fun () ->
             Metrics.counter st.m ~help:"Paged-index node splits"
               "sias_index_splits_total"))
  | Bus.Index_merge _ ->
      Metrics.incr
        (memo st.ix "merges" (fun () ->
             Metrics.counter st.m ~help:"Paged-index node merges"
               "sias_index_merges_total"))
  | Bus.Index_page_io { deltas; _ } ->
      Metrics.incr
        (memo st.ix "pages_written" (fun () ->
             Metrics.counter st.m
               ~help:"Index pages modified by WAL-logged structural changes"
               "sias_index_pages_written_total"));
      Metrics.add
        (memo st.ix "deltas" (fun () ->
             Metrics.counter st.m
               ~help:"Index slot deltas applied to pages"
               "sias_index_deltas_total"))
        deltas
  | _ -> ()

let attach m bus =
  let st =
    {
      m;
      txn = Hashtbl.create 8;
      page = Hashtbl.create 8;
      wal_records = Hashtbl.create 8;
      wal_bytes = Metrics.counter m ~help:"WAL bytes appended" "sias_wal_bytes_total";
      wal_flushes = Hashtbl.create 2;
      wal_flush_bytes =
        Metrics.counter m ~help:"WAL bytes flushed" "sias_wal_flushed_bytes_total";
      commit_group_metrics = None;
      dev_io = Hashtbl.create 8;
      dev_bytes = Hashtbl.create 8;
      dev_lat = Hashtbl.create 8;
      faults = Hashtbl.create 8;
      hints = Hashtbl.create 4;
      clog_avoided = None;
      checkpoints =
        Metrics.counter m ~help:"Checkpoints completed" "sias_checkpoints_total";
      checkpoint_pages =
        Metrics.counter m ~help:"Pages written by checkpoints"
          "sias_checkpoint_pages_total";
      bgwriter_passes =
        Metrics.counter m ~help:"Background-writer sweeps" "sias_bgwriter_passes_total";
      bgwriter_pages =
        Metrics.counter m ~help:"Pages written by the background writer"
          "sias_bgwriter_pages_total";
      gc_runs = Hashtbl.create 4;
      gc_erases = Hashtbl.create 4;
      gc_moved = Hashtbl.create 4;
      spans = Hashtbl.create 16;
      repl = None;
      pressure = Hashtbl.create 4;
      ssi = Hashtbl.create 8;
      ix = Hashtbl.create 4;
      ssi_pivot_total = 0;
      ssi_pivot_confirmed = 0;
      ssi_fpr = None;
    }
  in
  Bus.subscribe bus (on_event st)

(* Reliability counters live in layer-local stats records (device info,
   buffer-pool stats) rather than on the bus: they are cheap running
   totals, not events. Export them as labeled gauges at collection time
   so the Prometheus/JSON artifacts carry them alongside the event-fed
   families. *)
let export_reliability m ~scope kvs =
  List.iter
    (fun (key, v) ->
      Metrics.set_gauge
        (Metrics.gauge m ~help:"Reliability counters (device info, buffer-pool repair stats)"
           ~labels:[ ("scope", scope); ("key", key) ]
           "sias_reliability_info")
        v)
    kvs
