module Stats = Sias_util.Stats

type counter = { mutable c : int }
type gauge = { mutable g : float }

type histogram = {
  width : float;
  nbuckets : int;
  mutable hist : Stats.Histogram.t;
  mutable sum : float;
}

type series_value =
  | Counter of counter
  | Gauge of gauge
  | Histogram of histogram

type family = {
  name : string;
  help : string;
  kind : string; (* "counter" | "gauge" | "histogram" *)
  mutable series : ((string * string) list * series_value) list;
      (* insertion order; labels stored sorted by key *)
}

type t = { mutable families : family list (* insertion order *) }

let create () = { families = [] }

let canon labels = List.sort (fun (a, _) (b, _) -> compare a b) labels

let family t ~name ~help ~kind =
  match List.find_opt (fun f -> f.name = name) t.families with
  | Some f ->
      if f.kind <> kind then
        invalid_arg
          (Printf.sprintf "Metrics: %s already registered as a %s" name f.kind);
      f
  | None ->
      let f = { name; help; kind; series = [] } in
      t.families <- t.families @ [ f ];
      f

let series f ~labels ~fresh =
  match List.assoc_opt labels f.series with
  | Some v -> v
  | None ->
      let v = fresh () in
      f.series <- f.series @ [ (labels, v) ];
      v

let counter t ?(help = "") ?(labels = []) name =
  let f = family t ~name ~help ~kind:"counter" in
  match series f ~labels:(canon labels) ~fresh:(fun () -> Counter { c = 0 }) with
  | Counter c -> c
  | _ -> assert false

let incr c = c.c <- c.c + 1
let add c k = c.c <- c.c + k
let counter_value c = c.c

let gauge t ?(help = "") ?(labels = []) name =
  let f = family t ~name ~help ~kind:"gauge" in
  match series f ~labels:(canon labels) ~fresh:(fun () -> Gauge { g = 0.0 }) with
  | Gauge g -> g
  | _ -> assert false

let set_gauge g x = g.g <- x

let histogram t ?(help = "") ?(labels = []) ?(bucket_width = 0.0005)
    ?(buckets = 2000) name =
  let f = family t ~name ~help ~kind:"histogram" in
  let fresh () =
    Histogram
      {
        width = bucket_width;
        nbuckets = buckets;
        hist = Stats.Histogram.create ~bucket_width ~buckets;
        sum = 0.0;
      }
  in
  match series f ~labels:(canon labels) ~fresh with
  | Histogram h -> h
  | _ -> assert false

let observe h x =
  Stats.Histogram.add h.hist x;
  h.sum <- h.sum +. x

let quantile h p =
  if Stats.Histogram.total h.hist = 0 then 0.0
  else Stats.Histogram.percentile h.hist p

let histogram_count h = Stats.Histogram.total h.hist
let histogram_sum h = h.sum

let value t ?(labels = []) name =
  match List.find_opt (fun f -> f.name = name) t.families with
  | None -> None
  | Some f -> (
      match List.assoc_opt (canon labels) f.series with
      | Some (Counter c) -> Some (float_of_int c.c)
      | Some (Gauge g) -> Some g.g
      | Some (Histogram _) | None -> None)

let reset t =
  List.iter
    (fun f ->
      List.iter
        (fun (_, v) ->
          match v with
          | Counter c -> c.c <- 0
          | Gauge g -> g.g <- 0.0
          | Histogram h ->
              h.hist <-
                Stats.Histogram.create ~bucket_width:h.width ~buckets:h.nbuckets;
              h.sum <- 0.0)
        f.series)
    t.families

(* ---------------- exporters ---------------- *)

let escape_label v =
  let b = Buffer.create (String.length v) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    v;
  Buffer.contents b

let fmt_float x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.9g" x

let label_block labels =
  if labels = [] then ""
  else
    "{"
    ^ String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (escape_label v)) labels)
    ^ "}"

(* label set extended with one more pair, for histogram [le] buckets *)
let label_block_plus labels extra =
  label_block (labels @ [ extra ])

let to_prometheus t =
  let b = Buffer.create 4096 in
  List.iter
    (fun f ->
      if f.help <> "" then
        Buffer.add_string b (Printf.sprintf "# HELP %s %s\n" f.name f.help);
      Buffer.add_string b (Printf.sprintf "# TYPE %s %s\n" f.name f.kind);
      List.iter
        (fun (labels, v) ->
          match v with
          | Counter c ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %d\n" f.name (label_block labels) c.c)
          | Gauge g ->
              Buffer.add_string b
                (Printf.sprintf "%s%s %s\n" f.name (label_block labels)
                   (fmt_float g.g))
          | Histogram h ->
              let counts = Stats.Histogram.counts h.hist in
              let cum = ref 0 in
              Array.iteri
                (fun i n ->
                  cum := !cum + n;
                  if n > 0 then
                    Buffer.add_string b
                      (Printf.sprintf "%s_bucket%s %d\n" f.name
                         (label_block_plus labels
                            ("le", fmt_float (float_of_int (i + 1) *. h.width)))
                         !cum))
                counts;
              Buffer.add_string b
                (Printf.sprintf "%s_bucket%s %d\n" f.name
                   (label_block_plus labels ("le", "+Inf"))
                   !cum);
              Buffer.add_string b
                (Printf.sprintf "%s_sum%s %s\n" f.name (label_block labels)
                   (fmt_float h.sum));
              Buffer.add_string b
                (Printf.sprintf "%s_count%s %d\n" f.name (label_block labels)
                   (Stats.Histogram.total h.hist)))
        f.series)
    t.families;
  Buffer.contents b

let json_string s = Printf.sprintf "%S" s

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map (fun (k, v) -> json_string k ^ ":" ^ json_string v) labels)
  ^ "}"

let to_json t =
  let b = Buffer.create 4096 in
  Buffer.add_string b "{\"metrics\":[";
  List.iteri
    (fun i f ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf "{\"name\":%s,\"type\":%s,\"help\":%s,\"series\":["
           (json_string f.name) (json_string f.kind) (json_string f.help));
      List.iteri
        (fun j (labels, v) ->
          if j > 0 then Buffer.add_char b ',';
          match v with
          | Counter c ->
              Buffer.add_string b
                (Printf.sprintf "{\"labels\":%s,\"value\":%d}"
                   (json_labels labels) c.c)
          | Gauge g ->
              Buffer.add_string b
                (Printf.sprintf "{\"labels\":%s,\"value\":%s}"
                   (json_labels labels) (fmt_float g.g))
          | Histogram h ->
              let n = Stats.Histogram.total h.hist in
              let q p = if n = 0 then 0.0 else Stats.Histogram.percentile h.hist p in
              Buffer.add_string b
                (Printf.sprintf
                   "{\"labels\":%s,\"count\":%d,\"sum\":%s,\"p50\":%s,\"p95\":%s,\"p99\":%s}"
                   (json_labels labels) n (fmt_float h.sum)
                   (fmt_float (q 50.0)) (fmt_float (q 95.0))
                   (fmt_float (q 99.0))))
        f.series;
      Buffer.add_string b "]}")
    t.families;
  Buffer.add_string b "]}";
  Buffer.contents b
