(** The standard bus → metrics mapping.

    Subscribes a registry to a bus and maintains the stack's canonical
    metric families: transaction/page/WAL event counters, per-device I/O
    counts, byte volumes and latency histograms, fault-hit counters,
    checkpoint/bgwriter/FTL-GC counters, and per-span latency histograms
    (from which the p50/p95/p99 readouts come).

    [sias_device_bytes_total{device=...,op="write"}] counts exactly the
    bytes the named device's {!Flashsim.Blocktrace} records, so a metrics
    dump reconciles with [Blocktrace.write_mb] over the same window. *)

val attach : Metrics.t -> Bus.t -> unit

val export_reliability : Metrics.t -> scope:string -> (string * float) list -> unit
(** Export layer-local reliability counters (the key/value pairs from
    [Device.info], buffer-pool retry/repair stats, …) as
    [sias_reliability_info{scope=...,key=...}] gauges. These totals are
    kept by the owning layer rather than fed through the bus; the harness
    calls this once per collection point so Prometheus/JSON artifacts
    carry them alongside the event-fed families. Idempotent per
    (scope, key): repeated export overwrites the gauge. *)
