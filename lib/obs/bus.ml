type event = ..

type io_op = Io_read | Io_write

type event +=
  | Txn_begin of { xid : int }
  | Txn_commit of { xid : int }
  | Txn_abort of { xid : int }
  | Txn_retry of { attempt : int }
  | Txn_shed
  | Page_hit of { rel : int; block : int }
  | Page_miss of { rel : int; block : int }
  | Page_evict of { rel : int; block : int; dirty : bool }
  | Page_flush of { rel : int; block : int; sync : bool }
  | Page_repair of { rel : int; block : int }
  | Page_trim of { rel : int; block : int }
  | Wal_append of { kind : string; bytes : int }
  | Wal_flush of { sync : bool; bytes : int }
  | Commit_group of { size : int }
  | Device_io of {
      device : string;
      op : io_op;
      sector : int;
      bytes : int;
      latency_s : float;
    }
  | Device_trim of { device : string; sector : int; bytes : int }
  | Fault_hit of { kind : string; sector : int }
  | Hint_set of { rel : int; committed : bool }
  | Hint_hit of { rel : int }
  | Checkpoint of { pages : int }
  | Bgwriter_pass of { pages : int }
  | Ftl_gc of { device : string; moved_pages : int; erases : int }
  | Span of { cat : string; name : string; tid : int; t0 : float; t1 : float }
  | Repl_ship of { records : int; bytes : int }
  | Repl_install of { records : int }
  | Repl_ack of { lsn : int }
  | Repl_degraded
  | Wal_reclaim of { upto_lsn : int; freed_bytes : int }
  | Backpressure of { on : bool; usage : float }
  | Degraded of { subsystem : string; reason : string }
  | Ssi_siread of { xid : int; rel : int; predicate : bool }
  | Ssi_rw_edge of { reader : int; writer : int; lineage : bool }
  | Ssi_pivot_abort of { xid : int; confirmed : bool }
  | Wsi_certify_abort of { xid : int }
  | Ssi_safe_snapshot of { xid : int }
  | Index_split of { rel : int; level : int }
  | Index_merge of { rel : int; level : int }
  | Index_page_io of { rel : int; block : int; deltas : int }

let io_op_to_string = function Io_read -> "read" | Io_write -> "write"

(* A bus belongs to the domain that created it: subscribers are plain
   closures over unsynchronized state (metrics registries, the SI
   checker), so publishing from another domain would be a data race the
   type system cannot see. [owner] pins the creating domain and
   [publish]/[subscribe] assert it — a shard's bus must live and die on
   the shard's domain. Subscribers that really are thread-safe (their
   own locking, e.g. a cross-domain relay into a Walslots slot) can lift
   the check with [set_shared]. *)
type t = {
  mutable subs : (event -> unit) array;
  mutable owner : int;
  mutable shared : bool;
}

let create () =
  {
    subs = [||];
    owner = (Domain.self () :> int);
    shared = false;
  }

let set_shared t = t.shared <- true

let check_owner t op =
  if not t.shared then begin
    let self = (Domain.self () :> int) in
    if self <> t.owner then
      failwith
        (Printf.sprintf
           "Bus.%s from domain %d but the bus is owned by domain %d: \
            subscribers are not synchronized — keep each bus on its own \
            domain, or mark thread-safe subscribers with Bus.set_shared"
           op self t.owner)
  end

let subscribe t f =
  check_owner t "subscribe";
  t.subs <- Array.append t.subs [| f |]

let active t = Array.length t.subs > 0

let publish t e =
  check_owner t "publish";
  for i = 0 to Array.length t.subs - 1 do
    (Array.unsafe_get t.subs i) e
  done

let subscriber_count t = Array.length t.subs

let adopt t = t.owner <- (Domain.self () :> int)
