(** Metrics registry: labeled counters, gauges and fixed-bucket latency
    histograms, with Prometheus-style text and JSON exporters.

    A registry holds metric {e families} (one per name) each carrying any
    number of label-distinguished series. Handle lookup
    ({!counter}/{!gauge}/{!histogram}) is idempotent — the same
    (name, labels) pair always returns the same handle — so consumers
    resolve handles once and update them on the hot path without
    allocation. Histograms reuse {!Sias_util.Stats.Histogram} buckets and
    report p50/p95/p99 through {!quantile} and the JSON exporter. *)

type t

type counter
type gauge
type histogram

val create : unit -> t

val counter :
  t -> ?help:string -> ?labels:(string * string) list -> string -> counter

val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val gauge :
  t -> ?help:string -> ?labels:(string * string) list -> string -> gauge

val set_gauge : gauge -> float -> unit

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?bucket_width:float ->
  ?buckets:int ->
  string ->
  histogram
(** Default buckets: 2000 × 0.5 ms — covers one simulated second of
    latency; observations beyond the last bucket clamp into it. *)

val observe : histogram -> float -> unit

val quantile : histogram -> float -> float
(** [quantile h p] with [p] in [0,100]; 0 when the histogram is empty. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

val value : t -> ?labels:(string * string) list -> string -> float option
(** Current value of a counter or gauge series, if registered. *)

val reset : t -> unit
(** Zero every series, keeping all registrations (and thus exporter
    layout) intact. The harness resets the registry when it resets the
    block trace, so metrics cover exactly the measured window. *)

val to_prometheus : t -> string
(** Prometheus text exposition format: [# HELP]/[# TYPE] headers,
    [name{label="v"} value] samples, histograms as cumulative
    [_bucket{le="..."}] plus [_sum]/[_count]. *)

val to_json : t -> string
(** Single JSON object; histogram series carry count/sum/p50/p95/p99. *)
