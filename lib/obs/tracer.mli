(** Span tracer: collects {!Bus.Span} events (and a few instantaneous
    markers — checkpoints, bgwriter passes, FTL GC, fault hits, shed
    requests) into Chrome trace-event JSON, loadable in Perfetto or
    chrome://tracing.

    Timestamps are simulated seconds converted to microseconds, so the
    trace timeline is the simulation timeline. Each span becomes a
    complete ("ph":"X") event with its category as the track grouping;
    markers become instant ("ph":"i") events stamped with the simulated
    clock at publication time. *)

type t

val attach : ?max_events:int -> clock:Sias_util.Simclock.t -> Bus.t -> t
(** Subscribe a tracer to [bus]. At most [max_events] (default 1_000_000)
    events are retained; later ones are counted in {!dropped}. *)

val event_count : t -> int
val dropped : t -> int

val to_json : t -> string
(** [{"traceEvents":[...],"displayTimeUnit":"ms"}]. *)

val write_file : t -> string -> unit
