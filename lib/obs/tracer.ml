module Simclock = Sias_util.Simclock

type t = {
  buf : Buffer.t;
  clock : Simclock.t;
  max_events : int;
  mutable count : int;
  mutable dropped : int;
}

let us s = s *. 1e6

let add_event t line =
  if t.count >= t.max_events then t.dropped <- t.dropped + 1
  else begin
    if t.count > 0 then Buffer.add_char t.buf ',';
    Buffer.add_string t.buf line;
    t.count <- t.count + 1
  end

let escape s =
  let b = Buffer.create (String.length s) in
  String.iter
    (function
      | '\\' -> Buffer.add_string b "\\\\"
      | '"' -> Buffer.add_string b "\\\""
      | '\n' -> Buffer.add_string b "\\n"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let complete t ~cat ~name ~tid ~t0 ~t1 =
  add_event t
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%d}"
       (escape name) (escape cat) (us t0)
       (us (Float.max 0.0 (t1 -. t0)))
       tid)

let instant t ~cat ~name ~tid ~args =
  let args_s =
    if args = [] then ""
    else
      Printf.sprintf ",\"args\":{%s}"
        (String.concat ","
           (List.map (fun (k, v) -> Printf.sprintf "\"%s\":%s" (escape k) v) args))
  in
  add_event t
    (Printf.sprintf
       "{\"name\":\"%s\",\"cat\":\"%s\",\"ph\":\"i\",\"s\":\"g\",\"ts\":%.3f,\"pid\":1,\"tid\":%d%s}"
       (escape name) (escape cat) (us (Simclock.now t.clock)) tid args_s)

let on_event t = function
  | Bus.Span { cat; name; tid; t0; t1 } -> complete t ~cat ~name ~tid ~t0 ~t1
  | Bus.Checkpoint { pages } ->
      instant t ~cat:"storage" ~name:"checkpoint" ~tid:102
        ~args:[ ("pages", string_of_int pages) ]
  | Bus.Bgwriter_pass { pages } ->
      instant t ~cat:"storage" ~name:"bgwriter-pass" ~tid:102
        ~args:[ ("pages", string_of_int pages) ]
  | Bus.Ftl_gc { device; moved_pages; erases } ->
      instant t ~cat:"device" ~name:"ftl-gc" ~tid:103
        ~args:
          [
            ("device", Printf.sprintf "\"%s\"" (escape device));
            ("moved_pages", string_of_int moved_pages);
            ("erases", string_of_int erases);
          ]
  | Bus.Fault_hit { kind; sector } ->
      instant t ~cat:"fault" ~name:kind ~tid:104
        ~args:[ ("sector", string_of_int sector) ]
  | Bus.Txn_shed -> instant t ~cat:"txn" ~name:"shed" ~tid:105 ~args:[]
  | _ -> ()

let attach ?(max_events = 1_000_000) ~clock bus =
  let t =
    { buf = Buffer.create 65536; clock; max_events; count = 0; dropped = 0 }
  in
  Bus.subscribe bus (on_event t);
  t

let event_count t = t.count
let dropped t = t.dropped

let to_json t =
  Printf.sprintf "{\"traceEvents\":[%s],\"displayTimeUnit\":\"ms\"}"
    (Buffer.contents t.buf)

let write_file t path =
  let oc = open_out path in
  output_string oc (to_json t);
  close_out oc
