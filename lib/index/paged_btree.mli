(** Paged, WAL-logged B+Tree.

    Unlike {!Btree} — whose nodes are one fixed-size image per page,
    decoded into a resident cache and rebuilt from the heap after a
    crash — this tree is a real on-disk structure: fixed 8 KB slotted
    index pages (one slot per entry), internal and leaf nodes carrying a
    high key and a right-sibling link (Lehman–Yao style, so range scans
    stay consistent across concurrent splits and recovery never needs
    parent pointers), prefix-truncated keys in internal nodes, and
    {e every} structural change — insert, split, delete, merge — logged
    write-ahead as an atomic batch of per-page slot deltas and replayed
    byte-exact by recovery. Nodes are decoded from their buffer-pool
    page on every access: under buffer pressure index descents incur
    real page misses, evictions and device reads, which is the point —
    index maintenance and lookup traffic become first-class flash
    measurements.

    Layering: this library cannot see the WAL or {!Mvcc.Db}, so the
    logger is injected — [log deltas] must append one atomic record
    (with full-page-write protection for the touched pages) and return
    its LSN {e before} any page is modified; {!Mvcc.Walcodec.make_index}
    builds both the logger and the redo side. *)

type t

(** One logged page mutation. [Ins] carries no slot: {!Sias_storage.Page.insert}
    is deterministic given identical page bytes, and the page-LSN gate
    guarantees redo starts from exactly the bytes the normal path saw.
    [Upd]/[Del] carry the slot, known when the change was planned. *)
type op = Ins of bytes | Upd of int * bytes | Del of int

type delta = {
  d_block : int;
  d_new : bool;  (** block allocated by this same batch: no pre-image to FPW *)
  d_op : op;
}

val create :
  Sias_storage.Bufpool.t ->
  rel:int ->
  log:(delta list -> int) ->
  ?bus:Sias_obs.Bus.t ->
  unit ->
  t
(** An empty tree in relation [rel]: block 0 holds the metadata page
    (root, height, block count), block 1 the first leaf. The creation
    itself is logged through [log]. *)

val restore :
  Sias_storage.Bufpool.t ->
  rel:int ->
  log:(delta list -> int) ->
  ?bus:Sias_obs.Bus.t ->
  unit ->
  t
(** Re-open a tree from its pages after crash recovery has replayed the
    WAL ({!Mvcc.Walcodec.redo}): reads the metadata page and recounts
    entries by walking the leaf chain. Never rebuilds from the heap. *)

val apply_delta : Sias_storage.Page.t -> delta -> unit
(** Apply one delta to a page image (the redo side; also used by page
    repair). Raises [Failure] when the page diverges from what the
    normal path saw — a replay-divergence bug, never silent. *)

val insert : t -> key:int -> payload:int -> unit
(** Duplicate (key, payload) pairs are ignored (and log nothing). *)

val delete : t -> key:int -> payload:int -> bool
(** Remove one exact entry; [false] when absent. An emptied leaf with a
    left sibling under the same parent is unlinked (merged) in the same
    atomic batch. *)

val lookup : t -> key:int -> int list
(** All payloads stored under [key], ascending. *)

val range : t -> lo:int -> hi:int -> (int * int) list
(** All entries with [lo <= key <= hi] in order, walking right-sibling
    links across leaves. *)

val mem : t -> key:int -> payload:int -> bool
val entry_count : t -> int
val height : t -> int
val node_count : t -> int
val rel : t -> int

type stats = { inserts : int; deletes : int; splits : int; merges : int; lookups : int }

val stats : t -> stats

val iter : t -> (int -> int -> unit) -> unit
(** All entries in (key, payload) order via the leftmost-leaf chain. *)
