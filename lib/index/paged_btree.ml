(* Paged, WAL-logged B+Tree over slotted 8 KB buffer-pool pages.

   Node page layout — slot 0 is a fixed 32-byte header item, every other
   live slot one entry:
     [0]      tag: 0 = leaf, 1 = internal
     [1]      level (u8): 0 = leaf
     [2]      flags: bit 0 = high key valid
     [3]      pad
     [4..7]   right-sibling block + 1 (i32 LE; 0 = none)
     [8..15]  high key (i64 LE)
     [16..23] high payload (i64 LE)
     [24..31] ref key (i64 LE) — prefix-truncation base, internal nodes
   Leaf entry (16 bytes): key i64 LE, payload i64 LE.
   Internal entry: shared u8, (8 - shared) big-endian key-suffix bytes
   against the node's ref key, payload i64 LE, child block i32 LE — the
   TPC-C composite keys share their warehouse/district high bytes, so
   separators shrink toward 14 bytes.
   Block 0 is the metadata page: root i64, height i64, nblocks i64.

   Entries order lexicographically by (key, payload), the same relation
   as {!Btree.cmp_pair}, so duplicate keys order deterministically.
   Internal entries are (minimum pair, child) with leftmost fallback: a
   probe below every separator descends into the first child.

   WAL-first: every structural change is planned as a list of page
   deltas against the current byte state, logged as one atomic Ix_batch
   record through the injected [log], and only then applied to the pool
   pages (stamping the batch LSN). Replay applies the identical deltas
   to identical bytes behind a page-LSN gate, so recovery is byte-exact
   and idempotent. [Ins] deltas carry no slot on purpose: slot choice is
   a deterministic function of the page bytes. *)

module Bufpool = Sias_storage.Bufpool
module Page = Sias_storage.Page
module Bus = Sias_obs.Bus
module Crashpoint = Sias_chaos.Crashpoint

type op = Ins of bytes | Upd of int * bytes | Del of int
type delta = { d_block : int; d_new : bool; d_op : op }

type stats = { inserts : int; deletes : int; splits : int; merges : int; lookups : int }

type t = {
  pool : Bufpool.t;
  rel : int;
  log : delta list -> int;
  bus : Bus.t option;
  mutable root : int;
  mutable height : int; (* 1 = the root is a leaf *)
  mutable nblocks : int; (* including the metadata block 0 *)
  mutable entries : int;
  mutable inserts : int;
  mutable deletes : int;
  mutable splits : int;
  mutable merges : int;
  mutable lookups : int;
}

let leaf_cap = 300
let internal_cap = 250

let cmp_pair (k1, p1) (k2, p2) = if k1 <> k2 then compare k1 k2 else compare p1 p2

(* ---------------- item codecs ---------------- *)

let i64 b off = Int64.to_int (Bytes.get_int64_le b off)

let header_item ~leaf ~level ~right ~high ~ref_key =
  let b = Bytes.make 32 '\000' in
  Bytes.set_uint8 b 0 (if leaf then 0 else 1);
  Bytes.set_uint8 b 1 level;
  (match high with
  | Some (hk, hp) ->
      Bytes.set_uint8 b 2 1;
      Bytes.set_int64_le b 8 (Int64.of_int hk);
      Bytes.set_int64_le b 16 (Int64.of_int hp)
  | None -> ());
  Bytes.set_int32_le b 4 (Int32.of_int (right + 1));
  Bytes.set_int64_le b 24 (Int64.of_int ref_key);
  b

let leaf_item ~key ~payload =
  let b = Bytes.create 16 in
  Bytes.set_int64_le b 0 (Int64.of_int key);
  Bytes.set_int64_le b 8 (Int64.of_int payload);
  b

let be_key k =
  let b = Bytes.create 8 in
  Bytes.set_int64_be b 0 (Int64.of_int k);
  b

let internal_item ~ref_key ~key ~payload ~child =
  let rb = be_key ref_key and kb = be_key key in
  let shared = ref 0 in
  while !shared < 8 && Bytes.get rb !shared = Bytes.get kb !shared do
    incr shared
  done;
  let s = !shared in
  let b = Bytes.create (1 + (8 - s) + 12) in
  Bytes.set_uint8 b 0 s;
  Bytes.blit kb s b 1 (8 - s);
  Bytes.set_int64_le b (9 - s) (Int64.of_int payload);
  Bytes.set_int32_le b (17 - s) (Int32.of_int child);
  b

let decode_internal ~ref_key item =
  let s = Bytes.get_uint8 item 0 in
  let kb = be_key ref_key in
  Bytes.blit item 1 kb s (8 - s);
  let key = Int64.to_int (Bytes.get_int64_be kb 0) in
  (key, i64 item (9 - s), Int32.to_int (Bytes.get_int32_le item (17 - s)))

let meta_item ~root ~height ~nblocks =
  let b = Bytes.create 24 in
  Bytes.set_int64_le b 0 (Int64.of_int root);
  Bytes.set_int64_le b 8 (Int64.of_int height);
  Bytes.set_int64_le b 16 (Int64.of_int nblocks);
  b

(* ---------------- decoded node view (transient; never cached) ---------------- *)

type entry = { e_key : int; e_payload : int; e_child : int; e_slot : int }

type node = {
  nd_block : int;
  nd_leaf : bool;
  nd_level : int;
  nd_right : int; (* -1 = none *)
  nd_high : (int * int) option;
  nd_ref_key : int;
  nd_entries : entry array; (* sorted by (key, payload) *)
}

let decode_node t block =
  Bufpool.with_page t.pool ~rel:t.rel ~block (fun page ->
      match Page.read page 0 with
      | None -> failwith "Paged_btree: missing node header"
      | Some hdr ->
          let leaf = Bytes.get_uint8 hdr 0 = 0 in
          let ref_key = i64 hdr 24 in
          let acc = ref [] in
          Page.iter page (fun slot item ->
              if slot <> 0 then
                if leaf then
                  acc :=
                    { e_key = i64 item 0; e_payload = i64 item 8; e_child = -1; e_slot = slot }
                    :: !acc
                else begin
                  let k, p, c = decode_internal ~ref_key item in
                  acc := { e_key = k; e_payload = p; e_child = c; e_slot = slot } :: !acc
                end);
          let entries = Array.of_list !acc in
          Array.sort
            (fun a b -> cmp_pair (a.e_key, a.e_payload) (b.e_key, b.e_payload))
            entries;
          {
            nd_block = block;
            nd_leaf = leaf;
            nd_level = Bytes.get_uint8 hdr 1;
            nd_right = Int32.to_int (Bytes.get_int32_le hdr 4) - 1;
            nd_high =
              (if Bytes.get_uint8 hdr 2 land 1 = 1 then Some (i64 hdr 8, i64 hdr 16)
               else None);
            nd_ref_key = ref_key;
            nd_entries = entries;
          })

let node_header node ~right ~high =
  header_item ~leaf:node.nd_leaf ~level:node.nd_level ~right ~high
    ~ref_key:node.nd_ref_key

(* Rightmost entry whose pair <= probe; leftmost fallback. *)
let route node key payload =
  let es = node.nd_entries in
  let n = Array.length es in
  let lo = ref 0 and hi = ref (n - 1) and best = ref 0 in
  while !lo <= !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp_pair (es.(mid).e_key, es.(mid).e_payload) (key, payload) <= 0 then begin
      best := mid;
      lo := mid + 1
    end
    else hi := mid - 1
  done;
  !best

let rec find_leaf t block key payload =
  let node = decode_node t block in
  if node.nd_leaf then node
  else find_leaf t node.nd_entries.(route node key payload).e_child key payload

(* ---------------- delta application ---------------- *)

let apply_delta page d =
  match d.d_op with
  | Ins item -> (
      match Page.insert page item with
      | Some _ -> ()
      | None -> failwith "Paged_btree.apply_delta: page full (replay divergence)")
  | Upd (slot, item) ->
      if not (Page.update page slot item) then
        failwith "Paged_btree.apply_delta: update does not fit (replay divergence)"
  | Del slot -> Page.delete page slot

let observed t = match t.bus with Some b -> Bus.active b | None -> false
let emit t e = match t.bus with Some b -> Bus.publish b e | None -> ()

(* WAL-first commit of one structural change: log the batch (the logger
   adds full-page-write protection), then apply the deltas block by
   block, stamping the batch LSN. The two crash points model losing
   power after the record is durable but before any page changed, and
   between the page writes of a multi-page change (a torn split). *)
let run_batch t deltas =
  let lsn = t.log deltas in
  Crashpoint.reach "index.wal.pre-apply";
  let blocks =
    List.fold_left
      (fun acc d -> if List.mem d.d_block acc then acc else d.d_block :: acc)
      [] deltas
    |> List.rev
  in
  List.iteri
    (fun i block ->
      if i > 0 then Crashpoint.reach "index.split.mid";
      Bufpool.with_page t.pool ~rel:t.rel ~block (fun page ->
          if Page.lsn page < lsn then begin
            List.iter (fun d -> if d.d_block = block then apply_delta page d) deltas;
            Page.set_lsn page lsn
          end);
      Bufpool.mark_dirty t.pool ~rel:t.rel ~block;
      if observed t then
        emit t
          (Bus.Index_page_io
             {
               rel = t.rel;
               block;
               deltas = List.length (List.filter (fun d -> d.d_block = block) deltas);
             }))
    blocks

(* ---------------- create / restore ---------------- *)

let fresh pool ~rel ~log ~bus =
  {
    pool;
    rel;
    log;
    bus;
    root = 1;
    height = 1;
    nblocks = 2;
    entries = 0;
    inserts = 0;
    deletes = 0;
    splits = 0;
    merges = 0;
    lookups = 0;
  }

let init_batch t =
  run_batch t
    [
      {
        d_block = 1;
        d_new = true;
        d_op = Ins (header_item ~leaf:true ~level:0 ~right:(-1) ~high:None ~ref_key:0);
      };
      { d_block = 0; d_new = true; d_op = Ins (meta_item ~root:1 ~height:1 ~nblocks:2) };
    ]

let create pool ~rel ~log ?bus () =
  let t = fresh pool ~rel ~log ~bus in
  init_batch t;
  t

let rec leftmost_leaf t block =
  let node = decode_node t block in
  if node.nd_leaf then node else leftmost_leaf t node.nd_entries.(0).e_child

let restore pool ~rel ~log ?bus () =
  let t = fresh pool ~rel ~log ~bus in
  let meta = Bufpool.with_page t.pool ~rel ~block:0 (fun page -> Page.read page 0) in
  (match meta with
  | None ->
      (* The creation batch never reached the durable WAL prefix, so at
         this recovery horizon the tree never existed — and neither did
         any heap row logged after it (WAL flushing is prefix-ordered).
         Re-initialize it empty rather than failing recovery. *)
      init_batch t
  | Some m ->
      t.root <- i64 m 0;
      t.height <- i64 m 8;
      t.nblocks <- i64 m 16;
      let count = ref 0 in
      let rec walk node =
        count := !count + Array.length node.nd_entries;
        if node.nd_right >= 0 then walk (decode_node t node.nd_right)
      in
      walk (leftmost_leaf t t.root);
      t.entries <- !count);
  t

(* ---------------- insert ---------------- *)

exception Duplicate

(* Plan the insert along one root-to-leaf path, splitting full nodes
   bottom-up into the same batch. Returns [Some (sep_key, sep_payload,
   right_block)] when the caller's level must absorb a new separator. *)
let rec plan_insert t deltas alloc splits block ~key ~payload =
  let node = decode_node t block in
  if node.nd_leaf then begin
    let exists =
      Array.exists (fun e -> e.e_key = key && e.e_payload = payload) node.nd_entries
    in
    if exists then raise Duplicate;
    if Array.length node.nd_entries < leaf_cap then begin
      deltas :=
        { d_block = block; d_new = false; d_op = Ins (leaf_item ~key ~payload) }
        :: !deltas;
      None
    end
    else begin
      (* split around the median of the post-insert entry list; the
         separator is the right node's first pair and stays in the leaf *)
      let all =
        Array.to_list node.nd_entries
        @ [ { e_key = key; e_payload = payload; e_child = -1; e_slot = -1 } ]
        |> List.sort (fun a b -> cmp_pair (a.e_key, a.e_payload) (b.e_key, b.e_payload))
      in
      let n = List.length all in
      let m = n / 2 in
      let left, right = (List.filteri (fun i _ -> i < m) all, List.filteri (fun i _ -> i >= m) all) in
      let sep = List.hd right in
      let rb = alloc () in
      let rd =
        { d_block = rb; d_new = true;
          d_op = Ins (header_item ~leaf:true ~level:0 ~right:node.nd_right
                        ~high:node.nd_high ~ref_key:sep.e_key) }
        :: List.map
             (fun e ->
               { d_block = rb; d_new = true;
                 d_op = Ins (leaf_item ~key:e.e_key ~payload:e.e_payload) })
             right
      in
      let ld =
        (* slots of pre-existing entries that moved right *)
        List.filter_map
          (fun e -> if e.e_slot >= 0 then Some { d_block = block; d_new = false; d_op = Del e.e_slot } else None)
          right
        @ (if List.exists (fun e -> e.e_slot = -1) left then
             [ { d_block = block; d_new = false; d_op = Ins (leaf_item ~key ~payload) } ]
           else [])
        @ [ { d_block = block; d_new = false;
              d_op = Upd (0, node_header node ~right:rb ~high:(Some (sep.e_key, sep.e_payload))) } ]
      in
      deltas := List.rev_append rd (List.rev_append ld !deltas);
      splits := (node.nd_level, rb) :: !splits;
      Some (sep.e_key, sep.e_payload, rb)
    end
  end
  else begin
    let i = route node key payload in
    match plan_insert t deltas alloc splits node.nd_entries.(i).e_child ~key ~payload with
    | None -> None
    | Some (sk, sp, child) ->
        if Array.length node.nd_entries < internal_cap then begin
          deltas :=
            { d_block = block; d_new = false;
              d_op = Ins (internal_item ~ref_key:node.nd_ref_key ~key:sk ~payload:sp ~child) }
            :: !deltas;
          None
        end
        else begin
          let all =
            Array.to_list node.nd_entries
            @ [ { e_key = sk; e_payload = sp; e_child = child; e_slot = -1 } ]
            |> List.sort (fun a b ->
                   cmp_pair (a.e_key, a.e_payload) (b.e_key, b.e_payload))
          in
          let n = List.length all in
          let m = n / 2 in
          let left, right =
            (List.filteri (fun i _ -> i < m) all, List.filteri (fun i _ -> i >= m) all)
          in
          let sep = List.hd right in
          let rb = alloc () in
          let rd =
            { d_block = rb; d_new = true;
              d_op = Ins (header_item ~leaf:false ~level:node.nd_level
                            ~right:node.nd_right ~high:node.nd_high ~ref_key:sep.e_key) }
            :: List.map
                 (fun e ->
                   { d_block = rb; d_new = true;
                     d_op = Ins (internal_item ~ref_key:sep.e_key ~key:e.e_key
                                   ~payload:e.e_payload ~child:e.e_child) })
                 right
          in
          let ld =
            List.filter_map
              (fun e ->
                if e.e_slot >= 0 then
                  Some { d_block = block; d_new = false; d_op = Del e.e_slot }
                else None)
              right
            @ (if List.exists (fun e -> e.e_slot = -1) left then
                 [ { d_block = block; d_new = false;
                     d_op = Ins (internal_item ~ref_key:node.nd_ref_key ~key:sk
                                   ~payload:sp ~child) } ]
               else [])
            @ [ { d_block = block; d_new = false;
                  d_op = Upd (0, node_header node ~right:rb
                                   ~high:(Some (sep.e_key, sep.e_payload))) } ]
          in
          deltas := List.rev_append rd (List.rev_append ld !deltas);
          splits := (node.nd_level, rb) :: !splits;
          Some (sep.e_key, sep.e_payload, rb)
        end
  end

let insert t ~key ~payload =
  let deltas = ref [] in
  let nalloc = ref t.nblocks in
  let alloc () =
    let b = !nalloc in
    incr nalloc;
    b
  in
  let splits = ref [] in
  match
    let up = plan_insert t deltas alloc splits t.root ~key ~payload in
    (match up with
    | None -> ()
    | Some (sk, sp, rb) ->
        (* root split: a fresh root routes everything below the first
           separator into the old root via a min-pair leftmost entry *)
        let nr = alloc () in
        let level = t.height in
        deltas :=
          { d_block = 0; d_new = false;
            d_op = Upd (0, meta_item ~root:nr ~height:(t.height + 1) ~nblocks:!nalloc) }
          :: { d_block = nr; d_new = true;
               d_op = Ins (internal_item ~ref_key:min_int ~key:sk ~payload:sp ~child:rb) }
          :: { d_block = nr; d_new = true;
               d_op = Ins (internal_item ~ref_key:min_int ~key:min_int
                             ~payload:min_int ~child:t.root) }
          :: { d_block = nr; d_new = true;
               d_op = Ins (header_item ~leaf:false ~level ~right:(-1) ~high:None
                             ~ref_key:min_int) }
          :: !deltas);
    if up = None && !nalloc > t.nblocks then
      deltas :=
        { d_block = 0; d_new = false;
          d_op = Upd (0, meta_item ~root:t.root ~height:t.height ~nblocks:!nalloc) }
        :: !deltas;
    run_batch t (List.rev !deltas);
    t.nblocks <- !nalloc;
    (match up with
    | Some _ ->
        t.root <- !nalloc - 1;
        t.height <- t.height + 1
    | None -> ());
    t.entries <- t.entries + 1;
    t.inserts <- t.inserts + 1;
    t.splits <- t.splits + List.length !splits;
    if observed t then
      List.iter
        (fun (level, _) -> emit t (Bus.Index_split { rel = t.rel; level }))
        (List.rev !splits)
  with
  | () -> ()
  | exception Duplicate -> ()

(* ---------------- delete ---------------- *)

let delete t ~key ~payload =
  (* descend with the exact pair, remembering the parent for the merge *)
  let rec descend block parent =
    let node = decode_node t block in
    if node.nd_leaf then (node, parent)
    else
      let i = route node key payload in
      descend node.nd_entries.(i).e_child (Some (node, i))
  in
  let leaf, parent = descend t.root None in
  match
    Array.find_opt (fun e -> e.e_key = key && e.e_payload = payload) leaf.nd_entries
  with
  | None -> false
  | Some e ->
      let deltas = ref [ { d_block = leaf.nd_block; d_new = false; d_op = Del e.e_slot } ] in
      let merged = ref None in
      (match parent with
      | Some (p, i) when Array.length leaf.nd_entries = 1 && i > 0 ->
          (* the leaf empties and has a left sibling under the same
             parent: absorb its right link and high key into the left
             sibling, drop the parent separator, and let the empty page
             leak (a right-link orphan, skipped by every traversal) *)
          let lb = decode_node t p.nd_entries.(i - 1).e_child in
          deltas :=
            { d_block = p.nd_block; d_new = false; d_op = Del p.nd_entries.(i).e_slot }
            :: { d_block = lb.nd_block; d_new = false;
                 d_op = Upd (0, node_header lb ~right:leaf.nd_right ~high:leaf.nd_high) }
            :: !deltas;
          merged := Some leaf.nd_level;
          if p.nd_block = t.root && Array.length p.nd_entries = 2 && t.height >= 2
          then begin
            (* the root would keep a single separator: collapse it onto
               the surviving child *)
            let child = p.nd_entries.(0).e_child in
            deltas :=
              { d_block = 0; d_new = false;
                d_op = Upd (0, meta_item ~root:child ~height:(t.height - 1)
                              ~nblocks:t.nblocks) }
              :: !deltas;
            merged := Some leaf.nd_level;
            t.root <- child;
            t.height <- t.height - 1
          end
      | _ -> ());
      run_batch t (List.rev !deltas);
      t.entries <- t.entries - 1;
      t.deletes <- t.deletes + 1;
      (match !merged with
      | Some level ->
          t.merges <- t.merges + 1;
          if observed t then emit t (Bus.Index_merge { rel = t.rel; level })
      | None -> ());
      true

(* ---------------- reads ---------------- *)

let range t ~lo ~hi =
  t.lookups <- t.lookups + 1;
  if lo > hi then []
  else begin
    let acc = ref [] in
    let rec walk node =
      let beyond = ref false in
      Array.iter
        (fun e ->
          if e.e_key > hi then beyond := true
          else if e.e_key >= lo then acc := (e.e_key, e.e_payload) :: !acc)
        node.nd_entries;
      if (not !beyond) && node.nd_right >= 0 then walk (decode_node t node.nd_right)
    in
    walk (find_leaf t t.root lo min_int);
    List.rev !acc
  end

let lookup t ~key = List.map snd (range t ~lo:key ~hi:key)

let mem t ~key ~payload =
  let leaf = find_leaf t t.root key payload in
  Array.exists (fun e -> e.e_key = key && e.e_payload = payload) leaf.nd_entries

let iter t f =
  let rec walk node =
    Array.iter (fun e -> f e.e_key e.e_payload) node.nd_entries;
    if node.nd_right >= 0 then walk (decode_node t node.nd_right)
  in
  walk (leftmost_leaf t t.root)

let entry_count t = t.entries
let height t = t.height
let node_count t = t.nblocks - 1
let rel t = t.rel

let stats t =
  {
    inserts = t.inserts;
    deletes = t.deletes;
    splits = t.splits;
    merges = t.merges;
    lookups = t.lookups;
  }
