(** Experiment runner: one declarative setup per paper experiment.

    Builds the device (single SSD, SSD RAID-0, or HDD), the database
    context, the chosen engine and the TPC-C workload; loads; resets the
    block trace so the measured I/O is the benchmark run's (the paper
    traces the steady run, not the bulk load); runs to the simulated
    deadline; and reports throughput, response times, device write/read
    volumes, space consumption and device-model counters.

    Engines are named by their registry key ("si", "si-cv", "sias",
    "sias-v" — see {!Mvcc.Engine.resolve}); unknown keys raise
    [Invalid_argument] when the experiment runs. *)

val engine_name : string -> string
(** Display name for an engine key ({!Mvcc.Engine.display_name}). *)

type device_kind = Ssd_single | Ssd_sized of int (** blocks *) | Ssd_raid of int | Hdd_single

type flush =
  | T1  (** PostgreSQL background-writer default: 200 ms trickle *)
  | T2  (** checkpoint piggy-back only (30 s) *)

type setup = {
  engine : string;  (** registry key or alias, e.g. "sias-v" *)
  isolation : string;
      (** isolation key or alias, e.g. "ssi"; default "si". The standby
          (replication) database always runs plain SI — it only installs
          shipped WAL and never executes transactions of its own. *)
  device : device_kind;
  flush : flush;
  buffer_pages : int;
  warehouses : int;
  scale_div : int;
  duration_s : float;
  terminals_per_warehouse : int;
  think_time_s : float;
  seed : int;
  gc_interval_s : float option;
  checkpoint_interval_s : float;
      (** PostgreSQL's checkpoint_timeout; the paper's runs use the 5 min
          default against 10–30 min runs, a 2–6x ratio *)
  vidmap_paged : bool;  (** VID_map buckets live in buffer-pool pages *)
  keep_trace_records : bool;  (** retain per-request records (Figures 3/4) *)
  synchronous_commit : bool;
      (** PostgreSQL's synchronous_commit: [false] acks commits at WAL
          append and lets the WAL-writer trickle flush them (bounded-loss
          window, no corruption); default [true] *)
  commit_delay_s : float;
      (** PostgreSQL's commit_delay: > 0 groups commits arriving within
          this window behind one shared fsync; 0 = per-commit fsync *)
  wal_device : device_kind option;
      (** give the WAL its own modeled device (so commit fsyncs cost
          simulated time); [None] = in-memory WAL sink, the historical
          default *)
  fault_seed : int option;
      (** enable seeded fault injection (transient read errors, bit rot,
          torn writes) on the data device and WAL; [None] = no faults *)
  fault_profile : Flashsim.Faultdev.profile;
      (** fault rates used when [fault_seed] is set *)
  contention : Sias_txn.Contention.settings;
      (** conflict policy and admission limits (default: no-wait,
          unlimited — the historical behaviour) *)
  retries : int;
      (** client retries per conflict-aborted transaction; 0 = off *)
  check_si : bool;  (** enable the online SI invariant checker *)
  metrics_out : string option;
      (** write run-phase metrics as Prometheus text to this path *)
  trace_out : string option;
      (** write a Chrome trace-event JSON of the run phase to this path *)
  stats_interval_s : float option;
      (** print a progress line to stderr every this many simulated
          seconds *)
  collect_metrics : bool;
      (** attach the metrics recorder even without [metrics_out] — the
          {!output.metrics} field is then [Some] *)
  repl_mode : Sias_repl.Repl.mode option;
      (** stream the WAL to a hot standby: [Ship_async] ships after local
          fsync, [Remote_flush] makes commit acknowledgement wait for the
          standby flush ack; [None] = replication off (the default —
          nothing attaches, output is byte-identical to historical runs) *)
  repl_link : Sias_repl.Link.profile;
      (** simulated replication-link fault profile (clean, wan, lossy,
          chaos) used when [repl_mode] is set *)
  repl_seed : int;  (** seed for the link's deterministic fault stream *)
  index : string;
      (** index implementation the engines build through {!Mvcc.Index}:
          ["array"] (default — the golden, heap-rebuilt node-image tree)
          or ["paged"] (WAL-logged slotted pages, crash-recovered in
          place) *)
  measure_index_io : bool;
      (** subscribe a page-flush classifier splitting device writes into
          index-page vs other traffic for the measured run; off by
          default because subscribing activates the bus, which golden
          runs must not do *)
}

val fault_override : (int * Flashsim.Faultdev.profile) option ref
(** When set, {!run_tpcc} applies this (seed, profile) to any setup that
    does not carry its own [fault_seed] — lets the benchmark driver turn
    faults on globally from the command line. *)

val obs_override : (string option * string option) option ref
(** When set, (metrics_out, trace_out) applied to any setup that does not
    carry its own — lets the benchmark driver request artifacts globally
    from the command line. *)

val commit_override : (bool * float) option ref
(** When set, (synchronous_commit, commit_delay_s) applied to any setup
    still carrying the defaults — lets the benchmark driver select the
    commit pipeline globally from the command line. *)

val default_setup : engine:string -> warehouses:int -> setup
(** Single SSD, T2, 2048 buffer pages, 1/100 scale, 60 s, 1 terminal/WH,
    1 s think time; no observability outputs. *)

(* Index-vs-heap split of the run's page-flush traffic plus the index's
   logical volume; the ratio ix_flush_mb / ix_logical_mb is the index
   write amplification the bench reports. *)
type index_io = {
  ix_flush_mb : float;  (** index pages flushed to the device, MB *)
  ix_flush_count : int;
  heap_flush_mb : float;  (** every other page flush: heap + VID_map *)
  heap_flush_count : int;
  ix_logical_mb : float;
      (** cumulative logical entry volume: insertions (including later
          deleted ones) x 16 bytes *)
  ix_entries : int;  (** live entries across all indexes at end of run *)
  ix_nodes : int;
  ix_height : int;  (** tallest index *)
  ix_splits : int;
  ix_merges : int;
}

type output = {
  setup : setup;
  result : Tpcc.Tpcc_workload.result;
  load_write_mb : float;  (** device writes during the bulk load *)
  run_write_mb : float;  (** device writes during the measured run *)
  run_read_mb : float;
  run_write_count : int;
  run_read_count : int;
  space_mb : float;  (** heap pages allocated across all relations *)
  avg_fill : float;  (** mean live fill of heap pages *)
  device_info : (string * float) list;
  buf_stats : Sias_storage.Bufpool.stats;
  trace : Flashsim.Blocktrace.t;  (** the data device's run-phase trace *)
  contention_stats : Sias_txn.Contention.stats;
  commit_stats : Sias_wal.Commitpipe.stats;
      (** commit-pipeline counters over the measured run (fsyncs, group
          sizes, WAL-writer flushes, async backlog) *)
  wal_write_mb : float;
      (** run-phase writes to the WAL device; 0 when the WAL is the
          in-memory sink *)
  checker : Mvcc.Sichecker.t option;  (** present when [check_si] was set *)
  metrics : Sias_obs.Metrics.t option;
      (** present when metrics were collected; reset at the same instant
          as the block trace, so its device counters reconcile with
          {!Flashsim.Blocktrace.write_mb} *)
  repl_stats : Sias_repl.Repl.stats option;
      (** replication counters over the whole session (load + run) when
          [repl_mode] was set: batches/records/bytes shipped, records
          installed on the standby, standby lag, go-back-N retransmits,
          degraded remote-flush acknowledgements and raw link loss *)
  index_io : index_io option;
      (** present when [measure_index_io] was set; covers exactly the
          measured run (same window as the block trace) *)
}

val run_tpcc : setup -> output

val pp_output_summary : Format.formatter -> output -> unit
