(* Crash-schedule sessions for the {!Sias_chaos.Explorer}: a seeded,
   fully deterministic workload over any registered engine, with a model
   oracle strong enough to adjudicate every schedule — committed-prefix
   durability, byte-equal state at the commit horizon, SI-checker
   acceptance of the post-recovery history, and recovery idempotency. *)

module Simclock = Sias_util.Simclock
module Db = Mvcc.Db
module Engine = Mvcc.Engine
module Txn = Sias_txn.Txn
module Snapshot = Sias_txn.Snapshot
module Wal = Sias_wal.Wal
module Commitpipe = Sias_wal.Commitpipe
module Bufpool = Sias_storage.Bufpool
module Contention = Sias_txn.Contention
module Bus = Sias_obs.Bus
module Value = Mvcc.Value
module Sichecker = Mvcc.Sichecker
module Link = Sias_repl.Link
module Repl = Sias_repl.Repl
module Explorer = Sias_chaos.Explorer

exception Divergence of string

let () =
  Printexc.register_printer (function
    | Divergence msg -> Some (Printf.sprintf "Chaosrun.Divergence: %s" msg)
    | _ -> None)

type config = {
  engine : string;
  isolation : string;
  index : string; (* "array" or "paged" *)
  commit_mode : Commitpipe.mode;
  standby : bool;
  ops : int;
  seed : int;
}

let config ?(isolation = "si") ?(index = "array")
    ?(commit_mode = Commitpipe.Sync) ?(standby = false) ?(ops = 60)
    ?(seed = 11) engine =
  { engine; isolation; index; commit_mode; standby; ops; seed }

let index_kind = function
  | "array" -> `Array
  | "paged" -> `Paged
  | other ->
      invalid_arg (Printf.sprintf "unknown index kind %S (array or paged)" other)

(* Deterministic op stream: a plain LCG, so every replay of the same
   config reaches every crash point the census saw, in the same order. *)
let lcg state =
  state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
  !state

let keys = 12
let stray_pk = 999

(* One committed transaction on the model timeline. Commit order equals
   WAL order equals xid order (the workload is serial), so the durable
   state after any crash must be the model state of some prefix. *)
type cand = {
  c_xid : int;
  c_state : (int * int) list; (* sorted (pk, value) after this commit *)
  c_after_lsn : int; (* WAL head right after commit returned *)
  c_writes : (int * int option) list; (* (pk, value) — None = delete *)
}

let snapshot_state model =
  Hashtbl.fold (fun k v acc -> (k, v) :: acc) model [] |> List.sort compare

module Make (E : Engine.S) = struct
  type inst = {
    db : Db.t;
    eng : E.t;
    table : E.table;
    (* failover axis: the node that survives the crash *)
    standby : (Db.t * E.t * E.table * Repl.t) option;
    model : (int, int) Hashtbl.t;
    mutable cands : cand list; (* newest first *)
    mutable maybe : cand option; (* commit in flight when the crash hit *)
    mutable flushed_at_crash : int;
  }

  (* Built by the session factory — before the explorer arms anything —
     so setup-time WAL traffic can never eat an armed crash point meant
     for the workload. *)
  let build cfg =
    let db =
      Db.create ~buffer_pages:128 ~commit_mode:cfg.commit_mode
        ~isolation:(Mvcc.Isolation.of_string_exn cfg.isolation)
        ~index:(index_kind cfg.index) ()
    in
    let eng = E.create db in
    let table = E.create_table eng ~name:"t" ~pk_col:0 () in
    let standby =
      if not cfg.standby then None
      else begin
        let sdb = Db.create ~buffer_pages:128 ~index:(index_kind cfg.index) () in
        let seng = E.create sdb in
        let stable = E.create_table seng ~name:"t" ~pk_col:0 () in
        let link = Link.create ~profile:Link.clean ~seed:cfg.seed () in
        let repl =
          Repl.attach ~primary:db ~standby:sdb ~link ~mode:Repl.Ship_async ()
        in
        Repl.set_refresh repl (fun () ->
            Bufpool.drop_cache sdb.Db.pool;
            E.recover seng);
        Some (sdb, seng, stable, repl)
      end
    in
    {
      db;
      eng;
      table;
      standby;
      model = Hashtbl.create 32;
      cands = [];
      maybe = None;
      flushed_at_crash = 0;
    }

  let row k v = [| Value.Int k; Value.Int v |]

  (* The workload is serial, so even under SSI/WSI no commit may ever be
     refused — a serialization failure here is a divergence, not an
     outcome to absorb. *)
  let commit_ok eng txn =
    match E.commit eng txn with
    | Ok () -> ()
    | Error e ->
        raise
          (Divergence
             ("serial workload commit refused: " ^ Engine.error_to_string e))

  (* Commit [txn] with the model transition staged in [maybe] first: if
     the crash lands inside the commit, verification still knows this
     transaction MAY be durable (its commit record might have reached the
     flushed prefix) and what the state looks like if it is. *)
  let committing i txn writes =
    i.maybe <-
      Some
        {
          c_xid = txn.Txn.xid;
          c_state = snapshot_state i.model;
          c_after_lsn = max_int;
          c_writes = writes;
        };
    commit_ok i.eng txn;
    (match i.maybe with
    | Some c ->
        i.cands <-
          { c with c_after_lsn = Wal.current_lsn i.db.Db.wal } :: i.cands
    | None -> ());
    i.maybe <- None

  let run cfg i =
    let rng = ref cfg.seed in
    for _ = 1 to cfg.ops do
      let r = lcg rng mod 100 in
      let k = 1 + (lcg rng mod keys) in
      let v = lcg rng mod 1000 in
      if r < 35 then begin
        (* upsert: insert, or update when the key exists *)
        let txn = E.begin_txn i.eng in
        match E.insert i.eng txn i.table (row k v) with
        | Ok () ->
            Hashtbl.replace i.model k v;
            committing i txn [ (k, Some v) ]
        | Error _ -> (
            E.abort i.eng txn;
            let txn = E.begin_txn i.eng in
            match
              E.update i.eng txn i.table ~pk:k (fun r ->
                  let r = Array.copy r in
                  r.(1) <- Value.Int v;
                  r)
            with
            | Ok () ->
                Hashtbl.replace i.model k v;
                committing i txn [ (k, Some v) ]
            | Error _ -> E.abort i.eng txn)
      end
      else if r < 55 then begin
        let txn = E.begin_txn i.eng in
        match
          E.update i.eng txn i.table ~pk:k (fun r ->
              let r = Array.copy r in
              r.(1) <- Value.Int v;
              r)
        with
        | Ok () ->
            Hashtbl.replace i.model k v;
            committing i txn [ (k, Some v) ]
        | Error _ -> E.abort i.eng txn
      end
      else if r < 65 then begin
        let txn = E.begin_txn i.eng in
        match E.delete i.eng txn i.table ~pk:k with
        | Ok () ->
            Hashtbl.remove i.model k;
            committing i txn [ (k, None) ]
        | Error _ -> E.abort i.eng txn
      end
      else if r < 85 then begin
        (* advance simulated time: closes group-commit windows, runs the
           async trickle, the checkpointer and the replication ticker *)
        Simclock.advance i.db.Db.clock 0.02;
        Db.tick i.db
      end
      else begin
        (* read-only transaction: exercises hint patching, and its commit
           record still lands on the prefix timeline *)
        let txn = E.begin_txn i.eng in
        ignore (E.read i.eng txn i.table ~pk:k);
        committing i txn []
      end
    done;
    (* an in-flight transaction at crash time must be rolled back *)
    let in_flight = E.begin_txn i.eng in
    ignore (E.insert i.eng in_flight i.table (row stray_pk 0))

  let crash i =
    i.flushed_at_crash <- Wal.flushed_lsn i.db.Db.wal;
    Db.crash i.db

  let recover i =
    match i.standby with
    | None -> E.recover i.eng
    | Some (_, _, _, repl) ->
        (* failover: the primary is gone; promote the surviving standby.
           [promote] is idempotent enough to re-run after a nested crash;
           [refresh] rebuilds the standby engine from its installed log. *)
        if not (Repl.promoted repl) then Repl.promote repl
        else begin
          Repl.refresh repl;
          match i.standby with
          | Some (sdb, seng, _, _) ->
              Bufpool.drop_cache sdb.Db.pool;
              E.recover seng
          | None -> ()
        end

  (* The surviving node: the primary itself, or the promoted standby. *)
  let survivor i =
    match i.standby with
    | None -> (i.db, i.eng, i.table)
    | Some (sdb, seng, stable, _) -> (sdb, seng, stable)

  let dump i =
    let _, eng, table = survivor i in
    let txn = E.begin_txn eng in
    let rows =
      List.filter_map
        (fun k ->
          Option.map
            (fun r -> (k, Value.int r.(1)))
            (E.read eng txn table ~pk:k))
        (List.init keys (fun j -> j + 1))
    in
    let stray = E.read eng txn table ~pk:stray_pk in
    let visible = E.scan eng txn table (fun _ -> ()) in
    commit_ok eng txn;
    (rows, stray = None, visible)

  let fail fmt = Printf.ksprintf (fun msg -> raise (Divergence msg)) fmt

  (* Feed the committed prefix to a fresh SI checker as a serial history,
     then replay the recovered state as one reader: the checker must
     accept every read as the newest committed version. *)
  let check_history committed (rows, _, _) =
    let ck = Sichecker.create () in
    let max_xid = ref 0 in
    List.iter
      (fun c ->
        if c.c_xid > !max_xid then max_xid := c.c_xid;
        Sichecker.on_begin ck ~xid:c.c_xid
          ~snapshot:(Snapshot.make ~xid:c.c_xid ~xmax:c.c_xid ~concurrent:[]);
        List.iter
          (fun (pk, v) ->
            Sichecker.on_write ck ~xid:c.c_xid ~rel:0 ~pk
              ~row:(Option.map (fun v -> row pk v) v))
          c.c_writes;
        Sichecker.on_commit ck ~xid:c.c_xid)
      committed;
    let reader = !max_xid + 1 in
    Sichecker.on_begin ck ~xid:reader
      ~snapshot:(Snapshot.make ~xid:reader ~xmax:reader ~concurrent:[]);
    List.iter
      (fun k ->
        let r = List.assoc_opt k rows in
        Sichecker.on_read ck ~xid:reader ~rel:0 ~pk:k
          ~row:(Option.map (fun v -> row k v) r))
      (List.init keys (fun j -> j + 1));
    Sichecker.on_commit ck ~xid:reader;
    if Sichecker.violation_count ck > 0 then
      fail "SI checker rejected the post-recovery history: %s"
        (String.concat " | " (Sichecker.violations ck))

  let verify i =
    let sdb, _, _ = survivor i in
    let mgr = sdb.Db.txnmgr in
    let cands = List.rev i.cands in
    let n = List.length cands in
    (* the recovered committed set must be a prefix of commit order *)
    let k =
      List.fold_left
        (fun k c ->
          let committed = Txn.is_committed mgr c.c_xid in
          match (k, committed) with
          | `Prefix len, true -> `Prefix (len + 1)
          | `Prefix len, false -> `Stopped len
          | `Stopped _, true ->
              fail
                "committed set is not a prefix of commit order: xid %d \
                 committed after a gap"
                c.c_xid
          | `Stopped len, false -> `Stopped len)
        (`Prefix 0) cands
    in
    let k = match k with `Prefix len | `Stopped len -> len in
    (* every commit acknowledged durable before the crash must survive *)
    (match i.standby with
    | Some _ -> () (* async shipping promises nothing at failover *)
    | None ->
        let required =
          List.length
            (List.filter (fun c -> c.c_after_lsn <= i.flushed_at_crash) cands)
        in
        if k < required then
          fail
            "durability lost: only %d of %d transactions survived but %d \
             had durable commit records (flushed lsn %d at crash)"
            k n required i.flushed_at_crash);
    (* the in-doubt commit (crash inside commit) may extend the prefix *)
    let maybe_committed =
      match i.maybe with
      | Some m when Txn.is_committed mgr m.c_xid ->
          if k < n then
            fail
              "in-doubt xid %d survived while definite commit before it was \
               lost"
              m.c_xid;
          Some m
      | _ -> None
    in
    let committed =
      List.filteri (fun j _ -> j < k) cands
      @ match maybe_committed with Some m -> [ m ] | None -> []
    in
    let expect_state =
      match List.rev committed with [] -> [] | last :: _ -> last.c_state
    in
    let pp_state s =
      String.concat ","
        (List.map (fun (k, v) -> Printf.sprintf "%d=%d" k v) s)
    in
    let (rows, no_stray, visible) as d = dump i in
    if rows <> expect_state then
      fail
        "recovered state diverges from the model prefix at commit %d/%d: \
         expected [%s] got [%s]"
        (List.length committed) n (pp_state expect_state) (pp_state rows);
    if not no_stray then fail "uncommitted in-flight row survived the crash";
    if visible <> List.length expect_state then
      fail "visible-row count %d does not match model %d" visible
        (List.length expect_state);
    check_history committed d;
    (* recovery must be idempotent: running it again changes nothing *)
    recover i;
    let d' = dump i in
    if d' <> d then fail "recovery is not idempotent: second pass diverged"

  let session cfg =
    let i = build cfg in
    {
      Explorer.run = (fun () -> run cfg i);
      crash = (fun () -> crash i);
      recover = (fun () -> recover i);
      verify = (fun () -> verify i);
    }
end

let session cfg =
  let _, (module E : Engine.S) = Engine.resolve_exn cfg.engine in
  let module M = Make (E) in
  M.session cfg

let explore ?(cfg = Explorer.default_config) c =
  Explorer.explore cfg (fun () -> session c)

(* ------------------------------------------------------------------ *)
(* Out-of-space scenarios: finite WAL capacity, emergency reclamation,
   watermark backpressure, and loud read-only degradation. *)

type oos_outcome = {
  attempted : int;
  committed : int;
  read_only_errors : int; (* writers refused by degraded mode *)
  shed : int; (* admissions refused by backpressure *)
  reclaims : int;
  backpressure_on : int;
  backpressure_off : int;
  degraded : string option;
  consistent : bool; (* restart serves exactly the committed model *)
}

let oos_run ?(hold = false) ?(ops = 400) ~engine ~wal_capacity_bytes () =
  let _, (module E : Engine.S) = Engine.resolve_exn engine in
  let bus = Bus.create () in
  let reclaims = ref 0 and bp_on = ref 0 and bp_off = ref 0 in
  Bus.subscribe bus (function
    | Bus.Wal_reclaim _ -> incr reclaims
    | Bus.Backpressure { on; _ } -> if on then incr bp_on else incr bp_off
    | _ -> ());
  let db = Db.create ~bus ~wal_capacity_bytes () in
  (* a retention hold pinning the whole log makes reclamation futile, so
     the database must degrade instead of thrashing on checkpoints *)
  if hold then ignore (Wal.register_hold db.Db.wal ~name:"chaos-hold");
  let eng = E.create db in
  let table = E.create_table eng ~name:"t" ~pk_col:0 () in
  let model = Hashtbl.create 64 in
  let attempted = ref 0 and committed = ref 0 in
  let read_only = ref 0 and shed = ref 0 in
  (* one write transaction; a mid-transaction Read_only (the log filled
     while the row was being logged) aborts it like any other failure *)
  let one body =
    let txn = E.begin_txn eng in
    match body txn with
    | Ok () -> (
        try
          match E.commit eng txn with
          | Ok () -> `Committed
          | Error _ -> `Conflict
        with Db.Read_only _ -> `Read_only)
    | Error _ ->
        E.abort eng txn;
        `Conflict
    | exception Db.Read_only _ ->
        E.abort eng txn;
        `Read_only
  in
  let upsert k n =
    match one (fun txn -> E.insert eng txn table [| Value.Int k; Value.Int n |]) with
    | `Conflict ->
        one (fun txn ->
            E.update eng txn table ~pk:k (fun r ->
                let r = Array.copy r in
                r.(1) <- Value.Int n;
                r))
    | r -> r
  in
  for n = 1 to ops do
    if n mod 10 = 0 then begin
      Simclock.advance db.Db.clock 0.05;
      Db.tick db
    end;
    match Contention.admit db.Db.contention with
    | Contention.Shed -> incr shed
    | Contention.Admitted ->
        incr attempted;
        let k = 1 + (n mod 40) in
        (match upsert k n with
        | `Committed ->
            Hashtbl.replace model k n;
            incr committed
        | `Read_only -> incr read_only
        | `Conflict -> ());
        Contention.release db.Db.contention
  done;
  let degraded = Db.degraded db in
  (* restart: the recovered state must serve exactly the committed model,
     which under reclamation forces the checkpoint CLOG snapshot and the
     truncated-log redo path to carry their weight *)
  Db.crash db;
  E.recover eng;
  let txn = E.begin_txn eng in
  let consistent = ref true in
  Hashtbl.iter
    (fun k v ->
      match E.read eng txn table ~pk:k with
      | Some r when Value.int r.(1) = v -> ()
      | _ -> consistent := false)
    model;
  let visible = E.scan eng txn table (fun _ -> ()) in
  ignore (E.commit eng txn);
  if visible <> Hashtbl.length model then consistent := false;
  {
    attempted = !attempted;
    committed = !committed;
    read_only_errors = !read_only;
    shed = !shed;
    reclaims = !reclaims;
    backpressure_on = !bp_on;
    backpressure_off = !bp_off;
    degraded;
    consistent = !consistent;
  }
