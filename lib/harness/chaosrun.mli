(** Crash-schedule sessions and out-of-space scenarios for the chaos
    explorer.

    A [config] describes one deterministic seeded workload over a
    registered engine — optionally through the WAL-shipping standby, in
    which case the crash kills the primary and "recovery" is failover to
    the promoted standby. {!session} packages it as an
    {!Sias_chaos.Explorer.session} whose [verify] adjudicates:

    - {b committed prefix}: the recovered committed set is a prefix of
      commit order, at least as long as the durably-acknowledged prefix
      at crash time (no durability promise on the async-shipped standby);
    - {b state}: visible rows are byte-equal to the model state at that
      prefix's horizon, and no in-flight row survived;
    - {b history}: a fresh {!Mvcc.Sichecker} accepts the committed prefix
      plus the post-recovery reads as a valid SI history;
    - {b idempotency}: running recovery a second time changes nothing.

    Any divergence raises {!Divergence}, which the explorer records as a
    schedule failure. *)

exception Divergence of string

type config = {
  engine : string;  (** registry key: "si", "si-cv", "sias", "sias-v" *)
  isolation : string;  (** isolation key: "si", "ssi", "wsi" *)
  index : string;  (** index kind: "array" or "paged" *)
  commit_mode : Sias_wal.Commitpipe.mode;
  standby : bool;  (** crash the primary, fail over to a hot standby *)
  ops : int;  (** workload length (committed txns, ticks, reads) *)
  seed : int;  (** LCG seed: same seed, same schedule, same census *)
}

val config :
  ?isolation:string ->
  ?index:string ->
  ?commit_mode:Sias_wal.Commitpipe.mode ->
  ?standby:bool ->
  ?ops:int ->
  ?seed:int ->
  string ->
  config
(** Defaults: isolation "si", index "array", sync commit, no standby,
    60 ops, seed 11. The workload is serial, so the schedule census is
    identical at every isolation level; what an SSI/WSI run adds is the
    check that the volatile SIREAD/conflict state never leaks across
    {!Mvcc.Db.crash} — a commit refused after recovery raises
    {!Divergence}. An [index:"paged"] run additionally walks through the
    paged-index crash points ([index.fpw.pre], [index.wal.pre-apply],
    [index.split.mid]), adjudicating WAL-logged index recovery. *)

val session : config -> Sias_chaos.Explorer.session
(** A fresh database/engine/workload instance. The database is built
    here — at factory time, before the explorer arms a crash point — so
    setup-time WAL traffic never eats an armed workload site. *)

val explore :
  ?cfg:Sias_chaos.Explorer.config -> config -> Sias_chaos.Explorer.report
(** [Explorer.explore] over {!session} factories for this config. *)

(** {1 Out-of-space degradation} *)

type oos_outcome = {
  attempted : int;
  committed : int;
  read_only_errors : int;  (** writers refused with {!Mvcc.Db.Read_only} *)
  shed : int;  (** admissions refused by watermark backpressure *)
  reclaims : int;  (** emergency WAL reclamations observed on the bus *)
  backpressure_on : int;
  backpressure_off : int;
  degraded : string option;  (** final degraded-mode reason, if entered *)
  consistent : bool;
      (** after restart, the recovered state served exactly the committed
          model — exercising the checkpoint CLOG snapshot and
          truncated-log redo *)
}

val oos_run :
  ?hold:bool ->
  ?ops:int ->
  engine:string ->
  wal_capacity_bytes:int ->
  unit ->
  oos_outcome
(** Drive an upsert workload against a finite-capacity WAL. Without
    [hold], reclamation keeps the workload running indefinitely; with
    [hold] (a retention hold pinning the whole log) reclamation is futile
    and the database must degrade to loud read-only instead of thrashing.
    Default 400 ops. *)
