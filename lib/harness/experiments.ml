module Device = Flashsim.Device
module Blocktrace = Flashsim.Blocktrace
module Bufpool = Sias_storage.Bufpool
module Bgwriter = Sias_storage.Bgwriter
module Db = Mvcc.Db
module Commitpipe = Sias_wal.Commitpipe
module W = Tpcc.Tpcc_workload
module S = Tpcc.Tpcc_schema
module Bus = Sias_obs.Bus
module Metrics = Sias_obs.Metrics
module Tracer = Sias_obs.Tracer
module Repl = Sias_repl.Repl
module Link = Sias_repl.Link

let engine_name = Mvcc.Engine.display_name

type device_kind = Ssd_single | Ssd_sized of int | Ssd_raid of int | Hdd_single

type flush = T1 | T2

type setup = {
  engine : string;
  isolation : string;
  device : device_kind;
  flush : flush;
  buffer_pages : int;
  warehouses : int;
  scale_div : int;
  duration_s : float;
  terminals_per_warehouse : int;
  think_time_s : float;
  seed : int;
  gc_interval_s : float option;
  checkpoint_interval_s : float;
  vidmap_paged : bool;
  keep_trace_records : bool;
  synchronous_commit : bool;
  commit_delay_s : float;
  wal_device : device_kind option;
  fault_seed : int option;
  fault_profile : Flashsim.Faultdev.profile;
  contention : Sias_txn.Contention.settings;
  retries : int;
  check_si : bool;
  metrics_out : string option;
  trace_out : string option;
  stats_interval_s : float option;
  collect_metrics : bool;
  repl_mode : Repl.mode option;
  repl_link : Link.profile;
  repl_seed : int;
  index : string;  (** "array" (default, golden) or "paged" *)
  measure_index_io : bool;
      (** subscribe a page-flush classifier that splits device writes into
          index-page vs heap-page traffic (off by default: subscribing
          activates the bus, which golden runs must not do) *)
}

let fault_override : (int * Flashsim.Faultdev.profile) option ref = ref None
let obs_override : (string option * string option) option ref = ref None
let commit_override : (bool * float) option ref = ref None

let default_setup ~engine ~warehouses =
  {
    engine;
    isolation = "si";
    device = Ssd_single;
    flush = T2;
    buffer_pages = 2048;
    warehouses;
    scale_div = 100;
    duration_s = 60.0;
    terminals_per_warehouse = 1;
    think_time_s = 1.0;
    seed = 42;
    gc_interval_s = None;
    checkpoint_interval_s = 30.0;
    vidmap_paged = false;
    keep_trace_records = false;
    synchronous_commit = true;
    commit_delay_s = 0.0;
    wal_device = None;
    fault_seed = None;
    fault_profile = Flashsim.Faultdev.light;
    contention = Sias_txn.Contention.default_settings;
    retries = 0;
    check_si = false;
    metrics_out = None;
    trace_out = None;
    stats_interval_s = None;
    collect_metrics = false;
    repl_mode = None;
    repl_link = Link.clean;
    repl_seed = 7;
    index = "array";
    measure_index_io = false;
  }

(* Index-vs-heap split of the measured run's page-flush traffic, plus
   the index's own logical volume — together the index write
   amplification: physical index MB flushed per logical MB of entries
   ever inserted (16 bytes each). *)
type index_io = {
  ix_flush_mb : float;
  ix_flush_count : int;
  heap_flush_mb : float;  (** every non-index page flush: heap + VID_map *)
  heap_flush_count : int;
  ix_logical_mb : float;
  ix_entries : int;
  ix_nodes : int;
  ix_height : int;
  ix_splits : int;
  ix_merges : int;
}

type output = {
  setup : setup;
  result : W.result;
  load_write_mb : float;
  run_write_mb : float;
  run_read_mb : float;
  run_write_count : int;
  run_read_count : int;
  space_mb : float;
  avg_fill : float;
  device_info : (string * float) list;
  buf_stats : Bufpool.stats;
  trace : Blocktrace.t;
  contention_stats : Sias_txn.Contention.stats;
  commit_stats : Commitpipe.stats;
  wal_write_mb : float;
  checker : Mvcc.Sichecker.t option;
  metrics : Metrics.t option;
  repl_stats : Repl.stats option;
  index_io : index_io option;
}

let make_device = function
  | Ssd_single -> Device.ssd_x25e ~name:"data-ssd" ~blocks:8192 ()
  | Ssd_sized blocks -> Device.ssd_x25e ~name:"data-ssd" ~blocks ()
  | Ssd_raid n -> Device.ssd_raid ~blocks_per_ssd:8192 n
  | Hdd_single -> Device.hdd_7200 ~name:"data-hdd" ()

let make_wal_device = function
  | Ssd_single -> Device.ssd_x25e ~name:"wal-ssd" ~blocks:8192 ()
  | Ssd_sized blocks -> Device.ssd_x25e ~name:"wal-ssd" ~blocks ()
  | Ssd_raid n -> Device.ssd_raid ~blocks_per_ssd:8192 n
  | Hdd_single -> Device.hdd_7200 ~name:"wal-hdd" ()

let flush_policy = function
  | T1 -> Bgwriter.T1_bgwriter { interval = 0.2; max_pages = 100 }
  | T2 -> Bgwriter.T2_checkpoint_only

(* For a RAID, the logical trace is at the RAID device; member devices
   carry their own physical traces. Measurement uses the top device. *)

let engine_module key : (module Mvcc.Engine.S) =
  match Mvcc.Engine.find key with
  | Some m -> m
  | None ->
      invalid_arg
        (Printf.sprintf "unknown engine %S; known engines: %s" key
           (Mvcc.Engine.known_keys_hint ()))

let isolation_level key : Mvcc.Isolation.level =
  match Mvcc.Isolation.of_string key with
  | Some l -> l
  | None ->
      invalid_arg
        (Printf.sprintf "unknown isolation level %S; known levels: %s" key
           (Mvcc.Isolation.known_keys_hint ()))

(* Periodic progress line on stderr, driven by simulated time: every
   event is a chance to notice the sim clock crossed the next tick. *)
let attach_stats_ticker bus ~clock ~metrics ~interval =
  let next = ref interval in
  let metric name labels =
    match Metrics.value metrics ~labels name with Some v -> v | None -> 0.0
  in
  Bus.subscribe bus (fun _ ->
      let now = Sias_util.Simclock.now clock in
      if now >= !next then begin
        while now >= !next do
          next := !next +. interval
        done;
        Printf.eprintf
          "[sim %8.2fs] commits=%.0f aborts=%.0f retries=%.0f wal-MB=%.2f\n%!"
          now
          (metric "sias_txn_total" [ ("event", "commit") ])
          (metric "sias_txn_total" [ ("event", "abort") ])
          (metric "sias_txn_total" [ ("event", "retry") ])
          (metric "sias_wal_bytes_total" [] /. (1024.0 *. 1024.0))
      end)

let write_text_file path contents =
  let oc = open_out path in
  output_string oc contents;
  close_out oc

let run_tpcc setup =
  let setup =
    match (!fault_override, setup.fault_seed) with
    | Some (seed, profile), None ->
        { setup with fault_seed = Some seed; fault_profile = profile }
    | _ -> setup
  in
  let setup =
    match !commit_override with
    | Some (sync_commit, delay)
      when setup.synchronous_commit && setup.commit_delay_s = 0.0 ->
        { setup with synchronous_commit = sync_commit; commit_delay_s = delay }
    | _ -> setup
  in
  let setup =
    match !obs_override with
    | Some (m, t) ->
        {
          setup with
          metrics_out = (if setup.metrics_out = None then m else setup.metrics_out);
          trace_out = (if setup.trace_out = None then t else setup.trace_out);
        }
    | None -> setup
  in
  let (module E : Mvcc.Engine.S) = engine_module setup.engine in
  let module WE = W.Make (E) in
  let faults =
    Option.map
      (fun seed -> Flashsim.Faultdev.create ~profile:setup.fault_profile ~seed ())
      setup.fault_seed
  in
  let device =
    let d = make_device setup.device in
    match faults with None -> d | Some f -> Flashsim.Faultdev.wrap f d
  in
  Blocktrace.set_keep_records (Device.trace device) setup.keep_trace_records;
  let wal_device = Option.map make_wal_device setup.wal_device in
  let commit_mode =
    if not setup.synchronous_commit then
      (* PostgreSQL synchronous_commit=off: ack at append, WAL-writer
         trickle (wal_writer_delay-style) makes the loss window bounded *)
      Commitpipe.Async { interval = 0.1; max_bytes = 64 * 1024 }
    else if setup.commit_delay_s > 0.0 then
      Commitpipe.Group { delay = setup.commit_delay_s }
    else Commitpipe.Sync
  in
  let bus = Bus.create () in
  let index_kind =
    match setup.index with
    | "array" -> `Array
    | "paged" -> `Paged
    | other ->
        invalid_arg
          (Printf.sprintf "unknown index kind %S (array or paged)" other)
  in
  let db =
    Db.create ~bus ~device ?wal_device ?faults ~buffer_pages:setup.buffer_pages
      ~flush_policy:(flush_policy setup.flush)
      ~checkpoint_interval:setup.checkpoint_interval_s
      ?append_seal_interval:(match setup.flush with T1 -> Some 0.2 | T2 -> None)
      ~os_cache_interval:30.0 ~os_cache_pages:(setup.buffer_pages / 4)
      ~vidmap_paged:setup.vidmap_paged ~contention:setup.contention
      ~commit_mode
      ~isolation:(isolation_level setup.isolation)
      ~index:index_kind ()
  in
  let checker = if setup.check_si then Some (Mvcc.Sichecker.attach bus) else None in
  let want_metrics =
    setup.collect_metrics || setup.metrics_out <> None
    || setup.stats_interval_s <> None
  in
  let metrics =
    if want_metrics then begin
      let m = Metrics.create () in
      Sias_obs.Recorder.attach m bus;
      Some m
    end
    else None
  in
  (match (setup.stats_interval_s, metrics) with
  | Some interval, Some m ->
      attach_stats_ticker bus ~clock:db.Db.clock ~metrics:m ~interval
  | _ -> ());
  let eng = E.create db in
  let tables = WE.create_tables eng in
  (* Replication attaches before the load so the retention hold pins the
     log from LSN 1 and the standby can replay the run from scratch. The
     standby mirrors the primary's engine-relevant configuration (same
     table-creation order, so relation ids agree) but keeps its WAL in
     memory: installs are verbatim copies and flush instantly. *)
  let repl =
    match setup.repl_mode with
    | None -> None
    | Some mode ->
        let sdb =
          Db.create ~buffer_pages:setup.buffer_pages
            ?append_seal_interval:
              (match setup.flush with T1 -> Some 0.2 | T2 -> None)
            ~vidmap_paged:setup.vidmap_paged ~index:index_kind ()
        in
        let seng = E.create sdb in
        let (_ : WE.tables) = WE.create_tables seng in
        let link =
          Link.create ~profile:setup.repl_link ~seed:setup.repl_seed ()
        in
        let r = Repl.attach ~primary:db ~standby:sdb ~link ~mode () in
        Repl.set_refresh r (fun () ->
            Bufpool.drop_cache sdb.Db.pool;
            E.recover seng);
        Some r
  in
  let cfg =
    {
      (W.default_config ~warehouses:setup.warehouses) with
      W.scale = S.scaled ~div:setup.scale_div ();
      duration_s = setup.duration_s;
      terminals_per_warehouse = setup.terminals_per_warehouse;
      think_time_s = setup.think_time_s;
      seed = setup.seed;
      gc_interval_s = setup.gc_interval_s;
      retry =
        (if setup.retries > 0 then
           Some
             (Sias_txn.Contention.retry_config
                ~max_attempts:(setup.retries + 1) ())
         else None);
    }
  in
  WE.load eng tables cfg;
  (* settle: persist the loaded state once, as a freshly started server
     would, then measure only the benchmark run *)
  Commitpipe.finalize db.Db.commitpipe;
  Bufpool.flush_all db.Db.pool ~sync:false;
  Bufpool.flush_os_cache db.Db.pool;
  let trace = Device.trace device in
  let load_write_mb = Blocktrace.write_mb trace in
  Blocktrace.reset trace;
  (* commit-pipeline stats and the WAL device's trace likewise cover only
     the measured run *)
  Commitpipe.reset_stats db.Db.commitpipe;
  Option.iter (fun d -> Blocktrace.reset (Device.trace d)) wal_device;
  (* metrics and trace cover exactly what the block trace covers: the
     measured run, not the bulk load *)
  Option.iter Metrics.reset metrics;
  let tracer =
    Option.map (fun _ -> Tracer.attach ~clock:db.Db.clock bus) setup.trace_out
  in
  (* the classifier subscribes only on request: it covers exactly the
     measured run (the trace was just reset), and golden runs must not
     activate the bus *)
  let index_flush_cells =
    if setup.measure_index_io then begin
      let rels =
        List.sort_uniq compare
          (List.concat_map
             (fun (_, l) -> List.map (fun s -> s.Mvcc.Index.s_rel) l)
             (E.index_summary eng))
      in
      let page_mb =
        float_of_int (Bufpool.page_size db.Db.pool) /. (1024.0 *. 1024.0)
      in
      let ix_mb = ref 0.0 and ix_n = ref 0 and hp_mb = ref 0.0 and hp_n = ref 0 in
      Bus.subscribe bus (function
        | Bus.Page_flush { rel; _ } ->
            if List.mem rel rels then begin
              ix_mb := !ix_mb +. page_mb;
              incr ix_n
            end
            else begin
              hp_mb := !hp_mb +. page_mb;
              incr hp_n
            end
        | _ -> ());
      Some (ix_mb, ix_n, hp_mb, hp_n)
    end
    else None
  in
  let result = WE.run eng tables cfg in
  Bufpool.flush_os_cache db.Db.pool;
  let tables_list =
    [
      tables.WE.warehouse;
      tables.WE.district;
      tables.WE.customer;
      tables.WE.history;
      tables.WE.new_order;
      tables.WE.orders;
      tables.WE.order_line;
      tables.WE.item;
      tables.WE.stock;
    ]
  in
  let stats = List.map (E.table_stats eng) tables_list in
  let heap_pages =
    List.fold_left (fun acc s -> acc + s.Mvcc.Engine.heap_blocks) 0 stats
  in
  let avg_fill =
    let fills = List.filter_map
      (fun s -> if s.Mvcc.Engine.heap_blocks > 0 then Some s.Mvcc.Engine.avg_fill else None)
      stats
    in
    if fills = [] then 0.0
    else List.fold_left ( +. ) 0.0 fills /. float_of_int (List.length fills)
  in
  (* one last drain so the sender ships the final flushed tail and the
     reported lag reflects link latency, not an unticked send cursor *)
  Option.iter (fun _ -> Db.tick db) repl;
  (* artifacts are written after the table_stats scans so their device
     counters cover exactly the window the block-trace counters report;
     reliability counters (device-model info including dropped trace
     records and fault/retry/repair tallies, buffer-pool repair stats)
     are exported into the same registry first so Prometheus/JSON
     artifacts carry them *)
  (match metrics with
  | Some m ->
      Sias_obs.Recorder.export_reliability m ~scope:"data-device"
        (Device.info device);
      Option.iter
        (fun d ->
          Sias_obs.Recorder.export_reliability m ~scope:"wal-device"
            (Device.info d))
        wal_device;
      let bs = Bufpool.stats db.Db.pool in
      Sias_obs.Recorder.export_reliability m ~scope:"bufpool"
        [
          ("read_retries", float_of_int bs.Bufpool.read_retries);
          ("checksum_failures", float_of_int bs.Bufpool.checksum_failures);
          ("pages_repaired", float_of_int bs.Bufpool.pages_repaired);
          ("torn_pages", float_of_int bs.Bufpool.torn_pages);
        ]
  | None -> ());
  (* the standby's install counter lives on the standby's (unobserved)
     bus; fold the end-of-run replication stats into the same registry so
     the artifact lets lag reconcile against records shipped *)
  (match (repl, metrics) with
  | Some r, Some m ->
      let rs = Repl.stats r in
      Sias_obs.Recorder.export_reliability m ~scope:"repl"
        [
          ("installed_records", float_of_int rs.Repl.installed_records);
          ("installed_lsn", float_of_int rs.Repl.installed_lsn);
          ("lag_records", float_of_int rs.Repl.lag_records);
          ("retransmits", float_of_int rs.Repl.retransmits);
          ("degraded_acks", float_of_int rs.Repl.degraded_acks);
        ]
  | _ -> ());
  (match (setup.metrics_out, metrics) with
  | Some path, Some m -> write_text_file path (Metrics.to_prometheus m)
  | _ -> ());
  (match (setup.trace_out, tracer) with
  | Some path, Some tr -> Tracer.write_file tr path
  | _ -> ());
  {
    setup;
    result;
    load_write_mb;
    run_write_mb = Blocktrace.write_mb trace;
    run_read_mb = Blocktrace.read_mb trace;
    run_write_count = Blocktrace.write_count trace;
    run_read_count = Blocktrace.read_count trace;
    space_mb = float_of_int (heap_pages * 8192) /. (1024.0 *. 1024.0);
    avg_fill;
    device_info = Device.info device;
    buf_stats = Bufpool.stats db.Db.pool;
    trace;
    contention_stats = Sias_txn.Contention.stats db.Db.contention;
    commit_stats = Commitpipe.stats db.Db.commitpipe;
    wal_write_mb =
      (match wal_device with
      | Some d -> Blocktrace.write_mb (Device.trace d)
      | None -> 0.0);
    checker;
    metrics;
    repl_stats = Option.map Repl.stats repl;
    index_io =
      (match index_flush_cells with
      | None -> None
      | Some (ix_mb, ix_n, hp_mb, hp_n) ->
          let summaries = List.concat_map snd (E.index_summary eng) in
          let sum f = List.fold_left (fun acc s -> acc + f s) 0 summaries in
          Some
            {
              ix_flush_mb = !ix_mb;
              ix_flush_count = !ix_n;
              heap_flush_mb = !hp_mb;
              heap_flush_count = !hp_n;
              ix_logical_mb =
                float_of_int (sum (fun s -> s.Mvcc.Index.s_inserts) * 16)
                /. (1024.0 *. 1024.0);
              ix_entries = sum (fun s -> s.Mvcc.Index.s_entries);
              ix_nodes = sum (fun s -> s.Mvcc.Index.s_nodes);
              ix_height =
                List.fold_left
                  (fun acc s -> Stdlib.max acc s.Mvcc.Index.s_height)
                  0 summaries;
              ix_splits = sum (fun s -> s.Mvcc.Index.s_splits);
              ix_merges = sum (fun s -> s.Mvcc.Index.s_merges);
            });
  }

let pp_output_summary fmt o =
  Format.fprintf fmt
    "%s/%s: %d WH, %.0fs -> %.0f NOTPM; writes %.1f MB (%d), reads %.1f MB (%d); space %.1f MB (fill %.0f%%)"
    (engine_name o.setup.engine)
    (match o.setup.flush with T1 -> "t1" | T2 -> "t2")
    o.setup.warehouses o.result.W.elapsed_s o.result.W.notpm o.run_write_mb
    o.run_write_count o.run_read_mb o.run_read_count o.space_mb (100.0 *. o.avg_fill)
