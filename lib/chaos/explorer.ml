type site = { point : string; hit : int }
type schedule = { workload : site option; recovery : site list }
type failure = { schedule : schedule; error : string }

type report = {
  points : (string * int) list;
  recovery_points : (string * int) list;
  schedules_run : int;
  failures : failure list;
  truncated : bool;
}

type session = {
  run : unit -> unit;
  crash : unit -> unit;
  recover : unit -> unit;
  verify : unit -> unit;
}

type config = {
  hits_per_point : int;
  depth2 : bool;
  max_schedules : int option;
}

let default_config = { hits_per_point = 3; depth2 = true; max_schedules = None }

let site_to_string s =
  if s.hit = 1 then s.point else Printf.sprintf "%s#%d" s.point s.hit

let schedule_to_string sch =
  let w =
    match sch.workload with None -> "-" | Some s -> site_to_string s
  in
  match sch.recovery with
  | [] -> w
  | rs ->
      w ^ " -> "
      ^ String.concat " -> "
          (List.map (fun s -> "recovery:" ^ site_to_string s) rs)

(* Sample up to [n] hit indices out of 1..count, always including the
   first and last reach so both "earliest possible tear" and "crash at
   the very end of the window" get exercised. *)
let sample_hits n count =
  if count <= n then List.init count (fun i -> i + 1)
  else if n = 1 then [ 1 ]
  else
    List.init n (fun i -> 1 + i * (count - 1) / (n - 1))
    |> List.sort_uniq compare

let sites_of_census cfg census =
  List.concat_map
    (fun (point, count) ->
      List.map (fun hit -> { point; hit }) (sample_hits cfg.hits_per_point count))
    census

let error_to_string exn = Printexc.to_string exn

let explore cfg fresh =
  let failures = ref [] in
  let schedules_run = ref 0 in
  let truncated = ref false in
  let budget_left () =
    match cfg.max_schedules with
    | None -> true
    | Some m ->
        if !schedules_run < m then true
        else begin
          truncated := true;
          false
        end
  in
  (* Census pass: learn reachable points in the workload and in a clean
     recovery, and check the harness itself verifies on the happy path. *)
  let census_points, census_recovery =
    let s = fresh () in
    Crashpoint.census ();
    let cleanup () = Crashpoint.disarm () in
    (try
       s.run ();
       let pts = Crashpoint.censused () in
       s.crash ();
       Crashpoint.census ();
       s.recover ();
       let rec_pts = Crashpoint.censused () in
       cleanup ();
       s.verify ();
       (pts, rec_pts)
     with e ->
       cleanup ();
       failwith
         (Printf.sprintf "Explorer: census pass failed: %s" (error_to_string e)))
  in
  let workload_sites = sites_of_census cfg census_points in
  (* Depth 1: crash at each workload site, recover once (in census mode,
     so this schedule's own recovery points seed depth 2), verify. *)
  let depth2_seeds = ref [] in
  List.iter
    (fun site ->
      if budget_left () then begin
        incr schedules_run;
        let sch = { workload = Some site; recovery = [] } in
        let s = fresh () in
        try
          (try
             Crashpoint.arm ~point:site.point ~hit:site.hit ();
             s.run ();
             (* Deterministic reruns reach every censused site, so an
                armed point that never fires means the harness and the
                census disagree — surface it. *)
             Crashpoint.disarm ();
             failwith "armed crash point never fired"
           with Crashpoint.Crash _ -> ());
          s.crash ();
          Crashpoint.census ();
          s.recover ();
          let rec_pts = Crashpoint.censused () in
          Crashpoint.disarm ();
          s.verify ();
          if cfg.depth2 then depth2_seeds := (site, rec_pts) :: !depth2_seeds
        with e ->
          Crashpoint.disarm ();
          failures := { schedule = sch; error = error_to_string e } :: !failures
      end)
    workload_sites;
  (* Depth 2: for each surviving depth-1 schedule, crash once more at
     each point reached during its recovery, then recover to fixpoint. *)
  if cfg.depth2 then
    List.iter
      (fun (wsite, rec_pts) ->
        List.iter
          (fun rsite ->
            if budget_left () then begin
              incr schedules_run;
              let sch = { workload = Some wsite; recovery = [ rsite ] } in
              let s = fresh () in
              try
                (try
                   Crashpoint.arm ~point:wsite.point ~hit:wsite.hit ();
                   s.run ();
                   Crashpoint.disarm ();
                   failwith "armed workload crash point never fired"
                 with Crashpoint.Crash _ -> ());
                s.crash ();
                (try
                   Crashpoint.arm ~point:rsite.point ~hit:rsite.hit ();
                   s.recover ();
                   (* The nested site may be unreachable in this run if
                      the first recovery already repaired state; that is
                      a legal (boring) schedule, not a failure. *)
                   Crashpoint.disarm ()
                 with Crashpoint.Crash _ -> s.crash ());
                (* Recovery must converge: a disarmed re-run from the
                   crashed-recovery state is the fixpoint pass. *)
                s.recover ();
                s.verify ()
              with e ->
                Crashpoint.disarm ();
                failures :=
                  { schedule = sch; error = error_to_string e } :: !failures
            end)
          (sites_of_census cfg rec_pts))
      (List.rev !depth2_seeds);
  Crashpoint.disarm ();
  {
    points = census_points;
    recovery_points = census_recovery;
    schedules_run = !schedules_run;
    failures = List.rev !failures;
    truncated = !truncated;
  }

let pp_report fmt r =
  Format.fprintf fmt "crash points (workload): %d | (recovery): %d@."
    (List.length r.points)
    (List.length r.recovery_points);
  Format.fprintf fmt "schedules run: %d%s | failures: %d@." r.schedules_run
    (if r.truncated then " (truncated)" else "")
    (List.length r.failures);
  List.iter
    (fun f ->
      Format.fprintf fmt "  FAIL %s: %s@." (schedule_to_string f.schedule)
        f.error)
    r.failures
