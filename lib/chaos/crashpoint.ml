exception Crash of string

type mode =
  | Off
  | Census of (string, int) Hashtbl.t
  | Armed of { point : string; hit : int; mutable seen : int }

let mode = ref Off

let reach name =
  match !mode with
  | Off -> ()
  | Census counts ->
      let n = try Hashtbl.find counts name with Not_found -> 0 in
      Hashtbl.replace counts name (n + 1)
  | Armed a ->
      if String.equal a.point name then begin
        a.seen <- a.seen + 1;
        if a.seen = a.hit then begin
          (* One-shot: recovery re-runs the same sites and must not
             crash again unless the explorer re-arms. *)
          mode := Off;
          raise (Crash name)
        end
      end

let disarm () = mode := Off
let census () = mode := Census (Hashtbl.create 64)

let censused () =
  match !mode with
  | Census counts ->
      Hashtbl.fold (fun k v acc -> (k, v) :: acc) counts []
      |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  | Off | Armed _ -> []

let arm ~point ?(hit = 1) () =
  if hit < 1 then invalid_arg "Crashpoint.arm: hit < 1";
  mode := Armed { point; hit; seen = 0 }

let armed () =
  match !mode with
  | Armed a -> Some (a.point, a.hit)
  | Off | Census _ -> None
