(** Deterministic crash-schedule enumeration over {!Crashpoint} sites.

    The explorer is engine-agnostic: callers hand it a factory of
    [session] closures (build a fresh database, run the seeded
    workload, simulate power loss, recover, verify).  It first runs one
    session in census mode to learn the reachable crash points, then
    replays the workload once per (point, hit) site with that site
    armed, and — at depth 2 — once per (workload site, recovery site)
    pair so recovery itself is crashed and re-run to fixpoint.  Every
    schedule ends with the session's [verify], which must raise on any
    divergence from the model. *)

type site = { point : string; hit : int }

type schedule = {
  workload : site option;  (** crash injected while the workload runs *)
  recovery : site list;  (** nested crashes injected during recovery *)
}

type failure = { schedule : schedule; error : string }

type report = {
  points : (string * int) list;  (** workload census: point, reach count *)
  recovery_points : (string * int) list;  (** baseline recovery census *)
  schedules_run : int;
  failures : failure list;
  truncated : bool;  (** true when [max_schedules] cut enumeration short *)
}

type session = {
  run : unit -> unit;
  crash : unit -> unit;
  recover : unit -> unit;
  verify : unit -> unit;
}

type config = {
  hits_per_point : int;
      (** how many hit indices to sample per point (1 = first reach
          only; 3 = first, middle, last) *)
  depth2 : bool;  (** also crash during recovery *)
  max_schedules : int option;  (** total schedule budget, [None] = all *)
}

val default_config : config
(** [{ hits_per_point = 3; depth2 = true; max_schedules = None }] *)

val schedule_to_string : schedule -> string
(** e.g. ["wal.fsync.pre#2 -> recovery:walcodec.redo.record#5"] *)

val explore : config -> (unit -> session) -> report
(** Runs the census pass plus one session per schedule.  Always leaves
    {!Crashpoint} disarmed on return.  Raises [Failure] if the census
    pass itself cannot complete and verify cleanly. *)

val pp_report : Format.formatter -> report -> unit
