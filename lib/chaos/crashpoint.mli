(** Named crash points for deterministic crash-schedule exploration.

    Production and recovery code calls [reach "subsystem.site"] at the
    instants where a crash would be interesting.  In the default
    (disarmed) state a reach is a single mutable-load-and-branch — cheap
    enough to leave in hot paths.  The explorer first runs a workload in
    census mode to learn which points fire and how often, then re-runs
    it with one (point, hit) pair armed; the matching reach raises
    {!Crash}, which test harnesses treat as the machine losing power at
    that instant. *)

exception Crash of string
(** Raised by [reach p] when the armed (point, hit) matches.  The
    payload is the point name.  Arming is one-shot: the exception fires
    once and the registry disarms itself, so recovery code that re-runs
    the same sites does not crash again unless re-armed. *)

val reach : string -> unit
(** Mark that execution reached the named crash point.  No-op when
    disarmed; counts the hit in census mode; raises {!Crash} on the
    armed hit. *)

val disarm : unit -> unit
(** Return to the default no-op state (also clears census mode). *)

val census : unit -> unit
(** Start counting reaches per point (clears previous counts). *)

val censused : unit -> (string * int) list
(** Points reached since {!census}, with hit counts, sorted by name. *)

val arm : point:string -> ?hit:int -> unit -> unit
(** Arm the registry: the [hit]-th (1-based, default 1) reach of [point]
    raises {!Crash} and disarms. *)

val armed : unit -> (string * int) option
(** Currently armed (point, hit), if any. *)
