(* Tests for the disk-backed B+ tree and the hash index. *)

module Btree = Sias_index.Btree
module Hashindex = Sias_index.Hashindex
module Bufpool = Sias_storage.Bufpool
module Device = Flashsim.Device
module Simclock = Sias_util.Simclock

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_list = Alcotest.(check (list int))

let mk_pool ?(capacity = 256) () =
  let clock = Simclock.create () in
  let device = Device.ssd_x25e ~blocks:2048 () in
  Bufpool.create ~device ~clock ~capacity_pages:capacity (), device

let mk_tree ?capacity () =
  let pool, device = mk_pool ?capacity () in
  (Btree.create pool ~rel:0, pool, device)

let test_insert_lookup () =
  let t, _, _ = mk_tree () in
  Btree.insert t ~key:5 ~payload:50;
  Btree.insert t ~key:3 ~payload:30;
  Btree.insert t ~key:8 ~payload:80;
  check_list "lookup 5" [ 50 ] (Btree.lookup t ~key:5);
  check_list "lookup 3" [ 30 ] (Btree.lookup t ~key:3);
  check_list "missing" [] (Btree.lookup t ~key:7);
  checki "count" 3 (Btree.entry_count t)

let test_duplicates () =
  let t, _, _ = mk_tree () in
  Btree.insert t ~key:5 ~payload:1;
  Btree.insert t ~key:5 ~payload:2;
  Btree.insert t ~key:5 ~payload:3;
  Btree.insert t ~key:5 ~payload:2;
  (* exact duplicate ignored *)
  check_list "all payloads" [ 1; 2; 3 ] (Btree.lookup t ~key:5);
  checki "no duplicate pair" 3 (Btree.entry_count t)

let test_delete () =
  let t, _, _ = mk_tree () in
  Btree.insert t ~key:5 ~payload:1;
  Btree.insert t ~key:5 ~payload:2;
  check "delete existing" true (Btree.delete t ~key:5 ~payload:1);
  check "delete absent" false (Btree.delete t ~key:5 ~payload:1);
  check_list "remaining" [ 2 ] (Btree.lookup t ~key:5);
  check "mem" true (Btree.mem t ~key:5 ~payload:2);
  check "not mem" false (Btree.mem t ~key:5 ~payload:1)

let test_range () =
  let t, _, _ = mk_tree () in
  for k = 1 to 100 do
    Btree.insert t ~key:k ~payload:(k * 10)
  done;
  let r = Btree.range t ~lo:20 ~hi:25 in
  check_list "range keys" [ 20; 21; 22; 23; 24; 25 ] (List.map fst r);
  check_list "range payloads" [ 200; 210; 220; 230; 240; 250 ] (List.map snd r);
  check "empty range" true (Btree.range t ~lo:200 ~hi:300 = []);
  check "inverted range" true (Btree.range t ~lo:5 ~hi:1 = [])

let test_splits_and_height () =
  let t, _, _ = mk_tree () in
  let n = 5_000 in
  for k = 1 to n do
    Btree.insert t ~key:k ~payload:k
  done;
  check "tree grew" true (Btree.height t >= 2);
  check "splits happened" true ((Btree.stats t).Btree.splits > 0);
  (* every key still reachable *)
  let ok = ref true in
  for k = 1 to n do
    if Btree.lookup t ~key:k <> [ k ] then ok := false
  done;
  check "all keys present" true !ok;
  checki "entry count" n (Btree.entry_count t)

let test_random_order_inserts () =
  let t, _, _ = mk_tree () in
  let rng = Sias_util.Rng.create 17 in
  let keys = Array.init 3_000 (fun i -> i) in
  Sias_util.Rng.shuffle rng keys;
  Array.iter (fun k -> Btree.insert t ~key:k ~payload:(k + 1)) keys;
  let ok = ref true in
  Array.iter (fun k -> if Btree.lookup t ~key:k <> [ k + 1 ] then ok := false) keys;
  check "random insert order" true !ok;
  (* iter visits in sorted order *)
  let prev = ref min_int in
  let sorted = ref true in
  Btree.iter t (fun k _ ->
      if k < !prev then sorted := false;
      prev := k);
  check "iter sorted" true !sorted

let test_survives_buffer_pressure () =
  (* a pool smaller than the tree forces node pages through eviction *)
  let t, pool, _ = mk_tree ~capacity:8 () in
  for k = 1 to 4_000 do
    Btree.insert t ~key:k ~payload:k
  done;
  let st = Bufpool.stats pool in
  check "evictions happened" true (st.Bufpool.evictions > 0);
  let ok = ref true in
  for k = 1 to 4_000 do
    if Btree.lookup t ~key:k <> [ k ] then ok := false
  done;
  check "correct under eviction" true !ok

let test_node_writes_traced () =
  let t, pool, device = mk_tree ~capacity:8 () in
  for k = 1 to 2_000 do
    Btree.insert t ~key:k ~payload:k
  done;
  Bufpool.flush_all pool ~sync:false;
  check "index writes reach the device" true
    (Flashsim.Blocktrace.write_count (Device.trace device) > 0)

let qcheck_btree_model =
  QCheck.Test.make ~name:"btree equals sorted model" ~count:40
    QCheck.(
      list_of_size
        Gen.(int_range 1 400)
        (pair (int_bound 100) (pair (int_bound 20) bool)))
    (fun ops ->
      let t, _, _ = mk_tree () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, (p, ins)) ->
          if ins then begin
            Btree.insert t ~key:k ~payload:p;
            Hashtbl.replace model (k, p) ()
          end
          else begin
            ignore (Btree.delete t ~key:k ~payload:p);
            Hashtbl.remove model (k, p)
          end)
        ops;
      let expected =
        Hashtbl.fold (fun kp () acc -> kp :: acc) model [] |> List.sort compare
      in
      let actual = ref [] in
      Btree.iter t (fun k p -> actual := (k, p) :: !actual);
      List.rev !actual = expected)

let test_hashindex () =
  let h = Hashindex.create () in
  Hashindex.insert h ~key:1 ~payload:10;
  Hashindex.insert h ~key:1 ~payload:11;
  Hashindex.insert h ~key:1 ~payload:10;
  check_list "dup keys" [ 10; 11 ] (Hashindex.lookup h ~key:1);
  checki "entries" 2 (Hashindex.entry_count h);
  check "mem" true (Hashindex.mem h ~key:1 ~payload:11);
  check "delete" true (Hashindex.delete h ~key:1 ~payload:10);
  check "delete absent" false (Hashindex.delete h ~key:1 ~payload:10);
  check_list "after delete" [ 11 ] (Hashindex.lookup h ~key:1);
  check_list "missing key" [] (Hashindex.lookup h ~key:99)

let suite =
  [
    Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
    Alcotest.test_case "duplicate keys" `Quick test_duplicates;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "range scan" `Quick test_range;
    Alcotest.test_case "splits and height" `Quick test_splits_and_height;
    Alcotest.test_case "random insert order + sorted iter" `Quick test_random_order_inserts;
    Alcotest.test_case "survives buffer pressure" `Quick test_survives_buffer_pressure;
    Alcotest.test_case "node writes traced" `Quick test_node_writes_traced;
    QCheck_alcotest.to_alcotest qcheck_btree_model;
    Alcotest.test_case "hash index" `Quick test_hashindex;
  ]
