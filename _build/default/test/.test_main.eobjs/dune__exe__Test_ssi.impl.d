test/test_ssi.ml: Alcotest Array Gen List Mvcc Option QCheck QCheck_alcotest Result
