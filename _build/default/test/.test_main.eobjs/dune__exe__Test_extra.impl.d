test/test_extra.ml: Alcotest Array Flashsim Harness List Mvcc Printf Result Sias_storage Sias_wal String Tpcc
