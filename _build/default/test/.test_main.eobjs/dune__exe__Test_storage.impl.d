test/test_storage.ml: Alcotest Bgwriter Bufpool Bytes Flashsim Hashtbl Heapfile List Page Printf QCheck QCheck_alcotest Sias_storage Sias_util Tid
