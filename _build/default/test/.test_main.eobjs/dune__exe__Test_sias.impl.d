test/test_sias.ml: Alcotest Array Flashsim Gen List Mvcc Printf QCheck QCheck_alcotest Result Sias_index Sias_storage Vidmap
