test/test_noftl.ml: Alcotest Flashsim List Printf
