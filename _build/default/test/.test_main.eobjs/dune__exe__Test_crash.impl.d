test/test_crash.ml: Array Hashtbl List Mvcc Option Printf QCheck QCheck_alcotest Sias_storage String
