test/test_index.ml: Alcotest Array Flashsim Gen Hashtbl List QCheck QCheck_alcotest Sias_index Sias_storage Sias_util
