test/test_wal.ml: Alcotest Bytes Flashsim List Sias_util Sias_wal
