test/test_flashsim.ml: Alcotest Blocktrace Device Flashsim Ftl Gen Hashtbl Hdd List Nand QCheck QCheck_alcotest Sias_util Ssd String
