test/test_vidmap.ml: Alcotest Flashsim Gen Hashtbl List Option QCheck QCheck_alcotest Sias_storage Sias_util Vidmap
