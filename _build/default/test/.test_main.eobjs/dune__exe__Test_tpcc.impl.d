test/test_tpcc.ml: Alcotest Array Hashtbl List Mvcc Option Sias_util Stdlib Tpcc
