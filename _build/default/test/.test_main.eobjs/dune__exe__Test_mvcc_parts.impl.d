test/test_mvcc_parts.ml: Alcotest Bytes Mvcc QCheck QCheck_alcotest Sias_storage Sias_txn
