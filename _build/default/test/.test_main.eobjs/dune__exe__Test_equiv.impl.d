test/test_equiv.ml: Alcotest Array Buffer List Mvcc Printf QCheck QCheck_alcotest Result String
