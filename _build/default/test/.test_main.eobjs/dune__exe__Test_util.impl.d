test/test_util.ml: Alcotest Array Fun Gen Hashtbl List Option Printf QCheck QCheck_alcotest Rng Sias_util Simclock Stats String Tablefmt
