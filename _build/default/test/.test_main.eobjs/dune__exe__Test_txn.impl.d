test/test_txn.ml: Alcotest Gen List Lockmgr QCheck QCheck_alcotest Sias_txn Snapshot Txn
