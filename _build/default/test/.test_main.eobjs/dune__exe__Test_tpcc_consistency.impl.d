test/test_tpcc_consistency.ml: Alcotest Array Hashtbl List Mvcc Option Printf Tpcc
