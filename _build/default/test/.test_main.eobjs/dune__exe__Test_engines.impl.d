test/test_engines.ml: Alcotest Array Gen Hashtbl List Mvcc Option QCheck QCheck_alcotest Result Sias_storage
