(* Tests for the flash/HDD device simulator: NAND constraints, FTL
   mapping and garbage collection, latency asymmetry, RAID striping and
   blocktrace accounting. *)

open Flashsim

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let small_nand () = Nand.create ~blocks:8 ~pages_per_block:4 ~page_size:512

let test_nand_program_order () =
  let n = small_nand () in
  Alcotest.(check (option int)) "first free" (Some 0) (Nand.next_free_page n 0);
  Nand.program n 0;
  Nand.program n 1;
  check "valid" true (Nand.page_state n 0 = Nand.Valid);
  Alcotest.check_raises "out of order"
    (Invalid_argument "Nand.program: not the next free page of its block") (fun () ->
      Nand.program n 3);
  Alcotest.check_raises "reprogram"
    (Invalid_argument "Nand.program: not the next free page of its block") (fun () ->
      Nand.program n 0)

let test_nand_erase_rules () =
  let n = small_nand () in
  Nand.program n 0;
  Alcotest.check_raises "erase with valid pages"
    (Invalid_argument "Nand.erase_block: block still contains valid pages") (fun () ->
      Nand.erase_block n 0);
  Nand.invalidate n 0;
  Nand.erase_block n 0;
  checki "erase count" 1 (Nand.erase_count n 0);
  checki "total erases" 1 (Nand.total_erases n);
  check "free again" true (Nand.page_state n 0 = Nand.Free);
  Alcotest.(check (option int)) "programmable again" (Some 0) (Nand.next_free_page n 0)

let test_nand_counters () =
  let n = small_nand () in
  Nand.program n 0;
  Nand.program n 1;
  Nand.invalidate n 0;
  checki "valid count" 1 (Nand.valid_count n 0);
  checki "free count" 2 (Nand.free_count n 0);
  check "block not free" false (Nand.is_block_free n 0);
  check "other block free" true (Nand.is_block_free n 1)

let mk_ftl ?(blocks = 16) ?(overprovision = 0.25) () =
  let nand = Nand.create ~blocks ~pages_per_block:4 ~page_size:512 in
  Ftl.create ~overprovision ~gc_free_blocks:2 nand

let test_ftl_read_own_writes () =
  let f = mk_ftl () in
  Alcotest.(check (option int)) "unmapped" None (Ftl.read f 5);
  ignore (Ftl.write f 5);
  check "mapped after write" true (Ftl.read f 5 <> None);
  let p1 = Ftl.read f 5 in
  ignore (Ftl.write f 5);
  let p2 = Ftl.read f 5 in
  check "remapped out of place" true (p1 <> p2)

let test_ftl_gc_reclaims () =
  let f = mk_ftl () in
  let logical = Ftl.logical_pages f in
  (* hammer a small hot set to force GC *)
  for i = 0 to logical * 6 do
    ignore (Ftl.write f (i mod 8))
  done;
  check "erases happened" true (Ftl.erases f > 0);
  check "write amplification >= 1" true (Ftl.write_amplification f >= 1.0);
  (* all hot pages still readable *)
  for lpn = 0 to 7 do
    check "still mapped" true (Ftl.read f lpn <> None)
  done

let test_ftl_sequential_low_wa () =
  let f = mk_ftl ~blocks:64 () in
  let logical = Ftl.logical_pages f in
  (* one sequential pass over the device: no page is overwritten, GC finds
     empty victims, write amplification stays 1.0 *)
  for lpn = 0 to logical - 1 do
    ignore (Ftl.write f lpn)
  done;
  Alcotest.(check (float 0.01)) "WA of one sequential pass" 1.0 (Ftl.write_amplification f)

let test_ftl_random_higher_wa_than_sequential () =
  let seq = mk_ftl ~blocks:32 () in
  let rnd = mk_ftl ~blocks:32 () in
  let logical = Ftl.logical_pages seq in
  let rng = Sias_util.Rng.create 42 in
  for i = 0 to (4 * logical) - 1 do
    ignore (Ftl.write seq (i mod logical))
  done;
  for _ = 0 to (4 * logical) - 1 do
    ignore (Ftl.write rnd (Sias_util.Rng.int rng logical))
  done;
  check "random WA >= sequential WA"
    true
    (Ftl.write_amplification rnd >= Ftl.write_amplification seq -. 0.05)

let test_ftl_trim () =
  let f = mk_ftl () in
  ignore (Ftl.write f 3);
  Ftl.trim f 3;
  Alcotest.(check (option int)) "trimmed" None (Ftl.read f 3)

let test_ssd_asymmetry () =
  let ssd = Ssd.create (Ssd.x25e_config ~blocks:64 ()) in
  let r = Ssd.service_time ssd Blocktrace.Read ~sector:0 ~bytes:4096 in
  let w = Ssd.service_time ssd Blocktrace.Write ~sector:0 ~bytes:4096 in
  check "write slower than read" true (w > r);
  let r8 = Ssd.service_time ssd Blocktrace.Read ~sector:0 ~bytes:8192 in
  check "bigger read costs more" true (r8 > r)

let test_hdd_seek_vs_sequential () =
  let hdd = Hdd.create Hdd.default_config in
  (* first access seeks *)
  let t1 = Hdd.service_time hdd Blocktrace.Write ~sector:1_000_000 ~bytes:8192 in
  (* sequential follow-up is cheap *)
  let t2 = Hdd.service_time hdd Blocktrace.Write ~sector:1_000_016 ~bytes:8192 in
  (* far jump seeks again *)
  let t3 = Hdd.service_time hdd Blocktrace.Read ~sector:5_000_000 ~bytes:8192 in
  check "sequential much cheaper" true (t2 < t1 /. 10.0);
  check "random read seeks" true (t3 > 0.005)

let test_device_queue_and_trace () =
  let dev = Device.ssd_x25e ~blocks:64 () in
  let c1 = Device.submit dev ~now:0.0 Blocktrace.Write ~sector:0 ~bytes:8192 in
  check "completion after submit" true (c1 > 0.0);
  let c2 = Device.submit dev ~now:0.0 Blocktrace.Read ~sector:16 ~bytes:8192 in
  check "parallel channels serve both" true (c2 > 0.0);
  let tr = Device.trace dev in
  checki "two requests traced" 2 (Blocktrace.read_count tr + Blocktrace.write_count tr);
  Alcotest.(check (float 1e-9)) "write bytes" (8192.0 /. 1048576.0) (Blocktrace.write_mb tr)

let test_device_queue_saturation () =
  let dev = Device.hdd_7200 () in
  (* HDD has a single server: many simultaneous requests queue behind
     each other, so completions are strictly increasing *)
  let completions =
    List.init 5 (fun i ->
        Device.submit dev ~now:0.0 Blocktrace.Read ~sector:(i * 100_000) ~bytes:8192)
  in
  let sorted = List.sort compare completions in
  Alcotest.(check (list (float 1e-12))) "fifo queueing" sorted completions;
  check "distinct completions" true (List.length (List.sort_uniq compare completions) = 5)

let test_raid_stripes () =
  let m1 = Device.ssd_x25e ~name:"m1" ~blocks:64 () in
  let m2 = Device.ssd_x25e ~name:"m2" ~blocks:64 () in
  let raid = Device.raid0 ~chunk_sectors:16 [ m1; m2 ] in
  (* a large request spans both members *)
  let _ = Device.submit raid ~now:0.0 Blocktrace.Write ~sector:0 ~bytes:(32 * 512) in
  check "member 1 got I/O" true (Blocktrace.write_count (Device.trace m1) > 0);
  check "member 2 got I/O" true (Blocktrace.write_count (Device.trace m2) > 0);
  checki "raid logical trace" 1 (Blocktrace.write_count (Device.trace raid))

let test_raid_distributes_chunks () =
  let m1 = Device.ssd_x25e ~name:"m1" ~blocks:64 () in
  let m2 = Device.ssd_x25e ~name:"m2" ~blocks:64 () in
  let raid = Device.raid0 ~chunk_sectors:16 [ m1; m2 ] in
  (* chunk i goes to member i mod 2 *)
  for i = 0 to 7 do
    ignore (Device.submit raid ~now:0.0 Blocktrace.Write ~sector:(i * 16) ~bytes:8192)
  done;
  checki "even chunks on m1" 4 (Blocktrace.write_count (Device.trace m1));
  checki "odd chunks on m2" 4 (Blocktrace.write_count (Device.trace m2))

let test_blocktrace_render_and_csv () =
  let tr = Blocktrace.create () in
  Blocktrace.add tr ~time:0.0 ~op:Blocktrace.Write ~sector:0 ~bytes:8192;
  Blocktrace.add tr ~time:1.0 ~op:Blocktrace.Read ~sector:100 ~bytes:8192;
  let s = Blocktrace.render_scatter tr in
  check "scatter has write mark" true (String.contains s 'W');
  check "scatter has read mark" true (String.contains s 'r');
  let csv = Blocktrace.to_csv tr in
  check "csv header" true (String.length csv > 20);
  Blocktrace.reset tr;
  checki "reset clears" 0 (Blocktrace.write_count tr);
  Alcotest.(check string) "empty render" "(empty trace)" (Blocktrace.render_scatter tr)

let test_blocktrace_record_cap () =
  let tr = Blocktrace.create ~max_records:10 () in
  for i = 0 to 99 do
    Blocktrace.add tr ~time:(float_of_int i) ~op:Blocktrace.Write ~sector:i ~bytes:512
  done;
  checki "aggregates exact" 100 (Blocktrace.write_count tr);
  checki "records capped" 10 (List.length (Blocktrace.records tr))

(* Endurance invariant: the FTL never loses data across heavy GC churn. *)
let qcheck_ftl_durability =
  QCheck.Test.make ~name:"ftl: latest write per lpn survives GC churn" ~count:30
    QCheck.(list_of_size Gen.(int_range 50 400) (int_bound 30))
    (fun writes ->
      let f = mk_ftl ~blocks:24 () in
      let logical = Ftl.logical_pages f in
      let shadow = Hashtbl.create 32 in
      List.iter
        (fun lpn ->
          let lpn = lpn mod logical in
          ignore (Ftl.write f lpn);
          Hashtbl.replace shadow lpn ())
        writes;
      Hashtbl.fold (fun lpn () acc -> acc && Ftl.read f lpn <> None) shadow true)

let qcheck_nand_valid_counts =
  QCheck.Test.make ~name:"ftl: nand valid pages equal mapped lpns" ~count:30
    QCheck.(list_of_size Gen.(int_range 10 200) (int_bound 20))
    (fun writes ->
      let f = mk_ftl ~blocks:24 () in
      let logical = Ftl.logical_pages f in
      List.iter (fun lpn -> ignore (Ftl.write f (lpn mod logical))) writes;
      let nand = Ftl.nand f in
      let valid = ref 0 in
      for b = 0 to Nand.blocks nand - 1 do
        valid := !valid + Nand.valid_count nand b
      done;
      let mapped = ref 0 in
      for lpn = 0 to logical - 1 do
        if Ftl.read f lpn <> None then incr mapped
      done;
      !valid = !mapped)

let suite =
  [
    Alcotest.test_case "nand program order" `Quick test_nand_program_order;
    Alcotest.test_case "nand erase rules" `Quick test_nand_erase_rules;
    Alcotest.test_case "nand counters" `Quick test_nand_counters;
    Alcotest.test_case "ftl read own writes" `Quick test_ftl_read_own_writes;
    Alcotest.test_case "ftl gc reclaims" `Quick test_ftl_gc_reclaims;
    Alcotest.test_case "ftl sequential WA = 1" `Quick test_ftl_sequential_low_wa;
    Alcotest.test_case "ftl random WA >= sequential" `Quick test_ftl_random_higher_wa_than_sequential;
    Alcotest.test_case "ftl trim" `Quick test_ftl_trim;
    Alcotest.test_case "ssd read/write asymmetry" `Quick test_ssd_asymmetry;
    Alcotest.test_case "hdd seek vs sequential" `Quick test_hdd_seek_vs_sequential;
    Alcotest.test_case "device queue and trace" `Quick test_device_queue_and_trace;
    Alcotest.test_case "device queue saturation" `Quick test_device_queue_saturation;
    Alcotest.test_case "raid stripes across members" `Quick test_raid_stripes;
    Alcotest.test_case "raid distributes chunks" `Quick test_raid_distributes_chunks;
    Alcotest.test_case "blocktrace render and csv" `Quick test_blocktrace_render_and_csv;
    Alcotest.test_case "blocktrace record cap" `Quick test_blocktrace_record_cap;
    QCheck_alcotest.to_alcotest qcheck_ftl_durability;
    QCheck_alcotest.to_alcotest qcheck_nand_valid_counts;
  ]
