(* Serializable SI (the [10]/[28] extension): write skew and other SI
   anomalies must be rejected, while serializable histories commit. Run
   against all three engines through the SSI functor. *)

module Value = Mvcc.Value
module Db = Mvcc.Db
module Engine = Mvcc.Engine

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let row k v = [| Value.Int k; Value.Int v |]

module Make (E : Engine.S) = struct
  module S = Mvcc.Ssi.Make (E)

  let fresh () =
    let db = Db.create () in
    let ssi = S.create db in
    let table = S.create_table ssi ~name:"t" ~pk_col:0 () in
    (ssi, table)

  let seed ssi table pairs =
    let txn = S.begin_txn ssi in
    List.iter (fun (k, v) -> S.insert ssi txn table (row k v) |> Result.get_ok) pairs;
    S.commit ssi txn |> Result.get_ok

  let set_v v r =
    let r = Array.copy r in
    r.(1) <- Value.Int v;
    r

  (* The canonical write-skew: both txns read x and y, T1 writes x, T2
     writes y. Plain SI commits both; SSI must abort at least one. *)
  let test_write_skew_prevented () =
    let ssi, table = fresh () in
    seed ssi table [ (1, 50); (2, 50) ];
    let t1 = S.begin_txn ssi in
    let t2 = S.begin_txn ssi in
    ignore (S.read ssi t1 table ~pk:1);
    ignore (S.read ssi t1 table ~pk:2);
    ignore (S.read ssi t2 table ~pk:1);
    ignore (S.read ssi t2 table ~pk:2);
    S.update ssi t1 table ~pk:1 (set_v 0) |> Result.get_ok;
    S.update ssi t2 table ~pk:2 (set_v 0) |> Result.get_ok;
    let r1 = S.commit ssi t1 in
    let r2 = S.commit ssi t2 in
    check "at least one transaction aborted" true (r1 = Error Engine.Write_conflict || r2 = Error Engine.Write_conflict);
    check "pivot counted" true (S.aborted_pivots ssi >= 1);
    (* the surviving state is one of the two serializable outcomes *)
    let t = S.begin_txn ssi in
    let v1 = Value.int (Option.get (S.read ssi t table ~pk:1)).(1) in
    let v2 = Value.int (Option.get (S.read ssi t table ~pk:2)).(1) in
    S.commit ssi t |> Result.get_ok;
    check "not both decremented" true (not (v1 = 0 && v2 = 0))

  let test_serial_txns_unaffected () =
    let ssi, table = fresh () in
    seed ssi table [ (1, 10) ];
    for i = 1 to 20 do
      let txn = S.begin_txn ssi in
      S.update ssi txn table ~pk:1 (set_v i) |> Result.get_ok;
      check "serial commits succeed" true (S.commit ssi txn = Ok ())
    done;
    checki "no pivots aborted" 0 (S.aborted_pivots ssi)

  let test_read_only_never_pivot () =
    let ssi, table = fresh () in
    seed ssi table [ (1, 10); (2, 20) ];
    let reader = S.begin_txn ssi in
    ignore (S.read ssi reader table ~pk:1);
    let writer = S.begin_txn ssi in
    S.update ssi writer table ~pk:1 (set_v 99) |> Result.get_ok;
    S.commit ssi writer |> Result.get_ok;
    ignore (S.read ssi reader table ~pk:2);
    (* the reader has only outgoing edges: not a pivot *)
    check "read-only txn commits" true (S.commit ssi reader = Ok ())

  let test_disjoint_writers_commit () =
    let ssi, table = fresh () in
    seed ssi table [ (1, 10); (2, 20) ];
    let t1 = S.begin_txn ssi in
    let t2 = S.begin_txn ssi in
    (* no shared reads: T1 touches only key 1, T2 only key 2 *)
    S.update ssi t1 table ~pk:1 (set_v 11) |> Result.get_ok;
    S.update ssi t2 table ~pk:2 (set_v 22) |> Result.get_ok;
    check "t1 commits" true (S.commit ssi t1 = Ok ());
    check "t2 commits" true (S.commit ssi t2 = Ok ())

  let test_scan_predicate_conflict () =
    (* T1 scans the table (predicate read), T2 inserts a row T1 didn't
       see, T1 writes something based on its scan: dangerous structure *)
    let ssi, table = fresh () in
    seed ssi table [ (1, 10) ];
    let t1 = S.begin_txn ssi in
    let t2 = S.begin_txn ssi in
    let _ = S.scan ssi t1 table (fun _ -> ()) in
    S.insert ssi t2 table (row 5 50) |> Result.get_ok;
    (* T2 also reads something T1 writes *)
    ignore (S.read ssi t2 table ~pk:1);
    S.update ssi t1 table ~pk:1 (set_v 0) |> Result.get_ok;
    let r2 = S.commit ssi t2 in
    let r1 = S.commit ssi t1 in
    check "cycle broken" true (r1 = Error Engine.Write_conflict || r2 = Error Engine.Write_conflict)

  let suite name =
    [
      Alcotest.test_case (name ^ ": write skew prevented") `Quick test_write_skew_prevented;
      Alcotest.test_case (name ^ ": serial txns unaffected") `Quick test_serial_txns_unaffected;
      Alcotest.test_case (name ^ ": read-only never pivot") `Quick test_read_only_never_pivot;
      Alcotest.test_case (name ^ ": disjoint writers commit") `Quick
        test_disjoint_writers_commit;
      Alcotest.test_case (name ^ ": scan predicate conflict") `Quick
        test_scan_predicate_conflict;
    ]
end

module Ssi_si = Make (Mvcc.Si_engine)
module Ssi_sias = Make (Mvcc.Sias_engine)
module Ssi_vec = Make (Mvcc.Sias_vector)

(* Property: under SSI, a committed history over two counters never
   violates the invariant x + y >= 0 that write skew breaks. *)
let qcheck_no_write_skew =
  QCheck.Test.make ~name:"SSI preserves sum invariant under racing decrements" ~count:60
    QCheck.(list_of_size Gen.(int_range 2 30) (pair bool (int_range 1 40)))
    (fun ops ->
      let module S = Mvcc.Ssi.Make (Mvcc.Sias_engine) in
      let db = Db.create () in
      let ssi = S.create db in
      let table = S.create_table ssi ~name:"t" ~pk_col:0 () in
      let txn = S.begin_txn ssi in
      S.insert ssi txn table (row 1 60) |> Result.get_ok;
      S.insert ssi txn table (row 2 60) |> Result.get_ok;
      S.commit ssi txn |> Result.get_ok;
      (* fire decrement transactions pairwise-concurrently; each checks
         x + y - amount >= 0 against ITS snapshot, then decrements one *)
      let rec go = function
        | [] | [ _ ] -> ()
        | (w1, a1) :: (w2, a2) :: rest ->
            let t1 = S.begin_txn ssi in
            let t2 = S.begin_txn ssi in
            let attempt t (which, amount) =
              let v1 = Value.int (Option.get (S.read ssi t table ~pk:1)).(1) in
              let v2 = Value.int (Option.get (S.read ssi t table ~pk:2)).(1) in
              if v1 + v2 - amount >= 0 then
                let pk = if which then 1 else 2 in
                let cur = if which then v1 else v2 in
                ignore
                  (S.update ssi t table ~pk (fun r ->
                       let r = Array.copy r in
                       r.(1) <- Value.Int (cur - amount);
                       r))
            in
            attempt t1 (w1, a1);
            attempt t2 (w2, a2);
            ignore (S.commit ssi t1);
            ignore (S.commit ssi t2);
            go rest
      in
      go ops;
      let t = S.begin_txn ssi in
      let v1 = Value.int (Option.get (S.read ssi t table ~pk:1)).(1) in
      let v2 = Value.int (Option.get (S.read ssi t table ~pk:2)).(1) in
      ignore (S.commit ssi t);
      v1 + v2 >= 0)

let suite =
  Ssi_si.suite "SI+SSI"
  @ Ssi_sias.suite "SIAS+SSI"
  @ Ssi_vec.suite "SIAS-V+SSI"
  @ [ QCheck_alcotest.to_alcotest qcheck_no_write_skew ]
