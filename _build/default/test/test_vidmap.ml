(* Tests for the VID_map: allocation, bucket arithmetic, paged backing. *)

module Vm = Vidmap
module Tid = Sias_storage.Tid
module Bufpool = Sias_storage.Bufpool
module Device = Flashsim.Device
module Simclock = Sias_util.Simclock

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let tid n = Tid.make ~block:n ~slot:(n mod 100)

let test_alloc_sequential () =
  let m = Vm.create () in
  for i = 0 to 99 do
    checki "sequential vids" i (Vm.alloc_vid m)
  done;
  checki "count" 100 (Vm.vid_count m)

let test_set_get_clear () =
  let m = Vm.create () in
  let v = Vm.alloc_vid m in
  Alcotest.(check (option int)) "unset" None (Option.map Tid.to_int (Vm.get m ~vid:v));
  Vm.set m ~vid:v (tid 7);
  check "set/get" true (Vm.get m ~vid:v = Some (tid 7));
  Vm.set m ~vid:v (tid 9);
  check "update" true (Vm.get m ~vid:v = Some (tid 9));
  Vm.clear m ~vid:v;
  check "cleared" true (Vm.get m ~vid:v = None)

let test_unallocated_rejected () =
  let m = Vm.create () in
  Alcotest.check_raises "set unallocated" (Invalid_argument "Vidmap.set: VID not allocated")
    (fun () -> Vm.set m ~vid:0 (tid 1));
  check "get unallocated is None" true (Vm.get m ~vid:5 = None)

let test_bucket_allocation () =
  let m = Vm.create () in
  for _ = 1 to Vm.bucket_capacity do
    ignore (Vm.alloc_vid m)
  done;
  checki "one bucket for first 1024" 1 (Vm.bucket_count m);
  ignore (Vm.alloc_vid m);
  checki "second bucket at 1025th vid" 2 (Vm.bucket_count m)

let test_iter_in_order () =
  let m = Vm.create () in
  for i = 0 to 9 do
    let v = Vm.alloc_vid m in
    if i mod 2 = 0 then Vm.set m ~vid:v (tid i)
  done;
  let seen = ref [] in
  Vm.iter m (fun vid t -> seen := (vid, t) :: !seen);
  let seen = List.rev !seen in
  checki "only set vids" 5 (List.length seen);
  check "in vid order" true (List.map fst seen = [ 0; 2; 4; 6; 8 ])

let test_stats_counting () =
  let m = Vm.create () in
  let v = Vm.alloc_vid m in
  Vm.set m ~vid:v (tid 1);
  ignore (Vm.get m ~vid:v);
  ignore (Vm.get m ~vid:v);
  let s = Vm.stats m in
  checki "updates" 1 s.Vm.updates;
  checki "lookups" 2 s.Vm.lookups;
  checki "latches equal updates" 1 s.Vm.latches

let mk_backed () =
  let clock = Simclock.create () in
  let device = Device.ssd_x25e ~blocks:512 () in
  let pool = Bufpool.create ~device ~clock ~capacity_pages:4 () in
  (Vm.create ~backing:(pool, 9) (), pool)

let test_paged_backing_roundtrip () =
  let m, _pool = mk_backed () in
  (* more than 4 buckets so the tiny pool must evict bucket pages *)
  let n = (5 * Vm.bucket_capacity) + 3 in
  for i = 0 to n - 1 do
    let v = Vm.alloc_vid m in
    Vm.set m ~vid:v (tid (i * 3))
  done;
  checki "buckets" 6 (Vm.bucket_count m);
  (* spot-check across all buckets after eviction churn *)
  let ok = ref true in
  for i = 0 to n - 1 do
    if Vm.get m ~vid:i <> Some (tid (i * 3)) then ok := false
  done;
  check "all mappings survive paging" true !ok

let test_paged_backing_charges_io () =
  let m, pool = mk_backed () in
  let n = 5 * Vm.bucket_capacity in
  for i = 0 to n - 1 do
    let v = Vm.alloc_vid m in
    Vm.set m ~vid:v (tid i)
  done;
  let cold = (Bufpool.stats pool).Bufpool.misses in
  (* revisiting early buckets after they were evicted forces real reads *)
  for i = 0 to n - 1 do
    ignore (Vm.get m ~vid:i)
  done;
  let st = Bufpool.stats pool in
  check "bucket paging caused buffer misses" true (st.Bufpool.misses > cold);
  check "evictions happened" true (st.Bufpool.evictions > 0)

(* Property: the vidmap agrees with a model map under arbitrary set/clear
   sequences, including across bucket boundaries. *)
let qcheck_vidmap_model =
  QCheck.Test.make ~name:"vidmap equals model map" ~count:60
    QCheck.(list_of_size Gen.(int_range 1 300) (pair (int_bound 2200) (int_bound 2)))
    (fun ops ->
      let m = Vm.create () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (v, op) ->
          match op with
          | 0 -> ignore (Vm.alloc_vid m)
          | 1 ->
              if v < Vm.vid_count m then begin
                Vm.set m ~vid:v (tid (v + 1));
                Hashtbl.replace model v (tid (v + 1))
              end
          | _ ->
              if v < Vm.vid_count m then begin
                Vm.clear m ~vid:v;
                Hashtbl.remove model v
              end)
        ops;
      let ok = ref true in
      for v = 0 to Vm.vid_count m - 1 do
        let expect = Hashtbl.find_opt model v in
        if Vm.get m ~vid:v <> expect then ok := false
      done;
      !ok)

let suite =
  [
    Alcotest.test_case "sequential allocation" `Quick test_alloc_sequential;
    Alcotest.test_case "set/get/clear" `Quick test_set_get_clear;
    Alcotest.test_case "unallocated rejected" `Quick test_unallocated_rejected;
    Alcotest.test_case "bucket allocation at 1024" `Quick test_bucket_allocation;
    Alcotest.test_case "iter in vid order" `Quick test_iter_in_order;
    Alcotest.test_case "stats counting" `Quick test_stats_counting;
    Alcotest.test_case "paged backing roundtrip" `Quick test_paged_backing_roundtrip;
    Alcotest.test_case "paged backing charges I/O" `Quick test_paged_backing_charges_io;
    QCheck_alcotest.to_alcotest qcheck_vidmap_model;
  ]
