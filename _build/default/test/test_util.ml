(* Tests for Sias_util: clock, RNG, statistics, table formatting. *)

open Sias_util

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let checkf = Alcotest.(check (float 1e-9))

let test_clock_basics () =
  let c = Simclock.create () in
  checkf "starts at zero" 0.0 (Simclock.now c);
  Simclock.advance c 1.5;
  checkf "advance" 1.5 (Simclock.now c);
  Simclock.advance_to c 1.0;
  checkf "advance_to past is no-op" 1.5 (Simclock.now c);
  Simclock.advance_to c 3.0;
  checkf "advance_to future" 3.0 (Simclock.now c);
  Simclock.reset c;
  checkf "reset" 0.0 (Simclock.now c)

let test_clock_negative () =
  let c = Simclock.create () in
  Alcotest.check_raises "negative advance" (Invalid_argument "Simclock.advance: negative delta")
    (fun () -> Simclock.advance c (-1.0))

let test_rng_determinism () =
  let a = Rng.create 7 and b = Rng.create 7 in
  for _ = 1 to 100 do
    checki "same stream" (Rng.int a 1000) (Rng.int b 1000)
  done;
  let c = Rng.create 8 in
  let diff = ref false in
  for _ = 1 to 20 do
    if Rng.int a 1000 <> Rng.int c 1000 then diff := true
  done;
  check "different seeds differ" true !diff

let test_rng_bounds () =
  let r = Rng.create 1 in
  for _ = 1 to 10_000 do
    let v = Rng.int r 17 in
    check "int in bounds" true (v >= 0 && v < 17);
    let w = Rng.int_incl r 5 9 in
    check "int_incl in bounds" true (w >= 5 && w <= 9);
    let f = Rng.float r 2.5 in
    check "float in bounds" true (f >= 0.0 && f < 2.5)
  done

let test_rng_uniformity () =
  let r = Rng.create 99 in
  let buckets = Array.make 10 0 in
  let n = 100_000 in
  for _ = 1 to n do
    let v = Rng.int r 10 in
    buckets.(v) <- buckets.(v) + 1
  done;
  Array.iteri
    (fun i c ->
      let expected = n / 10 in
      check (Printf.sprintf "bucket %d near uniform" i) true
        (abs (c - expected) < expected / 5))
    buckets

let test_rng_weighted () =
  let r = Rng.create 3 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 10_000 do
    let k = Rng.pick_weighted r [ (90, "a"); (10, "b") ] in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let a = Option.value ~default:0 (Hashtbl.find_opt counts "a") in
  check "weighted ratio" true (a > 8_500 && a < 9_500)

let test_rng_shuffle_permutes () =
  let r = Rng.create 5 in
  let a = Array.init 50 Fun.id in
  Rng.shuffle r a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check (array int)) "same multiset" (Array.init 50 Fun.id) sorted

let test_rng_exponential_mean () =
  let r = Rng.create 11 in
  let acc = Stats.Acc.create () in
  for _ = 1 to 50_000 do
    Stats.Acc.add acc (Rng.exponential r 2.0)
  done;
  check "exp mean near 2" true (abs_float (Stats.Acc.mean acc -. 2.0) < 0.1)

let test_acc () =
  let a = Stats.Acc.create () in
  checkf "empty mean" 0.0 (Stats.Acc.mean a);
  List.iter (Stats.Acc.add a) [ 1.0; 2.0; 3.0; 4.0 ];
  checkf "mean" 2.5 (Stats.Acc.mean a);
  checkf "min" 1.0 (Stats.Acc.min a);
  checkf "max" 4.0 (Stats.Acc.max a);
  checkf "total" 10.0 (Stats.Acc.total a);
  checki "count" 4 (Stats.Acc.count a);
  Alcotest.(check (float 1e-6)) "variance" (5.0 /. 3.0) (Stats.Acc.variance a)

let test_sample_percentiles () =
  let s = Stats.Sample.create () in
  for i = 100 downto 1 do
    Stats.Sample.add s (float_of_int i)
  done;
  checkf "p50" 50.0 (Stats.Sample.percentile s 50.0);
  checkf "p90" 90.0 (Stats.Sample.percentile s 90.0);
  checkf "p100" 100.0 (Stats.Sample.percentile s 100.0);
  checkf "p1" 1.0 (Stats.Sample.percentile s 1.0);
  checkf "mean" 50.5 (Stats.Sample.mean s);
  Alcotest.check_raises "empty percentile"
    (Invalid_argument "Stats.Sample.percentile: empty sample") (fun () ->
      ignore (Stats.Sample.percentile (Stats.Sample.create ()) 50.0))

let test_sample_growth () =
  let s = Stats.Sample.create () in
  for i = 1 to 10_000 do
    Stats.Sample.add s (float_of_int (i mod 97))
  done;
  checki "count" 10_000 (Stats.Sample.count s);
  checkf "max" 96.0 (Stats.Sample.max s)

let test_histogram () =
  let h = Stats.Histogram.create ~bucket_width:1.0 ~buckets:5 in
  List.iter (Stats.Histogram.add h) [ 0.5; 1.5; 1.9; 4.2; 99.0 ];
  Alcotest.(check (array int)) "counts" [| 1; 2; 0; 0; 2 |] (Stats.Histogram.counts h);
  checki "total" 5 (Stats.Histogram.total h)

let test_tablefmt () =
  let t = Tablefmt.create [ "a"; "bb" ] in
  Tablefmt.add_row t [ "1"; "2" ];
  Tablefmt.add_row t [ "333" ];
  let r = Tablefmt.render t in
  check "has header" true (String.length r > 0);
  check "pads" true
    (String.split_on_char '\n' r |> List.for_all (fun l -> String.length l > 0));
  Alcotest.check_raises "too many cells" (Invalid_argument "Tablefmt.add_row: too many cells")
    (fun () -> Tablefmt.add_row t [ "x"; "y"; "z" ]);
  Alcotest.(check string) "pct" "97%" (Tablefmt.fmt_pct 0.97);
  Alcotest.(check string) "float" "1.50" (Tablefmt.fmt_float 1.5)

let qcheck_percentile_sorted =
  QCheck.Test.make ~name:"sample percentile is monotone in p" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1000.) 1000.))
    (fun xs ->
      QCheck.assume (xs <> []);
      let s = Stats.Sample.create () in
      List.iter (Stats.Sample.add s) xs;
      let p25 = Stats.Sample.percentile s 25.0 in
      let p50 = Stats.Sample.percentile s 50.0 in
      let p99 = Stats.Sample.percentile s 99.0 in
      p25 <= p50 && p50 <= p99)

let qcheck_acc_mean_bounds =
  QCheck.Test.make ~name:"acc mean within [min,max]" ~count:200
    QCheck.(list_of_size Gen.(int_range 1 50) (float_range (-1e6) 1e6))
    (fun xs ->
      QCheck.assume (xs <> []);
      let a = Stats.Acc.create () in
      List.iter (Stats.Acc.add a) xs;
      Stats.Acc.mean a >= Stats.Acc.min a -. 1e-6
      && Stats.Acc.mean a <= Stats.Acc.max a +. 1e-6)

let suite =
  [
    Alcotest.test_case "clock basics" `Quick test_clock_basics;
    Alcotest.test_case "clock negative advance" `Quick test_clock_negative;
    Alcotest.test_case "rng determinism" `Quick test_rng_determinism;
    Alcotest.test_case "rng bounds" `Quick test_rng_bounds;
    Alcotest.test_case "rng uniformity" `Quick test_rng_uniformity;
    Alcotest.test_case "rng weighted pick" `Quick test_rng_weighted;
    Alcotest.test_case "rng shuffle permutes" `Quick test_rng_shuffle_permutes;
    Alcotest.test_case "rng exponential mean" `Quick test_rng_exponential_mean;
    Alcotest.test_case "acc statistics" `Quick test_acc;
    Alcotest.test_case "sample percentiles" `Quick test_sample_percentiles;
    Alcotest.test_case "sample growth" `Quick test_sample_growth;
    Alcotest.test_case "histogram" `Quick test_histogram;
    Alcotest.test_case "table formatting" `Quick test_tablefmt;
    QCheck_alcotest.to_alcotest qcheck_percentile_sorted;
    QCheck_alcotest.to_alcotest qcheck_acc_mean_bounds;
  ]
