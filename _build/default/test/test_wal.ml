(* Tests for the write-ahead log. *)

module Wal = Sias_wal.Wal
module Device = Flashsim.Device
module Blocktrace = Flashsim.Blocktrace
module Simclock = Sias_util.Simclock

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_lsn_monotone () =
  let clock = Simclock.create () in
  let w = Wal.create ~clock () in
  let l1 = Wal.append w ~xid:1 ~rel:0 ~kind:Wal.Insert ~payload:(Bytes.of_string "a") in
  let l2 = Wal.append w ~xid:1 ~rel:0 ~kind:Wal.Update ~payload:(Bytes.of_string "b") in
  check "monotone" true (l2 > l1);
  checki "current" l2 (Wal.current_lsn w)

let test_flush_semantics () =
  let clock = Simclock.create () in
  let w = Wal.create ~clock () in
  let _ = Wal.append w ~xid:1 ~rel:0 ~kind:Wal.Insert ~payload:(Bytes.of_string "abc") in
  checki "nothing flushed yet" 0 (Wal.flushed_lsn w);
  Wal.flush w ~sync:true;
  checki "flushed to current" (Wal.current_lsn w) (Wal.flushed_lsn w);
  check "bytes written" true (Wal.bytes_written w > 0);
  checki "one flush" 1 (Wal.flush_count w);
  (* empty flush is a no-op *)
  Wal.flush w ~sync:true;
  checki "still one flush" 1 (Wal.flush_count w)

let test_device_sequential_appends () =
  let clock = Simclock.create () in
  let device = Device.ssd_x25e ~blocks:256 () in
  let w = Wal.create ~device ~clock () in
  for i = 1 to 5 do
    let _ = Wal.append w ~xid:i ~rel:0 ~kind:Wal.Commit ~payload:Bytes.empty in
    Wal.flush w ~sync:true
  done;
  let recs = Blocktrace.records (Device.trace device) in
  checki "five writes" 5 (List.length recs);
  (* strictly increasing sector addresses: a pure append stream *)
  let sectors = List.map (fun r -> r.Blocktrace.sector) recs in
  check "monotone sectors" true (List.sort compare sectors = sectors);
  check "sync flush advances clock" true (Simclock.now clock > 0.0)

let test_records_retained_in_order () =
  let clock = Simclock.create () in
  let w = Wal.create ~clock () in
  let _ = Wal.append w ~xid:1 ~rel:2 ~kind:Wal.Insert ~payload:(Bytes.of_string "x") in
  let _ = Wal.append w ~xid:1 ~rel:2 ~kind:Wal.Commit ~payload:Bytes.empty in
  let _ = Wal.append w ~xid:2 ~rel:3 ~kind:Wal.Abort ~payload:Bytes.empty in
  let recs = Wal.records_from w ~lsn:0 in
  checki "three records" 3 (List.length recs);
  let kinds = List.map (fun r -> r.Wal.kind) recs in
  check "in order" true (kinds = [ Wal.Insert; Wal.Commit; Wal.Abort ]);
  let from2 = Wal.records_from w ~lsn:2 in
  checki "suffix" 2 (List.length from2)

let test_truncate () =
  let clock = Simclock.create () in
  let w = Wal.create ~clock () in
  for i = 1 to 10 do
    ignore (Wal.append w ~xid:i ~rel:0 ~kind:Wal.Insert ~payload:Bytes.empty)
  done;
  Wal.truncate_before w ~lsn:6;
  let recs = Wal.records_from w ~lsn:0 in
  checki "only tail kept" 5 (List.length recs);
  check "all lsn >= 6" true (List.for_all (fun r -> r.Wal.lsn >= 6) recs)

let suite =
  [
    Alcotest.test_case "lsn monotone" `Quick test_lsn_monotone;
    Alcotest.test_case "flush semantics" `Quick test_flush_semantics;
    Alcotest.test_case "sequential device appends" `Quick test_device_sequential_appends;
    Alcotest.test_case "records retained in order" `Quick test_records_retained_in_order;
    Alcotest.test_case "truncate" `Quick test_truncate;
  ]
