(* Tests for the storage substrate: slotted pages, buffer pool, heap
   files and the background writer. *)

open Sias_storage
module Device = Flashsim.Device
module Blocktrace = Flashsim.Blocktrace
module Simclock = Sias_util.Simclock

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let bytes_of s = Bytes.of_string s

(* ---------------- Tid ---------------- *)

let test_tid_roundtrip () =
  let t = Tid.make ~block:123456 ~slot:789 in
  let t' = Tid.of_int (Tid.to_int t) in
  check "roundtrip" true (Tid.equal t t');
  checki "block" 123456 (Tid.block t');
  checki "slot" 789 (Tid.slot t');
  check "invalid is invalid" true (Tid.is_invalid Tid.invalid);
  check "normal not invalid" false (Tid.is_invalid t);
  check "ordering" true (Tid.compare (Tid.make ~block:1 ~slot:9) (Tid.make ~block:2 ~slot:0) < 0)

let test_tid_bounds () =
  Alcotest.check_raises "negative block" (Invalid_argument "Tid.make") (fun () ->
      ignore (Tid.make ~block:(-1) ~slot:0));
  Alcotest.check_raises "slot too big" (Invalid_argument "Tid.make") (fun () ->
      ignore (Tid.make ~block:0 ~slot:65536))

(* ---------------- Page ---------------- *)

let test_page_insert_read () =
  let p = Page.create ~size:512 in
  let s1 = Page.insert p (bytes_of "hello") in
  let s2 = Page.insert p (bytes_of "world!") in
  Alcotest.(check (option int)) "slot 0" (Some 0) s1;
  Alcotest.(check (option int)) "slot 1" (Some 1) s2;
  Alcotest.(check (option bytes)) "read 0" (Some (bytes_of "hello")) (Page.read p 0);
  Alcotest.(check (option bytes)) "read 1" (Some (bytes_of "world!")) (Page.read p 1);
  checki "live" 2 (Page.live_count p)

let test_page_delete_and_reuse () =
  let p = Page.create ~size:512 in
  let _ = Page.insert p (bytes_of "aaaa") in
  let _ = Page.insert p (bytes_of "bbbb") in
  Page.delete p 0;
  Alcotest.(check (option bytes)) "deleted reads none" None (Page.read p 0);
  checki "live after delete" 1 (Page.live_count p);
  (* slot 0 is reused *)
  Alcotest.(check (option int)) "slot reuse" (Some 0) (Page.insert p (bytes_of "cccc"));
  Alcotest.(check (option bytes)) "reused readable" (Some (bytes_of "cccc")) (Page.read p 0)

let test_page_update_in_place () =
  let p = Page.create ~size:512 in
  let _ = Page.insert p (bytes_of "0123456789") in
  check "same size fits" true (Page.update p 0 (bytes_of "abcdefghij"));
  Alcotest.(check (option bytes)) "updated" (Some (bytes_of "abcdefghij")) (Page.read p 0);
  check "shorter fits" true (Page.update p 0 (bytes_of "xyz"));
  Alcotest.(check (option bytes)) "shortened" (Some (bytes_of "xyz")) (Page.read p 0);
  check "longer rejected" false (Page.update p 0 (bytes_of "0123456789abcdef"))

let test_page_fills_up () =
  let p = Page.create ~size:256 in
  let item = Bytes.make 40 'x' in
  let n = ref 0 in
  let continue = ref true in
  while !continue do
    match Page.insert p item with
    | Some _ -> incr n
    | None -> continue := false
  done;
  check "several fit" true (!n >= 4);
  check "free space small now" true (Page.free_space p < 44);
  checki "live matches" !n (Page.live_count p)

let test_page_compaction () =
  let p = Page.create ~size:256 in
  let item = Bytes.make 40 'a' in
  let slots = ref [] in
  let continue = ref true in
  while !continue do
    match Page.insert p item with
    | Some s -> slots := s :: !slots
    | None -> continue := false
  done;
  (* free every other item, creating holes *)
  List.iteri (fun i s -> if i mod 2 = 0 then Page.delete p s) !slots;
  (* a larger item only fits after compaction *)
  let big = Bytes.make 60 'b' in
  check "fits via compaction" true (Page.insert p big <> None);
  (* survivors unharmed *)
  List.iteri
    (fun i s ->
      if i mod 2 = 1 then
        Alcotest.(check (option bytes)) "survivor" (Some item) (Page.read p s))
    !slots

let test_page_copy_independent () =
  let p = Page.create ~size:256 in
  let _ = Page.insert p (bytes_of "orig") in
  let q = Page.copy p in
  ignore (Page.update q 0 (bytes_of "diff"));
  Alcotest.(check (option bytes)) "original intact" (Some (bytes_of "orig")) (Page.read p 0)

let test_page_lsn () =
  let p = Page.create ~size:256 in
  checki "initial lsn" 0 (Page.lsn p);
  Page.set_lsn p 42;
  checki "set lsn" 42 (Page.lsn p)

(* Model-based property: a page behaves like a map slot -> bytes. *)
let qcheck_page_model =
  let gen_op =
    QCheck.Gen.(
      frequency
        [
          (6, map (fun n -> `Insert (Bytes.make (1 + (n mod 50)) 'i')) small_nat);
          (2, map (fun s -> `Delete s) (int_bound 30));
          (2, map2 (fun s n -> `Update (s, Bytes.make (1 + (n mod 50)) 'u')) (int_bound 30) small_nat);
        ])
  in
  QCheck.Test.make ~name:"page behaves like a slot map" ~count:100
    (QCheck.make QCheck.Gen.(list_size (int_range 1 120) gen_op))
    (fun ops ->
      let p = Page.create ~size:1024 in
      let model : (int, bytes) Hashtbl.t = Hashtbl.create 16 in
      List.iter
        (fun op ->
          match op with
          | `Insert item -> (
              match Page.insert p item with
              | Some s -> Hashtbl.replace model s item
              | None -> ())
          | `Delete s ->
              if s < Page.slot_count p then begin
                Page.delete p s;
                Hashtbl.remove model s
              end
          | `Update (s, item) ->
              if Hashtbl.mem model s then
                if Page.update p s item then Hashtbl.replace model s item)
        ops;
      Hashtbl.fold
        (fun s item acc -> acc && Page.read p s = Some item)
        model
        (Page.live_count p = Hashtbl.length model))

(* ---------------- Buffer pool ---------------- *)

let mk_pool ?(capacity = 8) () =
  let clock = Simclock.create () in
  let device = Device.ssd_x25e ~blocks:256 () in
  (Bufpool.create ~device ~clock ~capacity_pages:capacity ~page_size:1024 (), clock, device)

let test_pool_hit_miss () =
  let pool, _, _ = mk_pool () in
  Bufpool.with_page pool ~rel:0 ~block:0 (fun _ -> ());
  Bufpool.with_page pool ~rel:0 ~block:0 (fun _ -> ());
  let s = Bufpool.stats pool in
  checki "one miss" 1 s.Bufpool.misses;
  checki "one hit" 1 s.Bufpool.hits

let test_pool_persistence_across_eviction () =
  let pool, _, _ = mk_pool ~capacity:4 () in
  Bufpool.with_page pool ~rel:0 ~block:0 (fun p ->
      ignore (Page.insert p (bytes_of "persisted")));
  Bufpool.mark_dirty pool ~rel:0 ~block:0;
  (* touch enough other pages to evict block 0 *)
  for b = 1 to 10 do
    Bufpool.with_page pool ~rel:0 ~block:b (fun _ -> ())
  done;
  check "evicted" false (Bufpool.resident pool ~rel:0 ~block:0);
  Bufpool.with_page pool ~rel:0 ~block:0 (fun p ->
      Alcotest.(check (option bytes)) "data survived eviction" (Some (bytes_of "persisted"))
        (Page.read p 0))

let test_pool_eviction_writes_dirty () =
  let pool, _, device = mk_pool ~capacity:4 () in
  Bufpool.with_page pool ~rel:0 ~block:0 (fun p -> ignore (Page.insert p (bytes_of "d")));
  Bufpool.mark_dirty pool ~rel:0 ~block:0;
  for b = 1 to 10 do
    Bufpool.with_page pool ~rel:0 ~block:b (fun _ -> ())
  done;
  check "device got the write-back" true (Blocktrace.write_count (Device.trace device) >= 1)

let test_pool_io_advances_clock () =
  let pool, clock, _ = mk_pool ~capacity:4 () in
  Bufpool.with_page pool ~rel:0 ~block:0 (fun p -> ignore (Page.insert p (bytes_of "x")));
  Bufpool.mark_dirty pool ~rel:0 ~block:0;
  Bufpool.flush_block pool ~rel:0 ~block:0 ~sync:true;
  (* a synchronous flush stalls the caller *)
  check "clock advanced" true (Simclock.now clock > 0.0);
  let t = Simclock.now clock in
  Bufpool.flush_all pool ~sync:false;
  Alcotest.(check (float 1e-12)) "async flush does not stall" t (Simclock.now clock)

let test_pool_dirty_tracking () =
  let pool, _, _ = mk_pool () in
  Bufpool.with_page pool ~rel:1 ~block:0 (fun p -> ignore (Page.insert p (bytes_of "a")));
  Bufpool.mark_dirty pool ~rel:1 ~block:0;
  checki "one dirty" 1 (Bufpool.dirty_count pool);
  check "is dirty" true (Bufpool.is_dirty pool ~rel:1 ~block:0);
  Bufpool.flush_all pool ~sync:false;
  checki "clean after checkpoint" 0 (Bufpool.dirty_count pool);
  check "on disk" true (Bufpool.on_disk pool ~rel:1 ~block:0)

let test_pool_drop_cache_loses_unflushed () =
  let pool, _, _ = mk_pool () in
  Bufpool.with_page pool ~rel:0 ~block:0 (fun p -> ignore (Page.insert p (bytes_of "lost")));
  Bufpool.mark_dirty pool ~rel:0 ~block:0;
  Bufpool.with_page pool ~rel:0 ~block:1 (fun p -> ignore (Page.insert p (bytes_of "safe")));
  Bufpool.mark_dirty pool ~rel:0 ~block:1;
  Bufpool.flush_block pool ~rel:0 ~block:1 ~sync:false;
  Bufpool.drop_cache pool;
  Bufpool.with_page pool ~rel:0 ~block:0 (fun p ->
      Alcotest.(check (option bytes)) "unflushed lost" None (Page.read p 0));
  Bufpool.with_page pool ~rel:0 ~block:1 (fun p ->
      Alcotest.(check (option bytes)) "flushed survived" (Some (bytes_of "safe"))
        (Page.read p 0))

let test_pool_rel_regions_disjoint () =
  let pool, _, _ = mk_pool () in
  let s0 = Bufpool.sector_of pool ~rel:0 ~block:65535 in
  let s1 = Bufpool.sector_of pool ~rel:1 ~block:0 in
  check "regions disjoint" true (s1 > s0)

(* ---------------- Heapfile ---------------- *)

let mk_heap placement =
  let pool, clock, device = mk_pool ~capacity:64 () in
  (Heapfile.create pool ~rel:0 ~placement, pool, clock, device)

let test_heap_insert_read_roundtrip () =
  let heap, _, _, _ = mk_heap Heapfile.Append_only in
  let tids = List.init 50 (fun i -> Heapfile.insert heap (bytes_of (Printf.sprintf "row-%03d" i))) in
  List.iteri
    (fun i tid ->
      Alcotest.(check (option bytes))
        "roundtrip"
        (Some (bytes_of (Printf.sprintf "row-%03d" i)))
        (Heapfile.read heap tid))
    tids

let test_heap_append_only_monotone_blocks () =
  let heap, _, _, _ = mk_heap Heapfile.Append_only in
  let item = Bytes.make 100 'z' in
  let last_block = ref 0 in
  for _ = 1 to 100 do
    let tid = Heapfile.insert heap item in
    check "blocks never decrease" true (Tid.block tid >= !last_block);
    last_block := Tid.block tid
  done

let test_heap_free_space_first_refills () =
  let heap, _, _, _ = mk_heap Heapfile.Free_space_first in
  let item = Bytes.make 100 'z' in
  let tids = ref [] in
  for _ = 1 to 50 do
    tids := Heapfile.insert heap item :: !tids
  done;
  let used_blocks = Heapfile.nblocks heap in
  (* free a batch of early rows, then insert again: old pages get reused *)
  List.iteri (fun i tid -> if i mod 2 = 0 then Heapfile.delete heap tid) (List.rev !tids);
  for _ = 1 to 20 do
    ignore (Heapfile.insert heap item)
  done;
  checki "no growth thanks to holes" used_blocks (Heapfile.nblocks heap)

let test_heap_append_only_never_refills () =
  let heap, _, _, _ = mk_heap Heapfile.Append_only in
  let item = Bytes.make 100 'z' in
  let tids = ref [] in
  for _ = 1 to 50 do
    tids := Heapfile.insert heap item :: !tids
  done;
  let used_blocks = Heapfile.nblocks heap in
  List.iter (fun tid -> Heapfile.delete heap tid) !tids;
  for _ = 1 to 50 do
    ignore (Heapfile.insert heap item)
  done;
  check "append-only file grows" true (Heapfile.nblocks heap > used_blocks)

let test_heap_update_in_place () =
  let heap, _, _, _ = mk_heap Heapfile.Free_space_first in
  let tid = Heapfile.insert heap (bytes_of "0123456789") in
  check "fits" true (Heapfile.update_in_place heap tid (bytes_of "abcdefghij"));
  Alcotest.(check (option bytes)) "content" (Some (bytes_of "abcdefghij")) (Heapfile.read heap tid)

let test_heap_iter_sees_live_only () =
  let heap, _, _, _ = mk_heap Heapfile.Append_only in
  let t1 = Heapfile.insert heap (bytes_of "keep") in
  let t2 = Heapfile.insert heap (bytes_of "kill") in
  Heapfile.delete heap t2;
  let seen = ref [] in
  Heapfile.iter heap (fun tid item -> seen := (tid, Bytes.to_string item) :: !seen);
  Alcotest.(check int) "one live row" 1 (List.length !seen);
  check "it is the right one" true (Tid.equal (fst (List.hd !seen)) t1)

let test_heap_restore () =
  let pool, _, _ =
    let clock = Simclock.create () in
    let device = Device.ssd_x25e ~blocks:256 () in
    (Bufpool.create ~device ~clock ~capacity_pages:64 ~page_size:1024 (), clock, device)
  in
  let heap = Heapfile.create pool ~rel:3 ~placement:Heapfile.Append_only in
  let tids = List.init 30 (fun i -> Heapfile.insert heap (bytes_of (string_of_int i))) in
  let restored =
    Heapfile.restore pool ~rel:3 ~placement:Heapfile.Append_only
      ~nblocks:(Heapfile.nblocks heap)
  in
  List.iteri
    (fun i tid ->
      Alcotest.(check (option bytes)) "restored row" (Some (bytes_of (string_of_int i)))
        (Heapfile.read restored tid))
    tids

(* ---------------- Bgwriter ---------------- *)

let test_bgwriter_t1_flushes_periodically () =
  let clock = Simclock.create () in
  let device = Device.ssd_x25e ~blocks:256 () in
  let pool = Bufpool.create ~device ~clock ~capacity_pages:16 ~page_size:1024 () in
  let bg =
    Bgwriter.create pool ~clock
      ~policy:(Bgwriter.T1_bgwriter { interval = 1.0; max_pages = 100 })
      ~checkpoint_interval:1000.0 ()
  in
  Bufpool.with_page pool ~rel:0 ~block:0 (fun p -> ignore (Page.insert p (bytes_of "x")));
  Bufpool.mark_dirty pool ~rel:0 ~block:0;
  Bgwriter.tick bg;
  checki "nothing due yet" 1 (Bufpool.dirty_count pool);
  Simclock.advance clock 1.5;
  Bgwriter.tick bg;
  checki "flushed after interval" 0 (Bufpool.dirty_count pool);
  check "bgwriter ran" true (Bgwriter.bgwriter_rounds bg >= 1)

let test_bgwriter_t2_waits_for_checkpoint () =
  let clock = Simclock.create () in
  let device = Device.ssd_x25e ~blocks:256 () in
  let pool = Bufpool.create ~device ~clock ~capacity_pages:16 ~page_size:1024 () in
  let bg =
    Bgwriter.create pool ~clock ~policy:Bgwriter.T2_checkpoint_only
      ~checkpoint_interval:10.0 ()
  in
  Bufpool.with_page pool ~rel:0 ~block:0 (fun p -> ignore (Page.insert p (bytes_of "x")));
  Bufpool.mark_dirty pool ~rel:0 ~block:0;
  Simclock.advance clock 5.0;
  Bgwriter.tick bg;
  checki "dirty until checkpoint" 1 (Bufpool.dirty_count pool);
  Simclock.advance clock 6.0;
  Bgwriter.tick bg;
  checki "checkpoint flushed" 0 (Bufpool.dirty_count pool);
  checki "one checkpoint" 1 (Bgwriter.checkpoints bg)

let suite =
  [
    Alcotest.test_case "tid roundtrip" `Quick test_tid_roundtrip;
    Alcotest.test_case "tid bounds" `Quick test_tid_bounds;
    Alcotest.test_case "page insert/read" `Quick test_page_insert_read;
    Alcotest.test_case "page delete and slot reuse" `Quick test_page_delete_and_reuse;
    Alcotest.test_case "page update in place" `Quick test_page_update_in_place;
    Alcotest.test_case "page fills up" `Quick test_page_fills_up;
    Alcotest.test_case "page compaction" `Quick test_page_compaction;
    Alcotest.test_case "page copy independence" `Quick test_page_copy_independent;
    Alcotest.test_case "page lsn" `Quick test_page_lsn;
    QCheck_alcotest.to_alcotest qcheck_page_model;
    Alcotest.test_case "pool hit/miss" `Quick test_pool_hit_miss;
    Alcotest.test_case "pool persistence across eviction" `Quick test_pool_persistence_across_eviction;
    Alcotest.test_case "pool eviction writes dirty" `Quick test_pool_eviction_writes_dirty;
    Alcotest.test_case "pool sync I/O advances clock" `Quick test_pool_io_advances_clock;
    Alcotest.test_case "pool dirty tracking" `Quick test_pool_dirty_tracking;
    Alcotest.test_case "pool crash drops unflushed" `Quick test_pool_drop_cache_loses_unflushed;
    Alcotest.test_case "pool relation regions disjoint" `Quick test_pool_rel_regions_disjoint;
    Alcotest.test_case "heap insert/read roundtrip" `Quick test_heap_insert_read_roundtrip;
    Alcotest.test_case "heap append-only monotone" `Quick test_heap_append_only_monotone_blocks;
    Alcotest.test_case "heap FSM refills holes" `Quick test_heap_free_space_first_refills;
    Alcotest.test_case "heap append-only never refills" `Quick test_heap_append_only_never_refills;
    Alcotest.test_case "heap update in place" `Quick test_heap_update_in_place;
    Alcotest.test_case "heap iter live only" `Quick test_heap_iter_sees_live_only;
    Alcotest.test_case "heap restore" `Quick test_heap_restore;
    Alcotest.test_case "bgwriter t1 flushes periodically" `Quick test_bgwriter_t1_flushes_periodically;
    Alcotest.test_case "bgwriter t2 waits for checkpoint" `Quick test_bgwriter_t2_waits_for_checkpoint;
  ]
