(* Tests for the FTL-less Flash device (paper Discussion / NoFTL). *)

module Noftl = Flashsim.Noftl
module B = Flashsim.Blocktrace

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let mk () = Noftl.create (Noftl.default_config ~blocks:16 ())

let test_sequential_appends_cheap () =
  let d = mk () in
  (* append a full erase block's worth of pages: plain programs only *)
  let t = ref 0.0 in
  for p = 0 to 63 do
    t := !t +. Noftl.service_time d B.Write ~sector:(p * 8) ~bytes:4096
  done;
  checki "64 programs" 64 (Noftl.programs d);
  checki "no erase" 0 (Noftl.erases d);
  checki "no rmw" 0 (Noftl.rmws d);
  (* perfectly predictable: every program costs the same *)
  Alcotest.(check (float 1e-9)) "predictable latency" (64.0 *. 110.0 *. 1e-6) !t

let test_overwrite_costs_block_rmw () =
  let d = mk () in
  for p = 0 to 63 do
    ignore (Noftl.service_time d B.Write ~sector:(p * 8) ~bytes:4096)
  done;
  let t_fresh = Noftl.service_time d B.Write ~sector:(64 * 8) ~bytes:4096 in
  (* overwrite page 0: whole-block read-modify-write *)
  let t_rmw = Noftl.service_time d B.Write ~sector:0 ~bytes:4096 in
  checki "one rmw" 1 (Noftl.rmws d);
  check "rmw is orders of magnitude dearer" true (t_rmw > 20.0 *. t_fresh);
  checki "erase happened" 1 (Noftl.erases d)

let test_erase_then_append_ok () =
  let d = mk () in
  for p = 0 to 63 do
    ignore (Noftl.service_time d B.Write ~sector:(p * 8) ~bytes:4096)
  done;
  (* the DBMS reclaims the block explicitly, then reuses it *)
  let t_erase = Noftl.erase_region d ~sector:0 in
  check "erase has fixed cost" true (t_erase > 0.0);
  let t = Noftl.service_time d B.Write ~sector:0 ~bytes:4096 in
  checki "no rmw after explicit erase" 0 (Noftl.rmws d);
  Alcotest.(check (float 1e-9)) "plain program cost" (110.0 *. 1e-6) t

let test_device_wrapper () =
  let dev, erase = Noftl.device ~blocks:16 () in
  let c1 = Flashsim.Device.submit dev ~now:0.0 B.Write ~sector:0 ~bytes:8192 in
  check "write completes" true (c1 > 0.0);
  let _ = erase ~sector:0 in
  let info = Flashsim.Device.info dev in
  check "erase counted" true (List.assoc "erases" info >= 1.0);
  check "programs counted" true (List.assoc "programs" info >= 2.0)

let test_append_vs_inplace_pattern () =
  (* the Discussion's argument, at device level: the same page budget
     written append-wise with explicit erases vs in-place *)
  let budget = 512 in
  let append = mk () in
  let t_append = ref 0.0 in
  for i = 0 to budget - 1 do
    let page = i mod (15 * 64) in
    if page mod 64 = 0 && i >= 15 * 64 then t_append := !t_append +. Noftl.erase_region append ~sector:(page * 8);
    t_append := !t_append +. Noftl.service_time append B.Write ~sector:(page * 8) ~bytes:4096
  done;
  let inplace = mk () in
  let t_inplace = ref 0.0 in
  for i = 0 to budget - 1 do
    (* hammer a small region in place *)
    let page = i mod 32 in
    t_inplace := !t_inplace +. Noftl.service_time inplace B.Write ~sector:(page * 8) ~bytes:4096
  done;
  check
    (Printf.sprintf "append %.4fs much cheaper than in-place %.4fs" !t_append !t_inplace)
    true
    (!t_inplace > 5.0 *. !t_append);
  check "in-place wears the device more" true
    (Noftl.erases inplace > Noftl.erases append)

let suite =
  [
    Alcotest.test_case "sequential appends are plain programs" `Quick
      test_sequential_appends_cheap;
    Alcotest.test_case "overwrite costs a block RMW" `Quick test_overwrite_costs_block_rmw;
    Alcotest.test_case "explicit erase enables reuse" `Quick test_erase_then_append_ok;
    Alcotest.test_case "device wrapper" `Quick test_device_wrapper;
    Alcotest.test_case "append vs in-place pattern" `Quick test_append_vs_inplace_pattern;
  ]
