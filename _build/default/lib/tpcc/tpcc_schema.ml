module Rng = Sias_util.Rng
module Value = Mvcc.Value
open Value

type scale = {
  districts_per_warehouse : int;
  customers_per_district : int;
  items : int;
  stock_per_warehouse : int;
  initial_orders_per_district : int;
  pad_customer : int;
  pad_stock : int;
  pad_item : int;
}

let spec_scale =
  {
    districts_per_warehouse = 10;
    customers_per_district = 3000;
    items = 100_000;
    stock_per_warehouse = 100_000;
    initial_orders_per_district = 3000;
    pad_customer = 300;
    pad_stock = 50;
    pad_item = 50;
  }

let scaled ?(div = 100) () =
  let shrink n = Stdlib.max 1 (n / div) in
  let pad n = Stdlib.max 16 n in
  {
    districts_per_warehouse = 10;
    customers_per_district = shrink 3000;
    items = shrink 100_000;
    stock_per_warehouse = shrink 100_000;
    initial_orders_per_district = shrink 3000;
    pad_customer = pad 300;
    pad_stock = pad 50;
    pad_item = pad 50;
  }

let district_key ~w ~d =
  assert (d >= 0 && d < 100);
  (w * 100) + d

let customer_key ~w ~d ~c =
  assert (c >= 0 && c < 100_000);
  (district_key ~w ~d * 100_000) + c

let order_key ~w ~d ~o =
  assert (o >= 0 && o < 100_000_000);
  (district_key ~w ~d * 100_000_000) + o

let order_line_key ~okey ~ol =
  assert (ol >= 0 && ol < 16);
  (okey * 16) + ol

let stock_key ~w ~i =
  assert (i >= 0 && i < 1_000_000);
  (w * 1_000_000) + i

module Col = struct
  (* warehouse: [w_id; name; state; zip; tax; ytd] *)
  let w_id = 0
  let w_tax = 4
  let w_ytd = 5

  (* district: [d_key; w; d; name; tax; ytd; next_o_id] *)
  let d_tax = 4
  let d_ytd = 5
  let d_next_o_id = 6

  (* customer:
     [c_key; w; d; c; first; last; balance; ytd_payment; payment_cnt;
      delivery_cnt; credit; data] *)
  let c_first = 4
  let c_last = 5
  let c_balance = 6
  let c_ytd_payment = 7
  let c_payment_cnt = 8
  let c_delivery_cnt = 9
  let c_credit = 10
  let c_data = 11

  (* orders: [o_key; w; d; o_id; c_key; entry_d; carrier; ol_cnt] *)
  let o_id = 3
  let o_c_key = 4
  let o_carrier_id = 6
  let o_ol_cnt = 7

  (* order_line:
     [ol_key; o_key; ol_num; i_id; supply_w; qty; amount; delivery_d; dist] *)
  let ol_i_id = 3
  let ol_qty = 5
  let ol_amount = 6
  let ol_delivery_d = 7

  (* item: [i_id; im_id; name; price; data] *)
  let i_name = 2
  let i_price = 3

  (* stock: [s_key; w; i; qty; ytd; order_cnt; remote_cnt; data; dist] *)
  let s_qty = 3
  let s_ytd = 4
  let s_order_cnt = 5
  let s_remote_cnt = 6
end

let warehouse_row rng ~w =
  [|
    Int w;
    Str (Tpcc_random.a_string rng ~min:6 ~max:10);
    Str (Tpcc_random.a_string rng ~min:2 ~max:2);
    Str (Tpcc_random.a_string rng ~min:9 ~max:9);
    Float (Rng.float rng 0.2);
    Float 300000.0;
  |]

let district_row rng ~w ~d =
  [|
    Int (district_key ~w ~d);
    Int w;
    Int d;
    Str (Tpcc_random.a_string rng ~min:6 ~max:10);
    Float (Rng.float rng 0.2);
    Float 30000.0;
    Int 1;
  |]

let customer_row rng scale ~w ~d ~c =
  let credit = if Rng.int rng 10 = 0 then "BC" else "GC" in
  [|
    Int (customer_key ~w ~d ~c);
    Int w;
    Int d;
    Int c;
    Str (Tpcc_random.a_string rng ~min:8 ~max:16);
    Str (Tpcc_random.last_name (if c <= scale.customers_per_district / 3 then c else Rng.int rng 1000));
    Float (-10.0);
    Float 10.0;
    Int 1;
    Int 0;
    Str credit;
    Str (Tpcc_random.data_string rng ~min:scale.pad_customer ~max:(scale.pad_customer + 50));
  |]

let item_row rng scale ~i =
  [|
    Int i;
    Int (Rng.int_incl rng 1 10_000);
    Str (Tpcc_random.a_string rng ~min:14 ~max:24);
    Float (1.0 +. Rng.float rng 99.0);
    Str (Tpcc_random.data_string rng ~min:scale.pad_item ~max:(scale.pad_item + 25));
  |]

let stock_row rng scale ~w ~i =
  [|
    Int (stock_key ~w ~i);
    Int w;
    Int i;
    Int (Rng.int_incl rng 10 100);
    Int 0;
    Int 0;
    Int 0;
    Str (Tpcc_random.data_string rng ~min:scale.pad_stock ~max:(scale.pad_stock + 25));
    Str (Tpcc_random.a_string rng ~min:24 ~max:24);
  |]

let orders_row ~w ~d ~o ~c_key ~entry_d ~ol_cnt ~carrier =
  [|
    Int (order_key ~w ~d ~o);
    Int w;
    Int d;
    Int o;
    Int c_key;
    Float entry_d;
    Int carrier;
    Int ol_cnt;
  |]

let new_order_row ~w ~d ~o = [| Int (order_key ~w ~d ~o); Int w; Int d; Int o |]

let order_line_row rng ~okey ~ol ~i_id ~supply_w ~qty ~amount ~delivery_d =
  [|
    Int (order_line_key ~okey ~ol);
    Int okey;
    Int ol;
    Int i_id;
    Int supply_w;
    Int qty;
    Float amount;
    Float delivery_d;
    Str (Tpcc_random.a_string rng ~min:24 ~max:24);
  |]

let history_row rng ~h_id ~c_key ~w ~d ~amount =
  [|
    Int h_id;
    Int c_key;
    Int w;
    Int d;
    Float amount;
    Str (Tpcc_random.a_string rng ~min:12 ~max:24);
  |]
