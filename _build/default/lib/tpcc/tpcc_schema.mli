(** TPC-C schema: table layouts, composite-key encoding, scale factors.

    The nine TPC-C relations are represented as rows of {!Mvcc.Value.t}
    with documented column positions. Composite primary keys are encoded
    into a single integer (the engines index integer keys); encoders here
    are the single source of truth for that encoding.

    Cardinalities are scaled down from the specification by [scale_div]
    (default 100) so that a multi-hundred-warehouse run fits a simulated
    buffer pool the way the paper's 10 GB-class datasets fit (or miss)
    its 4–80 GB RAM configurations. *)

type scale = {
  districts_per_warehouse : int;
  customers_per_district : int;
  items : int;
  stock_per_warehouse : int;  (** = items: every item stocked per WH *)
  initial_orders_per_district : int;
  pad_customer : int;  (** filler bytes on customer rows *)
  pad_stock : int;
  pad_item : int;
}

val spec_scale : scale
(** Full TPC-C cardinalities (3000 customers, 100k items). *)

val scaled : ?div:int -> unit -> scale
(** [scaled ~div ()] divides customer/item/order cardinalities by [div]
    (default 100) and shrinks filler proportionally (min 16 bytes). *)

(** Composite key encoders. Bounds: d < 100, c < 100_000, o < 100_000_000,
    ol < 16, i < 1_000_000. *)

val district_key : w:int -> d:int -> int
val customer_key : w:int -> d:int -> c:int -> int
val order_key : w:int -> d:int -> o:int -> int
val order_line_key : okey:int -> ol:int -> int
val stock_key : w:int -> i:int -> int

(** Column positions per table (documented in the implementation rows). *)

module Col : sig
  (* warehouse *)
  val w_id : int
  val w_tax : int
  val w_ytd : int

  (* district *)
  val d_tax : int
  val d_ytd : int
  val d_next_o_id : int

  (* customer *)
  val c_first : int
  val c_last : int
  val c_balance : int
  val c_ytd_payment : int
  val c_payment_cnt : int
  val c_delivery_cnt : int
  val c_credit : int
  val c_data : int

  (* orders *)
  val o_id : int
  val o_c_key : int
  val o_carrier_id : int
  val o_ol_cnt : int

  (* order_line *)
  val ol_i_id : int
  val ol_qty : int
  val ol_amount : int
  val ol_delivery_d : int

  (* item *)
  val i_price : int
  val i_name : int

  (* stock *)
  val s_qty : int
  val s_ytd : int
  val s_order_cnt : int
  val s_remote_cnt : int
end

(** Row constructors used by the loader and the transactions. *)

val warehouse_row : Sias_util.Rng.t -> w:int -> Mvcc.Value.t array
val district_row : Sias_util.Rng.t -> w:int -> d:int -> Mvcc.Value.t array

val customer_row :
  Sias_util.Rng.t -> scale -> w:int -> d:int -> c:int -> Mvcc.Value.t array

val item_row : Sias_util.Rng.t -> scale -> i:int -> Mvcc.Value.t array
val stock_row : Sias_util.Rng.t -> scale -> w:int -> i:int -> Mvcc.Value.t array

val orders_row :
  w:int -> d:int -> o:int -> c_key:int -> entry_d:float -> ol_cnt:int ->
  carrier:int -> Mvcc.Value.t array

val new_order_row : w:int -> d:int -> o:int -> Mvcc.Value.t array

val order_line_row :
  Sias_util.Rng.t ->
  okey:int -> ol:int -> i_id:int -> supply_w:int -> qty:int -> amount:float ->
  delivery_d:float -> Mvcc.Value.t array

val history_row :
  Sias_util.Rng.t -> h_id:int -> c_key:int -> w:int -> d:int -> amount:float ->
  Mvcc.Value.t array
