(** TPC-C input generation: NURand, last names, data strings.

    Implements clause 2.1.6 of the TPC-C specification: the non-uniform
    random distribution used for customer and item selection, the
    syllable-composed customer last names, and alphanumeric filler
    strings. *)

val nurand : Sias_util.Rng.t -> a:int -> x:int -> y:int -> int
(** NURand(A, x, y) with the standard per-run constant C. *)

val customer_id : Sias_util.Rng.t -> max:int -> int
(** Non-uniform customer id in [1, max] (spec uses NURand(1023,1,3000)). *)

val item_id : Sias_util.Rng.t -> max:int -> int
(** Non-uniform item id in [1, max] (spec uses NURand(8191,1,100000)). *)

val last_name : int -> string
(** Syllable last name for a number in [0, 999]. *)

val random_last_name : Sias_util.Rng.t -> max_unique:int -> string
(** NURand(255,0,..)-selected last name, bounded for scaled-down runs. *)

val a_string : Sias_util.Rng.t -> min:int -> max:int -> string
(** Random alphanumeric string with length in [min, max]. *)

val data_string : Sias_util.Rng.t -> min:int -> max:int -> string
(** Like {!a_string}, with a 10% chance of embedding "ORIGINAL". *)
