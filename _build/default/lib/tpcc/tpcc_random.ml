module Rng = Sias_util.Rng

(* The spec's run constant C; fixed for reproducibility. *)
let c_const = 123

let nurand rng ~a ~x ~y =
  let r1 = Rng.int_incl rng 0 a in
  let r2 = Rng.int_incl rng x y in
  (((r1 lor r2) + c_const) mod (y - x + 1)) + x

let customer_id rng ~max = nurand rng ~a:1023 ~x:1 ~y:max

let item_id rng ~max = nurand rng ~a:8191 ~x:1 ~y:max

let syllables =
  [| "BAR"; "OUGHT"; "ABLE"; "PRI"; "PRES"; "ESE"; "ANTI"; "CALLY"; "ATION"; "EING" |]

let last_name n =
  let n = abs n mod 1000 in
  syllables.(n / 100) ^ syllables.(n / 10 mod 10) ^ syllables.(n mod 10)

let random_last_name rng ~max_unique =
  let bound = Stdlib.min 999 (Stdlib.max 0 (max_unique - 1)) in
  last_name (nurand rng ~a:255 ~x:0 ~y:bound)

let alphanum = "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789"

let a_string rng ~min ~max =
  let len = Rng.int_incl rng min max in
  String.init len (fun _ -> alphanum.[Rng.int rng (String.length alphanum)])

let data_string rng ~min ~max =
  let s = a_string rng ~min ~max in
  if Rng.int rng 10 = 0 && String.length s >= 8 then begin
    let pos = Rng.int rng (String.length s - 8 + 1) in
    String.sub s 0 pos ^ "ORIGINAL" ^ String.sub s (pos + 8) (String.length s - pos - 8)
  end
  else s
