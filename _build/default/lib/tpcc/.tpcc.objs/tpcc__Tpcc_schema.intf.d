lib/tpcc/tpcc_schema.mli: Mvcc Sias_util
