lib/tpcc/tpcc_workload.mli: Format Mvcc Sias_util Tpcc_schema
