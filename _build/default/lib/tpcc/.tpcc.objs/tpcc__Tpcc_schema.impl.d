lib/tpcc/tpcc_schema.ml: Mvcc Sias_util Stdlib Tpcc_random
