lib/tpcc/tpcc_random.ml: Array Sias_util Stdlib String
