lib/tpcc/tpcc_random.mli: Sias_util
