lib/tpcc/tpcc_workload.ml: Array Format Hashtbl List Mvcc Option Printf Sias_util Stdlib String Tpcc_random Tpcc_schema
