type status = In_progress | Committed | Aborted

type t = { xid : int; snapshot : Snapshot.t; start_time : float }

type mgr = {
  mutable next_xid : int;
  active : (int, Snapshot.t) Hashtbl.t;
  clog : (int, status) Hashtbl.t;
}

let create_mgr () = { next_xid = 1; active = Hashtbl.create 64; clog = Hashtbl.create 1024 }

let active_xids mgr = Hashtbl.fold (fun xid _ acc -> xid :: acc) mgr.active []

let begin_txn ?(now = 0.0) mgr =
  let xid = mgr.next_xid in
  mgr.next_xid <- xid + 1;
  let concurrent = active_xids mgr in
  let snapshot = Snapshot.make ~xid ~xmax:(xid - 1) ~concurrent in
  Hashtbl.replace mgr.active xid snapshot;
  Hashtbl.replace mgr.clog xid In_progress;
  { xid; snapshot; start_time = now }

let finish mgr t final =
  (match Hashtbl.find_opt mgr.clog t.xid with
  | Some In_progress -> ()
  | Some _ | None -> invalid_arg "Txn: transaction is not in progress");
  Hashtbl.remove mgr.active t.xid;
  Hashtbl.replace mgr.clog t.xid final

let commit mgr t = finish mgr t Committed
let abort mgr t = finish mgr t Aborted

let status mgr xid =
  match Hashtbl.find_opt mgr.clog xid with
  | Some s -> s
  | None -> invalid_arg "Txn.status: unknown xid"

let is_committed mgr xid = status mgr xid = Committed

let last_xid mgr = mgr.next_xid - 1

(* Lowest xid a snapshot regards as still in progress. *)
let snapshot_xmin snap =
  match Snapshot.Int_set.min_elt_opt snap.Snapshot.concurrent with
  | Some m -> Stdlib.min m snap.Snapshot.xid
  | None -> snap.Snapshot.xid

let horizon mgr =
  Hashtbl.fold
    (fun _ snap acc -> Stdlib.min acc (snapshot_xmin snap))
    mgr.active mgr.next_xid

let visible mgr snap c =
  c = snap.Snapshot.xid || (Snapshot.sees_xid snap c && is_committed mgr c)

let set_next_xid mgr xid = mgr.next_xid <- Stdlib.max mgr.next_xid xid

let mark_recovered mgr ~xid ~committed =
  Hashtbl.replace mgr.clog xid (if committed then Committed else Aborted);
  if xid >= mgr.next_xid then mgr.next_xid <- xid + 1
