lib/txn/txn.mli: Snapshot
