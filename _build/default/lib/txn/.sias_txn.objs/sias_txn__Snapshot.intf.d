lib/txn/snapshot.mli: Format Set
