lib/txn/snapshot.ml: Format Int List Set String
