lib/txn/lockmgr.ml: Hashtbl List Option
