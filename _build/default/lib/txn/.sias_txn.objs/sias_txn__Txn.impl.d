lib/txn/txn.ml: Hashtbl Snapshot Stdlib
