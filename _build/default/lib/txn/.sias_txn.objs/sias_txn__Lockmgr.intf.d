lib/txn/lockmgr.mli:
