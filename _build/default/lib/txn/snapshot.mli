(** Transaction snapshots.

    A snapshot captures, at transaction start, the highest assigned
    transaction id ([xmax]) and the set of transactions that were running
    concurrently ([tx_concurrent] in the paper's Algorithm 1). Visibility
    of a tuple version created by transaction [c] requires that [c]
    committed before the snapshot: [c <= xmax] and [c] not concurrent —
    exactly the check in the paper's [isVisible]. *)

module Int_set : Set.S with type elt = int

type t = { xid : int; xmax : int; concurrent : Int_set.t }

val make : xid:int -> xmax:int -> concurrent:int list -> t

val sees_xid : t -> int -> bool
(** [sees_xid s c] — purely snapshot-relative part of visibility: [c] is
    the snapshot owner itself, or started before the snapshot and was not
    in progress at snapshot time. The commit-status part lives with the
    transaction manager. *)

val is_concurrent : t -> int -> bool
val pp : Format.formatter -> t -> unit
