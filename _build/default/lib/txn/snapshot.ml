module Int_set = Set.Make (Int)

type t = { xid : int; xmax : int; concurrent : Int_set.t }

let make ~xid ~xmax ~concurrent =
  { xid; xmax; concurrent = Int_set.of_list concurrent }

let is_concurrent t c = Int_set.mem c t.concurrent

let sees_xid t c = c = t.xid || (c <= t.xmax && not (Int_set.mem c t.concurrent))

let pp fmt t =
  Format.fprintf fmt "{xid=%d; xmax=%d; concurrent=[%s]}" t.xid t.xmax
    (String.concat ";" (List.map string_of_int (Int_set.elements t.concurrent)))
