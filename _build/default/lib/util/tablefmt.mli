(** Plain-text table rendering for the benchmark harness.

    Produces aligned, pipe-separated tables that mirror the layout of the
    tables and figure series in the paper. *)

type t

val create : string list -> t
(** [create headers] starts a table with the given column headers. *)

val add_row : t -> string list -> unit
(** Append a row. Short rows are padded with empty cells; long rows raise
    [Invalid_argument]. *)

val render : t -> string
(** The table as a multi-line string (no trailing newline). *)

val print : t -> unit
(** [render] followed by a newline on stdout. *)

val fmt_float : ?decimals:int -> float -> string
(** Fixed-point formatting helper, default 2 decimals. *)

val fmt_pct : float -> string
(** Render a ratio in [0,1] as a percentage, e.g. [0.97] -> ["97%"]. *)
