type t = { headers : string array; mutable rows : string array list }

let create headers = { headers = Array.of_list headers; rows = [] }

let add_row t cells =
  let n = Array.length t.headers in
  let cells = Array.of_list cells in
  if Array.length cells > n then invalid_arg "Tablefmt.add_row: too many cells";
  let row = Array.make n "" in
  Array.blit cells 0 row 0 (Array.length cells);
  t.rows <- row :: t.rows

let render t =
  let rows = List.rev t.rows in
  let n = Array.length t.headers in
  let width = Array.make n 0 in
  let feed row =
    Array.iteri (fun i c -> if String.length c > width.(i) then width.(i) <- String.length c) row
  in
  feed t.headers;
  List.iter feed rows;
  let pad i c = c ^ String.make (width.(i) - String.length c) ' ' in
  let line row = "| " ^ String.concat " | " (List.mapi pad (Array.to_list row)) ^ " |" in
  let rule =
    "|"
    ^ String.concat "|" (Array.to_list (Array.map (fun w -> String.make (w + 2) '-') width))
    ^ "|"
  in
  String.concat "\n" (line t.headers :: rule :: List.map line rows)

let print t = print_endline (render t)

let fmt_float ?(decimals = 2) v = Printf.sprintf "%.*f" decimals v

let fmt_pct r = Printf.sprintf "%.0f%%" (100.0 *. r)
