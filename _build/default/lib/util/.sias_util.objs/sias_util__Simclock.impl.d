lib/util/simclock.ml: Fun
