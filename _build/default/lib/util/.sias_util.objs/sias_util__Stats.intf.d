lib/util/stats.mli:
