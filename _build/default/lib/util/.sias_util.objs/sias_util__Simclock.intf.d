lib/util/simclock.mli:
