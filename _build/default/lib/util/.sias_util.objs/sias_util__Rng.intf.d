lib/util/rng.mli:
