lib/util/tablefmt.mli:
