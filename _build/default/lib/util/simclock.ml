type t = { mutable now : float }

let create () = { now = 0.0 }

let now c = c.now

let advance c dt =
  if dt < 0.0 then invalid_arg "Simclock.advance: negative delta";
  c.now <- c.now +. dt

let advance_to c t = if t > c.now then c.now <- t

let reset c = c.now <- 0.0

let freeze_during c f =
  let saved = c.now in
  Fun.protect ~finally:(fun () -> c.now <- saved) f
