(** Simulated clock.

    All timing in the simulator is decoupled from wall-clock time: devices
    and drivers advance an explicit clock measured in simulated seconds.
    A clock is a mutable cell; independent experiments use independent
    clocks so runs cannot contaminate each other. *)

type t

val create : unit -> t
(** A fresh clock at time [0.0]. *)

val now : t -> float
(** Current simulated time in seconds. *)

val advance : t -> float -> unit
(** [advance c dt] moves the clock forward by [dt] seconds.
    Raises [Invalid_argument] if [dt < 0.]. *)

val advance_to : t -> float -> unit
(** [advance_to c t] moves the clock to absolute time [t] if [t] is in the
    future; does nothing otherwise. *)

val reset : t -> unit
(** Set the clock back to [0.0]. *)

val freeze_during : t -> (unit -> 'a) -> 'a
(** [freeze_during c f] runs [f] and then restores the clock to its value
    from before the call: the work consumes no simulated foreground time.
    Used for background activity (vacuum/GC daemons) whose device traffic
    should be charged but whose duration does not stall the caller. *)
