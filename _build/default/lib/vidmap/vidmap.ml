let bucket_capacity = 1024

(* On-page record format: 6 bytes per TID (32-bit block, 16-bit slot),
   all-ones meaning "unset". A bucket is one 6144-byte page item. *)
let record_size = 6
let bucket_bytes = bucket_capacity * record_size
let unset_marker = 0xFFFFFFFFFFFF

type storage =
  | In_memory of int array array ref (* bucket n at index n; grows by doubling *)
  | Paged of Sias_storage.Bufpool.t * int

type t = {
  storage : storage;
  mutable buckets : int;
  mutable next_vid : int;
  mutable lookups : int;
  mutable updates : int;
  mutable latches : int;
}


let create ?backing () =
  let storage =
    match backing with
    | Some (pool, rel) -> Paged (pool, rel)
    | None -> In_memory (ref [||])
  in
  { storage; buckets = 0; next_vid = 0; lookups = 0; updates = 0; latches = 0 }

let bucket_count t = t.buckets
let vid_count t = t.next_vid

let fresh_bucket_item () =
  let b = Bytes.make bucket_bytes '\xFF' in
  b

let add_bucket t =
  (match t.storage with
  | In_memory cell ->
      if t.buckets >= Array.length !cell then begin
        let bigger = Array.make (Stdlib.max 8 (2 * Array.length !cell)) [||] in
        Array.blit !cell 0 bigger 0 (Array.length !cell);
        cell := bigger
      end;
      !cell.(t.buckets) <- Array.make bucket_capacity unset_marker
  | Paged (pool, rel) ->
      Sias_storage.Bufpool.with_page pool ~rel ~block:t.buckets (fun page ->
          match Sias_storage.Page.insert page (fresh_bucket_item ()) with
          | Some 0 -> Sias_storage.Bufpool.mark_dirty pool ~rel ~block:t.buckets
          | Some _ | None -> failwith "Vidmap: bucket page not empty"));
  t.buckets <- t.buckets + 1

let alloc_vid t =
  let vid = t.next_vid in
  if vid / bucket_capacity >= t.buckets then add_bucket t;
  t.next_vid <- vid + 1;
  vid

let read_record t vid =
  let bucket = vid / bucket_capacity in
  let pos = vid mod bucket_capacity in
  match t.storage with
  | In_memory cell -> !cell.(bucket).(pos)
  | Paged (pool, rel) ->
      Sias_storage.Bufpool.with_page pool ~rel ~block:bucket (fun page ->
          match Sias_storage.Page.read page 0 with
          | None -> failwith "Vidmap: missing bucket item"
          | Some item ->
              let off = pos * record_size in
              let hi = Bytes.get_uint16_le item off in
              let lo = Bytes.get_uint16_le item (off + 2) in
              let slot = Bytes.get_uint16_le item (off + 4) in
              (hi lsl 32) lor (lo lsl 16) lor slot)

let write_record t vid value =
  let bucket = vid / bucket_capacity in
  let pos = vid mod bucket_capacity in
  t.latches <- t.latches + 1;
  match t.storage with
  | In_memory cell -> !cell.(bucket).(pos) <- value
  | Paged (pool, rel) ->
      Sias_storage.Bufpool.with_page pool ~rel ~block:bucket (fun page ->
          match Sias_storage.Page.read page 0 with
          | None -> failwith "Vidmap: missing bucket item"
          | Some item ->
              let off = pos * record_size in
              Bytes.set_uint16_le item off ((value lsr 32) land 0xFFFF);
              Bytes.set_uint16_le item (off + 2) ((value lsr 16) land 0xFFFF);
              Bytes.set_uint16_le item (off + 4) (value land 0xFFFF);
              if not (Sias_storage.Page.update page 0 item) then
                failwith "Vidmap: bucket update did not fit";
              Sias_storage.Bufpool.mark_dirty pool ~rel ~block:bucket)

let check_vid t vid name =
  if vid < 0 || vid >= t.next_vid then invalid_arg ("Vidmap." ^ name ^ ": VID not allocated")

let set t ~vid tid =
  check_vid t vid "set";
  t.updates <- t.updates + 1;
  write_record t vid (Sias_storage.Tid.to_int tid)

let get t ~vid =
  if vid < 0 || vid >= t.next_vid then None
  else begin
    t.lookups <- t.lookups + 1;
    let v = read_record t vid in
    if v = unset_marker then None else Some (Sias_storage.Tid.of_int v)
  end

let clear t ~vid =
  check_vid t vid "clear";
  t.updates <- t.updates + 1;
  write_record t vid unset_marker

let iter t f =
  for vid = 0 to t.next_vid - 1 do
    match get t ~vid with Some tid -> f vid tid | None -> ()
  done

type stats = { lookups : int; updates : int; latches : int }

let stats (t : t) = { lookups = t.lookups; updates = t.updates; latches = t.latches }
