(** The SIAS VID_map (paper Sections 4.1.2 and 4.1.3).

    Maps each data item's virtual ID to the TID of its newest tuple
    version — the {e entrypoint} of the version chain. VIDs are dense,
    sequentially assigned positive integers, so the map is an array-hash:
    buckets of [bucket_capacity] fixed-size TID records, the bucket number
    being [vid / bucket_capacity] and the in-bucket position
    [vid mod bucket_capacity]. There are no overflow buckets. Exactly one
    VID_map exists per relation and serves every access path.

    With a [backing] buffer pool the buckets live in pages of the pool
    (one 6 KB record array per 8 KB page), so a map that outgrows memory
    pages in and out through the ordinary buffer machinery, as Section
    4.1.3 prescribes. Updates latch the target slot; the latch counter is
    tracked to support the paper's cost accounting (C_W = 2 * C_R). *)

type t

val bucket_capacity : int
(** 1024, as in the paper's prototype configuration. *)

val create : ?backing:Sias_storage.Bufpool.t * int -> unit -> t
(** [create ~backing:(pool, rel) ()] stores buckets in pages of [rel];
    without backing the map is purely in-memory. *)

val alloc_vid : t -> int
(** Next VID (starting at 0), allocating a fresh bucket after every
    [bucket_capacity] consecutive VIDs. *)

val vid_count : t -> int
(** Number of VIDs allocated so far. *)

val set : t -> vid:int -> Sias_storage.Tid.t -> unit
(** Point [vid] at a new entrypoint. Raises [Invalid_argument] for a VID
    never allocated. *)

val get : t -> vid:int -> Sias_storage.Tid.t option
(** Entrypoint of the data item, or [None] if unset or cleared. *)

val clear : t -> vid:int -> unit
(** Remove the mapping (the data item's versions were all reclaimed). *)

val iter : t -> (int -> Sias_storage.Tid.t -> unit) -> unit
(** All live (vid, entrypoint) pairs in VID order — the scan access path
    of Algorithm 1. *)

val bucket_count : t -> int

type stats = { lookups : int; updates : int; latches : int }

val stats : t -> stats
