(** Write-ahead log.

    Both engines log logical records before touching heap pages; commit
    forces the log. The log device is separate from the data device (as in
    the paper's measurement setup, where the relation blocktrace shows only
    heap I/O), and WAL writes are strictly sequential appends.

    Records are retained in memory with their LSNs so that recovery tests
    can replay the tail of the log after a simulated crash; engines supply
    their own payload encoding. *)

type kind =
  | Insert
  | Update
  | Delete
  | Trim  (** whole-page discard by GC *)
  | Commit
  | Abort
  | Checkpoint

val kind_to_string : kind -> string

type record = { lsn : int; xid : int; rel : int; kind : kind; payload : bytes }

type t

val create :
  ?device:Flashsim.Device.t -> clock:Sias_util.Simclock.t -> unit -> t
(** Without a device the log is purely in-memory (no latency charged). *)

val append : t -> xid:int -> rel:int -> kind:kind -> payload:bytes -> int
(** Buffer a record; returns its LSN. No I/O happens until {!flush}. *)

val flush : t -> sync:bool -> unit
(** Write all buffered bytes as one sequential append. [sync] stalls the
    caller's clock until completion (commit); async flushes model WAL
    writer activity. *)

val current_lsn : t -> int
val flushed_lsn : t -> int

val records_from : t -> lsn:int -> record list
(** All records with LSN >= [lsn], in log order. *)

val truncate_before : t -> lsn:int -> unit
(** Discard retained records below [lsn] (checkpoint recycling). *)

val bytes_written : t -> int
val flush_count : t -> int
