lib/wal/wal.mli: Flashsim Sias_util
