lib/wal/wal.ml: Bytes Flashsim List Sias_util
