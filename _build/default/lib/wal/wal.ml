module Device = Flashsim.Device
module Blocktrace = Flashsim.Blocktrace
module Simclock = Sias_util.Simclock

type kind = Insert | Update | Delete | Trim | Commit | Abort | Checkpoint

let kind_to_string = function
  | Insert -> "insert"
  | Update -> "update"
  | Delete -> "delete"
  | Trim -> "trim"
  | Commit -> "commit"
  | Abort -> "abort"
  | Checkpoint -> "checkpoint"

type record = { lsn : int; xid : int; rel : int; kind : kind; payload : bytes }

let record_header_bytes = 24 (* lsn + xid + rel + kind + length, on disk *)

type t = {
  device : Device.t option;
  clock : Simclock.t;
  mutable records : record list; (* newest first, retained for recovery *)
  mutable next_lsn : int;
  mutable flushed_lsn : int;
  mutable pending_bytes : int;
  mutable write_sector : int;
  mutable bytes_written : int;
  mutable flush_count : int;
}

let create ?device ~clock () =
  {
    device;
    clock;
    records = [];
    next_lsn = 1;
    flushed_lsn = 0;
    pending_bytes = 0;
    write_sector = 0;
    bytes_written = 0;
    flush_count = 0;
  }

let append t ~xid ~rel ~kind ~payload =
  let lsn = t.next_lsn in
  t.next_lsn <- lsn + 1;
  t.records <- { lsn; xid; rel; kind; payload } :: t.records;
  t.pending_bytes <- t.pending_bytes + record_header_bytes + Bytes.length payload;
  lsn

let flush t ~sync =
  if t.pending_bytes > 0 then begin
    (match t.device with
    | None -> ()
    | Some device ->
        let now = Simclock.now t.clock in
        let completion =
          Device.submit device ~now Blocktrace.Write ~sector:t.write_sector
            ~bytes:t.pending_bytes
        in
        t.write_sector <- t.write_sector + ((t.pending_bytes + 511) / 512);
        if sync then Simclock.advance_to t.clock completion);
    t.bytes_written <- t.bytes_written + t.pending_bytes;
    t.pending_bytes <- 0;
    t.flushed_lsn <- t.next_lsn - 1;
    t.flush_count <- t.flush_count + 1
  end

let current_lsn t = t.next_lsn - 1
let flushed_lsn t = t.flushed_lsn

let records_from t ~lsn =
  List.filter (fun r -> r.lsn >= lsn) (List.rev t.records)

let truncate_before t ~lsn = t.records <- List.filter (fun r -> r.lsn >= lsn) t.records

let bytes_written t = t.bytes_written
let flush_count t = t.flush_count
