lib/storage/tid.ml: Format Int Printf
