lib/storage/heapfile.ml: Array Bufpool Bytes Hashtbl Page Queue Tid
