lib/storage/bgwriter.mli: Bufpool Sias_util
