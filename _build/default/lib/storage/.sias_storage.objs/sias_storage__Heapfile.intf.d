lib/storage/heapfile.mli: Bufpool Tid
