lib/storage/bgwriter.ml: Bufpool Sias_util
