lib/storage/tid.mli: Format
