lib/storage/bufpool.mli: Flashsim Page Sias_util
