lib/storage/bufpool.ml: Array Flashsim Fun Hashtbl List Page Queue Sias_util
