lib/storage/page.mli:
