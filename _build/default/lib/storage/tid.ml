type t = { block : int; slot : int }

let slot_bits = 16
let slot_limit = 1 lsl slot_bits

let make ~block ~slot =
  if block < 0 || slot < 0 || slot >= slot_limit then invalid_arg "Tid.make";
  { block; slot }

let block t = t.block
let slot t = t.slot

let to_int t = (t.block lsl slot_bits) lor t.slot

let of_int i =
  if i < 0 then invalid_arg "Tid.of_int";
  { block = i lsr slot_bits; slot = i land (slot_limit - 1) }

let equal a b = a.block = b.block && a.slot = b.slot

let compare a b =
  match Int.compare a.block b.block with 0 -> Int.compare a.slot b.slot | c -> c

let pp fmt t = Format.fprintf fmt "(%d,%d)" t.block t.slot
let to_string t = Printf.sprintf "(%d,%d)" t.block t.slot

let invalid = { block = max_int lsr slot_bits; slot = slot_limit - 1 }
let is_invalid t = equal t invalid
