(** Tuple version identifiers.

    A TID addresses a physical tuple version: a heap block number plus a
    slot offset inside the page — PostgreSQL's 6-byte ItemPointer (32-bit
    block, 16-bit offset), which is also the record format stored in the
    SIAS VID_map. *)

type t = { block : int; slot : int }

val make : block:int -> slot:int -> t
(** Raises [Invalid_argument] on negative components or slot >= 2^16. *)

val block : t -> int
val slot : t -> int

val to_int : t -> int
(** Dense encoding [block * 2^16 + slot], usable as a hash key and as the
    6-byte on-disk representation. *)

val of_int : int -> t

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit
val to_string : t -> string

val invalid : t
(** Sentinel that never addresses a real tuple (block = max). *)

val is_invalid : t -> bool
