module Tid = Sias_storage.Tid

module Si = struct
  type header = { xmin : int; xmax : int }

  let header_size = 16 (* xmin int64, xmax int64 *)

  let encode ~xmin ~row =
    let payload = Value.encode_row row in
    let b = Bytes.create (header_size + Bytes.length payload) in
    Bytes.set_int64_le b 0 (Int64.of_int xmin);
    Bytes.set_int64_le b 8 0L;
    Bytes.blit payload 0 b header_size (Bytes.length payload);
    b

  let header b =
    {
      xmin = Int64.to_int (Bytes.get_int64_le b 0);
      xmax = Int64.to_int (Bytes.get_int64_le b 8);
    }

  let row b = Value.decode_row b ~pos:header_size

  let patch_xmax b xmax = Bytes.set_int64_le b 8 (Int64.of_int xmax)
  let clear_xmax b = Bytes.set_int64_le b 8 0L
end

module Sias = struct
  type header = { create : int; seq : int; vid : int; pred : Tid.t; tombstone : bool }

  let header_size = 29 (* create int64, vid int64, pred int64, seq u32, flags u8 *)

  let encode ~create ~seq ~vid ~pred ~tombstone ~row =
    let payload = Value.encode_row row in
    let b = Bytes.create (header_size + Bytes.length payload) in
    Bytes.set_int64_le b 0 (Int64.of_int create);
    Bytes.set_int64_le b 8 (Int64.of_int vid);
    Bytes.set_int64_le b 16 (Int64.of_int (Tid.to_int pred));
    Bytes.set_int32_le b 24 (Int32.of_int seq);
    Bytes.set_uint8 b 28 (if tombstone then 1 else 0);
    Bytes.blit payload 0 b header_size (Bytes.length payload);
    b

  let header b =
    {
      create = Int64.to_int (Bytes.get_int64_le b 0);
      seq = Int32.to_int (Bytes.get_int32_le b 24);
      vid = Int64.to_int (Bytes.get_int64_le b 8);
      pred = Tid.of_int (Int64.to_int (Bytes.get_int64_le b 16));
      tombstone = Bytes.get_uint8 b 28 = 1;
    }

  let row b = Value.decode_row b ~pos:header_size

  let patch_pred b pred = Bytes.set_int64_le b 16 (Int64.of_int (Tid.to_int pred))
end
