(** Version visibility (paper Algorithm 1, [isVisible]).

    A version created by [c] is visible to snapshot [s] iff [c] is [s]'s
    own transaction, or [c] committed before [s] started ([c <= xmax] and
    [c] not concurrent and [c] committed). Under SI a visible creator is
    not enough: the version must also not be invalidated by a transaction
    visible to [s]. Under SIAS there is no invalidation timestamp — the
    first visible version found walking the chain from the entrypoint is
    the answer, because chain order is reverse-chronological. *)

val creator_visible : Sias_txn.Txn.mgr -> Sias_txn.Snapshot.t -> int -> bool
(** The shared creation-side predicate. *)

val si_visible :
  Sias_txn.Txn.mgr -> Sias_txn.Snapshot.t -> Tuple.Si.header -> bool
(** Creator visible and not invalidated by a visible transaction. *)

val si_dead_for_all : Sias_txn.Txn.mgr -> horizon:int -> Tuple.Si.header -> bool
(** No current or future snapshot can see the version — the vacuum
    criterion: aborted creator, or invalidator committed below the
    {!Sias_txn.Txn.horizon}. *)

val sias_dead_for_all :
  Sias_txn.Txn.mgr ->
  horizon:int ->
  create:int ->
  successor_create:int option ->
  bool
(** SIAS chain-pruning criterion for a version created at [create] whose
    nearest {e committed} successor in the chain (if any) was created at
    [successor_create]: the version is dead when its creator aborted, or
    when that successor is visible to every active transaction. *)
