lib/mvcc/engine.ml: Db Sias_txn Value
