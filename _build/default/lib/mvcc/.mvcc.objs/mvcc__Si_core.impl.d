lib/mvcc/si_core.ml: Array Bytes Db Engine List Sias_index Sias_storage Sias_txn Sias_wal Tuple Value Visibility Walcodec
