lib/mvcc/ssi.ml: Array Db Engine Hashtbl Sias_txn Value
