lib/mvcc/si_cv_engine.mli: Engine
