lib/mvcc/visibility.ml: Sias_txn Tuple
