lib/mvcc/tuple.mli: Sias_storage Value
