lib/mvcc/db.ml: Bytes Flashsim Sias_storage Sias_txn Sias_util Sias_wal
