lib/mvcc/walcodec.mli: Db Sias_storage Sias_wal
