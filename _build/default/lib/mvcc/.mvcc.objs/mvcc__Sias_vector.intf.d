lib/mvcc/sias_vector.mli: Engine Vidmap
