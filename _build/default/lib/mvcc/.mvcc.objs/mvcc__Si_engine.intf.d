lib/mvcc/si_engine.mli: Engine
