lib/mvcc/sias_engine.mli: Engine Sias_txn Value Vidmap
