lib/mvcc/sias_vector.ml: Array Buffer Bytes Db Engine Hashtbl Int32 Int64 List Sias_index Sias_storage Sias_txn Sias_wal Value Vidmap Visibility Walcodec
