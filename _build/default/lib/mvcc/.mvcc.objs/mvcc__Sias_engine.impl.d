lib/mvcc/sias_engine.ml: Array Bytes Db Engine Hashtbl List Printf Sias_index Sias_storage Sias_txn Sias_wal Tuple Value Vidmap Visibility Walcodec
