lib/mvcc/ssi.mli: Db Engine Sias_txn Value
