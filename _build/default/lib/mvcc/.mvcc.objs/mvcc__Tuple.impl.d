lib/mvcc/tuple.ml: Bytes Int32 Int64 Sias_storage Value
