lib/mvcc/value.ml: Array Buffer Bytes Char Float Format Int Int64 String
