lib/mvcc/walcodec.ml: Bytes Db Hashtbl Int64 List Sias_storage Sias_txn Sias_wal
