lib/mvcc/engine.mli: Db Sias_txn Value
