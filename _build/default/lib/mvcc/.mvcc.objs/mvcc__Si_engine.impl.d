lib/mvcc/si_engine.ml: Si_core Sias_storage
