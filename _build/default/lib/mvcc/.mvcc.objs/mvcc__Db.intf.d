lib/mvcc/db.mli: Flashsim Sias_storage Sias_txn Sias_util Sias_wal
