lib/mvcc/si_cv_engine.ml: Si_core Sias_storage
