lib/mvcc/visibility.mli: Sias_txn Tuple
