(** WAL payload encoding and redo for heap operations.

    Heap changes are logged physiologically: the target TID plus the full
    item image (empty for slot deletes). Redo replays records in LSN order
    onto the surviving page images, guarded by the page LSN so pages that
    were flushed after a record was written are not double-applied. *)

val encode : ?append_only:bool -> Sias_storage.Tid.t -> bytes -> bytes
val decode : bytes -> Sias_storage.Tid.t * bool * bytes

val log_heap :
  ?append_only:bool ->
  Db.t ->
  xid:int ->
  rel:int ->
  kind:Sias_wal.Wal.kind ->
  tid:Sias_storage.Tid.t ->
  item:bytes ->
  unit
(** Append the record and stamp the target page with its LSN. *)

val redo : Db.t -> since_lsn:int -> unit
(** Replay heap records with LSN >= [since_lsn]. Indexes and VID_maps are
    not logged: engines rebuild them from the heap after redo. *)

val replay_clog : Db.t -> unit
(** Rebuild transaction statuses from commit/abort records over the whole
    retained log. Transactions lacking a final record are left unknown
    (treated as aborted by recovery-time [mark_recovered] calls made
    here for every xid that appears in the log). *)
