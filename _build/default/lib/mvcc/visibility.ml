module Txn = Sias_txn.Txn

let creator_visible mgr snap c = Txn.visible mgr snap c

let si_visible mgr snap (h : Tuple.Si.header) =
  creator_visible mgr snap h.xmin
  && not (h.xmax <> 0 && creator_visible mgr snap h.xmax)

let committed_below mgr ~horizon c = c < horizon && Txn.status mgr c = Txn.Committed

let si_dead_for_all mgr ~horizon (h : Tuple.Si.header) =
  Txn.status mgr h.xmin = Txn.Aborted
  || (h.xmax <> 0 && committed_below mgr ~horizon h.xmax)

let sias_dead_for_all mgr ~horizon ~create ~successor_create =
  Txn.status mgr create = Txn.Aborted
  ||
  match successor_create with
  | Some c' -> committed_below mgr ~horizon c'
  | None -> false
