module Tid = Sias_storage.Tid
module Page = Sias_storage.Page
module Bufpool = Sias_storage.Bufpool
module Wal = Sias_wal.Wal
module Txn = Sias_txn.Txn

(* Payload: tid (int64), flags (u8, bit 0 = append-only page discipline),
   item bytes. The flag matters at redo: a page recreated from nothing
   must apply the same slot-allocation rule the original insert used, or
   replayed slots diverge. *)
let encode ?(append_only = false) tid item =
  let b = Bytes.create (9 + Bytes.length item) in
  Bytes.set_int64_le b 0 (Int64.of_int (Tid.to_int tid));
  Bytes.set_uint8 b 8 (if append_only then 1 else 0);
  Bytes.blit item 0 b 9 (Bytes.length item);
  b

let decode b =
  let tid = Tid.of_int (Int64.to_int (Bytes.get_int64_le b 0)) in
  let append_only = Bytes.get_uint8 b 8 land 1 = 1 in
  (tid, append_only, Bytes.sub b 9 (Bytes.length b - 9))

let log_heap ?append_only db ~xid ~rel ~kind ~tid ~item =
  let lsn = Db.log_op db ~xid ~rel ~kind ~payload:(encode ?append_only tid item) in
  Bufpool.with_page db.Db.pool ~rel ~block:(Tid.block tid) (fun page ->
      Page.set_lsn page lsn)

let redo db ~since_lsn =
  let records = Wal.records_from db.Db.wal ~lsn:since_lsn in
  List.iter
    (fun (r : Wal.record) ->
      match r.kind with
      | Wal.Trim when r.rel >= 0 ->
          let tid, _, _ = decode r.payload in
          Bufpool.trim_block db.Db.pool ~rel:r.rel ~block:(Tid.block tid);
          Bufpool.with_page db.Db.pool ~rel:r.rel ~block:(Tid.block tid) (fun page ->
              Page.set_lsn page r.lsn)
      | Wal.Insert | Wal.Update | Wal.Delete when r.rel >= 0 ->
          let tid, append_only, item = decode r.payload in
          Bufpool.with_page db.Db.pool ~rel:r.rel ~block:(Tid.block tid) (fun page ->
              if Page.lsn page < r.lsn then begin
                if append_only then Page.set_no_slot_reuse page;
                (match r.kind with
                | Wal.Insert -> (
                    match Page.insert page item with
                    | Some slot when slot = Tid.slot tid -> ()
                    | Some _ | None -> failwith "Walcodec.redo: insert slot mismatch")
                | Wal.Update ->
                    if not (Page.update page (Tid.slot tid) item) then
                      failwith "Walcodec.redo: update did not fit"
                | Wal.Delete -> Page.delete page (Tid.slot tid)
                | _ -> assert false);
                Page.set_lsn page r.lsn;
                Bufpool.mark_dirty db.Db.pool ~rel:r.rel ~block:(Tid.block tid)
              end)
      | _ -> ())
    records

let replay_clog db =
  let records = Wal.records_from db.Db.wal ~lsn:0 in
  let seen = Hashtbl.create 256 in
  List.iter
    (fun (r : Wal.record) ->
      if r.xid > 0 && not (Hashtbl.mem seen r.xid) then Hashtbl.replace seen r.xid false)
    records;
  List.iter
    (fun (r : Wal.record) ->
      match r.kind with
      | Wal.Commit -> Hashtbl.replace seen r.xid true
      | _ -> ())
    records;
  Hashtbl.iter
    (fun xid committed -> Txn.mark_recovered db.Db.txnmgr ~xid ~committed)
    seen
