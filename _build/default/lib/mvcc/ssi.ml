module Txn = Sias_txn.Txn
module Snapshot = Sias_txn.Snapshot

module Make (E : Engine.S) = struct
  type table = { inner : E.table; id : int; pk_col : int }

  (* rw-dependency flags per transaction (Cahill's inConflict /
     outConflict). [finished_at] keeps flags of committed transactions
     visible while concurrent transactions may still form edges to them. *)
  type flags = { mutable has_in : bool; mutable has_out : bool }

  type t = {
    eng : E.t;
    mutable next_table : int;
    (* SIREAD "locks": (table, key) -> readers; key = min_int is the
       whole-table predicate read of a scan *)
    sireads : (int * int, (int, unit) Hashtbl.t) Hashtbl.t;
    (* recent writes: (table, key) -> writers *)
    writes : (int * int, (int, unit) Hashtbl.t) Hashtbl.t;
    flags : (int, flags) Hashtbl.t;
    mutable aborted_pivots : int;
  }

  let create db =
    {
      eng = E.create db;
      next_table = 0;
      sireads = Hashtbl.create 256;
      writes = Hashtbl.create 256;
      flags = Hashtbl.create 64;
      aborted_pivots = 0;
    }

  let engine t = t.eng

  let create_table t ~name ~pk_col ?secondary () =
    let id = t.next_table in
    t.next_table <- id + 1;
    { inner = E.create_table t.eng ~name ~pk_col ?secondary (); id; pk_col }

  let flags_of t xid =
    match Hashtbl.find_opt t.flags xid with
    | Some f -> f
    | None ->
        let f = { has_in = false; has_out = false } in
        Hashtbl.replace t.flags xid f;
        f

  let begin_txn t =
    let txn = E.begin_txn t.eng in
    ignore (flags_of t txn.Txn.xid);
    txn

  let mark _t key xid tbl =
    let set =
      match Hashtbl.find_opt tbl key with
      | Some s -> s
      | None ->
          let s = Hashtbl.create 4 in
          Hashtbl.replace tbl key s;
          s
    in
    Hashtbl.replace set xid ()

  (* Two transactions are "SSI-concurrent" when neither could see the
     other's writes: they overlapped in time. *)
  let concurrent_with t (txn : Txn.t) other_xid =
    other_xid <> txn.Txn.xid
    &&
    let mgr = (E.db t.eng).Db.txnmgr in
    match Txn.status mgr other_xid with
    | Txn.In_progress -> true
    | Txn.Aborted -> false
    | Txn.Committed ->
        (* committed, but after our snapshot: still concurrent *)
        not (Snapshot.sees_xid txn.Txn.snapshot other_xid)

  (* rw-edge reader -> writer: reader.out, writer.in. A transaction that
     acquires both directions is a pivot; abort it eagerly when it is the
     one making the access, otherwise at its commit. *)
  let add_edge t ~reader ~writer =
    let fr = flags_of t reader and fw = flags_of t writer in
    fr.has_out <- true;
    fw.has_in <- true

  let record_read t (txn : Txn.t) table key =
    mark t (table.id, key) txn.Txn.xid t.sireads;
    (* existing concurrent writers of this key: we read around them *)
    (match Hashtbl.find_opt t.writes (table.id, key) with
    | Some writers ->
        Hashtbl.iter
          (fun w () -> if concurrent_with t txn w then add_edge t ~reader:txn.Txn.xid ~writer:w)
          writers
    | None -> ())

  let record_write t (txn : Txn.t) table key =
    mark t (table.id, key) txn.Txn.xid t.writes;
    let feed_readers k =
      match Hashtbl.find_opt t.sireads k with
      | Some readers ->
          Hashtbl.iter
            (fun r () ->
              if concurrent_with t txn r then add_edge t ~reader:r ~writer:txn.Txn.xid)
            readers
      | None -> ()
    in
    feed_readers (table.id, key);
    (* predicate reads (scans) cover every key of the table *)
    feed_readers (table.id, min_int)

  let pivot t xid =
    match Hashtbl.find_opt t.flags xid with
    | Some f -> f.has_in && f.has_out
    | None -> false

  (* Flag and SIREAD state of transactions that can no longer conflict
     with anything is dropped once nothing concurrent remains. *)
  let maybe_cleanup t =
    let mgr = (E.db t.eng).Db.txnmgr in
    if Txn.active_xids mgr = [] then begin
      Hashtbl.reset t.sireads;
      Hashtbl.reset t.writes;
      Hashtbl.reset t.flags
    end

  let read t txn table ~pk =
    let r = E.read t.eng txn table.inner ~pk in
    record_read t txn table pk;
    r

  let scan t txn table f =
    let n = E.scan t.eng txn table.inner f in
    mark t (table.id, min_int) txn.Txn.xid t.sireads;
    (* writes already recorded by concurrent writers count against the
       predicate read as well *)
    Hashtbl.iter
      (fun (tid, _) writers ->
        if tid = table.id then
          Hashtbl.iter
            (fun w () ->
              if concurrent_with t txn w then add_edge t ~reader:txn.Txn.xid ~writer:w)
            writers)
      t.writes;
    n

  let guarded_write t txn table pk op =
    match op () with
    | Ok () ->
        record_write t txn table pk;
        Ok ()
    | Error e -> Error e

  let insert t txn table row =
    let pk = Value.to_key row.(table.pk_col) in
    guarded_write t txn table pk (fun () -> E.insert t.eng txn table.inner row)

  let update t txn table ~pk f =
    (* an update reads the current version first *)
    record_read t txn table pk;
    guarded_write t txn table pk (fun () -> E.update t.eng txn table.inner ~pk f)

  let delete t txn table ~pk =
    record_read t txn table pk;
    guarded_write t txn table pk (fun () -> E.delete t.eng txn table.inner ~pk)

  let abort t txn =
    E.abort t.eng txn;
    Hashtbl.remove t.flags txn.Txn.xid;
    maybe_cleanup t

  let commit t txn =
    if pivot t txn.Txn.xid then begin
      t.aborted_pivots <- t.aborted_pivots + 1;
      E.abort t.eng txn;
      maybe_cleanup t;
      Error Engine.Write_conflict
    end
    else begin
      E.commit t.eng txn;
      maybe_cleanup t;
      Ok ()
    end

  let aborted_pivots t = t.aborted_pivots
end
