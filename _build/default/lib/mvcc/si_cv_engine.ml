include Si_core.Make (struct
  let name = "SI-CV"
  let placement = Sias_storage.Heapfile.Txn_colocated
end)
