include Si_core.Make (struct
  let name = "SI"
  let placement = Sias_storage.Heapfile.Free_space_first
end)
