(** Serializable Snapshot Isolation on top of any SIAS/SI engine.

    The paper notes (Related Work) that standard SI is not serializable
    and cites Cahill/Röhm/Fekete's serializable SI [10] and its PostgreSQL
    implementation [28]. This functor upgrades any {!Engine.S} —
    SI, SIAS-Chains or SIAS-V — to full serializability using Cahill's
    algorithm: track read-write antidependencies between concurrent
    transactions through SIREAD locks, and abort a {e pivot} — a
    transaction with both an incoming and an outgoing rw-edge — before it
    can commit. Every dangerous structure (the only way SI schedules can
    be non-serializable) contains such a pivot, so aborting pivots makes
    the surviving history serializable; like PostgreSQL's SSI it may
    abort some false positives.

    The wrapper intercepts the data operations to maintain the dependency
    state; storage behaviour (and thus all of the paper's I/O results) is
    entirely the wrapped engine's. *)

module Make (E : Engine.S) : sig
  type t
  type table

  val create : Db.t -> t
  val engine : t -> E.t

  val create_table :
    t -> name:string -> pk_col:int -> ?secondary:int list -> unit -> table

  val begin_txn : t -> Sias_txn.Txn.t

  val commit : t -> Sias_txn.Txn.t -> (unit, Engine.error) result
  (** [Error Write_conflict] when the transaction is a pivot in a
      dangerous structure; the transaction is then aborted and its
      effects rolled back. *)

  val abort : t -> Sias_txn.Txn.t -> unit

  val insert :
    t -> Sias_txn.Txn.t -> table -> Value.t array -> (unit, Engine.error) result

  val read : t -> Sias_txn.Txn.t -> table -> pk:int -> Value.t array option

  val update :
    t ->
    Sias_txn.Txn.t ->
    table ->
    pk:int ->
    (Value.t array -> Value.t array) ->
    (unit, Engine.error) result

  val delete : t -> Sias_txn.Txn.t -> table -> pk:int -> (unit, Engine.error) result

  val scan : t -> Sias_txn.Txn.t -> table -> (Value.t array -> unit) -> int
  (** Records a predicate (whole-table) SIREAD: later concurrent writers
      anywhere in the table create an rw-edge. *)

  val aborted_pivots : t -> int
  (** Serialization aborts performed so far. *)
end
