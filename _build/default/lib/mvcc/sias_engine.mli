(** SIAS-Chains: Snapshot Isolation Append Storage with chained version
    organization — the paper's primary contribution (Section 4).

    Data items are addressed as a whole through a unique VID; the VID_map
    points at the newest version (the {e entrypoint}), every version
    stores a backward pointer to its predecessor, and creating a successor
    {e implicitly} invalidates — the old version is never touched again.
    All heap placement is append-only, so each relation's write I/O is a
    stream of monotonically increasing page appends (Figure 3), deferred
    by the buffer-flush threshold (t1/t2, Section 5.2). Indexes map keys
    to VIDs, so updates that do not change the key never touch an index
    (Section 4.3). Deletes append tombstone versions (Section 4.2.2). *)

include Engine.S

val scan_traditional : t -> Sias_txn.Txn.t -> table -> (Value.t array -> unit) -> int
(** The HDD-era scan for comparison: fetch {e all} tuple versions in heap
    order and check each individually (reproduces the paper's Section
    4.2.1 discussion and the scan ablation bench). *)

val scan_vidmap : t -> Sias_txn.Txn.t -> table -> (Value.t array -> unit) -> int
(** Alias of {!scan}: Algorithm 1 over the VID_map. *)

type gc_stats = {
  pruned_versions : int;  (** dead versions removed by chain truncation *)
  relocated_versions : int;  (** live versions re-appended from victim pages *)
  reclaimed_pages : int;
}

val gc_stats : t -> gc_stats

val chain_walk_stats : t -> int * int
(** (visibility walks, versions visited) — average chain depth probe. *)

val table_vidmap : t -> table -> Vidmap.t
(** Expose the VID_map for white-box tests and benches. *)

val check_invariants : t -> table -> unit
(** White-box structural invariants (chain order, VID integrity,
    entrypoint correctness, index reachability); raises [Failure] with a
    description on violation. Used by the property-test suite. *)
