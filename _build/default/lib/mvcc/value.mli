(** Typed column values and row serialization.

    Rows are arrays of values; the codec produces the byte payload stored
    after the tuple-version header on heap pages. Integers dominate the
    TPC-C schema, with strings for names/data padding and floats for
    amounts. *)

type t =
  | Int of int
  | Float of float
  | Str of string

val int : t -> int
(** Raises [Invalid_argument] on a non-[Int]. *)

val float : t -> float
val str : t -> string

val equal : t -> t -> bool
val compare : t -> t -> int
val pp : Format.formatter -> t -> unit

val to_key : t -> int
(** Dense integer for indexing: [Int] as-is, [Float] rounded through a
    fixed-point scale (x100), [Str] by a 62-bit FNV-1a hash. *)

val encode_row : t array -> bytes
val decode_row : bytes -> pos:int -> t array
(** [decode_row b ~pos] reads a row starting at [pos] (the end of the
    tuple header). Inverse of {!encode_row}. *)

val row_equal : t array -> t array -> bool
val pp_row : Format.formatter -> t array -> unit
