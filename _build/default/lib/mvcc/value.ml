type t = Int of int | Float of float | Str of string

let int = function Int i -> i | _ -> invalid_arg "Value.int"
let float = function Float f -> f | Int i -> float_of_int i | _ -> invalid_arg "Value.float"
let str = function Str s -> s | _ -> invalid_arg "Value.str"

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Str x, Str y -> String.equal x y
  | _, _ -> false

let compare a b =
  match (a, b) with
  | Int x, Int y -> Int.compare x y
  | Float x, Float y -> Float.compare x y
  | Str x, Str y -> String.compare x y
  | Int _, _ -> -1
  | _, Int _ -> 1
  | Float _, _ -> -1
  | _, Float _ -> 1

let pp fmt = function
  | Int i -> Format.fprintf fmt "%d" i
  | Float f -> Format.fprintf fmt "%g" f
  | Str s -> Format.fprintf fmt "%S" s

let fnv_hash s =
  let h = ref 0x1bf29ce484222325 in
  String.iter
    (fun c ->
      h := !h lxor Char.code c;
      h := !h * 0x100000001b3)
    s;
  !h land max_int

let to_key = function
  | Int i -> i
  | Float f -> int_of_float (Float.round (f *. 100.0))
  | Str s -> fnv_hash s

(* Row format: u16 column count, then per column a 1-byte tag and the
   value: Int/Float as int64, Str as u16 length + bytes. *)
let encode_row row =
  let buf = Buffer.create 64 in
  Buffer.add_uint16_le buf (Array.length row);
  Array.iter
    (fun v ->
      match v with
      | Int i ->
          Buffer.add_uint8 buf 0;
          Buffer.add_int64_le buf (Int64.of_int i)
      | Float f ->
          Buffer.add_uint8 buf 1;
          Buffer.add_int64_le buf (Int64.bits_of_float f)
      | Str s ->
          if String.length s > 0xFFFF then invalid_arg "Value.encode_row: string too long";
          Buffer.add_uint8 buf 2;
          Buffer.add_uint16_le buf (String.length s);
          Buffer.add_string buf s)
    row;
  Buffer.to_bytes buf

let decode_row b ~pos =
  let pos = ref pos in
  let n = Bytes.get_uint16_le b !pos in
  pos := !pos + 2;
  Array.init n (fun _ ->
      let tag = Bytes.get_uint8 b !pos in
      incr pos;
      match tag with
      | 0 ->
          let v = Int64.to_int (Bytes.get_int64_le b !pos) in
          pos := !pos + 8;
          Int v
      | 1 ->
          let v = Int64.float_of_bits (Bytes.get_int64_le b !pos) in
          pos := !pos + 8;
          Float v
      | 2 ->
          let len = Bytes.get_uint16_le b !pos in
          pos := !pos + 2;
          let s = Bytes.sub_string b !pos len in
          pos := !pos + len;
          Str s
      | _ -> invalid_arg "Value.decode_row: bad tag")

let row_equal a b = Array.length a = Array.length b && Array.for_all2 equal a b

let pp_row fmt row =
  Format.fprintf fmt "(%s)"
    (String.concat ", "
       (Array.to_list (Array.map (fun v -> Format.asprintf "%a" pp v) row)))
