(** The traditional Snapshot Isolation engine — the PostgreSQL-style
    baseline the paper compares against.

    Every tuple version carries creation and invalidation timestamps
    ([xmin]/[xmax]). An update {e invalidates the old version in place}
    (a small write that dirties whatever page the old version lives on),
    then places the new version on any page with free space, and inserts
    index entries for the new version in {e every} index. This is the
    behaviour that produces the scattered write pattern of the paper's
    Figure 4 and the write volumes of Table 1's SI column. *)

include Engine.S

val vacuum_stats : t -> int * int
(** (dead versions removed, pages scanned) by all {!gc} runs so far. *)
