(** SIAS-V: Snapshot Isolation Append Storage — Vectors.

    The variant demonstrated in the EDBT 2014 demo paper. Where
    SIAS-Chains links each tuple version to its predecessor individually,
    SIAS-V co-locates a data item's recent versions in a {e version
    vector}: one heap item holding up to {!vector_capacity} version
    records, newest first. The VID_map points at the item's current
    vector; reading any version of the item costs a single fetch instead
    of a chain walk. An update re-appends the vector with the new version
    prepended (the superseded copy becomes garbage that GC reclaims); when
    the vector is full its contents spill into an overflow vector and a
    fresh vector is started, so very old versions form a coarse-grained
    chain of vectors.

    Trade-off vs chains (measured by the ablation bench): reads of old
    snapshots touch far fewer pages; writes carry the vector's re-append
    amplification. All writes remain appends — the invalidation-free
    paradigm, visibility rules, indexing by VID, tombstone deletes and
    recovery-from-tuples are shared with SIAS-Chains. *)

include Engine.S

val vector_capacity : int
(** Versions held per vector before spilling (4 in this implementation). *)

type gc_stats = {
  collected_vectors : int;  (** garbage vector copies removed *)
  compacted_vectors : int;  (** vectors rewritten without dead versions *)
  reclaimed_pages : int;
}

val gc_stats : t -> gc_stats

val table_vidmap : t -> table -> Vidmap.t

val fetches_per_read : t -> float
(** Mean number of vector fetches a visibility resolution needed — the
    co-location payoff (compare with chain walk depth). *)
