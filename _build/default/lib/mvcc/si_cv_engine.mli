(** SI-CV: Snapshot Isolation with transaction-co-located versions — the
    authors' earlier placement strategy (paper reference [18], TPC-TC'12),
    included as a third baseline. Identical SI semantics and in-place
    invalidation; only version {e placement} differs: the versions a
    transaction writes are packed onto per-transaction open pages instead
    of being scattered by the free-space map, cutting the number of
    distinct pages a transaction dirties (but, unlike SIAS, the old
    versions' pages are still updated in place). *)

include Engine.S

val vacuum_stats : t -> int * int
(** (dead versions removed, pages scanned) by all {!gc} runs so far. *)
