lib/index/hashindex.ml: Hashtbl Int List
