lib/index/btree.ml: Array Bytes Hashtbl Int Int64 List Sias_storage
