lib/index/hashindex.mli:
