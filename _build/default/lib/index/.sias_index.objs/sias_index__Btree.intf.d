lib/index/btree.mli: Sias_storage
