type t = { table : (int, int list ref) Hashtbl.t; mutable entries : int }

let create () = { table = Hashtbl.create 1024; entries = 0 }

let insert t ~key ~payload =
  match Hashtbl.find_opt t.table key with
  | None ->
      Hashtbl.replace t.table key (ref [ payload ]);
      t.entries <- t.entries + 1
  | Some cell ->
      if not (List.mem payload !cell) then begin
        cell := payload :: !cell;
        t.entries <- t.entries + 1
      end

let delete t ~key ~payload =
  match Hashtbl.find_opt t.table key with
  | None -> false
  | Some cell ->
      if List.mem payload !cell then begin
        cell := List.filter (fun p -> p <> payload) !cell;
        t.entries <- t.entries - 1;
        if !cell = [] then Hashtbl.remove t.table key;
        true
      end
      else false

let lookup t ~key =
  match Hashtbl.find_opt t.table key with
  | None -> []
  | Some cell -> List.sort Int.compare !cell

let mem t ~key ~payload =
  match Hashtbl.find_opt t.table key with
  | None -> false
  | Some cell -> List.mem payload !cell

let entry_count t = t.entries
