(** In-memory hash index.

    Equality-only access path: ⟨key, payload⟩ with duplicate keys. The
    paper notes (Section 4.3) that hash indexes adapt to SIAS the same way
    B+ trees do — store the VID instead of the TID — and this module is
    used by the engines interchangeably with {!Btree} for equality
    lookups. *)

type t

val create : unit -> t
val insert : t -> key:int -> payload:int -> unit
(** Duplicate (key, payload) pairs are ignored. *)

val delete : t -> key:int -> payload:int -> bool
val lookup : t -> key:int -> int list
(** Payloads under [key], ascending. *)

val mem : t -> key:int -> payload:int -> bool
val entry_count : t -> int
