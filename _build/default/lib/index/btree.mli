(** Disk-backed B+ tree.

    Entries are (key, payload) integer pairs ordered lexicographically, so
    duplicate keys are supported naturally. Nodes are fixed-size images,
    one per buffer-pool page of the index relation; node modifications
    dirty their page, so index write traffic shows up on the simulated
    device exactly like heap traffic.

    This is the structure behind the paper's Section 4.3: the SI baseline
    indexes ⟨key, TID⟩ and must insert a new entry for {e every} new tuple
    version, while SIAS indexes ⟨key, VID⟩ and only touches the tree when
    the key value actually changes. Deletion is lazy (entries are removed,
    pages are never merged), as in PostgreSQL. *)

type t

val create : Sias_storage.Bufpool.t -> rel:int -> t
(** An empty tree storing its nodes in pages of relation [rel]. *)

val insert : t -> key:int -> payload:int -> unit
(** Duplicate (key, payload) pairs are ignored. *)

val delete : t -> key:int -> payload:int -> bool
(** Remove one exact entry; [false] when absent. *)

val lookup : t -> key:int -> int list
(** All payloads stored under [key], ascending. *)

val range : t -> lo:int -> hi:int -> (int * int) list
(** All entries with [lo <= key <= hi] in order. *)

val mem : t -> key:int -> payload:int -> bool

val entry_count : t -> int
val height : t -> int
val node_count : t -> int

type stats = { inserts : int; deletes : int; splits : int; lookups : int }

val stats : t -> stats

val iter : t -> (int -> int -> unit) -> unit
(** All entries in key order. *)
