(* Node image layout (fixed [image_size] bytes, one item per page):
     [0]      tag: 0 = leaf, 1 = internal
     [1..2]   n (u16): pairs in a leaf / separators in an internal node
     [3..10]  next-leaf block id + 1 (int64; 0 = none) — leaves only
     leaf:     n * (key int64, payload int64)
     internal: n * (sep_key int64, sep_payload int64), then (n+1) child
               block ids (int64)
   Separators are full (key, payload) pairs so that duplicate keys order
   deterministically across node boundaries. *)

let max_entries = 250
let image_size = 11 + (max_entries * 16) + ((max_entries + 1) * 8)

type node = {
  leaf : bool;
  mutable n : int;
  keys : int array; (* size max_entries *)
  payloads : int array;
  children : int array; (* size max_entries + 1; internal only *)
  mutable next_leaf : int; (* block id, -1 = none *)
}

type t = {
  pool : Sias_storage.Bufpool.t;
  rel : int;
  (* decoded-node cache: avoids re-decoding the fixed-size image on every
     access. Page I/O is still charged through the buffer pool; the cache
     only skips deserialization. Invalidated by node writes (same instance)
     and never shared across instances (recovery builds a fresh tree). *)
  cache : (int, node) Hashtbl.t;
  mutable root : int;
  mutable nblocks : int;
  mutable entries : int;
  mutable height : int;
  mutable inserts : int;
  mutable deletes : int;
  mutable splits : int;
  mutable lookups : int;
}


let blank_node ~leaf =
  {
    leaf;
    n = 0;
    keys = Array.make max_entries 0;
    payloads = Array.make max_entries 0;
    children = Array.make (max_entries + 1) (-1);
    next_leaf = -1;
  }

let encode node =
  let b = Bytes.make image_size '\000' in
  Bytes.set_uint8 b 0 (if node.leaf then 0 else 1);
  Bytes.set_uint16_le b 1 node.n;
  Bytes.set_int64_le b 3 (Int64.of_int (node.next_leaf + 1));
  let pos = ref 11 in
  for i = 0 to node.n - 1 do
    Bytes.set_int64_le b !pos (Int64.of_int node.keys.(i));
    Bytes.set_int64_le b (!pos + 8) (Int64.of_int node.payloads.(i));
    pos := !pos + 16
  done;
  if not node.leaf then
    for i = 0 to node.n do
      Bytes.set_int64_le b !pos (Int64.of_int node.children.(i));
      pos := !pos + 8
    done;
  b

let decode b =
  let leaf = Bytes.get_uint8 b 0 = 0 in
  let node = blank_node ~leaf in
  node.n <- Bytes.get_uint16_le b 1;
  node.next_leaf <- Int64.to_int (Bytes.get_int64_le b 3) - 1;
  let pos = ref 11 in
  for i = 0 to node.n - 1 do
    node.keys.(i) <- Int64.to_int (Bytes.get_int64_le b !pos);
    node.payloads.(i) <- Int64.to_int (Bytes.get_int64_le b (!pos + 8));
    pos := !pos + 16
  done;
  if not leaf then
    for i = 0 to node.n do
      node.children.(i) <- Int64.to_int (Bytes.get_int64_le b !pos);
      pos := !pos + 8
    done;
  node

let read_node t block =
  Sias_storage.Bufpool.with_page t.pool ~rel:t.rel ~block (fun page ->
      match Hashtbl.find_opt t.cache block with
      | Some node -> node
      | None -> (
          match Sias_storage.Page.read page 0 with
          | Some item ->
              let node = decode item in
              Hashtbl.replace t.cache block node;
              node
          | None -> failwith "Btree: missing node image"))

let write_node t block node =
  Hashtbl.replace t.cache block node;
  Sias_storage.Bufpool.with_page t.pool ~rel:t.rel ~block (fun page ->
      let item = encode node in
      let ok =
        if Sias_storage.Page.slot_count page = 0 then Sias_storage.Page.insert page item = Some 0
        else Sias_storage.Page.update page 0 item
      in
      if not ok then failwith "Btree: node image write failed";
      Sias_storage.Bufpool.mark_dirty t.pool ~rel:t.rel ~block)

let alloc_block t =
  let b = t.nblocks in
  t.nblocks <- b + 1;
  b

let create pool ~rel =
  let t =
    {
      pool;
      rel;
      cache = Hashtbl.create 256;
      root = 0;
      nblocks = 0;
      entries = 0;
      height = 1;
      inserts = 0;
      deletes = 0;
      splits = 0;
      lookups = 0;
    }
  in
  let root = alloc_block t in
  write_node t root (blank_node ~leaf:true);
  t.root <- root;
  t

(* Lexicographic pair comparison. *)
let cmp_pair k1 p1 k2 p2 =
  match Int.compare k1 k2 with 0 -> Int.compare p1 p2 | c -> c

(* First index whose (key,payload) is >= the probe; node.n if none. *)
let lower_bound node ~key ~payload =
  let lo = ref 0 and hi = ref node.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp_pair node.keys.(mid) node.payloads.(mid) key payload < 0 then lo := mid + 1
    else hi := mid
  done;
  !lo

(* Child to descend into: number of separators <= probe. *)
let child_index node ~key ~payload =
  let lo = ref 0 and hi = ref node.n in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if cmp_pair node.keys.(mid) node.payloads.(mid) key payload <= 0 then lo := mid + 1
    else hi := mid
  done;
  !lo

let shift_right a from upto =
  for i = upto downto from do
    a.(i + 1) <- a.(i)
  done

let insert_at node i ~key ~payload =
  shift_right node.keys i (node.n - 1);
  shift_right node.payloads i (node.n - 1);
  node.keys.(i) <- key;
  node.payloads.(i) <- payload;
  node.n <- node.n + 1

(* Split a full node in two; returns (separator pair, right block).
   For leaves the separator is the right node's first pair (it stays in
   the leaf); for internals the median moves up. *)
let split t block node =
  t.splits <- t.splits + 1;
  let right_block = alloc_block t in
  let right = blank_node ~leaf:node.leaf in
  if node.leaf then begin
    let mid = node.n / 2 in
    let moved = node.n - mid in
    Array.blit node.keys mid right.keys 0 moved;
    Array.blit node.payloads mid right.payloads 0 moved;
    right.n <- moved;
    right.next_leaf <- node.next_leaf;
    node.next_leaf <- right_block;
    node.n <- mid;
    write_node t block node;
    write_node t right_block right;
    ((right.keys.(0), right.payloads.(0)), right_block)
  end
  else begin
    let mid = node.n / 2 in
    let sep = (node.keys.(mid), node.payloads.(mid)) in
    let moved = node.n - mid - 1 in
    Array.blit node.keys (mid + 1) right.keys 0 moved;
    Array.blit node.payloads (mid + 1) right.payloads 0 moved;
    Array.blit node.children (mid + 1) right.children 0 (moved + 1);
    right.n <- moved;
    node.n <- mid;
    write_node t block node;
    write_node t right_block right;
    (sep, right_block)
  end

(* Returns [Some (sep, right)] when [block] split and the parent must
   absorb the separator. *)
let rec insert_rec t block ~key ~payload =
  let node = read_node t block in
  if node.leaf then begin
    let i = lower_bound node ~key ~payload in
    if i < node.n && cmp_pair node.keys.(i) node.payloads.(i) key payload = 0 then None
      (* duplicate pair: ignore *)
    else begin
      insert_at node i ~key ~payload;
      t.entries <- t.entries + 1;
      t.inserts <- t.inserts + 1;
      if node.n < max_entries then begin
        write_node t block node;
        None
      end
      else Some (split t block node)
    end
  end
  else begin
    let ci = child_index node ~key ~payload in
    match insert_rec t node.children.(ci) ~key ~payload with
    | None -> None
    | Some ((sk, sp), right_block) ->
        let i = child_index node ~key:sk ~payload:sp in
        shift_right node.children i node.n;
        insert_at node i ~key:sk ~payload:sp;
        node.children.(i + 1) <- right_block;
        if node.n < max_entries then begin
          write_node t block node;
          None
        end
        else Some (split t block node)
  end

let insert t ~key ~payload =
  match insert_rec t t.root ~key ~payload with
  | None -> ()
  | Some ((sk, sp), right_block) ->
      let new_root = blank_node ~leaf:false in
      new_root.n <- 1;
      new_root.keys.(0) <- sk;
      new_root.payloads.(0) <- sp;
      new_root.children.(0) <- t.root;
      new_root.children.(1) <- right_block;
      let rb = alloc_block t in
      write_node t rb new_root;
      t.root <- rb;
      t.height <- t.height + 1

let rec find_leaf t block ~key ~payload =
  let node = read_node t block in
  if node.leaf then (block, node)
  else find_leaf t node.children.(child_index node ~key ~payload) ~key ~payload

let lookup t ~key =
  t.lookups <- t.lookups + 1;
  let _, leaf = find_leaf t t.root ~key ~payload:min_int in
  let acc = ref [] in
  let continue = ref true in
  let node = ref leaf in
  let i = ref (lower_bound leaf ~key ~payload:min_int) in
  while !continue do
    if !i >= !node.n then
      if !node.next_leaf >= 0 then begin
        node := read_node t !node.next_leaf;
        i := 0
      end
      else continue := false
    else if !node.keys.(!i) = key then begin
      acc := !node.payloads.(!i) :: !acc;
      incr i
    end
    else if !node.keys.(!i) > key then continue := false
    else incr i
  done;
  List.rev !acc

let range t ~lo ~hi =
  t.lookups <- t.lookups + 1;
  if hi < lo then []
  else begin
    let _, leaf = find_leaf t t.root ~key:lo ~payload:min_int in
    let acc = ref [] in
    let continue = ref true in
    let node = ref leaf in
    let i = ref (lower_bound leaf ~key:lo ~payload:min_int) in
    while !continue do
      if !i >= !node.n then
        if !node.next_leaf >= 0 then begin
          node := read_node t !node.next_leaf;
          i := 0
        end
        else continue := false
      else if !node.keys.(!i) > hi then continue := false
      else begin
        acc := (!node.keys.(!i), !node.payloads.(!i)) :: !acc;
        incr i
      end
    done;
    List.rev !acc
  end

let mem t ~key ~payload =
  let _, leaf = find_leaf t t.root ~key ~payload in
  let i = lower_bound leaf ~key ~payload in
  i < leaf.n && cmp_pair leaf.keys.(i) leaf.payloads.(i) key payload = 0

let delete t ~key ~payload =
  let block, leaf = find_leaf t t.root ~key ~payload in
  let i = lower_bound leaf ~key ~payload in
  if i < leaf.n && cmp_pair leaf.keys.(i) leaf.payloads.(i) key payload = 0 then begin
    for j = i to leaf.n - 2 do
      leaf.keys.(j) <- leaf.keys.(j + 1);
      leaf.payloads.(j) <- leaf.payloads.(j + 1)
    done;
    leaf.n <- leaf.n - 1;
    write_node t block leaf;
    t.entries <- t.entries - 1;
    t.deletes <- t.deletes + 1;
    true
  end
  else false

let iter t f =
  let rec leftmost block =
    let node = read_node t block in
    if node.leaf then (block, node) else leftmost node.children.(0)
  in
  let _, leaf = leftmost t.root in
  let node = ref leaf in
  let continue = ref true in
  while !continue do
    for i = 0 to !node.n - 1 do
      f !node.keys.(i) !node.payloads.(i)
    done;
    if !node.next_leaf >= 0 then node := read_node t !node.next_leaf else continue := false
  done

let entry_count t = t.entries
let height t = t.height
let node_count t = t.nblocks

type stats = { inserts : int; deletes : int; splits : int; lookups : int }

let stats (t : t) =
  { inserts = t.inserts; deletes = t.deletes; splits = t.splits; lookups = t.lookups }
