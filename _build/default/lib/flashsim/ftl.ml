type write_cost = { programs : int; erases : int }

type t = {
  nand : Nand.t;
  logical_pages : int;
  gc_free_blocks : int;
  map : int array; (* lpn -> ppn, -1 when unmapped *)
  rev : int array; (* ppn -> lpn, -1 when not holding host data *)
  mutable active : int; (* block currently receiving programs *)
  free : int Queue.t; (* blocks with no programmed page *)
  mutable host_writes : int;
  mutable nand_writes : int;
  mutable erase_ops : int;
}

let create ?(overprovision = 0.1) ?(gc_free_blocks = 2) nand =
  if overprovision <= 0.0 || overprovision >= 1.0 then
    invalid_arg "Ftl.create: overprovision must be in (0,1)";
  let total = Nand.total_pages nand in
  let logical_pages = int_of_float (float_of_int total *. (1.0 -. overprovision)) in
  let free = Queue.create () in
  (* block 0 starts active; the rest are free *)
  for b = 1 to Nand.blocks nand - 1 do
    Queue.add b free
  done;
  if Queue.length free < gc_free_blocks + 1 then
    invalid_arg "Ftl.create: too few blocks for the GC watermark";
  {
    nand;
    logical_pages;
    gc_free_blocks;
    map = Array.make logical_pages (-1);
    rev = Array.make total (-1);
    active = 0;
    free;
    host_writes = 0;
    nand_writes = 0;
    erase_ops = 0;
  }

let logical_pages t = t.logical_pages
let page_size t = Nand.page_size t.nand

(* Program the next page of the active block, rotating to a fresh free
   block when the active one fills up. Returns the ppn programmed. *)
let rec program_next t lpn =
  match Nand.next_free_page t.nand t.active with
  | Some ppn ->
      Nand.program t.nand ppn;
      t.nand_writes <- t.nand_writes + 1;
      t.rev.(ppn) <- lpn;
      ppn
  | None ->
      (match Queue.take_opt t.free with
      | Some b -> t.active <- b
      | None -> failwith "Ftl: out of free blocks (GC watermark too low)");
      program_next t lpn

(* Greedy victim selection: fewest valid pages among full, non-active
   blocks, breaking ties toward the least-worn block (wear-aware greedy).
   Returns [None] when no candidate exists. *)
let pick_victim t =
  let nand = t.nand in
  let best = ref None in
  for b = 0 to Nand.blocks nand - 1 do
    if b <> t.active && Nand.free_count nand b = 0 then begin
      let v = Nand.valid_count nand b in
      let e = Nand.erase_count nand b in
      match !best with
      | Some (_, bv, be) when bv < v || (bv = v && be <= e) -> ()
      | _ -> best := Some (b, v, e)
    end
  done;
  match !best with Some (b, v, _) -> Some (b, v) | None -> None

let collect_block t victim =
  let nand = t.nand in
  let base = victim * Nand.pages_per_block nand in
  let moved = ref 0 in
  for i = 0 to Nand.pages_per_block nand - 1 do
    let ppn = base + i in
    if Nand.page_state nand ppn = Nand.Valid && t.rev.(ppn) >= 0 then begin
      let lpn = t.rev.(ppn) in
      Nand.invalidate nand ppn;
      t.rev.(ppn) <- -1;
      let fresh = program_next t lpn in
      t.map.(lpn) <- fresh;
      incr moved
    end
  done;
  Nand.erase_block nand victim;
  t.erase_ops <- t.erase_ops + 1;
  Queue.add victim t.free;
  !moved

(* Run GC until the free pool is back above the watermark. *)
let maybe_gc t =
  let programs = ref 0 and erases = ref 0 in
  let continue = ref true in
  while Queue.length t.free < t.gc_free_blocks && !continue do
    match pick_victim t with
    | None -> continue := false
    | Some (victim, _) ->
        programs := !programs + collect_block t victim;
        incr erases
  done;
  (!programs, !erases)

let write t lpn =
  if lpn < 0 || lpn >= t.logical_pages then invalid_arg "Ftl.write: lpn out of range";
  t.host_writes <- t.host_writes + 1;
  let old = t.map.(lpn) in
  if old >= 0 then begin
    Nand.invalidate t.nand old;
    t.rev.(old) <- -1
  end;
  let ppn = program_next t lpn in
  t.map.(lpn) <- ppn;
  let gc_programs, gc_erases = maybe_gc t in
  { programs = 1 + gc_programs; erases = gc_erases }

let read t lpn =
  if lpn < 0 || lpn >= t.logical_pages then invalid_arg "Ftl.read: lpn out of range";
  let ppn = t.map.(lpn) in
  if ppn < 0 then None else Some ppn

let trim t lpn =
  if lpn < 0 || lpn >= t.logical_pages then invalid_arg "Ftl.trim: lpn out of range";
  let old = t.map.(lpn) in
  if old >= 0 then begin
    Nand.invalidate t.nand old;
    t.rev.(old) <- -1;
    t.map.(lpn) <- -1
  end

let host_writes t = t.host_writes
let nand_writes t = t.nand_writes
let erases t = t.erase_ops

let write_amplification t =
  if t.host_writes = 0 then 1.0 else float_of_int t.nand_writes /. float_of_int t.host_writes

let nand t = t.nand
