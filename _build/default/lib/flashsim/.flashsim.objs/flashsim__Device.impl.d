lib/flashsim/device.ml: Array Blocktrace Ftl Hdd List Nand Printf Ssd Stdlib
