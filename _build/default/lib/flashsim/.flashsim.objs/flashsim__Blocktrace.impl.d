lib/flashsim/blocktrace.ml: Array Buffer List Printf Stdlib String
