lib/flashsim/ssd.ml: Blocktrace Ftl Nand Stdlib
