lib/flashsim/device.mli: Blocktrace Hdd Ssd
