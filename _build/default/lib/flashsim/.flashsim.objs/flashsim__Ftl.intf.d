lib/flashsim/ftl.mli: Nand
