lib/flashsim/noftl.ml: Array Blocktrace Device List Nand Stdlib
