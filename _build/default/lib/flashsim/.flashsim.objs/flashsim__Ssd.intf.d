lib/flashsim/ssd.mli: Blocktrace Ftl
