lib/flashsim/hdd.ml:
