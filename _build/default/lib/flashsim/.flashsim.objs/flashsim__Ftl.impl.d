lib/flashsim/ftl.ml: Array Nand Queue
