lib/flashsim/nand.ml: Array Stdlib
