lib/flashsim/hdd.mli: Blocktrace
