lib/flashsim/noftl.mli: Blocktrace Device
