lib/flashsim/nand.mli:
