lib/flashsim/blocktrace.mli:
