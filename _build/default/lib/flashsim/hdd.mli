(** Spinning-disk model (7200 rpm class, as the paper's Seagate
    ST3320613AS).

    Random access pays seek plus rotational latency; sequential access —
    a request starting where the previous one ended — pays only transfer
    time. Reads and writes are symmetric, which is exactly why SIAS's
    write reduction and append pattern still help on HDD (Section 5.4). *)

type config = {
  avg_seek_ms : float;
  rpm : int;
  transfer_mb_s : float;
  sequential_window : int;  (** sectors of slack still counted as sequential *)
}

val default_config : config

type t

val create : config -> t
val config : t -> config

val service_time : t -> Blocktrace.op -> sector:int -> bytes:int -> float
(** Service time in seconds; tracks head position across calls. *)
