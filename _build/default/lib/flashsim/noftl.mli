(** FTL-less Flash device (the paper's Discussion section and its
    reference [22], "NoFTL: database systems on FTL-less Flash storage").

    The device exposes the raw NAND geometry to the DBMS: logical pages
    map 1:1 to physical pages inside erase blocks, and there is {e no}
    on-device garbage collection — the DBMS must write whole erase-block
    regions append-wise and explicitly {!erase_region} when its own GC has
    relocated the remaining live data. In exchange, writes never suffer
    the FTL's unpredictable relocation stalls and the device needs no
    over-provisioning.

    An overwrite of a page whose erase block has not been erased first is
    a programming error (checked); sequential appends into erased regions
    are the intended use — exactly the pattern SIAS produces. The
    {!Harness}'s `noftl` ablation compares SIAS on this device against
    SIAS on the FTL device. *)

type config = {
  blocks : int;
  pages_per_block : int;
  page_size : int;
  read_us : float;
  program_us : float;
  erase_us : float;
  channels : int;
}

val default_config : ?blocks:int -> unit -> config
(** Same NAND timings as {!Ssd.x25e_config}, no over-provisioning. *)

type t

val create : config -> t
val config : t -> config
val capacity_bytes : t -> int

val service_time : t -> Blocktrace.op -> sector:int -> bytes:int -> float
(** An overwrite of a non-erased page costs a whole-block read-modify-
    write (read survivors, erase, reprogram) — the penalty an append-only
    DBMS never pays. *)

val erase_region : t -> sector:int -> float
(** Explicitly erase the erase-block containing [sector]; returns the
    erase latency. The DBMS GC calls this for reclaimed page regions. *)

val erases : t -> int
val programs : t -> int

val rmws : t -> int
(** Whole-block read-modify-writes caused by in-place overwrites. *)

val device :
  ?name:string -> ?blocks:int -> unit -> Device.t * (sector:int -> float)
(** A {!Device.t} wrapping a fresh NoFTL drive plus its erase entry point
    (device interfaces carry only read/write; erase is the out-of-band
    command the DBMS GC issues). *)
