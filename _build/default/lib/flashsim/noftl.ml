type config = {
  blocks : int;
  pages_per_block : int;
  page_size : int;
  read_us : float;
  program_us : float;
  erase_us : float;
  channels : int;
}

let default_config ?(blocks = 8192) () =
  {
    blocks;
    pages_per_block = 64;
    page_size = 4096;
    read_us = 75.0;
    program_us = 110.0;
    erase_us = 1500.0;
    channels = 8;
  }

type t = {
  config : config;
  nand : Nand.t;
  mutable programs : int;
  mutable erases : int;
  mutable rmws : int;
}

let create config =
  {
    config;
    nand =
      Nand.create ~blocks:config.blocks ~pages_per_block:config.pages_per_block
        ~page_size:config.page_size;
    programs = 0;
    erases = 0;
    rmws = 0;
  }

let config t = t.config
let capacity_bytes t = Nand.total_pages t.nand * t.config.page_size

let us = 1e-6

let page_range t ~sector ~bytes =
  let off = sector * 512 in
  let first = off / t.config.page_size in
  let last = (off + Stdlib.max 1 bytes - 1) / t.config.page_size in
  let total = Nand.total_pages t.nand in
  (first mod total, last mod total, last - first)

(* Direct mapping: logical page n IS physical page n. Programming a free
   page is a plain NAND program (in-order within the block, skipped pages
   are burned, like partial-page NAND use). Overwriting a non-erased page
   has no FTL to hide behind: the device must read the whole erase block,
   erase it and reprogram everything — the read-modify-write that makes
   in-place updates on raw Flash catastrophic and that an append-only
   DBMS never triggers. Returns the extra service time incurred. *)
let program_fresh t ppn =
  let block = ppn / t.config.pages_per_block in
  let rec skip () =
    match Nand.next_free_page t.nand block with
    | Some p when p < ppn ->
        Nand.program t.nand p;
        Nand.invalidate t.nand p;
        skip ()
    | _ -> ()
  in
  skip ();
  (match Nand.next_free_page t.nand block with
  | Some p when p = ppn -> Nand.program t.nand ppn
  | _ -> invalid_arg "Noftl: page not programmable");
  t.programs <- t.programs + 1

let program_page t ppn =
  match Nand.page_state t.nand ppn with
  | Nand.Free ->
      program_fresh t ppn;
      0.0
  | Nand.Valid | Nand.Invalid ->
      (* block read-modify-write *)
      let block = ppn / t.config.pages_per_block in
      let base = block * t.config.pages_per_block in
      let survivors = ref [] in
      for i = 0 to t.config.pages_per_block - 1 do
        let p = base + i in
        if p <> ppn && Nand.page_state t.nand p = Nand.Valid then begin
          survivors := p :: !survivors;
          Nand.invalidate t.nand p
        end
      done;
      if Nand.page_state t.nand ppn = Nand.Valid then Nand.invalidate t.nand ppn;
      Nand.erase_block t.nand block;
      t.erases <- t.erases + 1;
      t.rmws <- t.rmws + 1;
      (* reprogram survivors and the new data at their ORIGINAL positions
         (identity mapping); the in-between pages are burned *)
      let keep = List.sort_uniq compare (ppn :: !survivors) in
      let top = List.fold_left Stdlib.max ppn keep in
      for p = base to top do
        Nand.program t.nand p;
        if not (List.mem p keep) then Nand.invalidate t.nand p
      done;
      let reprogram = List.length keep in
      t.programs <- t.programs + reprogram;
      (float_of_int (List.length !survivors) *. t.config.read_us *. us)
      +. (t.config.erase_us *. us)
      +. (float_of_int reprogram *. t.config.program_us *. us)

let service_time t op ~sector ~bytes =
  let first, last, span = page_range t ~sector ~bytes in
  ignore span;
  let time = ref 0.0 in
  let p = ref first in
  let continue = ref true in
  while !continue do
    (match op with
    | Blocktrace.Read -> time := !time +. (t.config.read_us *. us)
    | Blocktrace.Write ->
        let extra = program_page t !p in
        time := !time +. extra +. (t.config.program_us *. us));
    if !p = last then continue := false
    else p := (!p + 1) mod Nand.total_pages t.nand
  done;
  !time

let erase_region t ~sector =
  let off = sector * 512 in
  let ppn = off / t.config.page_size mod Nand.total_pages t.nand in
  let block = ppn / t.config.pages_per_block in
  (* the DBMS asserts the data is dead; invalidate any leftover pages *)
  let base = block * t.config.pages_per_block in
  for i = 0 to t.config.pages_per_block - 1 do
    if Nand.page_state t.nand (base + i) = Nand.Valid then Nand.invalidate t.nand (base + i)
  done;
  if not (Nand.is_block_free t.nand block) then Nand.erase_block t.nand block;
  t.erases <- t.erases + 1;
  t.config.erase_us *. us

let erases t = t.erases
let programs t = t.programs
let rmws t = t.rmws

let device ?(name = "noftl") ?blocks () =
  let drive = create (default_config ?blocks ()) in
  let busy = Array.make drive.config.channels 0.0 in
  let submit_impl ~now op ~sector ~bytes =
    let best = ref 0 in
    for i = 1 to Array.length busy - 1 do
      if busy.(i) < busy.(!best) then best := i
    done;
    let start = Stdlib.max now busy.(!best) in
    let completion = start +. service_time drive op ~sector ~bytes in
    busy.(!best) <- completion;
    completion
  in
  let info_impl () =
    [
      ("programs", float_of_int drive.programs);
      ("erases", float_of_int drive.erases);
      ("block_rmws", float_of_int drive.rmws);
      ("max_block_wear", float_of_int (Nand.max_erase_count drive.nand));
    ]
  in
  let erase ~sector = erase_region drive ~sector in
  (Device.make ~name ~submit_impl ~info_impl (), erase)
