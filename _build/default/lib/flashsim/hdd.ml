type config = {
  avg_seek_ms : float;
  rpm : int;
  transfer_mb_s : float;
  sequential_window : int;
}

let default_config =
  { avg_seek_ms = 8.5; rpm = 7200; transfer_mb_s = 100.0; sequential_window = 256 }

type t = { config : config; mutable head : int }

let create config = { config; head = 0 }

let config t = t.config

let service_time t _op ~sector ~bytes =
  let c = t.config in
  let transfer = float_of_int bytes /. (c.transfer_mb_s *. 1024.0 *. 1024.0) in
  let distance = abs (sector - t.head) in
  let positioning =
    if distance <= c.sequential_window then 0.05e-3
    else begin
      let rotation = 60.0 /. float_of_int c.rpm in
      (c.avg_seek_ms *. 1e-3) +. (rotation /. 2.0)
    end
  in
  t.head <- sector + ((bytes + 511) / 512);
  positioning +. transfer
