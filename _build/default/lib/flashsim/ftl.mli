(** Page-mapped Flash Translation Layer.

    Host logical pages are mapped to NAND physical pages. Overwrites go
    out-of-place: the old physical page is invalidated and the data is
    programmed into the current active block. When the pool of free blocks
    drops below a watermark, greedy garbage collection picks the block with
    the fewest valid pages, relocates the survivors and erases it — this is
    the mechanism behind the Flash random-write penalty and the write
    amplification the paper's SI baseline suffers from.

    [write] and [read] return cost descriptors so the SSD layer can charge
    latency for the NAND operations (including the GC work a host write
    triggered). *)

type t

type write_cost = {
  programs : int;  (** NAND page programs, including GC relocations *)
  erases : int;  (** block erases triggered by this write *)
}

val create : ?overprovision:float -> ?gc_free_blocks:int -> Nand.t -> t
(** [create nand] builds an FTL over [nand]. [overprovision] (default
    [0.1]) is the fraction of physical capacity hidden from the host;
    [gc_free_blocks] (default [2]) is the free-block watermark that
    triggers garbage collection. *)

val logical_pages : t -> int
(** Number of logical pages exposed to the host. *)

val page_size : t -> int

val write : t -> int -> write_cost
(** [write t lpn] services a host write of one logical page. Raises
    [Invalid_argument] if [lpn] is out of range. *)

val read : t -> int -> int option
(** [read t lpn] is the physical page currently mapped, or [None] when the
    page has never been written. *)

val trim : t -> int -> unit
(** Discard a logical page; its physical page becomes garbage. *)

val host_writes : t -> int
val nand_writes : t -> int
val erases : t -> int

val write_amplification : t -> float
(** [nand_writes / host_writes]; 1.0 when no host write happened. *)

val nand : t -> Nand.t
