(** Raw NAND flash model.

    Geometry is blocks x pages-per-block with a fixed flash page size.
    The model enforces the physical constraints the FTL must respect:
    pages are programmed in order within a block, a programmed page cannot
    be re-programmed before its block is erased, and erasing a block that
    still holds valid pages is a bug (the FTL must relocate first).
    Erase counters per block provide the wear/endurance signal discussed
    in the paper's Flash-endurance section. *)

type page_state = Free | Valid | Invalid

type t

val create : blocks:int -> pages_per_block:int -> page_size:int -> t

val blocks : t -> int
val pages_per_block : t -> int
val page_size : t -> int
val total_pages : t -> int

val page_state : t -> int -> page_state
(** State of a physical page number (ppn). *)

val next_free_page : t -> int -> int option
(** [next_free_page t block] is the ppn of the next programmable page of
    [block], if the block is not full. *)

val program : t -> int -> unit
(** Program a physical page. Raises [Invalid_argument] if the page is not
    the next free page of its block. *)

val invalidate : t -> int -> unit
(** Mark a valid page invalid (out-of-place overwrite happened). *)

val valid_count : t -> int -> int
(** Valid pages in a block. *)

val free_count : t -> int -> int
(** Free (unprogrammed) pages in a block. *)

val is_block_free : t -> int -> bool
(** True when no page of the block is programmed. *)

val erase_block : t -> int -> unit
(** Erase a block; all its pages become [Free]. Raises
    [Invalid_argument] if the block still contains valid pages. *)

val erase_count : t -> int -> int
val total_erases : t -> int
val max_erase_count : t -> int
(** Worst per-block wear. *)
