(** Flash SSD model: NAND + FTL + asymmetric latencies.

    Latency defaults are enterprise-SLC class (Intel X25-E family, the
    device used in the paper's evaluation): reads are cheap, programs
    slower, erases much slower. A host write that triggers garbage
    collection is charged for the relocations and erases it caused, which
    produces exactly the unpredictable random-write behaviour the paper
    attributes to Flash. *)

type config = {
  page_size : int;  (** flash page size, bytes *)
  blocks : int;
  pages_per_block : int;
  overprovision : float;
  gc_free_blocks : int;
  read_us : float;  (** per flash page *)
  program_us : float;  (** per flash page *)
  erase_us : float;  (** per block *)
  channels : int;  (** independent request servers *)
}

val x25e_config : ?blocks:int -> unit -> config
(** SLC-class latency profile; [blocks] scales the capacity (default
    4096 blocks x 64 pages x 4 KB = 1 GiB physical). *)

type t

val create : config -> t

val config : t -> config
val ftl : t -> Ftl.t

val capacity_bytes : t -> int
(** Logical capacity exposed to the host. *)

val service_time : t -> Blocktrace.op -> sector:int -> bytes:int -> float
(** Service a request and return its device service time in seconds.
    Mutates FTL/NAND state for writes. *)

val trim : t -> sector:int -> bytes:int -> unit
(** Invalidate the flash pages backing a logical range (the ATA TRIM the
    DBMS GC issues for reclaimed pages). *)
