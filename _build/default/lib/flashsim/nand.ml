type page_state = Free | Valid | Invalid

type t = {
  blocks : int;
  pages_per_block : int;
  page_size : int;
  state : page_state array; (* indexed by ppn *)
  write_ptr : int array; (* next in-block page index to program, per block *)
  valid : int array; (* valid pages per block *)
  erases : int array;
  mutable total_erases : int;
}

let create ~blocks ~pages_per_block ~page_size =
  if blocks <= 0 || pages_per_block <= 0 || page_size <= 0 then
    invalid_arg "Nand.create: geometry must be positive";
  {
    blocks;
    pages_per_block;
    page_size;
    state = Array.make (blocks * pages_per_block) Free;
    write_ptr = Array.make blocks 0;
    valid = Array.make blocks 0;
    erases = Array.make blocks 0;
    total_erases = 0;
  }

let blocks t = t.blocks
let pages_per_block t = t.pages_per_block
let page_size t = t.page_size
let total_pages t = t.blocks * t.pages_per_block

let block_of t ppn = ppn / t.pages_per_block

let page_state t ppn = t.state.(ppn)

let next_free_page t block =
  let ptr = t.write_ptr.(block) in
  if ptr >= t.pages_per_block then None else Some ((block * t.pages_per_block) + ptr)

let program t ppn =
  let block = block_of t ppn in
  (match next_free_page t block with
  | Some expected when expected = ppn -> ()
  | _ -> invalid_arg "Nand.program: not the next free page of its block");
  t.state.(ppn) <- Valid;
  t.write_ptr.(block) <- t.write_ptr.(block) + 1;
  t.valid.(block) <- t.valid.(block) + 1

let invalidate t ppn =
  (match t.state.(ppn) with
  | Valid -> ()
  | Free | Invalid -> invalid_arg "Nand.invalidate: page is not valid");
  t.state.(ppn) <- Invalid;
  let block = block_of t ppn in
  t.valid.(block) <- t.valid.(block) - 1

let valid_count t block = t.valid.(block)
let free_count t block = t.pages_per_block - t.write_ptr.(block)
let is_block_free t block = t.write_ptr.(block) = 0

let erase_block t block =
  if t.valid.(block) > 0 then
    invalid_arg "Nand.erase_block: block still contains valid pages";
  let base = block * t.pages_per_block in
  for i = 0 to t.pages_per_block - 1 do
    t.state.(base + i) <- Free
  done;
  t.write_ptr.(block) <- 0;
  t.erases.(block) <- t.erases.(block) + 1;
  t.total_erases <- t.total_erases + 1

let erase_count t block = t.erases.(block)
let total_erases t = t.total_erases

let max_erase_count t = Array.fold_left Stdlib.max 0 t.erases
