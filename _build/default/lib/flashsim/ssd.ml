type config = {
  page_size : int;
  blocks : int;
  pages_per_block : int;
  overprovision : float;
  gc_free_blocks : int;
  read_us : float;
  program_us : float;
  erase_us : float;
  channels : int;
}

let x25e_config ?(blocks = 4096) () =
  {
    page_size = 4096;
    blocks;
    pages_per_block = 64;
    overprovision = 0.1;
    gc_free_blocks = 2;
    read_us = 75.0;
    program_us = 110.0;
    erase_us = 1500.0;
    channels = 8;
  }

type t = { config : config; ftl : Ftl.t }

let create config =
  let nand =
    Nand.create ~blocks:config.blocks ~pages_per_block:config.pages_per_block
      ~page_size:config.page_size
  in
  let ftl =
    Ftl.create ~overprovision:config.overprovision ~gc_free_blocks:config.gc_free_blocks nand
  in
  { config; ftl }

let config t = t.config
let ftl t = t.ftl
let capacity_bytes t = Ftl.logical_pages t.ftl * t.config.page_size

let us = 1e-6

(* Logical flash pages covered by a byte range starting at a sector. *)
let lpn_range t ~sector ~bytes =
  let off = sector * 512 in
  let first = off / t.config.page_size in
  let last = (off + Stdlib.max 1 bytes - 1) / t.config.page_size in
  (first, last)

let service_time t op ~sector ~bytes =
  let first, last = lpn_range t ~sector ~bytes in
  let logical = Ftl.logical_pages t.ftl in
  let time = ref 0.0 in
  for lpn = first to last do
    (* wrap rather than fail if the workload outgrows the device *)
    let lpn = lpn mod logical in
    match op with
    | Blocktrace.Read ->
        ignore (Ftl.read t.ftl lpn);
        time := !time +. (t.config.read_us *. us)
    | Blocktrace.Write ->
        let cost = Ftl.write t.ftl lpn in
        time :=
          !time
          +. (float_of_int cost.Ftl.programs *. t.config.program_us *. us)
          +. (float_of_int cost.Ftl.erases *. t.config.erase_us *. us)
  done;
  !time

let trim t ~sector ~bytes =
  let first, last = lpn_range t ~sector ~bytes in
  let logical = Ftl.logical_pages t.ftl in
  for lpn = first to last do
    Ftl.trim t.ftl (lpn mod logical)
  done
