lib/harness/experiments.mli: Flashsim Format Sias_storage Tpcc
