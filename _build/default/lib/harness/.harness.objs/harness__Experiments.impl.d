lib/harness/experiments.ml: Flashsim Format List Mvcc Sias_storage Tpcc
