(* Write skew: the classic Snapshot Isolation anomaly (two doctors both
   going off call because each saw the other still on call), and the
   serializable-SI extension that prevents it — the paper's related work
   [10]/[28], layered here over the SIAS-Chains engine.

     dune exec examples/serializable.exe
*)

module E = Mvcc.Sias_engine
module SSI = Mvcc.Ssi.Make (Mvcc.Sias_engine)
module Value = Mvcc.Value
module Db = Mvcc.Db

let on_call = 1
let set_off r =
  let r = Array.copy r in
  r.(1) <- Value.Int 0;
  r

let doctors_on_call read =
  (* both rows start on call *)
  List.length (List.filter (fun k -> Value.int (read k).(1) = on_call) [ 1; 2 ])

let () =
  (* --- plain Snapshot Isolation: the anomaly commits --- *)
  let db = Db.create () in
  let eng = E.create db in
  let t = E.create_table eng ~name:"doctors" ~pk_col:0 () in
  let txn = E.begin_txn eng in
  E.insert eng txn t [| Value.Int 1; Value.Int on_call |] |> Result.get_ok;
  E.insert eng txn t [| Value.Int 2; Value.Int on_call |] |> Result.get_ok;
  E.commit eng txn;
  let t1 = E.begin_txn eng in
  let t2 = E.begin_txn eng in
  (* each doctor checks that the OTHER is still on call... *)
  ignore (E.read eng t1 t ~pk:2);
  ignore (E.read eng t2 t ~pk:1);
  (* ...and goes off call *)
  E.update eng t1 t ~pk:1 set_off |> Result.get_ok;
  E.update eng t2 t ~pk:2 set_off |> Result.get_ok;
  E.commit eng t1;
  E.commit eng t2;
  let txn = E.begin_txn eng in
  let n =
    doctors_on_call (fun k -> Option.get (E.read eng txn t ~pk:k))
  in
  E.commit eng txn;
  Format.printf "plain SI:  both commits succeed, %d doctor(s) on call (write skew!)@." n;

  (* --- serializable SI: the pivot is aborted --- *)
  let db = Db.create () in
  let ssi = SSI.create db in
  let t = SSI.create_table ssi ~name:"doctors" ~pk_col:0 () in
  let txn = SSI.begin_txn ssi in
  SSI.insert ssi txn t [| Value.Int 1; Value.Int on_call |] |> Result.get_ok;
  SSI.insert ssi txn t [| Value.Int 2; Value.Int on_call |] |> Result.get_ok;
  SSI.commit ssi txn |> Result.get_ok;
  let t1 = SSI.begin_txn ssi in
  let t2 = SSI.begin_txn ssi in
  ignore (SSI.read ssi t1 t ~pk:2);
  ignore (SSI.read ssi t2 t ~pk:1);
  SSI.update ssi t1 t ~pk:1 set_off |> Result.get_ok;
  SSI.update ssi t2 t ~pk:2 set_off |> Result.get_ok;
  let r1 = SSI.commit ssi t1 in
  let r2 = SSI.commit ssi t2 in
  let show = function Ok () -> "committed" | Error _ -> "ABORTED (serialization)" in
  Format.printf "SSI:       T1 %s, T2 %s@." (show r1) (show r2);
  let txn = SSI.begin_txn ssi in
  let n = doctors_on_call (fun k -> Option.get (SSI.read ssi txn t ~pk:k)) in
  ignore (SSI.commit ssi txn);
  Format.printf "SSI:       %d doctor(s) still on call — the invariant holds@." n
