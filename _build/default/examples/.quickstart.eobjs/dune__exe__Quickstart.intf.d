examples/quickstart.mli:
