examples/bank_transfer.ml: Array Format Mvcc Result Sias_util
