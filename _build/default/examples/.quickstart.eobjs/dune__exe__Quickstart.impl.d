examples/quickstart.ml: Array Flashsim Format List Mvcc Result Sias_storage
