examples/time_travel.ml: Array Format List Mvcc Result
