examples/serializable.mli:
