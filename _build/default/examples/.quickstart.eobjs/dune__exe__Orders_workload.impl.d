examples/orders_workload.ml: Harness List Sias_util Tpcc
