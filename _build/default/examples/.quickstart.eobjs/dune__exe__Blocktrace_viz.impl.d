examples/blocktrace_viz.ml: Flashsim Format Harness
