examples/serializable.ml: Array Format List Mvcc Option Result
