examples/orders_workload.mli:
