examples/blocktrace_viz.mli:
