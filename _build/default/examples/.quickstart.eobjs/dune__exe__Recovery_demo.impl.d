examples/recovery_demo.ml: Array Format Mvcc Result Sias_storage
