(* Benchmark harness: regenerates every table and figure of the paper's
   evaluation (Section 5) plus ablation benches for the design choices
   called out in DESIGN.md.

     dune exec bench/main.exe                 -- all experiments, quick mode
     dune exec bench/main.exe -- table1       -- one experiment
     dune exec bench/main.exe -- --full all   -- paper-scale parameters

   Absolute numbers are not expected to match the paper (the substrate is
   a simulator, not the authors' testbed); the shapes are: who wins, by
   roughly what factor, where the crossovers fall. EXPERIMENTS.md records
   paper-vs-measured for each artifact. *)

open Harness.Experiments
module W = Tpcc.Tpcc_workload
module T = Sias_util.Tablefmt
module B = Flashsim.Blocktrace

let full = ref false

(* --bench-out / --bench-baseline: machine-readable results (BENCH_5.json) *)
let bench_out : string option ref = ref None
let bench_baseline : string option ref = ref None

(* per-engine (metric, value) rows collected by the micro bench *)
let micro_results : (string * (string * float) list) list ref = ref []

(* per-configuration (metric, value) rows collected by the repl bench *)
let repl_results : (string * (string * float) list) list ref = ref []

(* per engine/level (metric, value) rows collected by the isolation bench *)
let isolation_results : (string * (string * float) list) list ref = ref []

(* per engine/configuration (metric, value) rows from the index bench;
   gate failures accumulate so the process can exit non-zero at the end *)
let index_results : (string * (string * float) list) list ref = ref []
let index_gate_failures = ref 0

(* per engine/domain-count (metric, value) rows from the multicore bench;
   violations accumulate so the process can exit non-zero at the end *)
let multicore_results : (string * (string * float) list) list ref = ref []
let multicore_violations = ref 0

let section title =
  Printf.printf "\n============================================================\n";
  Printf.printf "%s\n" title;
  Printf.printf "============================================================\n%!"

let note fmt = Printf.printf (fmt ^^ "\n%!")

(* ------------------------------------------------------------------ *)
(* Table 1: write amount (MB) and reduction, SI vs SIAS-t1 vs SIAS-t2  *)

let table1 () =
  section "Table 1: Write Amount (MB) and Reduction (%) -- TPC-C 100 WH, SSD";
  let durations = if !full then [ 600.0; 900.0; 1800.0 ] else [ 60.0; 120.0 ] in
  let base =
    {
      (default_setup ~engine:"si" ~warehouses:100) with
      buffer_pages = 4096;
      gc_interval_s = Some 30.0;
      keep_trace_records = false;
    }
  in
  let tbl =
    T.create [ "Time(sec.)"; "SI"; "SIAS-t1"; "SIAS-t2"; "Red t1"; "Red t2" ]
  in
  let spaces = ref [] in
  List.iter
    (fun duration_s ->
      let cell engine flush =
        run_tpcc
          { base with engine; flush; duration_s; checkpoint_interval_s = duration_s /. 2.0 }
      in
      let si = cell "si" T1 in
      let t1 = cell "sias" T1 in
      let t2 = cell "sias" T2 in
      spaces := (duration_s, si, t1, t2) :: !spaces;
      let red x = 1.0 -. (x.run_write_mb /. si.run_write_mb) in
      T.add_row tbl
        [
          T.fmt_float ~decimals:0 duration_s;
          T.fmt_float ~decimals:1 si.run_write_mb;
          T.fmt_float ~decimals:1 t1.run_write_mb;
          T.fmt_float ~decimals:1 t2.run_write_mb;
          T.fmt_pct (red t1);
          T.fmt_pct (red t2);
        ])
    durations;
  T.print tbl;
  (match !spaces with
  | (_, si, t1, t2) :: _ ->
      note "space consumption (longest run): SI %.1f MB | SIAS-t1 %.1f MB | SIAS-t2 %.1f MB"
        si.space_mb t1.space_mb t2.space_mb;
      note "SIAS-t2 page fill %.0f%% vs SIAS-t1 %.0f%% (t1 seals sparse pages early)"
        (100.0 *. t2.avg_fill) (100.0 *. t1.avg_fill);
      note "paper: 65%% reduction at t1, 97%% at t2; t2 space -12%% vs t1"
  | [] -> ())

(* ------------------------------------------------------------------ *)
(* Table 2: TPC-C on HDD -- throughput (NOTPM) and response time (sec) *)

let table2 () =
  section "Table 2: TPC-C on HDD -- NOTPM and response time (sec.)";
  let whs = if !full then [ 30; 40; 50; 60; 75; 100 ] else [ 30; 50; 75 ] in
  let run engine warehouses =
    run_tpcc
      {
        (default_setup ~engine ~warehouses) with
        device = Hdd_single;
        buffer_pages = 4096;
        duration_s = (if !full then 120.0 else 60.0);
        gc_interval_s = Some 30.0;
      }
  in
  let cells = List.map (fun wh -> (wh, run "sias" wh, run "si" wh)) whs in
  let tbl = T.create ("Warehouses" :: List.map string_of_int whs) in
  let row name get = T.add_row tbl (name :: List.map get cells) in
  row "SIAS (NOTPM)" (fun (_, sias, _) -> T.fmt_float ~decimals:0 sias.result.W.notpm);
  row "SI (NOTPM)" (fun (_, _, si) -> T.fmt_float ~decimals:0 si.result.W.notpm);
  row "SIAS (sec.)" (fun (_, sias, _) ->
      T.fmt_float ~decimals:3 (W.resp_mean sias.result W.New_order));
  row "SI (sec.)" (fun (_, _, si) ->
      T.fmt_float ~decimals:3 (W.resp_mean si.result W.New_order));
  T.print tbl;
  note "paper: SIAS throughput rises with WHs while SI decays; SI response";
  note "times explode (11.7 s at 30 WH to 123 s at 100 WH), SIAS stays responsive."

(* ------------------------------------------------------------------ *)
(* Figures 3 and 4: blocktraces                                         *)

let figure_blocktrace engine figure_name paper_note =
  section
    (Printf.sprintf "%s: blocktrace -- %s -- SSD, 100 WH, %s" figure_name
       (engine_name engine)
       (if !full then "300 sec." else "60 sec."));
  let o =
    run_tpcc
      {
        (default_setup ~engine ~warehouses:100) with
        buffer_pages = 4096;
        duration_s = (if !full then 300.0 else 60.0);
        gc_interval_s = Some 30.0;
        keep_trace_records = true;
      }
  in
  print_endline (B.render_scatter o.trace);
  let reads = B.read_count o.trace and writes = B.write_count o.trace in
  note "reads %d (%.1f MB) | writes %d (%.1f MB) | %.0f%% of requests are reads" reads
    o.run_read_mb writes o.run_write_mb
    (100.0 *. float_of_int reads /. float_of_int (max 1 (reads + writes)));
  note "write sequentiality %.0f%% | read sequentiality %.0f%%"
    (100.0 *. B.sequentiality o.trace B.Write)
    (100.0 *. B.sequentiality o.trace B.Read);
  note "%s" paper_note

let figure3 () =
  figure_blocktrace "sias" "Figure 3"
    "paper: almost only read access; appends form per-relation swimlanes"

let figure4 () =
  figure_blocktrace "si" "Figure 4"
    "paper: read and write access mixed; writes scattered across the relations"

(* ------------------------------------------------------------------ *)
(* Figures 5 and 6: throughput/response vs warehouses on SSD RAIDs      *)

let sweep ~device ~buffer_pages ~whs ~duration_s =
  List.map
    (fun warehouses ->
      let run engine =
        run_tpcc
          {
            (default_setup ~engine ~warehouses) with
            device;
            buffer_pages;
            duration_s;
            scale_div = 300;
            gc_interval_s = Some 30.0;
          }
      in
      (warehouses, run "sias", run "si"))
    whs

let print_sweep cells =
  let tbl =
    T.create
      [ "WH"; "SIAS NOTPM"; "SI NOTPM"; "SIAS resp(s)"; "SI resp(s)"; "SIAS W MB"; "SI W MB" ]
  in
  List.iter
    (fun (wh, sias, si) ->
      T.add_row tbl
        [
          string_of_int wh;
          T.fmt_float ~decimals:0 sias.result.W.notpm;
          T.fmt_float ~decimals:0 si.result.W.notpm;
          T.fmt_float ~decimals:3 (W.resp_mean sias.result W.New_order);
          T.fmt_float ~decimals:3 (W.resp_mean si.result W.New_order);
          T.fmt_float ~decimals:1 sias.run_write_mb;
          T.fmt_float ~decimals:1 si.run_write_mb;
        ])
    cells;
  T.print tbl;
  let peak get =
    List.fold_left
      (fun (bw, bn) (wh, sias, si) ->
        let n = get (sias, si) in
        if n > bn then (wh, n) else (bw, bn))
      (0, 0.0) cells
  in
  let sias_wh, sias_n = peak (fun (sias, _) -> sias.result.W.notpm) in
  let si_wh, si_n = peak (fun (_, si) -> si.result.W.notpm) in
  note "peaks: SIAS %.0f NOTPM @ %d WH | SI %.0f NOTPM @ %d WH" sias_n sias_wh si_n si_wh

let figure5 () =
  section "Figure 5: TPC-C on a two-SSD RAID-0 -- throughput vs warehouses";
  let whs =
    if !full then [ 50; 100; 200; 300; 400; 450; 500; 530; 600 ] else [ 50; 150; 300; 450 ]
  in
  print_sweep
    (sweep ~device:(Ssd_raid 2) ~buffer_pages:3072 ~whs
       ~duration_s:(if !full then 120.0 else 60.0));
  note "paper: SIAS sustains higher throughput as WHs grow (+30%% at the top)"

let figure6 () =
  section "Figure 6: TPC-C on a six-SSD RAID-0 -- throughput and response time";
  let whs =
    if !full then [ 100; 200; 300; 400; 450; 500; 530; 600 ] else [ 100; 300; 450; 530 ]
  in
  print_sweep
    (sweep ~device:(Ssd_raid 6) ~buffer_pages:6144 ~whs
       ~duration_s:(if !full then 120.0 else 60.0));
  note "paper: SI peaks at 450 WH (4862 NOTPM, 4.8 s resp.); SIAS peaks at";
  note "530 WH (6182 NOTPM, 3.3 s resp.) -- about 30%% more throughput."

(* ------------------------------------------------------------------ *)
(* Ablations (not in the paper's tables; design choices of DESIGN.md)  *)

let ablation_scan () =
  section "Ablation: SIAS scan via VID_map vs traditional relation scan (Sec. 4.2.1)";
  let module E = Mvcc.Sias_engine in
  let db = Mvcc.Db.create ~buffer_pages:256 () in
  let eng = E.create db in
  let table = E.create_table eng ~name:"t" ~pk_col:0 () in
  let txn = E.begin_txn eng in
  for k = 1 to 5_000 do
    E.insert eng txn table [| Mvcc.Value.Int k; Mvcc.Value.Str (String.make 60 'x') |]
    |> Result.get_ok
  done;
  E.commit eng txn |> Result.get_ok;
  (* version bloat: update a third of the items a few times *)
  for _ = 1 to 3 do
    let txn = E.begin_txn eng in
    for k = 1 to 5_000 do
      if k mod 3 = 0 then E.update eng txn table ~pk:k (fun r -> r) |> Result.get_ok
    done;
    E.commit eng txn |> Result.get_ok
  done;
  Sias_storage.Bufpool.flush_all db.Mvcc.Db.pool ~sync:false;
  let clock = db.Mvcc.Db.clock in
  let time_scan scan =
    let t0 = Sias_util.Simclock.now clock in
    let txn = E.begin_txn eng in
    let n = scan eng txn table (fun _ -> ()) in
    E.commit eng txn |> Result.get_ok;
    (n, Sias_util.Simclock.now clock -. t0)
  in
  let n1, t_vid = time_scan E.scan_vidmap in
  let n2, t_trad = time_scan E.scan_traditional in
  note "vidmap scan:      %d rows in %.4f simulated s" n1 t_vid;
  note "traditional scan: %d rows in %.4f simulated s (%.1fx slower)" n2 t_trad
    (t_trad /. Float.max 1e-9 t_vid);
  note "the traditional scan fetches every tuple version and re-resolves each"

let ablation_vectors () =
  section
    "Ablation: version placement -- SI (FSM) vs SI-CV ([18]) vs SIAS-Chains vs SIAS-V";
  let run engine =
    run_tpcc
      {
        (default_setup ~engine ~warehouses:20) with
        duration_s = 30.0;
        buffer_pages = 1024;
        gc_interval_s = Some 30.0;
      }
  in
  let tbl = T.create [ "variant"; "NOTPM"; "writes MB"; "reads MB"; "space MB" ] in
  List.iter
    (fun engine ->
      let o = run engine in
      T.add_row tbl
        [
          engine_name engine;
          T.fmt_float ~decimals:0 o.result.W.notpm;
          T.fmt_float o.run_write_mb;
          T.fmt_float o.run_read_mb;
          T.fmt_float o.space_mb;
        ])
    [ "si"; "si-cv"; "sias"; "sias-v" ];
  T.print tbl;
  note "SI-CV co-locates a transaction's new versions (fewer dirty pages than";
  note "FSM placement) but keeps in-place invalidation; SIAS removes it entirely.";
  note "SIAS-V trades vector re-append amplification for single-fetch reads."

let ablation_gc () =
  section "Ablation: SIAS garbage collection on/off -- space and version bloat";
  (* long, update-heavy run: enough version churn for page decay *)
  let run gc =
    run_tpcc
      {
        (default_setup ~engine:"sias" ~warehouses:10) with
        duration_s = (if !full then 300.0 else 120.0);
        buffer_pages = 1024;
        think_time_s = 0.2;
        gc_interval_s = gc;
      }
  in
  let without = run None in
  let with_gc = run (Some 10.0) in
  note "gc off:        space %.1f MB, page fill %.0f%%" without.space_mb
    (100.0 *. without.avg_fill);
  note "gc every 10 s: space %.1f MB, page fill %.0f%%" with_gc.space_mb
    (100.0 *. with_gc.avg_fill);
  note "paper (Sec. 6): GC re-inserts live versions of victim pages and discards";
  note "dead ones; reclamation is a TRIM, not a write."

let ablation_noftl () =
  section "Ablation: NoFTL -- append pattern on raw Flash (paper Discussion, [22])";
  let module N = Flashsim.Noftl in
  let module B = Flashsim.Blocktrace in
  let budget = 4096 in
  (* SIAS-like: strict appends + explicit region erases by the DBMS *)
  let append = N.create (N.default_config ~blocks:128 ()) in
  let t_append = ref 0.0 in
  let pages = 127 * 64 in
  for i = 0 to budget - 1 do
    let page = i mod pages in
    if page mod 64 = 0 && i >= pages then
      t_append := !t_append +. N.erase_region append ~sector:(page * 8);
    t_append := !t_append +. N.service_time append B.Write ~sector:(page * 8) ~bytes:4096
  done;
  (* SI-like: scattered in-place rewrites of a hot region *)
  let inplace = N.create (N.default_config ~blocks:128 ()) in
  let rng = Sias_util.Rng.create 11 in
  let t_inplace = ref 0.0 in
  for _ = 0 to budget - 1 do
    let page = Sias_util.Rng.int rng 512 in
    t_inplace := !t_inplace +. N.service_time inplace B.Write ~sector:(page * 8) ~bytes:4096
  done;
  let tbl = T.create [ "pattern"; "service time (s)"; "erases"; "block RMWs"; "max wear" ] in
  T.add_row tbl
    [ "append + DBMS erase"; T.fmt_float ~decimals:4 !t_append;
      string_of_int (N.erases append); string_of_int (N.rmws append); "-" ];
  T.add_row tbl
    [ "in-place rewrites"; T.fmt_float ~decimals:4 !t_inplace;
      string_of_int (N.erases inplace); string_of_int (N.rmws inplace); "-" ];
  T.print tbl;
  note "on FTL-less Flash the append discipline is ~%.0fx cheaper and wears the"
    (!t_inplace /. Float.max 1e-9 !t_append);
  note "device far less; GC-driven erases are deterministic, not device background work"

let ablation_vidmap () =
  section "Ablation: VID_map residency -- in-memory vs paged through the buffer pool";
  let run vidmap_paged =
    run_tpcc
      {
        (default_setup ~engine:"sias" ~warehouses:50) with
        duration_s = 30.0;
        buffer_pages = 1024;
        gc_interval_s = Some 30.0;
        vidmap_paged;
      }
  in
  let mem = run false in
  let paged = run true in
  note "in-memory VID_map: %.0f NOTPM, reads %.1f MB, writes %.1f MB" mem.result.W.notpm
    mem.run_read_mb mem.run_write_mb;
  note "paged VID_map:     %.0f NOTPM, reads %.1f MB, writes %.1f MB" paged.result.W.notpm
    paged.run_read_mb paged.run_write_mb;
  note "paper 4.1.3: on large databases the map spills to disk through the";
  note "ordinary buffer machinery; bucket pages then compete for frames."

let ablation_endurance () =
  section "Ablation: Flash endurance -- device-level wear under SI vs SIAS (Sec. 6)";
  let run engine =
    run_tpcc
      {
        (default_setup ~engine ~warehouses:50) with
        (* a small drive (256 MB physical) so the cumulative write volume
           turns the device over several times and its GC must work *)
        device = Ssd_sized 1024;
        duration_s = (if !full then 300.0 else 90.0);
        buffer_pages = 2048;
        gc_interval_s = Some 30.0;
      }
  in
  let tbl =
    T.create [ "engine"; "host writes"; "NAND writes"; "WA"; "erases"; "max block wear" ]
  in
  List.iter
    (fun engine ->
      let o = run engine in
      let get k = try List.assoc k o.device_info with Not_found -> 0.0 in
      T.add_row tbl
        [
          engine_name engine;
          T.fmt_float ~decimals:0 (get "host_writes");
          T.fmt_float ~decimals:0 (get "nand_writes");
          T.fmt_float ~decimals:2 (get "write_amplification");
          T.fmt_float ~decimals:0 (get "erases");
          T.fmt_float ~decimals:0 (get "max_block_wear");
        ])
    [ "si"; "sias" ];
  T.print tbl;
  note "SIAS's append pattern + TRIM of reclaimed pages leaves the FTL almost";
  note "nothing to relocate: fewer erases and lower peak wear per unit of work";
  note "(paper Sec. 6: the I/O pattern suggests increased Flash endurance)."

let ablation_contention () =
  section "Contention: conflict policies -- TPC-C 1 WH, 8 terminals, retries 5, SI checker on";
  let module C = Sias_txn.Contention in
  let tbl =
    T.create
      [ "engine"; "policy"; "NOTPM"; "conflicts"; "retries"; "give-ups"; "victims"; "SI check" ]
  in
  List.iter
    (fun engine ->
      List.iter
        (fun policy ->
          let o =
            run_tpcc
              {
                (default_setup ~engine ~warehouses:1) with
                duration_s = (if !full then 60.0 else 10.0);
                buffer_pages = 1024;
                scale_div = 300;
                terminals_per_warehouse = 8;
                think_time_s = 0.2;
                gc_interval_s = Some 30.0;
                contention = { C.default_settings with C.policy };
                retries = 5;
                check_si = true;
              }
          in
          let r = o.result in
          let sum get = List.fold_left (fun t (_, ks) -> t + get ks) 0 r.W.per_kind in
          let cs = o.contention_stats in
          let verdict =
            match o.checker with
            | Some c when Mvcc.Sichecker.violation_count c = 0 -> "OK"
            | Some c ->
                Printf.sprintf "%d VIOLATIONS" (Mvcc.Sichecker.violation_count c)
            | None -> "-"
          in
          T.add_row tbl
            [
              engine_name engine;
              C.policy_to_string policy;
              T.fmt_float ~decimals:0 r.W.notpm;
              string_of_int (sum (fun ks -> ks.W.conflicts));
              string_of_int (sum (fun ks -> ks.W.retries));
              string_of_int (sum (fun ks -> ks.W.gave_ups));
              string_of_int cs.C.victim_aborts;
              verdict;
            ])
        C.all_policies)
    [ "si"; "si-cv"; "sias"; "sias-v" ];
  T.print tbl;
  note "the driver is a serial discrete-event loop: transactions never overlap, so";
  note "client-visible conflicts stay at zero and every policy agrees; policies and";
  note "the retry loop differentiate under the interleaved-transaction test suite."

let ablation_groupcommit () =
  section
    "Commit pipeline: sync vs group vs async -- TPC-C 1 WH, WAL on its own SSD";
  let modes =
    [ ("sync", true, 0.0); ("group", true, 0.0007); ("async", false, 0.0) ]
  in
  let terminal_counts = if !full then [ 8; 16; 32 ] else [ 8; 16 ] in
  let tbl =
    T.create
      [
        "engine"; "terms"; "mode"; "NOTPM"; "resp(ms)"; "fsyncs"; "saved";
        "max grp"; "walwr"; "WAL MB";
      ]
  in
  List.iter
    (fun engine ->
      List.iter
        (fun terminals ->
          List.iter
            (fun (label, sync_commit, delay) ->
              let o =
                run_tpcc
                  {
                    (default_setup ~engine ~warehouses:1) with
                    duration_s = 30.0;
                    buffer_pages = 4096;
                    scale_div = 300;
                    terminals_per_warehouse = terminals;
                    (* saturation regime: terminals pile up inside the
                       commit window, so sharing the fsync pays *)
                    think_time_s = 0.005;
                    gc_interval_s = Some 30.0;
                    synchronous_commit = sync_commit;
                    commit_delay_s = delay;
                    wal_device = Some Ssd_single;
                  }
              in
              let cs = o.commit_stats in
              T.add_row tbl
                [
                  engine_name engine;
                  string_of_int terminals;
                  label;
                  T.fmt_float ~decimals:0 o.result.W.notpm;
                  T.fmt_float ~decimals:2
                    (1000.0 *. W.resp_mean o.result W.New_order);
                  string_of_int cs.Sias_wal.Commitpipe.commit_fsyncs;
                  string_of_int cs.Sias_wal.Commitpipe.fsyncs_saved;
                  string_of_int cs.Sias_wal.Commitpipe.max_group;
                  string_of_int cs.Sias_wal.Commitpipe.walwriter_flushes;
                  T.fmt_float ~decimals:1 o.wal_write_mb;
                ])
            modes)
        terminal_counts)
    [ "si"; "si-cv"; "sias"; "sias-v" ];
  T.print tbl;
  note "group: commits arriving within commit_delay share one fsync and are";
  note "charged its completion; async: commit acks at WAL append and the";
  note "WAL-writer trickle bounds the loss window (never corruption).";
  note "postgres: commit_delay / synchronous_commit=off, on a simulated SSD."

let ablation_repl () =
  section
    "Replication: standby lag vs commit_delay -- TPC-C 1 WH, lossy WAL-shipping link";
  let module R = Sias_repl.Repl in
  let delays = if !full then [ 0.0; 0.0005; 0.002 ] else [ 0.0; 0.002 ] in
  let tbl =
    T.create
      [
        "engine"; "mode"; "delay(ms)"; "NOTPM"; "shipped"; "installed"; "lag";
        "retrans"; "degraded"; "drops";
      ]
  in
  List.iter
    (fun engine ->
      List.iter
        (fun (mode : R.mode) ->
          List.iter
            (fun delay ->
              let o =
                run_tpcc
                  {
                    (default_setup ~engine ~warehouses:1) with
                    duration_s = (if !full then 30.0 else 10.0);
                    buffer_pages = 4096;
                    scale_div = 300;
                    terminals_per_warehouse = 8;
                    think_time_s = 0.005;
                    gc_interval_s = Some 30.0;
                    commit_delay_s = delay;
                    wal_device = Some Ssd_single;
                    repl_mode = Some mode;
                    repl_link = Sias_repl.Link.lossy;
                  }
              in
              let rs = Option.get o.repl_stats in
              T.add_row tbl
                [
                  engine_name engine;
                  rs.R.mode_label;
                  T.fmt_float ~decimals:2 (1000.0 *. delay);
                  T.fmt_float ~decimals:0 o.result.W.notpm;
                  string_of_int rs.R.shipped_records;
                  string_of_int rs.R.installed_records;
                  string_of_int rs.R.lag_records;
                  string_of_int rs.R.retransmits;
                  string_of_int rs.R.degraded_acks;
                  string_of_int rs.R.link_dropped;
                ];
              repl_results :=
                !repl_results
                @ [
                    ( Printf.sprintf "%s/%s/delay%gms" engine rs.R.mode_label
                        (1000.0 *. delay),
                      [
                        ("notpm", o.result.W.notpm);
                        ("shipped_records", float_of_int rs.R.shipped_records);
                        ( "installed_records",
                          float_of_int rs.R.installed_records );
                        ("lag_records", float_of_int rs.R.lag_records);
                        ("retransmits", float_of_int rs.R.retransmits);
                        ("degraded_acks", float_of_int rs.R.degraded_acks);
                        ("link_dropped", float_of_int rs.R.link_dropped);
                      ] );
                  ])
            delays)
        [ R.Ship_async; R.Remote_flush ])
    [ "si"; "si-cv"; "sias"; "sias-v" ];
  T.print tbl;
  note "async ships after local fsync: commits never wait, lag is whatever the";
  note "lossy link and go-back-N leave outstanding. remote-flush makes the";
  note "commit (or the whole commit group, under commit_delay) wait for the";
  note "standby flush ack, so one round-trip amortizes across the group:";
  note "larger delay -> fewer round-trips -> higher NOTPM on a lossy link,";
  note "at zero standby lag. degraded counts commits acked locally after";
  note "retry exhaustion."

(* ------------------------------------------------------------------ *)
(* bench isolation: si vs ssi vs wsi across the engine registry        *)

(* Two legs per (engine, level) cell.

   Anomaly leg: a seeded pairwise write-skew loop (two concurrent
   transactions each read both counters, one writes one of them) with the
   online serializability checker attached. Under plain SI the committed
   history contains rw-antidependency cycles -- the checker's cycle count
   is the anomaly rate. Under ssi/wsi the cell must show ZERO cycles: the
   level converts each would-be anomaly into a serialization abort, which
   we report as the abort rate.

   Throughput leg: a short TPC-C run at the level, so the JSON records
   the overhead delta (NOTPM, aborts) of serializability tracking vs the
   same engine at plain SI. The TPC-C driver is a serial discrete-event
   loop, so the delta isolates tracking cost (SIREAD bookkeeping CPU),
   not abort churn. *)

let ablation_isolation () =
  section
    "Isolation: si vs ssi vs wsi -- anomaly rate, abort rate, NOTPM (4 engines)";
  let module V = Mvcc.Value in
  let module Db = Mvcc.Db in
  let anomaly_leg engine level =
    let _, (module E : Mvcc.Engine.S) = Mvcc.Engine.resolve_exn engine in
    let bus = Sias_obs.Bus.create () in
    let db =
      Db.create ~bus ~isolation:(Mvcc.Isolation.of_string_exn level) ()
    in
    let ck = Mvcc.Sichecker.attach bus in
    let eng = E.create db in
    let table = E.create_table eng ~name:"t" ~pk_col:0 () in
    let txn = E.begin_txn eng in
    E.insert eng txn table [| V.Int 1; V.Int 100_000 |] |> Result.get_ok;
    E.insert eng txn table [| V.Int 2; V.Int 100_000 |] |> Result.get_ok;
    E.commit eng txn |> Result.get_ok;
    let rng = Sias_util.Rng.create 17 in
    let rounds = if !full then 400 else 120 in
    let committed = ref 0 and aborted = ref 0 in
    for _ = 1 to rounds do
      let t1 = E.begin_txn eng in
      let t2 = E.begin_txn eng in
      let attempt t =
        let v1 = V.int (Option.get (E.read eng t table ~pk:1)).(1) in
        let v2 = V.int (Option.get (E.read eng t table ~pk:2)).(1) in
        let amount = 1 + Sias_util.Rng.int rng 5 in
        let pk = 1 + Sias_util.Rng.int rng 2 in
        if v1 + v2 - amount >= 0 then
          ignore
            (E.update eng t table ~pk (fun r ->
                 let r = Array.copy r in
                 r.(1) <- V.Int ((if pk = 1 then v1 else v2) - amount);
                 r))
      in
      attempt t1;
      attempt t2;
      (match E.commit eng t1 with
      | Ok () -> incr committed
      | Error _ -> incr aborted);
      match E.commit eng t2 with
      | Ok () -> incr committed
      | Error _ -> incr aborted
    done;
    let mgr = Db.ssimgr db in
    let stat f = match mgr with None -> 0 | Some m -> f m in
    ( Mvcc.Sichecker.cycle_count ck,
      !committed,
      !aborted,
      stat Mvcc.Ssimgr.lineage_edges,
      stat Mvcc.Ssimgr.table_edges )
  in
  let tpcc_leg engine level =
    run_tpcc
      {
        (default_setup ~engine ~warehouses:1) with
        isolation = level;
        duration_s = (if !full then 30.0 else 10.0);
        buffer_pages = 1024;
        scale_div = 300;
        terminals_per_warehouse = 4;
        think_time_s = 0.2;
        gc_interval_s = Some 30.0;
        check_si = true;
      }
  in
  let tbl =
    T.create
      [
        "engine"; "level"; "anomalies"; "ser aborts"; "abort%"; "NOTPM";
        "dNOTPM%"; "lin-edges"; "tbl-edges"; "checker";
      ]
  in
  let gate_failures = ref 0 in
  List.iter
    (fun engine ->
      let si_notpm = ref 0.0 in
      List.iter
        (fun level ->
          let cycles, committed, aborted, lin, tab =
            anomaly_leg engine level
          in
          let o = tpcc_leg engine level in
          let notpm = o.result.W.notpm in
          if level = "si" then si_notpm := notpm;
          let delta =
            if level = "si" || !si_notpm <= 0.0 then 0.0
            else 100.0 *. (notpm -. !si_notpm) /. !si_notpm
          in
          let abort_pct =
            100.0 *. float_of_int aborted
            /. float_of_int (max 1 (committed + aborted))
          in
          (* acceptance gates: si must exhibit the anomaly, the
             serializable levels must not, and the TPC-C run must stay
             checker-clean at every level *)
          if level = "si" && cycles = 0 then incr gate_failures;
          if level <> "si" && cycles > 0 then incr gate_failures;
          let tpcc_cycles =
            match o.checker with
            | Some c ->
                if Mvcc.Sichecker.violation_count c > 0 then
                  incr gate_failures;
                if level <> "si" && Mvcc.Sichecker.cycle_count c > 0 then
                  incr gate_failures;
                Mvcc.Sichecker.cycle_count c
            | None -> 0
          in
          T.add_row tbl
            [
              engine_name engine;
              level;
              string_of_int cycles;
              string_of_int aborted;
              T.fmt_float ~decimals:1 abort_pct;
              T.fmt_float ~decimals:0 notpm;
              T.fmt_float ~decimals:1 delta;
              string_of_int lin;
              string_of_int tab;
              (if tpcc_cycles = 0 then "OK"
               else Printf.sprintf "%d cycles" tpcc_cycles);
            ];
          isolation_results :=
            !isolation_results
            @ [
                ( engine ^ "/" ^ level,
                  [
                    ("anomaly_cycles", float_of_int cycles);
                    ("serialization_aborts", float_of_int aborted);
                    ("abort_rate_pct", abort_pct);
                    ("notpm", notpm);
                    ("notpm_delta_vs_si_pct", delta);
                    ( "tpcc_aborted",
                      float_of_int o.result.W.total_aborted );
                    ("lineage_edges", float_of_int lin);
                    ("table_edges", float_of_int tab);
                  ] );
              ])
        [ "si"; "ssi"; "wsi" ])
    [ "si"; "si-cv"; "sias"; "sias-v" ];
  T.print tbl;
  note "anomalies = rw-antidependency cycles the online checker found in the";
  note "COMMITTED history of the write-skew loop: nonzero under plain si (the";
  note "write skew really commits), zero under ssi (pivot aborts) and wsi";
  note "(read-set certification) -- the serialization aborts are the price.";
  note "lin-edges vs tbl-edges: on sias/sias-v the rw edges ride the co-located";
  note "version lineage the visibility walk already traverses; the si engines";
  note "fall back to probing the SIREAD writes table. dNOTPM%% is the tracking";
  note "overhead vs the same engine at plain si (serial driver: pure CPU cost).";
  if !gate_failures > 0 then begin
    note "";
    note "ISOLATION GATE FAILED: %d violation(s) -- si must show anomalies on"
      !gate_failures;
    note "write skew, ssi/wsi must show none, and TPC-C must stay checker-clean.";
    exit 1
  end

(* ------------------------------------------------------------------ *)
(* bench index: paged B+Tree write amplification + buffer pressure     *)

(* The index write-amplification chapter. Two legs:

   Beyond-RAM leg: every engine on the paged, WAL-logged B+Tree at a
   warehouse count whose heap + index working set exceeds the buffer
   pool, with the page-flush classifier splitting device writes into
   index-page vs heap traffic. Index write amplification = MB of index
   pages flushed / MB of logical entry volume (insertions x 16 bytes).
   The append engines must not lose their headline: SIAS/SIAS-V total
   device writes stay <= SI on the same run, or the bench exits
   non-zero.

   Buffer-pressure leg: the same run across shrinking pools. As frames
   get scarce, index pages compete with heap pages for residency and
   the index share of the write traffic grows -- the figure the paged
   design pays for crash-recoverable indexes with. *)

let ablation_index () =
  section
    "Index: paged WAL-logged B+Tree -- write amplification, beyond-RAM TPC-C";
  let run ~engine ~index ~buffer_pages =
    run_tpcc
      {
        (default_setup ~engine ~warehouses:20) with
        index;
        measure_index_io = true;
        buffer_pages;
        duration_s = (if !full then 120.0 else 30.0);
        gc_interval_s = Some 30.0;
        keep_trace_records = false;
      }
  in
  let tbl =
    T.create
      [
        "engine"; "NOTPM"; "W MB"; "ix W MB"; "heap W MB"; "ix logical";
        "ix WA"; "splits"; "merges"; "height";
      ]
  in
  let si_write_mb = ref 0.0 in
  List.iter
    (fun engine ->
      let o = run ~engine ~index:"paged" ~buffer_pages:512 in
      let io = Option.get o.index_io in
      let wa = io.ix_flush_mb /. Float.max 1e-9 io.ix_logical_mb in
      if engine = "si" then si_write_mb := o.run_write_mb;
      (* the paper's headline must survive the paged index: the append
         engines cannot write more to the device than SI on this run *)
      if
        (engine = "sias" || engine = "sias-v")
        && o.run_write_mb > !si_write_mb +. 0.05
      then begin
        incr index_gate_failures;
        note "!! %s wrote %.1f MB > SI's %.1f MB with the paged index" engine
          o.run_write_mb !si_write_mb
      end;
      T.add_row tbl
        [
          engine_name engine;
          T.fmt_float ~decimals:0 o.result.W.notpm;
          T.fmt_float ~decimals:1 o.run_write_mb;
          T.fmt_float ~decimals:2 io.ix_flush_mb;
          T.fmt_float ~decimals:2 io.heap_flush_mb;
          T.fmt_float ~decimals:2 io.ix_logical_mb;
          T.fmt_float ~decimals:2 wa;
          string_of_int io.ix_splits;
          string_of_int io.ix_merges;
          string_of_int io.ix_height;
        ];
      index_results :=
        !index_results
        @ [
            ( engine ^ "/paged",
              [
                ("notpm", o.result.W.notpm);
                ("device_write_mb", o.run_write_mb);
                ("device_read_mb", o.run_read_mb);
                ("index_flush_mb", io.ix_flush_mb);
                ("index_flush_pages", float_of_int io.ix_flush_count);
                ("heap_flush_mb", io.heap_flush_mb);
                ("index_logical_mb", io.ix_logical_mb);
                ("index_write_amplification", wa);
                ("index_entries", float_of_int io.ix_entries);
                ("index_nodes", float_of_int io.ix_nodes);
                ("index_height", float_of_int io.ix_height);
                ("index_splits", float_of_int io.ix_splits);
                ("index_merges", float_of_int io.ix_merges);
              ] );
          ])
    [ "si"; "si-cv"; "sias"; "sias-v" ];
  T.print tbl;
  note "ix WA = index MB flushed / logical entry MB: slotted 8 KB pages";
  note "re-flushed across checkpoints amplify each 16-byte entry; the array";
  note "index writes nothing (rebuilt from the heap) but loses crash recovery.";
  (* array-vs-paged device-write delta on one append engine, same run *)
  let arr = run ~engine:"sias-v" ~index:"array" ~buffer_pages:512 in
  let arr_io = Option.get arr.index_io in
  note "";
  note "sias-v array index, same run: %.0f NOTPM, %.1f MB written (ix %.2f MB)"
    arr.result.W.notpm arr.run_write_mb arr_io.ix_flush_mb;
  index_results :=
    !index_results
    @ [
        ( "sias-v/array",
          [
            ("notpm", arr.result.W.notpm);
            ("device_write_mb", arr.run_write_mb);
            ("index_flush_mb", arr_io.ix_flush_mb);
            ("heap_flush_mb", arr_io.heap_flush_mb);
          ] );
      ];
  (* buffer-pressure sweep: index share of the writes vs pool size *)
  let buffers = if !full then [ 256; 512; 1024; 2048; 4096 ] else [ 256; 1024; 4096 ] in
  let tbl =
    T.create [ "buffer pages"; "NOTPM"; "ix W MB"; "heap W MB"; "ix share %" ]
  in
  List.iter
    (fun buffer_pages ->
      let o = run ~engine:"sias-v" ~index:"paged" ~buffer_pages in
      let io = Option.get o.index_io in
      let share =
        100.0 *. io.ix_flush_mb
        /. Float.max 1e-9 (io.ix_flush_mb +. io.heap_flush_mb)
      in
      T.add_row tbl
        [
          string_of_int buffer_pages;
          T.fmt_float ~decimals:0 o.result.W.notpm;
          T.fmt_float ~decimals:2 io.ix_flush_mb;
          T.fmt_float ~decimals:2 io.heap_flush_mb;
          T.fmt_float ~decimals:1 share;
        ];
      index_results :=
        !index_results
        @ [
            ( Printf.sprintf "sias-v/paged/buf%d" buffer_pages,
              [
                ("buffer_pages", float_of_int buffer_pages);
                ("notpm", o.result.W.notpm);
                ("index_flush_mb", io.ix_flush_mb);
                ("heap_flush_mb", io.heap_flush_mb);
                ("index_write_share_pct", share);
              ] );
          ])
    buffers;
  T.print tbl;
  note "shrinking the pool forces index pages out through the same bgwriter/";
  note "checkpoint machinery as heap pages: the index share of device writes";
  note "is the residency price of a crash-recoverable index."

(* ------------------------------------------------------------------ *)
(* bench micro: wall-clock ops/sec on the engine hot paths             *)

(* Unlike everything above, these measure host wall time, not simulated
   time: they exist to prove the hot-path data structures (hint bits,
   array CLOG, binary-search snapshots, fixed-slot vectors) got faster.
   Simulated results are byte-identical by construction; wall clock is
   where the win shows. --bench-out writes BENCH_5.json; --bench-baseline
   embeds a pre-change run's JSON and prints the speedups. *)

(* CLOCK_MONOTONIC, not [Unix.gettimeofday]: wall-of-day steps under NTP
   slew/step, so a timed window could be negative or wildly long and a
   "peak rate" could be fiction. The monotonic clock cannot go back. *)
let wall = Sias_util.Monotime.now

(* Best-of-trials peak rate: short timed windows, keep the fastest. The
   max filters out bursty interference from a shared host, which a single
   long window folds into the mean. [batch] returns its op count. *)
let time_ops ~min_time batch =
  ignore (batch ());
  let trials = if !full then 12 else 6 in
  let window = Float.max 0.05 (min_time /. float_of_int trials) in
  let best = ref 0.0 in
  for _ = 1 to trials do
    let t0 = wall () in
    let ops = ref 0 in
    while wall () -. t0 < window do
      ops := !ops + batch ()
    done;
    let rate = float_of_int !ops /. Float.max 1e-9 (wall () -. t0) in
    if rate > !best then best := rate
  done;
  !best

let micro_engine key (module E : Mvcc.Engine.S) =
  let module V = Mvcc.Value in
  let min_time = if !full then 2.0 else 0.4 in
  let rng = Sias_util.Rng.create 99 in
  (* plain table: point reads, scans, updates *)
  let db = Mvcc.Db.create ~buffer_pages:4096 () in
  let eng = E.create db in
  let plain = E.create_table eng ~name:"plain" ~pk_col:0 () in
  let n_plain = 2_000 in
  let txn = E.begin_txn eng in
  for k = 1 to n_plain do
    E.insert eng txn plain [| V.Int k; V.Str (String.make 40 'p') |] |> Result.get_ok
  done;
  E.commit eng txn |> Result.get_ok;
  let reader = E.begin_txn eng in
  let point_read =
    time_ops ~min_time (fun () ->
        for _ = 1 to 256 do
          ignore (E.read eng reader plain ~pk:(1 + Sias_util.Rng.int rng n_plain))
        done;
        256)
  in
  let scan = time_ops ~min_time (fun () -> E.scan eng reader plain (fun _ -> ())) in
  E.commit eng reader |> Result.get_ok;
  let update =
    time_ops ~min_time (fun () ->
        let txn = E.begin_txn eng in
        let ok = ref 0 in
        for _ = 1 to 64 do
          match
            E.update eng txn plain ~pk:(1 + Sias_util.Rng.int rng n_plain) (fun r -> r)
          with
          | Ok () -> incr ok
          | Error _ -> ()
        done;
        E.commit eng txn |> Result.get_ok;
        !ok)
  in
  (* paged B+Tree probes: the same hot paths routed through the
     WAL-logged slotted-page index instead of the in-memory array tree
     (decode-on-access, buffer-pool pins, WAL-first inserts) *)
  let db = Mvcc.Db.create ~buffer_pages:4096 ~index:`Paged () in
  let eng_p = E.create db in
  let paged = E.create_table eng_p ~name:"paged" ~pk_col:0 () in
  let n_paged = 2_000 in
  let txn = E.begin_txn eng_p in
  for k = 1 to n_paged do
    E.insert eng_p txn paged [| V.Int k; V.Str (String.make 40 'q') |]
    |> Result.get_ok
  done;
  E.commit eng_p txn |> Result.get_ok;
  let reader = E.begin_txn eng_p in
  let btree_point =
    time_ops ~min_time (fun () ->
        for _ = 1 to 256 do
          ignore (E.read eng_p reader paged ~pk:(1 + Sias_util.Rng.int rng n_paged))
        done;
        256)
  in
  let btree_range =
    time_ops ~min_time (fun () ->
        let lo = 1 + Sias_util.Rng.int rng (n_paged - 128) in
        List.length (E.range_pk eng_p reader paged ~lo ~hi:(lo + 127)))
  in
  E.commit eng_p reader |> Result.get_ok;
  let next_key = ref (n_paged + 1) in
  let btree_insert =
    time_ops ~min_time (fun () ->
        let txn = E.begin_txn eng_p in
        for _ = 1 to 64 do
          E.insert eng_p txn paged [| V.Int !next_key; V.Str "i" |]
          |> Result.get_ok;
          incr next_key
        done;
        E.commit eng_p txn |> Result.get_ok;
        64)
  in
  (* visibility-heavy scan: deep version history read under snapshots
     with a large concurrent set -- the hot path the hint bits, array
     CLOG and binary-search snapshots attack *)
  let db = Mvcc.Db.create ~buffer_pages:8192 () in
  let eng = E.create db in
  let hot = E.create_table eng ~name:"hot" ~pk_col:0 () in
  let n_hot = 400 in
  let txn = E.begin_txn eng in
  for k = 1 to n_hot do
    E.insert eng txn hot [| V.Int k; V.Str (String.make 24 'h') |] |> Result.get_ok
  done;
  E.commit eng txn |> Result.get_ok;
  (* deep version history, half of it from aborted writers: a scan must
     reject every aborted and superseded version it meets *)
  for round = 1 to 24 do
    let txn = E.begin_txn eng in
    for k = 1 to n_hot do
      E.update eng txn hot ~pk:k (fun r -> r) |> Result.get_ok
    done;
    if round land 1 = 0 then E.abort eng txn else E.commit eng txn |> Result.get_ok
  done;
  (* a crowd of transactions stays open so every snapshot carries a big
     concurrent set, and the crowd keeps the CLOG busy *)
  let crowd = List.init 2_000 (fun _ -> E.begin_txn eng) in
  let reader = E.begin_txn eng in
  ignore (E.scan eng reader hot (fun _ -> ()));
  let vis_scan = time_ops ~min_time (fun () -> E.scan eng reader hot (fun _ -> ())) in
  E.commit eng reader |> Result.get_ok;
  List.iter (fun t -> E.abort eng t) crowd;
  (* the simulated headline number, for the record *)
  let t0 = wall () in
  let o =
    run_tpcc
      {
        (default_setup ~engine:key ~warehouses:2) with
        duration_s = 10.0;
        buffer_pages = 1024;
        scale_div = 300;
        gc_interval_s = Some 30.0;
      }
  in
  let tpcc_wall = wall () -. t0 in
  [
    ("point_read_ops_per_s", point_read);
    ("scan_rows_per_s", scan);
    ("update_ops_per_s", update);
    ("btree_point_lookup_ops_per_s", btree_point);
    ("btree_range_scan_rows_per_s", btree_range);
    ("btree_insert_ops_per_s", btree_insert);
    ("visibility_scan_rows_per_s", vis_scan);
    ("notpm", o.result.W.notpm);
    ("tpcc_wall_s", tpcc_wall);
  ]

(* Engine-independent visibility check: the bare isVisible predicate
   against a populated transaction manager -- CLOG representation and
   snapshot membership with nothing else on the path. *)
let micro_core_results : (string * float) list ref = ref []

let micro_core () =
  let module Txn = Sias_txn.Txn in
  let min_time = if !full then 2.0 else 0.4 in
  let mgr = Txn.create_mgr () in
  let n = 20_000 in
  let xids = Array.init n (fun _ -> Txn.begin_txn mgr) in
  Array.iteri
    (fun i t -> if i land 3 = 3 then Txn.abort mgr t else Txn.commit mgr t)
    xids;
  let crowd = List.init 2_000 (fun _ -> Txn.begin_txn mgr) in
  let reader = Txn.begin_txn mgr in
  let rng = Sias_util.Rng.create 7 in
  let rate =
    time_ops ~min_time (fun () ->
        let hits = ref 0 in
        for _ = 1 to 1024 do
          if Txn.visible mgr reader.Txn.snapshot (1 + Sias_util.Rng.int rng n) then
            incr hits
        done;
        1024)
  in
  Txn.commit mgr reader;
  List.iter (fun t -> Txn.abort mgr t) crowd;
  micro_core_results := [ ("visibility_check_ops_per_s", rate) ];
  note "isVisible predicate (20k xids, 2k concurrent): %.0f checks/s" rate

(* Pull ["<engine>": {... "<field>": <num> ...}] out of a baseline JSON
   with plain string scanning -- no JSON dependency for one float. *)
let baseline_field ~json ~engine ~field =
  let find_from pos needle =
    let n = String.length needle and len = String.length json in
    let rec go i =
      if i + n > len then None
      else if String.sub json i n = needle then Some (i + n)
      else go (i + 1)
    in
    go pos
  in
  match find_from 0 (Printf.sprintf "%S: {" engine) with
  | None -> None
  | Some p -> (
      match find_from p (Printf.sprintf "%S: " field) with
      | None -> None
      | Some q ->
          let r = ref q in
          let len = String.length json in
          while !r < len && not (List.mem json.[!r] [ ','; '}'; '\n' ]) do
            incr r
          done;
          float_of_string_opt (String.trim (String.sub json q (!r - q))))

let micro () =
  section "Micro-benchmarks: wall-clock ops/sec on the engine hot paths";
  micro_core ();
  let engines = Mvcc.Engine.all () in
  micro_results :=
    List.map (fun (key, m) -> (key, micro_engine key m)) engines;
  let tbl =
    T.create
      [ "engine"; "point read/s"; "scan rows/s"; "update/s"; "vis-scan rows/s"; "NOTPM" ]
  in
  List.iter
    (fun (key, fields) ->
      let get f = List.assoc f fields in
      T.add_row tbl
        [
          engine_name key;
          T.fmt_float ~decimals:0 (get "point_read_ops_per_s");
          T.fmt_float ~decimals:0 (get "scan_rows_per_s");
          T.fmt_float ~decimals:0 (get "update_ops_per_s");
          T.fmt_float ~decimals:0 (get "visibility_scan_rows_per_s");
          T.fmt_float ~decimals:0 (get "notpm");
        ])
    !micro_results;
  T.print tbl;
  let tbl =
    T.create
      [ "engine (paged B+Tree)"; "point lookup/s"; "range rows/s"; "insert/s" ]
  in
  List.iter
    (fun (key, fields) ->
      let get f = List.assoc f fields in
      T.add_row tbl
        [
          engine_name key;
          T.fmt_float ~decimals:0 (get "btree_point_lookup_ops_per_s");
          T.fmt_float ~decimals:0 (get "btree_range_scan_rows_per_s");
          T.fmt_float ~decimals:0 (get "btree_insert_ops_per_s");
        ])
    !micro_results;
  T.print tbl;
  match !bench_baseline with
  | None -> ()
  | Some path ->
      let ic = open_in path in
      let json = really_input_string ic (in_channel_length ic) in
      close_in ic;
      note "\nspeedup vs baseline (%s):" path;
      (match
         ( baseline_field ~json ~engine:"core" ~field:"visibility_check_ops_per_s",
           !micro_core_results )
       with
      | Some base, [ (_, now) ] when base > 0.0 ->
          note "  %-12s isVisible predicate   %.2fx (%.0f -> %.0f checks/s)" "core"
            (now /. base) base now
      | _ -> ());
      List.iter
        (fun (key, fields) ->
          match baseline_field ~json ~engine:key ~field:"visibility_scan_rows_per_s" with
          | Some base when base > 0.0 ->
              let now = List.assoc "visibility_scan_rows_per_s" fields in
              note "  %-12s visibility-heavy scan %.2fx (%.0f -> %.0f rows/s)"
                (engine_name key) (now /. base) base now
          | _ -> note "  %-12s (no baseline figure)" (engine_name key))
        !micro_results

(* BENCH_5.json: micro results (when the micro bench ran), the run's
   total wall time, and the embedded baseline if one was given. *)
let write_bench_json ~wall_s =
  match !bench_out with
  | None -> ()
  | Some path ->
      let buf = Buffer.create 4096 in
      Buffer.add_string buf "{\n";
      Buffer.add_string buf
        (Printf.sprintf "  \"bench\": \"sias micro\",\n  \"mode\": %S,\n"
           (if !full then "full" else "quick"));
      Buffer.add_string buf (Printf.sprintf "  \"wall_time_s\": %.2f,\n" wall_s);
      Buffer.add_string buf "  \"engines\": {";
      List.iteri
        (fun i (key, fields) ->
          if i > 0 then Buffer.add_char buf ',';
          Buffer.add_string buf (Printf.sprintf "\n    %S: {" key);
          List.iteri
            (fun j (f, v) ->
              if j > 0 then Buffer.add_char buf ',';
              Buffer.add_string buf (Printf.sprintf "\n      %S: %.1f" f v))
            fields;
          Buffer.add_string buf "\n    }")
        !micro_results;
      Buffer.add_string buf "\n  }";
      if !micro_core_results <> [] then begin
        Buffer.add_string buf ",\n  \"core\": {";
        List.iteri
          (fun j (f, v) ->
            if j > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (Printf.sprintf "\n    %S: %.1f" f v))
          !micro_core_results;
        Buffer.add_string buf "\n  }"
      end;
      if !repl_results <> [] then begin
        Buffer.add_string buf ",\n  \"repl\": {";
        List.iteri
          (fun i (key, fields) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (Printf.sprintf "\n    %S: {" key);
            List.iteri
              (fun j (f, v) ->
                if j > 0 then Buffer.add_char buf ',';
                Buffer.add_string buf (Printf.sprintf "\n      %S: %.1f" f v))
              fields;
            Buffer.add_string buf "\n    }")
          !repl_results;
        Buffer.add_string buf "\n  }"
      end;
      if !isolation_results <> [] then begin
        Buffer.add_string buf ",\n  \"isolation\": {";
        List.iteri
          (fun i (key, fields) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (Printf.sprintf "\n    %S: {" key);
            List.iteri
              (fun j (f, v) ->
                if j > 0 then Buffer.add_char buf ',';
                Buffer.add_string buf (Printf.sprintf "\n      %S: %.1f" f v))
              fields;
            Buffer.add_string buf "\n    }")
          !isolation_results;
        Buffer.add_string buf "\n  }"
      end;
      if !index_results <> [] then begin
        Buffer.add_string buf ",\n  \"index\": {";
        List.iteri
          (fun i (key, fields) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (Printf.sprintf "\n    %S: {" key);
            List.iteri
              (fun j (f, v) ->
                if j > 0 then Buffer.add_char buf ',';
                Buffer.add_string buf (Printf.sprintf "\n      %S: %.3f" f v))
              fields;
            Buffer.add_string buf "\n    }")
          !index_results;
        Buffer.add_string buf "\n  }"
      end;
      if !multicore_results <> [] then begin
        Buffer.add_string buf ",\n  \"multicore\": {";
        List.iteri
          (fun i (key, fields) ->
            if i > 0 then Buffer.add_char buf ',';
            Buffer.add_string buf (Printf.sprintf "\n    %S: {" key);
            List.iteri
              (fun j (f, v) ->
                if j > 0 then Buffer.add_char buf ',';
                Buffer.add_string buf (Printf.sprintf "\n      %S: %.1f" f v))
              fields;
            Buffer.add_string buf "\n    }")
          !multicore_results;
        Buffer.add_string buf "\n  }"
      end;
      (match !bench_baseline with
      | Some bpath when Sys.file_exists bpath ->
          let ic = open_in bpath in
          let json = String.trim (really_input_string ic (in_channel_length ic)) in
          close_in ic;
          if String.length json > 0 && json.[0] = '{' then begin
            Buffer.add_string buf ",\n  \"baseline\": ";
            Buffer.add_string buf json
          end
      | _ -> ());
      Buffer.add_string buf "\n}\n";
      let oc = open_out path in
      output_string oc (Buffer.contents buf);
      close_out oc;
      Printf.printf "bench results -> %s\n%!" path

(* ------------------------------------------------------------------ *)
(* Bechamel micro-benchmarks of the core data structures               *)

let micro_structs () =
  section "Micro-benchmarks (Bechamel): core data-structure operations";
  let open Bechamel in
  let vidmap = Vidmap.create () in
  for i = 0 to 99_999 do
    let v = Vidmap.alloc_vid vidmap in
    Vidmap.set vidmap ~vid:v (Sias_storage.Tid.make ~block:i ~slot:0)
  done;
  let rng = Sias_util.Rng.create 7 in
  let test_vidmap_get =
    Test.make ~name:"vidmap.get (C_R = O(1)+CPU)"
      (Staged.stage (fun () ->
           ignore (Vidmap.get vidmap ~vid:(Sias_util.Rng.int rng 100_000))))
  in
  let test_vidmap_set =
    Test.make ~name:"vidmap.set (C_W = 2*C_R)"
      (Staged.stage (fun () ->
           Vidmap.set vidmap
             ~vid:(Sias_util.Rng.int rng 100_000)
             (Sias_storage.Tid.make ~block:1 ~slot:1)))
  in
  let mgr = Sias_txn.Txn.create_mgr () in
  let txns = Array.init 64 (fun _ -> Sias_txn.Txn.begin_txn mgr) in
  Array.iter (fun t -> Sias_txn.Txn.commit mgr t) txns;
  let reader = Sias_txn.Txn.begin_txn mgr in
  let test_visibility =
    Test.make ~name:"isVisible (Algorithm 1 predicate)"
      (Staged.stage (fun () ->
           ignore
             (Sias_txn.Txn.visible mgr reader.Sias_txn.Txn.snapshot
                (1 + Sias_util.Rng.int rng 64))))
  in
  let clock = Sias_util.Simclock.create () in
  let device = Flashsim.Device.ssd_x25e ~blocks:4096 () in
  let pool = Sias_storage.Bufpool.create ~device ~clock ~capacity_pages:4096 () in
  let btree = Sias_index.Btree.create pool ~rel:0 in
  for k = 1 to 100_000 do
    Sias_index.Btree.insert btree ~key:k ~payload:k
  done;
  let test_btree =
    Test.make ~name:"btree.lookup (100k keys)"
      (Staged.stage (fun () ->
           ignore (Sias_index.Btree.lookup btree ~key:(1 + Sias_util.Rng.int rng 100_000))))
  in
  let page = Sias_storage.Page.create ~size:8192 in
  let item = Bytes.make 100 'x' in
  let test_page =
    Test.make ~name:"page append+delete (slotted page)"
      (Staged.stage (fun () ->
           match Sias_storage.Page.insert page item with
           | Some slot -> Sias_storage.Page.delete page slot
           | None -> ()))
  in
  let tests =
    Test.make_grouped ~name:"sias"
      [ test_vidmap_get; test_vidmap_set; test_visibility; test_btree; test_page ]
  in
  let raw =
    Benchmark.all
      (Benchmark.cfg ~limit:1000 ~quota:(Time.second 0.5) ())
      Toolkit.Instance.[ monotonic_clock ]
      tests
  in
  let ols = Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |] in
  let results = Analyze.all ols Toolkit.Instance.monotonic_clock raw in
  let rows = Hashtbl.fold (fun name o acc -> (name, o) :: acc) results [] in
  List.iter
    (fun (name, o) ->
      match Analyze.OLS.estimates o with
      | Some [ est ] -> note "  %-50s %10.1f ns/op" name est
      | _ -> note "  %-50s (no estimate)" name)
    (List.sort compare rows)

(* ------------------------------------------------------------------ *)

(* ------------------------------------------------------------------ *)
(* multicore: shared-nothing TPC-C sharded across OCaml 5 domains.
   Weak scaling, TPC-C's own mode: warehouses are per domain, so N
   domains simulate an N-times larger system and aggregate NOTPM should
   track N. Wall NOTPM shows the parallel speedup on real cores (on a
   single-core host the wall figure stays flat — that is the machine,
   not the sharding). Every shard runs with the SI checker attached;
   any violation fails the whole bench run. *)

let multicore_bench () =
  section "Multicore: sharded TPC-C on OCaml 5 domains (weak scaling)";
  let module MC = Tpcc.Tpcc_multicore in
  let engines = if !full then [ "si"; "si-cv"; "sias"; "sias-v" ] else [ "sias-v" ] in
  let domain_counts = if !full then [ 1; 2; 4; 8 ] else [ 1; 2; 4 ] in
  note "host: %d recommended domains" (Domain.recommended_domain_count ());
  List.iter
    (fun engine ->
      let base_notpm = ref 0.0 in
      let base_wall = ref 0.0 in
      List.iter
        (fun domains ->
          let cfg = MC.default_config ~engine ~domains ~warehouses_per_domain:1 in
          let cfg =
            {
              cfg with
              MC.base =
                { cfg.MC.base with W.duration_s = (if !full then 300.0 else 60.0) };
              bufpool_shards = (if domains > 1 then 4 else 1);
            }
          in
          let r = MC.run cfg in
          if domains = 1 then begin
            base_notpm := r.MC.agg_notpm;
            base_wall := r.MC.wall_s
          end;
          let speedup =
            if !base_notpm > 0.0 then r.MC.agg_notpm /. !base_notpm else 0.0
          in
          multicore_violations := !multicore_violations + r.MC.violations;
          note
            "  %-7s domains=%d  agg %7.0f NOTPM (%.2fx vs 1 domain)  wall %6.2fs \
             %7.0f NOTPM-wall  fsyncs %d/%d commits (saved %d)  violations %d"
            engine domains r.MC.agg_notpm speedup r.MC.wall_s r.MC.wall_notpm
            r.MC.slots.Sias_wal.Walslots.commit_fsyncs
            r.MC.slots.Sias_wal.Walslots.commits
            r.MC.slots.Sias_wal.Walslots.fsyncs_saved r.MC.violations;
          multicore_results :=
            !multicore_results
            @ [
                ( Printf.sprintf "%s/d%d" engine domains,
                  [
                    ("domains", float_of_int domains);
                    ("warehouses_per_domain", float_of_int cfg.MC.base.W.warehouses);
                    ("agg_notpm", r.MC.agg_notpm);
                    ("notpm_scaling_vs_1domain", speedup);
                    ("wall_s", r.MC.wall_s);
                    ("wall_notpm", r.MC.wall_notpm);
                    ("total_committed", float_of_int r.MC.total_committed);
                    ("new_orders", float_of_int r.MC.total_new_orders);
                    ( "commit_fsyncs",
                      float_of_int r.MC.slots.Sias_wal.Walslots.commit_fsyncs );
                    ( "fsyncs_saved",
                      float_of_int r.MC.slots.Sias_wal.Walslots.fsyncs_saved );
                    ("violations", float_of_int r.MC.violations);
                  ] );
              ])
        domain_counts)
    engines;
  if !multicore_violations > 0 then
    note "!! SI checker reported %d violations -- bench will exit non-zero"
      !multicore_violations

let experiments =
  [
    ("table1", table1);
    ("table2", table2);
    ("figure3", figure3);
    ("figure4", figure4);
    ("figure5", figure5);
    ("figure6", figure6);
    ("scan", ablation_scan);
    ("vectors", ablation_vectors);
    ("gc", ablation_gc);
    ("noftl", ablation_noftl);
    ("vidmap", ablation_vidmap);
    ("endurance", ablation_endurance);
    ("contention", ablation_contention);
    ("groupcommit", ablation_groupcommit);
    ("repl", ablation_repl);
    ("isolation", ablation_isolation);
    ("index", ablation_index);
    ("micro", micro);
    ("structs", micro_structs);
    ("multicore", multicore_bench);
  ]

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  (* Flag filter: consume --full, --faults <seed>, --fault-profile <name>,
     --metrics-out <path>, --trace-out <path>; whatever remains names the
     experiments to run. *)
  let fault_seed = ref None in
  let fault_profile = ref Flashsim.Faultdev.light in
  let metrics_out = ref None in
  let trace_out = ref None in
  let sync_commit = ref true in
  let commit_delay = ref 0.0 in
  let rec filter = function
    | [] -> []
    | "--full" :: rest ->
        full := true;
        filter rest
    | "--commit-delay" :: s :: rest ->
        (match float_of_string_opt s with
        | Some d when d >= 0.0 -> commit_delay := d
        | _ -> Printf.printf "--commit-delay needs a non-negative float, got %S\n" s);
        filter rest
    | "--synchronous-commit" :: s :: rest ->
        (match s with
        | "on" -> sync_commit := true
        | "off" -> sync_commit := false
        | _ -> Printf.printf "--synchronous-commit needs on or off, got %S\n" s);
        filter rest
    | "--faults" :: seed :: rest ->
        (match int_of_string_opt seed with
        | Some s -> fault_seed := Some s
        | None -> Printf.printf "--faults needs an integer seed, got %S\n" seed);
        filter rest
    | "--fault-profile" :: name :: rest ->
        (match Flashsim.Faultdev.profile_of_string name with
        | Ok p -> fault_profile := p
        | Error e -> Printf.printf "%s\n" e);
        filter rest
    | "--metrics-out" :: path :: rest ->
        metrics_out := Some path;
        filter rest
    | "--bench-out" :: path :: rest ->
        bench_out := Some path;
        filter rest
    | "--bench-baseline" :: path :: rest ->
        bench_baseline := Some path;
        filter rest
    | "--trace-out" :: path :: rest ->
        trace_out := Some path;
        filter rest
    | a :: rest -> a :: filter rest
  in
  let args = filter args in
  (match !fault_seed with
  | Some seed ->
      fault_override := Some (seed, !fault_profile);
      Printf.printf "fault injection: seed %d, profile %s\n%!" seed
        (Flashsim.Faultdev.profile_name !fault_profile)
  | None -> ());
  if (not !sync_commit) || !commit_delay > 0.0 then begin
    commit_override := Some (!sync_commit, !commit_delay);
    Printf.printf "commit pipeline: synchronous_commit=%s commit_delay=%gs\n%!"
      (if !sync_commit then "on" else "off")
      !commit_delay
  end;
  if !metrics_out <> None || !trace_out <> None then begin
    (* each run_tpcc overwrites the files; the surviving artifacts are
       the last experiment's run, which is what a smoke invocation of a
       single experiment wants *)
    obs_override := Some (!metrics_out, !trace_out);
    Option.iter (fun p -> Printf.printf "metrics -> %s\n%!" p) !metrics_out;
    Option.iter (fun p -> Printf.printf "trace -> %s\n%!" p) !trace_out
  end;
  let chosen = match args with [] | [ "all" ] -> List.map fst experiments | l -> l in
  let t0 = Sias_util.Monotime.now () in
  List.iter
    (fun name ->
      match List.assoc_opt name experiments with
      | Some f -> f ()
      | None ->
          Printf.printf "unknown experiment %S; available: %s\n" name
            (String.concat ", " (List.map fst experiments)))
    chosen;
  let wall_s = Sias_util.Monotime.elapsed_since t0 in
  Printf.printf "\n(total wall time %.1f s%s)\n" wall_s
    (if !full then ", full mode" else ", quick mode; pass --full for paper-scale parameters");
  write_bench_json ~wall_s;
  if !multicore_violations > 0 then begin
    Printf.printf "FAIL: SI checker reported %d violations during the multicore bench\n"
      !multicore_violations;
    exit 1
  end;
  if !index_gate_failures > 0 then begin
    Printf.printf
      "FAIL: %d index-bench gate violation(s) -- SIAS/SIAS-V device writes \
       must stay <= SI with the paged index\n"
      !index_gate_failures;
    exit 1
  end
