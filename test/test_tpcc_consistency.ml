(* TPC-C consistency conditions (spec clause 3.3), checked after a real
   driver run on every engine. These catch transaction-logic bugs that
   throughput numbers hide:

     C1: W_YTD = sum(D_YTD) per warehouse
     C2: D_NEXT_O_ID - 1 = max(O_ID) = max(NO_O_ID) per district
     C3: count(NEW_ORDER) = max(NO_O_ID) - min(NO_O_ID) + 1 per district
         (new_orders are consumed oldest-first, so ids are contiguous)
     C4: sum(O_OL_CNT) = count(ORDER_LINE) per district *)

module Value = Mvcc.Value
module Db = Mvcc.Db
module W = Tpcc.Tpcc_workload
module S = Tpcc.Tpcc_schema
module Col = Tpcc.Tpcc_schema.Col

let check = Alcotest.(check bool)

module Make (E : Mvcc.Engine.S) = struct
  module WE = W.Make (E)

  let geti (r : Value.t array) i = Value.int r.(i)
  let getf (r : Value.t array) i = Value.float r.(i)

  let run_and_check () =
    let db = Db.create ~buffer_pages:4096 () in
    let eng = E.create db in
    let tables = WE.create_tables eng in
    let cfg =
      {
        (W.default_config ~warehouses:3) with
        W.scale = S.scaled ~div:300 ();
        duration_s = 30.0;
        think_time_s = 0.1;
        gc_interval_s = Some 10.0;
      }
    in
    WE.load eng tables cfg;
    let result = WE.run eng tables cfg in
    check "enough committed work to be meaningful" true (result.W.total_committed > 100);
    let txn = E.begin_txn eng in

    (* collect district states *)
    let district_rows = ref [] in
    let _ = E.scan eng txn tables.WE.district (fun r -> district_rows := r :: !district_rows) in

    (* C1: warehouse ytd equals the sum of its districts' ytd *)
    let _ =
      E.scan eng txn tables.WE.warehouse (fun wrow ->
          let w = geti wrow Col.w_id in
          let d_sum =
            List.fold_left
              (fun acc d -> if geti d 1 = w then acc +. getf d Col.d_ytd else acc)
              0.0 !district_rows
          in
          check
            (Printf.sprintf "C1: warehouse %d ytd %.2f = district sum %.2f" w
               (getf wrow Col.w_ytd) d_sum)
            true
            (abs_float (getf wrow Col.w_ytd -. d_sum) < 0.01))
    in

    (* per-district aggregates over orders / new_order / order_line *)
    let max_o = Hashtbl.create 64 in
    let ol_cnt_sum = Hashtbl.create 64 in
    let _ =
      E.scan eng txn tables.WE.orders (fun o ->
          let dk = S.district_key ~w:(geti o 1) ~d:(geti o 2) in
          let oid = geti o Col.o_id in
          let cur = Option.value ~default:0 (Hashtbl.find_opt max_o dk) in
          if oid > cur then Hashtbl.replace max_o dk oid;
          Hashtbl.replace ol_cnt_sum dk
            (geti o Col.o_ol_cnt + Option.value ~default:0 (Hashtbl.find_opt ol_cnt_sum dk)))
    in
    let no_min = Hashtbl.create 64 and no_max = Hashtbl.create 64 and no_cnt = Hashtbl.create 64 in
    let _ =
      E.scan eng txn tables.WE.new_order (fun n ->
          let dk = S.district_key ~w:(geti n 1) ~d:(geti n 2) in
          let oid = geti n 3 in
          Hashtbl.replace no_cnt dk (1 + Option.value ~default:0 (Hashtbl.find_opt no_cnt dk));
          (match Hashtbl.find_opt no_min dk with
          | Some m when m <= oid -> ()
          | _ -> Hashtbl.replace no_min dk oid);
          match Hashtbl.find_opt no_max dk with
          | Some m when m >= oid -> ()
          | _ -> Hashtbl.replace no_max dk oid)
    in
    let ol_count = Hashtbl.create 64 in
    let _ =
      E.scan eng txn tables.WE.order_line (fun l ->
          let okey = geti l 1 in
          let dk = okey / 100_000_000 in
          Hashtbl.replace ol_count dk
            (1 + Option.value ~default:0 (Hashtbl.find_opt ol_count dk)))
    in

    List.iter
      (fun drow ->
        let w = geti drow 1 and d = geti drow 2 in
        let dk = S.district_key ~w ~d in
        let next_o = geti drow Col.d_next_o_id in
        (* C2 *)
        (match Hashtbl.find_opt max_o dk with
        | Some m ->
            check (Printf.sprintf "C2: district (%d,%d) next_o_id" w d) true (next_o - 1 = m)
        | None -> ());
        (* C3 *)
        (match (Hashtbl.find_opt no_min dk, Hashtbl.find_opt no_max dk) with
        | Some lo, Some hi ->
            let cnt = Option.value ~default:0 (Hashtbl.find_opt no_cnt dk) in
            check
              (Printf.sprintf "C3: district (%d,%d) new_order contiguity" w d)
              true
              (cnt = hi - lo + 1)
        | _ -> ());
        (* C4 *)
        let expect = Option.value ~default:0 (Hashtbl.find_opt ol_cnt_sum dk) in
        let got = Option.value ~default:0 (Hashtbl.find_opt ol_count dk) in
        check (Printf.sprintf "C4: district (%d,%d) order lines %d=%d" w d expect got) true
          (expect = got))
      !district_rows;
    E.commit eng txn |> Result.get_ok

  let test name = Alcotest.test_case (name ^ ": TPC-C consistency C1-C4") `Slow run_and_check
end

module C_si = Make (Mvcc.Si_engine)
module C_sias = Make (Mvcc.Sias_engine)
module C_vec = Make (Mvcc.Sias_vector)

let suite = [ C_si.test "SI"; C_sias.test "SIAS"; C_vec.test "SIAS-V" ]
