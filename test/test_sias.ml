(* White-box tests for SIAS-Chains internals: chain structure, VID_map
   entrypoints, append-only write pattern, index-update avoidance, and the
   SI-vs-SIAS storage contrast the paper is built on. *)

module E = Mvcc.Sias_engine
module Si = Mvcc.Si_engine
module Value = Mvcc.Value
module Db = Mvcc.Db
module Vm = Vidmap
module Bufpool = Sias_storage.Bufpool
module Btree = Sias_index.Btree
module Device = Flashsim.Device
module Blocktrace = Flashsim.Blocktrace

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let row k v = [| Value.Int k; Value.Int v; Value.Str "payload-data" |]

let fresh () =
  let db = Db.create ~buffer_pages:512 () in
  let eng = E.create db in
  let table = E.create_table eng ~name:"t" ~pk_col:0 ~secondary:[ 1 ] () in
  (eng, table, db)

let commit_one eng f =
  let txn = E.begin_txn eng in
  f txn;
  E.commit eng txn |> Result.get_ok

let set_v v r =
  let r = Array.copy r in
  r.(1) <- Value.Int v;
  r

let test_vidmap_entrypoint_moves () =
  let eng, table, _ = fresh () in
  let vm = E.table_vidmap eng table in
  commit_one eng (fun txn -> E.insert eng txn table (row 1 10) |> Result.get_ok);
  let e0 = Vm.get vm ~vid:0 in
  check "entrypoint set" true (e0 <> None);
  commit_one eng (fun txn -> E.update eng txn table ~pk:1 (set_v 20) |> Result.get_ok);
  let e1 = Vm.get vm ~vid:0 in
  check "entrypoint moved to new version" true (e1 <> e0 && e1 <> None)

let test_chain_walk_depth () =
  let eng, table, _ = fresh () in
  commit_one eng (fun txn -> E.insert eng txn table (row 1 0) |> Result.get_ok);
  (* hold an old snapshot so pruning cannot collapse the chain *)
  let old_reader = E.begin_txn eng in
  for i = 1 to 5 do
    commit_one eng (fun txn -> E.update eng txn table ~pk:1 (set_v i) |> Result.get_ok)
  done;
  let w0, v0 = E.chain_walk_stats eng in
  (* the old snapshot must walk the chain down to the initial version *)
  (match E.read eng old_reader table ~pk:1 with
  | Some r -> checki "old snapshot sees initial version" 0 (Value.int r.(1))
  | None -> Alcotest.fail "old version lost");
  let w1, v1 = E.chain_walk_stats eng in
  check "walk happened" true (w1 > w0);
  check "walked several versions deep" true (v1 - v0 >= 6);
  E.commit eng old_reader |> Result.get_ok

let test_append_only_writes () =
  let eng, table, db = fresh () in
  commit_one eng (fun txn ->
      for k = 1 to 100 do
        E.insert eng txn table (row k k) |> Result.get_ok
      done);
  for round = 1 to 5 do
    commit_one eng (fun txn ->
        for k = 1 to 100 do
          E.update eng txn table ~pk:k (set_v (k + round)) |> Result.get_ok
        done)
  done;
  (* flush everything and inspect the device trace: heap writes must be
     monotonically increasing within the heap relation (pure appends) *)
  Bufpool.flush_all db.Db.pool ~sync:false;
  let heap_base = Bufpool.sector_of db.Db.pool ~rel:0 ~block:0 in
  let heap_limit = Bufpool.sector_of db.Db.pool ~rel:1 ~block:0 in
  let recs = Blocktrace.records (Device.trace db.Db.device) in
  let heap_writes =
    List.filter
      (fun r ->
        r.Blocktrace.op = Blocktrace.Write
        && r.Blocktrace.sector >= heap_base
        && r.Blocktrace.sector < heap_limit)
      recs
  in
  check "heap writes exist" true (heap_writes <> []);
  let sectors = List.map (fun r -> r.Blocktrace.sector) heap_writes in
  let sorted = List.sort compare sectors in
  check "append-only: flushed in increasing order" true (sectors = sorted)

let test_si_writes_scatter_sias_writes_do_not () =
  (* identical workload on both engines; SI must rewrite old pages
     (in-place invalidation), SIAS must not *)
  let run_si () =
    let db = Db.create ~buffer_pages:512 () in
    let eng = Si.create db in
    let table = Si.create_table eng ~name:"t" ~pk_col:0 () in
    let txn = Si.begin_txn eng in
    for k = 1 to 200 do
      Si.insert eng txn table (row k k) |> Result.get_ok
    done;
    Si.commit eng txn |> Result.get_ok;
    Bufpool.flush_all db.Db.pool ~sync:false;
    let before = Blocktrace.write_count (Device.trace db.Db.device) in
    let txn = Si.begin_txn eng in
    for k = 1 to 200 do
      Si.update eng txn table ~pk:k (set_v (k + 1)) |> Result.get_ok
    done;
    Si.commit eng txn |> Result.get_ok;
    Bufpool.flush_all db.Db.pool ~sync:false;
    Blocktrace.write_count (Device.trace db.Db.device) - before
  in
  let run_sias () =
    let db = Db.create ~buffer_pages:512 () in
    let eng = E.create db in
    let table = E.create_table eng ~name:"t" ~pk_col:0 () in
    let txn = E.begin_txn eng in
    for k = 1 to 200 do
      E.insert eng txn table (row k k) |> Result.get_ok
    done;
    E.commit eng txn |> Result.get_ok;
    Bufpool.flush_all db.Db.pool ~sync:false;
    let before = Blocktrace.write_count (Device.trace db.Db.device) in
    let txn = E.begin_txn eng in
    for k = 1 to 200 do
      E.update eng txn table ~pk:k (set_v (k + 1)) |> Result.get_ok
    done;
    E.commit eng txn |> Result.get_ok;
    Bufpool.flush_all db.Db.pool ~sync:false;
    Blocktrace.write_count (Device.trace db.Db.device) - before
  in
  let si_writes = run_si () and sias_writes = run_sias () in
  check
    (Printf.sprintf "SIAS writes fewer pages (SI=%d, SIAS=%d)" si_writes sias_writes)
    true
    (sias_writes < si_writes)

let test_index_not_touched_when_key_unchanged () =
  let eng, table, _ = fresh () in
  commit_one eng (fun txn ->
      for k = 1 to 50 do
        E.insert eng txn table (row k 7) |> Result.get_ok
      done);
  (* updates that keep column 1 (the indexed key) unchanged *)
  for _ = 1 to 3 do
    commit_one eng (fun txn ->
        for k = 1 to 50 do
          E.update eng txn table ~pk:k (fun r ->
              let r = Array.copy r in
              r.(2) <- Value.Str "new-payload";
              r)
          |> Result.get_ok
        done)
  done;
  (* the lookup still finds all 50, exactly once each *)
  commit_one eng (fun txn ->
      checki "one row per item via index" 50
        (List.length (E.lookup eng txn table ~col:1 ~key:7)))

let test_tombstone_chain () =
  let eng, table, _ = fresh () in
  let vm = E.table_vidmap eng table in
  commit_one eng (fun txn -> E.insert eng txn table (row 1 1) |> Result.get_ok);
  commit_one eng (fun txn -> E.delete eng txn table ~pk:1 |> Result.get_ok);
  (* tombstone is the entrypoint; the item reads as absent *)
  check "entrypoint still set (tombstone)" true (Vm.get vm ~vid:0 <> None);
  commit_one eng (fun txn -> check "read gone" true (E.read eng txn table ~pk:1 = None));
  (* gc with no old snapshots reclaims the whole chain *)
  E.gc eng;
  check "vidmap cleared after gc" true (Vm.get vm ~vid:0 = None)

let test_gc_prunes_dead_tail () =
  let eng, table, _ = fresh () in
  commit_one eng (fun txn -> E.insert eng txn table (row 1 0) |> Result.get_ok);
  for i = 1 to 20 do
    commit_one eng (fun txn -> E.update eng txn table ~pk:1 (set_v i) |> Result.get_ok)
  done;
  let before = E.table_stats eng table in
  checki "21 versions before gc" 21 before.Mvcc.Engine.total_versions;
  E.gc eng;
  let after = E.table_stats eng table in
  checki "only newest version survives" 1 after.Mvcc.Engine.total_versions;
  let gs = E.gc_stats eng in
  checki "20 pruned" 20 gs.E.pruned_versions;
  commit_one eng (fun txn ->
      match E.read eng txn table ~pk:1 with
      | Some r -> checki "value intact" 20 (Value.int r.(1))
      | None -> Alcotest.fail "lost row")

let test_gc_page_reclaim_relocates () =
  let eng, table, db = fresh () in
  (* create many items, update them all repeatedly so early pages decay *)
  commit_one eng (fun txn ->
      for k = 1 to 300 do
        E.insert eng txn table (row k 0) |> Result.get_ok
      done);
  for i = 1 to 3 do
    commit_one eng (fun txn ->
        for k = 1 to 300 do
          E.update eng txn table ~pk:k (set_v i) |> Result.get_ok
        done)
  done;
  (* seal the pages: reclamation only discards pages already on stable
     storage (unsealed pages are cleaned by cheap dead-slot marking) *)
  Bufpool.flush_all db.Db.pool ~sync:false;
  E.gc eng;
  let gs = E.gc_stats eng in
  check "pages reclaimed" true (gs.E.reclaimed_pages > 0);
  (* all data still correct after relocation *)
  commit_one eng (fun txn ->
      let n = E.scan eng txn table (fun r -> checki "value" 3 (Value.int r.(1))) in
      checki "all rows visible" 300 n)

let test_scan_vidmap_equals_traditional () =
  let eng, table, _ = fresh () in
  commit_one eng (fun txn ->
      for k = 1 to 100 do
        E.insert eng txn table (row k (k * 2)) |> Result.get_ok
      done);
  commit_one eng (fun txn ->
      for k = 1 to 50 do
        E.update eng txn table ~pk:k (set_v (k * 3)) |> Result.get_ok
      done;
      E.delete eng txn table ~pk:99 |> Result.get_ok);
  let txn = E.begin_txn eng in
  let collect scan =
    let acc = ref [] in
    let n = scan eng txn table (fun r -> acc := (Value.int r.(0), Value.int r.(1)) :: !acc) in
    (n, List.sort compare !acc)
  in
  let n1, rows1 = collect E.scan_vidmap in
  let n2, rows2 = collect E.scan_traditional in
  E.commit eng txn |> Result.get_ok;
  checki "same count" n1 n2;
  check "same rows" true (rows1 = rows2);
  checki "99 rows" 99 n1

let test_sias_vidmap_rebuild_equals () =
  (* the paper: all information needed for reconstruction is on-tuple *)
  let eng, table, db = fresh () in
  commit_one eng (fun txn ->
      for k = 1 to 60 do
        E.insert eng txn table (row k k) |> Result.get_ok
      done);
  commit_one eng (fun txn ->
      for k = 1 to 30 do
        E.update eng txn table ~pk:k (set_v (k + 100)) |> Result.get_ok
      done);
  let vm = E.table_vidmap eng table in
  let original = ref [] in
  Vm.iter vm (fun vid tid -> original := (vid, tid) :: !original);
  (* crash and recover: vidmap is rebuilt from tuple versions only *)
  Bufpool.flush_all db.Db.pool ~sync:false;
  Bufpool.drop_cache db.Db.pool;
  E.recover eng;
  let vm' = E.table_vidmap eng table in
  let rebuilt = ref [] in
  Vm.iter vm' (fun vid tid -> rebuilt := (vid, tid) :: !rebuilt);
  check "rebuilt vidmap equals original" true
    (List.sort compare !original = List.sort compare !rebuilt)

let suite =
  [
    Alcotest.test_case "vidmap entrypoint moves on update" `Quick test_vidmap_entrypoint_moves;
    Alcotest.test_case "chain walk depth for old snapshots" `Quick test_chain_walk_depth;
    Alcotest.test_case "append-only write pattern" `Quick test_append_only_writes;
    Alcotest.test_case "SIAS writes fewer pages than SI" `Quick
      test_si_writes_scatter_sias_writes_do_not;
    Alcotest.test_case "index untouched when key unchanged" `Quick
      test_index_not_touched_when_key_unchanged;
    Alcotest.test_case "tombstone chain" `Quick test_tombstone_chain;
    Alcotest.test_case "gc prunes dead tail" `Quick test_gc_prunes_dead_tail;
    Alcotest.test_case "gc page reclaim relocates" `Quick test_gc_page_reclaim_relocates;
    Alcotest.test_case "vidmap scan equals traditional scan" `Quick
      test_scan_vidmap_equals_traditional;
    Alcotest.test_case "vidmap rebuild from tuples" `Quick test_sias_vidmap_rebuild_equals;
  ]

(* Property: structural invariants hold after arbitrary committed op
   sequences with interleaved GC, crashes and recovery. *)
let qcheck_invariants =
  QCheck.Test.make ~name:"SIAS invariants under random ops + gc + recovery" ~count:40
    QCheck.(
      list_of_size Gen.(int_range 5 120)
        (pair (int_range 1 25) (pair (int_bound 500) (int_bound 5))))
    (fun ops ->
      let eng, table, db = fresh () in
      List.iter
        (fun (k, (v, op)) ->
          (match op with
          | 0 | 1 ->
              commit_one eng (fun txn -> ignore (E.insert eng txn table (row k v)))
          | 2 | 3 -> commit_one eng (fun txn -> ignore (E.update eng txn table ~pk:k (set_v v)))
          | 4 -> commit_one eng (fun txn -> ignore (E.delete eng txn table ~pk:k))
          | _ -> E.gc eng);
          E.check_invariants eng table)
        ops;
      (* invariants must also survive a crash/recovery cycle *)
      Bufpool.flush_all db.Db.pool ~sync:false;
      Bufpool.drop_cache db.Db.pool;
      E.recover eng;
      E.check_invariants eng table;
      true)

let suite = suite @ [ QCheck_alcotest.to_alcotest qcheck_invariants ]
