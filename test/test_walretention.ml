(* WAL retention-hold property: checkpoint recycling (truncate_before)
   never discards a record a registered follower still needs, whatever
   interleaving of appends, flushes, hold advances and truncations occurs
   — including under group-commit and async-commit windows, where commit
   records sit buffered past their acknowledgement. *)

module Wal = Sias_wal.Wal
module Db = Mvcc.Db
module Commitpipe = Sias_wal.Commitpipe
module Simclock = Sias_util.Simclock

type op =
  | W_append
  | W_flush_sync
  | W_flush_async
  | W_advance of int  (** advance the hold by this many LSNs *)
  | W_truncate of int  (** truncate_before (current_lsn - slack) *)

let gen_op =
  QCheck.Gen.(
    frequency
      [
        (6, return W_append);
        (2, return W_flush_sync);
        (1, return W_flush_async);
        (3, map (fun n -> W_advance n) (int_bound 8));
        (3, map (fun n -> W_truncate n) (int_bound 5));
      ])

let pp_op = function
  | W_append -> "append"
  | W_flush_sync -> "fsync"
  | W_flush_async -> "flush"
  | W_advance n -> Printf.sprintf "advance(+%d)" n
  | W_truncate n -> Printf.sprintf "truncate(-%d)" n

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map pp_op ops))
    QCheck.Gen.(list_size (int_range 5 60) gen_op)

(* Every truncation must leave the log replayable from the hold: all LSNs
   from the held one to the head are still retained, contiguously. *)
let replayable wal ~from =
  let upto = Wal.current_lsn wal in
  if from > upto then true
  else
    let records = Wal.records_from wal ~lsn:from in
    List.length records = upto - from + 1
    && Wal.oldest_retained wal <= from

let prop_pure ops =
  let clock = Simclock.create () in
  let wal = Wal.create ~clock () in
  let hold = Wal.register_hold wal ~name:"follower" in
  let ok = ref true in
  let check () =
    if not (replayable wal ~from:(Wal.hold_lsn hold)) then ok := false
  in
  List.iter
    (fun op ->
      (match op with
      | W_append ->
          ignore
            (Wal.append wal ~xid:1 ~rel:0 ~kind:Wal.Insert
               ~payload:(Bytes.create 16))
      | W_flush_sync -> Wal.flush wal ~sync:true
      | W_flush_async -> Wal.flush wal ~sync:false
      | W_advance n ->
          Wal.advance_hold wal hold
            ~lsn:(min (Wal.hold_lsn hold + n) (Wal.next_lsn wal))
      | W_truncate slack ->
          Wal.truncate_before wal ~lsn:(Wal.current_lsn wal - slack));
      check ())
    ops;
  !ok

(* The same invariant through a live commit pipeline: committed work under
   sync, group and async commit, with aggressive truncation requests after
   every commit. The hold must keep the acknowledged-but-unshipped tail
   replayable even while group windows and the WAL-writer trickle leave
   records buffered. *)
let prop_pipeline mode ops =
  let db =
    Db.create
      ~commit_mode:
        (match mode with
        | `Sync -> Commitpipe.Sync
        | `Group -> Commitpipe.Group { delay = 0.005 }
        | `Async -> Commitpipe.Async { interval = 0.05; max_bytes = 4096 })
      ()
  in
  let wal = db.Db.wal in
  let hold = Wal.register_hold wal ~name:"follower" in
  let ok = ref true in
  let check () =
    if not (replayable wal ~from:(Wal.hold_lsn hold)) then ok := false
  in
  List.iter
    (fun op ->
      (match op with
      | W_append | W_flush_sync | W_flush_async ->
          (* a tiny committed transaction through the real commit path *)
          let txn = Db.begin_txn db in
          ignore
            (Db.log_op db ~xid:txn.Sias_txn.Txn.xid ~rel:0 ~kind:Wal.Insert
               ~payload:(Bytes.create 16));
          Db.commit db txn;
          Simclock.advance db.Db.clock 0.002;
          Db.tick db
      | W_advance n ->
          Wal.advance_hold wal hold
            ~lsn:(min (Wal.hold_lsn hold + n) (Wal.next_lsn wal))
      | W_truncate slack ->
          Wal.truncate_before wal ~lsn:(Wal.current_lsn wal - slack));
      check ())
    ops;
  Commitpipe.finalize db.Db.commitpipe;
  check ();
  !ok

let suite =
  [
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"truncate_before never outruns a hold (pure WAL)"
         ~count:300 arb_ops prop_pure);
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"hold survives sync-commit truncation" ~count:100
         arb_ops (prop_pipeline `Sync));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"hold survives group-commit windows" ~count:100
         arb_ops (prop_pipeline `Group));
    QCheck_alcotest.to_alcotest
      (QCheck.Test.make ~name:"hold survives async-commit windows" ~count:100
         arb_ops (prop_pipeline `Async));
  ]
