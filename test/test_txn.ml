(* Tests for snapshots, the transaction manager and the lock manager. *)

open Sias_txn

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let test_snapshot_sees () =
  (* snapshot of xid 5, with 2 and 4 still running *)
  let s = Snapshot.make ~xid:5 ~xmax:4 ~concurrent:[ 2; 4 ] in
  check "own xid" true (Snapshot.sees_xid s 5);
  check "committed older" true (Snapshot.sees_xid s 1);
  check "concurrent invisible" false (Snapshot.sees_xid s 2);
  check "concurrent invisible" false (Snapshot.sees_xid s 4);
  check "visible non-concurrent" true (Snapshot.sees_xid s 3);
  check "future invisible" false (Snapshot.sees_xid s 6);
  check "is_concurrent" true (Snapshot.is_concurrent s 2);
  check "not concurrent" false (Snapshot.is_concurrent s 3)

let test_txn_lifecycle () =
  let mgr = Txn.create_mgr () in
  let t1 = Txn.begin_txn mgr in
  checki "first xid" 1 t1.Txn.xid;
  check "in progress" true (Txn.status mgr 1 = Txn.In_progress);
  Txn.commit mgr t1;
  check "committed" true (Txn.is_committed mgr 1);
  let t2 = Txn.begin_txn mgr in
  Txn.abort mgr t2;
  check "aborted" true (Txn.status mgr 2 = Txn.Aborted);
  Alcotest.check_raises "double finish" (Invalid_argument "Txn: transaction is not in progress")
    (fun () -> Txn.commit mgr t2)

let test_txn_concurrent_sets () =
  let mgr = Txn.create_mgr () in
  let t1 = Txn.begin_txn mgr in
  let t2 = Txn.begin_txn mgr in
  (* t2 started while t1 ran *)
  check "t2 sees t1 as concurrent" true (Snapshot.is_concurrent t2.Txn.snapshot t1.Txn.xid);
  Txn.commit mgr t1;
  let t3 = Txn.begin_txn mgr in
  check "t3 does not see t1 concurrent" false (Snapshot.is_concurrent t3.Txn.snapshot t1.Txn.xid);
  check "t3 sees t2 concurrent" true (Snapshot.is_concurrent t3.Txn.snapshot t2.Txn.xid);
  Txn.commit mgr t2;
  Txn.commit mgr t3

let test_visibility_predicate () =
  let mgr = Txn.create_mgr () in
  let t1 = Txn.begin_txn mgr in
  Txn.commit mgr t1;
  let t2 = Txn.begin_txn mgr in
  (* own writes and committed-before are visible *)
  check "committed visible" true (Txn.visible mgr t2.Txn.snapshot t1.Txn.xid);
  check "own visible" true (Txn.visible mgr t2.Txn.snapshot t2.Txn.xid);
  let t3 = Txn.begin_txn mgr in
  check "future invisible" false (Txn.visible mgr t2.Txn.snapshot t3.Txn.xid);
  (* a transaction that commits AFTER t2's snapshot stays invisible *)
  Txn.commit mgr t3;
  check "later commit still invisible to old snapshot" false
    (Txn.visible mgr t2.Txn.snapshot t3.Txn.xid);
  Txn.commit mgr t2

let test_visibility_aborted () =
  let mgr = Txn.create_mgr () in
  let t1 = Txn.begin_txn mgr in
  Txn.abort mgr t1;
  let t2 = Txn.begin_txn mgr in
  check "aborted invisible" false (Txn.visible mgr t2.Txn.snapshot t1.Txn.xid);
  Txn.commit mgr t2

let test_horizon () =
  let mgr = Txn.create_mgr () in
  checki "empty horizon is next xid" 1 (Txn.horizon mgr);
  let t1 = Txn.begin_txn mgr in
  let _t2 = Txn.begin_txn mgr in
  checki "horizon is oldest active" 1 (Txn.horizon mgr);
  Txn.commit mgr t1;
  (* t2's snapshot saw t1 running, so the horizon must stay at t1 *)
  checki "horizon pinned by t2's snapshot" 1 (Txn.horizon mgr)

let test_recovery_clog () =
  let mgr = Txn.create_mgr () in
  Txn.mark_recovered mgr ~xid:7 ~committed:true;
  Txn.mark_recovered mgr ~xid:8 ~committed:false;
  check "recovered commit" true (Txn.is_committed mgr 7);
  check "recovered abort" true (Txn.status mgr 8 = Txn.Aborted);
  check "xid counter past recovered" true (Txn.last_xid mgr >= 8)

let test_locks_basic () =
  let lm = Lockmgr.create () in
  check "acquire" true (Lockmgr.try_acquire lm ~xid:1 ~rel:0 ~key:10 = Lockmgr.Granted);
  check "reentrant" true (Lockmgr.try_acquire lm ~xid:1 ~rel:0 ~key:10 = Lockmgr.Granted);
  check "conflict" true (Lockmgr.try_acquire lm ~xid:2 ~rel:0 ~key:10 = Lockmgr.Conflict 1);
  check "other key free" true (Lockmgr.try_acquire lm ~xid:2 ~rel:0 ~key:11 = Lockmgr.Granted);
  check "other rel free" true (Lockmgr.try_acquire lm ~xid:2 ~rel:1 ~key:10 = Lockmgr.Granted);
  Alcotest.(check (option int)) "holder" (Some 1) (Lockmgr.holder lm ~rel:0 ~key:10);
  checki "held count" 1 (Lockmgr.held_count lm ~xid:1);
  Lockmgr.release_all lm ~xid:1;
  check "freed after release" true (Lockmgr.try_acquire lm ~xid:2 ~rel:0 ~key:10 = Lockmgr.Granted)

let test_locks_deadlock_detection () =
  let lm = Lockmgr.create () in
  ignore (Lockmgr.try_acquire lm ~xid:1 ~rel:0 ~key:1);
  ignore (Lockmgr.try_acquire lm ~xid:2 ~rel:0 ~key:2);
  (* 1 waits for 2 *)
  check "wait ok" true (Lockmgr.wait_on lm ~xid:1 ~owner:2 = Lockmgr.Granted);
  (* 2 waiting for 1 would close the cycle *)
  check "deadlock detected" true (Lockmgr.wait_on lm ~xid:2 ~owner:1 = Lockmgr.Deadlock);
  (* breaking the first wait clears it *)
  Lockmgr.stop_waiting lm ~xid:1;
  check "no deadlock after clear" true (Lockmgr.wait_on lm ~xid:2 ~owner:1 = Lockmgr.Granted)

let test_locks_deadlock_three_party () =
  let lm = Lockmgr.create () in
  check "1 waits 2" true (Lockmgr.wait_on lm ~xid:1 ~owner:2 = Lockmgr.Granted);
  check "2 waits 3" true (Lockmgr.wait_on lm ~xid:2 ~owner:3 = Lockmgr.Granted);
  check "3 waits 1 closes cycle" true (Lockmgr.wait_on lm ~xid:3 ~owner:1 = Lockmgr.Deadlock);
  Alcotest.(check (list int)) "waiters of 3" [ 2 ] (Lockmgr.waiters_of lm ~owner:3)

let test_locks_self_wait () =
  let lm = Lockmgr.create () in
  check "self wait is deadlock" true (Lockmgr.wait_on lm ~xid:1 ~owner:1 = Lockmgr.Deadlock)

let test_locks_long_chain () =
  let lm = Lockmgr.create () in
  (* 1 -> 2 -> 3 -> 4; closing 4 -> 1 walks the whole chain *)
  check "1 waits 2" true (Lockmgr.wait_on lm ~xid:1 ~owner:2 = Lockmgr.Granted);
  check "2 waits 3" true (Lockmgr.wait_on lm ~xid:2 ~owner:3 = Lockmgr.Granted);
  check "3 waits 4" true (Lockmgr.wait_on lm ~xid:3 ~owner:4 = Lockmgr.Granted);
  check "4 waits 1 closes cycle" true (Lockmgr.wait_on lm ~xid:4 ~owner:1 = Lockmgr.Deadlock);
  (* chain is queryable edge by edge *)
  Alcotest.(check (option int)) "1 waits for 2" (Some 2) (Lockmgr.waits_for lm ~xid:1);
  Alcotest.(check (option int)) "3 waits for 4" (Some 4) (Lockmgr.waits_for lm ~xid:3);
  Alcotest.(check (option int)) "4 waits for nobody" None (Lockmgr.waits_for lm ~xid:4);
  (* a cross edge that does not close a cycle is fine *)
  check "4 waits 5 ok" true (Lockmgr.wait_on lm ~xid:4 ~owner:5 = Lockmgr.Granted)

let test_locks_release_clears_stale_edges () =
  let lm = Lockmgr.create () in
  ignore (Lockmgr.try_acquire lm ~xid:1 ~rel:0 ~key:10);
  (* 2 and 3 both wait on 1 *)
  check "2 waits 1" true (Lockmgr.wait_on lm ~xid:2 ~owner:1 = Lockmgr.Granted);
  check "3 waits 1" true (Lockmgr.wait_on lm ~xid:3 ~owner:1 = Lockmgr.Granted);
  Alcotest.(check (list int)) "both inbound" [ 2; 3 ]
    (List.sort compare (Lockmgr.waiters_of lm ~owner:1));
  (* owner finishes: its locks AND the edges pointing at it must go, or
     later transactions reusing paths through xid 1 see phantom cycles *)
  Lockmgr.release_all lm ~xid:1;
  Alcotest.(check (list int)) "no stale inbound edges" [] (Lockmgr.waiters_of lm ~owner:1);
  Alcotest.(check (option int)) "2 no longer waits" None (Lockmgr.waits_for lm ~xid:2);
  Alcotest.(check (option int)) "3 no longer waits" None (Lockmgr.waits_for lm ~xid:3);
  (* with the stale 2 -> 1 edge gone, 1's xid can be waited on afresh *)
  check "fresh wait ok" true (Lockmgr.wait_on lm ~xid:1 ~owner:2 = Lockmgr.Granted)

let test_locks_release_under_own_wait () =
  let lm = Lockmgr.create () in
  ignore (Lockmgr.try_acquire lm ~xid:1 ~rel:0 ~key:1);
  ignore (Lockmgr.try_acquire lm ~xid:2 ~rel:0 ~key:2);
  check "1 waits 2" true (Lockmgr.wait_on lm ~xid:1 ~owner:2 = Lockmgr.Granted);
  (* 1 aborts while still waiting: outbound edge and locks both vanish *)
  Lockmgr.release_all lm ~xid:1;
  Alcotest.(check (option int)) "own edge cleared" None (Lockmgr.waits_for lm ~xid:1);
  check "lock freed" true (Lockmgr.try_acquire lm ~xid:3 ~rel:0 ~key:1 = Lockmgr.Granted);
  check "2 -> 1 would not deadlock" true (Lockmgr.wait_on lm ~xid:2 ~owner:1 = Lockmgr.Granted)

(* Property: after any interleaving of begin/commit/abort, every finished
   transaction has a final status and actives match. *)
let qcheck_txn_state_machine =
  QCheck.Test.make ~name:"txn manager state machine" ~count:100
    QCheck.(list_of_size Gen.(int_range 1 60) (int_bound 2))
    (fun ops ->
      let mgr = Txn.create_mgr () in
      let active = ref [] in
      let finished = ref [] in
      List.iter
        (fun op ->
          match (op, !active) with
          | 0, _ ->
              let t = Txn.begin_txn mgr in
              active := t :: !active
          | 1, t :: rest ->
              Txn.commit mgr t;
              active := rest;
              finished := (t.Txn.xid, Txn.Committed) :: !finished
          | _, t :: rest ->
              Txn.abort mgr t;
              active := rest;
              finished := (t.Txn.xid, Txn.Aborted) :: !finished
          | _, [] -> ())
        ops;
      let actives_ok =
        List.for_all (fun t -> Txn.status mgr t.Txn.xid = Txn.In_progress) !active
      in
      let finished_ok = List.for_all (fun (x, s) -> Txn.status mgr x = s) !finished in
      let set_ok =
        List.sort compare (Txn.active_xids mgr)
        = List.sort compare (List.map (fun t -> t.Txn.xid) !active)
      in
      actives_ok && finished_ok && set_ok)

let suite =
  [
    Alcotest.test_case "snapshot visibility rules" `Quick test_snapshot_sees;
    Alcotest.test_case "txn lifecycle" `Quick test_txn_lifecycle;
    Alcotest.test_case "concurrent sets" `Quick test_txn_concurrent_sets;
    Alcotest.test_case "visibility predicate" `Quick test_visibility_predicate;
    Alcotest.test_case "aborted invisible" `Quick test_visibility_aborted;
    Alcotest.test_case "gc horizon" `Quick test_horizon;
    Alcotest.test_case "clog recovery" `Quick test_recovery_clog;
    Alcotest.test_case "locks basic" `Quick test_locks_basic;
    Alcotest.test_case "deadlock detection" `Quick test_locks_deadlock_detection;
    Alcotest.test_case "three-party deadlock" `Quick test_locks_deadlock_three_party;
    Alcotest.test_case "self wait" `Quick test_locks_self_wait;
    Alcotest.test_case "long wait chain" `Quick test_locks_long_chain;
    Alcotest.test_case "release clears stale inbound edges" `Quick
      test_locks_release_clears_stale_edges;
    Alcotest.test_case "release while waiting" `Quick test_locks_release_under_own_wait;
    QCheck_alcotest.to_alcotest qcheck_txn_state_machine;
  ]
