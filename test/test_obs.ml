(* Observability layer: event bus, metrics registry, span tracer, the
   engine registry, blocktrace record retention, and the end-to-end
   guarantee that recorder counters reconcile with the block trace. *)

open Alcotest
module Bus = Sias_obs.Bus
module Metrics = Sias_obs.Metrics
module Tracer = Sias_obs.Tracer
module Stats = Sias_util.Stats
module B = Flashsim.Blocktrace

let checki = check int
let checkf = check (float 1e-9)

(* ---------------- bus ---------------- *)

let test_bus_basics () =
  let bus = Bus.create () in
  check bool "fresh bus inactive" false (Bus.active bus);
  (* publish with no subscribers is a no-op *)
  Bus.publish bus (Bus.Txn_begin { xid = 1 });
  let seen = ref [] in
  Bus.subscribe bus (fun e -> seen := e :: !seen);
  check bool "active after subscribe" true (Bus.active bus);
  checki "subscriber count" 1 (Bus.subscriber_count bus);
  Bus.publish bus (Bus.Txn_begin { xid = 7 });
  Bus.publish bus (Bus.Txn_commit { xid = 7 });
  checki "events delivered" 2 (List.length !seen);
  (match List.rev !seen with
  | [ Bus.Txn_begin { xid = a }; Bus.Txn_commit { xid = b } ] ->
      checki "payload xid begin" 7 a;
      checki "payload xid commit" 7 b
  | _ -> fail "wrong events or order");
  (* every subscriber sees every event *)
  let n2 = ref 0 in
  Bus.subscribe bus (fun _ -> incr n2);
  Bus.publish bus Bus.Txn_shed;
  checki "second subscriber sees event" 1 !n2;
  checki "first subscriber still fed" 3 (List.length !seen)

(* ---------------- Sample / Histogram percentile edges ---------------- *)

let test_sample_percentile_edges () =
  let s = Stats.Sample.create () in
  check_raises "empty sample raises"
    (Invalid_argument "Stats.Sample.percentile: empty sample") (fun () ->
      ignore (Stats.Sample.percentile s 50.0));
  Stats.Sample.add s 3.0;
  checkf "single obs p0" 3.0 (Stats.Sample.percentile s 0.0);
  checkf "single obs p50" 3.0 (Stats.Sample.percentile s 50.0);
  checkf "single obs p100" 3.0 (Stats.Sample.percentile s 100.0);
  Stats.Sample.add s 1.0;
  Stats.Sample.add s 2.0;
  checkf "p0 is min" 1.0 (Stats.Sample.percentile s 0.0);
  checkf "p100 is max" 3.0 (Stats.Sample.percentile s 100.0);
  check_raises "p out of range raises"
    (Invalid_argument "Stats.Sample.percentile: p out of range")
    (fun () -> ignore (Stats.Sample.percentile s 101.0))

let test_histogram_percentile () =
  let h = Stats.Histogram.create ~bucket_width:0.1 ~buckets:10 in
  check_raises "empty histogram raises"
    (Invalid_argument "Stats.Histogram.percentile: empty histogram")
    (fun () -> ignore (Stats.Histogram.percentile h 50.0));
  Stats.Histogram.add h 0.05;
  (* single observation in bucket 0: every percentile reports its upper
     edge *)
  checkf "single obs p0" 0.1 (Stats.Histogram.percentile h 0.0);
  checkf "single obs p100" 0.1 (Stats.Histogram.percentile h 100.0);
  for _ = 1 to 98 do
    Stats.Histogram.add h 0.25 (* bucket 2, edge 0.3 *)
  done;
  Stats.Histogram.add h 0.95 (* last bucket, edge 1.0 *);
  checkf "p50 mid bucket" 0.3 (Stats.Histogram.percentile h 50.0);
  checkf "p100 last bucket" 1.0 (Stats.Histogram.percentile h 100.0);
  (* clamping: beyond-range observations land in the last bucket *)
  Stats.Histogram.add h 99.0;
  checkf "clamped obs in last bucket" 1.0 (Stats.Histogram.percentile h 100.0);
  check_raises "p out of range raises"
    (Invalid_argument "Stats.Histogram.percentile: p out of range")
    (fun () -> ignore (Stats.Histogram.percentile h (-1.0)))

(* ---------------- metrics registry ---------------- *)

let test_metrics_counters () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~labels:[ ("op", "read") ] "io_total" in
  let c' = Metrics.counter m ~labels:[ ("op", "read") ] "io_total" in
  Metrics.incr c;
  Metrics.add c' 4;
  checki "same (name,labels) is same handle" 5 (Metrics.counter_value c);
  (* label order does not create a distinct series *)
  let c'' =
    Metrics.counter m ~labels:[ ("b", "2"); ("a", "1") ] "multi"
  and c3 = Metrics.counter m ~labels:[ ("a", "1"); ("b", "2") ] "multi" in
  Metrics.incr c'';
  checki "canonicalized labels share series" 1 (Metrics.counter_value c3);
  check (option (float 1e-9)) "value lookup" (Some 5.0)
    (Metrics.value m ~labels:[ ("op", "read") ] "io_total");
  check (option (float 1e-9)) "missing series" None
    (Metrics.value m ~labels:[ ("op", "write") ] "io_total");
  Metrics.reset m;
  checki "reset zeroes, keeps handle" 0 (Metrics.counter_value c);
  Metrics.incr c;
  checki "handle live after reset" 1 (Metrics.counter_value c)

let test_metrics_histogram () =
  let m = Metrics.create () in
  let h =
    Metrics.histogram m ~bucket_width:0.001 ~buckets:100 "lat_seconds"
  in
  checkf "empty quantile is 0" 0.0 (Metrics.quantile h 99.0);
  for _ = 1 to 90 do
    Metrics.observe h 0.0005
  done;
  for _ = 1 to 10 do
    Metrics.observe h 0.0505
  done;
  checki "count" 100 (Metrics.histogram_count h);
  checkf "p50 in first bucket" 0.001 (Metrics.quantile h 50.0);
  checkf "p99 in tail bucket" 0.051 (Metrics.quantile h 99.0);
  check bool "sum accumulates" true
    (abs_float (Metrics.histogram_sum h -. ((90.0 *. 0.0005) +. (10.0 *. 0.0505)))
    < 1e-9)

let test_prometheus_golden () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~help:"Requests" ~labels:[ ("op", "read") ] "req_total" in
  Metrics.add c 3;
  let g = Metrics.gauge m ~help:"Depth" "queue_depth" in
  Metrics.set_gauge g 2.5;
  let h = Metrics.histogram m ~help:"Latency" ~bucket_width:0.5 ~buckets:2 "lat" in
  Metrics.observe h 0.1;
  Metrics.observe h 0.7;
  Metrics.observe h 0.7;
  let expected =
    String.concat "\n"
      [
        "# HELP req_total Requests";
        "# TYPE req_total counter";
        "req_total{op=\"read\"} 3";
        "# HELP queue_depth Depth";
        "# TYPE queue_depth gauge";
        "queue_depth 2.5";
        "# HELP lat Latency";
        "# TYPE lat histogram";
        "lat_bucket{le=\"0.5\"} 1";
        "lat_bucket{le=\"1\"} 3";
        "lat_bucket{le=\"+Inf\"} 3";
        "lat_sum 1.5";
        "lat_count 3";
        "";
      ]
  in
  check string "prometheus text" expected (Metrics.to_prometheus m)

let test_metrics_json_valid () =
  let m = Metrics.create () in
  let c = Metrics.counter m ~labels:[ ("k", "a\"b\\c") ] "esc_total" in
  Metrics.incr c;
  let h = Metrics.histogram m "lat" in
  Metrics.observe h 0.001;
  let json = Metrics.to_json m in
  (* minimal well-formedness: balanced braces/brackets outside strings,
     no trailing commas before closers *)
  let depth = ref 0 and in_str = ref false and prev = ref ' ' and ok = ref true in
  String.iter
    (fun ch ->
      if !in_str then begin
        if ch = '"' && !prev <> '\\' then in_str := false
      end
      else begin
        (match ch with
        | '"' -> in_str := true
        | '{' | '[' -> incr depth
        | '}' | ']' ->
            decr depth;
            if !prev = ',' then ok := false
        | _ -> ());
        if !depth < 0 then ok := false
      end;
      (* a backslash escaping a backslash must not hide the next quote *)
      prev := (if !prev = '\\' && ch = '\\' then ' ' else ch))
    json;
  check bool "balanced and comma-clean" true (!ok && !depth = 0 && not !in_str);
  check bool "escaped label survives" true
    (let sub = "a\\\"b\\\\c" in
     let n = String.length json and m' = String.length sub in
     let rec find i = i + m' <= n && (String.sub json i m' = sub || find (i + 1)) in
     find 0)

(* ---------------- tracer ---------------- *)

let test_tracer_spans () =
  let bus = Bus.create () in
  let clock = Sias_util.Simclock.create () in
  let tr = Tracer.attach ~clock bus in
  Bus.publish bus
    (Bus.Span { cat = "txn"; name = "new-order"; tid = 3; t0 = 0.5; t1 = 0.75 });
  Sias_util.Simclock.advance clock 1.0;
  Bus.publish bus (Bus.Checkpoint { pages = 10 });
  Bus.publish bus (Bus.Txn_begin { xid = 1 });
  (* non-traced event ignored *)
  checki "span + instant retained" 2 (Tracer.event_count tr);
  let json = Tracer.to_json tr in
  let contains sub =
    let n = String.length json and m = String.length sub in
    let rec find i = i + m <= n && (String.sub json i m = sub || find (i + 1)) in
    find 0
  in
  check bool "wrapper object" true (contains "{\"traceEvents\":[");
  check bool "complete event" true (contains "\"ph\":\"X\"");
  check bool "micros timestamp" true (contains "\"ts\":500000.000");
  check bool "duration" true (contains "\"dur\":250000.000");
  check bool "instant event at sim-now" true
    (contains "\"ph\":\"i\"" && contains "\"ts\":1000000.000")

let test_tracer_drop_cap () =
  let bus = Bus.create () in
  let clock = Sias_util.Simclock.create () in
  let tr = Tracer.attach ~max_events:3 ~clock bus in
  for i = 1 to 5 do
    Bus.publish bus
      (Bus.Span
         { cat = "c"; name = "s"; tid = 0; t0 = float_of_int i; t1 = float_of_int i })
  done;
  checki "capped" 3 (Tracer.event_count tr);
  checki "overflow counted" 2 (Tracer.dropped tr)

(* ---------------- engine registry ---------------- *)

let test_engine_registry () =
  check (list string) "canonical keys"
    [ "si"; "si-cv"; "sias"; "sias-v" ]
    (Mvcc.Engine.keys ());
  List.iter
    (fun (alias, key) ->
      match Mvcc.Engine.resolve alias with
      | Some (k, _) -> check string (alias ^ " resolves") key k
      | None -> fail (alias ^ " did not resolve"))
    [
      ("si", "si"); ("si-cv", "si-cv"); ("sias", "sias"); ("chains", "sias");
      ("sias-v", "sias-v"); ("vectors", "sias-v");
    ];
  check bool "unknown engine" true (Mvcc.Engine.find "nonesuch" = None);
  List.iter
    (fun (key, display) ->
      check string (key ^ " display") display (Mvcc.Engine.display_name key))
    [ ("si", "SI"); ("si-cv", "SI-CV"); ("sias", "SIAS"); ("sias-v", "SIAS-V") ];
  check string "unknown display echoes" "x" (Mvcc.Engine.display_name "x");
  (* registered modules are the real engines, usable as first-class
     modules *)
  let (module E : Mvcc.Engine.S) = Option.get (Mvcc.Engine.find "sias-v") in
  let db = Mvcc.Db.create ~buffer_pages:64 () in
  let eng = E.create db in
  let table = E.create_table eng ~name:"t" ~pk_col:0 () in
  let txn = E.begin_txn eng in
  Result.get_ok (E.insert eng txn table [| Mvcc.Value.Int 1; Mvcc.Value.Int 9 |]);
  E.commit eng txn |> Result.get_ok;
  let txn = E.begin_txn eng in
  (match E.read eng txn table ~pk:1 with
  | Some row -> (
      match row.(1) with
      | Mvcc.Value.Int v -> checki "registry module round-trips" 9 v
      | _ -> fail "wrong column type")
  | None -> fail "row not visible");
  E.commit eng txn |> Result.get_ok

(* ---------------- blocktrace record retention ---------------- *)

let test_blocktrace_retention () =
  let t = B.create ~keep_records:true ~max_records:4 () in
  for i = 0 to 9 do
    B.add t ~time:(float_of_int i)
      ~op:(if i mod 2 = 0 then B.Read else B.Write)
      ~sector:(i * 8) ~bytes:4096
  done;
  (* counters stay exact after eviction of the record window *)
  checki "read count exact" 5 (B.read_count t);
  checki "write count exact" 5 (B.write_count t);
  checki "read bytes exact" (5 * 4096) (B.read_bytes t);
  checki "write bytes exact" (5 * 4096) (B.write_bytes t);
  let recs = B.records t in
  checki "record window bounded" 4 (List.length recs);
  (* retention stops once full: the earliest window survives, in
     submission order *)
  check (list (float 1e-9)) "earliest records kept" [ 0.0; 1.0; 2.0; 3.0 ]
    (List.map (fun r -> r.B.time) recs);
  (* toggling retention mid-run drops records, never counters *)
  B.set_keep_records t false;
  checki "records dropped" 0 (List.length (B.records t));
  B.add t ~time:10.0 ~op:B.Write ~sector:80 ~bytes:4096;
  checki "counters still accumulate" 6 (B.write_count t);
  checki "no records while off" 0 (List.length (B.records t));
  B.set_keep_records t true;
  B.add t ~time:11.0 ~op:B.Read ~sector:88 ~bytes:4096;
  checki "retention resumes" 1 (List.length (B.records t));
  checki "read counter unbroken" 6 (B.read_count t)

let contains hay sub =
  let n = String.length hay and m = String.length sub in
  let rec find i = i + m <= n && (String.sub hay i m = sub || find (i + 1)) in
  find 0

let test_blocktrace_truncation_accounting () =
  let t = B.create ~keep_records:true ~max_records:4 () in
  for i = 0 to 9 do
    B.add t ~time:(float_of_int i)
      ~op:(if i mod 2 = 0 then B.Read else B.Write)
      ~sector:(i * 8) ~bytes:4096
  done;
  (* requests beyond the cap are counted, not silently forgotten *)
  checki "dropped counted" 6 (B.dropped_records t);
  checki "counters = retained + dropped"
    (B.read_count t + B.write_count t)
    (List.length (B.records t) + B.dropped_records t);
  (* renderings of a truncated trace say so *)
  check bool "scatter carries truncation notice" true
    (contains (B.render_scatter t) "truncated");
  check bool "csv carries truncation comment" true
    (contains (B.to_csv t) "# truncated: 6 records dropped");
  (* shrinking the cap discards retained records into the dropped count
     and restarts retention under the new cap *)
  B.set_max_records t 2;
  checki "retained discarded on shrink" 0 (List.length (B.records t));
  checki "dropped includes discarded" 10 (B.dropped_records t);
  B.add t ~time:10.0 ~op:B.Write ~sector:80 ~bytes:512;
  checki "retention restarts under new cap" 1 (List.length (B.records t));
  (* toggling retention off clears the truncation state with the records *)
  B.set_keep_records t false;
  checki "dropped cleared with retention off" 0 (B.dropped_records t);
  (* an untruncated trace renders without notices *)
  let t2 = B.create ~keep_records:true () in
  B.add t2 ~time:0.0 ~op:B.Write ~sector:0 ~bytes:4096;
  check bool "clean scatter has no notice" false
    (contains (B.render_scatter t2) "truncated");
  check bool "clean csv has no notice" false (contains (B.to_csv t2) "truncated")

let test_device_info_reports_trace_drops () =
  let module Device = Flashsim.Device in
  let d = Device.ssd_x25e ~blocks:256 () in
  B.set_max_records (Device.trace d) 2;
  for i = 0 to 5 do
    ignore
      (Device.submit d
         ~now:(float_of_int i *. 0.01)
         B.Write ~sector:(i * 8) ~bytes:4096)
  done;
  check bool "info reports dropped trace records" true
    (List.assoc_opt "trace_dropped_records" (Device.info d) = Some 4.0);
  (* the reconciliation key only appears once something was dropped *)
  let d2 = Device.ssd_x25e ~blocks:256 () in
  ignore (Device.submit d2 ~now:0.0 B.Write ~sector:0 ~bytes:4096);
  check bool "no dropped key on a complete trace" true
    (List.assoc_opt "trace_dropped_records" (Device.info d2) = None)

(* ---------------- end-to-end: recorder vs blocktrace ---------------- *)

let test_recorder_reconciles_blocktrace () =
  let o =
    Harness.Experiments.run_tpcc
      {
        (Harness.Experiments.default_setup ~engine:"si" ~warehouses:2) with
        Harness.Experiments.duration_s = 20.0;
        buffer_pages = 128;
        scale_div = 300;
        flush = Harness.Experiments.T1;
        collect_metrics = true;
      }
  in
  let m = Option.get o.Harness.Experiments.metrics in
  let metric name labels =
    match Metrics.value m ~labels name with Some v -> int_of_float v | None -> 0
  in
  let trace = o.Harness.Experiments.trace in
  checki "write requests reconcile" (B.write_count trace)
    (metric "sias_device_io_total" [ ("device", "data-ssd"); ("op", "write") ]);
  checki "write bytes reconcile" (B.write_bytes trace)
    (metric "sias_device_bytes_total" [ ("device", "data-ssd"); ("op", "write") ]);
  checki "read requests reconcile" (B.read_count trace)
    (metric "sias_device_io_total" [ ("device", "data-ssd"); ("op", "read") ]);
  checki "read bytes reconcile" (B.read_bytes trace)
    (metric "sias_device_bytes_total" [ ("device", "data-ssd"); ("op", "read") ]);
  check bool "some io actually happened" true (B.write_count trace > 0);
  (* txn counters agree with the workload report *)
  let committed =
    List.fold_left
      (fun acc (_, ks) -> acc + ks.Tpcc.Tpcc_workload.committed)
      0 o.Harness.Experiments.result.Tpcc.Tpcc_workload.per_kind
  in
  checki "commit counter matches driver" committed
    (metric "sias_txn_total" [ ("event", "commit") ])

(* The recorder's sias_ssi_* / sias_wsi_* metric families must reconcile
   with the Ssimgr's own counters: every counter increment publishes one
   bus event, so with the recorder attached the two views of a run agree
   exactly. Uses sias-v so both edge provenances (lineage and table)
   appear. *)
let test_ssi_metrics_reconcile () =
  let module E = Mvcc.Sias_vector in
  let module Db = Mvcc.Db in
  let module S = Mvcc.Ssimgr in
  let module V = Mvcc.Value in
  let bus = Bus.create () in
  let m = Metrics.create () in
  Sias_obs.Recorder.attach m bus;
  let db = Db.create ~bus ~isolation:`Ssi () in
  let eng = E.create db in
  let table = E.create_table eng ~name:"t" ~pk_col:0 () in
  let s = E.begin_txn eng in
  E.insert eng s table [| V.Int 1; V.Int 1 |] |> Result.get_ok;
  E.insert eng s table [| V.Int 2; V.Int 1 |] |> Result.get_ok;
  E.commit eng s |> Result.get_ok;
  (* a write-skew round: exactly one pivot abort *)
  let t1 = E.begin_txn eng in
  let t2 = E.begin_txn eng in
  ignore (E.read eng t1 table ~pk:2);
  ignore (E.read eng t2 table ~pk:1);
  let zero r = (let r = Array.copy r in r.(1) <- V.Int 0; r) in
  E.update eng t1 table ~pk:1 zero |> Result.get_ok;
  E.update eng t2 table ~pk:2 zero |> Result.get_ok;
  let r1 = E.commit eng t1 in
  let r2 = E.commit eng t2 in
  check bool "exactly one commit refused" true
    (Result.is_ok r1 <> Result.is_ok r2);
  (* a safe snapshot: read-only, no concurrents *)
  let ro = Db.begin_txn ~read_only:true db in
  ignore (E.read eng ro table ~pk:1);
  check bool "safe snapshot commits" true (E.commit eng ro = Ok ());
  let mgr = Option.get (Db.ssimgr db) in
  let metric name labels =
    match Metrics.value m ~labels name with Some v -> int_of_float v | None -> 0
  in
  checki "SIREAD lock metric reconciles" (S.siread_locks mgr)
    (metric "sias_ssi_siread_locks_total" [ ("kind", "key") ]
    + metric "sias_ssi_siread_locks_total" [ ("kind", "predicate") ]);
  checki "lineage rw-edge metric reconciles" (S.lineage_edges mgr)
    (metric "sias_ssi_rw_edges_total" [ ("source", "lineage") ]);
  checki "table rw-edge metric reconciles" (S.table_edges mgr)
    (metric "sias_ssi_rw_edges_total" [ ("source", "table") ]);
  checki "pivot abort metric reconciles" (S.pivot_aborts mgr)
    (metric "sias_ssi_pivot_aborts_total" [ ("confirmed", "true") ]
    + metric "sias_ssi_pivot_aborts_total" [ ("confirmed", "false") ]);
  checki "confirmed pivot metric reconciles" (S.confirmed_pivot_aborts mgr)
    (metric "sias_ssi_pivot_aborts_total" [ ("confirmed", "true") ]);
  checkf "false-positive-rate gauge reconciles" (S.false_positive_rate mgr)
    (Option.value ~default:(-1.0)
       (Metrics.value m "sias_ssi_false_positive_rate"));
  checki "safe snapshot metric reconciles" (S.safe_snapshots mgr)
    (metric "sias_ssi_safe_snapshots_total" []);
  check bool "pivot abort was observed" true (S.pivot_aborts mgr > 0);
  (* same bus and registry, a wsi context: certification aborts *)
  let db2 = Db.create ~bus ~isolation:`Wsi () in
  let eng2 = E.create db2 in
  let t = E.create_table eng2 ~name:"t" ~pk_col:0 () in
  let s = E.begin_txn eng2 in
  E.insert eng2 s t [| V.Int 1; V.Int 1 |] |> Result.get_ok;
  E.insert eng2 s t [| V.Int 2; V.Int 1 |] |> Result.get_ok;
  E.commit eng2 s |> Result.get_ok;
  let a = E.begin_txn eng2 in
  let b = E.begin_txn eng2 in
  ignore (E.read eng2 a t ~pk:1);
  E.update eng2 a t ~pk:2 zero |> Result.get_ok;
  E.update eng2 b t ~pk:1 zero |> Result.get_ok;
  E.commit eng2 b |> Result.get_ok;
  check bool "wsi read certification refuses the commit" true
    (Result.is_error (E.commit eng2 a));
  let mgr2 = Option.get (Db.ssimgr db2) in
  checki "wsi certify metric reconciles" (S.certify_aborts mgr2)
    (metric "sias_wsi_certify_aborts_total" []);
  check bool "certify abort was observed" true (S.certify_aborts mgr2 > 0)

(* The paged-index counters are driven purely by bus events; with a
   manual subscriber and the recorder on the same bus, the recorder's
   metrics must agree event-for-event with the raw stream, and the
   split/merge counters must agree with the tree's own stats. *)
let test_index_metrics_reconcile () =
  let module Db = Mvcc.Db in
  let module Pbt = Sias_index.Paged_btree in
  let bus = Bus.create () in
  let m = Metrics.create () in
  Sias_obs.Recorder.attach m bus;
  let pages = ref 0 and deltas = ref 0 and splits = ref 0 and merges = ref 0 in
  Bus.subscribe bus (function
    | Bus.Index_split _ -> incr splits
    | Bus.Index_merge _ -> incr merges
    | Bus.Index_page_io { deltas = d; _ } ->
        incr pages;
        deltas := !deltas + d
    | _ -> ());
  (* subscribe before the tree exists: creation logs a batch too *)
  let db = Db.create ~bus ~index:`Paged () in
  let rel = Db.alloc_rel db in
  let t = Mvcc.Walcodec.make_index db ~rel in
  for k = 1 to 1_000 do
    Pbt.insert t ~key:k ~payload:k
  done;
  for k = 1 to 400 do
    ignore (Pbt.delete t ~key:k ~payload:k)
  done;
  let metric name =
    match Metrics.value m name with Some v -> int_of_float v | None -> 0
  in
  let st = Pbt.stats t in
  check bool "splits happened" true (st.Pbt.splits > 0);
  checki "split events match tree stats" st.Pbt.splits !splits;
  checki "merge events match tree stats" st.Pbt.merges !merges;
  checki "split metric reconciles" !splits (metric "sias_index_splits_total");
  checki "merge metric reconciles" !merges (metric "sias_index_merges_total");
  checki "page-write metric reconciles" !pages
    (metric "sias_index_pages_written_total");
  checki "delta metric reconciles" !deltas (metric "sias_index_deltas_total");
  check bool "page writes observed" true (!pages > 0)

let suite =
  [
    test_case "bus: subscribe/publish/active" `Quick test_bus_basics;
    test_case "sample percentile edge cases" `Quick test_sample_percentile_edges;
    test_case "bucket histogram percentile" `Quick test_histogram_percentile;
    test_case "metrics: counters, labels, reset" `Quick test_metrics_counters;
    test_case "metrics: histogram quantiles" `Quick test_metrics_histogram;
    test_case "metrics: prometheus golden text" `Quick test_prometheus_golden;
    test_case "metrics: json exporter well-formed" `Quick test_metrics_json_valid;
    test_case "tracer: chrome trace events" `Quick test_tracer_spans;
    test_case "tracer: drop cap" `Quick test_tracer_drop_cap;
    test_case "engine registry: keys, aliases, modules" `Quick test_engine_registry;
    test_case "blocktrace: retention vs counters" `Quick test_blocktrace_retention;
    test_case "blocktrace: truncation accounting and notices" `Quick
      test_blocktrace_truncation_accounting;
    test_case "device info reports trace drops" `Quick
      test_device_info_reports_trace_drops;
    test_case "recorder reconciles with blocktrace" `Quick
      test_recorder_reconciles_blocktrace;
    test_case "ssi/wsi metrics reconcile with ssimgr counters" `Quick
      test_ssi_metrics_reconcile;
    test_case "paged-index metrics reconcile with bus events" `Quick
      test_index_metrics_reconcile;
  ]
