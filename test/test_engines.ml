(* Black-box MVCC contract tests, run identically against the SI baseline
   and the SIAS engines through the common Engine.S signature. *)

module Value = Mvcc.Value
module Db = Mvcc.Db
module Engine = Mvcc.Engine
module Bufpool = Sias_storage.Bufpool

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)

let row k v extra = [| Value.Int k; Value.Int v; Value.Str extra |]

let geti (r : Value.t array) i = Value.int r.(i)

module Make (E : Engine.S) = struct
  let fresh ?(buffer_pages = 512) () =
    let db = Db.create ~buffer_pages () in
    let eng = E.create db in
    let table = E.create_table eng ~name:"t" ~pk_col:0 ~secondary:[ 1 ] () in
    (eng, table)

  let with_txn eng f =
    let txn = E.begin_txn eng in
    let r = f txn in
    E.commit eng txn |> Result.get_ok;
    r

  let put eng table txn k v = E.insert eng txn table (row k v "pad") |> Result.get_ok

  let test_insert_read_commit () =
    let eng, table = fresh () in
    with_txn eng (fun txn -> put eng table txn 1 100);
    with_txn eng (fun txn ->
        match E.read eng txn table ~pk:1 with
        | Some r -> checki "value" 100 (geti r 1)
        | None -> Alcotest.fail "row missing")

  let test_read_own_writes () =
    let eng, table = fresh () in
    let txn = E.begin_txn eng in
    put eng table txn 1 100;
    (match E.read eng txn table ~pk:1 with
    | Some r -> checki "own insert visible" 100 (geti r 1)
    | None -> Alcotest.fail "own write invisible");
    E.update eng txn table ~pk:1 (fun r ->
        let r = Array.copy r in
        r.(1) <- Value.Int 200;
        r)
    |> Result.get_ok;
    (match E.read eng txn table ~pk:1 with
    | Some r -> checki "own update visible" 200 (geti r 1)
    | None -> Alcotest.fail "own update invisible");
    E.commit eng txn |> Result.get_ok

  let test_uncommitted_invisible () =
    let eng, table = fresh () in
    let writer = E.begin_txn eng in
    put eng table writer 1 100;
    let reader = E.begin_txn eng in
    check "uncommitted invisible" true (E.read eng reader table ~pk:1 = None);
    E.commit eng writer |> Result.get_ok;
    (* reader's snapshot predates the commit *)
    check "still invisible to old snapshot" true (E.read eng reader table ~pk:1 = None);
    E.commit eng reader |> Result.get_ok;
    with_txn eng (fun txn -> check "visible to new txn" true (E.read eng txn table ~pk:1 <> None))

  let test_snapshot_stability () =
    let eng, table = fresh () in
    with_txn eng (fun txn -> put eng table txn 1 100);
    let reader = E.begin_txn eng in
    (match E.read eng reader table ~pk:1 with
    | Some r -> checki "sees 100" 100 (geti r 1)
    | None -> Alcotest.fail "missing");
    (* another txn updates and commits *)
    with_txn eng (fun txn ->
        E.update eng txn table ~pk:1 (fun r ->
            let r = Array.copy r in
            r.(1) <- Value.Int 200;
            r)
        |> Result.get_ok);
    (* the old snapshot must keep seeing the old version: time travel *)
    (match E.read eng reader table ~pk:1 with
    | Some r -> checki "still sees 100" 100 (geti r 1)
    | None -> Alcotest.fail "old version vanished");
    E.commit eng reader |> Result.get_ok;
    with_txn eng (fun txn ->
        match E.read eng txn table ~pk:1 with
        | Some r -> checki "new txn sees 200" 200 (geti r 1)
        | None -> Alcotest.fail "missing")

  let test_duplicate_key () =
    let eng, table = fresh () in
    with_txn eng (fun txn -> put eng table txn 1 100);
    let txn = E.begin_txn eng in
    check "duplicate rejected" true
      (E.insert eng txn table (row 1 999 "x") = Error Engine.Duplicate_key);
    E.abort eng txn

  let test_update_missing () =
    let eng, table = fresh () in
    let txn = E.begin_txn eng in
    check "not found" true
      (E.update eng txn table ~pk:42 (fun r -> r) = Error Engine.Not_found);
    E.abort eng txn

  let test_delete_semantics () =
    let eng, table = fresh () in
    with_txn eng (fun txn -> put eng table txn 1 100);
    let old_reader = E.begin_txn eng in
    with_txn eng (fun txn -> E.delete eng txn table ~pk:1 |> Result.get_ok);
    (* deleted for new snapshots, still there for the old one *)
    with_txn eng (fun txn -> check "gone" true (E.read eng txn table ~pk:1 = None));
    check "old snapshot still sees it" true (E.read eng old_reader table ~pk:1 <> None);
    E.commit eng old_reader |> Result.get_ok;
    (* reinsert after delete works *)
    with_txn eng (fun txn -> put eng table txn 1 500);
    with_txn eng (fun txn ->
        match E.read eng txn table ~pk:1 with
        | Some r -> checki "reinserted" 500 (geti r 1)
        | None -> Alcotest.fail "reinsert missing")

  let test_abort_rolls_back () =
    let eng, table = fresh () in
    with_txn eng (fun txn -> put eng table txn 1 100);
    let txn = E.begin_txn eng in
    put eng table txn 2 200;
    E.update eng txn table ~pk:1 (fun r ->
        let r = Array.copy r in
        r.(1) <- Value.Int 999;
        r)
    |> Result.get_ok;
    E.abort eng txn;
    with_txn eng (fun t ->
        check "aborted insert gone" true (E.read eng t table ~pk:2 = None);
        match E.read eng t table ~pk:1 with
        | Some r -> checki "aborted update undone" 100 (geti r 1)
        | None -> Alcotest.fail "row vanished")

  let test_update_after_abort () =
    let eng, table = fresh () in
    with_txn eng (fun txn -> put eng table txn 1 100);
    let t1 = E.begin_txn eng in
    E.update eng t1 table ~pk:1 (fun r ->
        let r = Array.copy r in
        r.(1) <- Value.Int 111;
        r)
    |> Result.get_ok;
    E.abort eng t1;
    (* after the aborter releases, another txn can update *)
    with_txn eng (fun t2 ->
        check "update after abort ok" true
          (E.update eng t2 table ~pk:1 (fun r ->
               let r = Array.copy r in
               r.(1) <- Value.Int 222;
               r)
          = Ok ()));
    with_txn eng (fun t ->
        match E.read eng t table ~pk:1 with
        | Some r -> checki "final value" 222 (geti r 1)
        | None -> Alcotest.fail "missing")

  let test_first_updater_wins_active () =
    let eng, table = fresh () in
    with_txn eng (fun txn -> put eng table txn 1 100);
    let t1 = E.begin_txn eng in
    let t2 = E.begin_txn eng in
    E.update eng t1 table ~pk:1 (fun r -> r) |> Result.get_ok;
    (* t1 still running: t2 must not update the same item *)
    check "concurrent update conflicts" true
      (E.update eng t2 table ~pk:1 (fun r -> r) = Error Engine.Write_conflict);
    E.commit eng t1 |> Result.get_ok;
    (* t1 committed after t2's snapshot: still a conflict (lost update) *)
    check "lost update prevented" true
      (E.update eng t2 table ~pk:1 (fun r -> r) = Error Engine.Write_conflict);
    E.abort eng t2

  let test_scan_counts () =
    let eng, table = fresh () in
    with_txn eng (fun txn ->
        for k = 1 to 20 do
          put eng table txn k (k * 10)
        done);
    with_txn eng (fun txn ->
        for k = 1 to 5 do
          E.update eng txn table ~pk:k (fun r -> r) |> Result.get_ok
        done;
        E.delete eng txn table ~pk:20 |> Result.get_ok);
    with_txn eng (fun txn ->
        let sum = ref 0 in
        let n = E.scan eng txn table (fun r -> sum := !sum + geti r 1) in
        checki "19 visible rows" 19 n;
        checki "one version per item"
          (List.init 19 (fun i -> (i + 1) * 10) |> List.fold_left ( + ) 0)
          !sum)

  let test_secondary_lookup () =
    let eng, table = fresh () in
    with_txn eng (fun txn ->
        put eng table txn 1 7;
        put eng table txn 2 7;
        put eng table txn 3 8);
    with_txn eng (fun txn ->
        checki "two rows with value 7" 2 (List.length (E.lookup eng txn table ~col:1 ~key:7));
        checki "one row with value 8" 1 (List.length (E.lookup eng txn table ~col:1 ~key:8));
        checki "none with 9" 0 (List.length (E.lookup eng txn table ~col:1 ~key:9)))

  let test_secondary_after_key_update () =
    let eng, table = fresh () in
    with_txn eng (fun txn -> put eng table txn 1 7);
    with_txn eng (fun txn ->
        E.update eng txn table ~pk:1 (fun r ->
            let r = Array.copy r in
            r.(1) <- Value.Int 9;
            r)
        |> Result.get_ok);
    with_txn eng (fun txn ->
        checki "old key no longer matches" 0 (List.length (E.lookup eng txn table ~col:1 ~key:7));
        checki "new key matches" 1 (List.length (E.lookup eng txn table ~col:1 ~key:9)))

  let test_range_pk () =
    let eng, table = fresh () in
    with_txn eng (fun txn ->
        for k = 1 to 30 do
          put eng table txn k k
        done);
    with_txn eng (fun txn ->
        let rows = E.range_pk eng txn table ~lo:10 ~hi:15 in
        checki "six rows" 6 (List.length rows);
        check "right keys" true
          (List.map (fun r -> geti r 0) rows |> List.sort compare = [ 10; 11; 12; 13; 14; 15 ]))

  let test_many_versions_then_gc () =
    let eng, table = fresh () in
    with_txn eng (fun txn -> put eng table txn 1 0);
    for i = 1 to 50 do
      with_txn eng (fun txn ->
          E.update eng txn table ~pk:1 (fun r ->
              let r = Array.copy r in
              r.(1) <- Value.Int i;
              r)
          |> Result.get_ok)
    done;
    let stats_before = E.table_stats eng table in
    check "versions accumulated" true (stats_before.Engine.total_versions > 10);
    E.gc eng;
    let stats_after = E.table_stats eng table in
    check "gc removed versions" true
      (stats_after.Engine.total_versions < stats_before.Engine.total_versions);
    with_txn eng (fun txn ->
        match E.read eng txn table ~pk:1 with
        | Some r -> checki "latest survives gc" 50 (geti r 1)
        | None -> Alcotest.fail "row lost by gc")

  let test_gc_respects_old_snapshot () =
    let eng, table = fresh () in
    with_txn eng (fun txn -> put eng table txn 1 100);
    let old_reader = E.begin_txn eng in
    with_txn eng (fun txn ->
        E.update eng txn table ~pk:1 (fun r ->
            let r = Array.copy r in
            r.(1) <- Value.Int 200;
            r)
        |> Result.get_ok);
    E.gc eng;
    (* the old version is protected by old_reader's snapshot *)
    (match E.read eng old_reader table ~pk:1 with
    | Some r -> checki "old version survives gc" 100 (geti r 1)
    | None -> Alcotest.fail "gc destroyed a visible version");
    E.commit eng old_reader |> Result.get_ok

  let test_crash_recovery_committed_survive () =
    let eng, table = fresh () in
    let db = E.db eng in
    with_txn eng (fun txn ->
        for k = 1 to 10 do
          put eng table txn k (k * 11)
        done);
    (* checkpoint half of the state, then keep writing *)
    Bufpool.flush_all db.Db.pool ~sync:false;
    with_txn eng (fun txn ->
        for k = 11 to 20 do
          put eng table txn k (k * 11)
        done;
        E.update eng txn table ~pk:1 (fun r ->
            let r = Array.copy r in
            r.(1) <- Value.Int 999;
            r)
        |> Result.get_ok);
    (* crash: all unflushed buffers vanish *)
    Bufpool.drop_cache db.Db.pool;
    E.recover eng;
    with_txn eng (fun txn ->
        let n = E.scan eng txn table (fun _ -> ()) in
        checki "all 20 rows recovered" 20 n;
        (match E.read eng txn table ~pk:1 with
        | Some r -> checki "update recovered" 999 (geti r 1)
        | None -> Alcotest.fail "row 1 missing");
        match E.read eng txn table ~pk:15 with
        | Some r -> checki "post-checkpoint insert recovered" 165 (geti r 1)
        | None -> Alcotest.fail "row 15 missing")

  let test_crash_recovery_uncommitted_lost () =
    let eng, table = fresh () in
    let db = E.db eng in
    with_txn eng (fun txn -> put eng table txn 1 100);
    (* a transaction that never commits *)
    let t = E.begin_txn eng in
    put eng table t 2 200;
    E.update eng t table ~pk:1 (fun r ->
        let r = Array.copy r in
        r.(1) <- Value.Int 999;
        r)
    |> Result.get_ok;
    (* crash before commit *)
    Bufpool.drop_cache db.Db.pool;
    E.recover eng;
    with_txn eng (fun txn ->
        check "uncommitted insert lost" true (E.read eng txn table ~pk:2 = None);
        match E.read eng txn table ~pk:1 with
        | Some r -> checki "uncommitted update rolled back" 100 (geti r 1)
        | None -> Alcotest.fail "row 1 missing")

  (* Property: engine agrees with a model map under random committed
     single-op transactions. *)
  let qcheck_engine_model =
    QCheck.Test.make
      ~name:(E.name ^ ": random committed ops equal model")
      ~count:25
      QCheck.(
        list_of_size
          Gen.(int_range 1 120)
          (pair (int_range 1 25) (pair (int_bound 1000) (int_bound 3))))
      (fun ops ->
        let eng, table = fresh () in
        let model = Hashtbl.create 32 in
        List.iter
          (fun (k, (v, op)) ->
            let txn = E.begin_txn eng in
            (match op with
            | 0 | 1 -> (
                match E.insert eng txn table (row k v "p") with
                | Ok () -> Hashtbl.replace model k v
                | Error _ -> ())
            | 2 -> (
                match
                  E.update eng txn table ~pk:k (fun r ->
                      let r = Array.copy r in
                      r.(1) <- Value.Int v;
                      r)
                with
                | Ok () -> Hashtbl.replace model k v
                | Error _ -> ())
            | _ -> (
                match E.delete eng txn table ~pk:k with
                | Ok () -> Hashtbl.remove model k
                | Error _ -> ()));
            E.commit eng txn |> Result.get_ok)
          ops;
        let txn = E.begin_txn eng in
        let ok = ref true in
        for k = 1 to 25 do
          let expect = Hashtbl.find_opt model k in
          let got = Option.map (fun r -> geti r 1) (E.read eng txn table ~pk:k) in
          if got <> expect then ok := false
        done;
        let visible = E.scan eng txn table (fun _ -> ()) in
        E.commit eng txn |> Result.get_ok;
        !ok && visible = Hashtbl.length model)

  let suite =
    [
      Alcotest.test_case "insert/read across txns" `Quick test_insert_read_commit;
      Alcotest.test_case "read own writes" `Quick test_read_own_writes;
      Alcotest.test_case "uncommitted invisible" `Quick test_uncommitted_invisible;
      Alcotest.test_case "snapshot stability (time travel)" `Quick test_snapshot_stability;
      Alcotest.test_case "duplicate key" `Quick test_duplicate_key;
      Alcotest.test_case "update missing" `Quick test_update_missing;
      Alcotest.test_case "delete semantics" `Quick test_delete_semantics;
      Alcotest.test_case "abort rolls back" `Quick test_abort_rolls_back;
      Alcotest.test_case "update after abort" `Quick test_update_after_abort;
      Alcotest.test_case "first-updater-wins" `Quick test_first_updater_wins_active;
      Alcotest.test_case "scan counts" `Quick test_scan_counts;
      Alcotest.test_case "secondary lookup" `Quick test_secondary_lookup;
      Alcotest.test_case "secondary after key update" `Quick test_secondary_after_key_update;
      Alcotest.test_case "range over pk" `Quick test_range_pk;
      Alcotest.test_case "version chain + gc" `Quick test_many_versions_then_gc;
      Alcotest.test_case "gc respects old snapshots" `Quick test_gc_respects_old_snapshot;
      Alcotest.test_case "crash recovery: committed survive" `Quick
        test_crash_recovery_committed_survive;
      Alcotest.test_case "crash recovery: uncommitted lost" `Quick
        test_crash_recovery_uncommitted_lost;
      QCheck_alcotest.to_alcotest qcheck_engine_model;
    ]
end

module Si_suite = Make (Mvcc.Si_engine)
module Sias_suite = Make (Mvcc.Sias_engine)
module Sias_v_suite = Make (Mvcc.Sias_vector)
module Si_cv_suite = Make (Mvcc.Si_cv_engine)
