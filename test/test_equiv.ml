(* Differential testing: SI and SIAS must expose identical transactional
   semantics — same visible state after the same schedule of operations,
   including interleaved transactions, aborts and conflicts. Storage is
   where they differ; semantics is where they must not. *)

module Si = Mvcc.Si_engine
module Sias = Mvcc.Sias_engine
module Value = Mvcc.Value
module Db = Mvcc.Db
module Engine = Mvcc.Engine

let row k v = [| Value.Int k; Value.Int v |]

(* A schedule step over a small pool of concurrent transaction slots. *)
type step =
  | Begin of int
  | Commit of int
  | Abort of int
  | Insert of int * int * int (* slot, key, value *)
  | Update of int * int * int
  | Delete of int * int
  | Read of int * int
  | Gc

let pp_step = function
  | Begin s -> Printf.sprintf "Begin %d" s
  | Commit s -> Printf.sprintf "Commit %d" s
  | Abort s -> Printf.sprintf "Abort %d" s
  | Insert (s, k, v) -> Printf.sprintf "Insert (%d,%d,%d)" s k v
  | Update (s, k, v) -> Printf.sprintf "Update (%d,%d,%d)" s k v
  | Delete (s, k) -> Printf.sprintf "Delete (%d,%d)" s k
  | Read (s, k) -> Printf.sprintf "Read (%d,%d)" s k
  | Gc -> "Gc"

let gen_step =
  QCheck.Gen.(
    frequency
      [
        (2, map (fun s -> Begin s) (int_bound 2));
        (2, map (fun s -> Commit s) (int_bound 2));
        (1, map (fun s -> Abort s) (int_bound 2));
        (3, map3 (fun s k v -> Insert (s, k, v)) (int_bound 2) (int_range 1 12) (int_bound 100));
        (3, map3 (fun s k v -> Update (s, k, v)) (int_bound 2) (int_range 1 12) (int_bound 100));
        (1, map2 (fun s k -> Delete (s, k)) (int_bound 2) (int_range 1 12));
        (2, map2 (fun s k -> Read (s, k)) (int_bound 2) (int_range 1 12));
        (1, return Gc);
      ])

let arb_schedule =
  QCheck.make
    ~print:(fun steps -> String.concat "; " (List.map pp_step steps))
    QCheck.Gen.(list_size (int_range 1 80) gen_step)

(* Run a schedule against an engine, producing the observable trace:
   each operation's outcome plus the final committed state. *)
module Runner (E : Engine.S) = struct
  let run steps =
    let db = Db.create ~buffer_pages:512 () in
    let eng = E.create db in
    let table = E.create_table eng ~name:"t" ~pk_col:0 () in
    let slots = Array.make 3 None in
    let trace = Buffer.create 256 in
    let emit s = Buffer.add_string trace (s ^ "\n") in
    let outcome_str = function
      | Ok () -> "ok"
      | Error e -> Engine.error_to_string e
    in
    List.iter
      (fun step ->
        match step with
        | Begin s ->
            if slots.(s) = None then begin
              slots.(s) <- Some (E.begin_txn eng);
              emit (Printf.sprintf "begin %d" s)
            end
        | Commit s -> (
            match slots.(s) with
            | Some txn ->
                E.commit eng txn |> Result.get_ok;
                slots.(s) <- None;
                emit (Printf.sprintf "commit %d" s)
            | None -> ())
        | Abort s -> (
            match slots.(s) with
            | Some txn ->
                E.abort eng txn;
                slots.(s) <- None;
                emit (Printf.sprintf "abort %d" s)
            | None -> ())
        | Insert (s, k, v) -> (
            match slots.(s) with
            | Some txn -> emit ("insert " ^ outcome_str (E.insert eng txn table (row k v)))
            | None -> ())
        | Update (s, k, v) -> (
            match slots.(s) with
            | Some txn ->
                emit
                  ("update "
                  ^ outcome_str
                      (E.update eng txn table ~pk:k (fun r ->
                           let r = Array.copy r in
                           r.(1) <- Value.Int v;
                           r)))
            | None -> ())
        | Delete (s, k) -> (
            match slots.(s) with
            | Some txn -> emit ("delete " ^ outcome_str (E.delete eng txn table ~pk:k))
            | None -> ())
        | Read (s, k) -> (
            match slots.(s) with
            | Some txn ->
                let got =
                  match E.read eng txn table ~pk:k with
                  | Some r -> string_of_int (Value.int r.(1))
                  | None -> "none"
                in
                emit (Printf.sprintf "read %d=%s" k got)
            | None -> ())
        | Gc -> E.gc eng)
      steps;
    (* finish leftovers deterministically *)
    Array.iteri
      (fun i slot ->
        match slot with
        | Some txn ->
            E.abort eng txn;
            emit (Printf.sprintf "abort %d" i)
        | None -> ())
      slots;
    (* final committed state *)
    let txn = E.begin_txn eng in
    for k = 1 to 12 do
      match E.read eng txn table ~pk:k with
      | Some r -> emit (Printf.sprintf "final %d=%d" k (Value.int r.(1)))
      | None -> ()
    done;
    let count = E.scan eng txn table (fun _ -> ()) in
    E.commit eng txn |> Result.get_ok;
    emit (Printf.sprintf "count=%d" count);
    Buffer.contents trace
end

module Run_si = Runner (Si)
module Run_sias = Runner (Sias)
module Run_sias_v = Runner (Mvcc.Sias_vector)
module Run_si_cv = Runner (Mvcc.Si_cv_engine)

let qcheck_equivalence =
  QCheck.Test.make ~name:"SI and SIAS produce identical observable traces" ~count:150
    arb_schedule
    (fun steps ->
      let a = Run_si.run steps in
      let b = Run_sias.run steps in
      if a <> b then QCheck.Test.fail_reportf "traces differ:\nSI:\n%s\nSIAS:\n%s" a b
      else true)

let qcheck_equivalence_sicv =
  QCheck.Test.make ~name:"SI and SI-CV produce identical observable traces" ~count:100
    arb_schedule
    (fun steps ->
      let a = Run_si.run steps in
      let b = Run_si_cv.run steps in
      if a <> b then QCheck.Test.fail_reportf "traces differ:\nSI:\n%s\nSI-CV:\n%s" a b
      else true)

let qcheck_equivalence_vector =
  QCheck.Test.make ~name:"SI and SIAS-V produce identical observable traces" ~count:150
    arb_schedule
    (fun steps ->
      let a = Run_si.run steps in
      let b = Run_sias_v.run steps in
      if a <> b then QCheck.Test.fail_reportf "traces differ:\nSI:\n%s\nSIAS-V:\n%s" a b
      else true)

(* A couple of hand-written interleavings that historically catch bugs. *)
let check = Alcotest.(check bool)

let test_write_skew_allowed () =
  (* SI famously allows write skew: two txns read both keys, each updates
     a different one. Both engines must ALLOW it identically. *)
  let verify (module E : Engine.S) =
    let db = Db.create () in
    let eng = E.create db in
    let table = E.create_table eng ~name:"t" ~pk_col:0 () in
    let txn = E.begin_txn eng in
    E.insert eng txn table (row 1 10) |> Result.get_ok;
    E.insert eng txn table (row 2 10) |> Result.get_ok;
    E.commit eng txn |> Result.get_ok;
    let t1 = E.begin_txn eng in
    let t2 = E.begin_txn eng in
    ignore (E.read eng t1 table ~pk:1);
    ignore (E.read eng t1 table ~pk:2);
    ignore (E.read eng t2 table ~pk:1);
    ignore (E.read eng t2 table ~pk:2);
    let r1 =
      E.update eng t1 table ~pk:1 (fun r ->
          let r = Array.copy r in
          r.(1) <- Value.Int 0;
          r)
    in
    let r2 =
      E.update eng t2 table ~pk:2 (fun r ->
          let r = Array.copy r in
          r.(1) <- Value.Int 0;
          r)
    in
    E.commit eng t1 |> Result.get_ok;
    E.commit eng t2 |> Result.get_ok;
    r1 = Ok () && r2 = Ok ()
  in
  check "SI allows write skew" true (verify (module Si));
  check "SIAS allows write skew" true (verify (module Sias))

let test_conflict_symmetry () =
  let observe (module E : Engine.S) =
    let db = Db.create () in
    let eng = E.create db in
    let table = E.create_table eng ~name:"t" ~pk_col:0 () in
    let txn = E.begin_txn eng in
    E.insert eng txn table (row 1 10) |> Result.get_ok;
    E.commit eng txn |> Result.get_ok;
    let t1 = E.begin_txn eng in
    let t2 = E.begin_txn eng in
    let a =
      E.update eng t1 table ~pk:1 (fun r -> r) = Ok ()
    in
    let b =
      E.update eng t2 table ~pk:1 (fun r -> r) = Error Engine.Write_conflict
    in
    E.abort eng t1;
    (* after the first updater aborts, the second may retry and win *)
    let c = E.update eng t2 table ~pk:1 (fun r -> r) = Ok () in
    E.commit eng t2 |> Result.get_ok;
    (a, b, c)
  in
  let si = observe (module Si) and sias = observe (module Sias) in
  check "same conflict behaviour" true (si = sias);
  check "expected behaviour" true (si = (true, true, true))

let suite =
  [
    QCheck_alcotest.to_alcotest qcheck_equivalence;
    QCheck_alcotest.to_alcotest qcheck_equivalence_vector;
    QCheck_alcotest.to_alcotest qcheck_equivalence_sicv;
    Alcotest.test_case "write skew allowed by both" `Quick test_write_skew_allowed;
    Alcotest.test_case "conflict symmetry" `Quick test_conflict_symmetry;
  ]
