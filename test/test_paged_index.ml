(* Tests for the paged, WAL-logged B+Tree: model equivalence, crash
   recovery byte-exactness, the index crash points, and array-vs-paged
   engine equivalence. *)

module Pbt = Sias_index.Paged_btree
module Db = Mvcc.Db
module Walcodec = Mvcc.Walcodec
module Engine = Mvcc.Engine
module Value = Mvcc.Value
module Wal = Sias_wal.Wal
module Bufpool = Sias_storage.Bufpool
module Page = Sias_storage.Page
module Bgwriter = Sias_storage.Bgwriter
module Crashpoint = Sias_chaos.Crashpoint
module Rng = Sias_util.Rng

let check = Alcotest.(check bool)
let checki = Alcotest.(check int)
let check_list = Alcotest.(check (list int))

(* The paged tree needs a WAL-first logger, so the fixture is a whole
   database context rather than a bare pool. *)
let mk ?(buffer_pages = 256) () =
  let db = Db.create ~buffer_pages () in
  let rel = Db.alloc_rel db in
  (db, rel, Walcodec.make_index db ~rel)

let entries t =
  let acc = ref [] in
  Pbt.iter t (fun k p -> acc := (k, p) :: !acc);
  List.rev !acc

(* ---------------- the array suite's behaviors, on paged ---------------- *)

let test_insert_lookup () =
  let _, _, t = mk () in
  Pbt.insert t ~key:5 ~payload:50;
  Pbt.insert t ~key:3 ~payload:30;
  Pbt.insert t ~key:8 ~payload:80;
  check_list "lookup 5" [ 50 ] (Pbt.lookup t ~key:5);
  check_list "lookup 3" [ 30 ] (Pbt.lookup t ~key:3);
  check_list "missing" [] (Pbt.lookup t ~key:7);
  checki "count" 3 (Pbt.entry_count t)

let test_duplicates () =
  let _, _, t = mk () in
  Pbt.insert t ~key:5 ~payload:1;
  Pbt.insert t ~key:5 ~payload:2;
  Pbt.insert t ~key:5 ~payload:3;
  Pbt.insert t ~key:5 ~payload:2;
  check_list "all payloads" [ 1; 2; 3 ] (Pbt.lookup t ~key:5);
  checki "no duplicate pair" 3 (Pbt.entry_count t)

let test_delete () =
  let _, _, t = mk () in
  Pbt.insert t ~key:5 ~payload:1;
  Pbt.insert t ~key:5 ~payload:2;
  check "delete existing" true (Pbt.delete t ~key:5 ~payload:1);
  check "delete absent" false (Pbt.delete t ~key:5 ~payload:1);
  check_list "remaining" [ 2 ] (Pbt.lookup t ~key:5);
  check "mem" true (Pbt.mem t ~key:5 ~payload:2);
  check "not mem" false (Pbt.mem t ~key:5 ~payload:1)

let test_range () =
  let _, _, t = mk () in
  for k = 1 to 100 do
    Pbt.insert t ~key:k ~payload:(k * 10)
  done;
  let r = Pbt.range t ~lo:20 ~hi:25 in
  check_list "range keys" [ 20; 21; 22; 23; 24; 25 ] (List.map fst r);
  check_list "range payloads" [ 200; 210; 220; 230; 240; 250 ] (List.map snd r);
  check "empty range" true (Pbt.range t ~lo:200 ~hi:300 = []);
  check "inverted range" true (Pbt.range t ~lo:5 ~hi:1 = [])

let test_splits_and_height () =
  let _, _, t = mk () in
  let n = 5_000 in
  for k = 1 to n do
    Pbt.insert t ~key:k ~payload:k
  done;
  check "tree grew" true (Pbt.height t >= 2);
  check "splits happened" true ((Pbt.stats t).Pbt.splits > 0);
  let ok = ref true in
  for k = 1 to n do
    if Pbt.lookup t ~key:k <> [ k ] then ok := false
  done;
  check "all keys present" true !ok;
  checki "entry count" n (Pbt.entry_count t)

let test_random_order_inserts () =
  let _, _, t = mk () in
  let rng = Rng.create 17 in
  let keys = Array.init 3_000 (fun i -> i) in
  Rng.shuffle rng keys;
  Array.iter (fun k -> Pbt.insert t ~key:k ~payload:(k + 1)) keys;
  let ok = ref true in
  Array.iter (fun k -> if Pbt.lookup t ~key:k <> [ k + 1 ] then ok := false) keys;
  check "random insert order" true !ok;
  let prev = ref min_int in
  let sorted = ref true in
  Pbt.iter t (fun k _ ->
      if k < !prev then sorted := false;
      prev := k);
  check "iter sorted" true !sorted

let test_survives_buffer_pressure () =
  (* a pool smaller than the tree forces node pages through eviction;
     evicting dirty WAL-stamped index pages exercises the flush path *)
  let db, _, t = mk ~buffer_pages:16 () in
  for k = 1 to 4_000 do
    Pbt.insert t ~key:k ~payload:k
  done;
  let st = Bufpool.stats db.Db.pool in
  check "evictions happened" true (st.Bufpool.evictions > 0);
  let ok = ref true in
  for k = 1 to 4_000 do
    if Pbt.lookup t ~key:k <> [ k ] then ok := false
  done;
  check "correct under eviction" true !ok

let test_merge_on_emptied_leaf () =
  let _, _, t = mk () in
  for k = 1 to 900 do
    Pbt.insert t ~key:k ~payload:k
  done;
  check "tree split first" true ((Pbt.stats t).Pbt.splits > 0);
  for k = 1 to 900 do
    ignore (Pbt.delete t ~key:k ~payload:k)
  done;
  checki "emptied" 0 (Pbt.entry_count t);
  check "merges happened" true ((Pbt.stats t).Pbt.merges > 0);
  (* the tree stays usable after draining *)
  Pbt.insert t ~key:7 ~payload:70;
  check_list "reusable after drain" [ 70 ] (Pbt.lookup t ~key:7)

(* ---------------- crash recovery ---------------- *)

let capture db rel n =
  List.init n (fun block ->
      Bufpool.with_page_ro db.Db.pool ~rel ~block (fun p ->
          Bytes.copy (Page.to_bytes p)))

let check_byte_exact name before after =
  List.iteri
    (fun b (x, y) ->
      check (Printf.sprintf "%s: block %d byte-exact" name b) true
        (Bytes.equal x y))
    (List.combine before after)

(* Flush the WAL, crash, redo: every index page must come back with
   exactly the bytes the normal path produced, and the restored handle
   must serve the same entries. *)
let test_recovery_byte_exact () =
  let db, rel, t = mk () in
  let rng = Rng.create 23 in
  for _ = 1 to 2_500 do
    let k = Rng.int rng 1_000 and p = Rng.int rng 8 in
    if Rng.int rng 4 = 0 then ignore (Pbt.delete t ~key:k ~payload:p)
    else Pbt.insert t ~key:k ~payload:p
  done;
  Wal.flush db.Db.wal ~sync:true;
  let n = Pbt.node_count t + 2 in
  let before = capture db rel n in
  let before_entries = entries t in
  Db.crash db;
  Walcodec.redo db ~since_lsn:0;
  check_byte_exact "redo" before (capture db rel n);
  let t' = Walcodec.restore_index db ~rel in
  checki "entry count restored" (List.length before_entries) (Pbt.entry_count t');
  check "entries restored" true (entries t' = before_entries)

(* A checkpoint mid-life resets the full-page-write epoch and flushes
   the index pages; the next split must FPW the surviving pages so a
   crash before the dirty pages hit the device still replays exact. *)
let test_checkpoint_then_split () =
  let db, rel, t = mk () in
  for k = 1 to 290 do
    Pbt.insert t ~key:(2 * k) ~payload:k
  done;
  Bgwriter.checkpoint_now db.Db.bgwriter;
  for k = 1 to 40 do
    Pbt.insert t ~key:(2 * k + 1) ~payload:k
  done;
  check "post-checkpoint split" true ((Pbt.stats t).Pbt.splits > 0);
  Wal.flush db.Db.wal ~sync:true;
  let n = Pbt.node_count t + 2 in
  let before = capture db rel n in
  Db.crash db;
  Walcodec.redo db ~since_lsn:0;
  check_byte_exact "checkpointed split" before (capture db rel n);
  let t' = Walcodec.restore_index db ~rel in
  checki "entries" 330 (Pbt.entry_count t')

(* Arm each index crash point in turn: the batch in flight when the
   "power" fails was never WAL-flushed, so recovery must serve exactly
   the pre-batch (flushed) tree. *)
let test_crash_points () =
  List.iter
    (fun point ->
      Crashpoint.disarm ();
      let db, rel, t = mk () in
      for k = 1 to 200 do
        Pbt.insert t ~key:k ~payload:k
      done;
      Wal.flush db.Db.wal ~sync:true;
      Crashpoint.arm ~point ();
      let crashed = ref false in
      let rec drive k =
        if k <= 2_000 && not !crashed then
          match Pbt.insert t ~key:k ~payload:k with
          | () -> drive (k + 1)
          | exception Crashpoint.Crash _ -> crashed := true
      in
      drive 201;
      Crashpoint.disarm ();
      check (point ^ " reached") true !crashed;
      Db.crash db;
      Walcodec.redo db ~since_lsn:0;
      let t' = Walcodec.restore_index db ~rel in
      (* only keys 1..200 were behind the flushed WAL prefix; everything
         after — including the half-applied batch — must be gone *)
      checki (point ^ ": flushed prefix entries") 200 (Pbt.entry_count t');
      let ok = ref true in
      for k = 1 to 200 do
        if Pbt.lookup t' ~key:k <> [ k ] then ok := false
      done;
      check (point ^ ": all flushed keys present") true !ok)
    [ "index.fpw.pre"; "index.wal.pre-apply"; "index.split.mid" ]

(* ---------------- QCheck: model + crash recovery ---------------- *)

let qcheck_paged_model =
  QCheck.Test.make ~name:"paged btree equals sorted model across a crash"
    ~count:15
    QCheck.(
      list_of_size
        Gen.(int_range 1 300)
        (pair (int_bound 100) (pair (int_bound 20) (int_bound 3))))
    (fun ops ->
      let db, rel, t = mk () in
      let model = Hashtbl.create 64 in
      List.iter
        (fun (k, (p, op)) ->
          match op with
          | 0 | 1 ->
              Pbt.insert t ~key:k ~payload:p;
              Hashtbl.replace model (k, p) ()
          | 2 ->
              ignore (Pbt.delete t ~key:k ~payload:p);
              Hashtbl.remove model (k, p)
          | _ ->
              (* update: move the entry to payload p+1 *)
              if Hashtbl.mem model (k, p) then begin
                ignore (Pbt.delete t ~key:k ~payload:p);
                Hashtbl.remove model (k, p);
                Pbt.insert t ~key:k ~payload:(p + 1);
                Hashtbl.replace model (k, p + 1) ()
              end)
        ops;
      let expected =
        Hashtbl.fold (fun kp () acc -> kp :: acc) model [] |> List.sort compare
      in
      let range_expected lo hi =
        List.filter (fun (k, _) -> k >= lo && k <= hi) expected
      in
      let live_ok =
        entries t = expected
        && Pbt.range t ~lo:10 ~hi:60 = range_expected 10 60
      in
      (* crash, replay, restore: same answers from the replayed pages *)
      Wal.flush db.Db.wal ~sync:true;
      Db.crash db;
      Walcodec.redo db ~since_lsn:0;
      let t' = Walcodec.restore_index db ~rel in
      live_ok
      && entries t' = expected
      && Pbt.range t' ~lo:10 ~hi:60 = range_expected 10 60
      && Pbt.entry_count t' = List.length expected)

(* ---------------- array-vs-paged engine equivalence ---------------- *)

(* The same deterministic workload through the same engine on the two
   index implementations must produce identical op results and identical
   reads, secondary lookups, pk ranges and scan counts — before and
   after a crash+recover on both sides. *)
let engine_equiv key () =
  let _, (module E : Engine.S) = Engine.resolve_exn key in
  let mk_side index =
    let db = Db.create ~buffer_pages:256 ~index () in
    let eng = E.create db in
    let table = E.create_table eng ~name:"t" ~pk_col:0 ~secondary:[ 1 ] () in
    (db, eng, table)
  in
  let dba, ea, ta = mk_side `Array in
  let dbp, ep, tp = mk_side `Paged in
  let row k g = [| Value.Int k; Value.Int g; Value.Str "x" |] in
  let one eng table op =
    let txn = E.begin_txn eng in
    let r =
      match op with
      | `Insert (k, g) -> E.insert eng txn table (row k g)
      | `Update (k, g) ->
          E.update eng txn table ~pk:k (fun r ->
              let r = Array.copy r in
              r.(1) <- Value.Int g;
              r)
      | `Delete k -> E.delete eng txn table ~pk:k
    in
    (match r with
    | Ok () -> E.commit eng txn |> Result.get_ok
    | Error _ -> E.abort eng txn);
    Result.is_ok r
  in
  let state = ref 3 in
  let lcg bound =
    state := ((!state * 1103515245) + 12345) land 0x3FFFFFFF;
    !state mod bound
  in
  for _ = 1 to 400 do
    let k = 1 + lcg 60 and g = lcg 7 in
    let op =
      match lcg 10 with
      | 0 | 1 | 2 | 3 -> `Insert (k, g)
      | 4 | 5 | 6 -> `Update (k, g)
      | _ -> `Delete k
    in
    let ra = one ea ta op and rp = one ep tp op in
    check "op outcome agrees" true (ra = rp)
  done;
  let snapshot eng table =
    let txn = E.begin_txn eng in
    let reads = List.init 60 (fun i -> E.read eng txn table ~pk:(i + 1)) in
    let groups =
      List.init 7 (fun g ->
          E.lookup eng txn table ~col:1 ~key:g |> List.sort compare)
    in
    let rp = E.range_pk eng txn table ~lo:5 ~hi:40 in
    let visible = E.scan eng txn table (fun _ -> ()) in
    E.commit eng txn |> Result.get_ok;
    (reads, groups, rp, visible)
  in
  let sa = snapshot ea ta and sp = snapshot ep tp in
  check "pre-crash state agrees" true (sa = sp);
  Db.crash dba;
  E.recover ea;
  Db.crash dbp;
  E.recover ep;
  let sa' = snapshot ea ta and sp' = snapshot ep tp in
  check "post-recovery state agrees" true (sa' = sp');
  check "recovery preserved the committed state" true (sa = sa')

let suite =
  [
    Alcotest.test_case "insert/lookup" `Quick test_insert_lookup;
    Alcotest.test_case "duplicate keys" `Quick test_duplicates;
    Alcotest.test_case "delete" `Quick test_delete;
    Alcotest.test_case "range scan" `Quick test_range;
    Alcotest.test_case "splits and height" `Quick test_splits_and_height;
    Alcotest.test_case "random insert order + sorted iter" `Quick
      test_random_order_inserts;
    Alcotest.test_case "survives buffer pressure" `Quick
      test_survives_buffer_pressure;
    Alcotest.test_case "merge on emptied leaf" `Quick test_merge_on_emptied_leaf;
    Alcotest.test_case "crash recovery is byte-exact" `Quick
      test_recovery_byte_exact;
    Alcotest.test_case "checkpoint then split recovers" `Quick
      test_checkpoint_then_split;
    Alcotest.test_case "index crash points recover to flushed prefix" `Quick
      test_crash_points;
    QCheck_alcotest.to_alcotest qcheck_paged_model;
    Alcotest.test_case "si: array vs paged equivalence" `Quick (engine_equiv "si");
    Alcotest.test_case "si-cv: array vs paged equivalence" `Quick
      (engine_equiv "si-cv");
    Alcotest.test_case "sias: array vs paged equivalence" `Quick
      (engine_equiv "sias");
    Alcotest.test_case "sias-v: array vs paged equivalence" `Quick
      (engine_equiv "sias-v");
  ]
